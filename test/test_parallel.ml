(* Cross-validation of the domain-parallel JIT backend.

   The three paper workloads (FI, FI-MM, FD-MM) run through the
   reference interpreter, the sequential JIT and the parallel JIT with
   1/2/4 domains, in both precisions, and every engine must produce
   bit-for-bit identical buffers — the invariant that makes the pool's
   schedule unobservable.  A property-style test does the same on random
   kernels whose stores are forced to the work-item's own slot (the
   disjoint-writes invariant parallel execution relies on). *)

open Kernel_ast.Cast
open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10

let engines : (string * Gpu_sim.engine) list =
  [
    ("interp", `Interp);
    ("jit", `Jit);
    ("jit-parallel-1", `Jit_parallel 1);
    ("jit-parallel-2", `Jit_parallel 2);
    ("jit-parallel-4", `Jit_parallel 4);
  ]

let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let kernels_of scheme precision =
  match scheme with
  | `Fi -> [ Hand_kernels.fused_fi ~precision ]
  | `Fi_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
  | `Fd_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]

let run_engine ~engine ~kernels =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim = Gpu_sim.create ~engine ~fi_beta:0.2 ~n_branches:3 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to 6 do
    Gpu_sim.step sim kernels
  done;
  sim.Gpu_sim.state

let check_bits = Test_util.check_bits

let test_engines_bit_identical () =
  List.iter
    (fun (scheme_label, scheme) ->
      List.iter
        (fun precision ->
          let kernels = kernels_of scheme precision in
          let reference = run_engine ~engine:`Interp ~kernels in
          List.iter
            (fun (engine_label, engine) ->
              let st = run_engine ~engine ~kernels in
              let msg p =
                Printf.sprintf "%s %s %s vs interp (%s)" scheme_label
                  (match precision with Single -> "single" | Double -> "double")
                  engine_label p
              in
              check_bits (msg "curr") reference.State.curr st.State.curr;
              check_bits (msg "prev") reference.State.prev st.State.prev;
              check_bits (msg "g1") reference.State.g1 st.State.g1;
              check_bits (msg "vel") reference.State.vel_prev st.State.vel_prev)
            engines)
        [ Double; Single ])
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

(* Random kernels: reuse the test_jit generator but redirect every store
   to out[gid], so work-items write disjoint locations and any parallel
   schedule must agree with the sequential JIT bit-for-bit. *)
let rec disjoint_stmt (s : stmt) =
  match s with
  | Store ("out", _, e) -> Store ("out", Var "gid", e)
  | If (c, t, f) -> If (c, List.map disjoint_stmt t, List.map disjoint_stmt f)
  | For l -> For { l with body = List.map disjoint_stmt l.body }
  | Comment _ | Assign _ | Store _ | Decl _ | Decl_arr _ | Decl_local _ | Barrier -> s

let arb_disjoint_kernel =
  QCheck.map
    (fun k -> { k with body = List.map disjoint_stmt k.body })
    Test_jit.arb_kernel

let n_elems = 8

let run_one launch k =
  let a = Array.init n_elems (fun i -> float_of_int i /. 2.) in
  let out = Array.make n_elems 0. in
  let idx = Array.init n_elems (fun i -> i * 3 mod n_elems) in
  launch k
    [ Vgpu.Args.Buf (Vgpu.Buffer.F a); Buf (Vgpu.Buffer.F out); Buf (Vgpu.Buffer.I idx) ];
  out

let qcheck_parallel_matches_jit =
  QCheck.Test.make ~name:"parallel jit == sequential jit on random kernels" ~count:300
    arb_disjoint_kernel (fun k ->
      let seq =
        run_one (fun k args -> Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global:[ n_elems ]) k
      in
      List.for_all
        (fun domains ->
          let par =
            run_one
              (fun k args ->
                Vgpu.Pool.launch ~domains (Vgpu.Jit.compile k) ~args ~global:[ n_elems ])
              k
          in
          Array.for_all2
            (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
            seq par)
        [ 2; 3 ])

(* The pool partitions the *outermost* used dimension and must cover the
   NDRange exactly once, including when domains exceed its extent. *)
let test_partition_covers_ndrange () =
  let k =
    {
      name = "count";
      precision = Double;
      params = [ param "out" Real ];
      global_size = [ Int_lit 4; Int_lit 3; Int_lit 5 ];
      local_size = [];
      body =
        [
          Decl
            ( Int,
              "lin",
              Some
                (Binop
                   ( Add,
                     Binop (Add, Global_id 0, Binop (Mul, Global_id 1, Int_lit 4)),
                     Binop (Mul, Global_id 2, Int_lit 12) )) );
          Store
            ("out", Var "lin", Binop (Add, Load ("out", Var "lin"), Real_lit 1.));
        ];
    }
  in
  List.iter
    (fun domains ->
      let out = Array.make 60 0. in
      Vgpu.Pool.launch ~domains (Vgpu.Jit.compile k)
        ~args:[ Buf (Vgpu.Buffer.F out) ]
        ~global:[ 4; 3; 5 ];
      Array.iteri
        (fun i v ->
          if v <> 1. then
            Alcotest.failf "domains=%d: point %d visited %.0f times" domains i v)
        out)
    [ 1; 2; 4; 7; 16 ]

let suite =
  [
    Alcotest.test_case "FI/FI-MM/FD-MM bit-identical across engines" `Slow
      test_engines_bit_identical;
    QCheck_alcotest.to_alcotest qcheck_parallel_matches_jit;
    Alcotest.test_case "partition covers the NDRange exactly once" `Quick
      test_partition_covers_ndrange;
  ]
