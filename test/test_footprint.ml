(* Static stencil-footprint inference and whole-plan halo verification:

   - Kernel_ast.Footprint infers exact per-axis extents for the
     production volume kernels — flat, fused and 2.5D-tiled (where the
     z±1 arms live in registers and local memory, not in any load's
     index expression) — and honestly gives up on the indirect boundary
     scatters.

   - The optimizer never widens a footprint: the optimized AST's
     extents are contained in the raw AST's (on fd-mm it is strictly
     tighter — constant folding removes approximation).

   - Lift.Lint.verify_plan / verify_async prove halo sufficiency for
     the simulator's real 1–4-shard sync and overlapped schedules, and
     reject broken plans with pointed diagnostics: a width-0 exchange
     (halo-too-narrow), a skipped exchange (stale/clobbered halo), a
     dropped frontier wait (unordered-ghost-read), a read of an
     allocation nothing wrote (uninit-read).

   - qcheck ties statics to dynamics: on random affine stencils the
     sanitizer's observed access extents fall inside the inferred
     absolute intervals, and optimization never widens the footprint. *)

open Kernel_ast
open Acoustics

let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let strides = [| 1; 14; 14 * 12 |]

let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let sim_env () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim = Gpu_sim.create ~fi_beta:0.2 ~n_branches:3 Params.default room in
  Gpu_sim.check_env sim

let axes = Alcotest.(list (pair int int))
let axes_of a = Array.to_list (Array.map (fun x -> (x.Footprint.ax_lo, x.Footprint.ax_hi)) a)

let check_rel msg fp name expected =
  match Footprint.read_rel fp name with
  | None -> Alcotest.failf "%s: no relative read extents for %s" msg name
  | Some a -> Alcotest.check axes msg expected (axes_of a)

(* -- Exact extents on the production volume kernels ------------------- *)

let test_flat_exact () =
  let env = sim_env () in
  List.iter
    (fun (k : Cast.kernel) ->
      let fp = Footprint.infer ~strides env k in
      Alcotest.(check (option string))
        (k.Cast.name ^ " anchored on next") (Some "next") fp.Footprint.fp_anchor;
      check_rel (k.Cast.name ^ " curr") fp "curr" [ (-1, 1); (-1, 1); (-1, 1) ];
      check_rel (k.Cast.name ^ " prev") fp "prev" [ (0, 0); (0, 0); (0, 0) ];
      (match Footprint.write_rel fp "next" with
      | Some a ->
          Alcotest.check axes (k.Cast.name ^ " next write") [ (0, 0); (0, 0); (0, 0) ]
            (axes_of a)
      | None -> Alcotest.failf "%s: next write extents missing" k.Cast.name);
      Alcotest.(check (option int))
        (k.Cast.name ^ " halo radius") (Some 1)
        (Footprint.read_radius fp "curr");
      (match Footprint.find fp "curr" with
      | Some b -> Alcotest.(check bool) (k.Cast.name ^ " exact") true b.Footprint.fb_exact
      | None -> assert false))
    [ Hand_kernels.volume ~precision:Cast.Double; Hand_kernels.fused_fi ~precision:Cast.Double ]

(* The tiled kernel's below/above-plane reads live in loop-carried
   registers and a __local tile; provenance plus register aging must
   recover the same ±1 extents the flat kernel shows directly. *)
let test_tiled_exact () =
  let env = sim_env () in
  List.iter
    (fun tile ->
      let k = Lift_acoustics.Programs.tiled_volume ~precision:Cast.Double ~tile () in
      let fp = Footprint.infer ~strides env k in
      check_rel (k.Cast.name ^ " curr") fp "curr" [ (-1, 1); (-1, 1); (-1, 1) ];
      check_rel (k.Cast.name ^ " prev") fp "prev" [ (0, 0); (0, 0); (0, 0) ];
      Alcotest.(check (option int))
        (k.Cast.name ^ " halo radius") (Some 1)
        (Footprint.read_radius fp "curr"))
    [ (4, 4); (8, 8) ]

(* Boundary kernels scatter through bidx: no anchor, no relative
   extents, indirect flags — the sanitizer's territory, never a silent
   wrong answer. *)
let test_boundary_indirect () =
  let env = sim_env () in
  List.iter
    (fun (k : Cast.kernel) ->
      let fp = Footprint.infer ~strides env k in
      Alcotest.(check (option string)) (k.Cast.name ^ " no anchor") None fp.Footprint.fp_anchor;
      Alcotest.(check (option int))
        (k.Cast.name ^ " radius not inferable") None
        (Footprint.read_radius fp "curr");
      (match Footprint.find fp "next" with
      | Some b ->
          Alcotest.(check bool) (k.Cast.name ^ " next write indirect") true
            b.Footprint.fb_write.Footprint.s_indirect
      | None -> Alcotest.failf "%s: no footprint for next" k.Cast.name);
      Alcotest.(check bool)
        (k.Cast.name ^ " notes explain the give-up") true
        (fp.Footprint.fp_notes <> []))
    [
      Hand_kernels.boundary_fi ~precision:Cast.Double;
      Hand_kernels.boundary_fi_mm ~precision:Cast.Double ~betas;
      Hand_kernels.boundary_fd_mm ~precision:Cast.Double ~mb:3;
    ]

(* -- Optimizer containment -------------------------------------------- *)

let itv_leq (inner : Domain.itv) (outer : Domain.itv) =
  (match (outer.Domain.lo, inner.Domain.lo) with
  | None, _ -> true
  | Some _, None -> false
  | Some o, Some i -> o <= i)
  &&
  match (outer.Domain.hi, inner.Domain.hi) with
  | None, _ -> true
  | Some _, None -> false
  | Some o, Some i -> i <= o

let rel_leq inner outer =
  match (outer, inner) with
  | None, _ -> true (* raw gave up: anything the optimizer infers is tighter *)
  | Some _, None -> false
  | Some o, Some i ->
      Array.length i = Array.length o
      && Array.for_all2 (fun a b -> b.Footprint.ax_lo <= a.Footprint.ax_lo
                                    && a.Footprint.ax_hi <= b.Footprint.ax_hi)
           i o

let check_contained name (raw : Footprint.t) (opt : Footprint.t) =
  List.iter
    (fun (b : Footprint.buf) ->
      let bn = b.Footprint.fb_name in
      match Footprint.find raw bn with
      | None -> Alcotest.failf "%s: optimizer invented buffer %s" name bn
      | Some rb ->
          let side which (o : Footprint.side) (r : Footprint.side) =
            if not (itv_leq o.Footprint.s_lin r.Footprint.s_lin) then
              Alcotest.failf "%s: %s %s linear interval widened" name bn which;
            if not (rel_leq o.Footprint.s_rel r.Footprint.s_rel) then
              Alcotest.failf "%s: %s %s relative extents widened" name bn which
          in
          side "read" b.Footprint.fb_read rb.Footprint.fb_read;
          side "write" b.Footprint.fb_write rb.Footprint.fb_write)
    opt.Footprint.fp_bufs

let test_opt_never_widens () =
  let env = sim_env () in
  List.iter
    (fun (k : Cast.kernel) ->
      let raw = Footprint.infer ~strides env k in
      let opt = Footprint.infer ~strides env (fst (Opt.optimize k)) in
      check_contained k.Cast.name raw opt)
    [
      Hand_kernels.volume ~precision:Cast.Double;
      Hand_kernels.fused_fi ~precision:Cast.Double;
      Lift_acoustics.Programs.tiled_volume ~precision:Cast.Double ~tile:(4, 4) ();
      Hand_kernels.boundary_fi ~precision:Cast.Double;
      Hand_kernels.boundary_fi_mm ~precision:Cast.Double ~betas;
      Hand_kernels.boundary_fd_mm ~precision:Cast.Double ~mb:3;
    ]

(* -- Whole-plan halo verification on the real schedules --------------- *)

let schemes precision =
  [
    ("fi", [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]);
    ("fi-mm", [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]);
    ("fd-mm", [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]);
    ( "tiled fi",
      [
        Lift_acoustics.Programs.tiled_volume ~precision ~tile:(4, 4) ();
        Hand_kernels.boundary_fi ~precision;
      ] );
  ]

let mk_sim ~shards =
  let room = Geometry.build ~n_materials:4 Geometry.Dome (Geometry.dims ~nx:9 ~ny:8 ~nz:12) in
  Gpu_sim.create ~engine:`Jit ~shards ~schedule:`Seq ~fi_beta:0.1 ~n_branches:3
    ~precision:Cast.Double Params.default room

let slab_of sim =
  let nx, ny, planes = Gpu_sim.slab_geometry sim in
  { Lift.Lint.sl_nx = nx; sl_ny = ny; sl_planes = planes }

let err_codes issues =
  List.map (fun i -> i.Lift.Lint.code) (Lift.Lint.errors issues)

let codes issues = List.map (fun i -> i.Lift.Lint.code) issues

let test_plans_verify_clean () =
  List.iter
    (fun shards ->
      List.iter
        (fun (sname, kernels) ->
          let sim = mk_sim ~shards in
          let issues = Lift.Lint.verify_plan (slab_of sim) (Gpu_sim.step_plan sim kernels ~steps:3) in
          Alcotest.(check (list string))
            (Printf.sprintf "sync %s shards=%d error-free" sname shards)
            [] (err_codes issues);
          let sim = mk_sim ~shards in
          let issues =
            Lift.Lint.verify_async (slab_of sim) (Gpu_sim.overlap_plan sim kernels ~steps:3)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "async %s shards=%d error-free" sname shards)
            [] (err_codes issues))
        (schemes Cast.Double))
    [ 1; 2; 3; 4 ]

let fi_plan ~steps =
  let sim = mk_sim ~shards:2 in
  let kernels = List.assoc "fi" (schemes Cast.Double) in
  (slab_of sim, Gpu_sim.step_plan sim kernels ~steps)

(* Acceptance case: a width-0 exchange against the radius-1 stencil must
   be rejected, and the diagnostic must say how wide the exchange needs
   to be. *)
let test_width0_exchange_rejected () =
  let slab, plan = fi_plan ~steps:2 in
  let narrowed =
    List.map
      (function
        | Vgpu.Multi.Exchange e -> Vgpu.Multi.Exchange { e with elems = 0 }
        | op -> op)
      plan
  in
  let issues = Lift.Lint.verify_plan slab narrowed in
  Alcotest.(check bool) "halo-too-narrow raised" true
    (List.mem "halo-too-narrow" (err_codes issues));
  let pointed =
    List.exists
      (fun i ->
        i.Lift.Lint.code = "halo-too-narrow"
        && Test_util.contains i.Lift.Lint.message "widen the exchange to 1 plane")
      issues
  in
  Alcotest.(check bool) "diagnostic names the required width" true pointed

let test_dropped_exchange_detected () =
  let slab, plan = fi_plan ~steps:2 in
  let nexch = ref 0 in
  let dropped =
    List.filter
      (function
        | Vgpu.Multi.Exchange _ ->
            incr nexch;
            !nexch > 2 (* drop the first step's pair, keep the second's *)
        | _ -> true)
      plan
  in
  let cs = err_codes (Lift.Lint.verify_plan slab dropped) in
  Alcotest.(check bool) "stale-halo raised" true (List.mem "stale-halo" cs)

let test_dropped_wait_detected () =
  let sim = mk_sim ~shards:2 in
  let slab = slab_of sim in
  let aplan = Gpu_sim.overlap_plan sim (List.assoc "fi" (schemes Cast.Double)) ~steps:2 in
  let unwaited =
    List.map (fun (o : Vgpu.Multi.async_op) -> { o with Vgpu.Multi.a_waits = [] }) aplan
  in
  let cs = err_codes (Lift.Lint.verify_async slab unwaited) in
  Alcotest.(check bool) "unordered-ghost-read raised" true
    (List.mem "unordered-ghost-read" cs)

let test_uninit_read_detected () =
  let open Cast in
  let k =
    {
      name = "reader";
      params = [ param "a" Real; param "b" Real ];
      body = [ Store ("b", Global_id 0, Load ("a", Global_id 0)) ];
      precision = Double;
      global_size = [ Int_lit 8 ];
      local_size = [];
    }
  in
  let plan =
    [
      Vgpu.Multi.Dev (0, Vgpu.Runtime.Alloc { name = "a"; ty = Real; elems = 8 });
      Vgpu.Multi.Dev (0, Vgpu.Runtime.Alloc { name = "b"; ty = Real; elems = 8 });
      Vgpu.Multi.Dev
        (0, Vgpu.Runtime.Launch { kernel = k; args = [ Vgpu.Runtime.A_buf "a"; Vgpu.Runtime.A_buf "b" ]; global = [ 8 ] });
    ]
  in
  let slab = { Lift.Lint.sl_nx = 2; sl_ny = 2; sl_planes = [| 2 |] } in
  let cs = codes (Lift.Lint.verify_plan slab plan) in
  Alcotest.(check bool) "uninit-read raised" true (List.mem "uninit-read" cs)

(* -- qcheck: statics bound dynamics ----------------------------------- *)

(* Random 3D affine stencils: out[x,y,z] = sum of inp[x+dx, y+dy, z+dz]
   over a random offset set, no edge guards — so boundary work-items
   really do reach out of bounds, and the sanitizer records those
   attempts too.  Every observed access must land inside the statically
   inferred absolute interval, and the relative extents must cover every
   generated offset. *)
let stencil_gen =
  QCheck.Gen.(
    tup4 (int_range 3 6) (int_range 3 6) (int_range 3 6)
      (list_size (int_range 1 4) (tup3 (int_range (-1) 1) (int_range (-1) 1) (int_range (-1) 1))))

let stencil_print (nx, ny, nz, offs) =
  Printf.sprintf "%dx%dx%d %s" nx ny nz
    (String.concat ";" (List.map (fun (a, b, c) -> Printf.sprintf "(%d,%d,%d)" a b c) offs))

let stencil_kernel (nx, ny, nz, offs) =
  let open Cast in
  let lin (dx, dy, dz) =
    Global_id 0 +: int_lit dx
    +: (int_lit nx *: (Global_id 1 +: int_lit dy))
    +: (int_lit (nx * ny) *: (Global_id 2 +: int_lit dz))
  in
  let sum =
    List.fold_left (fun acc o -> acc +: Load ("inp", lin o)) (Real_lit 0.0) offs
  in
  {
    name = "stencil";
    params = [ param "inp" Real; param "out" Real ];
    body = [ Store ("out", lin (0, 0, 0), sum) ];
    precision = Double;
    global_size = [ Int_lit nx; Int_lit ny; Int_lit nz ];
    local_size = [];
  }

let stencil_env (nx, ny, nz) =
  Check.env
    ~buffer_elems:(function "inp" | "out" -> Some (nx * ny * nz) | _ -> None)
    ()

let observed_inside (itv : Domain.itv) = function
  | None -> true
  | Some (lo, hi) ->
      (match itv.Domain.lo with None -> true | Some l -> l <= lo)
      && (match itv.Domain.hi with None -> true | Some h -> hi <= h)

let qcheck_footprint_bounds_sanitizer =
  QCheck.Test.make ~name:"footprint bounds sanitizer-observed accesses" ~count:200
    (QCheck.make ~print:stencil_print stencil_gen)
    (fun ((nx, ny, nz, offs) as case) ->
      let k = stencil_kernel case in
      let fp =
        Footprint.infer ~strides:[| 1; nx; nx * ny |] (stencil_env (nx, ny, nz)) k
      in
      let s = Vgpu.Sanitizer.create () in
      let mkbuf () = Vgpu.Buffer.F (Array.make (nx * ny * nz) 0.) in
      let inp = mkbuf () and out = mkbuf () in
      Vgpu.Sanitizer.note_host_write s inp;
      Vgpu.Sanitizer.note_host_write s out;
      Vgpu.Sanitizer.launch s k
        ~args:[ Vgpu.Args.Buf inp; Vgpu.Args.Buf out ]
        ~global:[ nx; ny; nz ];
      let dyn_ok =
        List.for_all
          (fun (name, loads, stores) ->
            match Footprint.find fp name with
            | None -> loads = None && stores = None
            | Some b ->
                observed_inside b.Footprint.fb_read.Footprint.s_lin loads
                && observed_inside b.Footprint.fb_write.Footprint.s_lin stores)
          (Vgpu.Sanitizer.access_extents s)
      in
      let rel_ok =
        match Footprint.read_rel fp "inp" with
        | None -> false
        | Some a ->
            List.for_all
              (fun (dx, dy, dz) ->
                let inside i d = a.(i).Footprint.ax_lo <= d && d <= a.(i).Footprint.ax_hi in
                inside 0 dx && inside 1 dy && inside 2 dz)
              offs
      in
      dyn_ok && rel_ok)

let qcheck_opt_never_widens =
  QCheck.Test.make ~name:"optimizer never widens a footprint" ~count:200
    (QCheck.make ~print:stencil_print stencil_gen)
    (fun ((nx, ny, nz, _) as case) ->
      let k = stencil_kernel case in
      let env = stencil_env (nx, ny, nz) in
      let strides = [| 1; nx; nx * ny |] in
      let raw = Footprint.infer ~strides env k in
      let opt = Footprint.infer ~strides env (fst (Opt.optimize k)) in
      List.for_all
        (fun (b : Footprint.buf) ->
          match Footprint.find raw b.Footprint.fb_name with
          | None -> false
          | Some rb ->
              itv_leq b.Footprint.fb_read.Footprint.s_lin rb.Footprint.fb_read.Footprint.s_lin
              && itv_leq b.Footprint.fb_write.Footprint.s_lin
                   rb.Footprint.fb_write.Footprint.s_lin
              && rel_leq b.Footprint.fb_read.Footprint.s_rel rb.Footprint.fb_read.Footprint.s_rel
              && rel_leq b.Footprint.fb_write.Footprint.s_rel
                   rb.Footprint.fb_write.Footprint.s_rel)
        opt.Footprint.fp_bufs)

let suite =
  [
    Alcotest.test_case "flat kernels: exact ±1 extents" `Quick test_flat_exact;
    Alcotest.test_case "tiled kernels: register/local ±1 recovered" `Quick test_tiled_exact;
    Alcotest.test_case "boundary kernels: honest give-up" `Quick test_boundary_indirect;
    Alcotest.test_case "optimizer containment (production kernels)" `Quick
      test_opt_never_widens;
    Alcotest.test_case "1-4 shard sync+async plans verify" `Quick test_plans_verify_clean;
    Alcotest.test_case "width-0 exchange rejected, pointed" `Quick
      test_width0_exchange_rejected;
    Alcotest.test_case "skipped exchange: stale halo" `Quick test_dropped_exchange_detected;
    Alcotest.test_case "dropped frontier wait: unordered read" `Quick
      test_dropped_wait_detected;
    Alcotest.test_case "read of unwritten allocation" `Quick test_uninit_read_detected;
    QCheck_alcotest.to_alcotest qcheck_footprint_bounds_sanitizer;
    QCheck_alcotest.to_alcotest qcheck_opt_never_widens;
  ]
