(* Static resource analysis: per-update memory access and flop counts of
   the real kernels, taint-based indirect-access classification, loop
   scaling, and the paper's reported operation counts (§VII-B2: FD-MM
   performs ~45 memory accesses and ~98 flops per update, FI-MM 6-7
   accesses and ~7 flops). *)

open Kernel_ast

let betas = [| 0.1; 0.2; 0.3; 0.4 |]

let counts k = Analysis.kernel_counts k

let buffer_stat k name =
  let c = counts k in
  match Hashtbl.find_opt c.Analysis.per_buffer name with
  | Some a -> a
  | None -> Alcotest.failf "kernel %s never touches buffer %s" k.Cast.name name

let test_fi_mm_counts () =
  let k = Acoustics.Hand_kernels.boundary_fi_mm ~precision:Cast.Double ~betas in
  let c = counts k in
  (* bidx, nbrs, material, next, prev loads = 5; next store = 1 *)
  Alcotest.(check (float 0.)) "loads" 5. (Analysis.total_loads c);
  Alcotest.(check (float 0.)) "stores" 1. (Analysis.total_stores c);
  (* the paper calls this "6 memory accesses ... 7 computations" *)
  Alcotest.(check (float 0.)) "accesses" 6. (Analysis.global_accesses c);
  Alcotest.(check bool) "roughly 7 flops" true (c.Analysis.flops >= 5. && c.Analysis.flops <= 9.)

let test_fd_mm_counts () =
  let k = Acoustics.Hand_kernels.boundary_fd_mm ~precision:Cast.Double ~mb:3 in
  let c = counts k in
  let accesses = Analysis.global_accesses c in
  (* gather: bidx nbrs material beta next prev + 3x(g1,v2,bi,d,f);
     scatter: next + 3x(g1,v1,bi,di,f): the paper reports 45. *)
  Alcotest.(check bool)
    (Printf.sprintf "fd-mm accesses ~45 (got %.0f)" accesses)
    true
    (accesses >= 35. && accesses <= 50.);
  (* our reconstruction evaluates 58 flops: the paper's 98 includes the
     per-branch operations its (unpublished) kernel performs beyond
     Listing 4's structure; the regime — an order of magnitude above
     FI-MM — is what matters for the roofline *)
  Alcotest.(check bool)
    (Printf.sprintf "fd-mm flops order (got %.0f)" c.Analysis.flops)
    true
    (c.Analysis.flops >= 45. && c.Analysis.flops <= 110.)

let test_indirect_classification () =
  let k = Acoustics.Hand_kernels.boundary_fi_mm ~precision:Cast.Double ~betas in
  (* bidx and material are indexed by the work-item id: coalesced *)
  Alcotest.(check bool) "bidx coalesced" false (buffer_stat k "bidx").Analysis.indirect;
  Alcotest.(check bool) "material coalesced" false (buffer_stat k "material").Analysis.indirect;
  (* nbrs, next, prev are indexed through idx = bidx[i]: gather/scatter *)
  Alcotest.(check bool) "nbrs indirect" true (buffer_stat k "nbrs").Analysis.indirect;
  Alcotest.(check bool) "next indirect" true (buffer_stat k "next").Analysis.indirect;
  Alcotest.(check bool) "prev indirect" true (buffer_stat k "prev").Analysis.indirect

let test_branch_state_coalesced () =
  (* g1/v1/v2 are indexed b*nB + i: affine in the work-item id, so they
     must not be classified as indirect even inside the branch loops *)
  let k = Acoustics.Hand_kernels.boundary_fd_mm ~precision:Cast.Double ~mb:3 in
  Alcotest.(check bool) "g1 coalesced" false (buffer_stat k "g1").Analysis.indirect;
  Alcotest.(check bool) "v1 coalesced" false (buffer_stat k "v1").Analysis.indirect;
  Alcotest.(check bool) "v2 coalesced" false (buffer_stat k "v2").Analysis.indirect;
  (* and the loop multiplies them by the branch count *)
  Alcotest.(check (float 0.)) "g1 loads x3" 3. (buffer_stat k "g1").Analysis.loads;
  Alcotest.(check (float 0.)) "g1 stores x3" 3. (buffer_stat k "g1").Analysis.stores;
  Alcotest.(check (float 0.)) "v1 stores x3" 3. (buffer_stat k "v1").Analysis.stores

let test_private_not_counted () =
  (* the hand-written FI-MM keeps beta in a private array: no global
     buffer named beta_p may appear in the analysis *)
  let k = Acoustics.Hand_kernels.boundary_fi_mm ~precision:Cast.Double ~betas in
  let c = counts k in
  Alcotest.(check bool) "no beta buffer traffic" true
    (Hashtbl.find_opt c.Analysis.per_buffer "beta_p" = None);
  (* whereas the Lift version passes beta as a global buffer *)
  let lk =
    (Lift_acoustics.Programs.compile ~name:"fimm" ~precision:Cast.Double
       (Lift_acoustics.Programs.boundary_fi_mm ()))
      .Lift.Codegen.kernel
  in
  let lc = counts lk in
  Alcotest.(check bool) "lift loads beta from global memory" true
    (match Hashtbl.find_opt lc.Analysis.per_buffer "beta" with
    | Some a -> a.Analysis.loads >= 1.
    | None -> false)

let test_loop_scaling () =
  let open Cast in
  let k =
    {
      name = "loopy";
      precision = Double;
      params = [ param "a" Real; param ~kind:Scalar_param "n" Int ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [
          for_ "i" ~from:(Int_lit 0) ~below:(Int_lit 5)
            [ Store ("a", Var "i", Load ("a", Var "i")) ];
        ];
    }
  in
  let c = counts k in
  Alcotest.(check (float 0.)) "5 loads" 5. (Analysis.total_loads c);
  Alcotest.(check (float 0.)) "5 stores" 5. (Analysis.total_stores c);
  (* unknown symbolic bound assumes one iteration unless resolved *)
  let k2 = { k with body = [ for_ "i" ~from:(Int_lit 0) ~below:(Var "n") [ Store ("a", Var "i", Real_lit 0.) ] ] } in
  let c2 = Analysis.kernel_counts k2 in
  Alcotest.(check (float 0.)) "unresolved bound: 1 iter" 1. (Analysis.total_stores c2);
  let c3 = Analysis.kernel_counts ~param_value:(function "n" -> Some 7 | _ -> None) k2 in
  Alcotest.(check (float 0.)) "resolved bound: 7 iters" 7. (Analysis.total_stores c3)

let test_bytes_by_precision () =
  let k p = Acoustics.Hand_kernels.volume ~precision:p in
  let bytes p = Analysis.bytes ~precision:p (counts (k p)) in
  let bd = bytes Cast.Double and bs = bytes Cast.Single in
  Alcotest.(check bool) "double moves more bytes than single" true (bd > bs);
  (* int traffic (nbrs) is 4 bytes in both *)
  Alcotest.(check bool) "ratio below 2 because of int loads" true (bd /. bs < 2.)

let suite =
  [
    Alcotest.test_case "FI-MM operation counts" `Quick test_fi_mm_counts;
    Alcotest.test_case "FD-MM operation counts (paper ~45/~98)" `Quick test_fd_mm_counts;
    Alcotest.test_case "indirect access classification" `Quick test_indirect_classification;
    Alcotest.test_case "branch state is coalesced" `Quick test_branch_state_coalesced;
    Alcotest.test_case "private arrays not counted" `Quick test_private_not_counted;
    Alcotest.test_case "loop trip scaling" `Quick test_loop_scaling;
    Alcotest.test_case "bytes by precision" `Quick test_bytes_by_precision;
  ]
