(* Electromagnetic extension (paper §VIII): the Lift-generated 2D FDTD
   kernels against the reference implementation, plus physics checks. *)

let approx msg a b =
  Array.iteri
    (fun i x ->
      if Float.abs (x -. b.(i)) > 1e-12 *. (1. +. Float.abs x) then
        Alcotest.failf "%s: index %d differs: %.17g vs %.17g" msg i x b.(i))
    a

let make_scene () =
  let g = Em.Em_grid.create ~nx:30 ~ny:24 in
  Em.Em_grid.fill_material g ~x0:0 ~y0:14 ~x1:29 ~y1:23 Em.Em_grid.dry_soil;
  Em.Em_grid.fill_material g ~x0:12 ~y0:18 ~x1:17 ~y1:20 Em.Em_grid.metal;
  g

let test_lift_matches_reference () =
  let g_ref = make_scene () and g_lift = make_scene () in
  let c = Em.Em_lift.compile () in
  for step = 0 to 39 do
    let v = Em.Em_grid.pulse ~t0:10. ~spread:3. step in
    Em.Em_grid.inject g_ref ~i:15 ~j:5 v;
    Em.Em_grid.inject g_lift ~i:15 ~j:5 v;
    Em.Em_grid.step_reference g_ref;
    Em.Em_lift.step c g_lift
  done;
  approx "ez" g_ref.Em.Em_grid.ez g_lift.Em.Em_grid.ez;
  approx "hx" g_ref.Em.Em_grid.hx g_lift.Em.Em_grid.hx;
  approx "hy" g_ref.Em.Em_grid.hy g_lift.Em.Em_grid.hy

let test_wave_propagates () =
  let g = Em.Em_grid.create ~nx:40 ~ny:40 in
  let c = Em.Em_lift.compile () in
  for step = 0 to 29 do
    Em.Em_grid.inject g ~i:20 ~j:20 (Em.Em_grid.pulse ~t0:8. ~spread:2.5 step);
    Em.Em_lift.step c g
  done;
  (* energy reached a ring away from the source but not the far corner *)
  let at i j = Float.abs (Em.Em_grid.read_ez g ~i ~j) in
  Alcotest.(check bool) "field reached radius 10" true (at 30 20 > 1e-8 || at 20 30 > 1e-8);
  Alcotest.(check bool) "corner still quiet" true (at 2 2 < 1e-8)

let test_conductive_ground_absorbs () =
  let run sigma =
    let g = Em.Em_grid.create ~nx:30 ~ny:30 in
    Em.Em_grid.fill_material g ~x0:0 ~y0:0 ~x1:29 ~y1:29
      { Em.Em_grid.eps_r = 1.; sigma };
    let c = Em.Em_lift.compile () in
    for step = 0 to 120 do
      if step < 25 then
        Em.Em_grid.inject g ~i:15 ~j:15 (Em.Em_grid.pulse ~t0:8. ~spread:2.5 step);
      Em.Em_lift.step c g
    done;
    Em.Em_grid.field_energy g
  in
  let lossless = run 0.0 and lossy = run 0.2 in
  Alcotest.(check bool)
    (Printf.sprintf "conductivity dissipates (%.3g vs %.3g)" lossless lossy)
    true (lossy < lossless /. 2.)

let test_generated_kernels_update_in_place () =
  (* the H kernel must write two arrays in place and allocate no output *)
  let prog = Em.Em_lift.update_h () in
  let c = Lift.Codegen.compile_kernel ~name:"h" ~precision:Kernel_ast.Cast.Double prog in
  Alcotest.(check (option string)) "no out buffer" None c.Lift.Codegen.out_param;
  Alcotest.(check (list string)) "writes hx and hy" [ "hx"; "hy" ] c.Lift.Codegen.written_params;
  let src = Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel in
  Alcotest.(check bool) "stores to hx" true (Test_util.contains src "hx[");
  Alcotest.(check bool) "stores to hy" true (Test_util.contains src "hy[")

let suite =
  [
    Alcotest.test_case "lift kernels == reference" `Quick test_lift_matches_reference;
    Alcotest.test_case "wave propagates" `Quick test_wave_propagates;
    Alcotest.test_case "conductive ground absorbs" `Quick test_conductive_ground_absorbs;
    Alcotest.test_case "multi-array in-place volume kernel" `Quick
      test_generated_kernels_update_in_place;
  ]
