(* The JIT against the reference interpreter on randomly generated
   kernels: same buffers in, same buffers out.  The generator produces
   well-formed kernels by construction (declared-before-use, in-bounds
   indices via modulo). *)

open Kernel_ast.Cast

let n_elems = 8

(* Generator state: names of declared scalars per type. *)
type genv = { ints : string list; reals : string list; mutable fresh : int }

let fresh g base =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" base g.fresh

let gen_int_expr (g : genv) : expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      ([ map (fun n -> Int_lit n) (int_range 0 7); return (Global_id 0) ]
      @ List.map (fun v -> return (Var v)) g.ints)
  in
  (* indices are kept in bounds with a mod *)
  let bounded e =
    Binop (Mod, Binop (Add, Binop (Mod, e, Int_lit n_elems), Int_lit n_elems), Int_lit n_elems)
  in
  sized @@ QCheck.Gen.fix (fun self k ->
      if k <= 0 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Binop (Add, a, b)) (self (k / 2)) (self (k / 2));
            map2 (fun a b -> Binop (Sub, a, b)) (self (k / 2)) (self (k / 2));
            map2 (fun a b -> Binop (Mul, a, b)) (self (k / 2)) (self (k / 2));
            map2 (fun a b -> Binop (Lt, a, b)) (self (k / 2)) (self (k / 2));
            map (fun e -> Load ("idx", bounded e)) (self (k - 1));
            map3 (fun c a b -> Ternary (c, a, b)) (self (k / 3)) (self (k / 3)) (self (k / 3));
          ])

let gen_real_expr (g : genv) : expr QCheck.Gen.t =
  let open QCheck.Gen in
  let bounded e =
    Binop (Mod, Binop (Add, Binop (Mod, e, Int_lit n_elems), Int_lit n_elems), Int_lit n_elems)
  in
  let leaf =
    oneof
      ([ map (fun r -> Real_lit (float_of_int r /. 4.)) (int_range (-8) 8) ]
      @ List.map (fun v -> return (Var v)) g.reals)
  in
  sized @@ QCheck.Gen.fix (fun self k ->
      if k <= 0 then leaf
      else
        oneof
          [
            leaf;
            map2 (fun a b -> Binop (Add, a, b)) (self (k / 2)) (self (k / 2));
            map2 (fun a b -> Binop (Sub, a, b)) (self (k / 2)) (self (k / 2));
            map2 (fun a b -> Binop (Mul, a, b)) (self (k / 2)) (self (k / 2));
            (gen_int_expr g >|= fun e -> Load ("a", bounded e));
            (gen_int_expr g >|= fun e -> Unop (To_real, e));
            map (fun a -> Call (Fabs, [ a ])) (self (k - 1));
          ])

let rec gen_stmts (g : genv) (depth : int) : stmt list QCheck.Gen.t =
  let open QCheck.Gen in
  let bounded e =
    Binop (Mod, Binop (Add, Binop (Mod, e, Int_lit n_elems), Int_lit n_elems), Int_lit n_elems)
  in
  if depth <= 0 then return []
  else
    let gen_one =
      frequency
        [
          ( 3,
            gen_int_expr g >|= fun e ->
            let v = fresh g "iv" in
            ([ Decl (Int, v, Some e) ], { g with ints = v :: g.ints }) );
          ( 3,
            gen_real_expr g >|= fun e ->
            let v = fresh g "rv" in
            ([ Decl (Real, v, Some e) ], { g with reals = v :: g.reals }) );
          ( 2,
            pair (gen_int_expr g) (gen_real_expr g) >|= fun (i, e) ->
            ([ Store ("out", bounded i, e) ], g) );
          ( 1,
            pair (gen_int_expr g) (gen_real_expr g) >|= fun (c, e) ->
            let v = fresh g "sv" in
            ( [ Decl (Real, v, None); If (c, [ Assign (v, e) ], [ Assign (v, Real_lit 0.) ]) ],
              { g with reals = v :: g.reals } ) );
        ]
    in
    gen_one >>= fun (stmts, g') ->
    gen_stmts g' (depth - 1) >|= fun rest -> stmts @ rest

let gen_kernel : kernel QCheck.Gen.t =
  let open QCheck.Gen in
  let g = { ints = [ "gid" ]; reals = []; fresh = 0 } in
  int_range 2 6 >>= fun depth ->
  gen_stmts g depth >|= fun body ->
  {
    name = "qk";
    precision = Double;
    params = [ param "a" Real; param "out" Real; param "idx" Int ];
    global_size = [ Int_lit n_elems ];
    local_size = [];
    body = Decl (Int, "gid", Some (Global_id 0)) :: body;
  }

let pp_kernel k = Kernel_ast.Print.kernel_to_string k

let arb_kernel = QCheck.make ~print:pp_kernel gen_kernel

let run_both k =
  let mk () =
    ( Array.init n_elems (fun i -> float_of_int i /. 2.),
      Array.make n_elems 0.,
      Array.init n_elems (fun i -> (i * 3) mod n_elems) )
  in
  let a1, o1, i1 = mk () in
  Vgpu.Exec.launch k
    ~args:[ Buf (Vgpu.Buffer.F a1); Buf (Vgpu.Buffer.F o1); Buf (Vgpu.Buffer.I i1) ]
    ~global:[ n_elems ];
  let a2, o2, i2 = mk () in
  Vgpu.Jit.launch (Vgpu.Jit.compile k)
    ~args:[ Buf (Vgpu.Buffer.F a2); Buf (Vgpu.Buffer.F o2); Buf (Vgpu.Buffer.I i2) ]
    ~global:[ n_elems ];
  (o1, o2)

let qcheck_jit_matches_interp =
  QCheck.Test.make ~name:"jit == interpreter on random kernels" ~count:400 arb_kernel
    (fun k ->
      let o1, o2 = run_both k in
      Array.for_all2
        (fun a b ->
          (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-12 *. (1. +. Float.abs a))
        o1 o2)

(* Simplification must not change kernel results either. *)
let qcheck_simplify_kernel =
  QCheck.Test.make ~name:"simplify_kernel preserves results" ~count:200 arb_kernel (fun k ->
      let o1, _ = run_both k in
      let o1', _ = run_both (simplify_kernel k) in
      Array.for_all2
        (fun a b -> (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-12)
        o1 o1')

(* Unit tests for specific JIT behaviours. *)

let test_loop_and_private_array () =
  let k =
    {
      name = "loop";
      precision = Double;
      params = [ param "out" Real; param ~kind:Scalar_param "n" Int ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [
          Decl_arr (Real, "tmp", 4);
          for_ "i" ~from:(Int_lit 0) ~below:(Var "n")
            [ Store ("tmp", Var "i", Unop (To_real, Binop (Mul, Var "i", Var "i"))) ];
          Decl (Real, "acc", Some (Real_lit 0.));
          for_ "j" ~from:(Int_lit 0) ~below:(Var "n")
            [ Assign ("acc", Binop (Add, Var "acc", Load ("tmp", Var "j"))) ];
          Store ("out", Int_lit 0, Var "acc");
        ];
    }
  in
  List.iter
    (fun launch ->
      let out = Array.make 1 0. in
      launch k [ Vgpu.Args.Buf (Vgpu.Buffer.F out); Vgpu.Args.Int_arg 4 ];
      Alcotest.(check (float 1e-12)) "sum of squares" 14. out.(0))
    [
      (fun k args -> Vgpu.Exec.launch k ~args ~global:[ 1 ]);
      (fun k args -> Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global:[ 1 ]);
    ]

let test_scalar_args_and_3d () =
  let k =
    {
      name = "threed";
      precision = Double;
      params = [ param "out" Real; param ~kind:Scalar_param "scale" Real ];
      global_size = [ Int_lit 2; Int_lit 3; Int_lit 2 ];
      local_size = [];
      body =
        [
          Decl
            ( Int,
              "lin",
              Some
                (Binop
                   ( Add,
                     Binop (Add, Global_id 0, Binop (Mul, Global_id 1, Int_lit 2)),
                     Binop (Mul, Global_id 2, Int_lit 6) )) );
          Store ("out", Var "lin", Binop (Mul, Unop (To_real, Var "lin"), Var "scale"));
        ];
    }
  in
  let out = Array.make 12 (-1.) in
  Vgpu.Jit.launch (Vgpu.Jit.compile k)
    ~args:[ Buf (Vgpu.Buffer.F out); Real_arg 2.0 ]
    ~global:[ 2; 3; 2 ];
  Array.iteri (fun i v -> Alcotest.(check (float 0.)) "3d" (float_of_int i *. 2.) v) out

let test_arity_mismatch () =
  let k =
    { name = "k"; precision = Double; params = [ param "a" Real ]; global_size = [ Int_lit 1 ]; local_size = []; body = [] }
  in
  (match Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args:[] ~global:[ 1 ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected arity error");
  match Vgpu.Exec.launch k ~args:[ Vgpu.Args.Int_arg 1 ] ~global:[ 1 ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected kind mismatch error"

(* Regression: real-typed Mod.  The interpreter used to truncate both
   operands to int; the JIT compiled real operands through the float
   path.  Both now agree on C fmod semantics (truncated division,
   result carries the sign of the dividend), and int Mod still matches
   C's %. *)
let test_real_mod_semantics () =
  let k ty a b =
    let lit x = if ty = Real then Real_lit x else Int_lit (int_of_float x) in
    {
      name = "modk";
      precision = Double;
      params = [ param "out" Real ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [ Store ("out", Int_lit 0,
                 (if ty = Real then Binop (Mod, lit a, lit b)
                  else Unop (To_real, Binop (Mod, lit a, lit b)))) ];
    }
  in
  let run launch kernel =
    let out = Array.make 1 nan in
    launch kernel [ Vgpu.Args.Buf (Vgpu.Buffer.F out) ];
    out.(0)
  in
  let interp k = run (fun k args -> Vgpu.Exec.launch k ~args ~global:[ 1 ]) k in
  let jit k = run (fun k args -> Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global:[ 1 ]) k in
  (* fmod reference cases, incl. sign of dividend and fractional operands *)
  List.iter
    (fun (a, b, expect) ->
      let kr = k Real a b in
      Alcotest.(check (float 1e-15)) (Printf.sprintf "interp fmod(%g,%g)" a b) expect (interp kr);
      Alcotest.(check (float 1e-15)) (Printf.sprintf "jit fmod(%g,%g)" a b) expect (jit kr))
    [ (7.5, 2., 1.5); (-7.5, 2., -1.5); (7.5, -2., 1.5); (5.25, 1.5, 0.75); (6., 3., 0.) ];
  (* int Mod keeps C % semantics in both engines *)
  List.iter
    (fun (a, b, expect) ->
      let ki = k Int a b in
      Alcotest.(check (float 0.)) (Printf.sprintf "interp %g %% %g" a b) expect (interp ki);
      Alcotest.(check (float 0.)) (Printf.sprintf "jit %g %% %g" a b) expect (jit ki))
    [ (7., 2., 1.); (-7., 2., -1.); (7., -2., 1.) ]

let test_single_precision_store_rounding () =
  let k precision =
    {
      name = "round";
      precision;
      params = [ param "out" Real ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body = [ Store ("out", Int_lit 0, Binop (Div, Real_lit 1., Real_lit 3.)) ];
    }
  in
  let out_d = Array.make 1 0. and out_s = Array.make 1 0. in
  Vgpu.Jit.launch (Vgpu.Jit.compile (k Double)) ~args:[ Buf (Vgpu.Buffer.F out_d) ] ~global:[ 1 ];
  Vgpu.Jit.launch (Vgpu.Jit.compile (k Single)) ~args:[ Buf (Vgpu.Buffer.F out_s) ] ~global:[ 1 ];
  Alcotest.(check bool) "single differs from double" true (out_d.(0) <> out_s.(0));
  Alcotest.(check (float 1e-7)) "single close to double" out_d.(0) out_s.(0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_jit_matches_interp;
    QCheck_alcotest.to_alcotest qcheck_simplify_kernel;
    Alcotest.test_case "loops and private arrays" `Quick test_loop_and_private_array;
    Alcotest.test_case "scalar args and 3d ndrange" `Quick test_scalar_args_and_3d;
    Alcotest.test_case "arity and kind mismatches" `Quick test_arity_mismatch;
    Alcotest.test_case "real Mod is C fmod in both engines" `Quick test_real_mod_semantics;
    Alcotest.test_case "single-precision store rounding" `Quick test_single_precision_store_rounding;
  ]
