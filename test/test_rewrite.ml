(* Rewrite rules: each rule fires where expected and preserves semantics
   (checked against the interpreter, including on randomly generated
   map/zip/arith pipelines). *)

open Lift

let n = Size.var "N"
let vec = Ty.array Ty.real n
let sizes k = function "N" -> Some k | _ -> None

let eval_prog prog args = Eval.run ~sizes:(sizes 6) prog args

let check_same_semantics msg prog prog' =
  let input () = Eval.of_float_array [| 1.; -2.; 3.; 0.5; -0.25; 10. |] in
  let v1 = eval_prog prog [ input () ] in
  let v2 = eval_prog prog' [ input () ] in
  Alcotest.(check (list (float 1e-12)))
    msg
    (Array.to_list (Eval.to_float_array v1))
    (Array.to_list (Eval.to_float_array v2))

let test_fuse_map_map () =
  let a = Ast.named_param "a" vec in
  let body =
    Ast.map
      (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 1.)))
      (Ast.map (Ast.lam1 Ty.real (fun x -> Ast.(x *! real 2.))) (Ast.Param a))
  in
  let prog = { Ast.l_params = [ a ]; l_body = body } in
  let rewritten = Rewrite.normalize_lam prog in
  (* fused: a single map remains *)
  let rec count_maps = function
    | Ast.Map (_, f, arg) -> 1 + count_maps f.Ast.l_body + count_maps arg
    | Ast.Binop (_, x, y) -> count_maps x + count_maps y
    | _ -> 0
  in
  Alcotest.(check int) "one map after fusion" 1 (count_maps rewritten.Ast.l_body);
  check_same_semantics "fusion preserves" prog rewritten

let test_split_join () =
  let a = Ast.named_param "a" vec in
  let prog = { Ast.l_params = [ a ]; l_body = Ast.Join (Ast.Split (Size.const 2, Ast.Param a)) } in
  let rewritten = Rewrite.normalize_lam prog in
  (match rewritten.Ast.l_body with
  | Ast.Param _ -> ()
  | e -> Alcotest.failf "not collapsed: %s" (Ast.to_string e));
  check_same_semantics "split/join id" prog rewritten

let test_concat_single_pad_zero () =
  let a = Ast.named_param "a" vec in
  let prog =
    { Ast.l_params = [ a ]; l_body = Ast.Concat [ Ast.Pad (0, 0, Ast.real 0., Ast.Param a) ] }
  in
  let rewritten = Rewrite.normalize_lam prog in
  match rewritten.Ast.l_body with
  | Ast.Param _ -> ()
  | e -> Alcotest.failf "not collapsed: %s" (Ast.to_string e)

let test_lowering () =
  let a = Ast.named_param "a" vec in
  let prog =
    { Ast.l_params = [ a ];
      l_body = Ast.map (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 1.))) (Ast.Param a) }
  in
  let lowered = Rewrite.lower_outer_map_to_glb prog in
  (match lowered.Ast.l_body with
  | Ast.Map (Ast.Glb 0, _, _) -> ()
  | e -> Alcotest.failf "not lowered: %s" (Ast.to_string e));
  (* lowering then compiling produces an NDRange kernel *)
  let c = Codegen.compile_kernel ~name:"low" ~precision:Kernel_ast.Cast.Double lowered in
  Alcotest.(check bool) "kernel uses global id" true
    (Test_util.contains
       (Kernel_ast.Print.kernel_to_string c.Codegen.kernel)
       "get_global_id(0)")

(* Random pipelines of unary maps and scalar ops; rewriting must preserve
   the interpreter's result. *)
let qcheck_normalize_preserves =
  let open QCheck in
  let scalar_fun_gen =
    Gen.oneofl
      [
        (fun x -> Ast.(x +! real 1.));
        (fun x -> Ast.(x *! real 2.));
        (fun x -> Ast.(x -! real 0.5));
        (fun x -> Ast.Select (Ast.(x >! real 0.), x, Ast.(real 0. -! x)));
        (fun x -> Ast.(x *! x));
      ]
  in
  let pipeline_gen =
    Gen.(
      list_size (int_range 1 5) scalar_fun_gen >|= fun fs ->
      let a = Ast.named_param "a" vec in
      let body =
        List.fold_left
          (fun acc f -> Ast.map (Ast.lam1 Ty.real f) acc)
          (Ast.Join (Ast.Split (Size.const 2, Ast.Param a)))
          fs
      in
      { Ast.l_params = [ a ]; l_body = body })
  in
  let arb = make ~print:(fun p -> Ast.to_string p.Ast.l_body) pipeline_gen in
  Test.make ~name:"normalize preserves semantics" ~count:200 arb (fun prog ->
      let input () = Eval.of_float_array [| 1.; -2.; 3.; 0.5; -0.25; 10. |] in
      let v1 = Eval.to_float_array (eval_prog prog [ input () ]) in
      let v2 = Eval.to_float_array (eval_prog (Rewrite.normalize_lam prog) [ input () ]) in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) v1 v2)

(* Rewriting then compiling also preserves semantics end to end. *)
let qcheck_rewrite_compile_agree =
  let open QCheck in
  let scalar_fun_gen =
    Gen.oneofl
      [
        (fun x -> Ast.(x +! real 1.));
        (fun x -> Ast.(x *! real 2.));
        (fun x -> Ast.(x *! x));
      ]
  in
  let pipeline_gen =
    Gen.(
      list_size (int_range 1 4) scalar_fun_gen >|= fun fs ->
      let a = Ast.named_param "a" vec in
      let body =
        List.fold_left (fun acc f -> Ast.map (Ast.lam1 Ty.real f) acc) (Ast.Param a) fs
      in
      { Ast.l_params = [ a ]; l_body = body })
  in
  let arb = make ~print:(fun p -> Ast.to_string p.Ast.l_body) pipeline_gen in
  Test.make ~name:"rewrite+compile == eval" ~count:100 arb (fun prog ->
      let input = [| 1.; -2.; 3.; 0.5; -0.25; 10. |] in
      let expected =
        Eval.to_float_array (eval_prog prog [ Eval.of_float_array input ])
      in
      let lowered = Rewrite.lower_outer_map_to_glb (Rewrite.normalize_lam prog) in
      let c = Codegen.compile_kernel ~name:"q" ~precision:Kernel_ast.Cast.Double lowered in
      let out = Array.make 6 0. in
      let args =
        List.map
          (fun (p : Kernel_ast.Cast.param) ->
            match (p.p_kind, p.p_name) with
            | Kernel_ast.Cast.Global_buf, "a" -> Vgpu.Args.Buf (Vgpu.Buffer.F input)
            | Kernel_ast.Cast.Global_buf, "out" -> Vgpu.Args.Buf (Vgpu.Buffer.F out)
            | Kernel_ast.Cast.Scalar_param, "N" -> Vgpu.Args.Int_arg 6
            | _ -> failwith "unexpected param")
          c.Codegen.kernel.Kernel_ast.Cast.params
      in
      Vgpu.Jit.launch (Vgpu.Jit.compile c.Codegen.kernel) ~args ~global:[ 6 ];
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-12) expected out)

let suite =
  [
    Alcotest.test_case "fuse map map" `Quick test_fuse_map_map;
    Alcotest.test_case "split/join identity" `Quick test_split_join;
    Alcotest.test_case "concat single & pad zero" `Quick test_concat_single_pad_zero;
    Alcotest.test_case "glb lowering" `Quick test_lowering;
    QCheck_alcotest.to_alcotest qcheck_normalize_preserves;
    QCheck_alcotest.to_alcotest qcheck_rewrite_compile_agree;
  ]
