(* Cross-engine conformance harness for the work-group execution tier.

   One harness, four engines (reference interpreter, closure JIT,
   domain-parallel JIT, native compiled C), two precisions, optimizer on
   and off: every output buffer must match the interpreter bit-for-bit
   in all sixteen configurations.  The torture kernel from the native
   suite is re-run through the harness, and three grouped kernels
   exercise what the flat suites cannot: barriers ordering local-memory
   traffic (reduction), cross-work-item data exchange through __local
   (tiled transpose), and the group/local builtin family (addressing).

   Negative paths mirror test_check's racy/off-by-one pairs at the
   work-group tier: a local-memory race and a divergent barrier are each
   caught by BOTH the static verifier (Kernel_ast.Check) and the
   shadow-memory sanitizer (Vgpu.Sanitizer).  Two qcheck properties pin
   the soundness direction (statically Safe grouped kernels run
   sanitizer-clean) and the tentpole's contract (the 2.5D-tiled volume
   kernel equals the flat one bit-for-bit for arbitrary room sizes, tile
   shapes and shard counts, with shrinking to a minimal failing tile). *)

open Kernel_ast.Cast
module Check = Kernel_ast.Check

(* Compiled-C artefacts go to a scratch cache, not the user's. *)
let scratch_cache =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "racs-conformance-test-%d" (Unix.getpid ()))
     in
     Vgpu.Native.set_cache_dir dir;
     dir)

let use_scratch_cache () = ignore (Lazy.force scratch_cache)

(* -- The harness ----------------------------------------------------- *)

type case = {
  c_kernel : precision -> kernel;
  c_args : unit -> Vgpu.Args.t list;  (** fresh buffers on every call *)
  c_global : int list;
}

let engines =
  [
    ("interp", fun k args global -> Vgpu.Exec.launch k ~args ~global);
    ("jit", fun k args global -> Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global);
    ( "jit-parallel",
      fun k args global -> Vgpu.Pool.launch ~domains:3 (Vgpu.Jit.compile k) ~args ~global );
    ("native", fun k args global -> Vgpu.Native.launch (Vgpu.Native.compile k) ~args ~global);
  ]

let buffers args = List.filter_map (function Vgpu.Args.Buf b -> Some b | _ -> None) args

let check_buffers msg ref_bufs bufs =
  List.iteri
    (fun i (r, b) ->
      match (r, b) with
      | Vgpu.Buffer.F a, Vgpu.Buffer.F b -> Test_util.check_bits (Printf.sprintf "%s buf %d" msg i) a b
      | Vgpu.Buffer.I a, Vgpu.Buffer.I b ->
          Alcotest.(check (array int)) (Printf.sprintf "%s buf %d" msg i) a b
      | _ -> Alcotest.failf "%s buf %d: buffer kinds differ" msg i)
    (List.combine ref_bufs bufs)

(* Run the case on every engine x precision x optimizer setting; the
   interpreter (first engine) is the reference within each
   configuration, so bit-identity holds across all sixteen runs. *)
let conform ~name case =
  use_scratch_cache ();
  List.iter
    (fun (precision, plabel) ->
      List.iter
        (fun optimize ->
          let k = case.c_kernel precision in
          let k = if optimize then fst (Kernel_ast.Opt.optimize k) else k in
          let runs =
            List.map
              (fun (elabel, run) ->
                let args = case.c_args () in
                run k args case.c_global;
                (elabel, buffers args))
              engines
          in
          match runs with
          | (ref_label, ref_bufs) :: rest ->
              List.iter
                (fun (elabel, bufs) ->
                  check_buffers
                    (Printf.sprintf "%s %s opt=%b: %s vs %s" name plabel optimize elabel
                       ref_label)
                    ref_bufs bufs)
                rest
          | [] -> assert false)
        [ false; true ])
    [ (Double, "double"); (Single, "single") ]

(* -- Torture kernel, re-run through the harness ---------------------- *)

let test_torture () =
  conform ~name:"torture"
    {
      c_kernel = (fun precision -> Test_native.torture_kernel ~precision);
      c_args =
        (fun () ->
          let _, _, args = Test_native.torture_args () in
          args);
      c_global = [ Test_native.n ];
    }

(* -- Grouped kernels ------------------------------------------------- *)

(* Barrier-ordered reduction: every lane stages src[gid] in __local,
   lane 0 sums the tile in lane order after the barrier and writes one
   cell per group.  The serial lane-order sum makes the FP association
   deterministic, so cross-engine agreement is exact, not approximate. *)
let groups = 6
let lanes = 8

let reduce_kernel ~precision =
  {
    name = "wg_reduce";
    precision;
    params = [ param "out" Real; param "src" Real ];
    global_size = [ Int_lit (groups * lanes) ];
    local_size = [ lanes ];
    body =
      [
        Decl_local (Real, "scratch", lanes);
        Store ("scratch", Local_id 0, Load ("src", Global_id 0));
        Barrier;
        If
          ( Local_id 0 =: Int_lit 0,
            [
              Decl (Real, "acc", Some (Real_lit 0.0));
              for_ "i" ~from:(Int_lit 0) ~below:(Local_size 0)
                [ Assign ("acc", Var "acc" +: Load ("scratch", Var "i")) ];
              Store ("out", Group_id 0, Var "acc");
            ],
            [] );
      ];
  }

let test_barrier_reduction () =
  let mk_args () =
    let src = Array.init (groups * lanes) (fun i -> (float_of_int i *. 0.37) -. 7.5) in
    Vgpu.Args.[ Buf (Vgpu.Buffer.F (Array.make groups 0.)); Buf (Vgpu.Buffer.F src) ]
  in
  conform ~name:"reduce"
    { c_kernel = (fun precision -> reduce_kernel ~precision); c_args = mk_args; c_global = [ groups * lanes ] };
  (* and the interpreter result is the actual group sums *)
  let args = mk_args () in
  Vgpu.Exec.launch (reduce_kernel ~precision:Double) ~args ~global:[ groups * lanes ];
  match buffers args with
  | [ Vgpu.Buffer.F out; Vgpu.Buffer.F src ] ->
      for g = 0 to groups - 1 do
        let expect = ref 0. in
        for l = 0 to lanes - 1 do
          expect := !expect +. src.((g * lanes) + l)
        done;
        Test_util.check_bits "group sum" [| !expect |] [| out.(g) |]
      done
  | _ -> assert false

(* Tiled transpose: dst[x*H + y] = src[y*W + x], staged through a TxT
   __local tile so every work-item reads a slot another lane wrote —
   the data exchange only a barrier makes well-defined. *)
let tr_t = 4
let tr_w = 16
let tr_h = 8

let transpose_kernel ~precision =
  let t = Int_lit tr_t in
  {
    name = "wg_transpose";
    precision;
    params = [ param "dst" Real; param "src" Real ];
    global_size = [ Int_lit tr_w; Int_lit tr_h ];
    local_size = [ tr_t; tr_t ];
    body =
      [
        Decl_local (Real, "tile", tr_t * tr_t);
        Store
          ( "tile",
            (Local_id 1 *: t) +: Local_id 0,
            Load ("src", (Global_id 1 *: Int_lit tr_w) +: Global_id 0) );
        Barrier;
        Decl (Int, "r", Some ((Group_id 0 *: t) +: Local_id 1));
        Decl (Int, "c", Some ((Group_id 1 *: t) +: Local_id 0));
        Store ("dst", (Var "r" *: Int_lit tr_h) +: Var "c", Load ("tile", (Local_id 0 *: t) +: Local_id 1));
      ];
  }

let test_local_transpose () =
  let mk_args () =
    let src = Array.init (tr_w * tr_h) (fun i -> float_of_int ((i * 7 mod 83) - 41) *. 0.625) in
    Vgpu.Args.[ Buf (Vgpu.Buffer.F (Array.make (tr_w * tr_h) nan)); Buf (Vgpu.Buffer.F src) ]
  in
  conform ~name:"transpose"
    {
      c_kernel = (fun precision -> transpose_kernel ~precision);
      c_args = mk_args;
      c_global = [ tr_w; tr_h ];
    };
  let args = mk_args () in
  Vgpu.Exec.launch (transpose_kernel ~precision:Double) ~args ~global:[ tr_w; tr_h ];
  match buffers args with
  | [ Vgpu.Buffer.F dst; Vgpu.Buffer.F src ] ->
      for x = 0 to tr_w - 1 do
        for y = 0 to tr_h - 1 do
          Test_util.check_bits "transposed cell" [| src.((y * tr_w) + x) |] [| dst.((x * tr_h) + y) |]
        done
      done
  | _ -> assert false

(* Group/local builtin addressing: every lane encodes its coordinates
   through all five id builtins; any engine disagreeing on the
   group decomposition of the NDRange diverges immediately. *)
let ids_kernel ~precision =
  {
    name = "wg_ids";
    precision;
    params = [ param "out" Int ];
    global_size = [ Int_lit 12; Int_lit 6 ];
    local_size = [ 4; 3 ];
    body =
      [
        Decl
          ( Int,
            "tag",
            Some
              ((Group_id 0 *: Int_lit 100000)
              +: (Group_id 1 *: Int_lit 10000)
              +: (Local_id 0 *: Int_lit 1000)
              +: (Local_id 1 *: Int_lit 100)
              +: (Local_size 0 *: Int_lit 10)
              +: Local_size 1) );
        Store ("out", (Global_id 1 *: Global_size 0) +: Global_id 0, Var "tag");
      ];
  }

let test_group_id_addressing () =
  let mk_args () = Vgpu.Args.[ Buf (Vgpu.Buffer.I (Array.make (12 * 6) (-1))) ] in
  conform ~name:"ids"
    { c_kernel = (fun precision -> ids_kernel ~precision); c_args = mk_args; c_global = [ 12; 6 ] };
  let args = mk_args () in
  Vgpu.Exec.launch (ids_kernel ~precision:Double) ~args ~global:[ 12; 6 ];
  match buffers args with
  | [ Vgpu.Buffer.I out ] ->
      for x = 0 to 11 do
        for y = 0 to 5 do
          let expect =
            ((x / 4) * 100000) + ((y / 3) * 10000) + ((x mod 4) * 1000) + ((y mod 3) * 100) + 43
          in
          Alcotest.(check int) (Printf.sprintf "tag at (%d,%d)" x y) expect out.((y * 12) + x)
        done
      done
  | _ -> assert false

(* -- Negative paths: both legs must catch the hazard ----------------- *)

(* Every lane of a group stores __local slot 0 in the same barrier
   phase: a write-write race on local memory.  The store index is
   constant — affine with every local dimension dropped — so the static
   leg must produce a concrete Unsafe witness, not Unproven. *)
let local_race_kernel =
  {
    name = "local_race";
    precision = Double;
    params = [ param "out" Real ];
    global_size = [ Int_lit 8 ];
    local_size = [ 4 ];
    body =
      [
        Decl_local (Real, "tile", 4);
        Store ("tile", Int_lit 0, Unop (To_real, Local_id 0));
        Barrier;
        Store ("out", Global_id 0, Load ("tile", Int_lit 0));
      ];
  }

let buf_report r name = List.find (fun b -> b.Check.b_name = name) r.Check.r_bufs

let test_local_race_static () =
  let env = Check.env ~buffer_elems:(function "out" -> Some 8 | _ -> None) () in
  let r = Check.check env local_race_kernel in
  match (buf_report r "tile").Check.b_race with
  | Check.Unsafe w ->
      Alcotest.(check string) "witness names the local buffer" "tile" w.Check.w_buf;
      Alcotest.(check int) "witness names two work-items" 2 (List.length w.Check.w_gids);
      Alcotest.(check int) "colliding slot" 0 w.Check.w_index;
      Alcotest.(check bool) "report not ok" false (Check.ok r)
  | v ->
      Alcotest.failf "local race: expected Unsafe, got %s"
        (Format.asprintf "%a" Check.pp_verdict v)

let test_local_race_dynamic () =
  let s = Vgpu.Sanitizer.create () in
  let out = Vgpu.Buffer.F (Array.make 8 0.) in
  Vgpu.Sanitizer.note_host_write s out;
  Vgpu.Sanitizer.launch s local_race_kernel ~args:[ Vgpu.Args.Buf out ] ~global:[ 8 ];
  let c = Vgpu.Sanitizer.counts s in
  Alcotest.(check bool) "local hazards detected" true (c.Vgpu.Sanitizer.n_local > 0);
  let is_local_race v =
    match v.Vgpu.Sanitizer.v_kind with
    | Vgpu.Sanitizer.Local_race _ -> v.Vgpu.Sanitizer.v_buf = "tile" && v.Vgpu.Sanitizer.v_idx = 0
    | _ -> false
  in
  Alcotest.(check bool) "a Local_race on tile[0] retained" true
    (List.exists is_local_race (Vgpu.Sanitizer.violations s))

(* A barrier under lane-dependent control flow: lanes 0-1 reach it,
   lanes 2-3 do not.  Statically r_barrier must be Unsafe (with two
   work-items of one group disagreeing on their barrier count); the
   sanitizer records the divergence instead of aborting. *)
let divergent_barrier_kernel =
  {
    name = "divergent_barrier";
    precision = Double;
    params = [ param "out" Real ];
    global_size = [ Int_lit 8 ];
    local_size = [ 4 ];
    body =
      [
        Decl_local (Real, "tile", 4);
        Store ("tile", Local_id 0, Real_lit 1.0);
        If (Local_id 0 <: Int_lit 2, [ Barrier ], []);
        Store ("out", Global_id 0, Load ("tile", Local_id 0));
      ];
  }

let test_divergent_barrier_static () =
  let env = Check.env ~buffer_elems:(function "out" -> Some 8 | _ -> None) () in
  let r = Check.check env divergent_barrier_kernel in
  match r.Check.r_barrier with
  | Check.Unsafe w ->
      Alcotest.(check int) "witness names two work-items" 2 (List.length w.Check.w_gids);
      Alcotest.(check bool) "report not ok" false (Check.ok r)
  | v ->
      Alcotest.failf "divergent barrier: expected Unsafe, got %s"
        (Format.asprintf "%a" Check.pp_verdict v)

let test_divergent_barrier_dynamic () =
  let s = Vgpu.Sanitizer.create () in
  let out = Vgpu.Buffer.F (Array.make 8 0.) in
  Vgpu.Sanitizer.note_host_write s out;
  Vgpu.Sanitizer.launch s divergent_barrier_kernel ~args:[ Vgpu.Args.Buf out ] ~global:[ 8 ];
  let c = Vgpu.Sanitizer.counts s in
  Alcotest.(check bool) "divergence recorded" true (c.Vgpu.Sanitizer.n_barrier > 0);
  Alcotest.(check bool) "a Barrier_divergence violation retained" true
    (List.exists
       (fun v -> v.Vgpu.Sanitizer.v_kind = Vgpu.Sanitizer.Barrier_divergence)
       (Vgpu.Sanitizer.violations s))

(* -- qcheck: statically Safe grouped kernels run sanitizer-clean ----- *)

(* Random grouped kernels: each lane stores __local slot a*lid + b,
   optionally hits a (possibly divergent) barrier, then reads slot
   c*lid + d.  Coefficients keep every index inside the 24-slot tile, so
   the only hazards are local races, missing-barrier read hazards,
   unwritten-slot reads and barrier divergence.  Soundness: a Safe
   static race verdict must mean zero dynamic Local_race violations, and
   a Safe barrier verdict zero divergence events. *)
let qcheck_safe_grouped_is_clean =
  let gen =
    QCheck.Gen.(
      tup6 (int_range 1 4) (* groups *)
        (int_range 2 8) (* lanes *)
        (int_range 0 2) (* a *)
        (int_range 0 4) (* b *)
        (pair (int_range 0 2) (int_range 0 4)) (* c, d *)
        (int_range 0 2) (* 0: no barrier, 1: uniform, 2: divergent *))
  in
  let print (g, l, a, b, (c, d), bar) =
    Printf.sprintf "groups=%d lanes=%d store lmem[%d*lid+%d] read lmem[%d*lid+%d] barrier=%s" g l
      a b c d
      (match bar with 0 -> "none" | 1 -> "uniform" | _ -> "divergent")
  in
  QCheck.Test.make ~name:"static Safe grouped kernel => sanitizer-clean" ~count:200
    (QCheck.make ~print gen)
    (fun (g, l, a, b, (c, d), bar) ->
      let barrier =
        match bar with
        | 0 -> []
        | 1 -> [ Barrier ]
        | _ -> [ If (Local_id 0 <: Int_lit (l / 2), [ Barrier ], []) ]
      in
      let k =
        {
          name = "qc_grouped";
          precision = Double;
          params = [ param "out" Real ];
          global_size = [ Int_lit (g * l) ];
          local_size = [ l ];
          body =
            [ Decl_local (Real, "lmem", 24);
              Store ("lmem", (Int_lit a *: Local_id 0) +: Int_lit b, Unop (To_real, Global_id 0)) ]
            @ barrier
            @ [ Store ("out", Global_id 0, Load ("lmem", (Int_lit c *: Local_id 0) +: Int_lit d)) ];
        }
      in
      let env = Check.env ~buffer_elems:(function "out" -> Some (g * l) | _ -> None) () in
      let r = Check.check env k in
      let s = Vgpu.Sanitizer.create () in
      let out = Vgpu.Buffer.F (Array.make (g * l) 0.) in
      Vgpu.Sanitizer.note_host_write s out;
      Vgpu.Sanitizer.launch s k ~args:[ Vgpu.Args.Buf out ] ~global:[ g * l ];
      let counts = Vgpu.Sanitizer.counts s in
      let local_races =
        List.exists
          (fun v -> match v.Vgpu.Sanitizer.v_kind with Vgpu.Sanitizer.Local_race _ -> true | _ -> false)
          (Vgpu.Sanitizer.violations s)
      in
      let race_sound =
        match (buf_report r "lmem").Check.b_race with
        | Check.Safe -> not local_races
        | Check.Unsafe _ -> local_races
        | Check.Unproven _ -> true
      in
      let barrier_sound =
        match r.Check.r_barrier with
        | Check.Safe -> counts.Vgpu.Sanitizer.n_barrier = 0
        | Check.Unsafe _ -> counts.Vgpu.Sanitizer.n_barrier > 0
        | Check.Unproven _ -> true
      in
      race_sound && barrier_sound)

(* -- qcheck: tiled volume == flat volume, any tile/room/shards ------- *)

(* The tentpole's contract as a property: for arbitrary room sizes, tile
   shapes (including degenerate 1x1 and tiles wider than the room) and
   shard counts, an FD-MM simulation stepped with the 2.5D-tiled volume
   kernel matches the flat one bit-for-bit.  On failure qcheck shrinks
   every coordinate toward its lower bound, reporting a minimal failing
   (room, tile, shards) triple. *)
let qcheck_tiled_equals_flat =
  let gen =
    QCheck.Gen.(
      tup6 (int_range 6 13) (int_range 6 13) (int_range 4 9) (int_range 1 8) (int_range 1 8)
        (int_range 1 3))
  in
  let print (nx, ny, nz, tw, th, shards) =
    Printf.sprintf "room %dx%dx%d, tile %dx%d, shards=%d" nx ny nz tw th shards
  in
  QCheck.Test.make ~name:"tiled FD-MM == flat FD-MM bit-for-bit" ~count:20
    (QCheck.make ~print gen)
    (fun (nx, ny, nz, tw, th, shards) ->
      let open Acoustics in
      let precision = Double in
      let room = Geometry.build ~n_materials:4 Geometry.Dome (Geometry.dims ~nx ~ny ~nz) in
      let boundary = Hand_kernels.boundary_fd_mm ~precision ~mb:3 in
      let run vol =
        let sim =
          Gpu_sim.create ~engine:`Jit ~shards ~n_branches:3 ~precision Params.default room
        in
        let cx, cy, cz = State.centre sim.Gpu_sim.state in
        State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
        for _ = 1 to 3 do
          Gpu_sim.step sim [ vol; boundary ]
        done;
        Gpu_sim.sync sim;
        Array.copy sim.Gpu_sim.state.State.curr
      in
      let flat = run (Hand_kernels.volume ~precision) in
      let tiled = run (Lift_acoustics.Programs.tiled_volume ~precision ~tile:(tw, th) ()) in
      Array.for_all2
        (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
        flat tiled)

let suite =
  [
    Alcotest.test_case "torture kernel, all engines x precisions x opt" `Quick test_torture;
    Alcotest.test_case "barrier reduction" `Quick test_barrier_reduction;
    Alcotest.test_case "local-memory transpose" `Quick test_local_transpose;
    Alcotest.test_case "group-id addressing" `Quick test_group_id_addressing;
    Alcotest.test_case "local race: static leg" `Quick test_local_race_static;
    Alcotest.test_case "local race: dynamic leg" `Quick test_local_race_dynamic;
    Alcotest.test_case "divergent barrier: static leg" `Quick test_divergent_barrier_static;
    Alcotest.test_case "divergent barrier: dynamic leg" `Quick test_divergent_barrier_dynamic;
    QCheck_alcotest.to_alcotest qcheck_safe_grouped_is_clean;
    QCheck_alcotest.to_alcotest qcheck_tiled_equals_flat;
  ]
