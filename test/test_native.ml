(* Native compiled-C backend: differential validation and cache tests.

   Kernel-level: a synthetic kernel exercising every AST feature (loops,
   conditionals, private arrays, builtins, real/int Mod, logic, shifts,
   single-precision store rounding) runs through interp, JIT and the
   native backend on identical inputs; every output buffer must match
   bit-for-bit.  A qcheck property pins integer Div/Mod and real Mod
   semantics over signed operands across the three engines (C truncates
   toward zero, like OCaml; real Mod is fmod = Float.rem).

   Cache: compiles populate a content-addressed disk cache (atomic
   install); a warm run loads without recompiling, a corrupted entry is
   recompiled over rather than trusted, and optimization that changes
   the kernel changes the cache key. *)

open Kernel_ast.Cast

(* Every test in this file runs against a scratch cache directory, not
   the user's real one. *)
let scratch_cache =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "racs-native-test-%d" (Unix.getpid ()))
     in
     Vgpu.Native.set_cache_dir dir;
     dir)

let use_scratch_cache () = ignore (Lazy.force scratch_cache)

(* -- Kernel-level differential --------------------------------------- *)

let n = 64

let torture_kernel ~precision =
  let g = Var "g" in
  {
    name = "native_torture";
    precision;
    params =
      [
        param "out" Real;
        param "src" Real;
        param "iout" Int;
        param "isrc" Int;
        param ~kind:Scalar_param "alpha" Real;
        param ~kind:Scalar_param "shift" Int;
      ];
    global_size = [ Int_lit n ];
    local_size = [];
    body =
      [
        Decl (Int, "g", Some (Global_id 0));
        Decl (Real, "acc", None);
        Decl_arr (Real, "scratch", 4);
        Decl_arr (Int, "iscr", 3);
        Store ("scratch", Int_lit 0, Load ("src", g));
        Store ("scratch", Int_lit 1, Call (Fabs, [ Load ("src", g) ]) +: Real_lit 1.5);
        Store
          ("scratch", Int_lit 2, Call (Sin, [ Load ("src", g) ]) *: Call (Cos, [ Var "alpha" ]));
        Store ("scratch", Int_lit 3, Call (Sqrt, [ Load ("scratch", Int_lit 1) ]));
        Store ("iscr", Int_lit 0, Load ("isrc", g));
        Store ("iscr", Int_lit 1, Load ("iscr", Int_lit 0) %: Int_lit 7);
        Store ("iscr", Int_lit 2, Load ("iscr", Int_lit 0) /: Int_lit 3);
        for_ "i" ~from:(Int_lit 0) ~below:(Int_lit 4)
          [ Assign ("acc", Var "acc" +: (Load ("scratch", Var "i") *: Var "alpha")) ];
        If
          ( g %: Int_lit 2 =: Int_lit 0,
            [ Assign ("acc", Var "acc" +: Call (Fmin, [ Load ("src", g); Real_lit 0.25 ])) ],
            [
              Assign ("acc", Var "acc" -: Call (Fmax, [ Load ("src", g); Real_lit (-0.25) ]));
            ] );
        Assign ("acc", Var "acc" +: Unop (To_real, Load ("iscr", Int_lit 1)));
        Assign ("acc", Binop (Mod, Var "acc", Real_lit 1.75));
        Assign
          ( "acc",
            Var "acc"
            +: Call (Exp, [ Call (Log, [ Call (Fabs, [ Load ("src", g) ]) +: Real_lit 1.0 ]) ])
          );
        Assign ("acc", Ternary (Load ("src", g) <: Real_lit 0.0, Unop (Neg, Var "acc"), Var "acc"));
        Assign ("acc", Var "acc" +: (Unop (To_real, Global_size 0) *: Real_lit 0.001));
        Assign ("acc", Var "acc" +: Call (Floor, [ Load ("src", g) ]));
        Store ("out", g, (Var "acc" *: Var "alpha") +: Load ("src", g));
        Store
          ( "iout",
            g,
            Load ("iscr", Int_lit 1)
            +: (Load ("iscr", Int_lit 2) *: Var "shift")
            +: Ternary ((g >: Int_lit 2) &&: (g <: Int_lit 60), Int_lit 1, Int_lit 0)
            +: Unop (Not, g =: Int_lit 5)
            +: Binop (Shr, g, Int_lit 1)
            +: Binop (BAnd, g, Int_lit 3)
            +: Ternary ((g =: Int_lit 0) ||: (g =: Int_lit 63), Int_lit 10, Int_lit 0)
            +: Unop (To_int, Var "acc") );
      ];
  }

let torture_args () =
  let src = Array.init n (fun i -> ((float_of_int i *. 0.7) -. 20.) *. 1.1) in
  let isrc = Array.init n (fun i -> (i * 13 mod 37) - 18) in
  let out = Array.make n 0. and iout = Array.make n 0 in
  let args =
    Vgpu.Args.
      [
        Buf (Vgpu.Buffer.F out);
        Buf (Vgpu.Buffer.F src);
        Buf (Vgpu.Buffer.I iout);
        Buf (Vgpu.Buffer.I isrc);
        Real_arg 0.9;
        Int_arg 3;
      ]
  in
  (out, iout, args)

let engines =
  [
    ("interp", fun k args global -> Vgpu.Exec.launch k ~args ~global);
    ("jit", fun k args global -> Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global);
    ("native", fun k args global -> Vgpu.Native.launch (Vgpu.Native.compile k) ~args ~global);
  ]

let test_torture_differential () =
  use_scratch_cache ();
  List.iter
    (fun (precision, plabel) ->
      List.iter
        (fun optimize ->
          let k = torture_kernel ~precision in
          let k = if optimize then fst (Kernel_ast.Opt.optimize k) else k in
          let results =
            List.map
              (fun (label, run) ->
                let out, iout, args = torture_args () in
                run k args [ n ];
                (label, out, iout))
              engines
          in
          match results with
          | (ref_label, ref_out, ref_iout) :: rest ->
              List.iter
                (fun (label, out, iout) ->
                  let msg what =
                    Printf.sprintf "torture %s opt=%b: %s vs %s %s" plabel optimize label
                      ref_label what
                  in
                  Test_util.check_bits (msg "out") ref_out out;
                  Alcotest.(check (array int)) (msg "iout") ref_iout iout)
                rest
          | [] -> assert false)
        [ false; true ])
    [ (Double, "double"); (Single, "single") ]

(* -- Signed Div/Mod semantics across engines ------------------------- *)

let moddiv_kernel =
  {
    name = "native_moddiv";
    precision = Double;
    params =
      [
        param "iout" Int;
        param "out" Real;
        param ~kind:Scalar_param "a" Int;
        param ~kind:Scalar_param "b" Int;
        param ~kind:Scalar_param "x" Real;
        param ~kind:Scalar_param "y" Real;
      ];
    global_size = [ Int_lit 1 ];
    local_size = [];
    body =
      [
        Store ("iout", Int_lit 0, Var "a" /: Var "b");
        Store ("iout", Int_lit 1, Var "a" %: Var "b");
        Store ("out", Int_lit 0, Binop (Mod, Var "x", Var "y"));
      ];
  }

let qcheck_signed_moddiv =
  QCheck.Test.make ~name:"signed Div/Mod agree across interp/jit/native" ~count:200
    QCheck.(
      quad (int_range (-1000) 1000)
        (int_range (-50) 50)
        (float_range (-100.) 100.)
        (float_range (-10.) 10.))
    (fun (a, b, x, y) ->
      use_scratch_cache ();
      let b = if b = 0 then 1 else b in
      let y = if y = 0. then 0.5 else y in
      let runs =
        List.map
          (fun (label, run) ->
            let iout = Array.make 2 0 and out = Array.make 1 0. in
            let args =
              Vgpu.Args.
                [
                  Buf (Vgpu.Buffer.I iout);
                  Buf (Vgpu.Buffer.F out);
                  Int_arg a;
                  Int_arg b;
                  Real_arg x;
                  Real_arg y;
                ]
            in
            run moddiv_kernel args [ 1 ];
            (label, iout, out))
          engines
      in
      List.for_all
        (fun (_, iout, out) ->
          (* pinned semantics: truncation toward zero, fmod = Float.rem *)
          iout.(0) = a / b
          && iout.(1) = a mod b
          && Int64.equal (Int64.bits_of_float out.(0))
               (Int64.bits_of_float (Float.rem x y)))
        runs)

(* -- Binary cache behaviour ------------------------------------------ *)

let uniq = ref 0

let unique_kernel () =
  incr uniq;
  {
    name = Printf.sprintf "native_uniq_%d" !uniq;
    precision = Double;
    params = [ param "out" Real ];
    global_size = [ Int_lit 8 ];
    local_size = [];
    body =
      [
        Store
          ( "out",
            Global_id 0,
            Unop (To_real, Global_id 0) *: Real_lit (0.5 +. float_of_int !uniq) );
      ];
  }

let launch_and_read c =
  let out = Array.make 8 0. in
  Vgpu.Native.launch c ~args:[ Vgpu.Args.Buf (Vgpu.Buffer.F out) ] ~global:[ 8 ];
  out

let expected_of k =
  let out = Array.make 8 0. in
  Vgpu.Exec.launch k ~args:[ Vgpu.Args.Buf (Vgpu.Buffer.F out) ] ~global:[ 8 ];
  out

let test_cold_then_warm () =
  use_scratch_cache ();
  let k = unique_kernel () in
  Vgpu.Native.reset_counters ();
  let c1 = Vgpu.Native.compile k in
  let cold = Vgpu.Native.counters () in
  Alcotest.(check int) "cold run compiles" 1 cold.Vgpu.Native.c_compiles;
  Test_util.check_bits "cold result" (expected_of k) (launch_and_read c1);
  (* warm from disk: drop the in-process memo so the .so must be found *)
  Vgpu.Native.reset_memo ();
  Vgpu.Native.reset_counters ();
  let c2 = Vgpu.Native.compile k in
  let warm = Vgpu.Native.counters () in
  Alcotest.(check int) "warm run does not compile" 0 warm.Vgpu.Native.c_compiles;
  Alcotest.(check int) "warm run hits disk" 1 warm.Vgpu.Native.c_disk_hits;
  Test_util.check_bits "warm result" (expected_of k) (launch_and_read c2);
  (* warm from memo: no disk access at all *)
  Vgpu.Native.reset_counters ();
  let c3 = Vgpu.Native.compile k in
  let memo = Vgpu.Native.counters () in
  Alcotest.(check int) "memo run does not compile" 0 memo.Vgpu.Native.c_compiles;
  Alcotest.(check int) "memo run does not touch disk" 0 memo.Vgpu.Native.c_disk_hits;
  Alcotest.(check int) "memo run hits memo" 1 memo.Vgpu.Native.c_memo_hits;
  Test_util.check_bits "memo result" (expected_of k) (launch_and_read c3)

let test_corrupt_entry_recompiled () =
  use_scratch_cache ();
  let k = unique_kernel () in
  let c1 = Vgpu.Native.compile k in
  Test_util.check_bits "pre-corruption result" (expected_of k) (launch_and_read c1);
  (* clobber the cached object, then force a cold in-process path *)
  let so =
    Filename.concat (Vgpu.Native.cache_dir ()) (Vgpu.Native.cache_key k ^ ".so")
  in
  Alcotest.(check bool) "cache entry exists" true (Sys.file_exists so);
  (* replace, not truncate in place: [c1]'s mapping of the old inode
     must stay valid, as it would under the atomic-rename install *)
  Sys.remove so;
  let oc = open_out_bin so in
  output_string oc "this is not a shared object";
  close_out oc;
  Vgpu.Native.reset_memo ();
  Vgpu.Native.reset_counters ();
  let c2 = Vgpu.Native.compile k in
  let counters = Vgpu.Native.counters () in
  Alcotest.(check int) "corrupt entry forces a recompile" 1 counters.Vgpu.Native.c_compiles;
  Test_util.check_bits "post-corruption result" (expected_of k) (launch_and_read c2);
  (* and the rebuilt entry is trusted again *)
  Vgpu.Native.reset_memo ();
  Vgpu.Native.reset_counters ();
  ignore (Vgpu.Native.compile k);
  Alcotest.(check int)
    "rebuilt entry loads from disk" 1
    (Vgpu.Native.counters ()).Vgpu.Native.c_disk_hits

let test_opt_changes_cache_key () =
  use_scratch_cache ();
  (* Div by a power of two under a non-negativity proof: the optimizer
     strength-reduces it to a shift, so the optimized kernel must map to
     a different binary. *)
  let k =
    {
      name = "native_opt_key";
      precision = Double;
      params = [ param "iout" Int ];
      global_size = [ Int_lit 8 ];
      local_size = [];
      body = [ Store ("iout", Global_id 0, Global_id 0 /: Int_lit 4) ];
    }
  in
  let opt, _ = Kernel_ast.Opt.optimize k in
  Alcotest.(check bool) "optimizer changed the kernel" true (k <> opt);
  Alcotest.(check bool)
    "cache keys differ for raw vs optimized" true
    (Vgpu.Native.cache_key k <> Vgpu.Native.cache_key opt);
  (* same kernel, same toolchain: key is stable *)
  Alcotest.(check string)
    "cache key is deterministic" (Vgpu.Native.cache_key k) (Vgpu.Native.cache_key k)


(* -- Simulation-level differential: the acceptance criterion ---------- *)

(* FI / FI-MM / FD-MM for 10 steps, both precisions, opt off and on,
   native vs the single-device interpreter and JIT and vs native across
   1-4 Z-shards: every state array bit-for-bit identical (mirrors the
   sharded-backend cross-validation in test_shard.ml). *)
let test_sim_differential () =
  use_scratch_cache ();
  let open Acoustics in
  let params = Params.default in
  let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10 in
  let steps = 10 in
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in
  let kernels_of scheme precision =
    match scheme with
    | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
    | `Fi_mm ->
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
    | `Fd_mm ->
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
  in
  let run ?shards ~engine ~optimize ~kernels () =
    let room = Geometry.build ~n_materials:4 Geometry.Box dims in
    let sim = Gpu_sim.create ~engine ~optimize ?shards ~fi_beta:0.2 ~n_branches:3 params room in
    let cx, cy, cz = State.centre sim.Gpu_sim.state in
    State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
    for _ = 1 to steps do
      Gpu_sim.step sim kernels
    done;
    Gpu_sim.sync sim;
    sim.Gpu_sim.state
  in
  let check_state msg (a : State.t) (b : State.t) =
    Test_util.check_bits (msg ^ " curr") a.State.curr b.State.curr;
    Test_util.check_bits (msg ^ " prev") a.State.prev b.State.prev;
    Test_util.check_bits (msg ^ " g1") a.State.g1 b.State.g1;
    Test_util.check_bits (msg ^ " vel") a.State.vel_prev b.State.vel_prev
  in
  List.iter
    (fun (scheme_label, scheme) ->
      List.iter
        (fun precision ->
          List.iter
            (fun optimize ->
              let kernels = kernels_of scheme precision in
              let label shards ref_label =
                Printf.sprintf "%s %s opt=%b native%s vs %s" scheme_label
                  (match precision with Single -> "single" | Double -> "double")
                  optimize
                  (if shards = 0 then "" else Printf.sprintf " shards=%d" shards)
                  ref_label
              in
              let native = run ~engine:`Native ~optimize ~kernels () in
              List.iter
                (fun (ref_label, engine) ->
                  check_state (label 0 ref_label) (run ~engine ~optimize ~kernels ()) native)
                [ ("interp", `Interp); ("jit", `Jit) ];
              List.iter
                (fun shards ->
                  check_state (label shards "single-device native")
                    (run ~shards ~engine:`Native ~optimize ~kernels ())
                    native)
                [ 2; 3; 4 ])
            [ false; true ])
        [ Double; Single ])
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

(* Runtime-level cache counters: repeated launches of the same kernels
   hit the bounded digest-keyed caches; reset_stats zeroes the counters
   but keeps the entries hot. *)
let test_runtime_cache_counters () =
  use_scratch_cache ();
  let open Acoustics in
  let dims = Geometry.dims ~nx:10 ~ny:8 ~nz:6 in
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let kernels =
    [ Hand_kernels.volume ~precision:Double;
      Hand_kernels.boundary_fi ~precision:Double ]
  in
  let sim = Gpu_sim.create ~engine:`Native ~fi_beta:0.2 ~n_branches:3 Params.default room in
  for _ = 1 to 5 do
    Gpu_sim.step sim kernels
  done;
  let s = Gpu_sim.stats sim in
  let counters label =
    match List.assoc_opt label s.Vgpu.Runtime.s_caches with
    | Some c -> c
    | None -> Alcotest.failf "no %s cache counters in stats" label
  in
  List.iter
    (fun label ->
      let c = counters label in
      Alcotest.(check int) (label ^ " misses = distinct kernels") 2 c.Vgpu.Kcache.c_misses;
      Alcotest.(check int) (label ^ " entries") 2 c.Vgpu.Kcache.c_entries;
      Alcotest.(check int) (label ^ " hits = remaining launches") 8 c.Vgpu.Kcache.c_hits)
    [ "opt"; "native" ];
  Gpu_sim.reset_stats sim;
  Gpu_sim.step sim kernels;
  let s = Gpu_sim.stats sim in
  let c = List.assoc "native" s.Vgpu.Runtime.s_caches in
  Alcotest.(check int) "after reset: no misses (entries kept)" 0 c.Vgpu.Kcache.c_misses;
  Alcotest.(check int) "after reset: every launch hits" 2 c.Vgpu.Kcache.c_hits

(* LRU eviction: a capacity-2 cache fed three distinct kernels in an
   a b c a pattern evicts and recompiles the stale entry. *)
let test_lru_eviction () =
  let cache = Vgpu.Kcache.create ~capacity:2 "t" in
  let calls = ref [] in
  let get k =
    Vgpu.Kcache.find_or_add cache k (fun () ->
        calls := k :: !calls;
        k)
  in
  List.iter (fun k -> ignore (get k)) [ "a"; "b"; "a"; "c"; "a"; "b" ];
  (* a,b fill; a touches; c evicts b (LRU); a hits; b recomputes evicting c *)
  Alcotest.(check (list string)) "computed in order" [ "a"; "b"; "c"; "b" ] (List.rev !calls);
  let c = Vgpu.Kcache.counters cache in
  Alcotest.(check int) "hits" 2 c.Vgpu.Kcache.c_hits;
  Alcotest.(check int) "misses" 4 c.Vgpu.Kcache.c_misses;
  Alcotest.(check int) "evictions" 2 c.Vgpu.Kcache.c_evictions;
  Alcotest.(check int) "entries" 2 c.Vgpu.Kcache.c_entries

(* -- Restrict emission and the aliased-launch fallback ---------------- *)

(* The write set behind the qualifiers: volume writes next only, the
   boundary kernel's indirect scatters still count as writes. *)
let test_written_params () =
  let open Acoustics in
  let w = Kernel_ast.Native_c.written_params (Hand_kernels.volume ~precision:Double) in
  Alcotest.(check (list string)) "volume writes next" [ "next" ] w;
  let wb = Kernel_ast.Native_c.written_params (Hand_kernels.boundary_fi ~precision:Double) in
  Alcotest.(check bool) "boundary scatter counts as a write" true (List.mem "next" wb);
  Alcotest.(check bool) "boundary index array is read-only" false (List.mem "bidx" wb);
  let wf =
    Kernel_ast.Native_c.written_params
      (Lift_acoustics.Programs.blocked_volume ~precision:Double ~tblock:2 ())
  in
  Alcotest.(check (list string)) "fused kernel writes both generations" [ "next"; "next2" ] wf

let test_restrict_qualifiers () =
  let open Acoustics in
  let src = Vgpu.Native.source (Hand_kernels.volume ~precision:Double) in
  let has needle = Test_util.contains src needle in
  Alcotest.(check bool) "read-only buffer is const restrict" true
    (has "const double * restrict curr = ");
  Alcotest.(check bool) "nbrs is const restrict" true
    (has "const int64_t * restrict nbrs = ");
  Alcotest.(check bool) "written buffer is restrict but not const" true
    (has "  double * restrict next = ");
  let plain = Vgpu.Native.source ~noalias:false (Hand_kernels.volume ~precision:Double) in
  Alcotest.(check bool) "noalias:false drops restrict" false
    (Test_util.contains plain "restrict");
  Alcotest.(check bool) "noalias:false keeps const" true
    (Test_util.contains plain "const double *")

(* out[i] = in[i] * 2 launched with out == in: element-wise well-defined,
   but a restrict-qualified binary is not licensed to run it.  The
   launcher must detect the hazard and dispatch the no-restrict
   rendering, producing the exact doubling. *)
let test_aliased_launch_falls_back () =
  use_scratch_cache ();
  let k =
    {
      name = "native_alias_probe";
      precision = Double;
      params = [ param "dst" Real; param "src" Real ];
      global_size = [ Int_lit 8 ];
      local_size = [];
      body = [ Store ("dst", Global_id 0, Load ("src", Global_id 0) *: Real_lit 2.0) ];
    }
  in
  let c = Vgpu.Native.compile k in
  Vgpu.Native.reset_counters ();
  let buf = Array.init 8 float_of_int in
  Vgpu.Native.launch c
    ~args:[ Vgpu.Args.Buf (Vgpu.Buffer.F buf); Vgpu.Args.Buf (Vgpu.Buffer.F buf) ]
    ~global:[ 8 ];
  Alcotest.(check (array (float 0.))) "aliased launch doubles in place"
    (Array.init 8 (fun i -> 2. *. float_of_int i))
    buf;
  let counters = Vgpu.Native.counters () in
  Alcotest.(check int) "fallback compiled the no-restrict variant" 1
    counters.Vgpu.Native.c_compiles;
  (* distinct buffers keep the restrict fast path: no further compiles *)
  Vgpu.Native.reset_counters ();
  let a = Array.init 8 float_of_int and b = Array.make 8 0. in
  Vgpu.Native.launch c
    ~args:[ Vgpu.Args.Buf (Vgpu.Buffer.F b); Vgpu.Args.Buf (Vgpu.Buffer.F a) ]
    ~global:[ 8 ];
  Alcotest.(check (array (float 0.))) "disjoint launch unchanged"
    (Array.init 8 (fun i -> 2. *. float_of_int i))
    b;
  let counters = Vgpu.Native.counters () in
  Alcotest.(check int) "no recompilation on the fast path" 0 counters.Vgpu.Native.c_compiles;
  (* a second aliased launch reuses the memoized fallback *)
  Vgpu.Native.reset_counters ();
  let buf2 = Array.init 8 float_of_int in
  Vgpu.Native.launch c
    ~args:[ Vgpu.Args.Buf (Vgpu.Buffer.F buf2); Vgpu.Args.Buf (Vgpu.Buffer.F buf2) ]
    ~global:[ 8 ];
  let counters = Vgpu.Native.counters () in
  Alcotest.(check int) "memoized fallback, no third compile" 0 counters.Vgpu.Native.c_compiles

let suite =
  [
    Alcotest.test_case "torture kernel bit-identical across engines" `Quick
      test_torture_differential;
    Alcotest.test_case "written-params write-set analysis" `Quick test_written_params;
    Alcotest.test_case "restrict/const qualifier emission" `Quick test_restrict_qualifiers;
    Alcotest.test_case "aliased launch falls back to no-restrict" `Quick
      test_aliased_launch_falls_back;
    QCheck_alcotest.to_alcotest qcheck_signed_moddiv;
    Alcotest.test_case "cold compile, warm disk hit, memo hit" `Quick test_cold_then_warm;
    Alcotest.test_case "corrupted cache entry is recompiled" `Quick
      test_corrupt_entry_recompiled;
    Alcotest.test_case "optimization changes the cache key" `Quick
      test_opt_changes_cache_key;
    Alcotest.test_case "simulation bit-identical: schemes x precisions x shards" `Quick
      test_sim_differential;
    Alcotest.test_case "runtime cache counters in stats" `Quick test_runtime_cache_counters;
    Alcotest.test_case "LRU eviction at capacity" `Quick test_lru_eviction;
  ]
