(* The host runtime, the OpenCL printer and the standalone C emitter. *)

open Kernel_ast

let double_kernel =
  let open Cast in
  {
    name = "scale";
    precision = Double;
    params = [ param "a" Real; param ~kind:Scalar_param "k" Real; param ~kind:Scalar_param "n" Int ];
    global_size = [ Var "n" ];
    local_size = [];
    body =
      [
        Decl (Int, "i", Some (Global_id 0));
        If
          ( Binop (Lt, Var "i", Var "n"),
            [ Store ("a", Var "i", Binop (Mul, Load ("a", Var "i"), Var "k")) ],
            [] );
      ];
  }

let test_runtime_plan () =
  let rt = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Jit () in
  let data = [| 1.; 2.; 3.; 4. |] in
  Vgpu.Runtime.bind rt "a" (Vgpu.Buffer.F data);
  let plan : Vgpu.Runtime.plan =
    [
      Vgpu.Runtime.Copy_to_gpu "a";
      Vgpu.Runtime.Alloc { name = "scratch"; ty = Cast.Real; elems = 8 };
      Vgpu.Runtime.Launch
        {
          kernel = double_kernel;
          args = [ Vgpu.Runtime.A_buf "a"; Vgpu.Runtime.A_real 10.; Vgpu.Runtime.A_int 4 ];
          global = [ 4 ];
        };
      Vgpu.Runtime.Copy_to_host "a";
    ]
  in
  Vgpu.Runtime.run rt plan;
  Alcotest.(check (list (float 0.))) "kernel ran" [ 10.; 20.; 30.; 40. ] (Array.to_list data);
  Alcotest.(check int) "one launch" 1 rt.Vgpu.Runtime.launches;
  Alcotest.(check int) "h2d bytes" (8 * 4) rt.Vgpu.Runtime.h2d_bytes;
  Alcotest.(check int) "d2h bytes" (8 * 4) rt.Vgpu.Runtime.d2h_bytes;
  Alcotest.(check int) "scratch allocated" 8 (Vgpu.Buffer.length (Vgpu.Runtime.buffer rt "scratch"));
  (* unknown buffer is an error *)
  (match Vgpu.Runtime.run rt [ Vgpu.Runtime.Copy_to_gpu "ghost" ] with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "unknown buffer accepted");
  (* both engines execute the same plan *)
  let rt2 = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Interp () in
  let data2 = [| 1.; 2. |] in
  Vgpu.Runtime.bind rt2 "a" (Vgpu.Buffer.F data2);
  Vgpu.Runtime.run rt2
    [ Vgpu.Runtime.Launch
        { kernel = double_kernel;
          args = [ Vgpu.Runtime.A_buf "a"; Vgpu.Runtime.A_real 3.; Vgpu.Runtime.A_int 2 ];
          global = [ 2 ] } ];
  Alcotest.(check (list (float 0.))) "interp engine" [ 3.; 6. ] (Array.to_list data2)

(* Alloc reuse must be validated: rebinding a name is fine only when the
   existing buffer matches the plan's element type and count. *)
let test_alloc_validation () =
  let rt = Vgpu.Runtime.create () in
  let alloc ?(name = "s") ty elems = Vgpu.Runtime.Alloc { name; ty; elems } in
  (* first alloc, then an identical one reusing the binding *)
  Vgpu.Runtime.run rt [ alloc Cast.Real 8; alloc Cast.Real 8 ];
  let b = Vgpu.Runtime.buffer rt "s" in
  Vgpu.Runtime.run rt [ alloc Cast.Real 8 ];
  Alcotest.(check bool) "matching alloc reuses the buffer" true (b == Vgpu.Runtime.buffer rt "s");
  (* size mismatch rejected *)
  (match Vgpu.Runtime.run rt [ alloc Cast.Real 16 ] with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "size-mismatched alloc reuse accepted");
  (* type mismatch rejected *)
  match Vgpu.Runtime.run rt [ alloc Cast.Int 8 ] with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "type-mismatched alloc reuse accepted"

(* Transfers are costed at the runtime's precision: a single-precision
   GPU moves 4 bytes per real element, not 8. *)
let test_transfer_precision () =
  let count precision =
    let rt = Vgpu.Runtime.create ~precision () in
    Vgpu.Runtime.bind rt "a" (Vgpu.Buffer.F (Array.make 6 0.));
    Vgpu.Runtime.bind rt "i" (Vgpu.Buffer.I (Array.make 6 0));
    Vgpu.Runtime.run rt
      [ Vgpu.Runtime.Copy_to_gpu "a"; Vgpu.Runtime.Copy_to_gpu "i";
        Vgpu.Runtime.Copy_to_host "a" ];
    (rt.Vgpu.Runtime.h2d_bytes, rt.Vgpu.Runtime.d2h_bytes)
  in
  Alcotest.(check (pair int int)) "double: 8B reals + 4B ints"
    ((6 * 8) + (6 * 4), 6 * 8)
    (count Cast.Double);
  Alcotest.(check (pair int int)) "single: 4B reals + 4B ints"
    ((6 * 4) + (6 * 4), 6 * 4)
    (count Cast.Single)

(* Copy_buffer moves a sub-buffer slice device-side and accounts the
   bytes at the runtime's precision. *)
let test_copy_buffer () =
  let run precision =
    let rt = Vgpu.Runtime.create ~precision () in
    Vgpu.Runtime.bind rt "src" (Vgpu.Buffer.F [| 0.; 1.; 2.; 3.; 4.; 5. |]);
    Vgpu.Runtime.bind rt "dst" (Vgpu.Buffer.F (Array.make 6 9.));
    Vgpu.Runtime.run rt
      [ Vgpu.Runtime.Copy_buffer { src = "src"; src_off = 2; dst = "dst"; dst_off = 1; elems = 3 } ];
    let dst =
      match Vgpu.Runtime.buffer rt "dst" with
      | Vgpu.Buffer.F a -> a
      | _ -> Alcotest.fail "dst is not a real buffer"
    in
    (Array.to_list dst, rt.Vgpu.Runtime.d2d_bytes)
  in
  let dst, bytes = run Cast.Double in
  Alcotest.(check (list (float 0.))) "slice copied" [ 9.; 2.; 3.; 4.; 9.; 9. ] dst;
  Alcotest.(check int) "double d2d bytes" (3 * 8) bytes;
  let _, bytes_s = run Cast.Single in
  Alcotest.(check int) "single d2d bytes" (3 * 4) bytes_s;
  (* int buffers move 4 bytes per element regardless of precision *)
  let rt = Vgpu.Runtime.create () in
  Vgpu.Runtime.bind rt "si" (Vgpu.Buffer.I [| 1; 2; 3; 4 |]);
  Vgpu.Runtime.bind rt "di" (Vgpu.Buffer.I (Array.make 4 0));
  Vgpu.Runtime.run rt
    [ Vgpu.Runtime.Copy_buffer { src = "si"; src_off = 0; dst = "di"; dst_off = 0; elems = 4 } ];
  Alcotest.(check int) "int d2d bytes" (4 * 4) rt.Vgpu.Runtime.d2d_bytes;
  (* type-mismatched endpoints rejected, as by clEnqueueCopyBuffer *)
  Vgpu.Runtime.bind rt "df" (Vgpu.Buffer.F (Array.make 4 0.));
  match
    Vgpu.Runtime.run rt
      [ Vgpu.Runtime.Copy_buffer { src = "si"; src_off = 0; dst = "df"; dst_off = 0; elems = 4 } ]
  with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "int->real copy accepted"

(* Multi: per-device isolation, cross-device Exchange, stats merging. *)
let test_multi_devices () =
  let multi = Vgpu.Multi.create ~devices:2 () in
  Alcotest.(check int) "device count" 2 (Vgpu.Multi.n_devices multi);
  let a0 = [| 1.; 2.; 3.; 4. |] and a1 = [| 5.; 6.; 7.; 8. |] in
  Vgpu.Multi.bind multi 0 "a" (Vgpu.Buffer.F a0);
  Vgpu.Multi.bind multi 1 "a" (Vgpu.Buffer.F a1);
  let launch dev k_scale =
    Vgpu.Multi.Dev
      ( dev,
        Vgpu.Runtime.Launch
          {
            kernel = double_kernel;
            args = [ Vgpu.Runtime.A_buf "a"; Vgpu.Runtime.A_real k_scale; Vgpu.Runtime.A_int 4 ];
            global = [ 4 ];
          } )
  in
  Vgpu.Multi.run multi
    [
      launch 0 10.;
      launch 1 100.;
      launch 1 100.;
      (* device 1's last element -> device 0's first slot *)
      Vgpu.Multi.Exchange
        { src_dev = 1; src = "a"; src_off = 3; dst_dev = 0; dst = "a"; dst_off = 0; elems = 1 };
    ];
  Alcotest.(check (list (float 0.))) "device 0 scaled + ghost" [ 80000.; 20.; 30.; 40. ]
    (Array.to_list a0);
  Alcotest.(check (list (float 0.))) "device 1 scaled twice" [ 50000.; 60000.; 70000.; 80000. ]
    (Array.to_list a1);
  (* aggregate: launches sum, per-kernel entries merge by name, d2d on
     the source device only *)
  let s = Vgpu.Multi.stats multi in
  Alcotest.(check int) "aggregate launches" 3 s.Vgpu.Runtime.s_launches;
  Alcotest.(check int) "aggregate d2d bytes" 8 s.Vgpu.Runtime.s_d2d_bytes;
  (match s.Vgpu.Runtime.per_kernel with
  | [ ("scale", ks) ] -> Alcotest.(check int) "merged launches" 3 ks.Vgpu.Runtime.k_launches
  | l -> Alcotest.failf "expected one merged kernel entry, got %d" (List.length l));
  (match Vgpu.Multi.per_device_stats multi with
  | [ (0, s0); (1, s1) ] ->
      Alcotest.(check int) "device 0 launches" 1 s0.Vgpu.Runtime.s_launches;
      Alcotest.(check int) "device 1 launches" 2 s1.Vgpu.Runtime.s_launches;
      Alcotest.(check int) "d2d charged to source" 8 s1.Vgpu.Runtime.s_d2d_bytes;
      Alcotest.(check int) "none on destination" 0 s0.Vgpu.Runtime.s_d2d_bytes
  | _ -> Alcotest.fail "expected two per-device entries");
  ignore (Fmt.str "%a" Vgpu.Multi.pp_stats multi);
  Vgpu.Multi.reset_stats multi;
  Alcotest.(check int) "reset" 0 (Vgpu.Multi.stats multi).Vgpu.Runtime.s_launches

(* Per-kernel launch stats accumulate and reset. *)
let test_launch_stats () =
  let rt = Vgpu.Runtime.create () in
  let data = Array.make 4 1. in
  Vgpu.Runtime.bind rt "a" (Vgpu.Buffer.F data);
  let launch =
    Vgpu.Runtime.Launch
      {
        kernel = double_kernel;
        args = [ Vgpu.Runtime.A_buf "a"; Vgpu.Runtime.A_real 2.; Vgpu.Runtime.A_int 4 ];
        global = [ 4 ];
      }
  in
  Vgpu.Runtime.run rt [ launch; launch; launch ];
  let s = Vgpu.Runtime.stats rt in
  Alcotest.(check int) "total launches" 3 s.Vgpu.Runtime.s_launches;
  (match s.Vgpu.Runtime.per_kernel with
  | [ (name, ks) ] ->
      Alcotest.(check string) "kernel name" "scale" name;
      Alcotest.(check int) "per-kernel launches" 3 ks.Vgpu.Runtime.k_launches;
      Alcotest.(check int) "bytes bound (double)" (3 * 4 * 8) ks.Vgpu.Runtime.arg_bytes;
      Alcotest.(check bool) "min <= max" true (ks.Vgpu.Runtime.min_s <= ks.Vgpu.Runtime.max_s);
      Alcotest.(check bool) "total >= max" true (ks.Vgpu.Runtime.total_s >= ks.Vgpu.Runtime.max_s)
  | l -> Alcotest.failf "expected one kernel entry, got %d" (List.length l));
  (* pp_stats renders without raising *)
  ignore (Fmt.str "%a" Vgpu.Runtime.pp_stats s);
  Vgpu.Runtime.reset_stats rt;
  let s = Vgpu.Runtime.stats rt in
  Alcotest.(check int) "reset clears launches" 0 s.Vgpu.Runtime.s_launches;
  Alcotest.(check int) "reset clears kernels" 0 (List.length s.Vgpu.Runtime.per_kernel)

let test_printer () =
  let src = Print.kernel_to_string double_kernel in
  List.iter
    (fun needle ->
      if not (Test_util.contains src needle) then
        Alcotest.failf "missing %S in:\n%s" needle src)
    [
      "__kernel void scale";
      "__global double* restrict a";
      "const double k";
      "get_global_id(0)";
      "a[i] = a[i] * k;";
      "if (i < n) {";
    ];
  (* single precision renders float with f-suffixed literals *)
  let ks = { double_kernel with Cast.precision = Cast.Single } in
  let ks = { ks with Cast.body = Cast.Store ("a", Cast.Int_lit 0, Cast.Real_lit 0.5) :: ks.Cast.body } in
  let ssrc = Print.kernel_to_string ks in
  Alcotest.(check bool) "float type" true (Test_util.contains ssrc "__global float*");
  Alcotest.(check bool) "f suffix" true (Test_util.contains ssrc "0.5f");
  (* precedence: no spurious parentheses, required ones kept *)
  let e = Cast.(Binop (Mul, Binop (Add, Var "a", Var "b"), Var "c")) in
  Alcotest.(check string) "parens" "(a + b) * c" (Print.expr_to_string e);
  let e2 = Cast.(Binop (Add, Var "a", Binop (Mul, Var "b", Var "c"))) in
  Alcotest.(check string) "no parens" "a + b * c" (Print.expr_to_string e2)

(* The work-group tier through both renderers: the OpenCL printer must
   produce the portable grouped-kernel surface (reqd_work_group_size,
   __local declarations, barrier fences, the id builtin family) and the
   native C emitter the POCL-style fissioned lowering (per-group loop
   nest, widened per-work-item scalars, barrier segments as separate
   local-id loops, a uniform while for the barrier-carrying z loop). *)
let test_tiled_kernel_goldens () =
  let k =
    Lift_acoustics.Programs.tiled_volume ~precision:Cast.Double ~tile:(4, 2) ()
  in
  let ocl = Print.kernel_to_string k in
  List.iter
    (fun needle ->
      if not (Test_util.contains ocl needle) then
        Alcotest.failf "OpenCL for tiled kernel missing %S in:\n%s" needle ocl)
    [
      "__attribute__((reqd_work_group_size(4, 2, 1)))";
      "__kernel void volume_tiled_4x2";
      "__local double tile[24];";
      "barrier(CLK_LOCAL_MEM_FENCE);";
      "get_local_id(0)";
      "get_local_id(1)";
      "tile[(get_local_id(1) + 1) * 6 + (get_local_id(0) + 1)] = curr[";
      "for (int z = 0; z < Nz; z = z + 1) {";
    ];
  let c = Native_c.kernel_source k in
  List.iter
    (fun needle ->
      if not (Test_util.contains c needle) then
        Alcotest.failf "native C for tiled kernel missing %S in:\n%s" needle c)
    [
      (* the local tile is one plain per-group array, cleared per group *)
      "double tile[24];";
      "memset(tile, 0, sizeof(tile));";
      (* per-work-item registers are widened over the group *)
      "double cb[8] = {0};";
      "cb[rk_l] = ";
      (* the group loop nest and the flattened local id *)
      "for (int64_t rk_wg0 = 0; rk_wg0 < rk_gs0 / 4LL; rk_wg0++)";
      "for (int64_t rk_l0 = 0; rk_l0 < 4LL; rk_l0++)";
      "const int64_t rk_l = (rk_l2 * 2LL + rk_l1) * 4LL + rk_l0;";
      (* the barrier-carrying z loop becomes a uniform while *)
      "int64_t rk_it_z = 0LL;";
      "while (rk_it_z < (Nz)) {";
      "rk_it_z += 1LL;";
    ];
  (* no barrier survives as a statement: fission consumed them all *)
  Alcotest.(check bool) "no barrier() call in C" false (Test_util.contains c "barrier(");
  (* braces balance, as for the host emitter *)
  let count s ch = String.fold_left (fun acc c -> if c = ch then acc + 1 else acc) 0 s in
  Alcotest.(check int) "balanced braces" (count c '{') (count c '}')

let test_simplify_examples () =
  let open Cast in
  let s e = Print.expr_to_string (simplify e) in
  Alcotest.(check string) "x+0" "x" (s (Binop (Add, Var "x", Int_lit 0)));
  Alcotest.(check string) "1*x" "x" (s (Binop (Mul, Int_lit 1, Var "x")));
  Alcotest.(check string) "0*x" "0" (s (Binop (Mul, Int_lit 0, Var "x")));
  Alcotest.(check string) "fold" "7" (s (Binop (Add, Int_lit 3, Int_lit 4)));
  Alcotest.(check string) "nested adds" "x + 5"
    (s (Binop (Add, Binop (Add, Var "x", Int_lit 2), Int_lit 3)));
  Alcotest.(check string) "true ternary" "a" (s (Ternary (Int_lit 1, Var "a", Var "b")));
  Alcotest.(check string) "and short circuit" "0" (s (Binop (And, Int_lit 0, Var "x")))

(* The standalone C emitter: structural invariants on the Listing 5
   program (the syntax was also checked against a compiler). *)
(* The FI-MM pipeline as a compiled host program (shared by the
   structural and the compile-the-artifact tests below). *)
let emit_c_compiled () =
  let dims = Acoustics.Geometry.dims ~nx:12 ~ny:10 ~nz:8 in
  let room = Acoustics.Geometry.build ~n_materials:4 Acoustics.Geometry.Box dims in
  let tables = Acoustics.Material.tables ~n_branches:3 Acoustics.Material.defaults in
  let p name ty = Lift.Ast.named_param name ty in
  let open Lift.Host in
  let open Lift_acoustics.Programs in
  let program =
    write_to
      (input (p "next" grid_ty))
      (ocl_kernel ~name:"boundary_fi_mm" (boundary_fi_mm ())
         [
           to_gpu (input (p "bidx" bidx_ty));
           to_gpu (input (p "nbrs" nbrs_ty));
           to_gpu (input (p "material" material_ty));
           to_gpu (input (p "beta" beta_ty));
           to_gpu (input (p "prev" grid_ty));
           to_gpu (input (p "next" grid_ty));
           H_real 0.57;
         ])
  in
  let sizes = function
    | "N" -> Some (Acoustics.Geometry.n_points dims)
    | "nB" -> Some (Acoustics.Geometry.n_boundary room)
    | "NM" -> Some (Array.length tables.Acoustics.Material.t_beta)
    | _ -> None
  in
  Lift.Host.compile ~sizes program

let test_emit_c () =
  let compiled = emit_c_compiled () in
  let c = Lift.Emit_c.host_program compiled in
  List.iter
    (fun needle ->
      if not (Test_util.contains c needle) then
        Alcotest.failf "emitted C missing %S" needle)
    [
      "#include <CL/cl.h>";
      "clBuildProgram";
      "clCreateKernel(prog_0, \"boundary_fi_mm\"";
      "clEnqueueNDRangeKernel";
      "CL_PROFILING_COMMAND_END";
      "__kernel void boundary_fi_mm";
      "int main(void)";
    ];
  (* braces balance *)
  let count s ch = String.fold_left (fun acc c -> if c = ch then acc + 1 else acc) 0 s in
  Alcotest.(check int) "balanced braces" (count c '{') (count c '}');
  (* an iterated plan emits pointer swaps for the buffer rotation *)
  let plan2 = Lift.Host.iterate ~times:2 ~rotate:[ [ "prev"; "next" ] ] compiled in
  let c2 = Lift.Emit_c.host_program { compiled with Lift.Host.plan = plan2 } in
  Alcotest.(check bool) "swap emitted" true
    (Test_util.contains c2 "{ cl_mem t = d_prev; d_prev = d_next; d_next = t; }");
  Alcotest.(check int) "iterated braces balance" (count c2 '{') (count c2 '}')

let test_host_errors () =
  let open Lift.Host in
  let p = Lift.Ast.named_param "a" (Lift.Ty.array Lift.Ty.real (Lift.Size.var "N")) in
  (* kernel arity mismatch *)
  let f = { Lift.Ast.l_params = [ p ]; l_body = Lift.Ast.Param p } in
  (match compile ~sizes:(fun _ -> Some 4) (ocl_kernel ~name:"k" f []) with
  | exception Host_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted");
  (* unbound size variable *)
  let g =
    {
      Lift.Ast.l_params = [ p ];
      l_body =
        Lift.Ast.map_glb (Lift.Ast.lam1 Lift.Ty.real (fun x -> x)) (Lift.Ast.Param p);
    }
  in
  match compile ~sizes:(fun _ -> None) (ocl_kernel ~name:"k" g [ input p ]) with
  | exception Host_error _ -> ()
  | _ -> Alcotest.fail "unbound size accepted"

let test_harness_agreement () =
  let open Harness.Experiments in
  let row version model_s paper_ms =
    {
      platform = "X";
      version;
      size = 602;
      shape = Acoustics.Geometry.Box;
      precision = Kernel_ast.Cast.Double;
      model_s;
      paper_ms = Some paper_ms;
      throughput = 1.;
    }
  in
  (* model and paper agree that lift is slower: 1 agreement out of 1 *)
  let rows = [ row Hand 1e-3 1.0; row Lift_gen 1.5e-3 1.4 ] in
  let agree, total, _ = agreement rows in
  Alcotest.(check (pair int int)) "agrees" (1, 1) (agree, total);
  (* disagreement: model says lift faster, paper says slower *)
  let rows = [ row Hand 1e-3 1.0; row Lift_gen 0.5e-3 1.4 ] in
  let agree, total, _ = agreement rows in
  Alcotest.(check (pair int int)) "disagrees" (0, 1) (agree, total)


(* The emitted host program must be real, compilable C: render the
   Listing 5 pipeline, pair it with a stub <CL/cl.h> carrying the exact
   OpenCL 1.2 signatures it calls, and push it through the system C
   compiler in syntax-only mode.  Also pins emission determinism:
   buffers are declared in name order, so the same plan renders
   byte-identical C. *)
let cl_stub_header =
  {header|#ifndef RACS_CL_STUB_H
#define RACS_CL_STUB_H
#include <stddef.h>
typedef int cl_int;
typedef unsigned int cl_uint;
typedef unsigned long cl_ulong;
typedef float cl_float;
typedef double cl_double;
typedef cl_uint cl_bool;
typedef cl_ulong cl_bitfield;
typedef cl_bitfield cl_device_type;
typedef cl_bitfield cl_command_queue_properties;
typedef cl_bitfield cl_mem_flags;
typedef cl_uint cl_profiling_info;
typedef struct _cl_platform_id *cl_platform_id;
typedef struct _cl_device_id *cl_device_id;
typedef struct _cl_context *cl_context;
typedef struct _cl_command_queue *cl_command_queue;
typedef struct _cl_program *cl_program;
typedef struct _cl_kernel *cl_kernel;
typedef struct _cl_mem *cl_mem;
typedef struct _cl_event *cl_event;
#define CL_SUCCESS 0
#define CL_TRUE 1
#define CL_DEVICE_TYPE_GPU (1 << 2)
#define CL_QUEUE_PROFILING_ENABLE (1 << 1)
#define CL_MEM_READ_WRITE (1 << 0)
#define CL_PROFILING_COMMAND_START 0x1282
#define CL_PROFILING_COMMAND_END 0x1283
cl_int clGetPlatformIDs(cl_uint, cl_platform_id *, cl_uint *);
cl_int clGetDeviceIDs(cl_platform_id, cl_device_type, cl_uint, cl_device_id *, cl_uint *);
cl_context clCreateContext(const void *, cl_uint, const cl_device_id *,
                           void (*)(const char *, const void *, size_t, void *), void *,
                           cl_int *);
cl_command_queue clCreateCommandQueue(cl_context, cl_device_id, cl_command_queue_properties,
                                      cl_int *);
cl_program clCreateProgramWithSource(cl_context, cl_uint, const char **, const size_t *,
                                     cl_int *);
cl_int clBuildProgram(cl_program, cl_uint, const cl_device_id *, const char *,
                      void (*)(cl_program, void *), void *);
cl_kernel clCreateKernel(cl_program, const char *, cl_int *);
cl_mem clCreateBuffer(cl_context, cl_mem_flags, size_t, void *, cl_int *);
cl_int clSetKernelArg(cl_kernel, cl_uint, size_t, const void *);
cl_int clEnqueueWriteBuffer(cl_command_queue, cl_mem, cl_bool, size_t, size_t, const void *,
                            cl_uint, const cl_event *, cl_event *);
cl_int clEnqueueReadBuffer(cl_command_queue, cl_mem, cl_bool, size_t, size_t, void *, cl_uint,
                           const cl_event *, cl_event *);
cl_int clEnqueueCopyBuffer(cl_command_queue, cl_mem, cl_mem, size_t, size_t, size_t, cl_uint,
                           const cl_event *, cl_event *);
cl_int clEnqueueNDRangeKernel(cl_command_queue, cl_kernel, cl_uint, const size_t *,
                              const size_t *, const size_t *, cl_uint, const cl_event *,
                              cl_event *);
cl_int clWaitForEvents(cl_uint, const cl_event *);
cl_int clGetEventProfilingInfo(cl_event, cl_profiling_info, size_t, void *, size_t *);
#endif
|header}

let test_emit_c_compiles () =
  let compiled = emit_c_compiled () in
  let c = Lift.Emit_c.host_program compiled in
  (* determinism: a second render is byte-identical *)
  Alcotest.(check string) "deterministic emission" c (Lift.Emit_c.host_program compiled);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "racs-emit-c-%d" (Unix.getpid ()))
  in
  List.iter
    (fun d -> try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    [ dir; Filename.concat dir "CL" ];
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  write (Filename.concat dir "CL/cl.h") cl_stub_header;
  let prog = Filename.concat dir "prog.c" in
  write prog c;
  let log = Filename.concat dir "cc.log" in
  let cmd =
    Printf.sprintf "cc -std=c99 -fsyntax-only -I %s %s 2> %s" (Filename.quote dir)
      (Filename.quote prog) (Filename.quote log)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then begin
    let ic = open_in log in
    let n = in_channel_length ic in
    let err = really_input_string ic n in
    close_in ic;
    Alcotest.failf "emitted host C does not compile (exit %d):\n%s" rc err
  end

let suite =
  [
    Alcotest.test_case "runtime plan execution" `Quick test_runtime_plan;
    Alcotest.test_case "alloc reuse validation" `Quick test_alloc_validation;
    Alcotest.test_case "precision-aware transfer accounting" `Quick test_transfer_precision;
    Alcotest.test_case "device-to-device sub-buffer copies" `Quick test_copy_buffer;
    Alcotest.test_case "multi-device plans and stats merging" `Quick test_multi_devices;
    Alcotest.test_case "per-kernel launch stats" `Quick test_launch_stats;
    Alcotest.test_case "OpenCL printer" `Quick test_printer;
    Alcotest.test_case "tiled kernel: OpenCL and native C goldens" `Quick test_tiled_kernel_goldens;
    Alcotest.test_case "expression simplifier" `Quick test_simplify_examples;
    Alcotest.test_case "standalone C emitter" `Quick test_emit_c;
    Alcotest.test_case "emitted host C compiles (stub OpenCL)" `Quick test_emit_c_compiles;
    Alcotest.test_case "host error handling" `Quick test_host_errors;
    Alcotest.test_case "harness agreement metric" `Quick test_harness_agreement;
  ]
