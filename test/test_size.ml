(* Symbolic size arithmetic: normalisation, equality, evaluation. *)

open Lift

let n = Size.var "N"
let m = Size.var "M"
let c = Size.const

let check_eq msg a b = Alcotest.(check bool) msg true (Size.equal a b)
let check_ne msg a b = Alcotest.(check bool) msg false (Size.equal a b)

let test_constant_folding () =
  check_eq "2+3=5" (Size.add (c 2) (c 3)) (c 5);
  check_eq "2*3=6" (Size.mul (c 2) (c 3)) (c 6);
  check_eq "7-4=3" (Size.sub (c 7) (c 4)) (c 3);
  check_eq "8/2=4" (Size.div (c 8) (c 2)) (c 4);
  Alcotest.(check (option int)) "to_int" (Some 6) (Size.to_int_opt (Size.mul (c 2) (c 3)))

let test_commutativity () =
  check_eq "N+M = M+N" (Size.add n m) (Size.add m n);
  check_eq "N*M = M*N" (Size.mul n m) (Size.mul m n);
  check_eq "N+1+M = M+N+1" (Size.add (Size.add n (c 1)) m) (Size.add m (Size.add n (c 1)))

let test_cancellation () =
  (* the scatter row type: idx + 1 + (N - idx - 1) = N *)
  let idx = Size.var "idx" in
  let total = Size.add (Size.add idx (c 1)) (Size.sub (Size.sub n idx) (c 1)) in
  check_eq "skip arithmetic cancels" total n;
  check_eq "N-N = 0" (Size.sub n n) (c 0);
  check_eq "2N - N = N" (Size.sub (Size.mul (c 2) n) n) n

let test_distribution () =
  check_eq "(N+1)*2 = 2N+2"
    (Size.mul (Size.add n (c 1)) (c 2))
    (Size.add (Size.mul (c 2) n) (c 2));
  check_eq "N*(M+1) = NM+N" (Size.mul n (Size.add m (c 1))) (Size.add (Size.mul n m) n)

let test_division () =
  check_eq "N/1 = N" (Size.div n (c 1)) n;
  check_eq "(6N)/2... stays opaque but equal to itself"
    (Size.div (Size.mul (c 6) n) (c 2))
    (Size.div (Size.mul (c 6) n) (c 2));
  check_ne "N/2 <> N" (Size.div n (c 2)) n

let test_inequality () =
  check_ne "N <> M" n m;
  check_ne "N <> N+1" n (Size.add n (c 1));
  check_ne "N*M <> N+M" (Size.mul n m) (Size.add n m)

let test_eval () =
  let env = function "N" -> Some 10 | "M" -> Some 3 | _ -> None in
  Alcotest.(check int) "eval N*M+2" 32 (Size.eval env (Size.add (Size.mul n m) (c 2)));
  Alcotest.(check int) "eval N-M" 7 (Size.eval env (Size.sub n m));
  (match Size.eval env (Size.var "Q") with
  | exception Failure _ -> ()
  | v -> Alcotest.failf "unbound size evaluated to %d" v)

let test_vars () =
  Alcotest.(check (list string)) "vars" [ "M"; "N" ] (Size.vars (Size.mul n m));
  Alcotest.(check (list string)) "const has no vars" [] (Size.vars (c 5))

let test_to_cexpr () =
  let e = Size.to_cexpr (Size.add (Size.mul n (c 2)) (c 1)) in
  let s = Kernel_ast.Print.expr_to_string (Kernel_ast.Cast.simplify e) in
  Alcotest.(check bool) "mentions N" true (Test_util.contains s "N")

(* Property: simplify is sound w.r.t. evaluation. *)
let qcheck_simplify_sound =
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self k ->
          if k <= 0 then oneof [ map Size.const (int_range 0 9); return (Size.var "N"); return (Size.var "M") ]
          else
            oneof
              [
                map Size.const (int_range 0 9);
                return (Size.var "N");
                map2 (fun a b -> Size.Add (a, b)) (self (k / 2)) (self (k / 2));
                map2 (fun a b -> Size.Sub (a, b)) (self (k / 2)) (self (k / 2));
                map2 (fun a b -> Size.Mul (a, b)) (self (k / 2)) (self (k / 2));
              ]))
  in
  let arb = QCheck.make ~print:Size.to_string gen in
  QCheck.Test.make ~name:"simplify preserves value" ~count:300 arb (fun s ->
      let env = function "N" -> Some 7 | "M" -> Some 4 | _ -> None in
      Size.eval env (Size.simplify s) = Size.eval env s)

let qcheck_equal_reflexive =
  let arb = QCheck.make ~print:Size.to_string
      QCheck.Gen.(map2 (fun a b -> Size.Add (Size.Mul (Size.var "N", Size.const a), Size.const b))
                    (int_range 0 5) (int_range 0 5))
  in
  QCheck.Test.make ~name:"equal is reflexive under simplify" ~count:100 arb (fun s ->
      Size.equal s (Size.simplify s))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "commutativity" `Quick test_commutativity;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "distribution" `Quick test_distribution;
    Alcotest.test_case "division" `Quick test_division;
    Alcotest.test_case "inequality" `Quick test_inequality;
    Alcotest.test_case "evaluation" `Quick test_eval;
    Alcotest.test_case "variables" `Quick test_vars;
    Alcotest.test_case "lowering to index expressions" `Quick test_to_cexpr;
    QCheck_alcotest.to_alcotest qcheck_simplify_sound;
    QCheck_alcotest.to_alcotest qcheck_equal_reflexive;
  ]
