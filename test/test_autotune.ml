(* The measured autotuner and its best-plan cache.

   Mirrors the native binary cache's torture tests on the plan side
   (round-trip, corrupt entry = miss, key-field validation), pins the
   search deterministic under an injected fake timer, asserts the
   warm-cache path re-runs with zero measurements, and property-checks
   that any plan the tuner can emit stays bit-identical to the default
   plan across schemes, precisions and shard counts. *)

open Acoustics
module PC = Harness.Plan_cache
module AT = Harness.Autotune

let scratch_counter = ref 0

let use_scratch_dir () =
  incr scratch_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "racs-plan-test-%d-%d" (Unix.getpid ()) !scratch_counter)
  in
  PC.set_cache_dir dir;
  PC.reset_counters ();
  dir

let sample_key () : PC.key =
  {
    PC.k_scheme = "fi";
    k_shape = "box";
    k_dims = (12, 10, 8);
    k_precision = "double";
    k_device = "Host";
    k_engine = "native";
    k_digest = "0123456789abcdef0123456789abcdef";
  }

let sample_entry () : PC.entry =
  {
    PC.e_plan =
      {
        PC.pl_tile = Some (8, 4);
        pl_variant = [ "fuse_map"; "split_join" ];
        pl_local = 32;
        pl_unroll = Some 16384;
        pl_shards = 3;
        pl_schedule = `Overlap;
        pl_tblock = 2;
      };
    e_predicted_s = 1.25e-6;
    e_measured_s = 2.5e-6;
    e_default_s = 3.75e-6;
    e_samples = 5;
  }

(* -- Plan cache ------------------------------------------------------- *)

let test_roundtrip () =
  ignore (use_scratch_dir ());
  let key = sample_key () and entry = sample_entry () in
  Alcotest.(check bool) "cold lookup misses" true (PC.find key = None);
  PC.store key entry;
  (match PC.find key with
  | None -> Alcotest.fail "stored entry not found"
  | Some got ->
      Alcotest.(check bool) "plan round-trips" true (got.PC.e_plan = entry.PC.e_plan);
      Alcotest.(check int) "samples round-trip" entry.PC.e_samples got.PC.e_samples;
      (* times are stored at nanosecond resolution *)
      Alcotest.(check bool) "measured time round-trips" true
        (Float.abs (got.PC.e_measured_s -. entry.PC.e_measured_s) < 1e-12));
  let hits, misses, stores = PC.counters () in
  Alcotest.(check (triple int int int)) "counters" (1, 1, 1) (hits, misses, stores);
  (* the default plan (no tile, no variant, default unroll) round-trips
     through its None/empty encodings too *)
  let dkey = { (sample_key ()) with PC.k_scheme = "fd-mm" } in
  PC.store dkey { (sample_entry ()) with PC.e_plan = PC.default_plan };
  match PC.find dkey with
  | Some got ->
      Alcotest.(check bool) "default plan round-trips" true
        (got.PC.e_plan = PC.default_plan)
  | None -> Alcotest.fail "default-plan entry not found"

let test_corrupt_entry_is_miss () =
  let dir = use_scratch_dir () in
  let key = sample_key () in
  PC.store key (sample_entry ());
  let path = Filename.concat dir (PC.key_digest key ^ ".plan") in
  Alcotest.(check bool) "entry file exists" true (Sys.file_exists path);
  (* truncated mid-field *)
  let contents = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 (String.length contents / 2)));
  Alcotest.(check bool) "truncated entry is a miss" true (PC.find key = None);
  (* arbitrary garbage *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "this is not a plan file\n\x00\xff");
  Alcotest.(check bool) "garbage entry is a miss" true (PC.find key = None);
  (* a store heals it *)
  PC.store key (sample_entry ());
  Alcotest.(check bool) "overwritten entry is trusted again" true (PC.find key <> None)

let test_key_fields_validated () =
  let dir = use_scratch_dir () in
  let key = sample_key () in
  PC.store key (sample_entry ());
  (* the same file answering for a different key (digest collision,
     copied cache dir, hand-edited entry) must be rejected: copy the
     entry to where a different key would look *)
  let other = { key with PC.k_digest = "ffffffffffffffffffffffffffffffff" } in
  let src = Filename.concat dir (PC.key_digest key ^ ".plan") in
  let dst = Filename.concat dir (PC.key_digest other ^ ".plan") in
  let contents = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc contents);
  Alcotest.(check bool) "entry with mismatched key fields is a miss" true
    (PC.find other = None);
  Alcotest.(check bool) "original key still hits" true (PC.find key <> None)

let test_calibration_roundtrip () =
  ignore (use_scratch_dir ());
  let c = Vgpu.Perf_model.Calibration.create () in
  Vgpu.Perf_model.Calibration.observe c ~device:"Host" ~kernel_name:"volume"
    ~predicted_s:1e-6 ~measured_s:4e-6;
  Vgpu.Perf_model.Calibration.observe c ~device:"Host" ~kernel_name:"volume"
    ~predicted_s:1e-6 ~measured_s:1e-6;
  Vgpu.Perf_model.Calibration.observe c ~device:"GTX 780" ~kernel_name:"boundary_fi"
    ~predicted_s:2e-6 ~measured_s:1e-6;
  PC.save_calibration c;
  let c' = PC.load_calibration () in
  List.iter
    (fun (device, kernel_name) ->
      let f = Vgpu.Perf_model.Calibration.factor c ~device ~kernel_name in
      let f' = Vgpu.Perf_model.Calibration.factor c' ~device ~kernel_name in
      Alcotest.(check bool)
        (Printf.sprintf "factor %s/%s round-trips" device kernel_name)
        true
        (Float.abs (f -. f') < 1e-12 *. f))
    [ ("Host", "volume"); ("GTX 780", "boundary_fi"); ("Host", "absent") ];
  (* geometric mean of 4x and 1x is 2x *)
  Alcotest.(check bool) "observed factor is the geometric mean" true
    (Float.abs (Vgpu.Perf_model.Calibration.factor c' ~device:"Host" ~kernel_name:"volume" -. 2.)
    < 1e-9)

(* -- The search ------------------------------------------------------- *)

let fake_clock () =
  let t = ref 0. in
  fun () ->
    t := !t +. 1e-6;
    !t

let small_dims = Geometry.dims ~nx:10 ~ny:8 ~nz:7

let tune_small ?(use_cache = false) ?clock () =
  let clock = match clock with Some c -> c | None -> fake_clock () in
  AT.tune ~engine:`Jit ~topk:4 ~warmup:1 ~repeats:3 ~steps:2 ~max_shards:2
    ~clock ~use_cache ~explore_depth:1 ~scheme:"fi" ~shape:Geometry.Box
    ~dims:small_dims ()

let test_deterministic_under_fake_timer () =
  ignore (use_scratch_dir ());
  let r1 = tune_small () and r2 = tune_small () in
  Alcotest.(check bool) "same winner plan" true
    (r1.AT.r_entry.PC.e_plan = r2.AT.r_entry.PC.e_plan);
  Alcotest.(check int) "same measurement count" r1.AT.r_measurements r2.AT.r_measurements;
  List.iter2
    (fun (a : AT.measured) (b : AT.measured) ->
      Alcotest.(check bool) "same plan order" true (a.AT.m_plan = b.AT.m_plan);
      Alcotest.(check bool) "same measured time" true
        (a.AT.m_measured_s = b.AT.m_measured_s);
      Alcotest.(check bool) "same identity verdict" a.AT.m_identical b.AT.m_identical)
    r1.AT.r_evaluated r2.AT.r_evaluated;
  Alcotest.(check bool) "same winner time" true
    (r1.AT.r_entry.PC.e_measured_s = r2.AT.r_entry.PC.e_measured_s)

let test_all_candidates_identical () =
  ignore (use_scratch_dir ());
  let r = tune_small () in
  Alcotest.(check bool) "measured something" true (r.AT.r_measurements > 0);
  List.iter
    (fun (m : AT.measured) ->
      Alcotest.(check bool)
        (Printf.sprintf "plan %S bit-identical" (AT.plan_label m.AT.m_plan))
        true m.AT.m_identical)
    r.AT.r_evaluated

let test_warm_cache_zero_measurements () =
  ignore (use_scratch_dir ());
  let cold = tune_small ~use_cache:true () in
  Alcotest.(check bool) "cold run measures" true (cold.AT.r_measurements > 0);
  Alcotest.(check bool) "cold run searched" true (not cold.AT.r_from_cache);
  PC.reset_counters ();
  let warm = tune_small ~use_cache:true () in
  Alcotest.(check bool) "warm run is from cache" true warm.AT.r_from_cache;
  Alcotest.(check int) "warm run measures nothing" 0 warm.AT.r_measurements;
  Alcotest.(check (list pass)) "warm run evaluates nothing" [] warm.AT.r_evaluated;
  Alcotest.(check bool) "same plan both ways" true
    (warm.AT.r_entry.PC.e_plan = cold.AT.r_entry.PC.e_plan);
  let hits, _, stores = PC.counters () in
  Alcotest.(check int) "exactly one cache hit" 1 hits;
  Alcotest.(check int) "no new store" 0 stores

let test_winner_not_slower_than_default () =
  ignore (use_scratch_dir ());
  let r = tune_small () in
  Alcotest.(check bool) "winner measured <= default measured" true
    (r.AT.r_entry.PC.e_measured_s <= r.AT.r_entry.PC.e_default_s)

(* -- Tuned plan == default plan output, property-checked -------------- *)

(* Run [steps] simulation steps under an arbitrary plan and return the
   final field bits.  This exercises exactly the path [racs simulate
   --tuned] takes: plan kernels + plan runtime knobs. *)
let run_plan ~scheme ~precision (plan : PC.plan) =
  let dims = Geometry.dims ~nx:9 ~ny:8 ~nz:10 in
  let room = Geometry.build ~n_materials:(Array.length Material.defaults) Geometry.Box dims in
  let kernels = AT.plan_kernels ~precision ~n_branches:3 ~scheme plan in
  let shards = if plan.PC.pl_shards > 1 then Some plan.PC.pl_shards else None in
  let schedule =
    if plan.PC.pl_shards > 1 then Some (plan.PC.pl_schedule :> Gpu_sim.schedule) else None
  in
  let tblock =
    if plan.PC.pl_shards > 1 && plan.PC.pl_tblock > 1 then Some plan.PC.pl_tblock
    else None
  in
  let sim =
    Gpu_sim.create ~engine:`Jit ?unroll_budget:plan.PC.pl_unroll ?shards ?schedule
      ?tblock ~fi_beta:0.1 ~n_branches:3 ~precision Params.default room
  in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to 6 do
    Gpu_sim.step sim kernels
  done;
  Gpu_sim.sync sim;
  Array.map Int64.bits_of_float sim.Gpu_sim.state.State.curr

let plan_gen : (string * Kernel_ast.Cast.precision * PC.plan) QCheck.Gen.t =
  let open QCheck.Gen in
  let* scheme = oneofl [ "fi"; "fi-mm"; "fd-mm" ] in
  let* precision = oneofl [ Kernel_ast.Cast.Single; Kernel_ast.Cast.Double ] in
  let* tile = oneofl [ None; Some (4, 4); Some (8, 4) ] in
  let* unroll = oneofl [ None; Some 0; Some 16384 ] in
  let* shards = int_range 1 4 in
  let* tblock = oneofl [ 1; 2; 3 ] in
  let* schedule =
    (* the overlapped schedule range-splits the flat volume kernel; the
       tiled kernel only runs seq/concurrent (Autotune.enumerate never
       pairs them either) *)
    if tile = None then oneofl [ `Seq; `Concurrent; `Overlap ]
    else oneofl [ `Seq; `Concurrent ]
  in
  return
    ( scheme,
      precision,
      {
        PC.pl_tile = tile;
        pl_variant = [];
        pl_local = 64;
        pl_unroll = unroll;
        pl_shards = shards;
        pl_schedule = schedule;
        pl_tblock = tblock;
      } )

let arb_plan =
  QCheck.make plan_gen ~print:(fun (scheme, precision, plan) ->
      Printf.sprintf "%s %s %s" scheme
        (AT.precision_label precision)
        (AT.plan_label plan))

let qcheck_plan_matches_default =
  QCheck.Test.make ~name:"any tuned plan == default plan, bit for bit" ~count:12
    arb_plan
    (fun (scheme, precision, plan) ->
      let got = run_plan ~scheme ~precision plan in
      let want = run_plan ~scheme ~precision PC.default_plan in
      got = want)

let suite =
  [
    Alcotest.test_case "plan cache round-trip" `Quick test_roundtrip;
    Alcotest.test_case "corrupt entry is a miss" `Quick test_corrupt_entry_is_miss;
    Alcotest.test_case "key fields validated" `Quick test_key_fields_validated;
    Alcotest.test_case "calibration round-trip" `Quick test_calibration_roundtrip;
    Alcotest.test_case "deterministic under fake timer" `Slow
      test_deterministic_under_fake_timer;
    Alcotest.test_case "all candidates bit-identical" `Slow test_all_candidates_identical;
    Alcotest.test_case "warm cache re-runs with zero measurements" `Slow
      test_warm_cache_zero_measurements;
    Alcotest.test_case "winner never slower than default" `Slow
      test_winner_not_slower_than_default;
    QCheck_alcotest.to_alcotest qcheck_plan_matches_default;
  ]
