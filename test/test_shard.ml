(* Cross-validation of the Z-sharded multi-device backend.

   Differential tests: the three paper workloads (FI as volume +
   boundary_fi, FI-MM, FD-MM) run for 10 time steps under 1/2/3/4
   shards, in both precisions, against the single-device interpreter and
   JIT; every grid and boundary-state array must match bit-for-bit —
   the invariant that makes the decomposition unobservable.  (FI uses
   the two-kernel nbrs-driven form here: the fused Listing-1 kernel
   derives its boundary mask from global coordinates, which is only
   meaningful on the full grid.)

   Property tests: for random grid sizes and shard counts, the
   Z-partition is an exact disjoint cover of the planes; and a
   scatter / random-store / halo-exchange / gather round trip through
   the shard machinery reproduces exactly the unsharded grid.

   Stats tests: per-kernel launch counts scale with the shard count and
   the aggregated transfer bytes include the halo planes at the
   precision in force. *)

open Kernel_ast.Cast
open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let steps = 10
let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let kernels_of scheme precision =
  match scheme with
  | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
  | `Fi_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
  | `Fd_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]

let run ?shards ~engine ~kernels () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim = Gpu_sim.create ~engine ?shards ~fi_beta:0.2 ~n_branches:3 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Gpu_sim.step sim kernels
  done;
  Gpu_sim.sync sim;
  sim

let check_state msg (a : State.t) (b : State.t) =
  Test_util.check_bits (msg ^ " curr") a.State.curr b.State.curr;
  Test_util.check_bits (msg ^ " prev") a.State.prev b.State.prev;
  Test_util.check_bits (msg ^ " g1") a.State.g1 b.State.g1;
  Test_util.check_bits (msg ^ " vel") a.State.vel_prev b.State.vel_prev

(* FI / FI-MM / FD-MM, 1-4 shards, both precisions, vs the single-device
   interpreter and JIT. *)
let test_sharded_bit_identical () =
  List.iter
    (fun (scheme_label, scheme) ->
      List.iter
        (fun precision ->
          let kernels = kernels_of scheme precision in
          let references =
            List.map
              (fun (l, engine) -> (l, (run ~engine ~kernels ()).Gpu_sim.state))
              [ ("interp", `Interp); ("jit", `Jit) ]
          in
          List.iter
            (fun shards ->
              let sharded = run ~shards ~engine:`Jit ~kernels () in
              Alcotest.(check int)
                (Printf.sprintf "%s: %d shards materialised" scheme_label shards)
                shards
                (Gpu_sim.n_shards sharded);
              List.iter
                (fun (ref_label, ref_state) ->
                  let msg =
                    Printf.sprintf "%s %s shards=%d vs %s" scheme_label
                      (match precision with Single -> "single" | Double -> "double")
                      shards ref_label
                  in
                  check_state msg ref_state sharded.Gpu_sim.state)
                references)
            [ 1; 2; 3; 4 ])
        [ Double; Single ])
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

(* The sharded interpreter engine must agree with the sharded JIT too. *)
let test_sharded_interp_matches_jit () =
  let kernels = kernels_of `Fd_mm Double in
  let a = run ~shards:3 ~engine:`Interp ~kernels () in
  let b = run ~shards:3 ~engine:`Jit ~kernels () in
  check_state "fd-mm sharded interp vs jit" a.Gpu_sim.state b.Gpu_sim.state

(* [Gpu_sim.read] must address the owning shard without a gather. *)
let test_read_addresses_owner () =
  let kernels = kernels_of `Fi Double in
  let single = run ~engine:`Jit ~kernels () in
  let sharded = run ~shards:4 ~engine:`Jit ~kernels () in
  let { Geometry.nx; ny; nz } = dims in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let a = Gpu_sim.read single ~x ~y ~z and b = Gpu_sim.read sharded ~x ~y ~z in
        if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
          Alcotest.failf "read (%d,%d,%d): %.17g vs %.17g" x y z a b
      done
    done
  done

(* -- Properties ------------------------------------------------------ *)

(* The Z-partition is an exact disjoint cover: non-empty contiguous
   slabs, first starts at 0, last ends at nz, clamped count. *)
let qcheck_partition_covers =
  QCheck.Test.make ~name:"Z-partition is an exact disjoint cover" ~count:500
    QCheck.(pair (int_range 1 60) (int_range 1 10))
    (fun (nz, shards) ->
      let slabs = Shard.partition ~nz ~shards in
      let n = Array.length slabs in
      n = min shards nz
      && slabs.(0).Shard.z0 = 0
      && slabs.(n - 1).Shard.z1 = nz
      && Array.for_all (fun (s : Shard.slab) -> s.Shard.z0 < s.Shard.z1) slabs
      && Array.for_all2
           (fun (a : Shard.slab) (b : Shard.slab) -> a.Shard.z1 = b.Shard.z0)
           (Array.sub slabs 0 (n - 1))
           (Array.sub slabs 1 (n - 1)))

(* Scatter a random grid, store a random pattern into every shard's
   owned planes of [next], halo-exchange, then check: (a) gathering
   reproduces exactly the unsharded result of the same stores; (b) every
   interior ghost plane equals the neighbouring shard's owned plane. *)
let qcheck_exchange_round_trip =
  QCheck.Test.make ~name:"halo exchange reproduces the unsharded grid" ~count:100
    QCheck.(
      quad (int_range 3 8) (int_range 3 6) (int_range 3 12) (int_range 1 6))
    (fun (nx, ny, nz, shards) ->
      let room = Geometry.build Geometry.Box (Geometry.dims ~nx ~ny ~nz) in
      let p = Shard.plan ~shards room in
      let st = State.create room in
      let n = Geometry.n_points room.Geometry.dims in
      let rnd = QCheck.Gen.(generate1 (array_size (return n) (float_range 0. 1.))) in
      Array.blit rnd 0 st.State.curr 0 n;
      let sstates = Shard.create_states p in
      Shard.scatter p st sstates;
      (* the same deterministic store pattern, unsharded and sharded *)
      let store_global = Array.copy st.State.next in
      for idx = 0 to n - 1 do
        if idx mod 3 = 0 then store_global.(idx) <- st.State.curr.(idx) *. 2.
      done;
      Array.iteri
        (fun i (sh : Shard.shard) ->
          let ss = sstates.(i) in
          for l = sh.Shard.plane to ((sh.Shard.planes - 1) * sh.Shard.plane) - 1 do
            let idx = sh.Shard.base + l in
            if idx mod 3 = 0 then ss.Shard.next.(l) <- ss.Shard.curr.(l) *. 2.
          done)
        p.Shard.shards;
      (* run the exchange through a Multi, as the simulation does *)
      let multi = Vgpu.Multi.create ~devices:(Shard.n_shards p) () in
      Array.iteri
        (fun i (ss : Shard.shard_state) ->
          Vgpu.Multi.bind multi i "next" (Vgpu.Buffer.F ss.Shard.next))
        sstates;
      Vgpu.Multi.run multi (Shard.exchange_ops p ~buffer:"next");
      Shard.gather p sstates st;
      let gathered_ok =
        Array.for_all2
          (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
          store_global st.State.next
      in
      let ghosts_ok = ref true in
      Array.iteri
        (fun i (sh : Shard.shard) ->
          let ss = sstates.(i) in
          for l = 0 to sh.Shard.local_n - 1 do
            let idx = sh.Shard.base + l in
            if idx >= 0 && idx < n && ss.Shard.next.(l) <> store_global.(idx) then
              ghosts_ok := false
          done)
        p.Shard.shards;
      gathered_ok && !ghosts_ok)

(* -- Stats under sharding -------------------------------------------- *)

let halo_steps_bytes ~precision ~shards =
  let plane = dims.Geometry.nx * dims.Geometry.ny in
  steps * Vgpu.Perf_model.halo_bytes_per_step ~radius:1 ~precision ~plane_elems:plane ~shards

let test_stats_scale_with_shards () =
  let shards = 3 in
  let kernels = kernels_of `Fi Double in
  let sim = run ~shards ~engine:`Jit ~kernels () in
  let s = Gpu_sim.stats sim in
  Alcotest.(check int) "total launches" (steps * shards * 2) s.Vgpu.Runtime.s_launches;
  List.iter
    (fun name ->
      match List.assoc_opt name s.Vgpu.Runtime.per_kernel with
      | None -> Alcotest.failf "no per-kernel stats for %s" name
      | Some k ->
          Alcotest.(check int)
            (name ^ " launches") (steps * shards) k.Vgpu.Runtime.k_launches)
    [ "volume"; "boundary_fi" ];
  let per = Gpu_sim.per_shard_stats sim in
  Alcotest.(check int) "per-shard entries" shards (List.length per);
  List.iter
    (fun (i, (d : Vgpu.Runtime.stats)) ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d launches" i)
        (steps * 2) d.Vgpu.Runtime.s_launches)
    per

let test_halo_bytes_at_precision () =
  List.iter
    (fun (precision, label) ->
      List.iter
        (fun shards ->
          let kernels = kernels_of `Fi precision in
          let room = Geometry.build ~n_materials:4 Geometry.Box dims in
          let sim =
            Gpu_sim.create ~engine:`Jit ~shards ~precision ~fi_beta:0.2 ~n_branches:3
              params room
          in
          for _ = 1 to steps do
            Gpu_sim.step sim kernels
          done;
          let s = Gpu_sim.stats sim in
          Alcotest.(check int)
            (Printf.sprintf "%s shards=%d d2d bytes" label shards)
            (halo_steps_bytes ~precision ~shards)
            s.Vgpu.Runtime.s_d2d_bytes)
        [ 1; 2; 4 ])
    [ (Double, "double"); (Single, "single") ]

let suite =
  [
    Alcotest.test_case "FI/FI-MM/FD-MM bit-identical under 1-4 shards" `Slow
      test_sharded_bit_identical;
    Alcotest.test_case "sharded interp == sharded jit" `Quick
      test_sharded_interp_matches_jit;
    Alcotest.test_case "read addresses the owning shard" `Quick test_read_addresses_owner;
    QCheck_alcotest.to_alcotest qcheck_partition_covers;
    QCheck_alcotest.to_alcotest qcheck_exchange_round_trip;
    Alcotest.test_case "launch stats scale with the shard count" `Quick
      test_stats_scale_with_shards;
    Alcotest.test_case "halo bytes counted at the transfer precision" `Quick
      test_halo_bytes_at_precision;
  ]
