(* Differential validation of temporally-blocked execution (temporal
   blocking of the sharded leapfrog).

   A blocked run — depth-T ghost zones, redundant recompute of the inner
   ghost planes on every in-block step, one deep halo exchange per block
   of T steps — must be bit-for-bit identical to the per-step (T = 1)
   exchange cadence, which is itself bit-identical to the single-device
   engines.  The tests here run the three paper workloads under
   combinations of scheme x precision x shard count x block depth x
   schedule x engine and require exact agreement of every grid and
   boundary-state array.

   Also covered: syncs and reads that fall mid-block (owned planes stay
   valid at every in-block position), clamping of T to the thinnest
   slab, and the static blocked-cost profile (exchange rounds amortised
   over T, deep-halo bytes, redundant frontier points) against the
   transfer bytes the runtime actually measures. *)

open Kernel_ast.Cast
open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let kernels_of scheme precision =
  match scheme with
  | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
  | `Fi_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
  | `Fd_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]

let run ?shards ?schedule ?tblock ?(steps = 10) ?(engine = `Jit) ?precision ~kernels () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim =
    Gpu_sim.create ~engine ?shards ?schedule ?precision ?tblock ~fi_beta:0.2
      ~n_branches:3 params room
  in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Gpu_sim.step sim kernels
  done;
  Gpu_sim.sync sim;
  sim

let bits_equal (a : float array) (b : float array) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let state_bits_equal (a : State.t) (b : State.t) =
  bits_equal a.State.curr b.State.curr
  && bits_equal a.State.prev b.State.prev
  && bits_equal a.State.g1 b.State.g1
  && bits_equal a.State.vel_prev b.State.vel_prev

let check_state msg (a : State.t) (b : State.t) =
  Test_util.check_bits (msg ^ " curr") a.State.curr b.State.curr;
  Test_util.check_bits (msg ^ " prev") a.State.prev b.State.prev;
  Test_util.check_bits (msg ^ " g1") a.State.g1 b.State.g1;
  Test_util.check_bits (msg ^ " vel") a.State.vel_prev b.State.vel_prev

(* FI / FI-MM / FD-MM, both precisions, 2/4 shards, T = 2..4 (clamped to
   the thinnest slab where needed), vs the single-device JIT. *)
let test_blocked_bit_identical () =
  List.iter
    (fun (scheme_label, scheme) ->
      List.iter
        (fun precision ->
          let kernels = kernels_of scheme precision in
          let reference = (run ~precision ~kernels ()).Gpu_sim.state in
          List.iter
            (fun shards ->
              List.iter
                (fun tblock ->
                  let sim = run ~shards ~tblock ~precision ~kernels () in
                  let msg =
                    Printf.sprintf "%s %s shards=%d T=%d (eff %d)" scheme_label
                      (match precision with Single -> "single" | Double -> "double")
                      shards tblock (Gpu_sim.tblock sim)
                  in
                  check_state msg reference sim.Gpu_sim.state)
                [ 2; 3; 4 ])
            [ 2; 4 ])
        [ Double; Single ])
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

(* All three schedules agree when blocked, including the overlapped
   queues whose block-start frontier launches wait on the previous
   block's deep exchanges. *)
let test_blocked_schedules_agree () =
  let kernels = kernels_of `Fd_mm Double in
  let reference = (run ~kernels ()).Gpu_sim.state in
  List.iter
    (fun (sched_label, schedule) ->
      List.iter
        (fun tblock ->
          let sim = run ~shards:3 ~schedule ~tblock ~kernels () in
          check_state
            (Printf.sprintf "fd-mm %s T=%d" sched_label tblock)
            reference sim.Gpu_sim.state)
        [ 2; 3 ])
    [ ("seq", `Seq); ("concurrent", `Concurrent); ("overlap", `Overlap) ]

(* All four engines produce the same blocked result. *)
let test_blocked_engines_agree () =
  let kernels = kernels_of `Fd_mm Double in
  let reference = (run ~kernels ()).Gpu_sim.state in
  List.iter
    (fun (engine_label, engine) ->
      let sim = run ~engine ~shards:2 ~tblock:2 ~kernels () in
      check_state ("fd-mm blocked " ^ engine_label) reference sim.Gpu_sim.state)
    [
      ("interp", `Interp);
      ("jit", `Jit);
      ("jit-parallel", `Jit_parallel 2);
      ("native", `Native);
    ]

(* Step counts that are not multiples of T: the sync (and reads) fall
   mid-block, where the ghost zones are partially stale but every owned
   plane is valid — the gathered state must still be exact. *)
let test_mid_block_sync_is_exact () =
  let kernels = kernels_of `Fi_mm Double in
  List.iter
    (fun steps ->
      let reference = (run ~steps ~kernels ()).Gpu_sim.state in
      let sim = run ~steps ~shards:3 ~tblock:3 ~kernels () in
      check_state (Printf.sprintf "fi-mm T=3 steps=%d" steps) reference
        sim.Gpu_sim.state)
    [ 1; 2; 5; 7 ]

let test_mid_block_read_addresses_owner () =
  let kernels = kernels_of `Fi Double in
  let single = run ~steps:7 ~kernels () in
  let sharded = run ~steps:7 ~shards:4 ~tblock:2 ~kernels () in
  let { Geometry.nx; ny; nz } = dims in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let a = Gpu_sim.read single ~x ~y ~z and b = Gpu_sim.read sharded ~x ~y ~z in
        if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
          Alcotest.failf "read (%d,%d,%d): %.17g vs %.17g" x y z a b
      done
    done
  done

(* The block depth clamps to the thinnest slab's owned plane count
   (nz = 10 over 4 shards -> slabs of 3,3,2,2 -> T <= 2). *)
let test_tblock_clamps_to_thinnest_slab () =
  let kernels = kernels_of `Fi Double in
  let sim = run ~shards:4 ~tblock:4 ~kernels () in
  Alcotest.(check int) "T clamped to thinnest slab" 2 (Gpu_sim.tblock sim);
  let wide = run ~shards:2 ~tblock:4 ~kernels () in
  Alcotest.(check int) "T kept when slabs are deep enough" 4 (Gpu_sim.tblock wide)

(* The static blocked-cost profile: exchange rounds amortise over T; the
   deep-halo bytes match what the runtime actually transfers; T = 2
   moves the same grid bytes per step as T = 1 (the depth-1 [curr]
   refresh is recomputed, not communicated); redundant frontier points
   appear only for T > 1. *)
let test_blocked_stats_profile () =
  let kernels = kernels_of `Fi Double in
  let steps = 8 in
  let plane_bytes = float_of_int (dims.Geometry.nx * dims.Geometry.ny * 8) in
  let profile tblock =
    let sim = run ~steps ~shards:2 ~tblock ~kernels () in
    let bs =
      match Gpu_sim.blocked_stats sim kernels with
      | Some bs -> bs
      | None -> Alcotest.fail "blocked_stats: sharded sim reported None"
    in
    let measured = (Gpu_sim.stats sim).Vgpu.Runtime.s_d2d_bytes in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "T=%d measured bytes match the profile" tblock)
      (float_of_int measured)
      (bs.Gpu_sim.bs_halo_bytes_per_step *. float_of_int steps);
    bs
  in
  let b1 = profile 1 and b2 = profile 2 and b4 = profile 4 in
  Alcotest.(check (float 1e-9)) "T=1: one exchange round = 2 ops per step" 2.
    b1.Gpu_sim.bs_exchanges_per_step;
  Alcotest.(check (float 1e-9)) "T=2: exchange ops amortise to 1 per step" 1.
    b2.Gpu_sim.bs_exchanges_per_step;
  Alcotest.(check (float 1e-9)) "T=1: 2 halo planes per step" (2. *. plane_bytes)
    b1.Gpu_sim.bs_halo_bytes_per_step;
  Alcotest.(check (float 1e-9)) "T=2: same grid bytes per step as T=1"
    b1.Gpu_sim.bs_halo_bytes_per_step b2.Gpu_sim.bs_halo_bytes_per_step;
  Alcotest.(check (float 1e-9)) "T=4: (4+3) planes each way over 4 steps"
    (3.5 *. plane_bytes) b4.Gpu_sim.bs_halo_bytes_per_step;
  Alcotest.(check int) "T=1: no redundant recompute" 0 b1.Gpu_sim.bs_redundant_points;
  if b4.Gpu_sim.bs_redundant_points <= b2.Gpu_sim.bs_redundant_points then
    Alcotest.failf "redundant points should grow with T: T=2 %d, T=4 %d"
      b2.Gpu_sim.bs_redundant_points b4.Gpu_sim.bs_redundant_points

(* -- Static verification of the blocked plans ------------------------- *)

let mk_plan_sim ~shards ~tblock =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  Gpu_sim.create ~engine:`Jit ~shards ~schedule:`Seq ~tblock ~fi_beta:0.2
    ~n_branches:3 Params.default room

let slab_of sim =
  let nx, ny, planes = Gpu_sim.slab_geometry sim in
  { Lift.Lint.sl_nx = nx; sl_ny = ny; sl_planes = planes }

let state_bufs = [ "g1"; "v1" ]
let err_codes issues = List.map (fun i -> i.Lift.Lint.code) (Lift.Lint.errors issues)

(* The real blocked cadences — depth-T ghosts, one exchange round per
   block — prove out under the footprint verifier at [~halo:T], sync and
   overlapped alike. *)
let test_blocked_plans_verify_clean () =
  List.iter
    (fun (label, scheme) ->
      let kernels = kernels_of scheme Double in
      List.iter
        (fun (shards, tblock) ->
          let sim = mk_plan_sim ~shards ~tblock in
          let t = Gpu_sim.tblock sim in
          let issues =
            Lift.Lint.verify_plan ~halo:t ~state_bufs (slab_of sim)
              (Gpu_sim.step_plan sim kernels ~steps:(2 * t))
          in
          Alcotest.(check (list string))
            (Printf.sprintf "sync %s shards=%d T=%d error-free" label shards t)
            [] (err_codes issues);
          let sim = mk_plan_sim ~shards ~tblock in
          let issues =
            Lift.Lint.verify_async ~halo:t ~state_bufs (slab_of sim)
              (Gpu_sim.overlap_plan sim kernels ~steps:(2 * t))
          in
          Alcotest.(check (list string))
            (Printf.sprintf "async %s shards=%d T=%d error-free" label shards t)
            [] (err_codes issues))
        [ (2, 2); (3, 3); (2, 4) ])
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

(* Acceptance case: exchanges narrowed to depth T-1 under a depth-T
   block must be rejected once validity runs out mid-block, and the
   diagnostic must name the depth the exchange should have had. *)
let test_depth_short_exchange_rejected () =
  let kernels = kernels_of `Fi Double in
  let sim = mk_plan_sim ~shards:2 ~tblock:2 in
  let slab = slab_of sim in
  let plan = Gpu_sim.step_plan sim kernels ~steps:4 in
  let plane = slab.Lift.Lint.sl_nx * slab.Lift.Lint.sl_ny in
  let h = 2 in
  let narrowed =
    List.map
      (function
        | Vgpu.Multi.Exchange ({ src_off; dst_off; elems; _ } as e)
          when elems > plane ->
            let w = elems / plane in
            let d0 = dst_off / plane in
            if d0 + w - 1 = h - 1 then
              (* low-side fill: keep only the cut-adjacent plane *)
              Vgpu.Multi.Exchange
                {
                  e with
                  src_off = src_off + ((w - 1) * plane);
                  dst_off = dst_off + ((w - 1) * plane);
                  elems = plane;
                }
            else Vgpu.Multi.Exchange { e with elems = plane }
        | op -> op)
      plan
  in
  let issues = Lift.Lint.verify_plan ~halo:h ~state_bufs slab narrowed in
  Alcotest.(check bool) "halo-too-narrow raised" true
    (List.mem "halo-too-narrow" (err_codes issues));
  let pointed =
    List.exists
      (fun i ->
        i.Lift.Lint.code = "halo-too-narrow"
        && Test_util.contains i.Lift.Lint.message "widen the exchange to 2 plane")
      issues
  in
  Alcotest.(check bool) "diagnostic names the required depth" true pointed

(* check_sharded understands the blocked cadence: one exchange round per
   T steps is clean at [~tblock:T] but an error under the per-step
   discipline. *)
let test_check_sharded_blocked_cadence () =
  let kernels = kernels_of `Fi Double in
  let sim = mk_plan_sim ~shards:2 ~tblock:2 in
  let plan = Gpu_sim.step_plan sim kernels ~steps:4 in
  let codes issues = List.map (fun i -> i.Lift.Lint.code) issues in
  Alcotest.(check (list string))
    "blocked plan clean at its own depth" []
    (codes (Lift.Lint.check_sharded ~tblock:2 plan));
  Alcotest.(check bool) "per-step analysis flags the skipped exchange" true
    (List.mem "missing-halo-exchange" (codes (Lift.Lint.check_sharded plan)))

(* -- The fused T-step kernel ------------------------------------------ *)

(* Run [blocks] fused launches of {!Programs.blocked_volume} (each
   advancing T generations) and return the gathered state. *)
let run_fused ?shards ?schedule ?(engine = `Jit) ?(precision = Double) ~tblock ~blocks
    () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim =
    Gpu_sim.create ~engine ?shards ?schedule ~tblock ~fi_beta:0.2 ~n_branches:3
      params room
  in
  let fused = [ Lift_acoustics.Programs.blocked_volume ~precision ~tblock () ] in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to blocks do
    Gpu_sim.step sim fused
  done;
  Gpu_sim.sync sim;
  sim

(* One fused T-step launch is bit-identical to T sequential
   volume + boundary_fi steps: single device and sharded, every depth,
   both precisions. *)
let test_fused_bit_identical () =
  List.iter
    (fun precision ->
      List.iter
        (fun tblock ->
          let blocks = 3 in
          let kernels = kernels_of `Fi precision in
          let reference =
            (run ~steps:(tblock * blocks) ~precision ~kernels ()).Gpu_sim.state
          in
          let single = run_fused ~precision ~tblock ~blocks () in
          check_state
            (Printf.sprintf "fused single T=%d %s" tblock
               (match precision with Single -> "single" | Double -> "double"))
            reference single.Gpu_sim.state;
          let sharded = run_fused ~shards:2 ~precision ~tblock ~blocks () in
          check_state
            (Printf.sprintf "fused sharded T=%d %s" tblock
               (match precision with Single -> "single" | Double -> "double"))
            reference sharded.Gpu_sim.state)
        [ 1; 2; 3; 4 ])
    [ Double; Single ]

(* The fused kernel agrees across engines and schedules. *)
let test_fused_engines_schedules_agree () =
  let kernels = kernels_of `Fi Double in
  let reference = (run ~steps:6 ~kernels ()).Gpu_sim.state in
  List.iter
    (fun (label, engine) ->
      let sim = run_fused ~shards:2 ~engine ~tblock:2 ~blocks:3 () in
      check_state ("fused " ^ label) reference sim.Gpu_sim.state)
    [
      ("interp", `Interp);
      ("jit", `Jit);
      ("jit-parallel", `Jit_parallel 2);
      ("native", `Native);
    ];
  List.iter
    (fun (label, schedule) ->
      let sim = run_fused ~shards:3 ~schedule ~tblock:2 ~blocks:3 () in
      check_state ("fused " ^ label) reference sim.Gpu_sim.state)
    [ ("seq", `Seq); ("concurrent", `Concurrent); ("overlap", `Overlap) ]

(* Footprint sees straight through the register pyramid: the fused
   kernel's [curr] reads reach L1 radius T and [prev] radius T-1 as
   plain affine extents, exactly what verify_plan prices deep halos
   against. *)
let test_fused_footprint_depth () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim = Gpu_sim.create ~fi_beta:0.2 ~n_branches:3 params room in
  let env = Gpu_sim.check_env sim in
  let strides = [| 1; dims.Geometry.nx; dims.Geometry.nx * dims.Geometry.ny |] in
  List.iter
    (fun t ->
      let k = Lift_acoustics.Programs.blocked_volume ~precision:Double ~tblock:t () in
      let fp = Kernel_ast.Footprint.infer ~strides env k in
      Alcotest.(check (option string))
        (Printf.sprintf "T=%d anchored on next" t)
        (Some "next") fp.Kernel_ast.Footprint.fp_anchor;
      Alcotest.(check (option int))
        (Printf.sprintf "T=%d curr radius" t)
        (Some t)
        (Kernel_ast.Footprint.read_radius fp "curr");
      Alcotest.(check (option int))
        (Printf.sprintf "T=%d prev radius" t)
        (Some (t - 1))
        (Kernel_ast.Footprint.read_radius fp "prev"))
    [ 1; 2; 3 ]

(* A fused kernel whose depth disagrees with the shards' ghost depth is
   rejected up front — the block exchange would be too shallow. *)
let test_fused_depth_mismatch_rejected () =
  let sim = mk_plan_sim ~shards:2 ~tblock:2 in
  let fused = [ Lift_acoustics.Programs.blocked_volume ~precision:Double ~tblock:3 () ] in
  Alcotest.check_raises "depth mismatch"
    (Invalid_argument
       "gpu_sim: fused kernel depth 3 needs ~tblock:3 (shards have halo 2)")
    (fun () -> Gpu_sim.step sim fused)

(* The fused plans prove out under the footprint verifier at depth T,
   sync and overlapped alike: the deep exchanges cover the radius-T
   reads Footprint reports. *)
let test_fused_plans_verify_clean () =
  List.iter
    (fun tblock ->
      let fused =
        [ Lift_acoustics.Programs.blocked_volume ~precision:Double ~tblock () ]
      in
      let sim = mk_plan_sim ~shards:2 ~tblock in
      let t = Gpu_sim.tblock sim in
      let issues =
        Lift.Lint.verify_plan ~halo:t ~state_bufs (slab_of sim)
          (Gpu_sim.step_plan sim fused ~steps:3)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "sync fused T=%d error-free" t)
        [] (err_codes issues);
      let sim = mk_plan_sim ~shards:2 ~tblock in
      let issues =
        Lift.Lint.verify_async ~halo:t ~state_bufs (slab_of sim)
          (Gpu_sim.overlap_plan sim fused ~steps:3)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "async fused T=%d error-free" t)
        [] (err_codes issues))
    [ 2; 3 ]

(* The 2.5D-tiled volume kernel composes with temporal blocking through
   the per-step blocked cadence (the cadence is kernel-agnostic): tiled
   under T=2 matches the flat single-device run bit-for-bit. *)
let test_tiled_under_tblock () =
  let reference = (run ~steps:6 ~kernels:(kernels_of `Fi Double) ()).Gpu_sim.state in
  let tiled =
    [
      Lift_acoustics.Programs.tiled_volume ~precision:Double ~tile:(4, 4) ();
      Hand_kernels.boundary_fi ~precision:Double;
    ]
  in
  let sim = run ~steps:6 ~shards:2 ~tblock:2 ~kernels:tiled () in
  check_state "tiled under T=2" reference sim.Gpu_sim.state

(* Property: for random scheme / precision / shard count / block depth /
   schedule / step count, the blocked run equals the unblocked
   single-device run bit-for-bit. *)
let qcheck_blocked_matches_sequential =
  QCheck.Test.make ~name:"fused/blocked T-step launch == T sequential steps"
    ~count:25
    QCheck.(quad (int_range 0 2) (int_range 1 4) (int_range 1 4) (int_range 0 2))
    (fun (scheme_i, shards, tblock, sched_i) ->
      let scheme = List.nth [ `Fi; `Fi_mm; `Fd_mm ] scheme_i in
      let precision = if (shards + tblock) mod 2 = 0 then Double else Single in
      let schedule = List.nth [ `Seq; `Concurrent; `Overlap ] sched_i in
      let steps = 4 + ((scheme_i + shards + tblock) mod 5) in
      let kernels = kernels_of scheme precision in
      let a = run ~steps ~precision ~kernels () in
      let b = run ~steps ~shards ~schedule ~tblock ~precision ~kernels () in
      state_bits_equal a.Gpu_sim.state b.Gpu_sim.state)

let suite =
  [
    Alcotest.test_case "blocked runs bit-identical across scheme/precision/T" `Slow
      test_blocked_bit_identical;
    Alcotest.test_case "blocked runs agree across schedules" `Quick
      test_blocked_schedules_agree;
    Alcotest.test_case "blocked runs agree across engines" `Quick
      test_blocked_engines_agree;
    Alcotest.test_case "mid-block sync gathers exact state" `Quick
      test_mid_block_sync_is_exact;
    Alcotest.test_case "mid-block read addresses the owning shard" `Quick
      test_mid_block_read_addresses_owner;
    Alcotest.test_case "block depth clamps to the thinnest slab" `Quick
      test_tblock_clamps_to_thinnest_slab;
    Alcotest.test_case "blocked cost profile matches measured transfers" `Quick
      test_blocked_stats_profile;
    Alcotest.test_case "blocked sync+async plans verify at depth T" `Quick
      test_blocked_plans_verify_clean;
    Alcotest.test_case "depth T-1 exchange rejected, pointed" `Quick
      test_depth_short_exchange_rejected;
    Alcotest.test_case "check_sharded knows the blocked cadence" `Quick
      test_check_sharded_blocked_cadence;
    Alcotest.test_case "fused T-step launch bit-identical to T steps" `Quick
      test_fused_bit_identical;
    Alcotest.test_case "fused launches agree across engines and schedules" `Quick
      test_fused_engines_schedules_agree;
    Alcotest.test_case "fused footprint reads reach depth T" `Quick
      test_fused_footprint_depth;
    Alcotest.test_case "fused depth mismatch rejected" `Quick
      test_fused_depth_mismatch_rejected;
    Alcotest.test_case "fused plans verify at depth T" `Quick
      test_fused_plans_verify_clean;
    Alcotest.test_case "tiled kernel under the blocked cadence" `Quick
      test_tiled_under_tblock;
    QCheck_alcotest.to_alcotest qcheck_blocked_matches_sequential;
  ]
