(* The verification layer, all three legs:

   - Kernel_ast.Check (static): the paper's production kernels carry the
     expected verdicts — the fused Listing-1 volume stores are *proven*
     race-free, the indirect next[bidx[i]] boundary scatters are honestly
     Unproven (handed to the sanitizer), and the FD-MM branch-state
     stores are proven safe through the mixed-radix gid+loop argument.
     Verdicts are invariant under the optimizer pipeline.

   - Vgpu.Sanitizer (dynamic): a deliberately racy kernel draws both a
     machine-checked static Unsafe witness and a dynamic write-race
     report; an off-by-one store is caught by both legs; a sanitized
     sharded FD-MM run is violation-free and bit-identical to the
     unsanitized engines.

   - Lift.Lint (host plans): use-before-ToGPU, dead transfers, arity and
     kind mismatches on hexprs; missing halo exchanges on sharded
     multi-device plans.

   Plus a qcheck property tying the legs together: for random affine
   store kernels, a static Safe verdict implies zero dynamic violations
   of the same class. *)

open Kernel_ast
open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let sim_env () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim = Gpu_sim.create ~fi_beta:0.2 ~n_branches:3 params room in
  Gpu_sim.check_env sim

let buf_report (r : Check.report) name =
  match List.find_opt (fun b -> b.Check.b_name = name) r.Check.r_bufs with
  | Some b -> b
  | None -> Alcotest.failf "kernel %s: no report for buffer %s" r.Check.r_kernel name

let verdict_label = function
  | Check.Safe -> "safe"
  | Check.Unsafe _ -> "unsafe"
  | Check.Unproven _ -> "unproven"

let check_verdict msg expected v =
  Alcotest.(check string) msg expected (verdict_label v)

(* -- Static verdicts on the production kernels ----------------------- *)

let test_paper_kernel_verdicts () =
  let env = sim_env () in
  let p = Cast.Double in
  (* Listing 1: the fused kernel's volume stores are proven race-free and
     in bounds — the acceptance claim of the static leg. *)
  let fused = Check.check env (Hand_kernels.fused_fi ~precision:p) in
  let next = buf_report fused "next" in
  check_verdict "fused_fi next race" "safe" next.Check.b_race;
  check_verdict "fused_fi next bounds" "safe" next.Check.b_bounds;
  Alcotest.(check bool) "fused_fi has no Unsafe" true (Check.ok fused);
  (* Indirect boundary scatter: honestly Unproven, never Unsafe. *)
  let bfi = Check.check env (Hand_kernels.boundary_fi ~precision:p) in
  (match (buf_report bfi "next").Check.b_race with
  | Check.Unproven _ -> ()
  | v -> Alcotest.failf "boundary_fi next race: expected unproven, got %s" (verdict_label v));
  Alcotest.(check bool) "boundary_fi has no Unsafe" true (Check.ok bfi);
  (* FD-MM branch state: safe via the combined gid+loop radix argument. *)
  let fd = Check.check env (Hand_kernels.boundary_fd_mm ~precision:p ~mb:3) in
  check_verdict "fd_mm g1 race" "safe" (buf_report fd "g1").Check.b_race;
  check_verdict "fd_mm v1 race" "safe" (buf_report fd "v1").Check.b_race;
  Alcotest.(check bool) "fd_mm has no Unsafe" true (Check.ok fd)

(* The optimizer must not change any verdict: the verifier doubles as a
   differential audit of the pass pipeline. *)
let test_verdicts_invariant_under_opt () =
  let env = sim_env () in
  let p = Cast.Double in
  List.iter
    (fun (k : Cast.kernel) ->
      let raw = Check.check env k in
      let opt = Check.check env (fst (Opt.optimize k)) in
      let summarize (r : Check.report) =
        List.map
          (fun b -> (b.Check.b_name, verdict_label b.Check.b_race, verdict_label b.Check.b_bounds))
          r.Check.r_bufs
      in
      if summarize raw <> summarize opt then
        Alcotest.failf "%s: verdicts changed under optimization" k.Cast.name)
    [
      Hand_kernels.fused_fi ~precision:p;
      Hand_kernels.volume ~precision:p;
      Hand_kernels.boundary_fi ~precision:p;
      Hand_kernels.boundary_fi_mm ~precision:p ~betas;
      Hand_kernels.boundary_fd_mm ~precision:p ~mb:3;
    ]

(* -- A deliberately racy kernel: both legs must catch it ------------- *)

(* 2D NDRange n x 4 storing out[gid0]: the four y work-items of each
   column collide.  Affine with a dropped gid dimension, so the static
   leg must produce a concrete Unsafe witness, not Unproven. *)
let racy_kernel =
  let open Cast in
  {
    name = "racy";
    params = [ param "out" Real; param ~kind:Scalar_param "n" Int ];
    body = [ Store ("out", Global_id 0, Real_lit 1.0) ];
    precision = Double;
    global_size = [ Var "n"; Int_lit 4 ];
    local_size = [];
  }

let racy_env =
  Check.env
    ~param_value:(function "n" -> Some 8 | _ -> None)
    ~buffer_elems:(function "out" -> Some 8 | _ -> None)
    ()

let test_racy_kernel_static () =
  let r = Check.check racy_env racy_kernel in
  match (buf_report r "out").Check.b_race with
  | Check.Unsafe w ->
      Alcotest.(check int) "witness names two work-items" 2 (List.length w.Check.w_gids);
      Alcotest.(check string) "witness buffer" "out" w.Check.w_buf;
      (match w.Check.w_gids with
      | [ (x1, _, _); (x2, _, _) ] ->
          Alcotest.(check int) "colliding work-items share gid0" x1 x2
      | _ -> assert false);
      Alcotest.(check bool) "report not ok" false (Check.ok r)
  | v -> Alcotest.failf "racy kernel: expected Unsafe race, got %s" (verdict_label v)

let test_racy_kernel_dynamic () =
  let s = Vgpu.Sanitizer.create () in
  let out = Vgpu.Buffer.F (Array.make 8 0.) in
  Vgpu.Sanitizer.note_host_write s out;
  Vgpu.Sanitizer.launch s racy_kernel
    ~args:[ Vgpu.Args.Buf out; Vgpu.Args.Int_arg 8 ]
    ~global:[ 8; 4 ];
  let c = Vgpu.Sanitizer.counts s in
  Alcotest.(check bool) "dynamic write races detected" true (c.Vgpu.Sanitizer.n_races > 0);
  match Vgpu.Sanitizer.violations s with
  | { Vgpu.Sanitizer.v_kind = Write_race _; v_buf = "out"; v_kernel = "racy"; _ } :: _ -> ()
  | v :: _ -> Alcotest.failf "first violation is not a race on out: %a" Vgpu.Sanitizer.pp_violation v
  | [] -> Alcotest.fail "no violation retained"

(* The verifying runtime refuses to dispatch it; safe kernels pass. *)
let test_runtime_fail_fast () =
  let rt = Vgpu.Runtime.create ~verify:true () in
  Vgpu.Runtime.bind rt "out" (Vgpu.Buffer.F (Array.make 8 0.));
  let launch k global =
    Vgpu.Runtime.run_op rt
      (Vgpu.Runtime.Launch
         { kernel = k; args = [ Vgpu.Runtime.A_buf "out"; Vgpu.Runtime.A_int 8 ]; global })
  in
  (match launch racy_kernel [ 8; 4 ] with
  | () -> Alcotest.fail "verifying runtime dispatched a racy kernel"
  | exception Vgpu.Runtime.Unsafe_kernel r ->
      Alcotest.(check string) "report names the kernel" "racy" r.Check.r_kernel);
  let safe = { racy_kernel with name = "safe1d"; global_size = [ Cast.Var "n" ] } in
  launch safe [ 8 ];
  Alcotest.(check (float 0.)) "safe kernel ran" 1.0
    (match Vgpu.Runtime.buffer rt "out" with
    | Vgpu.Buffer.F a -> a.(7)
    | _ -> nan)

(* -- Off-by-one: caught statically and dynamically ------------------- *)

let off_by_one =
  let open Cast in
  {
    name = "off_by_one";
    params = [ param "out" Real; param ~kind:Scalar_param "n" Int ];
    body = [ Store ("out", Global_id 0 +: int_lit 1, Real_lit 2.0) ];
    precision = Double;
    global_size = [ Var "n" ];
    local_size = [];
  }

let test_off_by_one_both_legs () =
  let r = Check.check racy_env off_by_one in
  (match (buf_report r "out").Check.b_bounds with
  | Check.Unsafe w ->
      Alcotest.(check int) "witness index is one past the end" 8 w.Check.w_index
  | v -> Alcotest.failf "off-by-one bounds: expected Unsafe, got %s" (verdict_label v));
  let s = Vgpu.Sanitizer.create () in
  let out = Vgpu.Buffer.F (Array.make 8 0.) in
  Vgpu.Sanitizer.note_host_write s out;
  Vgpu.Sanitizer.launch s off_by_one
    ~args:[ Vgpu.Args.Buf out; Vgpu.Args.Int_arg 8 ]
    ~global:[ 8 ];
  let c = Vgpu.Sanitizer.counts s in
  Alcotest.(check int) "one OOB store" 1 c.Vgpu.Sanitizer.n_oob;
  (* the offending store was suppressed, not applied *)
  match out with
  | Vgpu.Buffer.F a -> Alcotest.(check (float 0.)) "in-bounds cells written" 2.0 a.(7)
  | _ -> assert false

(* -- Exec_error carries structured context --------------------------- *)

let test_exec_error_structure () =
  let open Cast in
  let bad =
    {
      name = "bad";
      params = [ param "out" Real ];
      body = [ Store ("out", Global_id 0, Var "nope") ];
      precision = Double;
      global_size = [ Int_lit 2 ];
      local_size = [];
    }
  in
  match Vgpu.Exec.launch bad ~args:[ Vgpu.Args.Buf (Vgpu.Buffer.F (Array.make 2 0.)) ] ~global:[ 2 ] with
  | () -> Alcotest.fail "expected Exec_error"
  | exception Vgpu.Exec.Exec_error { e_kernel; e_gid; e_context } ->
      Alcotest.(check string) "kernel name" "bad" e_kernel;
      Alcotest.(check bool) "work-item attributed" true (e_gid = (0, 0, 0));
      Alcotest.(check bool) "context mentions the name" true
        (String.length e_context > 0)

(* -- qcheck: static Safe implies dynamically clean ------------------- *)

(* Random affine store kernels out[ax*x + ay*y + b] over random NDRanges
   and extents.  Whatever the static verdict, a Safe race verdict must
   mean zero dynamic races and a Safe bounds verdict zero dynamic OOB —
   the soundness direction the whole design rests on. *)
let qcheck_static_safe_is_dynamically_clean =
  let gen =
    QCheck.Gen.(
      map (fun (gx, gy, ax, ay, b, elems) -> (gx, gy, ax, ay, b, elems))
        (tup6 (int_range 1 6) (int_range 1 6) (int_range 0 4) (int_range 0 4) (int_range 0 3)
           (int_range 1 40)))
  in
  let print (gx, gy, ax, ay, b, elems) =
    Printf.sprintf "ndrange %dx%d, out[%d*x + %d*y + %d], %d elems" gx gy ax ay b elems
  in
  QCheck.Test.make ~name:"static Safe => zero dynamic violations" ~count:300
    (QCheck.make ~print gen)
    (fun (gx, gy, ax, ay, b, elems) ->
      let open Cast in
      let idx = (int_lit ax *: Global_id 0) +: (int_lit ay *: Global_id 1) +: int_lit b in
      let k =
        {
          name = "affine";
          params = [ param "out" Real ];
          body = [ Store ("out", idx, Real_lit 1.0) ];
          precision = Double;
          global_size = [ Int_lit gx; Int_lit gy ];
          local_size = [];
        }
      in
      let env = Check.env ~buffer_elems:(function "out" -> Some elems | _ -> None) () in
      let r = Check.check env k in
      let rep = buf_report r "out" in
      let s = Vgpu.Sanitizer.create () in
      let out = Vgpu.Buffer.F (Array.make elems 0.) in
      Vgpu.Sanitizer.note_host_write s out;
      Vgpu.Sanitizer.launch s k ~args:[ Vgpu.Args.Buf out ] ~global:[ gx; gy ];
      let c = Vgpu.Sanitizer.counts s in
      let race_sound =
        match rep.Check.b_race with
        | Check.Safe -> c.Vgpu.Sanitizer.n_races = 0
        | Check.Unsafe w ->
            (* witnesses are concrete; a collision on an out-of-bounds
               cell surfaces as OOB (the sanitizer suppresses the store
               before it can register a writer) *)
            if w.Check.w_index >= 0 && w.Check.w_index < elems then
              c.Vgpu.Sanitizer.n_races > 0
            else c.Vgpu.Sanitizer.n_oob > 0
        | Check.Unproven _ -> true
      in
      let bounds_sound =
        match rep.Check.b_bounds with
        | Check.Safe -> c.Vgpu.Sanitizer.n_oob = 0
        | Check.Unsafe _ -> c.Vgpu.Sanitizer.n_oob > 0
        | Check.Unproven _ -> true
      in
      race_sound && bounds_sound)

(* -- Sanitized sharded FD-MM: clean and bit-identical ---------------- *)

let test_sanitized_fd_mm_sharded () =
  List.iter
    (fun precision ->
      let kernels =
        [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]
      in
      let run ~sanitize =
        let room = Geometry.build ~n_materials:4 Geometry.Box dims in
        let sim =
          Gpu_sim.create ~engine:`Interp ~shards:2 ~sanitize ~fi_beta:0.2 ~n_branches:3
            params room
        in
        let cx, cy, cz = State.centre sim.Gpu_sim.state in
        State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
        for _ = 1 to 5 do
          Gpu_sim.step sim kernels
        done;
        Gpu_sim.sync sim;
        sim
      in
      let plain = run ~sanitize:false and checked = run ~sanitize:true in
      let label =
        match precision with Cast.Single -> "single" | Cast.Double -> "double"
      in
      (match Gpu_sim.violations checked with
      | Some c ->
          if Vgpu.Sanitizer.total c > 0 then
            Alcotest.failf "fd-mm %s sharded: %d violation(s): %a" label
              (Vgpu.Sanitizer.total c) Vgpu.Sanitizer.pp_counts c
      | None -> Alcotest.fail "sanitize:true but no violation counts");
      Alcotest.(check int) "one sanitizer per device" 2
        (List.length (Gpu_sim.sanitizers checked));
      Test_util.check_bits
        (Printf.sprintf "fd-mm %s sharded sanitized curr" label)
        plain.Gpu_sim.state.State.curr checked.Gpu_sim.state.State.curr;
      Test_util.check_bits
        (Printf.sprintf "fd-mm %s sharded sanitized g1" label)
        plain.Gpu_sim.state.State.g1 checked.Gpu_sim.state.State.g1)
    [ Cast.Double; Cast.Single ]

(* -- Host-plan lint --------------------------------------------------- *)

let volume_args ~gpu p =
  let open Lift.Host in
  let open Lift_acoustics.Programs in
  let buf name ty = if gpu then to_gpu (input (p name ty)) else input (p name ty) in
  [
    buf "nbrs" nbrs_ty;
    buf "prev" grid_ty;
    buf "curr" grid_ty;
    buf "next" grid_ty;
    H_int 14;
    H_int (14 * 12);
    H_real (Params.l2 params);
  ]

let lint_codes issues = List.map (fun i -> i.Lift.Lint.code) issues

let test_lint_host () =
  let open Lift.Host in
  let p name ty = Lift.Ast.named_param name ty in
  let volume_lam = Lift_acoustics.Programs.volume () in
  (* clean program: everything transferred, then consumed *)
  let good = to_host (ocl_kernel ~name:"volume" volume_lam (volume_args ~gpu:true p)) in
  Alcotest.(check (list string)) "clean program" [] (lint_codes (Lift.Lint.check_host good));
  (* same launch without the transfers: one error per buffer operand *)
  let bad = to_host (ocl_kernel ~name:"volume" volume_lam (volume_args ~gpu:false p)) in
  let codes = lint_codes (Lift.Lint.check_host bad) in
  Alcotest.(check (list string)) "use-before-togpu per buffer"
    [ "use-before-togpu"; "use-before-togpu"; "use-before-togpu"; "use-before-togpu" ]
    codes;
  (* a transferred buffer that is never consumed *)
  let dead =
    H_tuple
      [
        to_gpu (input (p "unused" Lift_acoustics.Programs.grid_ty));
        to_host (ocl_kernel ~name:"volume" volume_lam (volume_args ~gpu:true p));
      ]
  in
  Alcotest.(check bool) "dead transfer reported" true
    (List.mem "dead-transfer" (lint_codes (Lift.Lint.check_host dead)));
  Alcotest.(check (list string)) "dead transfer is a warning, not an error" []
    (lint_codes (Lift.Lint.errors (Lift.Lint.check_host dead)));
  (* arity mismatch: one argument against the 7-parameter lambda *)
  let wrong =
    to_host
      (ocl_kernel ~name:"volume" volume_lam
         [ to_gpu (input (p "nbrs" Lift_acoustics.Programs.nbrs_ty)) ])
  in
  (* the mismatched call also strands its transferred argument *)
  Alcotest.(check (list string)) "arity mismatch"
    [ "arity-mismatch"; "dead-transfer" ]
    (lint_codes (Lift.Lint.check_host wrong));
  (* kind mismatch: buffer where the Nx scalar belongs *)
  let swapped =
    let open Lift_acoustics.Programs in
    to_host
      (ocl_kernel ~name:"volume" volume_lam
         [
           to_gpu (input (p "nbrs" nbrs_ty));
           to_gpu (input (p "prev" grid_ty));
           to_gpu (input (p "curr" grid_ty));
           to_gpu (input (p "next" grid_ty));
           to_gpu (input (p "extra" grid_ty));
           H_int (14 * 12);
           H_real (Params.l2 params);
         ])
  in
  Alcotest.(check bool) "kind mismatch reported" true
    (List.mem "kind-mismatch" (lint_codes (Lift.Lint.check_host swapped)))

let test_lint_sharded () =
  let k = Hand_kernels.volume ~precision:Cast.Double in
  let launch d =
    Vgpu.Multi.Dev (d, Vgpu.Runtime.Launch { kernel = k; args = []; global = [ 1 ] })
  in
  let swap d = Vgpu.Multi.Dev (d, Vgpu.Runtime.Swap ("curr", "next")) in
  let exchange =
    [
      Vgpu.Multi.Exchange
        { src_dev = 0; src = "next"; src_off = 0; dst_dev = 1; dst = "next"; dst_off = 0; elems = 4 };
      Vgpu.Multi.Exchange
        { src_dev = 1; src = "next"; src_off = 4; dst_dev = 0; dst = "next"; dst_off = 4; elems = 4 };
    ]
  in
  let step ~exchanged =
    [ launch 0; launch 1 ] @ (if exchanged then exchange else []) @ [ swap 0; swap 1 ]
  in
  Alcotest.(check (list string)) "exchanged plan is clean" []
    (lint_codes (Lift.Lint.check_sharded (step ~exchanged:true @ step ~exchanged:true)));
  Alcotest.(check (list string)) "missing exchange flagged"
    [ "missing-halo-exchange" ]
    (lint_codes (Lift.Lint.check_sharded (step ~exchanged:false @ step ~exchanged:false)));
  (* a single step has no successor: nothing to flag *)
  Alcotest.(check (list string)) "single step is clean" []
    (lint_codes (Lift.Lint.check_sharded (step ~exchanged:false)))

(* -- Emitted C: every buffer concretely sized ------------------------ *)

let test_emit_c_sized () =
  let open Lift.Host in
  let p name ty = Lift.Ast.named_param name ty in
  let prog =
    to_host
      (ocl_kernel ~name:"volume" (Lift_acoustics.Programs.volume ()) (volume_args ~gpu:true p))
  in
  let sizes = function "N" -> Some (14 * 12 * 10) | _ -> None in
  let compiled = Lift.Host.compile ~sizes prog in
  Alcotest.(check bool) "compiler resolved every extent" true
    (List.for_all (fun (_, n) -> n > 0) compiled.Lift.Host.buffer_elems);
  let c = Lift.Emit_c.host_program compiled in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no unsized allocation" false
    (contains "extent not statically derivable" c);
  Alcotest.(check bool) "no size TODO" false (contains "TODO: size" c);
  Alcotest.(check bool) "grid extent appears" true
    (contains (string_of_int (14 * 12 * 10)) c)

let suite =
  [
    Alcotest.test_case "paper kernels: static verdicts" `Quick test_paper_kernel_verdicts;
    Alcotest.test_case "verdicts invariant under optimizer" `Quick
      test_verdicts_invariant_under_opt;
    Alcotest.test_case "racy kernel: static Unsafe witness" `Quick test_racy_kernel_static;
    Alcotest.test_case "racy kernel: dynamic race report" `Quick test_racy_kernel_dynamic;
    Alcotest.test_case "verifying runtime fails fast" `Quick test_runtime_fail_fast;
    Alcotest.test_case "off-by-one caught by both legs" `Quick test_off_by_one_both_legs;
    Alcotest.test_case "Exec_error carries context" `Quick test_exec_error_structure;
    QCheck_alcotest.to_alcotest qcheck_static_safe_is_dynamically_clean;
    Alcotest.test_case "sanitized sharded fd-mm: clean, bit-identical" `Quick
      test_sanitized_fd_mm_sharded;
    Alcotest.test_case "host-plan lint" `Quick test_lint_host;
    Alcotest.test_case "sharded-plan lint" `Quick test_lint_sharded;
    Alcotest.test_case "emitted C is fully sized" `Quick test_emit_c_sized;
  ]
