(* The roofline performance model: monotonicity properties and the
   mechanisms behind the paper's observations (single vs double, box vs
   dome coalescing, the NVIDIA beta-in-global-memory gap, FD-MM being
   much slower than FI-MM). *)

open Acoustics

let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let boundary_workload ?(contiguity = 0.78) ?(n_boundary = 1_000_000) ?(mb = 3) () =
  let n = 10_000_000 in
  Vgpu.Perf_model.workload ~active_points:(float_of_int n_boundary) ~contiguity
    ~buffer_elems:
      [
        ("prev", n); ("curr", n); ("next", n); ("nbrs", n);
        ("bidx", n_boundary); ("material", n_boundary);
        ("beta", 4); ("beta_fd", 4);
        ("bi", 4 * mb); ("d", 4 * mb); ("f", 4 * mb); ("di", 4 * mb);
        ("g1", mb * n_boundary); ("v2", mb * n_boundary); ("v1", mb * n_boundary);
      ]
    ()

let predict ?(device = Vgpu.Device.gtx780) kernel w = Vgpu.Perf_model.predict device kernel w

let test_double_slower_than_single () =
  List.iter
    (fun device ->
      let kd = Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Double ~mb:3 in
      let ks = Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Single ~mb:3 in
      let w = boundary_workload () in
      Alcotest.(check bool)
        (device.Vgpu.Device.name ^ ": double slower")
        true
        (predict ~device kd w > predict ~device ks w))
    Vgpu.Device.all

let test_fd_slower_than_fi () =
  let kfi = Hand_kernels.boundary_fi_mm ~precision:Kernel_ast.Cast.Double ~betas in
  let kfd = Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Double ~mb:3 in
  let w = boundary_workload () in
  let tfi = predict kfi w and tfd = predict kfd w in
  Alcotest.(check bool) "FD-MM at least 2x slower than FI-MM" true (tfd > 2. *. tfi)

let test_contiguity_helps () =
  let k = Hand_kernels.boundary_fi_mm ~precision:Kernel_ast.Cast.Double ~betas in
  let t_box = predict k (boundary_workload ~contiguity:0.78 ()) in
  let t_dome = predict k (boundary_workload ~contiguity:0.5 ()) in
  let t_scattered = predict k (boundary_workload ~contiguity:0.0 ()) in
  Alcotest.(check bool) "lower contiguity is slower" true (t_dome > t_box);
  Alcotest.(check bool) "fully scattered slowest" true (t_scattered > t_dome)

let test_more_branches_cost_more () =
  let w mb = boundary_workload ~mb () in
  let t mb = predict (Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Double ~mb) (w mb) in
  Alcotest.(check bool) "mb=1 < mb=2 < mb=4" true (t 1 < t 2 && t 2 < t 4)

(* The §VII-B1 mechanism: the Lift FI-MM kernel reads beta from global
   memory; the hand-written one keeps it private.  On NVIDIA this costs
   the Lift version time; on AMD the scalar cache hides it. *)
let test_nvidia_beta_gap () =
  let hand = Hand_kernels.boundary_fi_mm ~precision:Kernel_ast.Cast.Double ~betas in
  let lift =
    (Lift_acoustics.Programs.compile ~name:"fimm" ~precision:Kernel_ast.Cast.Double
       (Lift_acoustics.Programs.boundary_fi_mm ()))
      .Lift.Codegen.kernel
  in
  let w = boundary_workload () in
  let gap device = predict ~device lift w -. predict ~device hand w in
  let g_nv = gap Vgpu.Device.gtx780 and g_amd = gap Vgpu.Device.amd7970 in
  Alcotest.(check bool) "lift slower than hand on NVIDIA" true (g_nv > 0.);
  Alcotest.(check bool) "NVIDIA gap exceeds AMD gap" true (g_nv > g_amd +. 1e-9)

let test_bandwidth_scaling () =
  (* same kernel, same workload: faster memory means faster kernel *)
  let k = Hand_kernels.volume ~precision:Kernel_ast.Cast.Double in
  let w =
    Vgpu.Perf_model.workload ~active_points:1e7
      ~buffer_elems:[ ("prev", 10_000_000); ("curr", 10_000_000); ("next", 10_000_000); ("nbrs", 10_000_000) ]
      ()
  in
  let t780 = predict ~device:Vgpu.Device.gtx780 k w in
  let t_titan = predict ~device:Vgpu.Device.titan_black k w in
  Alcotest.(check bool) "more bandwidth is faster" true (t_titan < t780)

let test_breakdown_consistency () =
  let k = Hand_kernels.volume ~precision:Kernel_ast.Cast.Double in
  let w =
    Vgpu.Perf_model.workload ~active_points:1e6
      ~buffer_elems:[ ("prev", 1_000_000); ("curr", 1_000_000); ("next", 1_000_000); ("nbrs", 1_000_000) ]
      ()
  in
  let b = Vgpu.Perf_model.predict_breakdown Vgpu.Device.gtx780 k w in
  Alcotest.(check bool) "total = launch + max(mem, flop)" true
    (Float.abs (b.Vgpu.Perf_model.total_s -. (b.launch_s +. Float.max b.mem_time_s b.flop_time_s))
     < 1e-15);
  Alcotest.(check bool) "stencil is memory bound" true (b.mem_time_s > b.flop_time_s);
  Alcotest.(check bool) "positive traffic" true (b.bytes_per_point > 0.)

(* The work-group tier: __local traffic is priced on its own roofline
   arm at local_bw_ratio x DRAM bandwidth.  The tiled volume kernel must
   show local traffic the flat one has none of, local time must stay
   cheaper than the (coalesced-rate) DRAM it replaces, and the total
   must be the three-way roofline max. *)
let test_local_memory_tier () =
  let elems = 1_000_000 in
  let w =
    Vgpu.Perf_model.workload ~active_points:1e6
      ~buffer_elems:
        [ ("prev", elems); ("curr", elems); ("next", elems); ("nbrs", elems) ]
      ()
  in
  let device = Vgpu.Device.gtx780 in
  let flat =
    Vgpu.Perf_model.predict_breakdown device (Hand_kernels.volume ~precision:Kernel_ast.Cast.Double) w
  in
  let tiled =
    Vgpu.Perf_model.predict_breakdown device
      (Lift_acoustics.Programs.tiled_volume ~precision:Kernel_ast.Cast.Double ~tile:(8, 8) ())
      w
  in
  Alcotest.(check (float 0.)) "flat kernel has no local traffic" 0.
    flat.Vgpu.Perf_model.local_bytes_per_point;
  Alcotest.(check bool) "tiled kernel has local traffic" true
    (tiled.Vgpu.Perf_model.local_bytes_per_point > 0.);
  Alcotest.(check bool) "local arm is cheaper than DRAM" true
    (tiled.Vgpu.Perf_model.local_time_s < tiled.Vgpu.Perf_model.mem_time_s);
  Alcotest.(check bool) "total = launch + max(mem, flop, local)" true
    (Float.abs
       (tiled.Vgpu.Perf_model.total_s
       -. (tiled.launch_s +. Float.max (Float.max tiled.mem_time_s tiled.flop_time_s) tiled.local_time_s))
    < 1e-15);
  (* a device with slower local memory prices the local arm higher *)
  let slow = { device with Vgpu.Device.local_bw_ratio = device.Vgpu.Device.local_bw_ratio /. 4. } in
  let tiled_slow =
    Vgpu.Perf_model.predict_breakdown slow
      (Lift_acoustics.Programs.tiled_volume ~precision:Kernel_ast.Cast.Double ~tile:(8, 8) ())
      w
  in
  Alcotest.(check bool) "local_bw_ratio scales the local arm" true
    (tiled_slow.Vgpu.Perf_model.local_time_s > 3.9 *. tiled.Vgpu.Perf_model.local_time_s)

(* Double precision can be compute-bound on the GTX 780 (1/24 DP rate)
   for flop-heavy kernels; check the roofline switches over. *)
let test_compute_bound_switch () =
  let open Kernel_ast.Cast in
  let flops_kernel n_flops =
    let rec chain n acc = if n = 0 then acc else chain (n - 1) (Binop (Mul, acc, Var "x")) in
    {
      name = "flops";
      precision = Double;
      params = [ param "a" Real ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [
          Decl (Real, "x", Some (Load ("a", Global_id 0)));
          Store ("a", Global_id 0, chain n_flops (Var "x"));
        ];
    }
  in
  let w =
    Vgpu.Perf_model.workload ~active_points:1e7 ~buffer_elems:[ ("a", 10_000_000) ] ()
  in
  let b = Vgpu.Perf_model.predict_breakdown Vgpu.Device.gtx780 (flops_kernel 200) w in
  Alcotest.(check bool) "200 flops/point is compute bound on GTX780 double" true
    (b.Vgpu.Perf_model.flop_time_s > b.mem_time_s)

let suite =
  [
    Alcotest.test_case "double slower than single" `Quick test_double_slower_than_single;
    Alcotest.test_case "FD-MM slower than FI-MM" `Quick test_fd_slower_than_fi;
    Alcotest.test_case "contiguity improves throughput" `Quick test_contiguity_helps;
    Alcotest.test_case "branch count scales cost" `Quick test_more_branches_cost_more;
    Alcotest.test_case "NVIDIA beta-in-global gap (paper VII-B1)" `Quick test_nvidia_beta_gap;
    Alcotest.test_case "bandwidth scaling" `Quick test_bandwidth_scaling;
    Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
    Alcotest.test_case "local-memory roofline arm" `Quick test_local_memory_tier;
    Alcotest.test_case "compute-bound switch" `Quick test_compute_bound_switch;
  ]

(* Regression: exact-multiple launches have no tail group.  The old
   [round (x +. 0.5)] charged a phantom empty group for
   active_points = k * local_size (128/128 -> round 1.5 -> 2 groups),
   halving the efficiency. *)
let test_group_efficiency_exact_multiple () =
  List.iter
    (fun (active, ls) ->
      let w = Vgpu.Perf_model.workload ~local_size:ls ~active_points:active () in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "active=%g ls=%d has no tail" active ls)
        1.0
        (Vgpu.Perf_model.group_efficiency w ~flops:10.))
    [ (128., 128); (256., 128); (64., 64); (1024., 256); (12800., 128) ];
  (* one extra point spills into a real tail group *)
  let w = Vgpu.Perf_model.workload ~local_size:128 ~active_points:129. () in
  Alcotest.(check (float 1e-12))
    "129/128 pays a second group" (129. /. 256.)
    (Vgpu.Perf_model.group_efficiency w ~flops:10.)

(* Work-group size effects and the tuning protocol (paper §VI). *)
let test_group_size_effects () =
  let w ls active = Vgpu.Perf_model.workload ~local_size:ls ~active_points:active () in
  let geff ls active = Vgpu.Perf_model.group_efficiency (w ls active) ~flops:10. in
  (* sub-wavefront groups waste lanes *)
  Alcotest.(check bool) "32 < 64 lanes" true (geff 32 1e6 < geff 64 1e6);
  (* large launches are insensitive to tails *)
  Alcotest.(check bool) "big launch ~ full" true (geff 128 1e6 > 0.99);
  (* a tiny launch suffers a tail with large groups *)
  Alcotest.(check bool) "tail hurts small launches" true (geff 256 300. < geff 64 300.);
  (* register-pressure penalty only for flop-heavy kernels *)
  let heavy = Vgpu.Perf_model.group_efficiency (w 256 1e6) ~flops:100. in
  let light = Vgpu.Perf_model.group_efficiency (w 256 1e6) ~flops:10. in
  Alcotest.(check bool) "pressure penalty" true (heavy < light)

let test_tuner () =
  let k = Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Double ~mb:3 in
  let w = boundary_workload () in
  let r = Harness.Tuner.tune ~device:Vgpu.Device.gtx780 k w in
  let candidates =
    Harness.Tuner.candidate_sizes ~points:w.Vgpu.Perf_model.active_points
  in
  Alcotest.(check bool) "best size is a candidate" true
    (List.mem r.Harness.Tuner.best_size candidates);
  Alcotest.(check int) "sweep covers all candidates" (List.length candidates)
    (List.length r.Harness.Tuner.sweep);
  List.iter
    (fun (_, t) -> Alcotest.(check bool) "best is minimal" true (t >= r.Harness.Tuner.best_time_s))
    r.Harness.Tuner.sweep;
  (* the flop-heavy FD kernel should avoid 256-wide groups *)
  Alcotest.(check bool) "fd-mm avoids the largest group" true (r.Harness.Tuner.best_size < 256)

(* Z-sharding in the model: halo bytes per step and the sharded
   prediction — one shard is exactly the unsharded prediction, compute
   shrinks with the shard count on a fast link, and a slow link lets the
   halo term erase the win. *)
let test_sharded_prediction () =
  let open Vgpu.Perf_model in
  (* a ~216^3 grid: plane_elems consistent with 1e7 active points *)
  let plane = 216 * 216 in
  Alcotest.(check int) "no halo on one shard" 0
    (halo_bytes_per_step ~radius:1 ~precision:Kernel_ast.Cast.Double ~plane_elems:plane ~shards:1);
  Alcotest.(check int) "double halo, 4 shards"
    (2 * 3 * plane * 8)
    (halo_bytes_per_step ~radius:1 ~precision:Kernel_ast.Cast.Double ~plane_elems:plane ~shards:4);
  Alcotest.(check int) "single halo, 4 shards"
    (2 * 3 * plane * 4)
    (halo_bytes_per_step ~radius:1 ~precision:Kernel_ast.Cast.Single ~plane_elems:plane ~shards:4);
  let k = Hand_kernels.volume ~precision:Kernel_ast.Cast.Double in
  let n = 10_000_000 in
  let w =
    workload ~active_points:(float_of_int n)
      ~buffer_elems:[ ("prev", n); ("curr", n); ("next", n); ("nbrs", n) ]
      ()
  in
  let t shards = predict_sharded Vgpu.Device.gtx780 k w ~plane_elems:plane ~shards in
  Alcotest.(check (float 1e-15))
    "one shard = unsharded"
    (Vgpu.Perf_model.predict Vgpu.Device.gtx780 k w)
    (t 1);
  Alcotest.(check bool) "two shards beat one on a fast link" true (t 2 < t 1);
  Alcotest.(check bool) "four shards beat two" true (t 4 < t 2);
  let slow =
    predict_sharded ~link_gb_s:0.001 Vgpu.Device.gtx780 k w ~plane_elems:plane ~shards:4
  in
  Alcotest.(check bool) "a slow link erases the win" true (slow > t 1)

let suite =
  suite
  @ [
      Alcotest.test_case "no phantom tail group on exact multiples" `Quick
        test_group_efficiency_exact_multiple;
      Alcotest.test_case "work-group size effects" `Quick test_group_size_effects;
      Alcotest.test_case "tuning protocol" `Quick test_tuner;
      Alcotest.test_case "sharded prediction and halo bytes" `Quick
        test_sharded_prediction;
    ]
