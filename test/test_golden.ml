(* Golden tests: the generated OpenCL for the paper's kernels, compared
   against committed snapshots with uniquifying digits stripped (fresh
   name counters depend on construction order).  These pin down the
   code generator's output shape: any structural regression — a lost
   guard, a duplicated load, a changed index expression — fails here
   with a readable diff. *)

let strip s =
  let b = Buffer.create (String.length s) in
  String.iter (fun c -> if not ('0' <= c && c <= '9') then Buffer.add_char b c) s;
  Buffer.contents b

let check_golden name expected actual =
  let e = strip expected and a = strip actual in
  if e <> a then
    Alcotest.failf "%s: generated kernel changed.\n--- expected (digits stripped)\n%s\n--- got\n%s"
      name e a

(* FI (fused), compiled through the default pipeline: the optimizer
   hoists the repeated damping factor and the shared stencil sum scaling
   into _cse temporaries.  Pins both the codegen shape and the
   optimizer's choices on the paper's Listing 1 kernel. *)
let test_fused_fi_opt_golden () =
  let c =
    Lift_acoustics.Programs.compile ~name:"fused_fi" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.fused_fi ())
  in
  check_golden "fused_fi (optimized)"
    {|__kernel void fused_fi(__global double* restrict prev, __global double* restrict curr, __global double* restrict next, const int Nx, const int Ny, const int Nz, const int NxNy, const double l, const double l2, const double beta, const int N) {
  int gid0_1 = get_global_id(0);
  if (gid0_1 < N) {
    int z_12_2 = gid0_1 / NxNy;
    int rem_13_3 = gid0_1 % NxNy;
    int y_14_4 = rem_13_3 / Nx;
    int x_15_5 = rem_13_3 % Nx;
    int nbr_16_6 = x_15_5 == 0 || y_14_4 == 0 || z_12_2 == 0 || x_15_5 == Nx - 1 || y_14_4 == Ny - 1 || z_12_2 == Nz - 1 ? 0 : (x_15_5 == 1 ? 0 : 1) + (y_14_4 == 1 ? 0 : 1) + (z_12_2 == 1 ? 0 : 1) + (x_15_5 == Nx - 2 ? 0 : 1) + (y_14_4 == Ny - 2 ? 0 : 1) + (z_12_2 == Nz - 2 ? 0 : 1);
    double sel_10;
    double _cse0 = 2.0 - l2 * (double)(nbr_16_6);
    if (nbr_16_6 > 0) {
      double s_17_7 = curr[gid0_1 - 1] + curr[gid0_1 + 1] + curr[gid0_1 - Nx] + curr[gid0_1 + Nx] + curr[gid0_1 - NxNy] + curr[gid0_1 + NxNy];
      double sel_9;
      double _cse1 = l2 * s_17_7;
      if (nbr_16_6 < 6) {
        double cf_18_8 = 0.5 * l * (double)(6 - nbr_16_6) * beta;
        sel_9 = (_cse0 * curr[gid0_1] + _cse1 + (cf_18_8 - 1.0) * prev[gid0_1]) / (1.0 + cf_18_8);
      } else {
        sel_9 = _cse0 * curr[gid0_1] + _cse1 - prev[gid0_1];
      }
      sel_10 = sel_9;
    } else {
      sel_10 = 0.0;
    }
    next[gid0_1] = sel_10;
  }
}
|}
    (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)

(* FD-MM through the default pipeline: the three-branch ODE loops are
   fully unrolled and the per-branch state indices (nB + gid, 2*nB +
   gid, mi*3 + b) become _cse temporaries shared across the g1/v1/next
   updates. *)
let test_boundary_fd_mm_opt_golden () =
  let c =
    Lift_acoustics.Programs.compile ~name:"boundary_fd_mm" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ())
  in
  check_golden "boundary_fd_mm (optimized)"
    {|__kernel void boundary_fd_mm(__global int* restrict bidx, __global int* restrict nbrs, __global int* restrict material, __global double* restrict beta_fd, __global double* restrict bi, __global double* restrict d, __global double* restrict f, __global double* restrict di, __global double* restrict prev, __global double* restrict next, __global double* restrict g1, __global double* restrict v2, __global double* restrict v1, const double l, const int N, const int NM, const int nB) {
  int gid0_1 = get_global_id(0);
  int _cse0 = nB + gid0_1;
  int _cse1 = 2 * nB + gid0_1;
  if (gid0_1 < nB) {
    int idx_47_2 = bidx[gid0_1];
    int mi_48_3 = material[gid0_1];
    int nbr_50_4 = nbrs[idx_47_2];
    double cf1_51_5 = l * (double)(6 - nbr_50_4);
    double cf_52_6 = 0.5 * cf1_51_5 * beta_fd[mi_48_3];
    double pv_53_7 = prev[idx_47_2];
    double priv_8[3];
    priv_8[0] = g1[gid0_1];
    priv_8[1] = g1[_cse0];
    priv_8[2] = g1[_cse1];
    double priv_10[3];
    priv_10[0] = v2[gid0_1];
    priv_10[1] = v2[_cse0];
    priv_10[2] = v2[_cse1];
    double acc_12 = next[idx_47_2];
    int _cse5 = mi_48_3 * 3;
    acc_12 = acc_12 - cf1_51_5 * bi[_cse5] * (2.0 * d[_cse5] * priv_10[0] - f[_cse5] * priv_8[0]);
    int _cse4 = _cse5 + 1;
    acc_12 = acc_12 - cf1_51_5 * bi[_cse4] * (2.0 * d[_cse4] * priv_10[1] - f[_cse4] * priv_8[1]);
    int _cse3 = _cse5 + 2;
    acc_12 = acc_12 - cf1_51_5 * bi[_cse3] * (2.0 * d[_cse3] * priv_10[2] - f[_cse3] * priv_8[2]);
    double nvf_61_14 = (acc_12 + cf_52_6 * pv_53_7) / (1.0 + cf_52_6);
    next[idx_47_2] = nvf_61_14;
    double _cse2 = nvf_61_14 - pv_53_7;
    g1[gid0_1] = priv_8[0] + 0.5 * (bi[_cse5] * (_cse2 + di[_cse5] * priv_10[0] - 2.0 * f[_cse5] * priv_8[0]) + priv_10[0]);
    g1[_cse0] = priv_8[1] + 0.5 * (bi[_cse4] * (_cse2 + di[_cse4] * priv_10[1] - 2.0 * f[_cse4] * priv_8[1]) + priv_10[1]);
    g1[_cse1] = priv_8[2] + 0.5 * (bi[_cse3] * (_cse2 + di[_cse3] * priv_10[2] - 2.0 * f[_cse3] * priv_8[2]) + priv_10[2]);
    v1[gid0_1] = bi[_cse5] * (_cse2 + di[_cse5] * priv_10[0] - 2.0 * f[_cse5] * priv_8[0]);
    v1[_cse0] = bi[_cse4] * (_cse2 + di[_cse4] * priv_10[1] - 2.0 * f[_cse4] * priv_8[1]);
    v1[_cse1] = bi[_cse3] * (_cse2 + di[_cse3] * priv_10[2] - 2.0 * f[_cse3] * priv_8[2]);
  }
}
|}
    (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)

(* FI-MM through the default pipeline is the existing golden below: the
   kernel is already minimal (every repeated value is a load, which the
   optimizer must not hoist), so the optimized output equals the raw
   one.  The explicit check pins that non-action. *)
let test_boundary_fi_mm_opt_is_raw () =
  let compile optimize =
    (Lift_acoustics.Programs.compile ~name:"boundary_fi_mm" ~optimize
       ~precision:Kernel_ast.Cast.Double
       (Lift_acoustics.Programs.boundary_fi_mm ()))
      .Lift.Codegen.kernel
  in
  check_golden "boundary_fi_mm optimized == raw"
    (Kernel_ast.Print.kernel_to_string (compile false))
    (Kernel_ast.Print.kernel_to_string (compile true))

let test_boundary_fi_mm_golden () =
  let c =
    Lift_acoustics.Programs.compile ~name:"boundary_fi_mm" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.boundary_fi_mm ())
  in
  check_golden "boundary_fi_mm"
    {|__kernel void boundary_fi_mm(__global int* restrict bidx, __global int* restrict nbrs, __global int* restrict material, __global double* restrict beta, __global double* restrict prev, __global double* restrict next, const double l, const int N, const int NM, const int nB) {
  int gid0_1 = get_global_id(0);
  if (gid0_1 < nB) {
    int idx_9_2 = bidx[gid0_1];
    int mi_10_3 = material[gid0_1];
    int nbr_11_4 = nbrs[idx_9_2];
    double betaVal_12_5 = beta[mi_10_3];
    double cf_13_6 = 0.5 * l * (double)(6 - nbr_11_4) * betaVal_12_5;
    next[idx_9_2] = (next[idx_9_2] + cf_13_6 * prev[idx_9_2]) / (1.0 + cf_13_6);
  }
}
|}
    (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)

let test_volume_golden () =
  let c =
    Lift_acoustics.Programs.compile ~name:"volume" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.volume ())
  in
  check_golden "volume"
    {|__kernel void volume(__global int* restrict nbrs, __global double* restrict prev, __global double* restrict curr, __global double* restrict next, const int Nx, const int NxNy, const double l2, const int N) {
  int gid0_1 = get_global_id(0);
  if (gid0_1 < N) {
    int nbr_32_2 = nbrs[gid0_1];
    double sel_4;
    if (nbr_32_2 > 0) {
      double s_33_3 = curr[gid0_1 - 1] + curr[gid0_1 + 1] + curr[gid0_1 - Nx] + curr[gid0_1 + Nx] + curr[gid0_1 - NxNy] + curr[gid0_1 + NxNy];
      sel_4 = (2.0 - l2 * (double)(nbr_32_2)) * curr[gid0_1] + l2 * s_33_3 - prev[gid0_1];
    } else {
      sel_4 = 0.0;
    }
    next[gid0_1] = sel_4;
  }
}
|}
    (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)

(* Structural invariants that must hold for every generated acoustics
   kernel, whatever the names: a single NDRange guard, no unguarded
   global store, every loop bound a constant or scalar parameter. *)
let test_structural_invariants () =
  let kernels =
    [
      Lift_acoustics.Programs.compile ~name:"k1" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.volume ());
      Lift_acoustics.Programs.compile ~name:"k2" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.boundary_fi_mm ());
      Lift_acoustics.Programs.compile ~name:"k3" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ());
      Lift_acoustics.Programs.compile ~name:"k4" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.fused_fi ());
    ]
  in
  List.iter
    (fun (c : Lift.Codegen.compiled) ->
      let k = c.Lift.Codegen.kernel in
      (* top level: declarations followed by a single guarded If *)
      let rec top = function
        | [] -> Alcotest.failf "%s: no NDRange guard" k.Kernel_ast.Cast.name
        | Kernel_ast.Cast.If (_, _, []) :: rest when rest = [] -> ()
        | (Kernel_ast.Cast.Decl _ | Kernel_ast.Cast.Decl_arr _ | Kernel_ast.Cast.Comment _) :: rest ->
            top rest
        | s :: _ ->
            Alcotest.failf "%s: unguarded top-level statement %s" k.Kernel_ast.Cast.name
              (match s with
              | Kernel_ast.Cast.Store _ -> "store"
              | Kernel_ast.Cast.For _ -> "for"
              | _ -> "other")
      in
      top k.Kernel_ast.Cast.body;
      (* in-place kernels take no out parameter *)
      if c.Lift.Codegen.out_param <> None && k.Kernel_ast.Cast.name <> "k_none" then
        Alcotest.failf "%s: unexpected out buffer" k.Kernel_ast.Cast.name)
    kernels

let suite =
  [
    Alcotest.test_case "golden: boundary_fi_mm" `Quick test_boundary_fi_mm_golden;
    Alcotest.test_case "golden: volume" `Quick test_volume_golden;
    Alcotest.test_case "golden: fused_fi optimized" `Quick test_fused_fi_opt_golden;
    Alcotest.test_case "golden: boundary_fd_mm optimized" `Quick
      test_boundary_fd_mm_opt_golden;
    Alcotest.test_case "golden: boundary_fi_mm optimizer is a no-op" `Quick
      test_boundary_fi_mm_opt_is_raw;
    Alcotest.test_case "structural invariants" `Quick test_structural_invariants;
  ]
