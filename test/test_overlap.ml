(* The asynchronous per-device command queues and the overlapped
   (interior/frontier split) schedule.

   - Bit-identity: the real pipelined [`Overlap] schedule and the
     deterministic replay ([Gpu_sim.step_overlap_with]) both reproduce
     the single-device JIT grid bit-for-bit, for all three schemes; a
     qcheck property drives the replay through *random* legal queue
     interleavings, so any schedule the worker domains could exhibit is
     covered, not just the one the race happened to pick.

   - Hazard detection, both legs: dropping the frontier waits from an
     overlapped async plan is caught statically by
     [Lift.Lint.check_async] (unordered-halo-consumer), and the same
     class of bug — a consumer launch scheduled before the halo
     exchange it needed — is caught dynamically by the shadow-memory
     sanitizer as an uninitialised read under [run_async_with].

   - Queue timing: signal→wait edges stall the virtual clock of the
     waiting queue (the critical path is [max vclock], not the busy
     sum), and [align] only ever advances a clock.

   - The analytic model: [predict_overlapped] coincides with [predict]
     at one shard and never beats the sequential sharded prediction by
     more than the hidden halo/overlap terms allow.

   - The optimizer gate behind the trajectory bench: kernels the
     pipeline cannot improve come back physically identical ([==]), so
     raw and optimized runs share JIT caches; FD-MM still unrolls. *)

open Kernel_ast
open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let steps = 8
let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

let kernels_of scheme precision =
  match scheme with
  | `Fi -> [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi ~precision ]
  | `Fi_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fi_mm ~precision ~betas ]
  | `Fd_mm ->
      [ Hand_kernels.volume ~precision; Hand_kernels.boundary_fd_mm ~precision ~mb:3 ]

let schemes = [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

let make ?shards ?schedule ?(precision = Cast.Double) () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim =
    Gpu_sim.create ~engine:`Jit ?shards ?schedule ~precision ~fi_beta:0.2 ~n_branches:3
      params room
  in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  sim

let check_state msg (a : State.t) (b : State.t) =
  Test_util.check_bits (msg ^ " curr") a.State.curr b.State.curr;
  Test_util.check_bits (msg ^ " prev") a.State.prev b.State.prev;
  Test_util.check_bits (msg ^ " g1") a.State.g1 b.State.g1;
  Test_util.check_bits (msg ^ " vel") a.State.vel_prev b.State.vel_prev

(* -- Bit-identity of the real pipelined schedule --------------------- *)

let test_overlap_bit_identical () =
  List.iter
    (fun (label, scheme) ->
      List.iter
        (fun precision ->
          let kernels = kernels_of scheme precision in
          let single = make ~precision () in
          for _ = 1 to steps do
            Gpu_sim.step single kernels
          done;
          List.iter
            (fun shards ->
              let ov = make ~shards ~schedule:`Overlap ~precision () in
              for _ = 1 to steps do
                Gpu_sim.step ov kernels
              done;
              Gpu_sim.sync ov;
              check_state
                (Printf.sprintf "%s overlapped shards=%d" label shards)
                single.Gpu_sim.state ov.Gpu_sim.state;
              match Gpu_sim.overlap_stats ov with
              | None -> Alcotest.fail "sharded sim reports no overlap stats"
              | Some o ->
                  if o.Vgpu.Multi.o_span_ns <= 0. then
                    Alcotest.failf "%s shards=%d: empty critical path" label shards;
                  if o.Vgpu.Multi.o_busy_ns +. 1e-6 < o.Vgpu.Multi.o_span_ns then
                    Alcotest.failf "%s shards=%d: critical path %.0f exceeds busy %.0f"
                      label shards o.Vgpu.Multi.o_span_ns o.Vgpu.Multi.o_busy_ns)
            [ 2; 3; 4 ])
        [ Cast.Double; Cast.Single ])
    schemes

(* -- Random legal interleavings via the deterministic replay --------- *)

let qcheck_interleavings_bit_identical =
  QCheck.Test.make ~name:"any legal queue interleaving is bit-identical to sequential"
    ~count:25
    QCheck.(pair (int_range 2 4) (list_of_size Gen.(return 31) small_nat))
    (fun (shards, picks) ->
      let picks = if picks = [] then [ 0 ] else picks in
      let n = List.length picks in
      let pick i = List.nth picks (i mod n) in
      List.for_all
        (fun (label, scheme) ->
          let kernels = kernels_of scheme Cast.Double in
          let seq = make ~shards ~schedule:`Seq () in
          let ov = make ~shards ~schedule:`Seq () in
          for s = 1 to 5 do
            Gpu_sim.step seq kernels;
            Gpu_sim.step_overlap_with ~pick:(fun k -> pick (k + s)) ov kernels
          done;
          Gpu_sim.sync seq;
          Gpu_sim.sync ov;
          let same =
            Array.for_all2
              (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
              seq.Gpu_sim.state.State.curr ov.Gpu_sim.state.State.curr
          in
          if not same then
            QCheck.Test.fail_reportf "%s: interleaving diverged (shards=%d)" label shards;
          true)
        schemes)

(* -- A dropped wait is caught statically ----------------------------- *)

let test_missing_wait_caught_by_lint () =
  List.iter
    (fun (label, scheme) ->
      let kernels = kernels_of scheme Cast.Double in
      let sim = make ~shards:3 ~schedule:`Seq () in
      let plan = Gpu_sim.overlap_plan sim kernels ~steps:3 in
      Alcotest.(check int)
        (label ^ ": correct overlapped plan lints clean")
        0
        (List.length (Lift.Lint.errors (Lift.Lint.check_async plan)));
      let broken =
        List.map (fun (op : Vgpu.Multi.async_op) -> { op with Vgpu.Multi.a_waits = [] }) plan
      in
      let errs = Lift.Lint.errors (Lift.Lint.check_async broken) in
      Alcotest.(check bool)
        (label ^ ": dropped waits produce errors")
        true (errs <> []);
      Alcotest.(check bool)
        (label ^ ": the dropped frontier wait surfaces as an unordered halo consumer")
        true
        (List.exists (fun (i : Lift.Lint.issue) -> i.Lift.Lint.code = "unordered-halo-consumer") errs))
    schemes

(* -- ... and dynamically, by the sanitizer --------------------------- *)

(* A two-device plan: device 0 owns a defined [src]; device 1 allocates
   [dst] (undefined device memory), receives it by exchange, and reads
   it back with a probe kernel.  With the wait in place every
   interleaving is clean; with the wait dropped, an interleaving that
   schedules the probe before the exchange reads uninitialised memory,
   which the shadow-memory sanitizer reports. *)
let probe_kernel =
  let open Cast in
  {
    name = "probe";
    params =
      [ param "dst" Real; param "out" Real; param ~kind:Scalar_param "n" Int ];
    body = [ Store ("out", Global_id 0, Load ("dst", Global_id 0)) ];
    precision = Double;
    global_size = [ Var "n" ];
    local_size = [];
  }

let exchange_probe_plan ~waits : Vgpu.Multi.async_plan =
  [
    {
      Vgpu.Multi.a_op = Vgpu.Multi.Dev (1, Vgpu.Runtime.Alloc { name = "dst"; ty = Cast.Real; elems = 8 });
      a_waits = [];
      a_signal = None;
    };
    {
      a_op =
        Vgpu.Multi.Exchange
          { src_dev = 0; src = "src"; src_off = 0; dst_dev = 1; dst = "dst"; dst_off = 0; elems = 8 };
      a_waits = [];
      a_signal = Some 0;
    };
    {
      a_op =
        Vgpu.Multi.Dev
          ( 1,
            Vgpu.Runtime.Launch
              {
                kernel = probe_kernel;
                args = [ Vgpu.Runtime.A_buf "dst"; Vgpu.Runtime.A_buf "out"; Vgpu.Runtime.A_int 8 ];
                global = [ 8 ];
              } );
      a_waits = (if waits then [ 0 ] else []);
      a_signal = None;
    };
  ]

let run_exchange_probe ~waits ~pick =
  let m = Vgpu.Multi.create ~sanitize:true ~devices:2 () in
  Vgpu.Multi.bind m 0 "src" (Vgpu.Buffer.F (Array.init 8 float_of_int));
  Vgpu.Multi.bind m 1 "out" (Vgpu.Buffer.F (Array.make 8 0.));
  Vgpu.Multi.run_async_with ~pick m (exchange_probe_plan ~waits);
  match Vgpu.Runtime.sanitizer (Vgpu.Multi.device m 1) with
  | None -> Alcotest.fail "device 1 is not sanitized"
  | Some s -> Vgpu.Sanitizer.counts s

let test_missing_wait_caught_by_sanitizer () =
  (* probe first whenever both queue heads are ready *)
  let adversarial n = n - 1 in
  let clean = run_exchange_probe ~waits:true ~pick:adversarial in
  Alcotest.(check int) "with the wait, no uninitialised reads" 0
    clean.Vgpu.Sanitizer.n_uninit;
  let broken = run_exchange_probe ~waits:false ~pick:adversarial in
  Alcotest.(check bool) "without the wait, the probe reads uninitialised ghost cells"
    true
    (broken.Vgpu.Sanitizer.n_uninit > 0)

(* -- Queue timing: events stall the virtual clock -------------------- *)

let test_queue_critical_path () =
  let q0 = Vgpu.Queue.create () and q1 = Vgpu.Queue.create () in
  Fun.protect
    ~finally:(fun () ->
      Vgpu.Queue.shutdown q0;
      Vgpu.Queue.shutdown q1)
    (fun () ->
      let e = Vgpu.Queue.fresh_event () in
      Vgpu.Queue.enqueue q0
        {
          Vgpu.Queue.c_label = "a";
          c_waits = [];
          c_signal = Some e;
          c_vcost = Some 10.;
          c_run = (fun () -> ());
        };
      Vgpu.Queue.enqueue q1
        {
          Vgpu.Queue.c_label = "b";
          c_waits = [ e ];
          c_signal = None;
          c_vcost = Some 5.;
          c_run = (fun () -> ());
        };
      Vgpu.Queue.finish q0;
      Vgpu.Queue.finish q1;
      Alcotest.(check (float 1e-9)) "producer queue clock" 10. (Vgpu.Queue.vclock q0);
      Alcotest.(check (float 1e-9))
        "waiter starts at the signal's ready_at: 10 + 5" 15. (Vgpu.Queue.vclock q1);
      let s0 = Vgpu.Queue.stats q0 and s1 = Vgpu.Queue.stats q1 in
      Alcotest.(check (float 1e-9)) "busy is duration only" 5. s1.Vgpu.Queue.q_busy_ns;
      Alcotest.(check (float 1e-9))
        "critical path = max vclock > max busy" 15.
        (Float.max s0.Vgpu.Queue.q_vclock s1.Vgpu.Queue.q_vclock);
      Vgpu.Queue.align q1 ~at:100.;
      Alcotest.(check (float 1e-9)) "align advances" 100. (Vgpu.Queue.vclock q1);
      Vgpu.Queue.align q1 ~at:50.;
      Alcotest.(check (float 1e-9)) "align never rewinds" 100. (Vgpu.Queue.vclock q1))

(* -- The analytic model of the overlapped schedule ------------------- *)

let test_predict_overlapped () =
  let d = Vgpu.Device.gtx780 in
  let pdims = Geometry.dims ~nx:48 ~ny:40 ~nz:32 in
  let plane_elems = pdims.Geometry.nx * pdims.Geometry.ny in
  let k = Hand_kernels.volume ~precision:Cast.Double in
  let w = Harness.Workloads.workload Harness.Workloads.Volume Geometry.Box pdims in
  Alcotest.(check (float 0.))
    "one shard: no split, no halo — same as predict"
    (Vgpu.Perf_model.predict d k w)
    (Vgpu.Perf_model.predict_overlapped d k w ~plane_elems ~shards:1);
  List.iter
    (fun shards ->
      let ov = Vgpu.Perf_model.predict_overlapped d k w ~plane_elems ~shards in
      let seq = Vgpu.Perf_model.predict_sharded d k w ~plane_elems ~shards in
      if not (ov > 0.) then Alcotest.failf "shards=%d: non-positive prediction" shards;
      (* the split costs at most one extra launch; everything else is
         hidden behind the longer of interior compute and halo *)
      if ov > seq +. d.Vgpu.Device.launch_overhead_s +. 1e-12 then
        Alcotest.failf "shards=%d: overlapped %.3e exceeds sequential %.3e + launch" shards
          ov seq)
    [ 2; 4 ]

(* -- The optimizer no-op gate behind the trajectory bench ------------ *)

let test_opt_noop_returns_input_physically () =
  let lift_raw name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize:false ~precision:Cast.Double prog)
      .Lift.Codegen.kernel
  in
  List.iter
    (fun (k : Cast.kernel) ->
      let k', (r : Opt.report) = Opt.optimize k in
      if k' != k then
        Alcotest.failf "%s: no-op optimization did not return the input kernel" k.Cast.name;
      Alcotest.(check int) (k.Cast.name ^ ": nothing unrolled") 0 r.Opt.unrolled)
    [
      Hand_kernels.volume ~precision:Cast.Double;
      lift_raw "lift_volume" (Lift_acoustics.Programs.volume ());
      lift_raw "lift_boundary_fi" (Lift_acoustics.Programs.boundary_fi ());
    ];
  (* FD-MM still transforms: the unroll-budget gate must not disable the
     pipeline's real wins *)
  let k = Hand_kernels.boundary_fd_mm ~precision:Cast.Double ~mb:3 in
  let k', (r : Opt.report) = Opt.optimize k in
  Alcotest.(check bool) "fd-mm boundary is transformed" true (k' != k);
  Alcotest.(check bool) "fd-mm branch loops still unroll" true (r.Opt.unrolled > 0)

(* -- Host-IR events: lint rules and C emission ----------------------- *)

let host_param name sz =
  Lift.Ast.named_param name (Lift.Ty.array Lift.Ty.real (Lift.Size.var sz))

let test_host_event_lint_rules () =
  let open Lift.Host in
  let unsignaled = wait [ "ghost" ] (to_host (to_gpu (input (host_param "a" "N")))) in
  let errs = Lift.Lint.errors (Lift.Lint.check_host unsignaled) in
  Alcotest.(check bool) "waiting on an unsignaled event is an error" true
    (List.exists (fun (i : Lift.Lint.issue) -> i.Lift.Lint.code = "wait-unsignaled") errs);
  let dup =
    H_tuple
      [
        event "e" (to_gpu (input (host_param "a" "N")));
        event "e" (to_gpu (input (host_param "b" "N")));
      ]
  in
  let errs = Lift.Lint.errors (Lift.Lint.check_host dup) in
  Alcotest.(check bool) "signaling an event twice is an error" true
    (List.exists (fun (i : Lift.Lint.issue) -> i.Lift.Lint.code = "duplicate-event") errs)

let test_overlap_host_program_lints_and_emits () =
  let nx = 8 and ny = 6 and slab_planes = 4 in
  let prog =
    Lift_acoustics.Programs.sharded_fi_step_host ~overlap:true ~nx ~ny ~slab_planes
      ~l:(Params.l params) ~l2:(Params.l2 params) ~beta:0.1 ()
  in
  Alcotest.(check int) "event-annotated sharded step lints clean" 0
    (List.length (Lift.Lint.errors (Lift.Lint.check_host prog)));
  let sizes = function
    | "N" -> Some ((slab_planes + 2) * nx * ny)
    | "nB" -> Some 16
    | _ -> None
  in
  let compiled = Lift.Host.compile ~precision:Cast.Double ~sizes prog in
  let c = Lift.Emit_c.host_program compiled in
  List.iter
    (fun needle ->
      if not (Test_util.contains c needle) then
        Alcotest.failf "emitted C missing %s" needle)
    [ "cl_event ev_halo_up"; "cl_event ev_halo_dn"; "wl" ]

let suite =
  [
    Alcotest.test_case "overlapped schedule bit-identical (all schemes, both precisions)"
      `Slow test_overlap_bit_identical;
    QCheck_alcotest.to_alcotest qcheck_interleavings_bit_identical;
    Alcotest.test_case "dropped frontier waits caught by check_async" `Quick
      test_missing_wait_caught_by_lint;
    Alcotest.test_case "dropped wait caught dynamically by the sanitizer" `Quick
      test_missing_wait_caught_by_sanitizer;
    Alcotest.test_case "queue events stall the virtual clock" `Quick
      test_queue_critical_path;
    Alcotest.test_case "predict_overlapped model properties" `Quick test_predict_overlapped;
    Alcotest.test_case "optimizer no-op returns the kernel physically" `Quick
      test_opt_noop_returns_input_physically;
    Alcotest.test_case "host-IR event lint rules" `Quick test_host_event_lint_rules;
    Alcotest.test_case "overlapped host program lints clean and emits events" `Quick
      test_overlap_host_program_lints_and_emits;
  ]
