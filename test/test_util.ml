(* Shared helpers for the test suites. *)

(* Substring search (no external string library in the dependency set). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Assert two float arrays are bit-for-bit identical — the equality the
   engine/backend cross-validation suites rely on (plain [=] would
   conflate 0. with -0. and fail on NaN). *)
let check_bits msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i))) then
        Alcotest.failf "%s: index %d differs bit-for-bit: %.17g vs %.17g" msg i x b.(i))
    a
