(* The kernel-AST optimizer pipeline (Kernel_ast.Opt).

   Three layers of validation:
   - property: on random well-typed kernels (the test_jit generator),
     the optimized kernel produces bit-identical buffers to the raw one
     under both the interpreter and the JIT;
   - units: each pass observed in isolation — CSE temporary types and
     counts, constant-trip unrolling, LICM, strength reduction guards,
     dead-code elimination;
   - schemes: full FI / FI-MM / FD-MM simulations with the runtime
     optimizer off vs on, across every engine (interp, jit,
     jit-parallel, 2-shard jit) and both precisions, compared
     bit-for-bit — the invariant that makes the optimizer free to
     enable by default. *)

open Kernel_ast.Cast
open Acoustics

let bits_eq a b =
  Array.for_all2
    (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    a b

(* -- Property: optimize preserves results ---------------------------- *)

let qcheck_opt_preserves =
  QCheck.Test.make ~name:"optimized kernel bit-identical on random kernels" ~count:300
    Test_jit.arb_kernel (fun k ->
      let opt, _report = Kernel_ast.Opt.optimize k in
      let raw_interp, raw_jit = Test_jit.run_both k in
      let opt_interp, opt_jit = Test_jit.run_both opt in
      bits_eq raw_interp opt_interp && bits_eq raw_jit opt_jit)

(* Optimizing twice is safe: the second round must also preserve results
   (idempotence in effect, per the mli contract). *)
let qcheck_opt_twice =
  QCheck.Test.make ~name:"re-optimizing an optimized kernel is safe" ~count:100
    Test_jit.arb_kernel (fun k ->
      let opt1, _ = Kernel_ast.Opt.optimize k in
      let opt2, _ = Kernel_ast.Opt.optimize opt1 in
      let o1, j1 = Test_jit.run_both opt1 in
      let o2, j2 = Test_jit.run_both opt2 in
      bits_eq o1 o2 && bits_eq j1 j2)

(* -- Units ------------------------------------------------------------ *)

let run_kernel launch k =
  let out = Array.make 8 0. in
  launch k [ Vgpu.Args.Buf (Vgpu.Buffer.F out) ];
  out

let interp k args = Vgpu.Exec.launch k ~args ~global:[ 1 ]
let jit k args = Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global:[ 1 ]

(* A constant-trip loop declaring a body-local: unrolling must splice
   alpha-renamed copies, fold the literal index, and keep the result
   bit-identical in both engines. *)
let test_unroll_constant_trip () =
  let k =
    {
      name = "unroll_me";
      precision = Double;
      params = [ param "out" Real ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [
          Decl (Real, "acc", Some (Real_lit 0.));
          for_ "i" ~from:(Int_lit 0) ~below:(Int_lit 3)
            [
              Decl (Real, "t", Some (Binop (Mul, Unop (To_real, Var "i"), Real_lit 2.5)));
              Assign ("acc", Binop (Add, Var "acc", Var "t"));
            ];
          Store ("out", Int_lit 0, Var "acc");
        ];
    }
  in
  let opt, r = Kernel_ast.Opt.optimize k in
  Alcotest.(check int) "one loop unrolled" 1 r.Kernel_ast.Opt.unrolled;
  let rec has_for = function
    | [] -> false
    | For _ :: _ -> true
    | If (_, t, f) :: rest -> has_for t || has_for f || has_for rest
    | _ :: rest -> has_for rest
  in
  Alcotest.(check bool) "no loop remains" false (has_for opt.body);
  Alcotest.(check bool) "interp matches" true
    (bits_eq (run_kernel interp k) (run_kernel interp opt));
  Alcotest.(check bool) "jit matches" true (bits_eq (run_kernel jit k) (run_kernel jit opt))

(* A loop whose bound is a scalar parameter stays a loop, but the
   invariant expression inside it moves out. *)
let test_licm_hoists_invariant () =
  let k =
    {
      name = "licm_me";
      precision = Double;
      params = [ param "out" Real; param ~kind:Scalar_param "s" Real; param ~kind:Scalar_param "n" Int ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [
          for_ "i" ~from:(Int_lit 0) ~below:(Var "n")
            [
              Store
                ( "out",
                  Var "i",
                  Binop (Mul, Unop (To_real, Var "i"), Binop (Mul, Var "s", Binop (Add, Var "s", Real_lit 1.))) );
            ];
        ];
    }
  in
  let opt, r = Kernel_ast.Opt.optimize k in
  Alcotest.(check bool) "something hoisted" true (r.Kernel_ast.Opt.licm_hoisted > 0);
  (* one or more real-typed invariant temporaries declared, then the loop *)
  (let rec drop_decls n = function
     | Decl (Real, _, Some _) :: rest -> drop_decls (n + 1) rest
     | rest -> (n, rest)
   in
   match drop_decls 0 opt.body with
   | n, For _ :: _ when n > 0 -> ()
   | _ -> Alcotest.fail "expected real-typed invariants declared before the loop");
  let run launch k =
    let out = Array.make 8 0. in
    launch k [ Vgpu.Args.Buf (Vgpu.Buffer.F out); Vgpu.Args.Real_arg 1.5; Vgpu.Args.Int_arg 8 ];
    out
  in
  Alcotest.(check bool) "interp matches" true (bits_eq (run interp k) (run interp opt));
  Alcotest.(check bool) "jit matches" true (bits_eq (run jit k) (run jit opt))

(* Strength reduction: gated on the syntactic non-negativity proof for
   ints, and on exact powers of two for reals. *)
let test_strength_reduction_guards () =
  let gid = Global_id 0 in
  (match simplify (Binop (Div, gid, Int_lit 4)) with
  | Binop (Shr, Global_id 0, Int_lit 2) -> ()
  | e -> Alcotest.failf "gid/4: expected shift, got %s" (Kernel_ast.Print.expr_to_string e));
  (match simplify (Binop (Mod, gid, Int_lit 8)) with
  | Binop (BAnd, Global_id 0, Int_lit 7) -> ()
  | e -> Alcotest.failf "gid%%8: expected mask, got %s" (Kernel_ast.Print.expr_to_string e));
  (* no proof that gid - 1 is non-negative: must stay a division *)
  (match simplify (Binop (Div, Binop (Sub, gid, Int_lit 1), Int_lit 4)) with
  | Binop (Div, _, _) -> ()
  | e -> Alcotest.failf "(gid-1)/4 must not reduce, got %s" (Kernel_ast.Print.expr_to_string e));
  (match simplify (Binop (Div, Var "x", Real_lit 2.)) with
  | Binop (Mul, Var "x", Real_lit 0.5) -> ()
  | e -> Alcotest.failf "x/2.0: expected *0.5, got %s" (Kernel_ast.Print.expr_to_string e));
  (* 3.0 is not a power of two: 1/3 is not exact *)
  match simplify (Binop (Div, Var "x", Real_lit 3.)) with
  | Binop (Div, _, _) -> ()
  | e -> Alcotest.failf "x/3.0 must not reduce, got %s" (Kernel_ast.Print.expr_to_string e)

(* The strength-reduced operators agree with the raw ones at runtime in
   both engines, across an NDRange covering many values. *)
let test_strength_reduction_runtime () =
  let n = 64 in
  let k body =
    {
      name = "sr";
      precision = Double;
      params = [ param "out" Real ];
      global_size = [ Int_lit n ];
      local_size = [];
      body;
    }
  in
  let raw =
    k
      [
        Store
          ( "out",
            Global_id 0,
            Unop
              ( To_real,
                Binop
                  (Add, Binop (Div, Global_id 0, Int_lit 4), Binop (Mod, Global_id 0, Int_lit 8))
              ) );
      ]
  in
  let opt, r = Kernel_ast.Opt.optimize raw in
  Alcotest.(check bool) "shift/mask present" true (r.Kernel_ast.Opt.strength_reduced >= 2);
  let run launch k =
    let out = Array.make n 0. in
    launch k [ Vgpu.Args.Buf (Vgpu.Buffer.F out) ];
    out
  in
  let interp_n k args = Vgpu.Exec.launch k ~args ~global:[ n ] in
  let jit_n k args = Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global:[ n ] in
  Alcotest.(check bool) "interp matches" true
    (bits_eq (run interp_n raw) (run interp_n opt));
  Alcotest.(check bool) "jit matches" true (bits_eq (run jit_n raw) (run jit_n opt))

(* Dead locals disappear, including chains (an initialiser being the
   only reader of another local). *)
let test_dce_removes_chains () =
  let k =
    {
      name = "dce_me";
      precision = Double;
      params = [ param "out" Real ];
      global_size = [ Int_lit 1 ];
      local_size = [];
      body =
        [
          Decl (Real, "a", Some (Real_lit 1.5));
          (* b's initialiser is the only reader of a: removing b must
             make a dead on the next fixpoint round *)
          Decl (Real, "b", Some (Binop (Mul, Var "a", Real_lit 2.)));
          Decl (Real, "c", Some (Real_lit 3.));
          Store ("out", Int_lit 0, Var "c");
        ];
    }
  in
  let opt, r = Kernel_ast.Opt.optimize k in
  Alcotest.(check bool) "dead locals removed" true (r.Kernel_ast.Opt.dead_removed >= 2);
  let names =
    List.filter_map (function Decl (_, v, _) -> Some v | _ -> None) opt.body
  in
  Alcotest.(check bool) "a and b gone" true
    (not (List.mem "a" names) && not (List.mem "b" names))

(* CSE on the real codegen output: the FD-MM boundary kernel (compiled
   raw) must gain hoisted index temporaries and unrolled branch loops,
   with types resolved against the scope at the anchor point. *)
let test_cse_on_fd_mm () =
  let c =
    Lift_acoustics.Programs.compile ~name:"fd" ~optimize:false ~precision:Double
      (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ())
  in
  let opt, r = Kernel_ast.Opt.optimize c.Lift.Codegen.kernel in
  Alcotest.(check bool) "cse fired" true (r.Kernel_ast.Opt.cse_fired > 0);
  Alcotest.(check bool) "branch loops unrolled" true (r.Kernel_ast.Opt.unrolled > 0);
  let text = Kernel_ast.Print.kernel_to_string opt in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "temporaries in output" true (contains text "_cse")

(* -- Schemes: optimizer off vs on, bit-for-bit ------------------------ *)

let params = Params.default
let dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let steps = 6

(* Kernels compiled raw so the runtime performs the optimization (the
   same path `racs simulate` and the bench use). *)
let lift_kernels scheme precision =
  let c name prog =
    (Lift_acoustics.Programs.compile ~name ~optimize:false ~precision prog)
      .Lift.Codegen.kernel
  in
  let volume = c "volume" (Lift_acoustics.Programs.volume ()) in
  match scheme with
  | `Fi -> [ volume; c "boundary_fi" (Lift_acoustics.Programs.boundary_fi ()) ]
  | `Fi_mm -> [ volume; c "boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ()) ]
  | `Fd_mm ->
      [ volume; c "boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ()) ]

let run ~optimize ?shards ~engine ~precision ~kernels () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let sim =
    Gpu_sim.create ~engine ~optimize ?shards ~precision ~fi_beta:0.2 ~n_branches:3 params
      room
  in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Gpu_sim.step sim kernels
  done;
  Gpu_sim.sync sim;
  sim

let check_state msg (a : State.t) (b : State.t) =
  Test_util.check_bits (msg ^ " curr") a.State.curr b.State.curr;
  Test_util.check_bits (msg ^ " prev") a.State.prev b.State.prev;
  Test_util.check_bits (msg ^ " g1") a.State.g1 b.State.g1;
  Test_util.check_bits (msg ^ " vel") a.State.vel_prev b.State.vel_prev

let test_schemes_bit_identical () =
  List.iter
    (fun (scheme_label, scheme) ->
      List.iter
        (fun precision ->
          let kernels = lift_kernels scheme precision in
          List.iter
            (fun (engine_label, engine, shards) ->
              let a = run ~optimize:false ?shards ~engine ~precision ~kernels () in
              let b = run ~optimize:true ?shards ~engine ~precision ~kernels () in
              let msg =
                Printf.sprintf "%s %s %s opt off vs on" scheme_label
                  (match precision with Single -> "single" | Double -> "double")
                  engine_label
              in
              check_state msg a.Gpu_sim.state b.Gpu_sim.state)
            [
              ("interp", `Interp, None);
              ("jit", `Jit, None);
              ("jit-parallel", `Jit_parallel 2, None);
              ("jit 2-shard", `Jit, Some 2);
            ])
        [ Double; Single ])
    [ ("fi", `Fi); ("fi-mm", `Fi_mm); ("fd-mm", `Fd_mm) ]

(* -- Stats plumbing --------------------------------------------------- *)

let test_stats_report_per_kernel () =
  let kernels = lift_kernels `Fd_mm Double in
  let sim = run ~optimize:true ~engine:`Jit ~precision:Double ~kernels () in
  let s = Gpu_sim.stats sim in
  (match List.assoc_opt "boundary_fd_mm" s.Vgpu.Runtime.per_kernel with
  | None -> Alcotest.fail "no per-kernel stats for boundary_fd_mm"
  | Some k -> (
      match k.Vgpu.Runtime.k_opt with
      | None -> Alcotest.fail "no optimizer report recorded"
      | Some r ->
          Alcotest.(check bool) "cse counted" true (r.Kernel_ast.Opt.cse_fired > 0);
          Alcotest.(check bool) "unroll counted" true (r.Kernel_ast.Opt.unrolled > 0)));
  (* sharded runs merge the per-device reports: still present once *)
  let sharded = run ~optimize:true ~shards:2 ~engine:`Jit ~precision:Double ~kernels () in
  let ss = Gpu_sim.stats sharded in
  (match List.assoc_opt "boundary_fd_mm" ss.Vgpu.Runtime.per_kernel with
  | Some { Vgpu.Runtime.k_opt = Some _; _ } -> ()
  | _ -> Alcotest.fail "sharded stats lost the optimizer report");
  (* optimizer off: no report *)
  let off = run ~optimize:false ~engine:`Jit ~precision:Double ~kernels () in
  match List.assoc_opt "boundary_fd_mm" (Gpu_sim.stats off).Vgpu.Runtime.per_kernel with
  | Some { Vgpu.Runtime.k_opt = None; _ } -> ()
  | _ -> Alcotest.fail "optimizer off must record no report"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_opt_preserves;
    QCheck_alcotest.to_alcotest qcheck_opt_twice;
    Alcotest.test_case "constant-trip loops unroll" `Quick test_unroll_constant_trip;
    Alcotest.test_case "LICM hoists invariants" `Quick test_licm_hoists_invariant;
    Alcotest.test_case "strength reduction guards" `Quick test_strength_reduction_guards;
    Alcotest.test_case "strength reduction at runtime" `Quick test_strength_reduction_runtime;
    Alcotest.test_case "DCE removes dead chains" `Quick test_dce_removes_chains;
    Alcotest.test_case "CSE and unroll on FD-MM codegen" `Quick test_cse_on_fd_mm;
    Alcotest.test_case "FI/FI-MM/FD-MM bit-identical opt off vs on" `Slow
      test_schemes_bit_identical;
    Alcotest.test_case "optimizer reports surface in stats" `Quick
      test_stats_report_per_kernel;
  ]
