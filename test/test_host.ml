(* Host-side Lift: compile and execute the paper's Listing 5 —
   two kernels per time step (volume handling then in-place boundary
   handling) orchestrated by host primitives — and check it against the
   reference step.  Also checks the emitted host pseudo-C and the
   transfer bookkeeping. *)

open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:12 ~ny:10 ~nz:9

let build_host_program () =
  let p name ty = Lift.Ast.named_param name ty in
  let open Lift.Host in
  let open Lift_acoustics.Programs in
  let volume = Lift_acoustics.Programs.volume () in
  let boundary = Lift_acoustics.Programs.boundary_fi_mm () in
  let nbrs_h = p "nbrs" nbrs_ty in
  let prev_h = p "prev" grid_ty in
  let curr_h = p "curr" grid_ty in
  let next_h = p "next" grid_ty in
  let bidx_h = p "bidx" bidx_ty in
  let material_h = p "material" material_ty in
  let beta_h = p "beta" beta_ty in
  let l = Params.l params and l2 = Params.l2 params in
  (* val next_g = OclKernel(volume, ...) then
     ToHost(WriteTo(next_g, OclKernel(boundary, ...))) *)
  (* val next_g = OclKernel(volume, ...): H_let shares the kernel result
     so the volume kernel is launched exactly once. *)
  let next_g_p = p "next_g" grid_ty in
  H_let
    ( next_g_p,
      ocl_kernel ~name:"volume" volume
        [
          to_gpu (input nbrs_h);
          to_gpu (input prev_h);
          to_gpu (input curr_h);
          to_gpu (input next_h);
          H_int dims.Geometry.nx;
          H_int (dims.Geometry.nx * dims.Geometry.ny);
          H_real l2;
        ],
      to_host
        (write_to (input next_g_p)
           (ocl_kernel ~name:"boundary_fi_mm" boundary
              [
                to_gpu (input bidx_h);
                input nbrs_h;
                to_gpu (input material_h);
                to_gpu (input beta_h);
                input prev_h;
                input next_g_p;
                H_real l;
              ])) )

let test_listing5 () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let n = Geometry.n_points dims in
  let nb = Geometry.n_boundary room in
  let sizes = function
    | "N" -> Some n
    | "nB" -> Some nb
    | "NM" -> Some (Array.length tables.Material.t_beta)
    | _ -> None
  in
  let compiled = Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes (build_host_program ()) in
  (* the emitted host source mentions the OpenCL API calls of Table I *)
  List.iter
    (fun needle ->
      if not (Test_util.contains compiled.Lift.Host.source needle) then
        Alcotest.failf "host source missing %s:\n%s" needle compiled.Lift.Host.source)
    [ "enqueueWriteBuffer"; "enqueueReadBuffer"; "enqueueNDRangeKernel"; "clSetKernelArg" ];
  (* reference step *)
  let st_ref = State.create room in
  let cx, cy, cz = State.centre st_ref in
  State.add_impulse st_ref ~x:cx ~y:cy ~z:cz;
  Ref_kernels.volume_step params ~dims ~nbrs:room.Geometry.nbrs ~prev:st_ref.prev
    ~curr:st_ref.curr ~next:st_ref.next;
  Ref_kernels.boundary_fi_mm params ~boundary_indices:room.Geometry.boundary_indices
    ~nbrs:room.Geometry.nbrs ~material:room.Geometry.material
    ~beta:tables.Material.t_beta ~prev:st_ref.prev ~next:st_ref.next;
  (* host-program execution *)
  let st = State.create room in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  let rt = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Jit () in
  Vgpu.Runtime.bind rt "nbrs" (Vgpu.Buffer.I room.Geometry.nbrs);
  Vgpu.Runtime.bind rt "prev" (Vgpu.Buffer.F st.prev);
  Vgpu.Runtime.bind rt "curr" (Vgpu.Buffer.F st.curr);
  Vgpu.Runtime.bind rt "next" (Vgpu.Buffer.F st.next);
  Vgpu.Runtime.bind rt "bidx" (Vgpu.Buffer.I room.Geometry.boundary_indices);
  Vgpu.Runtime.bind rt "material" (Vgpu.Buffer.I room.Geometry.material);
  Vgpu.Runtime.bind rt "beta" (Vgpu.Buffer.F tables.Material.t_beta);
  Lift.Host.run compiled rt;
  Alcotest.(check int) "two kernel launches" 2 rt.Vgpu.Runtime.launches;
  if rt.Vgpu.Runtime.h2d_bytes = 0 then Alcotest.fail "no host->device transfers recorded";
  if rt.Vgpu.Runtime.d2h_bytes = 0 then Alcotest.fail "no device->host transfers recorded";
  Array.iteri
    (fun i x ->
      if Float.abs (x -. st.next.(i)) > 1e-12 then
        Alcotest.failf "host pipeline differs at %d: %.17g vs %.17g" i x st.next.(i))
    st_ref.next

(* Iterated host execution with buffer rotation (paper §V-A): the plan
   repeated N times with prev/curr/next rotation must match the
   simulation driver stepping N times. *)
let test_iterate () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let n = Geometry.n_points dims in
  let nb = Geometry.n_boundary room in
  let sizes = function
    | "N" -> Some n
    | "nB" -> Some nb
    | "NM" -> Some (Array.length tables.Material.t_beta)
    | _ -> None
  in
  let compiled = Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes (build_host_program ()) in
  let steps = 10 in
  let plan = Lift.Host.iterate ~times:steps ~rotate:[ [ "prev"; "curr"; "next" ] ] compiled in
  (* reference: the simulation driver *)
  let st_ref = State.create room in
  let cx, cy, cz = State.centre st_ref in
  State.add_impulse st_ref ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Ref_kernels.step_fi_mm params st_ref ~beta:tables.Material.t_beta
  done;
  (* host plan execution *)
  let st = State.create room in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  let rt = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Jit () in
  Vgpu.Runtime.bind rt "nbrs" (Vgpu.Buffer.I room.Geometry.nbrs);
  Vgpu.Runtime.bind rt "prev" (Vgpu.Buffer.F st.prev);
  Vgpu.Runtime.bind rt "curr" (Vgpu.Buffer.F st.curr);
  Vgpu.Runtime.bind rt "next" (Vgpu.Buffer.F st.next);
  Vgpu.Runtime.bind rt "bidx" (Vgpu.Buffer.I room.Geometry.boundary_indices);
  Vgpu.Runtime.bind rt "material" (Vgpu.Buffer.I room.Geometry.material);
  Vgpu.Runtime.bind rt "beta" (Vgpu.Buffer.F tables.Material.t_beta);
  Vgpu.Runtime.run rt plan;
  Alcotest.(check int) "2 launches per step" (2 * steps) rt.Vgpu.Runtime.launches;
  (* after rotation, the binding named "curr" holds the latest field *)
  let final = Vgpu.Buffer.to_float_array (Vgpu.Runtime.buffer rt "curr") in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. st_ref.curr.(i)) > 1e-11 *. (1. +. Float.abs x) then
        Alcotest.failf "iterated host differs at %d: %.17g vs %.17g" i x st_ref.curr.(i))
    final

(* H_copy / halo_exchange: the host-IR device-copy primitive moves the
   ghost planes across a Z cut, is emitted as enqueueCopyBuffer in both
   the pseudo-C and the standalone C artifact, and accounts its bytes as
   device-to-device traffic. *)
let test_halo_exchange () =
  let plane = 4 in
  let lo_planes = 5 and hi_planes = 4 in
  let p name sz = Lift.Ast.named_param name (Lift.Ty.array Lift.Ty.real (Lift.Size.var sz)) in
  let prog =
    Lift.Host.halo_exchange ~plane ~lo:(Lift.Host.input (p "lo" "NL")) ~lo_planes
      ~hi:(Lift.Host.input (p "hi" "NH"))
  in
  let sizes = function
    | "NL" -> Some (lo_planes * plane)
    | "NH" -> Some (hi_planes * plane)
    | _ -> None
  in
  let compiled = Lift.Host.compile ~sizes prog in
  Alcotest.(check bool) "pseudo-C has enqueueCopyBuffer" true
    (Test_util.contains compiled.Lift.Host.source "enqueueCopyBuffer");
  let c = Lift.Emit_c.host_program compiled in
  Alcotest.(check bool) "standalone C has clEnqueueCopyBuffer" true
    (Test_util.contains c "clEnqueueCopyBuffer");
  (* execute: lo's top owned plane -> hi's bottom ghost, hi's bottom
     owned plane -> lo's top ghost *)
  let lo = Array.init (lo_planes * plane) (fun i -> 100. +. float_of_int i) in
  let hi = Array.init (hi_planes * plane) (fun i -> 200. +. float_of_int i) in
  let rt = Vgpu.Runtime.create () in
  Vgpu.Runtime.bind rt "lo" (Vgpu.Buffer.F lo);
  Vgpu.Runtime.bind rt "hi" (Vgpu.Buffer.F hi);
  Lift.Host.run compiled rt;
  for j = 0 to plane - 1 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "hi ghost %d" j)
      (100. +. float_of_int (((lo_planes - 2) * plane) + j))
      hi.(j);
    Alcotest.(check (float 0.))
      (Printf.sprintf "lo ghost %d" j)
      (200. +. float_of_int (plane + j))
      lo.(((lo_planes - 1) * plane) + j)
  done;
  Alcotest.(check int) "d2d bytes accounted" (2 * plane * 8) rt.Vgpu.Runtime.d2d_bytes;
  (* copy endpoints must denote buffers *)
  match
    Lift.Host.compile ~sizes
      (Lift.Host.copy ~src:(Lift.Host.H_int 3) ~src_off:0
         ~dst:(Lift.Host.input (p "lo" "NL"))
         ~dst_off:0 ~elems:1)
  with
  | exception Lift.Host.Host_error _ -> ()
  | _ -> Alcotest.fail "scalar copy endpoint accepted"

(* The two-shard Listing-5-style host program
   ({!Lift_acoustics.Programs.sharded_fi_step_host}): per-shard kernel
   names survive into the pseudo-C and the standalone C artifact, the
   halo exchange shows up as enqueueCopyBuffer, and executing the plan
   on shard-local buffers reproduces the unsharded FI step. *)
let test_sharded_host_program () =
  let dims = Geometry.dims ~nx:10 ~ny:8 ~nz:8 in
  let room = Geometry.build Geometry.Box dims in
  let p = Shard.plan ~shards:2 room in
  let sh0 = p.Shard.shards.(0) and sh1 = p.Shard.shards.(1) in
  (* an even-Nz box splits into two symmetric slabs, so one (N, nB)
     size assignment serves both shards *)
  Alcotest.(check int) "equal slab boundary counts" sh0.Shard.n_b sh1.Shard.n_b;
  Alcotest.(check int) "equal slab planes" sh0.Shard.planes sh1.Shard.planes;
  let beta = 0.3 in
  let prog =
    Lift_acoustics.Programs.sharded_fi_step_host ~nx:dims.Geometry.nx
      ~ny:dims.Geometry.ny
      ~slab_planes:(sh0.Shard.z1 - sh0.Shard.z0)
      ~l:(Params.l params) ~l2:(Params.l2 params) ~beta ()
  in
  let sizes = function
    | "N" -> Some sh0.Shard.local_n
    | "nB" -> Some sh0.Shard.n_b
    | _ -> None
  in
  let compiled = Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes prog in
  List.iter
    (fun needle ->
      if not (Test_util.contains compiled.Lift.Host.source needle) then
        Alcotest.failf "sharded host source missing %s:\n%s" needle
          compiled.Lift.Host.source)
    [ "volume_s0"; "volume_s1"; "boundary_fi_s0"; "boundary_fi_s1"; "enqueueCopyBuffer" ];
  Alcotest.(check int) "four kernels compiled" 4 (List.length compiled.Lift.Host.kernels);
  let c = Lift.Emit_c.host_program compiled in
  List.iter
    (fun needle ->
      if not (Test_util.contains c needle) then Alcotest.failf "emitted C missing %s" needle)
    [ "clEnqueueCopyBuffer"; "volume_s1" ];
  (* execute on shard-local buffers *)
  let st = State.create room in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  let sstates = Shard.create_states p in
  Shard.scatter p st sstates;
  let rt = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Jit () in
  Array.iteri
    (fun i (sh : Shard.shard) ->
      let s name = name ^ string_of_int i in
      let ss = sstates.(i) in
      Vgpu.Runtime.bind rt (s "nbrs") (Vgpu.Buffer.I sh.Shard.nbrs);
      Vgpu.Runtime.bind rt (s "bidx") (Vgpu.Buffer.I sh.Shard.bidx);
      Vgpu.Runtime.bind rt (s "prev") (Vgpu.Buffer.F ss.Shard.prev);
      Vgpu.Runtime.bind rt (s "curr") (Vgpu.Buffer.F ss.Shard.curr);
      Vgpu.Runtime.bind rt (s "next") (Vgpu.Buffer.F ss.Shard.next))
    p.Shard.shards;
  Lift.Host.run compiled rt;
  Alcotest.(check int) "four launches" 4 rt.Vgpu.Runtime.launches;
  if rt.Vgpu.Runtime.d2d_bytes = 0 then Alcotest.fail "no halo traffic recorded";
  (* the unsharded reference step *)
  Ref_kernels.volume_step params ~dims ~nbrs:room.Geometry.nbrs ~prev:st.prev
    ~curr:st.curr ~next:st.next;
  Ref_kernels.boundary_fi params ~boundary_indices:room.Geometry.boundary_indices
    ~nbrs:room.Geometry.nbrs ~beta ~prev:st.prev ~next:st.next;
  let gathered = State.create room in
  Shard.gather p sstates gathered;
  Array.iteri
    (fun i x ->
      if Float.abs (x -. gathered.State.next.(i)) > 1e-12 then
        Alcotest.failf "sharded host step differs at %d: %.17g vs %.17g" i
          gathered.State.next.(i) x)
    st.next

let suite =
  [
    Alcotest.test_case "listing 5 host pipeline" `Quick test_listing5;
    Alcotest.test_case "iterated stepping with rotation" `Quick test_iterate;
    Alcotest.test_case "halo-exchange host primitive" `Quick test_halo_exchange;
    Alcotest.test_case "sharded two-device host program" `Quick test_sharded_host_program;
  ]
