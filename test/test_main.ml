let () =
  Alcotest.run "lift-room-acoustics"
    [
      ("size", Test_size.suite);
      ("typecheck", Test_typecheck.suite);
      ("eval", Test_eval.suite);
      ("rewrite", Test_rewrite.suite);
      ("macros", Test_macros.suite);
      ("explore", Test_explore.suite);
      ("views (property)", Test_views_q.suite);
      ("golden kernels", Test_golden.suite);
      ("edges", Test_edges.suite);
      ("jit", Test_jit.suite);
      ("optimizer", Test_opt.suite);
      ("parallel engines", Test_parallel.suite);
      ("sharding", Test_shard.suite);
      ("overlap", Test_overlap.suite);
      ("temporal blocking", Test_tblock.suite);
      ("analysis", Test_analysis.suite);
      ("check & sanitize", Test_check.suite);
      ("footprint & plan verify", Test_footprint.suite);
      ("perf model", Test_perf_model.suite);
      ("material", Test_material.suite);
      ("geometry", Test_geometry.suite);
      ("lift basics", Test_lift_basics.suite);
      ("acoustics", Test_acoustics.suite);
      ("host", Test_host.suite);
      ("em extension", Test_em.suite);
      ("runtime & printing", Test_runtime_print.suite);
      ("native backend", Test_native.suite);
      ("autotune", Test_autotune.suite);
      ("engine conformance", Engine_conformance.suite);
      ("audio", Test_audio.suite);
    ]
