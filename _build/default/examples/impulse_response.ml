(* Auralization: record a room impulse response with frequency-dependent
   boundaries, write it as a WAV file, and show the octave-band spectrum
   — the end product a room-acoustics simulation exists for (paper §I).

   Compares concrete walls against curtains: the FD-MM branches absorb
   different bands differently, which shows up directly in the spectrum
   of the response tail.

     dune exec examples/impulse_response.exe *)

open Acoustics

let steps = 1024

let record ~materials =
  let params = Params.default in
  let dims = Geometry.dims ~nx:52 ~ny:40 ~nz:30 in
  let room = Geometry.build ~n_materials:(Array.length materials) Geometry.Box dims in
  let precision = Kernel_ast.Cast.Double in
  let compile name prog =
    (Lift_acoustics.Programs.compile ~name ~precision prog).Lift.Codegen.kernel
  in
  let kernels =
    [
      compile "volume" (Lift_acoustics.Programs.volume ());
      compile "boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ());
    ]
  in
  let sim = Gpu_sim.create ~engine:`Jit ~materials ~n_branches:3 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:(cx - 8) ~y:cy ~z:cz;
  Gpu_sim.run sim kernels ~steps ~receiver:(cx + 10, cy + 6, cz)

let spectrum_row label response =
  let params = Params.default in
  (* analyse the tail: after the direct sound, the boundary colours it *)
  let tail = Array.sub response (steps / 4) (steps - (steps / 4)) in
  let bands = Audio.octave_band_energies ~sample_rate:params.Params.sample_rate tail in
  Printf.printf "%-12s" label;
  List.iter (fun (_, e) -> Printf.printf " %7.1f" (Audio.db e)) bands;
  print_newline ();
  bands

let () =
  print_endline "Impulse responses under FD-MM boundaries (Lift-generated kernels)\n";
  let concrete = record ~materials:(Array.make 4 Material.concrete) in
  let curtains = record ~materials:(Array.make 4 Material.curtain) in
  let params = Params.default in
  let sr = int_of_float params.Params.sample_rate in
  Audio.write_wav "ir_concrete.wav" ~sample_rate:sr (Audio.normalise concrete);
  Audio.write_wav "ir_curtains.wav" ~sample_rate:sr (Audio.normalise curtains);
  Printf.printf "wrote ir_concrete.wav and ir_curtains.wav (%d samples at %d Hz)\n\n" steps sr;
  Printf.printf "octave-band energy of the response tail (dB):\n";
  Printf.printf "%-12s" "band (Hz)";
  List.iter (fun fc -> Printf.printf " %7.0f" fc) Audio.octave_bands;
  print_newline ();
  let b1 = spectrum_row "concrete" concrete in
  let b2 = spectrum_row "curtains" curtains in
  let diff =
    List.map2 (fun (fc, e1) (_, e2) -> (fc, Audio.db e1 -. Audio.db e2)) b1 b2
  in
  Printf.printf "%-12s" "difference";
  List.iter (fun (_, d) -> Printf.printf " %7.1f" d) diff;
  print_newline ();
  (* the closed-form admittance predicts the tilt *)
  Printf.printf "\npredicted absorption Re Y(w) from the branch model:\n%-12s" "";
  List.iter (fun fc -> Printf.printf " %7.0f" fc) Audio.octave_bands;
  print_newline ();
  List.iter
    (fun (label, m) ->
      Printf.printf "%-12s" label;
      List.iter
        (fun fc ->
          let omega = 2. *. Float.pi *. fc /. params.Params.sample_rate in
          Printf.printf " %7.3f" (Material.admittance m ~omega).Complex.re)
        Audio.octave_bands;
      print_newline ())
    [ ("concrete", Material.concrete); ("curtains", Material.curtain) ];
  print_endline "\nCurtains remove more energy overall, and not uniformly across";
  print_endline "bands: that spectral tilt is what the FD-MM branch state models."

