examples/codegen_tour.ml: Acoustics Hand_kernels Kernel_ast Lift Lift_acoustics List Material Printf String
