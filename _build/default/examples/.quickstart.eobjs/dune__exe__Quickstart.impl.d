examples/quickstart.ml: Acoustics Array Energy Geometry Gpu_sim Kernel_ast Lift Lift_acoustics Params Printf State
