examples/quickstart.mli:
