examples/impulse_response.ml: Acoustics Array Audio Complex Float Geometry Gpu_sim Kernel_ast Lift Lift_acoustics List Material Params Printf State
