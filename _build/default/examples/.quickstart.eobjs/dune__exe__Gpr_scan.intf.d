examples/gpr_scan.mli:
