examples/concert_hall.mli:
