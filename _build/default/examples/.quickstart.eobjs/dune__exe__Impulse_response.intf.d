examples/impulse_response.mli:
