examples/explore_tour.mli:
