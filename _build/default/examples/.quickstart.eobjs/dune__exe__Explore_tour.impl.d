examples/explore_tour.ml: Ast Explore Harness Kernel_ast Lift List Printf Rewrite Size String Ty Vgpu
