examples/concert_hall.ml: Acoustics Array Energy Geometry Gpu_sim Kernel_ast Lift Lift_acoustics List Material Params Printf State
