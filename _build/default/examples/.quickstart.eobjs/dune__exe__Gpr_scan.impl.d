examples/gpr_scan.ml: Array Em Float Printf
