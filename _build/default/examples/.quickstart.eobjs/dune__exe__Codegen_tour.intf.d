examples/codegen_tour.mli:
