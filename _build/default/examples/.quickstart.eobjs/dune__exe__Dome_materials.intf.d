examples/dome_materials.mli:
