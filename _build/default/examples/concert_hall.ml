(* Concert hall: a shoebox hall with four wall materials, comparing
   frequency-independent (FI-MM) and frequency-dependent (FD-MM)
   boundaries — the paper's most realistic model.  Runs the full
   two-kernel pipeline with Lift-generated kernels, records an impulse
   response at a seat and estimates the decay rate from the
   Schroeder-style energy curve.

     dune exec examples/concert_hall.exe *)

open Acoustics

let decay_db_per_second ~sample_rate response =
  (* Fit a line to the log of the backward-integrated energy between the
     -5 dB and -25 dB points (a miniature T60 estimate). *)
  let n = Array.length response in
  let tail = Array.make n 0. in
  let acc = ref 0. in
  for i = n - 1 downto 0 do
    acc := !acc +. (response.(i) *. response.(i));
    tail.(i) <- !acc
  done;
  if tail.(0) <= 0. then 0.
  else begin
    let db i = 10. *. log10 (tail.(i) /. tail.(0)) in
    let i5 = ref 0 and i25 = ref (n - 1) in
    (try
       for i = 0 to n - 1 do
         if db i <= -5. then begin
           i5 := i;
           raise Exit
         end
       done
     with Exit -> ());
    (try
       for i = !i5 to n - 1 do
         if db i <= -25. then begin
           i25 := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !i25 <= !i5 then 0.
    else begin
      let dt = float_of_int (!i25 - !i5) /. sample_rate in
      (db !i25 -. db !i5) /. dt
    end
  end

let run_hall ~materials ~scheme ~label =
  let params = Params.default in
  let dims = Geometry.dims ~nx:48 ~ny:36 ~nz:28 in
  let room = Geometry.build ~n_materials:(Array.length materials) Geometry.Box dims in
  let precision = Kernel_ast.Cast.Double in
  let compile name prog =
    (Lift_acoustics.Programs.compile ~name ~precision prog).Lift.Codegen.kernel
  in
  let volume_k = compile "volume" (Lift_acoustics.Programs.volume ()) in
  let boundary_k =
    match scheme with
    | `Fi_mm -> compile "boundary_fi_mm" (Lift_acoustics.Programs.boundary_fi_mm ())
    | `Fd_mm -> compile "boundary_fd_mm" (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ())
  in
  let sim = Gpu_sim.create ~engine:`Jit ~materials ~n_branches:3 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  (* impulse at the stage: front third of the hall *)
  State.add_impulse sim.Gpu_sim.state ~x:(cx / 2) ~y:cy ~z:cz;
  let steps = 450 in
  let energies = Array.make steps 0. in
  let seat = Array.make steps 0. in
  for k = 0 to steps - 1 do
    Gpu_sim.step sim [ volume_k; boundary_k ];
    energies.(k) <- Energy.kinetic_energy sim.Gpu_sim.state;
    seat.(k) <- State.read sim.Gpu_sim.state ~x:(cx + 12) ~y:(cy + 8) ~z:cz
  done;
  (* decay of the reverberant field: windowed energy early vs late *)
  let window a lo hi =
    let acc = ref 0. in
    for i = lo to hi - 1 do
      acc := !acc +. a.(i)
    done;
    !acc /. float_of_int (hi - lo)
  in
  let e_early = window energies 100 150 and e_late = window energies 400 450 in
  let dt = 325. /. params.Params.sample_rate in
  let decay = 10. *. log10 (e_late /. e_early) /. dt in
  Printf.printf "  %-22s decay %8.1f dB/s  (seat peak %+.5f, schroeder %7.1f dB/s)\n" label
    decay (Energy.max_abs seat)
    (decay_db_per_second ~sample_rate:params.Params.sample_rate seat)

let material_sets =
  [
    ( "hard shell (concrete)",
      [| Material.concrete; Material.concrete; Material.concrete; Material.concrete |] );
    ("mixed (default set)", Material.defaults);
    ( "damped (curtains)",
      [| Material.curtain; Material.curtain; Material.carpet; Material.curtain |] );
  ]

let () =
  Printf.printf "Concert hall, Lift-generated kernels, impulse at the stage\n";
  Printf.printf "\nfrequency-independent boundaries (FI-MM):\n";
  List.iter (fun (label, materials) -> run_hall ~materials ~scheme:`Fi_mm ~label) material_sets;
  Printf.printf "\nfrequency-dependent boundaries (FD-MM, 3 resonant branches):\n";
  List.iter (fun (label, materials) -> run_hall ~materials ~scheme:`Fd_mm ~label) material_sets;
  print_newline ();
  print_endline "Under FI-MM the flat admittance governs the decay.  Under FD-MM the";
  print_endline "branch resonances reshape absorption across frequency, so the ordering";
  print_endline "can change: that spectral behaviour is exactly why the paper's most";
  print_endline "realistic model stores per-point boundary state."
