(* Ground-penetrating radar (paper §VIII): the same Lift machinery that
   generates the acoustics kernels generates a 2D electromagnetic FDTD
   whose volume kernel updates several field arrays in place.

   Scene: air over two soil layers with a buried metal target.  A radar
   pulse is emitted at the surface; the received trace shows the direct
   wave, the layer interface reflection, and — when present — the target
   reflection.  Running with and without the target shows the difference
   signal a GPR survey looks for.

     dune exec examples/gpr_scan.exe *)

let nx = 120
let ny = 100
let surface = 30 (* soil starts at this row *)
let steps = 260

let build ~with_target =
  let g = Em.Em_grid.create ~nx ~ny in
  (* two soil layers *)
  Em.Em_grid.fill_material g ~x0:0 ~y0:surface ~x1:(nx - 1) ~y1:(ny - 1) Em.Em_grid.dry_soil;
  Em.Em_grid.fill_material g ~x0:0 ~y0:(surface + 40) ~x1:(nx - 1) ~y1:(ny - 1)
    Em.Em_grid.wet_soil;
  if with_target then
    Em.Em_grid.fill_material g ~x0:((nx / 2) - 5) ~y0:(surface + 18) ~x1:((nx / 2) + 5)
      ~y1:(surface + 22) Em.Em_grid.metal;
  g

let run ~with_target =
  let g = build ~with_target in
  let c = Em.Em_lift.compile () in
  let tx = nx / 2 and rx = (nx / 2) + 8 in
  let trace = Array.make steps 0. in
  for step = 0 to steps - 1 do
    Em.Em_grid.inject g ~i:tx ~j:(surface - 2) (Em.Em_grid.pulse ~t0:20. ~spread:6. step);
    Em.Em_lift.step c g;
    trace.(step) <- Em.Em_grid.read_ez g ~i:rx ~j:(surface - 2)
  done;
  trace

let ascii_plot label trace =
  Printf.printf "\n%s\n" label;
  let cols = 64 in
  let bucket = (steps + cols - 1) / cols in
  let peak = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1e-30 trace in
  for row = 3 downto -3 do
    for cstart = 0 to cols - 1 do
      let lo = cstart * bucket and hi = min steps ((cstart + 1) * bucket) in
      let v = ref 0. in
      for k = lo to hi - 1 do
        if Float.abs trace.(k) > Float.abs !v then v := trace.(k)
      done;
      let level = int_of_float (Float.round (!v /. peak *. 3.)) in
      print_char
        (if row = 0 then '-'
         else if (row > 0 && level >= row) || (row < 0 && level <= row) then '#'
         else ' ')
    done;
    print_newline ()
  done

let () =
  Printf.printf "GPR scan over layered soil, Lift-generated EM kernels (%dx%d grid)\n" nx ny;
  let with_t = run ~with_target:true in
  let without_t = run ~with_target:false in
  ascii_plot "received trace (target buried at depth 20):" with_t;
  let diff = Array.map2 (fun a b -> a -. b) with_t without_t in
  ascii_plot "difference vs empty ground (the target's echo):" diff;
  let peak_at a =
    let best = ref 0 in
    Array.iteri (fun i v -> if Float.abs v > Float.abs a.(!best) then best := i) a;
    !best
  in
  Printf.printf "\ntarget echo peaks at step %d (two-way travel through the soil)\n"
    (peak_at diff)
