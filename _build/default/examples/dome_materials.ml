(* Dome: the non-cuboid room from the paper's introduction.  The implicit
   Boolean-formula boundary of a box does not work here; the explicit
   boundary data structures (nbrs, boundaryIndices, material) and the
   two-kernel pipeline are required.  Sweeps the wall material of a dome
   under FI-MM boundary handling and reports how fast the field decays.

     dune exec examples/dome_materials.exe *)

open Acoustics

let half_life_steps params room materials =
  let precision = Kernel_ast.Cast.Double in
  let volume_k =
    (Lift_acoustics.Programs.compile ~name:"volume" ~precision
       (Lift_acoustics.Programs.volume ()))
      .Lift.Codegen.kernel
  in
  let boundary_k =
    (Lift_acoustics.Programs.compile ~name:"boundary_fi_mm" ~precision
       (Lift_acoustics.Programs.boundary_fi_mm ()))
      .Lift.Codegen.kernel
  in
  let sim = Gpu_sim.create ~engine:`Jit ~materials ~n_branches:3 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:(cz / 2);
  (* settle, then measure windowed kinetic energy until it halves *)
  for _ = 1 to 50 do
    Gpu_sim.step sim [ volume_k; boundary_k ]
  done;
  let window () =
    let acc = ref 0. in
    for _ = 1 to 10 do
      Gpu_sim.step sim [ volume_k; boundary_k ];
      acc := !acc +. Energy.kinetic_energy sim.Gpu_sim.state
    done;
    !acc /. 10.
  in
  let e0 = window () in
  let steps = ref 60 in
  let rec go () =
    if window () > e0 /. 2. && !steps < 1500 then begin
      steps := !steps + 10;
      go ()
    end
  in
  go ();
  !steps

let () =
  let params = Params.default in
  let dims = Geometry.dims ~nx:42 ~ny:42 ~nz:22 in
  let room = Geometry.build ~n_materials:4 Geometry.Dome dims in
  let s = Geometry.stats Geometry.Dome dims in
  Printf.printf
    "dome %dx%dx%d: %d inside, %d boundary points (contiguity %.2f)\n\n"
    dims.Geometry.nx dims.ny dims.nz s.Geometry.s_inside s.Geometry.s_boundary
    s.Geometry.s_contiguity;
  List.iter
    (fun (label, m) ->
      let mats = Array.make 4 m in
      let hl = half_life_steps params room mats in
      Printf.printf "%-14s beta=%.2f   energy half-life %s %4d steps (%.1f ms)\n" label
        m.Material.beta
        (if hl >= 1500 then ">=" else "~ ")
        hl
        (float_of_int hl /. params.Params.sample_rate *. 1e3))
    [
      ("rigid", Material.rigid);
      ("concrete", Material.concrete);
      ("wood panel", Material.wood_panel);
      ("carpet", Material.carpet);
      ("curtain", Material.curtain);
    ];
  print_newline ();
  print_endline "Higher admittance (beta) absorbs faster: shorter half-life."
