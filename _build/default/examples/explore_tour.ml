(* Rewrite-space exploration (the Lift optimisation workflow, paper
   §III): one high-level program, many semantically equal variants,
   ranked by the GPU performance model; then the paper's §VI tuning
   protocol applied to the winner's work-group size.

     dune exec examples/explore_tour.exe *)

open Lift

let n = Size.var "N"
let vec = Ty.array Ty.real n

(* A deliberately naive smoothing pipeline: two passes and some
   split/join plumbing left for the rewriter to clean up. *)
let program () =
  let a = Ast.named_param "a" vec in
  let smooth =
    Ast.map
      (Ast.lam1 (Ty.array_n Ty.real 3) (fun w ->
           let at i = Ast.Array_access (w, Ast.int i) in
           Ast.((at 0 +! at 1 +! at 2) *! real (1. /. 3.))))
      (Ast.Slide (3, 1, Ast.Pad (1, 1, Ast.real 0., Ast.Param a)))
  in
  let body =
    Ast.map
      (Ast.lam1 Ty.real (fun x -> Ast.(x *! x)))
      (Ast.map
         (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 1.)))
         (Ast.Join (Ast.Split (Size.const 4, smooth))))
  in
  { Ast.l_params = [ a ]; l_body = body }

let () =
  let prog = program () in
  Printf.printf "source program:\n%s\n\n" (Ast.to_string prog.Ast.l_body);
  let vs = Explore.variants ~depth:4 prog in
  Printf.printf "rewrite closure: %d distinct variants\n\n" (List.length vs);
  let device = Vgpu.Device.gtx780 in
  let workload =
    Vgpu.Perf_model.workload ~active_points:1e7
      ~buffer_elems:[ ("a", 10_000_000); ("out", 10_000_000) ]
      ()
  in
  let lowered =
    List.map (fun v -> { v with Explore.v_program = Rewrite.lower_outer_map_to_glb v.Explore.v_program }) vs
  in
  let ranked = Explore.rank ~device ~workload lowered in
  Printf.printf "%-40s %12s %8s\n" "rewrites applied" "model ms" "loads/pt";
  List.iter
    (fun (r : Explore.ranked) ->
      let c = Kernel_ast.Analysis.kernel_counts r.Explore.r_kernel in
      Printf.printf "%-40s %12.3f %8.1f\n"
        (match r.Explore.r_variant.Explore.v_trace with
        | [] -> "(original)"
        | t -> String.concat " ; " t)
        (r.Explore.r_time_s *. 1e3)
        (Kernel_ast.Analysis.total_loads c))
    ranked;
  (match ranked with
  | best :: _ ->
      Printf.printf "\nwinning kernel:\n%s\n"
        (Kernel_ast.Print.kernel_to_string best.Explore.r_kernel);
      (* the paper's protocol: hand-tune the work-group size last *)
      let t = Harness.Tuner.tune ~device best.Explore.r_kernel workload in
      Printf.printf "work-group sweep:";
      List.iter (fun (ls, s) -> Printf.printf "  ws=%d: %.3f ms" ls (s *. 1e3)) t.Harness.Tuner.sweep;
      Printf.printf "\nbest work-group size: %d\n" t.Harness.Tuner.best_size
  | [] -> print_endline "no variant compiled")
