(* Quickstart: express a room-acoustics simulation in the Lift IR,
   compile it to an OpenCL kernel, run it on the virtual GPU, and listen
   at a receiver.

     dune exec examples/quickstart.exe *)

open Acoustics

let () =
  (* 1. A shoebox room, 2 m x 1.6 m x 1.2 m at a 44.1 kHz sample rate. *)
  let params = Params.default in
  let dims = Geometry.dims ~nx:40 ~ny:32 ~nz:24 in
  let room = Geometry.build ~n_materials:1 Geometry.Box dims in
  Printf.printf "room: %d voxels, %d boundary points, grid spacing %.1f mm\n"
    (Geometry.n_points dims) (Geometry.n_boundary room)
    (Params.grid_spacing params *. 1e3);

  (* 2. The Lift programs: a volume (stencil) kernel and an in-place
     boundary kernel using the paper's WriteTo/Concat/Skip primitives. *)
  let volume_prog = Lift_acoustics.Programs.volume () in
  let boundary_prog = Lift_acoustics.Programs.boundary_fi () in

  (* 3. Compile to OpenCL kernels. *)
  let precision = Kernel_ast.Cast.Double in
  let volume_k =
    (Lift_acoustics.Programs.compile ~name:"volume" ~precision volume_prog).Lift.Codegen.kernel
  in
  let boundary_k =
    (Lift_acoustics.Programs.compile ~name:"boundary_fi" ~precision boundary_prog)
      .Lift.Codegen.kernel
  in
  print_endline "\ngenerated boundary kernel:";
  print_endline (Kernel_ast.Print.kernel_to_string boundary_k);

  (* 4. Simulate an impulse and record the response at a receiver. *)
  let sim = Gpu_sim.create ~engine:`Jit ~fi_beta:0.2 params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  let response =
    Gpu_sim.run sim [ volume_k; boundary_k ] ~steps:256 ~receiver:(cx + 8, cy, cz)
  in
  print_endline "impulse response (first 32 samples, 4 per line):";
  Array.iteri
    (fun i v ->
      if i < 32 then begin
        Printf.printf "%+.6f  " v;
        if (i + 1) mod 4 = 0 then print_newline ()
      end)
    response;
  Printf.printf "peak |response| = %.6f\n" (Energy.max_abs response)
