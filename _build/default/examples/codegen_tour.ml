(* Codegen tour: everything the compiler produces, side by side with the
   hand-written baselines —

   - the Lift IR of each acoustics program (pretty-printed),
   - the generated OpenCL kernels (single and double precision),
   - static resource analysis (the paper reports 45 memory accesses and
     98 flops per FD-MM update, 6-7 for FI-MM; the analysis recomputes
     these from our kernels),
   - the host program of paper Listing 5.

     dune exec examples/codegen_tour.exe *)

open Acoustics

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let show_counts k =
  let c = Kernel_ast.Analysis.kernel_counts k in
  Printf.printf "  per-update: %.0f global loads, %.0f stores, %.0f flops\n"
    (Kernel_ast.Analysis.total_loads c)
    (Kernel_ast.Analysis.total_stores c)
    c.Kernel_ast.Analysis.flops

let () =
  let betas = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta in

  section "Lift IR: FI-MM boundary handling (paper Listing 7)";
  print_endline (Lift.Ast.to_string (Lift_acoustics.Programs.boundary_fi_mm ()).Lift.Ast.l_body);

  section "Generated OpenCL (double precision)";
  List.iter
    (fun (name, prog) ->
      let c = Lift_acoustics.Programs.compile ~name ~precision:Kernel_ast.Cast.Double prog in
      print_endline (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel);
      show_counts c.Lift.Codegen.kernel)
    [
      ("lift_volume", Lift_acoustics.Programs.volume ());
      ("lift_boundary_fi_mm", Lift_acoustics.Programs.boundary_fi_mm ());
      ("lift_boundary_fd_mm", Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ());
      ("lift_fused_fi_3d", Lift_acoustics.Programs.fused_fi_3d ());
    ];

  section "Hand-written baselines (double precision)";
  List.iter
    (fun k ->
      print_endline (Kernel_ast.Print.kernel_to_string k);
      show_counts k)
    [
      Hand_kernels.boundary_fi_mm ~precision:Kernel_ast.Cast.Double ~betas;
      Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Double ~mb:3;
    ];

  section "Single-precision variant (floats, rounded stores)";
  let c =
    Lift_acoustics.Programs.compile ~name:"lift_boundary_fi_mm"
      ~precision:Kernel_ast.Cast.Single
      (Lift_acoustics.Programs.boundary_fi_mm ())
  in
  print_endline (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)
