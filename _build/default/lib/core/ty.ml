(* Types of the Lift IR: scalars, arrays with symbolic lengths, and
   tuples.  Function types appear only implicitly (lambdas are a separate
   syntactic class), as in the original Lift IR. *)

type scalar =
  | Int
  | Real

type t =
  | Scalar of scalar
  | Array of t * Size.t
  | Tuple of t list

let int = Scalar Int
let real = Scalar Real
let array elt n = Array (elt, n)
let array_n elt n = Array (elt, Size.Const n)
let tuple ts = Tuple ts

let rec equal a b =
  match (a, b) with
  | Scalar x, Scalar y -> x = y
  | Array (ea, na), Array (eb, nb) -> equal ea eb && Size.equal na nb
  | Tuple xs, Tuple ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | (Scalar _ | Array _ | Tuple _), _ -> false

let rec pp ppf = function
  | Scalar Int -> Fmt.string ppf "int"
  | Scalar Real -> Fmt.string ppf "real"
  | Array (elt, n) -> Fmt.pf ppf "[%a]%a" pp elt Size.pp n
  | Tuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) ts

let to_string = Fmt.to_to_string pp

let element = function
  | Array (elt, _) -> elt
  | t -> invalid_arg (Printf.sprintf "Ty.element: %s is not an array" (to_string t))

let length = function
  | Array (_, n) -> n
  | t -> invalid_arg (Printf.sprintf "Ty.length: %s is not an array" (to_string t))

let is_array = function Array _ -> true | Scalar _ | Tuple _ -> false
let is_scalar = function Scalar _ -> true | Array _ | Tuple _ -> false

(* The scalar leaf type of a (possibly nested) array; memory buffers are
   linear arrays of this type. *)
let rec leaf_scalar = function
  | Scalar s -> Some s
  | Array (elt, _) -> leaf_scalar elt
  | Tuple _ -> None

(* Number of scalar cells occupied by one value of this type when stored
   linearised in memory.  Tuples are not storable. *)
let rec scalar_count = function
  | Scalar _ -> Size.Const 1
  | Array (elt, n) -> Size.mul n (scalar_count elt)
  | Tuple _ -> invalid_arg "Ty.scalar_count: tuples are not storable in buffers"

(* Total length after flattening all array dimensions. *)
let flat_length t = scalar_count t

let rec size_vars = function
  | Scalar _ -> []
  | Array (elt, n) -> List.sort_uniq String.compare (Size.vars n @ size_vars elt)
  | Tuple ts -> List.sort_uniq String.compare (List.concat_map size_vars ts)

let to_cast_scalar = function
  | Int -> Kernel_ast.Cast.Int
  | Real -> Kernel_ast.Cast.Real
