lib/core/macros.mli: Ast Size Ty
