lib/core/eval.mli: Ast Format
