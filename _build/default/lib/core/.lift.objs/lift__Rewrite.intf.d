lib/core/rewrite.mli: Ast
