lib/core/emit_c.ml: Buffer Cast Codegen Hashtbl Host Kernel_ast List Print Printf String Vgpu
