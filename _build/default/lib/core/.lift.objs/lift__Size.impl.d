lib/core/size.ml: Fmt Int Kernel_ast List Map Printf Stdlib String
