lib/core/ty.ml: Fmt Kernel_ast List Printf Size String
