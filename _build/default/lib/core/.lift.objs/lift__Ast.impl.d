lib/core/ast.ml: Fmt Kernel_ast List Option Printf Size Ty
