lib/core/view.mli: Cast Kernel_ast Size Ty
