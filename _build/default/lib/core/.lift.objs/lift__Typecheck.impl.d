lib/core/typecheck.ml: Ast List Printf Size Ty
