lib/core/emit_c.mli: Host Kernel_ast
