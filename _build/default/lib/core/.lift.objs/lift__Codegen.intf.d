lib/core/codegen.mli: Ast Kernel_ast Ty
