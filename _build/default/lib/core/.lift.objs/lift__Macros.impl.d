lib/core/macros.ml: Ast Size Ty
