lib/core/explore.ml: Ast Buffer Codegen Hashtbl Kernel_ast List Rewrite String Vgpu
