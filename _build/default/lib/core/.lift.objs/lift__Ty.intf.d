lib/core/ty.mli: Format Kernel_ast Size
