lib/core/size.mli: Format Kernel_ast
