lib/core/eval.ml: Array Ast Fmt Hashtbl List Printf Size Vgpu
