lib/core/view.ml: Cast Kernel_ast List Printf Size Ty
