lib/core/ast.mli: Format Kernel_ast Size Ty
