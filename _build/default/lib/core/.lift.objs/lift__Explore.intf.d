lib/core/explore.mli: Ast Kernel_ast Rewrite Vgpu
