lib/core/typecheck.mli: Ast Ty
