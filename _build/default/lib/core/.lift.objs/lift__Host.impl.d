lib/core/host.ml: Ast Cast Codegen Hashtbl Kernel_ast List Print Printf Size String Ty Vgpu
