lib/core/host.mli: Ast Codegen Kernel_ast Ty Vgpu
