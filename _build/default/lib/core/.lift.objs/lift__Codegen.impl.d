lib/core/codegen.ml: Ast Cast Kernel_ast List Option Printf Size String Ty Typecheck View
