lib/core/rewrite.ml: Ast List Option
