(** Rewrite-space exploration.

    Lift's optimisation story (paper §III): one high-level program is
    rewritten into many semantically equal variants and the best is
    selected for the target hardware.  Bounded breadth-first closure of
    the rewrite rules, plus compilation and ranking with the virtual
    GPU's performance model. *)

type variant = {
  v_program : Ast.lam;
  v_trace : string list;  (** rule names applied, in order *)
}

val key : Ast.lam -> string
(** Alpha-insensitive structural key used for deduplication. *)

val variants : ?rules:Rewrite.rule list -> ?depth:int -> Ast.lam -> variant list
(** All distinct variants reachable in at most [depth] rule sweeps,
    including the original program. *)

type ranked = {
  r_variant : variant;
  r_kernel : Kernel_ast.Cast.kernel;
  r_time_s : float;
}

val rank :
  ?precision:Kernel_ast.Cast.precision ->
  device:Vgpu.Device.t ->
  workload:Vgpu.Perf_model.workload ->
  variant list ->
  ranked list
(** Compile each variant and sort by predicted runtime (fastest first);
    variants that fail to compile are dropped. *)

val best :
  ?rules:Rewrite.rule list ->
  ?depth:int ->
  ?precision:Kernel_ast.Cast.precision ->
  device:Vgpu.Device.t ->
  workload:Vgpu.Perf_model.workload ->
  Ast.lam ->
  ranked option
(** Explore, lower every variant's outer map to the GPU, compile, rank,
    return the fastest. *)
