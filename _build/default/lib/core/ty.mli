(** Types of the Lift IR: scalars, arrays with symbolic lengths, and
    tuples. *)

type scalar =
  | Int
  | Real

type t =
  | Scalar of scalar
  | Array of t * Size.t
  | Tuple of t list

val int : t
val real : t
val array : t -> Size.t -> t
val array_n : t -> int -> t
val tuple : t list -> t

val equal : t -> t -> bool
(** Structural equality with {!Size.equal} on lengths. *)

val element : t -> t
(** @raise Invalid_argument on non-arrays. *)

val length : t -> Size.t
(** @raise Invalid_argument on non-arrays. *)

val is_array : t -> bool
val is_scalar : t -> bool

val leaf_scalar : t -> scalar option
(** The scalar leaf of a (possibly nested) array; [None] for tuples.
    Memory buffers are linear arrays of this type. *)

val scalar_count : t -> Size.t
(** Number of scalar cells one value occupies when stored linearised.
    @raise Invalid_argument for tuples (not storable). *)

val flat_length : t -> Size.t
val size_vars : t -> string list
val to_cast_scalar : scalar -> Kernel_ast.Cast.ty

val pp : Format.formatter -> t -> unit
val to_string : t -> string
