(* Symbolic array lengths.

   Lift array types carry their length as an arithmetic expression over
   named size variables (N, Nx, nB, ...).  Equality of sizes — needed by
   the type checker for zip, concat and write-to — is decided by
   normalising to a sum-of-products polynomial form.  Division is only
   simplified when exact; otherwise it is kept as an opaque term. *)

type t =
  | Const of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

let const n = Const n
let var v = Var v

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b

let to_string = Fmt.to_to_string pp

(* Polynomial normal form: a map from a sorted multiset of atomic factors
   (variables and opaque divisions) to an integer coefficient.  Keys are
   compared structurally; the empty key is the constant term. *)
module Poly = struct
  module Key = struct
    type term = t

    type t = term list (* sorted *)

    let compare = Stdlib.compare
  end

  module M = Map.Make (Key)

  type poly = int M.t

  let add_term key coeff p =
    let c = match M.find_opt key p with Some c -> c | None -> 0 in
    let c = c + coeff in
    if c = 0 then M.remove key p else M.add key c p

  let zero : poly = M.empty
  let constant n = if n = 0 then zero else M.singleton [] n
  let add = M.fold add_term
  let neg p = M.map (fun c -> -c) p

  let mul p q =
    M.fold
      (fun k1 c1 acc ->
        M.fold
          (fun k2 c2 acc -> add_term (List.sort Stdlib.compare (k1 @ k2)) (c1 * c2) acc)
          q acc)
      p zero

  let is_const p =
    if M.is_empty p then Some 0
    else
      match M.bindings p with
      | [ ([], c) ] -> Some c
      | _ -> None
end

let rec to_poly (s : t) : Poly.poly =
  match s with
  | Const n -> Poly.constant n
  | Var v -> Poly.M.singleton [ Var v ] 1
  | Add (a, b) -> Poly.add (to_poly a) (to_poly b)
  | Sub (a, b) -> Poly.add (to_poly a) (Poly.neg (to_poly b))
  | Mul (a, b) -> Poly.mul (to_poly a) (to_poly b)
  | Div (a, b) -> (
      let pa = to_poly a and pb = to_poly b in
      match (Poly.is_const pa, Poly.is_const pb) with
      | Some x, Some y when y <> 0 && x mod y = 0 -> Poly.constant (x / y)
      | _, Some 1 -> pa
      | _ ->
          (* Opaque: keep the simplified operands as an atomic factor. *)
          Poly.M.singleton [ Div (of_poly pa, of_poly pb) ] 1)

and of_poly (p : Poly.poly) : t =
  let term (factors, coeff) =
    let base =
      match factors with
      | [] -> Const (abs coeff)
      | f :: fs ->
          let prod = List.fold_left (fun acc f -> Mul (acc, f)) f fs in
          if abs coeff = 1 then prod else Mul (Const (abs coeff), prod)
    in
    (base, coeff >= 0)
  in
  match Poly.M.bindings p with
  | [] -> Const 0
  | b :: bs ->
      let first, first_pos = term b in
      let first = if first_pos then first else Sub (Const 0, first) in
      List.fold_left
        (fun acc b ->
          let t, pos = term b in
          if pos then Add (acc, t) else Sub (acc, t))
        first bs

let simplify s = of_poly (to_poly s)

let equal a b = Poly.M.equal Int.equal (to_poly a) (to_poly b)

let add a b = simplify (Add (a, b))
let sub a b = simplify (Sub (a, b))
let mul a b = simplify (Mul (a, b))
let div a b = simplify (Div (a, b))

(* Evaluate under a size-variable environment. *)
let rec eval env = function
  | Const n -> n
  | Var v -> (
      match env v with
      | Some n -> n
      | None -> failwith (Printf.sprintf "Size.eval: unbound size variable %s" v))
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Div (a, b) -> eval env a / eval env b

let to_int_opt s = Poly.is_const (to_poly s)

(* Size variables occurring in [s]. *)
let rec vars = function
  | Const _ -> []
  | Var v -> [ v ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      List.sort_uniq String.compare (vars a @ vars b)

(* Lower to a kernel-AST index expression; size variables become scalar
   kernel parameters of the same name. *)
let rec to_cexpr : t -> Kernel_ast.Cast.expr = function
  | Const n -> Int_lit n
  | Var v -> Var v
  | Add (a, b) -> Binop (Add, to_cexpr a, to_cexpr b)
  | Sub (a, b) -> Binop (Sub, to_cexpr a, to_cexpr b)
  | Mul (a, b) -> Binop (Mul, to_cexpr a, to_cexpr b)
  | Div (a, b) -> Binop (Div, to_cexpr a, to_cexpr b)
