(** The Lift intermediate representation.

    The classic pattern language (map, reduce, zip, slide, pad, split,
    join) plus the extensions this paper contributes for complex
    boundary conditions (paper §IV, Table I): {!constructor:Write_to},
    {!constructor:Concat}, {!constructor:Skip} and
    {!constructor:Array_cons}, which together express in-place,
    scatter-indexed updates, and {!constructor:To_private} for staging
    small arrays in registers.

    Parameters carry globally unique ids, so substitution is
    capture-avoiding by construction. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not
  | To_real
  | To_int

(** Execution mode of a map. *)
type mode =
  | Seq        (** sequential loop *)
  | Glb of int (** one work-item per element along NDRange dimension d *)

type param = {
  p_id : int;
  p_name : string;
  p_ty : Ty.t;
}

type expr =
  | Param of param
  | Int_lit of int
  | Real_lit of float
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Select of expr * expr * expr
      (** scalar conditional; compiles to a guarded branch when its arms
          perform memory accesses *)
  | Call of Kernel_ast.Cast.builtin * expr list
  | Tuple of expr list
  | Get of expr * int
  | Let of param * expr * expr
  | Map of mode * lam * expr
  | Reduce of lam * expr * expr  (** f, init, array *)
  | Zip of expr list
  | Slide of int * int * expr    (** window size, step *)
  | Pad of int * int * expr * expr  (** left, right, constant, array *)
  | Split of Size.t * expr
  | Join of expr
  | Iota of Size.t               (** [[0; 1; ...; n-1]] *)
  | Size_val of Size.t           (** the integer value of a size *)
  | Array_access of expr * expr
  | Concat of expr list
  | Skip of Ty.t * Size.t * expr option
      (** a no-op array that only positions subsequent Concat writes;
          carries a symbolic length for the type checker and, for the
          paper's value-dependent [Skip(Float, idx)], the runtime
          expression computing it *)
  | Array_cons of expr * int     (** n copies of one value *)
  | Write_to of expr * expr      (** target, value: redirect output *)
  | To_private of expr           (** stage a small array in registers *)
  | Build of Size.t * lam
      (** array built lazily from an index function (generalises Iota;
          the paper's [array3(m,n,o,f)] generator); no memory is
          materialised *)
  | Transpose of expr            (** swap the outer two dimensions *)

and lam = {
  l_params : param list;
  l_body : expr;
}

(** {1 Construction} *)

val fresh_param : ?name:string -> Ty.t -> param
(** A parameter with a fresh id and a uniquified name. *)

val named_param : string -> Ty.t -> param
(** A parameter whose generated-code name is exactly [name]; used for
    kernel arguments, where the paper's naming convention matters. *)

val lam1 : ?name:string -> Ty.t -> (expr -> expr) -> lam
val lam2 : ?name1:string -> ?name2:string -> Ty.t -> Ty.t -> (expr -> expr -> expr) -> lam

val ( +! ) : expr -> expr -> expr
val ( -! ) : expr -> expr -> expr
val ( *! ) : expr -> expr -> expr
val ( /! ) : expr -> expr -> expr
val ( %! ) : expr -> expr -> expr
val ( <! ) : expr -> expr -> expr
val ( <=! ) : expr -> expr -> expr
val ( >! ) : expr -> expr -> expr
val ( >=! ) : expr -> expr -> expr
val ( =! ) : expr -> expr -> expr
val ( <>! ) : expr -> expr -> expr
val ( &&! ) : expr -> expr -> expr
val ( ||! ) : expr -> expr -> expr

val int : int -> expr
val real : float -> expr
val to_real : expr -> expr

val let_ : ?name:string -> Ty.t -> expr -> (expr -> expr) -> expr
val map : ?mode:mode -> lam -> expr -> expr
val map_glb : ?dim:int -> lam -> expr -> expr

val build : ?name:string -> Size.t -> (expr -> expr) -> expr
(** [build n f] is the lazy array [[f 0; ...; f (n-1)]]. *)

val skip : Ty.t -> Size.t -> expr
val skip_dyn : Ty.t -> sym:Size.t -> expr -> expr

val scatter_row :
  elt_ty:Ty.t -> n:Size.t -> sym:string -> index:expr -> expr -> expr
(** The paper's in-place scatter idiom (§IV-B2):
    [Concat(Skip(idx), ArrayCons(value,1), Skip(n-1-idx))] — writes
    [value] at position [index] of an array of length [n], leaving every
    other element untouched.  [sym] names the opaque symbolic skip
    length, which cancels so the row types as an array of length [n]. *)

(** {1 Substitution} *)

val subst : (int * expr) list -> expr -> expr
val apply1 : lam -> expr -> expr
val apply2 : lam -> expr -> expr -> expr

val compose : lam -> lam -> lam
(** [(compose f g) x = f (g x)]; used by map fusion. *)

(** {1 Miscellany} *)

val size : expr -> int
(** Structural size, used to bound rewriting. *)

val binop_name : binop -> string
val mode_name : mode -> string
val pp : Format.formatter -> expr -> unit
val pp_lam : Format.formatter -> lam -> unit
val to_string : expr -> string
