(** Multi-dimensional pattern macros.

    Lift expresses 2D/3D stencil neighbourhoods as compositions of the
    1D primitives (the paper's §III-B uses slide3/pad3): sliding along
    each dimension and transposing window dimensions into place.
    Because slides, pads and transposes only build views — and maps with
    view-pure bodies stay lazy — none of this moves data: a slide3
    neighbourhood access collapses to one linear index expression.

    Each macro takes the argument's array type explicitly ([ty]) to
    construct the intermediate lambdas. *)

val windows : int -> int -> Size.t -> Size.t
(** Number of windows of a slide over a length. *)

val slide_ty : int -> int -> Ty.t -> Ty.t
val transpose_ty : Ty.t -> Ty.t
val pad_ty : int -> int -> Ty.t -> Ty.t
val slide2_ty : int -> int -> Ty.t -> Ty.t

val slide2 : int -> int -> ty:Ty.t -> Ast.expr -> Ast.expr
(** [[n][m]t -> [nw][mw][sz][sz]t] with
    [W(i,j)[dy][dx] = a[i*st+dy][j*st+dx]]. *)

val slide3 : int -> int -> ty:Ty.t -> Ast.expr -> Ast.expr
(** [[p][n][m]t -> [pw][nw][mw][sz][sz][sz]t]. *)

val pad2 : int -> int -> Ast.expr -> ty:Ty.t -> Ast.expr -> Ast.expr
(** Uniform scalar fill on every side of both dimensions. *)

val pad3 : int -> int -> Ast.expr -> ty:Ty.t -> Ast.expr -> Ast.expr
