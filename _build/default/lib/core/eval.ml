(* Reference interpreter for the Lift IR.

   Gives the IR a semantics independent of the code generator; the test
   suite checks that compiling a program and running it on the virtual
   GPU produces the same values as evaluating it here.

   In-place updates: array values are mutable OCaml arrays shared with
   the caller, and [Write_to] assigns *through* them, so callers observe
   mutation of their inputs exactly as OpenCL host code observes buffer
   updates.  [Skip] evaluates to an array of [VSkip] sentinels; writing a
   row containing [VSkip] leaves those positions of the target untouched,
   which is precisely the paper's Concat/Skip scatter semantics. *)

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

type value =
  | VInt of int
  | VReal of float
  | VArr of value array
  | VTup of value list
  | VSkip

let rec pp_value ppf = function
  | VInt n -> Fmt.int ppf n
  | VReal r -> Fmt.float ppf r
  | VArr a ->
      Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") pp_value) (Array.sub a 0 (min 8 (Array.length a)));
      if Array.length a > 8 then Fmt.pf ppf "(+%d)" (Array.length a - 8)
  | VTup vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_value) vs
  | VSkip -> Fmt.string ppf "_"

let as_int = function
  | VInt n -> n
  | VReal r -> int_of_float r
  | v -> err "expected int, got %a" (fun () -> Fmt.to_to_string pp_value) v

let as_real = function
  | VReal r -> r
  | VInt n -> float_of_int n
  | v -> err "expected real, got %s" (Fmt.to_to_string pp_value v)

let as_arr = function
  | VArr a -> a
  | v -> err "expected array, got %s" (Fmt.to_to_string pp_value v)

(* Size variables are resolved through [sizes]. *)
type env = {
  vars : (int, value) Hashtbl.t;
  sizes : string -> int option;
}

let create_env ?(sizes = fun _ -> None) () = { vars = Hashtbl.create 16; sizes }

let size_value env s = Size.eval env.sizes s

let eval_binop (op : Ast.binop) va vb =
  let arith fi fr =
    match (va, vb) with
    | VInt x, VInt y -> VInt (fi x y)
    | _ -> VReal (fr (as_real va) (as_real vb))
  in
  let cmp f = VInt (if f (compare (as_real va) (as_real vb)) 0 then 1 else 0) in
  match op with
  | Ast.Add -> arith ( + ) ( +. )
  | Ast.Sub -> arith ( - ) ( -. )
  | Ast.Mul -> arith ( * ) ( *. )
  | Ast.Div -> arith ( / ) ( /. )
  | Ast.Mod -> VInt (as_int va mod as_int vb)
  | Ast.Eq -> cmp ( = )
  | Ast.Ne -> cmp ( <> )
  | Ast.Lt -> cmp ( < )
  | Ast.Le -> cmp ( <= )
  | Ast.Gt -> cmp ( > )
  | Ast.Ge -> cmp ( >= )
  | Ast.And -> VInt (if as_int va <> 0 && as_int vb <> 0 then 1 else 0)
  | Ast.Or -> VInt (if as_int va <> 0 || as_int vb <> 0 then 1 else 0)

let rec eval (env : env) (e : Ast.expr) : value =
  match e with
  | Param p -> (
      match Hashtbl.find_opt env.vars p.p_id with
      | Some v -> v
      | None -> err "unbound parameter %s" p.p_name)
  | Int_lit n -> VInt n
  | Real_lit r -> VReal r
  | Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Unop (op, a) -> (
      let v = eval env a in
      match op with
      | Ast.Neg -> ( match v with VInt n -> VInt (-n) | _ -> VReal (-.as_real v))
      | Ast.Not -> VInt (if as_int v = 0 then 1 else 0)
      | Ast.To_real -> VReal (as_real v)
      | Ast.To_int -> VInt (as_int v))
  | Select (c, a, b) -> if as_int (eval env c) <> 0 then eval env a else eval env b
  | Call (f, args) ->
      VReal (Vgpu.Exec.builtin_eval f (List.map (fun a -> as_real (eval env a)) args))
  | Tuple es -> VTup (List.map (eval env) es)
  | Get (a, i) -> (
      match eval env a with
      | VTup vs when i < List.length vs -> List.nth vs i
      | v -> err "get %d from %s" i (Fmt.to_to_string pp_value v))
  | Let (p, v, b) ->
      Hashtbl.replace env.vars p.p_id (eval env v);
      eval env b
  | Map (_, f, a) -> (
      let arr = as_arr (eval env a) in
      match f.Ast.l_params with
      | [ p ] ->
          VArr
            (Array.map
               (fun x ->
                 Hashtbl.replace env.vars p.Ast.p_id x;
                 eval env f.Ast.l_body)
               arr)
      | _ -> err "map function must be unary")
  | Reduce (f, init, a) -> (
      let arr = as_arr (eval env a) in
      match f.Ast.l_params with
      | [ pacc; px ] ->
          Array.fold_left
            (fun acc x ->
              Hashtbl.replace env.vars pacc.Ast.p_id acc;
              Hashtbl.replace env.vars px.Ast.p_id x;
              eval env f.Ast.l_body)
            (eval env init) arr
      | _ -> err "reduce function must be binary")
  | Zip es ->
      let arrs = List.map (fun e -> as_arr (eval env e)) es in
      let n = match arrs with a :: _ -> Array.length a | [] -> 0 in
      List.iter
        (fun a -> if Array.length a <> n then err "zip arrays of different lengths")
        arrs;
      VArr (Array.init n (fun i -> VTup (List.map (fun a -> a.(i)) arrs)))
  | Slide (sz, st, a) ->
      let arr = as_arr (eval env a) in
      let n = Array.length arr in
      let wins = ((n - sz) / st) + 1 in
      VArr (Array.init wins (fun i -> VArr (Array.sub arr (i * st) sz)))
  | Pad (l, r, c, a) ->
      let arr = as_arr (eval env a) in
      let cv = eval env c in
      (* a scalar constant uniformly fills array-shaped elements *)
      let rec fill_like template v =
        match (template, v) with
        | VArr t, (VInt _ | VReal _) -> VArr (Array.map (fun x -> fill_like x v) t)
        | _ -> v
      in
      let cv = if Array.length arr > 0 then fill_like arr.(0) cv else cv in
      let n = Array.length arr in
      VArr (Array.init (l + n + r) (fun i -> if i < l || i >= l + n then cv else arr.(i - l)))
  | Split (m, a) ->
      let arr = as_arr (eval env a) in
      let m = size_value env m in
      let n = Array.length arr in
      if m <= 0 || n mod m <> 0 then err "split %d of array of length %d" m n;
      VArr (Array.init (n / m) (fun i -> VArr (Array.sub arr (i * m) m)))
  | Join a ->
      let outer = as_arr (eval env a) in
      VArr (Array.concat (Array.to_list (Array.map as_arr outer)))
  | Iota n -> VArr (Array.init (size_value env n) (fun i -> VInt i))
  | Size_val n -> VInt (size_value env n)
  | Array_access (a, i) ->
      let arr = as_arr (eval env a) in
      let i = as_int (eval env i) in
      if i < 0 || i >= Array.length arr then err "index %d out of bounds %d" i (Array.length arr);
      arr.(i)
  | Concat es ->
      let arrs = List.map (fun e -> as_arr (eval env e)) es in
      VArr (Array.concat arrs)
  | Skip (_, n, len) ->
      let n = match len with Some l -> as_int (eval env l) | None -> size_value env n in
      VArr (Array.make n VSkip)
  | Array_cons (a, n) ->
      let v = eval env a in
      VArr (Array.make n v)
  | To_private a -> VArr (Array.copy (as_arr (eval env a)))
  | Build (n, f) -> (
      match f.Ast.l_params with
      | [ p ] ->
          VArr
            (Array.init (size_value env n) (fun i ->
                 Hashtbl.replace env.vars p.Ast.p_id (VInt i);
                 eval env f.Ast.l_body))
      | _ -> err "build function must be unary")
  | Transpose a -> (
      let outer = as_arr (eval env a) in
      match Array.length outer with
      | 0 -> VArr [||]
      | n ->
          let inner = as_arr outer.(0) in
          let m = Array.length inner in
          VArr (Array.init m (fun j -> VArr (Array.init n (fun i -> (as_arr outer.(i)).(j))))))
  | Write_to (Array_access (arr_e, idx_e), value) ->
      (* Scalar-location target: write one element in place. *)
      let arr = as_arr (eval env arr_e) in
      let i = as_int (eval env idx_e) in
      let vv = eval env value in
      arr.(i) <- vv;
      vv
  | Write_to (target, value) ->
      let tv = eval env target in
      let vv = eval env value in
      write_into tv vv;
      tv

(* Merge [vv] into the mutable structure [tv].  VSkip leaves cells
   untouched.  A row-of-rows value (the scatter idiom) is applied row by
   row. *)
and write_into tv vv =
  match (tv, vv) with
  | _, VSkip -> ()
  | VArr t, VArr v when Array.length t = Array.length v ->
      Array.iteri
        (fun i x ->
          match (t.(i), x) with
          | VArr _, _ -> write_into t.(i) x
          | _, VSkip -> ()
          | _, x -> t.(i) <- x)
        v
  | VArr _, VArr rows -> Array.iter (fun row -> write_into tv row) rows
  | _, _ -> err "writeTo shape mismatch"

(* Run a program: bind each lambda parameter to the given value and
   evaluate the body.  Array arguments are shared, so in-place writes are
   visible to the caller afterwards. *)
let run ?sizes (f : Ast.lam) (args : value list) : value =
  if List.length f.Ast.l_params <> List.length args then err "program arity mismatch";
  let env = create_env ?sizes () in
  List.iter2 (fun p v -> Hashtbl.replace env.vars p.Ast.p_id v) f.Ast.l_params args;
  eval env f.Ast.l_body

(* Conversions between OCaml arrays and interpreter values. *)
let of_float_array a = VArr (Array.map (fun x -> VReal x) a)
let of_int_array a = VArr (Array.map (fun x -> VInt x) a)
let to_float_array v = Array.map as_real (as_arr v)
let to_int_array v = Array.map as_int (as_arr v)
