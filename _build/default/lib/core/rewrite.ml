(* Semantic-preserving rewrite rules.

   Lift optimises by rewriting a single high-level program into different
   low-level forms (paper §III).  This module provides the rule engine
   and the rules used by the acoustics pipelines:

   - [fuse_map_map]      map f (map g x)  ~>  map (f . g) x
   - [split_join_id]     join (split n x) ~>  x
   - [join_split_id]     split n (join x) ~>  x        (when inner size is n)
   - [concat_single]     concat [x]       ~>  x
   - [pad_zero]          pad 0 0 c x      ~>  x
   - [map_glb_lowering]  outermost mapSeq ~>  mapGlb   (parallelisation)

   Every rule is checked against the interpreter by the test suite on
   randomly generated programs. *)

type rule = {
  r_name : string;
  r_apply : Ast.expr -> Ast.expr option;
}

let rule r_name r_apply = { r_name; r_apply }

let fuse_map_map =
  rule "fuse-map-map" (function
    | Ast.Map (m_out, f, Ast.Map (m_in, g, x)) when m_out = m_in || m_in = Ast.Seq ->
        Some (Ast.Map (m_out, Ast.compose f g, x))
    | _ -> None)

let split_join_id =
  rule "split-join-id" (function
    | Ast.Join (Ast.Split (_, x)) -> Some x
    | _ -> None)

let join_split_id =
  rule "join-split-id" (function
    | Ast.Split (_, Ast.Join x) -> Some x
    | _ -> None)

let concat_single =
  rule "concat-single" (function Ast.Concat [ x ] -> Some x | _ -> None)

let pad_zero =
  rule "pad-zero" (function Ast.Pad (0, 0, _, x) -> Some x | _ -> None)

let transpose_transpose_id =
  rule "transpose-transpose-id" (function
    | Ast.Transpose (Ast.Transpose x) -> Some x
    | _ -> None)

let select_same =
  rule "select-same" (function
    | Ast.Select (_, a, b) when a = b -> Some a
    | _ -> None)

let default_rules =
  [
    fuse_map_map;
    split_join_id;
    join_split_id;
    concat_single;
    pad_zero;
    select_same;
    transpose_transpose_id;
  ]

(* Apply [rule] at every node, bottom-up, once.  Returns the rewritten
   expression and whether anything fired. *)
let apply_everywhere (r : rule) (e : Ast.expr) : Ast.expr * bool =
  let fired = ref false in
  let rec go (e : Ast.expr) : Ast.expr =
    let e =
      match e with
      | Ast.Param _ | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Iota _ | Ast.Size_val _ -> e
      | Ast.Binop (op, a, b) -> Ast.Binop (op, go a, go b)
      | Ast.Unop (op, a) -> Ast.Unop (op, go a)
      | Ast.Select (c, a, b) -> Ast.Select (go c, go a, go b)
      | Ast.Call (f, args) -> Ast.Call (f, List.map go args)
      | Ast.Tuple es -> Ast.Tuple (List.map go es)
      | Ast.Get (a, i) -> Ast.Get (go a, i)
      | Ast.Let (p, v, b) -> Ast.Let (p, go v, go b)
      | Ast.Map (m, f, a) -> Ast.Map (m, go_lam f, go a)
      | Ast.Reduce (f, i, a) -> Ast.Reduce (go_lam f, go i, go a)
      | Ast.Zip es -> Ast.Zip (List.map go es)
      | Ast.Slide (sz, st, a) -> Ast.Slide (sz, st, go a)
      | Ast.Pad (l, r', c, a) -> Ast.Pad (l, r', go c, go a)
      | Ast.Split (n, a) -> Ast.Split (n, go a)
      | Ast.Join a -> Ast.Join (go a)
      | Ast.Array_access (a, i) -> Ast.Array_access (go a, go i)
      | Ast.Concat es -> Ast.Concat (List.map go es)
      | Ast.Skip (t, n, len) -> Ast.Skip (t, n, Option.map go len)
      | Ast.Array_cons (a, n) -> Ast.Array_cons (go a, n)
      | Ast.Write_to (t, v) -> Ast.Write_to (go t, go v)
      | Ast.To_private a -> Ast.To_private (go a)
      | Ast.Build (n, f) -> Ast.Build (n, go_lam f)
      | Ast.Transpose a -> Ast.Transpose (go a)
    in
    match r.r_apply e with
    | Some e' ->
        fired := true;
        e'
    | None -> e
  and go_lam f = { f with Ast.l_body = go f.Ast.l_body } in
  let e' = go e in
  (e', !fired)

(* Apply a rule set to a fixpoint (bounded by [fuel] sweeps). *)
let normalize ?(rules = default_rules) ?(fuel = 32) (e : Ast.expr) : Ast.expr =
  let rec loop fuel e =
    if fuel = 0 then e
    else begin
      let e', fired =
        List.fold_left
          (fun (e, fired) r ->
            let e', f = apply_everywhere r e in
            (e', fired || f))
          (e, false) rules
      in
      if fired then loop (fuel - 1) e' else e'
    end
  in
  loop fuel e

let normalize_lam ?rules ?fuel (f : Ast.lam) : Ast.lam =
  { f with Ast.l_body = normalize ?rules ?fuel f.Ast.l_body }

(* Lowering: parallelise the outermost sequential map of a program onto
   NDRange dimension [dim].  This is the rewrite that turns a high-level
   program into a GPU kernel. *)
let lower_outer_map_to_glb ?(dim = 0) (f : Ast.lam) : Ast.lam =
  let rec go (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.Map (Ast.Seq, g, a) -> Ast.Map (Ast.Glb dim, g, a)
    | Ast.Map (Ast.Glb _, _, _) -> e
    | Ast.Let (p, v, b) -> Ast.Let (p, v, go b)
    | Ast.Write_to (t, v) -> Ast.Write_to (t, go v)
    | Ast.Tuple es -> Ast.Tuple (List.map go es)
    | e -> e
  in
  { f with Ast.l_body = go f.Ast.l_body }
