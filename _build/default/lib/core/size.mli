(** Symbolic array lengths.

    Lift array types carry their length as an arithmetic expression over
    named size variables (N, Nx, nB, ...).  Equality — needed by the
    type checker for zip, concat and writeTo — is decided by normalising
    to a sum-of-products polynomial, so e.g.
    [idx + 1 + (N - idx - 1) = N] holds definitionally, which is what
    makes the paper's Concat/Skip scatter rows type-check. *)

type t =
  | Const of int
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** simplified only when exact; otherwise opaque *)

val const : int -> t
val var : string -> t

(** Smart constructors returning simplified results. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val simplify : t -> t
(** Polynomial normal form (sound w.r.t. {!eval}; property-tested). *)

val equal : t -> t -> bool
(** Equality modulo polynomial normalisation. *)

val eval : (string -> int option) -> t -> int
(** Evaluate under a size-variable environment.
    @raise Failure on unbound variables. *)

val to_int_opt : t -> int option
(** [Some n] iff the size is a constant. *)

val vars : t -> string list
(** Size variables occurring in the expression, sorted, unique. *)

val to_cexpr : t -> Kernel_ast.Cast.expr
(** Lower to a kernel-AST index expression; size variables become scalar
    kernel parameters of the same name. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
