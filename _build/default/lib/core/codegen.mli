(** Lift code generation: lower a typed IR program to a kernel AST.

    Follows the paper's pipeline (§III-A): memory allocation (temporary
    buffers, or aliasing onto inputs under WriteTo), view construction,
    then statement emission.  The new primitives lower as described in
    §IV-B: WriteTo redirects output views; Concat compiles each argument
    against an offset output view; Skip contributes only its (possibly
    dynamic) length; a Map whose body produces rows typed like the
    forced output view writes each row through the whole view — the
    in-place scatter.

    [Map (Glb d)] becomes a guarded NDRange work-item along dimension
    [d]; [Map Seq] and [Reduce] become sequential loops; [Select]
    compiles to a guarded branch when its arms perform memory
    accesses. *)

exception Codegen_error of string

type compiled = {
  kernel : Kernel_ast.Cast.kernel;
  result_ty : Ty.t;
  out_param : string option;
      (** fresh output buffer appended to the parameters, or [None] for
          self-writing (WriteTo) programs *)
  temp_params : (string * Ty.t) list;
      (** temporary buffers the host must allocate *)
  written_params : string list;
      (** parameters the program updates in place *)
}

val written_params_of : Ast.lam -> string list

val compile_kernel :
  ?name:string -> precision:Kernel_ast.Cast.precision -> Ast.lam -> compiled
(** Compile a closed program into a kernel.  Array parameters become
    global buffers named after the parameter; scalar parameters and all
    size variables become scalar kernel parameters; the NDRange extent
    is derived from the lengths of the [Glb] maps.

    @raise Codegen_error on unsupported shapes.
    @raise Typecheck.Type_error on ill-typed programs. *)
