(* Multi-dimensional pattern macros.

   Lift expresses 2D/3D stencil neighbourhoods as compositions of the 1D
   primitives (paper §III-B uses slide3/pad3): sliding along each
   dimension in turn and transposing the window dimensions into place.

     slide2 n s = map transpose . slide n s . map (slide n s)
     slide3 n s = map (map transpose . transpose)
                . slide n s
                . map (slide2 n s)          -- with one more transpose step

   Because transposes and slides only build views, none of this moves
   data: a [slide3] neighbourhood access collapses to a single linear
   index expression in the generated code.

   Every macro needs the argument's (array) type to build the
   intermediate lambdas, passed explicitly as [ty]. *)

let map_with ty f a =
  (* map over an array of element type [ty] *)
  Ast.map (Ast.lam1 ty f) a

(* Type transformers mirroring the value-level combinators. *)
let slide_ty sz st (t : Ty.t) =
  match t with
  | Ty.Array (elt, n) ->
      let wins = Size.add (Size.div (Size.sub n (Size.const sz)) (Size.const st)) (Size.const 1) in
      Ty.Array (Ty.Array (elt, Size.const sz), wins)
  | _ -> invalid_arg "Macros.slide_ty"

let transpose_ty (t : Ty.t) =
  match t with
  | Ty.Array (Ty.Array (elt, m), n) -> Ty.Array (Ty.Array (elt, n), m)
  | _ -> invalid_arg "Macros.transpose_ty"

let pad_ty l r (t : Ty.t) =
  match t with
  | Ty.Array (elt, n) -> Ty.Array (elt, Size.add n (Size.const (l + r)))
  | _ -> invalid_arg "Macros.pad_ty"

let elt_ty (t : Ty.t) = Ty.element t

(* slide2 over [n][m]t: [nw][mw][sz][sz]t *)
let slide2 sz st ~ty a =
  let row_ty = elt_ty ty in
  (* s1 : [n][mw][sz] *)
  let s1 = map_with row_ty (fun row -> Ast.Slide (sz, st, row)) a in
  let s1_elt = slide_ty sz st row_ty in
  (* s2 : [nw][sz][mw][sz] *)
  let s2 = Ast.Slide (sz, st, s1) in
  ignore s1_elt;
  (* transpose each outer window: [nw][mw][sz][sz] *)
  let win_ty = Ty.Array (slide_ty sz st row_ty, Size.const sz) in
  map_with win_ty (fun w -> Ast.Transpose w) s2

let windows sz st n =
  Size.add (Size.div (Size.sub n (Size.const sz)) (Size.const st)) (Size.const 1)

(* type of slide2 applied to a 2D array: [n][m]t -> [nw][mw][sz][sz]t *)
let slide2_ty sz st (t : Ty.t) =
  match t with
  | Ty.Array ((Ty.Array (cell, m) as _row), n) ->
      let win2 = Ty.array_n (Ty.array_n cell sz) sz in
      Ty.array (Ty.array win2 (windows sz st m)) (windows sz st n)
  | _ -> invalid_arg "Macros.slide2_ty"

(* slide3 over [p][n][m]t: [pw][nw][mw][sz][sz][sz]t *)
let slide3 sz st ~ty a =
  let slice_ty = elt_ty ty in
  (* per z-slice 2D windows: [p][nw][mw][sz][sz] *)
  let s1 = map_with slice_ty (fun slice -> slide2 sz st ~ty:slice_ty slice) a in
  let slice2_ty = slide2_ty sz st slice_ty in
  (* slide on z: [pw][sz][nw][mw][sz][sz] *)
  let s2 = Ast.Slide (sz, st, s1) in
  (* move the z-window dimension inward:
     transpose (sz, nw): [pw][nw][sz][mw][sz][sz]
     then per row transpose (sz, mw): [pw][nw][mw][sz][sz][sz] *)
  let outer_win_ty = Ty.Array (slice2_ty, Size.const sz) in
  map_with outer_win_ty
    (fun w ->
      let t1 = Ast.Transpose w (* [nw][sz][mw]... *) in
      let row_of_t1 =
        match transpose_ty outer_win_ty with
        | Ty.Array (r, _) -> r
        | _ -> assert false
      in
      map_with row_of_t1 (fun r -> Ast.Transpose r) t1)
    s2

(* pad2/pad3: zero-style uniform fill [c] on every side of every
   dimension (scalar constants fill array elements uniformly). *)
let pad2 l r c ~ty a =
  let row_ty = elt_ty ty in
  Ast.Pad (l, r, c, map_with row_ty (fun row -> Ast.Pad (l, r, c, row)) a)

let pad3 l r c ~ty a =
  let slice_ty = elt_ty ty in
  Ast.Pad (l, r, c, map_with slice_ty (fun s -> pad2 l r c ~ty:slice_ty s) a)
