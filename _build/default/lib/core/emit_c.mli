(** Emission of a complete, compilable OpenCL host program ([.c]) for a
    compiled host plan: kernel sources embedded as string literals,
    buffer creation, argument setup, profiled NDRange launches and
    read-back.  Buildable with [cc prog.c -lOpenCL]; host data arrays
    are zero-initialised with marked hooks. *)

val host_program : ?precision:Kernel_ast.Cast.precision -> Host.compiled_host -> string
