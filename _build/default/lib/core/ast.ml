(* The Lift intermediate representation.

   The classic pattern language (map, reduce, zip, slide, pad, split,
   join) plus the extensions this paper contributes for complex boundary
   conditions (paper §IV, Table I):

   - [Write_to]   — redirect the output view of an expression to an
                    existing buffer, enabling in-place updates;
   - [Concat]     — concatenate arrays; gives each argument an offset
                    output view;
   - [Skip]       — a no-op array of a given length, used inside Concat
                    to position writes;
   - [Array_cons] — an n-element array built from one repeated value.

   Scalar computation is embedded directly (literals, binops, select,
   math builtins) rather than through opaque user functions: this keeps
   the interpreter, type checker and code generator total over the
   language.  Parameters carry unique ids so substitution is
   capture-avoiding by construction. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Neg
  | Not
  | To_real
  | To_int

type mode =
  | Seq        (* sequential loop *)
  | Glb of int (* one work-item per element along NDRange dimension d *)

type param = {
  p_id : int;
  p_name : string;
  p_ty : Ty.t;
}

type expr =
  | Param of param
  | Int_lit of int
  | Real_lit of float
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Select of expr * expr * expr          (* scalar conditional *)
  | Call of Kernel_ast.Cast.builtin * expr list
  | Tuple of expr list
  | Get of expr * int                     (* tuple projection *)
  | Let of param * expr * expr
  | Map of mode * lam * expr
  | Reduce of lam * expr * expr           (* f, init, array *)
  | Zip of expr list
  | Slide of int * int * expr             (* window size, step *)
  | Pad of int * int * expr * expr        (* left, right, constant, array *)
  | Split of Size.t * expr
  | Join of expr
  | Iota of Size.t                        (* [0; 1; ...; n-1] *)
  | Size_val of Size.t                    (* the integer value of a size *)
  | Array_access of expr * expr           (* array, index *)
  | Concat of expr list
  (* Skip carries a symbolic length for the type checker and, when the
     length is value-dependent (the paper's Skip(Float, idx)), the runtime
     expression computing it.  The symbolic length then uses an opaque
     size variable that cancels in the surrounding Concat. *)
  | Skip of Ty.t * Size.t * expr option
  | Array_cons of expr * int
  | Write_to of expr * expr               (* target, value *)
  | To_private of expr                    (* stage a small array in private memory *)
  | Build of Size.t * lam                 (* array built lazily from an index function *)
  | Transpose of expr                     (* swap the outer two dimensions *)

and lam = {
  l_params : param list;
  l_body : expr;
}

let counter = ref 0

let fresh_param ?(name = "x") ty =
  incr counter;
  { p_id = !counter; p_name = Printf.sprintf "%s_%d" name !counter; p_ty = ty }

(* A parameter whose generated-code name is exactly [name]; used for
   kernel arguments, where the paper's naming convention matters. *)
let named_param name ty =
  incr counter;
  { p_id = !counter; p_name = name; p_ty = ty }

let lam1 ?name ty f =
  let p = fresh_param ?name ty in
  { l_params = [ p ]; l_body = f (Param p) }

let lam2 ?(name1 = "a") ?(name2 = "b") ty1 ty2 f =
  let p1 = fresh_param ~name:name1 ty1 in
  let p2 = fresh_param ~name:name2 ty2 in
  { l_params = [ p1; p2 ]; l_body = f (Param p1) (Param p2) }

(* Convenience operators for scalar code in the IR. *)
let ( +! ) a b = Binop (Add, a, b)
let ( -! ) a b = Binop (Sub, a, b)
let ( *! ) a b = Binop (Mul, a, b)
let ( /! ) a b = Binop (Div, a, b)
let ( %! ) a b = Binop (Mod, a, b)
let ( <! ) a b = Binop (Lt, a, b)
let ( <=! ) a b = Binop (Le, a, b)
let ( >! ) a b = Binop (Gt, a, b)
let ( >=! ) a b = Binop (Ge, a, b)
let ( =! ) a b = Binop (Eq, a, b)
let ( <>! ) a b = Binop (Ne, a, b)
let ( &&! ) a b = Binop (And, a, b)
let ( ||! ) a b = Binop (Or, a, b)
let int n = Int_lit n
let real r = Real_lit r
let to_real e = Unop (To_real, e)

let let_ ?name ty value body =
  let p = fresh_param ?name ty in
  Let (p, value, body (Param p))

let map ?(mode = Seq) f arg = Map (mode, f, arg)
let map_glb ?(dim = 0) f arg = Map (Glb dim, f, arg)

let build ?name n f =
  let p = fresh_param ?name Ty.int in
  Build (n, { l_params = [ p ]; l_body = f (Param p) })

let skip ty n = Skip (ty, n, None)

(* A value-dependent skip: [sym] is the opaque symbolic length used by
   the type checker (it must cancel in the surrounding Concat); [len]
   computes the actual offset at run time. *)
let skip_dyn ty ~sym len = Skip (ty, sym, Some len)

(* The paper's in-place scatter idiom (§IV-B2):

     Concat(Skip(idx), value-of-one-element, Skip(N - 1 - idx))

   writes [value] at position [index] of an array of symbolic length [n],
   leaving every other element untouched.  [sym] names the opaque
   symbolic skip length, which cancels against the trailing skip so the
   row types as an array of length [n]. *)
let scatter_row ~elt_ty ~n ~sym ~index value =
  let s = Size.var sym in
  Concat
    [
      skip_dyn elt_ty ~sym:s index;
      Array_cons (value, 1);
      skip_dyn elt_ty
        ~sym:(Size.sub (Size.sub n s) (Size.const 1))
        (Binop (Sub, Binop (Sub, Size_val n, index), Int_lit 1));
    ]

(* Substitute parameters by expressions (capture-avoiding thanks to
   globally unique parameter ids). *)
let rec subst (s : (int * expr) list) (e : expr) : expr =
  match e with
  | Param p -> ( match List.assoc_opt p.p_id s with Some e' -> e' | None -> e)
  | Int_lit _ | Real_lit _ | Iota _ | Size_val _ -> e
  | Skip (t, n, len) -> Skip (t, n, Option.map (subst s) len)
  | Binop (op, a, b) -> Binop (op, subst s a, subst s b)
  | Unop (op, a) -> Unop (op, subst s a)
  | Select (c, a, b) -> Select (subst s c, subst s a, subst s b)
  | Call (f, args) -> Call (f, List.map (subst s) args)
  | Tuple es -> Tuple (List.map (subst s) es)
  | Get (a, i) -> Get (subst s a, i)
  | Let (p, v, b) -> Let (p, subst s v, subst s b)
  | Map (m, f, a) -> Map (m, subst_lam s f, subst s a)
  | Reduce (f, init, a) -> Reduce (subst_lam s f, subst s init, subst s a)
  | Zip es -> Zip (List.map (subst s) es)
  | Slide (sz, st, a) -> Slide (sz, st, subst s a)
  | Pad (l, r, c, a) -> Pad (l, r, subst s c, subst s a)
  | Split (n, a) -> Split (n, subst s a)
  | Join a -> Join (subst s a)
  | Array_access (a, i) -> Array_access (subst s a, subst s i)
  | Concat es -> Concat (List.map (subst s) es)
  | Array_cons (a, n) -> Array_cons (subst s a, n)
  | Write_to (t, v) -> Write_to (subst s t, subst s v)
  | To_private a -> To_private (subst s a)
  | Build (n, f) -> Build (n, subst_lam s f)
  | Transpose a -> Transpose (subst s a)

and subst_lam s f =
  let s = List.filter (fun (id, _) -> not (List.exists (fun p -> p.p_id = id) f.l_params)) s in
  { f with l_body = subst s f.l_body }

(* Apply a unary lambda by substitution (beta reduction). *)
let apply1 f arg =
  match f.l_params with
  | [ p ] -> subst [ (p.p_id, arg) ] f.l_body
  | _ -> invalid_arg "Ast.apply1: lambda is not unary"

let apply2 f a b =
  match f.l_params with
  | [ p; q ] -> subst [ (p.p_id, a); (q.p_id, b) ] f.l_body
  | _ -> invalid_arg "Ast.apply2: lambda is not binary"

(* Compose unary lambdas: (compose f g) x = f (g x). *)
let compose f g =
  match g.l_params with
  | [ p ] -> { l_params = [ p ]; l_body = apply1 f g.l_body }
  | _ -> invalid_arg "Ast.compose: lambdas must be unary"

(* Structural size of an expression; used to bound rewriting. *)
let rec size = function
  | Param _ | Int_lit _ | Real_lit _ | Iota _ | Skip _ | Size_val _ -> 1
  | Unop (_, a) | Get (a, _) | Join a | Array_cons (a, _) -> 1 + size a
  | Split (_, a) | Slide (_, _, a) -> 1 + size a
  | Binop (_, a, b) | Array_access (a, b) | Write_to (a, b) -> 1 + size a + size b
  | Select (a, b, c) -> 1 + size a + size b + size c
  | Pad (_, _, b, c) -> 1 + size b + size c
  | Call (_, es) | Tuple es | Zip es | Concat es -> List.fold_left (fun n e -> n + size e) 1 es
  | Let (_, v, b) -> 1 + size v + size b
  | To_private a -> 1 + size a
  | Build (_, f) -> 1 + size f.l_body
  | Transpose a -> 1 + size a
  | Map (_, f, a) -> 1 + size f.l_body + size a
  | Reduce (f, i, a) -> 1 + size f.l_body + size i + size a

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let mode_name = function Seq -> "mapSeq" | Glb d -> Printf.sprintf "mapGlb(%d)" d

let rec pp ppf (e : expr) =
  match e with
  | Param p -> Fmt.string ppf p.p_name
  | Int_lit n -> Fmt.int ppf n
  | Real_lit r -> Fmt.float ppf r
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Unop (Neg, a) -> Fmt.pf ppf "(-%a)" pp a
  | Unop (Not, a) -> Fmt.pf ppf "(!%a)" pp a
  | Unop (To_real, a) -> Fmt.pf ppf "real(%a)" pp a
  | Unop (To_int, a) -> Fmt.pf ppf "int(%a)" pp a
  | Select (c, a, b) -> Fmt.pf ppf "select(%a, %a, %a)" pp c pp a pp b
  | Call (f, args) ->
      Fmt.pf ppf "%s(%a)" (Kernel_ast.Print.builtin_name f) Fmt.(list ~sep:comma pp) args
  | Tuple es -> Fmt.pf ppf "Tuple(%a)" Fmt.(list ~sep:comma pp) es
  | Get (a, i) -> Fmt.pf ppf "Get(%a, %d)" pp a i
  | Let (p, v, b) -> Fmt.pf ppf "@[<v>let %s = %a in@,%a@]" p.p_name pp v pp b
  | Map (m, f, a) -> Fmt.pf ppf "@[<hov 2>%s(%a,@ %a)@]" (mode_name m) pp_lam f pp a
  | Reduce (f, i, a) -> Fmt.pf ppf "@[<hov 2>reduce(%a,@ %a,@ %a)@]" pp_lam f pp i pp a
  | Zip es -> Fmt.pf ppf "zip(%a)" Fmt.(list ~sep:comma pp) es
  | Slide (sz, st, a) -> Fmt.pf ppf "slide(%d, %d, %a)" sz st pp a
  | Pad (l, r, c, a) -> Fmt.pf ppf "pad(%d, %d, %a, %a)" l r pp c pp a
  | Split (n, a) -> Fmt.pf ppf "split(%a, %a)" Size.pp n pp a
  | Join a -> Fmt.pf ppf "join(%a)" pp a
  | Iota n -> Fmt.pf ppf "iota(%a)" Size.pp n
  | Size_val n -> Fmt.pf ppf "sizeVal(%a)" Size.pp n
  | Array_access (a, i) -> Fmt.pf ppf "%a[%a]" pp a pp i
  | Concat es -> Fmt.pf ppf "@[<hov 2>concat(%a)@]" Fmt.(list ~sep:comma pp) es
  | Skip (t, n, None) -> Fmt.pf ppf "skip<%a>(%a)" Ty.pp t Size.pp n
  | Skip (t, _, Some len) -> Fmt.pf ppf "skip<%a>(%a)" Ty.pp t pp len
  | Array_cons (a, n) -> Fmt.pf ppf "arrayCons(%a, %d)" pp a n
  | Write_to (t, v) -> Fmt.pf ppf "@[<hov 2>writeTo(%a,@ %a)@]" pp t pp v
  | To_private a -> Fmt.pf ppf "toPrivate(%a)" pp a
  | Build (n, f) -> Fmt.pf ppf "build(%a, %a)" Size.pp n pp_lam f
  | Transpose a -> Fmt.pf ppf "transpose(%a)" pp a

and pp_lam ppf f =
  Fmt.pf ppf "@[<hov 2>fun(%a) =>@ %a@]"
    Fmt.(list ~sep:comma (fun ppf p -> Fmt.pf ppf "%s: %a" p.p_name Ty.pp p.p_ty))
    f.l_params pp f.l_body

let to_string = Fmt.to_to_string pp
