(** Size-aware type checking of Lift IR expressions.

    Types are synthesised bottom-up; array lengths are symbolic and
    compared by polynomial normalisation, so
    [concat(skip(i), cons, skip(N-1-i))] checks against length [N].

    {!constructor:Ast.Write_to} accepts two shapes (paper §IV-B2): plain
    aliasing (value type equals target type) and the scatter idiom (the
    value is an array of rows, each row typed like the target). *)

exception Type_error of string

type env = (int * Ty.t) list
(** Parameter id -> type. *)

val infer : env -> Ast.expr -> Ty.t
(** @raise Type_error on ill-typed expressions. *)

val infer_lam : ?env:env -> Ast.lam -> Ty.t list -> Ty.t
(** Check a lambda against explicit argument types. *)

val infer_program : Ast.lam -> Ty.t
(** Type of a closed program, using the parameters' declared types. *)
