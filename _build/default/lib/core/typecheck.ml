(* Size-aware type checking of Lift IR expressions.

   Types are synthesised bottom-up; array lengths are symbolic
   ([Size.t]) and compared by polynomial normalisation, so e.g.
   concat(skip(i), cons, skip(N-1-i)) checks against length N.

   [Write_to] accepts two shapes (paper §IV-B2):
   - plain aliasing: value type equals target type;
   - the scatter idiom: the value is an *array of rows*, each row typed
     like the target — produced by mapping a Concat/Skip body over an
     index array.  The code generator writes each row in place, so the
     whole expression has the target's type. *)

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type env = (int * Ty.t) list

let rec infer (env : env) (e : Ast.expr) : Ty.t =
  match e with
  | Param p -> (
      match List.assoc_opt p.p_id env with
      | Some t -> t
      | None -> p.p_ty (* free parameters carry their own type *))
  | Int_lit _ -> Ty.int
  | Real_lit _ -> Ty.real
  | Binop (op, a, b) -> (
      let ta = infer env a and tb = infer env b in
      match (ta, tb) with
      | Ty.Scalar sa, Ty.Scalar sb -> (
          match op with
          | Add | Sub | Mul | Div | Mod ->
              if sa = Ty.Real || sb = Ty.Real then Ty.real else Ty.int
          | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> Ty.int)
      | _ ->
          err "binop %s applied to non-scalars %s and %s" (Ast.binop_name op)
            (Ty.to_string ta) (Ty.to_string tb))
  | Unop (op, a) -> (
      let ta = infer env a in
      if not (Ty.is_scalar ta) then err "unop applied to non-scalar %s" (Ty.to_string ta);
      match op with
      | Ast.Neg -> ta
      | Ast.Not | Ast.To_int -> Ty.int
      | Ast.To_real -> Ty.real)
  | Select (c, a, b) ->
      let tc = infer env c and ta = infer env a and tb = infer env b in
      if not (Ty.equal tc Ty.int) then err "select condition must be int";
      if not (Ty.equal ta tb) then
        err "select branches differ: %s vs %s" (Ty.to_string ta) (Ty.to_string tb);
      ta
  | Call (_, args) ->
      List.iter
        (fun a ->
          let t = infer env a in
          if not (Ty.is_scalar t) then err "builtin argument must be scalar")
        args;
      Ty.real
  | Tuple es -> Ty.Tuple (List.map (infer env) es)
  | Get (a, i) -> (
      match infer env a with
      | Ty.Tuple ts when i >= 0 && i < List.length ts -> List.nth ts i
      | t -> err "get %d from non-tuple %s" i (Ty.to_string t))
  | Let (p, v, b) ->
      let tv = infer env v in
      infer ((p.p_id, tv) :: env) b
  | Map (_, f, a) -> (
      match (infer env a, f.Ast.l_params) with
      | Ty.Array (elt, n), [ p ] ->
          let tb = infer ((p.p_id, elt) :: env) f.Ast.l_body in
          Ty.Array (tb, n)
      | Ty.Array _, ps -> err "map function must be unary, got %d params" (List.length ps)
      | t, _ -> err "map over non-array %s" (Ty.to_string t))
  | Reduce (f, init, a) -> (
      match (infer env a, f.Ast.l_params) with
      | Ty.Array (elt, _), [ pacc; px ] ->
          let tinit = infer env init in
          let tb = infer ((pacc.p_id, tinit) :: (px.p_id, elt) :: env) f.Ast.l_body in
          if not (Ty.equal tb tinit) then
            err "reduce function returns %s but accumulator is %s" (Ty.to_string tb)
              (Ty.to_string tinit);
          tinit
      | Ty.Array _, ps -> err "reduce function must be binary, got %d params" (List.length ps)
      | t, _ -> err "reduce over non-array %s" (Ty.to_string t))
  | Zip es -> (
      let ts = List.map (infer env) es in
      match ts with
      | [] -> err "zip of nothing"
      | Ty.Array (_, n) :: _ ->
          let elts =
            List.map
              (function
                | Ty.Array (elt, m) ->
                    if not (Size.equal m n) then
                      err "zip length mismatch: %s vs %s" (Size.to_string m)
                        (Size.to_string n);
                    elt
                | t -> err "zip of non-array %s" (Ty.to_string t))
              ts
          in
          Ty.Array (Ty.Tuple elts, n)
      | t :: _ -> err "zip of non-array %s" (Ty.to_string t))
  | Slide (sz, st, a) -> (
      match infer env a with
      | Ty.Array (elt, n) ->
          (* number of windows: (n - sz) / st + 1 *)
          let wins = Size.add (Size.div (Size.sub n (Size.const sz)) (Size.const st)) (Size.const 1) in
          Ty.Array (Ty.Array (elt, Size.const sz), wins)
      | t -> err "slide over non-array %s" (Ty.to_string t))
  | Pad (l, r, c, a) -> (
      match infer env a with
      | Ty.Array (elt, n) ->
          let tc = infer env c in
          (* a scalar constant is accepted as a uniform fill even for
             array elements (zero halos of multi-dimensional pads) *)
          let uniform_fill = Ty.is_scalar tc && Ty.leaf_scalar elt = Ty.leaf_scalar tc in
          if not (Ty.equal tc elt || uniform_fill) then
            err "pad constant %s does not match element %s" (Ty.to_string tc)
              (Ty.to_string elt);
          Ty.Array (elt, Size.add n (Size.const (l + r)))
      | t -> err "pad over non-array %s" (Ty.to_string t))
  | Split (m, a) -> (
      match infer env a with
      | Ty.Array (elt, n) -> Ty.Array (Ty.Array (elt, m), Size.div n m)
      | t -> err "split of non-array %s" (Ty.to_string t))
  | Join a -> (
      match infer env a with
      | Ty.Array (Ty.Array (elt, m), n) -> Ty.Array (elt, Size.mul n m)
      | t -> err "join of non-nested-array %s" (Ty.to_string t))
  | Iota n -> Ty.Array (Ty.int, n)
  | Size_val _ -> Ty.int
  | Array_access (a, i) -> (
      let ti = infer env i in
      if not (Ty.equal ti Ty.int) then err "array index must be int, got %s" (Ty.to_string ti);
      match infer env a with
      | Ty.Array (elt, _) -> elt
      | t -> err "indexing non-array %s" (Ty.to_string t))
  | Concat es -> (
      let ts = List.map (infer env) es in
      match ts with
      | [] -> err "concat of nothing"
      | Ty.Array (elt, n0) :: rest ->
          let total =
            List.fold_left
              (fun acc t ->
                match t with
                | Ty.Array (e, n) ->
                    if not (Ty.equal e elt) then
                      err "concat element mismatch: %s vs %s" (Ty.to_string e)
                        (Ty.to_string elt);
                    Size.add acc n
                | t -> err "concat of non-array %s" (Ty.to_string t))
              n0 rest
          in
          Ty.Array (elt, total)
      | t :: _ -> err "concat of non-array %s" (Ty.to_string t))
  | Skip (t, n, len) ->
      (match len with
      | Some l ->
          let tl = infer env l in
          if not (Ty.equal tl Ty.int) then err "dynamic skip length must be int"
      | None -> ());
      Ty.Array (t, n)
  | Array_cons (a, n) -> Ty.Array (infer env a, Size.const n)
  | Build (n, f) -> (
      match f.Ast.l_params with
      | [ p ] -> Ty.Array (infer ((p.Ast.p_id, Ty.int) :: env) f.Ast.l_body, n)
      | _ -> err "build function must be unary")
  | Transpose a -> (
      match infer env a with
      | Ty.Array (Ty.Array (t, m), n) -> Ty.Array (Ty.Array (t, n), m)
      | t -> err "transpose of non-2D %s" (Ty.to_string t))
  | To_private a -> (
      match infer env a with
      | Ty.Array (Ty.Scalar _, n) as t ->
          (match Size.to_int_opt n with
          | Some _ -> t
          | None -> err "toPrivate requires a statically sized array")
      | t -> err "toPrivate of %s (need an array of scalars)" (Ty.to_string t))
  | Write_to (target, value) -> (
      let tt = infer env target and tv = infer env value in
      if Ty.equal tt tv then tt
      else
        match tv with
        | Ty.Array (row, _) when Ty.equal row tt -> tt (* scatter idiom *)
        | _ ->
            err "writeTo target %s incompatible with value %s" (Ty.to_string tt)
              (Ty.to_string tv))

(* Check a lambda against explicit argument types and return its result
   type. *)
let infer_lam ?(env = []) (f : Ast.lam) (arg_tys : Ty.t list) : Ty.t =
  if List.length f.Ast.l_params <> List.length arg_tys then
    err "lambda arity mismatch: %d params, %d arguments" (List.length f.Ast.l_params)
      (List.length arg_tys);
  let env =
    List.fold_left2 (fun env p t -> (p.Ast.p_id, t) :: env) env f.Ast.l_params arg_tys
  in
  infer env f.Ast.l_body

(* Type of a closed lambda using the parameters' declared types. *)
let infer_program (f : Ast.lam) : Ty.t =
  infer_lam f (List.map (fun p -> p.Ast.p_ty) f.Ast.l_params)
