(** The Lift view system.

    Views are the compiler-intermediate data structures that capture
    where data lives and how index expressions are derived from pattern
    composition (paper §III-A).  Patterns like zip, slide, pad, split
    never move data — they only wrap views; indices are materialised
    when a scalar is finally read or written.

    The paper's extensions surface as {!constructor:Shift_v} (the
    ViewOffset produced by Concat and Skip) and as writing {e through} a
    view onto an existing buffer (WriteTo). *)

open Kernel_ast

exception View_error of string

type t =
  | Scalar of Cast.expr                (** a computed scalar value *)
  | Mem of mem                         (** (part of) a linear buffer *)
  | Tuple_v of t list
  | Zip_v of t list                    (** array of tuples, element-wise *)
  | Slide_v of int * int * t           (** window size, step *)
  | Pad_v of pad
  | Split_v of Size.t * t
  | Join_v of Size.t * t               (** m = inner size *)
  | Shift_v of Cast.expr * t           (** element i = inner element (i + off) *)
  | Guard_v of Cast.expr * Cast.expr * t  (** cond ? constant : inner *)
  | Gen_v of (Cast.expr -> t)          (** generated array (Iota, Build) *)
  | Transpose_v of t                   (** swap the outer two dimensions *)
  | Transpose_col_v of t * Cast.expr   (** column i of a transposed view *)

and mem = {
  m_buf : string;
  m_ty : Ty.t;        (** type of the value this view denotes *)
  m_off : Cast.expr;  (** linear offset into the buffer, in elements *)
}

and pad = {
  p_left : int;
  p_const : Cast.expr;
  p_len : Size.t;
  p_inner : t;
}

val mem : ?off:Cast.expr -> string -> Ty.t -> t
val scalar : Cast.expr -> t
val pad_v : left:int -> len:Size.t -> const:Cast.expr -> t -> t

val access : t -> Cast.expr -> t
(** Element [i] of an array view.  For memory views this linearises the
    index using the element type's scalar count; for pattern views it
    pushes the access through the pattern. *)

val tuple_get : t -> int -> t

val read : t -> Cast.expr
(** The scalar a fully collapsed view denotes.
    @raise View_error if the view is not scalar. *)

val write : t -> Cast.expr -> Cast.stmt
(** Store through a fully collapsed output view.
    @raise View_error if the view is not a buffer location. *)

val base_buffer : t -> string option
(** The buffer a memory view ultimately lives in, if any. *)
