(* The Lift view system.

   Views are the compiler-intermediate data structures that capture where
   data lives and how index expressions are derived from pattern
   composition (paper §III-A).  An input view describes where an
   expression's value is read from; an output view describes where a
   value must be written.  Patterns like zip, slide, pad, split never
   move data — they only wrap views; indices are materialised when a
   scalar is finally read or written.

   The extensions of the paper surface here as:
   - [Shift] (produced by Concat and by Skip's offsets and by slide
     windows): adds an offset to subsequent accesses — the paper's
     ViewOffset;
   - writing *through* a view onto an existing buffer implements
     [WriteTo]. *)

open Kernel_ast

exception View_error of string

let err fmt = Printf.ksprintf (fun s -> raise (View_error s)) fmt

type t =
  | Scalar of Cast.expr               (* a computed scalar value *)
  | Mem of mem                        (* (part of) a linear memory buffer *)
  | Tuple_v of t list                 (* tuple of views *)
  | Zip_v of t list                   (* array of tuples, element-wise *)
  | Slide_v of int * int * t          (* window size, step *)
  | Pad_v of pad                      (* constant-padded array *)
  | Split_v of Size.t * t             (* [n/m][m] nesting *)
  | Join_v of Size.t * t              (* flattened nested array; m = inner size *)
  | Shift_v of Cast.expr * t          (* element i of this = element (i + off) of inner *)
  | Guard_v of Cast.expr * Cast.expr * t (* if cond then constant else inner *)
  | Gen_v of (Cast.expr -> t)         (* generated array: element i = f i *)
  | Transpose_v of t                  (* swap the outer two dimensions *)
  | Transpose_col_v of t * Cast.expr  (* column i of a transposed view *)

and mem = {
  m_buf : string;
  m_ty : Ty.t;          (* type of the value this view denotes *)
  m_off : Cast.expr;    (* linear offset (in scalar elements) into the buffer *)
}

and pad = {
  p_left : int;
  p_const : Cast.expr;   (* scalar padding constant *)
  p_len : Size.t;        (* inner array length *)
  p_inner : t;
}

let mem ?(off = Cast.Int_lit 0) buf ty = Mem { m_buf = buf; m_ty = ty; m_off = off }

let scalar e = Scalar e

(* Access element [i] of an array view, producing the element's view. *)
let rec access (v : t) (i : Cast.expr) : t =
  match v with
  | Scalar _ -> err "access into scalar view"
  | Mem m -> (
      match m.m_ty with
      | Ty.Array (elt, _) -> (
          let stride = Size.to_cexpr (Ty.scalar_count elt) in
          let off = Cast.(m.m_off +: (i *: stride)) in
          match elt with
          | Ty.Scalar _ -> Scalar (Cast.Load (m.m_buf, Cast.simplify off))
          | _ -> Mem { m with m_ty = elt; m_off = off })
      | t -> err "access into memory view of non-array type %s" (Ty.to_string t))
  | Tuple_v _ -> err "access into tuple view"
  | Zip_v vs -> Tuple_v (List.map (fun v -> access v i) vs)
  | Slide_v (_, step, inner) -> Shift_v (Cast.(i *: Cast.Int_lit step), inner)
  | Pad_v p ->
      let n = Size.to_cexpr p.p_len in
      let cond = Cast.((i <: Int_lit p.p_left) ||: (i >=: (Int_lit p.p_left +: n))) in
      let inner_elt () = access p.p_inner Cast.(i -: Int_lit p.p_left) in
      guard cond p.p_const (inner_elt ())
  | Split_v (m, inner) -> Shift_v (Cast.(i *: Size.to_cexpr m), inner)
  | Join_v (m, inner) ->
      let mc = Size.to_cexpr m in
      access (access inner Cast.(i /: mc)) Cast.(i %: mc)
  | Shift_v (off, inner) -> access inner (Cast.simplify Cast.(off +: i))
  | Guard_v (cond, c, inner) -> guard cond c (access inner i)
  | Gen_v f -> f i
  | Transpose_v inner -> Transpose_col_v (inner, i)
  | Transpose_col_v (inner, col) -> access (access inner i) col

and guard cond c inner =
  match inner with
  | Scalar e -> Scalar (Cast.Ternary (cond, c, e))
  | _ -> Guard_v (cond, c, inner)

let pad_v ~left ~len ~const inner = Pad_v { p_left = left; p_const = const; p_len = len; p_inner = inner }

let tuple_get (v : t) (i : int) : t =
  match v with
  | Tuple_v vs when i < List.length vs -> List.nth vs i
  | _ -> err "tuple projection %d from non-tuple view" i

(* Read the scalar value a fully collapsed view denotes. *)
let read (v : t) : Cast.expr =
  match v with
  | Scalar e -> Cast.simplify e
  | Mem { m_ty = Ty.Scalar _; m_buf; m_off } ->
      (* a memory view can denote a single scalar cell *)
      Cast.Load (m_buf, Cast.simplify m_off)
  | _ -> err "view does not denote a scalar"

(* Write [e] through a fully collapsed output view.  Output views are
   built only from memory, accesses and offsets, so they always collapse
   to a buffer location. *)
let write (v : t) (e : Cast.expr) : Cast.stmt =
  match v with
  | Scalar (Cast.Load (buf, idx)) -> Cast.Store (buf, Cast.simplify idx, e)
  | Mem { m_ty = Ty.Scalar _; m_buf; m_off } -> Cast.Store (m_buf, Cast.simplify m_off, e)
  | _ -> err "output view does not denote a writable location"

(* The buffer a memory view ultimately lives in, if any; used by WriteTo
   to alias outputs onto inputs. *)
let rec base_buffer = function
  | Mem m -> Some m.m_buf
  | Shift_v (_, v)
  | Guard_v (_, _, v)
  | Slide_v (_, _, v)
  | Split_v (_, v)
  | Join_v (_, v)
  | Transpose_v v
  | Transpose_col_v (v, _) ->
      base_buffer v
  | Pad_v p -> base_buffer p.p_inner
  | Scalar (Cast.Load (b, _)) -> Some b
  | _ -> None
