(** Semantic-preserving rewrite rules.

    Lift optimises by rewriting a single high-level program into
    different low-level forms (paper §III).  Every rule is checked
    against the interpreter by the test suite, including on random
    pipelines. *)

type rule = {
  r_name : string;
  r_apply : Ast.expr -> Ast.expr option;
}

val rule : string -> (Ast.expr -> Ast.expr option) -> rule

val fuse_map_map : rule
(** [map f (map g x) ~> map (f . g) x] *)

val split_join_id : rule
(** [join (split n x) ~> x] *)

val join_split_id : rule
(** [split n (join x) ~> x] *)

val concat_single : rule
val transpose_transpose_id : rule
val pad_zero : rule
val select_same : rule

val default_rules : rule list

val apply_everywhere : rule -> Ast.expr -> Ast.expr * bool
(** Apply at every node, bottom-up, once; reports whether anything
    fired. *)

val normalize : ?rules:rule list -> ?fuel:int -> Ast.expr -> Ast.expr
(** Apply a rule set to a fixpoint (bounded by [fuel] sweeps). *)

val normalize_lam : ?rules:rule list -> ?fuel:int -> Ast.lam -> Ast.lam

val lower_outer_map_to_glb : ?dim:int -> Ast.lam -> Ast.lam
(** Parallelise the outermost sequential map onto NDRange dimension
    [dim]: the rewrite that turns a high-level program into a GPU
    kernel. *)
