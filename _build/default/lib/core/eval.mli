(** Reference interpreter for the Lift IR.

    Gives the IR a semantics independent of the code generator; the test
    suite checks that compiling a program and running it on the virtual
    GPU produces the same values as evaluating it here.

    Array values are mutable OCaml structures shared with the caller;
    {!constructor:Ast.Write_to} assigns through them, so in-place
    updates are observable exactly as OpenCL buffer updates are.
    {!constructor:Ast.Skip} evaluates to [VSkip] sentinels; writing a
    row containing [VSkip] leaves those target cells untouched — the
    paper's Concat/Skip scatter semantics. *)

exception Eval_error of string

type value =
  | VInt of int
  | VReal of float
  | VArr of value array
  | VTup of value list
  | VSkip

val pp_value : Format.formatter -> value -> unit

val as_int : value -> int
val as_real : value -> float
val as_arr : value -> value array

val run : ?sizes:(string -> int option) -> Ast.lam -> value list -> value
(** Bind each lambda parameter to the corresponding value and evaluate
    the body.  Array arguments are shared: in-place writes are visible
    to the caller afterwards.  [sizes] resolves size variables
    (Iota/Split/Skip lengths).

    @raise Eval_error on runtime errors (unbound names, out-of-bounds
    accesses, shape mismatches). *)

(** {1 Conversions} *)

val of_float_array : float array -> value
val of_int_array : int array -> value
val to_float_array : value -> float array
val to_int_array : value -> int array
