lib/kernel_ast/cast.ml: List Option
