lib/kernel_ast/cast.mli:
