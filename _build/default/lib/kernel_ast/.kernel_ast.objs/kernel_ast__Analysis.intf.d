lib/kernel_ast/analysis.mli: Cast Format Hashtbl
