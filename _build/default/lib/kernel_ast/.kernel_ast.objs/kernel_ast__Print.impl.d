lib/kernel_ast/print.ml: Buffer Cast List Printf String
