lib/kernel_ast/analysis.ml: Cast Fmt Hashtbl List
