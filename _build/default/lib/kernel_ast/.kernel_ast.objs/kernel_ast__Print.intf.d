lib/kernel_ast/print.mli: Cast
