lib/lift_acoustics/programs.mli: Ast Codegen Kernel_ast Lift Size Ty
