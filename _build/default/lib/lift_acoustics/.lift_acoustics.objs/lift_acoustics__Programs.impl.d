lib/lift_acoustics/programs.ml: Ast Codegen Lift Macros Rewrite Size Ty
