(* Host-side runtime: executes the operation plans produced by the Lift
   host code generator (kernel launches, host<->device transfers).

   Device memory is simulated as unified memory, so a transfer is a
   bookkeeping event (bytes counted for the transfer statistics) rather
   than a copy; kernel launches dispatch to either the reference
   interpreter or the JIT. *)

open Kernel_ast

type arg =
  | A_buf of string
  | A_int of int
  | A_real of float

type op =
  | Alloc of { name : string; ty : Cast.ty; elems : int }
  | Copy_to_gpu of string
  | Copy_to_host of string
  | Launch of { kernel : Cast.kernel; args : arg list; global : int list }
  | Swap of string * string
      (* exchange two buffer bindings: the host-side pointer rotation
         between time steps *)

type plan = op list

type engine =
  | Interp
  | Jit

type t = {
  buffers : (string, Buffer.t) Hashtbl.t;
  jit_cache : (string, Jit.compiled) Hashtbl.t;
  engine : engine;
  mutable launches : int;
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
}

let create ?(engine = Jit) () =
  {
    buffers = Hashtbl.create 16;
    jit_cache = Hashtbl.create 8;
    engine;
    launches = 0;
    h2d_bytes = 0;
    d2h_bytes = 0;
  }

let bind t name buf = Hashtbl.replace t.buffers name buf

let buffer t name =
  match Hashtbl.find_opt t.buffers name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "vgpu runtime: unknown buffer %s" name)

let buffer_opt t name = Hashtbl.find_opt t.buffers name

let resolve_arg t = function
  | A_buf name -> Args.Buf (buffer t name)
  | A_int i -> Args.Int_arg i
  | A_real r -> Args.Real_arg r

let transfer_bytes buf =
  match buf with
  | Buffer.F a -> 8 * Array.length a
  | Buffer.I a -> 4 * Array.length a

let run_op t = function
  | Swap (a, b) ->
      let ba = buffer t a and bb = buffer t b in
      bind t a bb;
      bind t b ba
  | Alloc { name; ty; elems } ->
      if not (Hashtbl.mem t.buffers name) then bind t name (Buffer.create ty elems)
  | Copy_to_gpu name -> t.h2d_bytes <- t.h2d_bytes + transfer_bytes (buffer t name)
  | Copy_to_host name -> t.d2h_bytes <- t.d2h_bytes + transfer_bytes (buffer t name)
  | Launch { kernel; args; global } -> (
      t.launches <- t.launches + 1;
      let args = List.map (resolve_arg t) args in
      match t.engine with
      | Interp -> Exec.launch kernel ~args ~global
      | Jit ->
          let compiled =
            match Hashtbl.find_opt t.jit_cache kernel.name with
            | Some c when c.Jit.kernel == kernel -> c
            | _ ->
                let c = Jit.compile kernel in
                Hashtbl.replace t.jit_cache kernel.name c;
                c
          in
          Jit.launch compiled ~args ~global)

let run t (plan : plan) = List.iter (run_op t) plan
