(* Device global-memory buffers.

   Numeric execution is IEEE double internally; single-precision kernels
   round on store (see [Exec] and [Jit]) so that float and double runs
   produce genuinely different numerics, as on real hardware. *)

type t =
  | F of float array
  | I of int array

let create_real n = F (Array.make n 0.)
let create_int n = I (Array.make n 0)

let create (ty : Kernel_ast.Cast.ty) n =
  match ty with Real -> create_real n | Int -> create_int n

let of_float_array a = F a
let of_int_array a = I a

let length = function F a -> Array.length a | I a -> Array.length a

let ty = function
  | F _ -> Kernel_ast.Cast.Real
  | I _ -> Kernel_ast.Cast.Int

let get_real t i =
  match t with
  | F a -> a.(i)
  | I a -> float_of_int a.(i)

let get_int t i =
  match t with
  | I a -> a.(i)
  | F a -> int_of_float a.(i)

let set_real t i v =
  match t with
  | F a -> a.(i) <- v
  | I a -> a.(i) <- int_of_float v

let set_int t i v =
  match t with
  | I a -> a.(i) <- v
  | F a -> a.(i) <- float_of_int v

let to_float_array = function
  | F a -> Array.copy a
  | I a -> Array.map float_of_int a

let to_int_array = function
  | I a -> Array.copy a
  | F a -> Array.map int_of_float a

let copy = function F a -> F (Array.copy a) | I a -> I (Array.copy a)

let fill_real t v = match t with F a -> Array.fill a 0 (Array.length a) v | I _ -> invalid_arg "fill_real"

(* Round a double to the nearest representable float32, used to emulate
   single-precision stores. *)
let round32 (x : float) = Int32.float_of_bits (Int32.bits_of_float x)
