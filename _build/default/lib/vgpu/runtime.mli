(** Host-side runtime: executes the operation plans produced by the Lift
    host code generator (kernel launches, host<->device transfers).

    Device memory is simulated as unified memory, so a transfer is a
    bookkeeping event (bytes counted) rather than a copy; launches
    dispatch to the interpreter or the JIT. *)

type arg =
  | A_buf of string  (** resolved against the runtime's buffer table *)
  | A_int of int
  | A_real of float

type op =
  | Alloc of { name : string; ty : Kernel_ast.Cast.ty; elems : int }
  | Copy_to_gpu of string
  | Copy_to_host of string
  | Launch of { kernel : Kernel_ast.Cast.kernel; args : arg list; global : int list }
  | Swap of string * string
      (** exchange two buffer bindings (host pointer rotation between
          time steps) *)

type plan = op list

type engine =
  | Interp
  | Jit

type t = {
  buffers : (string, Buffer.t) Hashtbl.t;
  jit_cache : (string, Jit.compiled) Hashtbl.t;
  engine : engine;
  mutable launches : int;
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
}

val create : ?engine:engine -> unit -> t

val bind : t -> string -> Buffer.t -> unit
(** Bind an input buffer by name before running a plan. *)

val buffer : t -> string -> Buffer.t
(** @raise Failure if the name is unbound. *)

val buffer_opt : t -> string -> Buffer.t option

val run_op : t -> op -> unit
val run : t -> plan -> unit
