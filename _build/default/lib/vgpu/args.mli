(** Kernel launch arguments, matched positionally against kernel
    parameters. *)

type t =
  | Buf of Buffer.t
  | Int_arg of int
  | Real_arg of float

val pp : Format.formatter -> t -> unit
