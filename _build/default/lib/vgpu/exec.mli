(** Reference interpreter for kernel ASTs.

    Executes a kernel over an NDRange exactly as an OpenCL device would,
    one work-item at a time (row-major order).  The kernels in this
    project never communicate through local memory, so sequential
    execution is observationally equivalent to any parallel schedule as
    long as distinct work-items write distinct locations — which the
    generated kernels guarantee.

    This is the slow, obviously-correct engine used to cross-validate
    the JIT and the Lift code generator; benchmarks use {!module:Jit}. *)

val builtin_eval : Kernel_ast.Cast.builtin -> float list -> float
(** Evaluate a math builtin (shared with the Lift IR interpreter). *)

val launch : Kernel_ast.Cast.kernel -> args:Args.t list -> global:int list -> unit
(** Run the kernel over [global] work-items per dimension.  [args] are
    matched positionally against the kernel's parameters; buffer
    arguments are mutated in place.

    @raise Invalid_argument on arity or argument-kind mismatch.
    @raise Failure on unbound names (malformed kernels). *)
