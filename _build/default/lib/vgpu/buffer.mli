(** Device global-memory buffers.

    Numeric execution is IEEE double internally; single-precision kernels
    round on store (see {!module:Exec} and {!module:Jit}) so float and
    double runs produce genuinely different numerics, as on real
    hardware. *)

type t =
  | F of float array
  | I of int array

val create_real : int -> t
val create_int : int -> t
val create : Kernel_ast.Cast.ty -> int -> t

val of_float_array : float array -> t
(** Shares the array: kernel stores are visible to the caller. *)

val of_int_array : int array -> t

val length : t -> int
val ty : t -> Kernel_ast.Cast.ty

val get_real : t -> int -> float
val get_int : t -> int -> int
val set_real : t -> int -> float -> unit
val set_int : t -> int -> int -> unit

val to_float_array : t -> float array
(** Copies. *)

val to_int_array : t -> int array
val copy : t -> t
val fill_real : t -> float -> unit

val round32 : float -> float
(** Round a double to the nearest representable float32; used to emulate
    single-precision stores. *)
