(* Kernel launch arguments, matched positionally against kernel params. *)

type t =
  | Buf of Buffer.t
  | Int_arg of int
  | Real_arg of float

let pp ppf = function
  | Buf b -> Fmt.pf ppf "buf[%d]" (Buffer.length b)
  | Int_arg i -> Fmt.pf ppf "%d" i
  | Real_arg r -> Fmt.pf ppf "%g" r
