lib/vgpu/runtime.mli: Buffer Hashtbl Jit Kernel_ast
