lib/vgpu/device.ml: Kernel_ast List
