lib/vgpu/device.mli: Kernel_ast
