lib/vgpu/buffer.ml: Array Int32 Kernel_ast
