lib/vgpu/jit.ml: Args Array Buffer Float Hashtbl Kernel_ast List Printf
