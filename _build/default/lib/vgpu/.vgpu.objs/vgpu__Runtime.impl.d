lib/vgpu/runtime.ml: Args Array Buffer Cast Exec Hashtbl Jit Kernel_ast List Printf
