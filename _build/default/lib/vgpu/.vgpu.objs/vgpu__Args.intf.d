lib/vgpu/args.mli: Buffer Format
