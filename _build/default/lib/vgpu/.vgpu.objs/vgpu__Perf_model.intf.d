lib/vgpu/perf_model.mli: Device Format Kernel_ast
