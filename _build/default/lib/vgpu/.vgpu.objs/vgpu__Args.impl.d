lib/vgpu/args.ml: Buffer Fmt
