lib/vgpu/exec.ml: Args Array Buffer Float Hashtbl Kernel_ast List Printf Stdlib
