lib/vgpu/buffer.mli: Kernel_ast
