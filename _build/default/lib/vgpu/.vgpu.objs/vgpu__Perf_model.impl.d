lib/vgpu/perf_model.ml: Analysis Cast Device Float Fmt Kernel_ast List
