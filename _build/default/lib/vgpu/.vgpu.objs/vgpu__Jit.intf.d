lib/vgpu/jit.mli: Args Kernel_ast
