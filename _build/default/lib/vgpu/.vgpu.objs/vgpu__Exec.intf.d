lib/vgpu/exec.mli: Args Kernel_ast
