(* Performance-model workloads for the paper's rooms.

   Geometry statistics at the paper's full sizes (up to 73M voxels) are
   computed by the streaming voxel iterator and cached; they provide the
   active point counts and the boundary contiguity that parameterise the
   roofline model. *)

open Acoustics

let n_materials = Array.length Material.defaults

let stats_cache : (Geometry.shape * Geometry.dims, Geometry.stats) Hashtbl.t =
  Hashtbl.create 8

let stats shape dims =
  match Hashtbl.find_opt stats_cache (shape, dims) with
  | Some s -> s
  | None ->
      let s = Geometry.stats shape dims in
      Hashtbl.replace stats_cache (shape, dims) s;
      s

type kind =
  | Volume           (* stencil over the grid *)
  | Fused            (* stencil + naive boundary in one kernel *)
  | Boundary of int  (* boundary handling with [mb] ODE branches (0 = FI) *)

let buffer_elems ~(dims : Geometry.dims) ~n_boundary ~mb =
  let n = Geometry.n_points dims in
  [
    ("prev", n);
    ("curr", n);
    ("next", n);
    ("nbrs", n);
    ("out", n);
    ("bidx", n_boundary);
    ("material", n_boundary);
    ("beta", n_materials);
    ("beta_fd", n_materials);
    ("bi", n_materials * max 1 mb);
    ("d", n_materials * max 1 mb);
    ("f", n_materials * max 1 mb);
    ("di", n_materials * max 1 mb);
    ("g1", max 1 mb * n_boundary);
    ("v2", max 1 mb * n_boundary);
    ("v1", max 1 mb * n_boundary);
  ]

(* Build the perf-model workload for one kernel kind on one room. *)
let workload (kind : kind) shape (dims : Geometry.dims) : Vgpu.Perf_model.workload =
  let s = stats shape dims in
  let mb = match kind with Boundary mb -> mb | _ -> 0 in
  let buffer_elems = buffer_elems ~dims ~n_boundary:s.Geometry.s_boundary ~mb in
  let active_points, contiguity =
    match kind with
    | Volume | Fused -> (float_of_int s.Geometry.s_inside, 1.0)
    | Boundary _ -> (float_of_int s.Geometry.s_boundary, s.Geometry.s_contiguity)
  in
  Vgpu.Perf_model.workload ~buffer_elems ~contiguity ~active_points ()

(* The throughput metric of the paper (§VI): updates per second.  For
   full-grid kernels an update is a grid point; for boundary kernels it
   is a boundary point. *)
let updates (kind : kind) shape dims =
  let s = stats shape dims in
  match kind with
  | Volume | Fused -> float_of_int s.Geometry.s_inside
  | Boundary _ -> float_of_int s.Geometry.s_boundary
