(** Plain-text table rendering for experiment reports. *)

val print_table :
  ?out:out_channel -> title:string -> headers:string list -> string list list -> unit

val ms : float -> string
(** Seconds rendered as milliseconds, 3 decimals. *)

val gups : float -> string
(** Updates/s rendered as gigaupdates/s. *)

val pct : float -> string
val opt_ms : float option -> string
