lib/harness/tuner.ml: Kernel_ast List Vgpu
