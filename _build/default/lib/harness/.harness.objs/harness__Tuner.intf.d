lib/harness/tuner.mli: Kernel_ast Vgpu
