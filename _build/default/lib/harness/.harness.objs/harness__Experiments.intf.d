lib/harness/experiments.mli: Acoustics Kernel_ast
