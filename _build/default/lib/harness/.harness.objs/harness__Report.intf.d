lib/harness/report.mli:
