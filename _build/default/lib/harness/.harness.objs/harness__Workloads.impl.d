lib/harness/workloads.ml: Acoustics Array Geometry Hashtbl Material Vgpu
