lib/harness/workloads.mli: Acoustics Vgpu
