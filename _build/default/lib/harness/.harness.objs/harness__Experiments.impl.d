lib/harness/experiments.ml: Acoustics Float Geometry Hand_kernels Hashtbl Kernel_ast Lift Lift_acoustics List Material Option Paper_data Printf Report Tuner Vgpu Workloads
