(** Work-group size tuning, emulating the paper's protocol (§VI: "All
    benchmarks have been hand-tuned by workgroup size and the best
    result is reported"). *)

val candidate_sizes : int list

type result = {
  best_size : int;
  best_time_s : float;
  sweep : (int * float) list;
}

val tune :
  device:Vgpu.Device.t -> Kernel_ast.Cast.kernel -> Vgpu.Perf_model.workload -> result

val tuned_time :
  device:Vgpu.Device.t -> Kernel_ast.Cast.kernel -> Vgpu.Perf_model.workload -> float
