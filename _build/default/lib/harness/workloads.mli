(** Performance-model workloads for the paper's rooms.  Geometry
    statistics at full paper sizes are computed by the streaming voxel
    iterator and cached. *)

val n_materials : int

val stats : Acoustics.Geometry.shape -> Acoustics.Geometry.dims -> Acoustics.Geometry.stats
(** Cached {!Acoustics.Geometry.stats}. *)

(** What a kernel iterates over. *)
type kind =
  | Volume          (** stencil over the grid *)
  | Fused           (** stencil + naive boundary in one kernel *)
  | Boundary of int (** boundary handling with [mb] ODE branches (0 = FI) *)

val buffer_elems :
  dims:Acoustics.Geometry.dims -> n_boundary:int -> mb:int -> (string * int) list

val workload :
  kind -> Acoustics.Geometry.shape -> Acoustics.Geometry.dims -> Vgpu.Perf_model.workload

val updates : kind -> Acoustics.Geometry.shape -> Acoustics.Geometry.dims -> float
(** The paper's throughput denominator (§VI): grid points for full-grid
    kernels, boundary points for boundary kernels. *)
