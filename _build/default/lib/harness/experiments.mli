(** One generator per table/figure of the paper's evaluation (§VI-VII).

    Each experiment compares the Lift-generated kernel against the
    hand-written one on the four GPUs of Table III, across the three
    rooms of Table II, in both precisions, through the analytic
    performance model — printed next to the paper's reported numbers
    with a shape-agreement summary. *)

type version =
  | Hand
  | Lift_gen

val version_label : version -> string

type result_row = {
  platform : string;
  version : version;
  size : int;
  shape : Acoustics.Geometry.shape;
  precision : Kernel_ast.Cast.precision;
  model_s : float;
  paper_ms : float option;
  throughput : float;  (** updates per second *)
}

val agreement : result_row list -> int * int * float
(** (who-wins agreements, comparable cells, median |log(model/paper)|). *)

val table2 : unit -> unit
(** Table II: room sizes and boundary points, ours vs paper. *)

val table3 : unit -> unit
(** Table III: platform metrics. *)

val fig2 : unit -> string list list
(** Figure 2: boundary-handling share of a step (hand-written kernels,
    GTX 780). *)

val fig4 : unit -> result_row list
(** Figure 4 / Table IV: FI fused kernel, box rooms. *)

val fig5 : unit -> result_row list
(** Figure 5 / Table V: FI-MM boundary kernel. *)

val fig6 : unit -> result_row list
(** Figure 6 / Table VI: FD-MM boundary kernel (3 branches). *)

val all : unit -> result_row list * result_row list * result_row list
(** Run and print everything; returns the fig4/fig5/fig6 rows. *)
