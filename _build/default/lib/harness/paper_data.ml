(* The paper's reported measurements, transcribed from the appendix
   (Tables II, IV, V, VI) and Table III.  Used to print side-by-side
   paper-vs-model comparisons and to score shape agreement (who wins,
   single/double gaps, size ordering). *)

type version =
  | OpenCL (* hand-written *)
  | Lift

let version_label = function OpenCL -> "OpenCL" | Lift -> "LIFT"

type row = {
  platform : string;
  version : version;
  size : int;       (* leading dimension: 602, 336 or 302 *)
  shape : string;   (* "box" or "dome"; FI rows are box-only *)
  single_ms : float;
  double_ms : float;
}

let row platform version size shape single_ms double_ms =
  { platform; version; size; shape; single_ms; double_ms }

(* Table II: room sizes and boundary-point counts. *)
type room_row = { dims : int * int * int; dome_pts : int; box_pts : int }

let table2 =
  [
    { dims = (602, 402, 302); dome_pts = 690_624; box_pts = 1_085_208 };
    { dims = (336, 336, 336); dome_pts = 376_808; box_pts = 673_352 };
    { dims = (302, 202, 152); dome_pts = 172_256; box_pts = 272_608 };
  ]

(* Table IV: naive frequency-independent (FI), box rooms, times in ms. *)
let table4 =
  [
    row "Titan Black" OpenCL 602 "box" 8.19 11.33;
    row "Titan Black" Lift 602 "box" 6.93 11.55;
    row "Titan Black" OpenCL 336 "box" 4.01 5.16;
    row "Titan Black" Lift 336 "box" 3.51 5.91;
    row "Titan Black" OpenCL 302 "box" 0.97 1.37;
    row "Titan Black" Lift 302 "box" 0.84 1.45;
    row "AMD7970" OpenCL 602 "box" 5.05 10.66;
    row "AMD7970" Lift 602 "box" 4.97 10.31;
    row "AMD7970" OpenCL 336 "box" 2.70 5.68;
    row "AMD7970" Lift 336 "box" 2.70 5.70;
    row "AMD7970" OpenCL 302 "box" 0.66 1.41;
    row "AMD7970" Lift 302 "box" 0.64 1.31;
    row "RadeonR9" OpenCL 602 "box" 4.89 10.10;
    row "RadeonR9" Lift 602 "box" 5.05 9.18;
    row "RadeonR9" OpenCL 336 "box" 2.93 4.91;
    row "RadeonR9" Lift 336 "box" 2.96 5.09;
    row "RadeonR9" OpenCL 302 "box" 0.60 1.19;
    row "RadeonR9" Lift 302 "box" 0.69 1.16;
    row "GTX780" OpenCL 602 "box" 9.21 12.30;
    row "GTX780" Lift 602 "box" 7.59 13.24;
    row "GTX780" OpenCL 336 "box" 4.57 5.65;
    row "GTX780" Lift 336 "box" 3.85 6.79;
    row "GTX780" OpenCL 302 "box" 1.23 1.52;
    row "GTX780" Lift 302 "box" 1.04 1.69;
  ]

(* Table V: FI-MM boundary-handling kernel, times in ms. *)
let table5 =
  [
    row "RadeonR9" OpenCL 602 "box" 0.28 0.51;
    row "RadeonR9" Lift 602 "box" 0.28 0.35;
    row "RadeonR9" OpenCL 302 "box" 0.07 0.13;
    row "RadeonR9" Lift 302 "box" 0.07 0.09;
    row "RadeonR9" OpenCL 336 "box" 0.32 0.60;
    row "RadeonR9" Lift 336 "box" 0.33 0.37;
    row "AMD7970" OpenCL 602 "box" 0.27 0.34;
    row "AMD7970" Lift 602 "box" 0.27 0.34;
    row "AMD7970" OpenCL 302 "box" 0.07 0.08;
    row "AMD7970" Lift 302 "box" 0.07 0.08;
    row "AMD7970" OpenCL 336 "box" 0.29 0.33;
    row "AMD7970" Lift 336 "box" 0.29 0.33;
    row "GTX780" OpenCL 602 "box" 0.27 0.33;
    row "GTX780" Lift 602 "box" 0.27 0.34;
    row "GTX780" OpenCL 302 "box" 0.06 0.08;
    row "GTX780" Lift 302 "box" 0.06 0.08;
    row "GTX780" OpenCL 336 "box" 0.25 0.34;
    row "GTX780" Lift 336 "box" 0.25 0.34;
    row "Titan Black" OpenCL 602 "box" 0.29 0.31;
    row "Titan Black" Lift 602 "box" 0.28 0.36;
    row "Titan Black" OpenCL 302 "box" 0.06 0.07;
    row "Titan Black" Lift 302 "box" 0.06 0.09;
    row "Titan Black" OpenCL 336 "box" 0.30 0.29;
    row "Titan Black" Lift 336 "box" 0.28 0.40;
    row "RadeonR9" OpenCL 602 "dome" 0.34 0.48;
    row "RadeonR9" Lift 602 "dome" 0.34 0.37;
    row "RadeonR9" OpenCL 302 "dome" 0.08 0.11;
    row "RadeonR9" Lift 302 "dome" 0.08 0.08;
    row "RadeonR9" OpenCL 336 "dome" 0.28 0.33;
    row "RadeonR9" Lift 336 "dome" 0.28 0.27;
    row "AMD7970" OpenCL 602 "dome" 0.32 0.38;
    row "AMD7970" Lift 602 "dome" 0.31 0.38;
    row "AMD7970" OpenCL 302 "dome" 0.08 0.09;
    row "AMD7970" Lift 302 "dome" 0.08 0.09;
    row "AMD7970" OpenCL 336 "dome" 0.25 0.28;
    row "AMD7970" Lift 336 "dome" 0.25 0.28;
    row "GTX780" OpenCL 602 "dome" 0.28 0.38;
    row "GTX780" Lift 602 "dome" 0.29 0.38;
    row "GTX780" OpenCL 302 "dome" 0.06 0.09;
    row "GTX780" Lift 302 "dome" 0.06 0.09;
    row "GTX780" OpenCL 336 "dome" 0.19 0.30;
    row "GTX780" Lift 336 "dome" 0.21 0.30;
    row "Titan Black" OpenCL 602 "dome" 0.30 0.32;
    row "Titan Black" Lift 602 "dome" 0.29 0.37;
    row "Titan Black" OpenCL 302 "dome" 0.06 0.07;
    row "Titan Black" Lift 302 "dome" 0.06 0.08;
    row "Titan Black" OpenCL 336 "dome" 0.24 0.25;
    row "Titan Black" Lift 336 "dome" 0.20 0.25;
  ]

(* Table VI: FD-MM boundary-handling kernel (3 ODE branches), ms. *)
let table6 =
  [
    row "RadeonR9" OpenCL 602 "box" 0.52 1.05;
    row "RadeonR9" Lift 602 "box" 0.47 0.94;
    row "RadeonR9" OpenCL 302 "box" 0.12 0.26;
    row "RadeonR9" Lift 302 "box" 0.12 0.23;
    row "RadeonR9" OpenCL 336 "box" 0.49 0.69;
    row "RadeonR9" Lift 336 "box" 0.44 0.64;
    row "AMD7970" OpenCL 602 "box" 0.57 0.93;
    row "AMD7970" Lift 602 "box" 0.54 0.85;
    row "AMD7970" OpenCL 302 "box" 0.13 0.22;
    row "AMD7970" Lift 302 "box" 0.13 0.21;
    row "AMD7970" OpenCL 336 "box" 0.50 0.71;
    row "AMD7970" Lift 336 "box" 0.47 0.69;
    row "GTX780" OpenCL 602 "box" 0.48 0.78;
    row "GTX780" Lift 602 "box" 0.52 0.76;
    row "GTX780" OpenCL 302 "box" 0.11 0.18;
    row "GTX780" Lift 302 "box" 0.12 0.18;
    row "GTX780" OpenCL 336 "box" 0.36 0.61;
    row "GTX780" Lift 336 "box" 0.38 0.59;
    row "Titan Black" OpenCL 602 "box" 0.49 0.83;
    row "Titan Black" Lift 602 "box" 0.50 0.87;
    row "Titan Black" OpenCL 302 "box" 0.11 0.20;
    row "Titan Black" Lift 302 "box" 0.12 0.21;
    row "Titan Black" OpenCL 336 "box" 0.40 0.55;
    row "Titan Black" Lift 336 "box" 0.40 0.60;
    row "RadeonR9" OpenCL 602 "dome" 0.45 0.66;
    row "RadeonR9" Lift 602 "dome" 0.46 0.68;
    row "RadeonR9" OpenCL 302 "dome" 0.11 0.17;
    row "RadeonR9" Lift 302 "dome" 0.11 0.17;
    row "RadeonR9" OpenCL 336 "dome" 0.37 0.41;
    row "RadeonR9" Lift 336 "dome" 0.35 0.42;
    row "AMD7970" OpenCL 602 "dome" 0.48 0.70;
    row "AMD7970" Lift 602 "dome" 0.48 0.70;
    row "AMD7970" OpenCL 302 "dome" 0.12 0.17;
    row "AMD7970" Lift 302 "dome" 0.12 0.17;
    row "AMD7970" OpenCL 336 "dome" 0.36 0.47;
    row "AMD7970" Lift 336 "dome" 0.36 0.47;
    row "GTX780" OpenCL 602 "dome" 0.41 0.60;
    row "GTX780" Lift 602 "dome" 0.44 0.63;
    row "GTX780" OpenCL 302 "dome" 0.09 0.15;
    row "GTX780" Lift 302 "dome" 0.10 0.16;
    row "GTX780" OpenCL 336 "dome" 0.29 0.45;
    row "GTX780" Lift 336 "dome" 0.29 0.44;
    row "Titan Black" OpenCL 602 "dome" 0.42 0.56;
    row "Titan Black" Lift 602 "dome" 0.43 0.65;
    row "Titan Black" OpenCL 302 "dome" 0.10 0.14;
    row "Titan Black" Lift 302 "dome" 0.10 0.16;
    row "Titan Black" OpenCL 336 "dome" 0.30 0.36;
    row "Titan Black" Lift 336 "dome" 0.30 0.42;
  ]

let find table ~platform ~version ~size ~shape =
  List.find_opt
    (fun r -> r.platform = platform && r.version = version && r.size = size && r.shape = shape)
    table
