(* Plain-text table rendering for experiment reports. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let print_table ?(out = stdout) ~title ~headers rows =
  let all = headers :: rows in
  let ncols = List.length headers in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all)
  in
  let line row =
    String.concat "  " (List.map2 (fun w cell -> pad w cell) widths row)
  in
  Printf.fprintf out "\n== %s ==\n" title;
  Printf.fprintf out "%s\n" (line headers);
  Printf.fprintf out "%s\n" (String.make (String.length (line headers)) '-');
  List.iter (fun row -> Printf.fprintf out "%s\n" (line row)) rows

let ms v = Printf.sprintf "%.3f" (v *. 1e3)
let gups v = Printf.sprintf "%.2f" (v /. 1e9)
let pct v = Printf.sprintf "%.1f%%" (v *. 100.)
let opt_ms = function Some v -> Printf.sprintf "%.2f" v | None -> "-"
