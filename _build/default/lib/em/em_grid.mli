(** 2D electromagnetic FDTD substrate (paper §VIII): a TMz Yee grid
    (fields Ez, Hx, Hy) over a material map with per-cell permittivity
    and conductivity — a miniature gprMax-style simulator.  The
    outermost ring of Ez cells is never updated (perfect electric
    conductor), the 2D analogue of the acoustic zero halo. *)

type t = {
  nx : int;
  ny : int;
  ez : float array;
  hx : float array;
  hy : float array;
  ca : float array;  (** per-cell Ez update coefficients *)
  cb : float array;
}

val courant : float
(** 2D stability limit, 1/sqrt 2. *)

val n_cells : t -> int
val idx : t -> int -> int -> int

type material = { eps_r : float; sigma : float }

val vacuum : material
val dry_soil : material
val wet_soil : material
val metal : material

val coeffs : material -> float * float
(** (ca, cb) update coefficients of a material. *)

val create : nx:int -> ny:int -> t
(** Vacuum-filled grid.  @raise Invalid_argument below 3x3. *)

val fill_material : t -> x0:int -> y0:int -> x1:int -> y1:int -> material -> unit

val pulse : t0:float -> spread:float -> int -> float
(** Differentiated Gaussian source sample at step [n]. *)

val inject : t -> i:int -> j:int -> float -> unit
val read_ez : t -> i:int -> j:int -> float

val step_reference : t -> unit
(** Ground-truth update step, plain OCaml. *)

val field_energy : t -> float
