(** The EM update kernels expressed in the Lift IR (paper §VIII).

    The magnetic-field kernel is the case the paper highlights: a volume
    kernel updating two arrays (Hx, Hy) in place per work-item — the
    multi-output WriteTo machinery built for acoustics boundary state,
    reused for a different physics. *)

val update_h : unit -> Lift.Ast.lam
(** Hx and Hy both written in place. *)

val update_e : unit -> Lift.Ast.lam
(** Ez written in place with per-cell material coefficients; the PEC
    ring is never modified. *)

type compiled = {
  kernel_h : Kernel_ast.Cast.kernel;
  kernel_e : Kernel_ast.Cast.kernel;
  jit_h : Vgpu.Jit.compiled;
  jit_e : Vgpu.Jit.compiled;
}

val compile : ?precision:Kernel_ast.Cast.precision -> unit -> compiled

val step : compiled -> Em_grid.t -> unit
(** One full time step (H then E) on a grid, through the virtual GPU. *)
