(* 2D electromagnetic FDTD substrate (paper §VIII).

   The paper argues that the Lift extensions developed for acoustics
   boundary handling carry directly to other FDTD wave models —
   reverse-time migration and ground-penetrating radar — whose *volume*
   kernels update several field arrays in place.  This module provides
   that substrate: a 2D TMz Yee grid (fields Ez, Hx, Hy) over a material
   map with per-cell permittivity and conductivity, i.e. a miniature
   gprMax-style simulator.

   Update equations (normalised units, Courant number S):

     Hx(i,j) -= S * (Ez(i,j+1) - Ez(i,j))
     Hy(i,j) += S * (Ez(i+1,j) - Ez(i,j))
     Ez(i,j)  = ca(i,j)*Ez(i,j)
              + cb(i,j) * ((Hy(i,j) - Hy(i-1,j)) - (Hx(i,j) - Hx(i,j-1)))

   with ca = (1 - s)/(1 + s), cb = S/eps_r/(1 + s), s = sigma*dt/(2 eps):
   lossy dielectric cells absorb, vacuum cells propagate.  The outermost
   ring of Ez cells is never updated (perfect electric conductor), the
   2D analogue of the acoustic zero halo. *)

type t = {
  nx : int;
  ny : int;
  ez : float array;   (* nx * ny *)
  hx : float array;
  hy : float array;
  ca : float array;   (* per-cell update coefficients *)
  cb : float array;
}

let courant = 1. /. sqrt 2.

let n_cells g = g.nx * g.ny

let idx g i j = (j * g.nx) + i

(* A material region: relative permittivity and normalised conductivity. *)
type material = { eps_r : float; sigma : float }

let vacuum = { eps_r = 1.; sigma = 0. }
let dry_soil = { eps_r = 4.; sigma = 0.01 }
let wet_soil = { eps_r = 12.; sigma = 0.08 }
let metal = { eps_r = 1.; sigma = 10. }

let coeffs m =
  let s = m.sigma /. 2. in
  ((1. -. s) /. (1. +. s), courant /. m.eps_r /. (1. +. s))

let create ~nx ~ny =
  if nx < 3 || ny < 3 then invalid_arg "Em_grid.create: need at least 3x3";
  let n = nx * ny in
  let ca0, cb0 = coeffs vacuum in
  {
    nx;
    ny;
    ez = Array.make n 0.;
    hx = Array.make n 0.;
    hy = Array.make n 0.;
    ca = Array.make n ca0;
    cb = Array.make n cb0;
  }

(* Fill a rectangle of cells with a material. *)
let fill_material g ~x0 ~y0 ~x1 ~y1 (m : material) =
  let ca, cb = coeffs m in
  for j = max 0 y0 to min (g.ny - 1) y1 do
    for i = max 0 x0 to min (g.nx - 1) x1 do
      g.ca.(idx g i j) <- ca;
      g.cb.(idx g i j) <- cb
    done
  done

(* Differentiated Gaussian source pulse injected into Ez. *)
let pulse ~t0 ~spread n =
  let a = (float_of_int n -. t0) /. spread in
  -2. *. a *. exp (-.(a *. a))

let inject g ~i ~j v = g.ez.(idx g i j) <- g.ez.(idx g i j) +. v

let read_ez g ~i ~j = g.ez.(idx g i j)

(* Reference (ground truth) update step, plain OCaml. *)
let step_reference g =
  let nx = g.nx and ny = g.ny in
  (* H update: all cells except the top/right edge *)
  for j = 0 to ny - 2 do
    for i = 0 to nx - 2 do
      let k = idx g i j in
      g.hx.(k) <- g.hx.(k) -. (courant *. (g.ez.(k + nx) -. g.ez.(k)));
      g.hy.(k) <- g.hy.(k) +. (courant *. (g.ez.(k + 1) -. g.ez.(k)))
    done
  done;
  (* E update: interior cells only (PEC ring) *)
  for j = 1 to ny - 2 do
    for i = 1 to nx - 2 do
      let k = idx g i j in
      g.ez.(k) <-
        (g.ca.(k) *. g.ez.(k))
        +. (g.cb.(k) *. (g.hy.(k) -. g.hy.(k - 1) -. (g.hx.(k) -. g.hx.(k - nx))))
    done
  done

let field_energy g =
  let acc = ref 0. in
  let add a = Array.iter (fun v -> acc := !acc +. (v *. v)) a in
  add g.ez;
  add g.hx;
  add g.hy;
  0.5 *. !acc
