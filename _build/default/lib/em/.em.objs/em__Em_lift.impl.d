lib/em/em_lift.ml: Ast Codegen Em_grid Kernel_ast Lift List Printf Rewrite Size Ty Vgpu
