lib/em/em_lift.mli: Em_grid Kernel_ast Lift Vgpu
