lib/em/em_grid.mli:
