lib/em/em_grid.ml: Array
