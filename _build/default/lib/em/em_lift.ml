(* The EM update kernels expressed in the Lift IR (paper §VIII).

   The magnetic-field kernel is the case the paper highlights: a *volume*
   kernel that updates two arrays (Hx, Hy) in place per work-item —
   acoustics only needed that for boundary state (FD-MM), but
   electromagnetic codes need it for the main field update.  The same
   [WriteTo]/multi-output machinery carries over unchanged. *)

open Lift

let n = Size.var "N"
let field_ty = Ty.array Ty.real n

let p = Ast.named_param

(* Magnetic field update: Hx and Hy both written in place. *)
let update_h () : Ast.lam =
  let ez = p "ez" field_ty in
  let hx = p "hx" field_ty in
  let hy = p "hy" field_ty in
  let nx = p "Nx" Ty.int in
  let ny = p "Ny" Ty.int in
  let s = p "S" Ty.real in
  let at a i = Ast.Array_access (Ast.Param a, i) in
  let body =
    Ast.map_glb
      (Ast.lam1 ~name:"idx" Ty.int (fun idx ->
           Ast.let_ ~name:"i" Ty.int Ast.(idx %! Param nx) (fun i ->
           Ast.let_ ~name:"j" Ty.int Ast.(idx /! Param nx) (fun j ->
               let guard =
                 Ast.(i <! (Param nx -! int 1) &&! (j <! (Param ny -! int 1)))
               in
               Ast.Tuple
                 [
                   Ast.Write_to
                     ( Ast.Array_access (Ast.Param hx, idx),
                       Ast.Select
                         ( guard,
                           Ast.(at hx idx -! (Param s *! (at ez (idx +! Param nx) -! at ez idx))),
                           at hx idx ) );
                   Ast.Write_to
                     ( Ast.Array_access (Ast.Param hy, idx),
                       Ast.Select
                         ( guard,
                           Ast.(at hy idx +! (Param s *! (at ez (idx +! int 1) -! at ez idx))),
                           at hy idx ) );
                 ]))))
      (Ast.Iota n)
  in
  { Ast.l_params = [ ez; hx; hy; nx; ny; s ]; l_body = body }

(* Electric field update: Ez written in place, with per-cell material
   coefficients; the outer PEC ring is never modified. *)
let update_e () : Ast.lam =
  let ez = p "ez" field_ty in
  let hx = p "hx" field_ty in
  let hy = p "hy" field_ty in
  let ca = p "ca" field_ty in
  let cb = p "cb" field_ty in
  let nx = p "Nx" Ty.int in
  let ny = p "Ny" Ty.int in
  let at a i = Ast.Array_access (Ast.Param a, i) in
  let body =
    Ast.Write_to
      ( Ast.Param ez,
        Ast.map_glb
          (Ast.lam1 ~name:"idx" Ty.int (fun idx ->
               Ast.let_ ~name:"i" Ty.int Ast.(idx %! Param nx) (fun i ->
               Ast.let_ ~name:"j" Ty.int Ast.(idx /! Param nx) (fun j ->
                   let guard =
                     Ast.(
                       (i >=! int 1)
                       &&! (i <! (Param nx -! int 1))
                       &&! (j >=! int 1)
                       &&! (j <! (Param ny -! int 1)))
                   in
                   Ast.Select
                     ( guard,
                       Ast.(
                         (at ca idx *! at ez idx)
                         +! (at cb idx
                            *! (at hy idx -! at hy (idx -! int 1)
                               -! (at hx idx -! at hx (idx -! Param nx))))),
                       at ez idx )))))
          (Ast.Iota n) )
  in
  { Ast.l_params = [ ez; hx; hy; ca; cb; nx; ny ]; l_body = body }

type compiled = {
  kernel_h : Kernel_ast.Cast.kernel;
  kernel_e : Kernel_ast.Cast.kernel;
  jit_h : Vgpu.Jit.compiled;
  jit_e : Vgpu.Jit.compiled;
}

let compile ?(precision = Kernel_ast.Cast.Double) () =
  let ck name prog =
    (Codegen.compile_kernel ~name ~precision (Rewrite.normalize_lam prog)).Codegen.kernel
  in
  let kernel_h = ck "em_update_h" (update_h ()) in
  let kernel_e = ck "em_update_e" (update_e ()) in
  { kernel_h; kernel_e; jit_h = Vgpu.Jit.compile kernel_h; jit_e = Vgpu.Jit.compile kernel_e }

(* One full time step on a grid, through the virtual GPU. *)
let step (c : compiled) (g : Em_grid.t) =
  let n = Em_grid.n_cells g in
  let resolve (k : Kernel_ast.Cast.kernel) : Vgpu.Args.t list =
    List.map
      (fun (prm : Kernel_ast.Cast.param) ->
        match prm.p_name with
        | "ez" -> Vgpu.Args.Buf (Vgpu.Buffer.F g.Em_grid.ez)
        | "hx" -> Vgpu.Args.Buf (Vgpu.Buffer.F g.Em_grid.hx)
        | "hy" -> Vgpu.Args.Buf (Vgpu.Buffer.F g.Em_grid.hy)
        | "ca" -> Vgpu.Args.Buf (Vgpu.Buffer.F g.Em_grid.ca)
        | "cb" -> Vgpu.Args.Buf (Vgpu.Buffer.F g.Em_grid.cb)
        | "Nx" -> Vgpu.Args.Int_arg g.Em_grid.nx
        | "Ny" -> Vgpu.Args.Int_arg g.Em_grid.ny
        | "N" -> Vgpu.Args.Int_arg n
        | "S" -> Vgpu.Args.Real_arg Em_grid.courant
        | other -> failwith (Printf.sprintf "em: unknown kernel parameter %s" other))
      k.params
  in
  Vgpu.Jit.launch c.jit_h ~args:(resolve c.kernel_h) ~global:[ n ];
  Vgpu.Jit.launch c.jit_e ~args:(resolve c.kernel_e) ~global:[ n ]
