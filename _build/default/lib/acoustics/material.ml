(* Boundary materials.

   Frequency-independent (FI) absorption is a single specific-admittance
   coefficient [beta] per material: the wall removes a fixed fraction of
   the incident energy at every frequency (paper §II-D, Listing 3).

   Frequency-dependent (FD) absorption adds, per material, a bank of
   second-order ODE branches modelling internal resonances of the wall
   structure (paper §II-E, Listing 4; Bilbao et al. 2016).  Each branch is
   a series mass–resistance–stiffness impedance driven by the boundary
   pressure; its state is a velocity [v] and a displacement [g] stored per
   boundary point.

   The paper's kernels consume four derived coefficient tables BI, D, F,
   DI (plus beta).  The authors' constants are not published, so this
   module reconstructs them from a trapezoidal discretisation of the
   branch ODE
       m v' + r v + k g = u',   g' = v
   sampled at the simulation rate (time step folded into the
   dimensionless branch parameters below).  Solving the trapezoidal
   update for the new velocity v1 given the old velocity v2 and
   displacement g1 yields exactly the kernel's computational form:

       v1      = BI * (du + DI*v2 - 2*F*g1)
       g1'     = g1 + (v1 + v2)/2
       flux    = BI * (2*D*v2 - F*g1)          (explicit part of (v1+v2)/2)

   with
       F   = k/2                  (dimensionless stiffness, k' = k*dt)
       den = m + r/2 + F/2        (dimensionless mass m' = m/dt)
       BI  = 1/den
       DI  = m - r/2 - F/2
       D   = m/2

   Non-negative m, r, k make every branch passive, so the discrete scheme
   dissipates energy — verified by the test suite. *)

type branch = {
  mass : float;        (* dimensionless inertance m' = m/dt  (>= 0) *)
  resistance : float;  (* dimensionless resistance            (>= 0) *)
  stiffness : float;   (* dimensionless stiffness k' = k*dt   (>= 0) *)
}

type t = {
  name : string;
  beta : float;         (* specific admittance of the resistive FI path *)
  branches : branch list;
}

type coeffs = {
  c_beta : float;
  c_bi : float array;
  c_d : float array;
  c_f : float array;
  c_di : float array;
}

let branch ~mass ~resistance ~stiffness =
  if mass < 0. || resistance < 0. || stiffness < 0. then
    invalid_arg "Material.branch: parameters must be non-negative";
  { mass; resistance; stiffness }

let create ~name ~beta branches =
  if beta < 0. then invalid_arg "Material.create: beta must be non-negative";
  { name; beta; branches }

let branch_coeffs b =
  let f = b.stiffness /. 2. in
  let den = b.mass +. (b.resistance /. 2.) +. (f /. 2.) in
  if den <= 0. then invalid_arg "Material.branch_coeffs: degenerate branch";
  let bi = 1. /. den in
  let di = b.mass -. (b.resistance /. 2.) -. (f /. 2.) in
  let d = b.mass /. 2. in
  (bi, d, f, di)

(* Coefficient tables for a material, padded/truncated to [n_branches]
   (missing branches are inert: zero admittance). *)
let coeffs ~n_branches t =
  let c_bi = Array.make n_branches 0. in
  let c_d = Array.make n_branches 0. in
  let c_f = Array.make n_branches 0. in
  let c_di = Array.make n_branches 0. in
  List.iteri
    (fun i b ->
      if i < n_branches then begin
        let bi, d, f, di = branch_coeffs b in
        c_bi.(i) <- bi;
        c_d.(i) <- d;
        c_f.(i) <- f;
        c_di.(i) <- di
      end)
    t.branches;
  { c_beta = t.beta; c_bi; c_d; c_f; c_di }

(* Frequency response of the *discrete* branch recurrence, in closed
   form.  With the steady-state ansatz u^n = z^n (z = e^{i w}),
   v^{n+1/2} = V z^n, g^n = G z^n, the kernel's update equations

     v1 = BI (u^{n+1} - u^{n-1} + DI v2 - 2 F g)
     g' = g + (v1 + v2)/2

   give
     G = V (1 + z^{-1}) / (2 (z - 1))
     V (1 - BI DI z^{-1} + F BI (1 + z^{-1}) / (z - 1)) = BI (z - z^{-1})

   and the branch's contribution to absorption at frequency w (radians
   per sample) is the transfer from the pressure difference
   du = u^{n+1} - u^{n-1} to the midpoint velocity (v1 + v2)/2:

     Y(w) = V (1 + z^{-1}) / (2 (z - z^{-1}))

   Discrete passivity is Re Y(w) >= 0 for all w; frequency-dependent
   absorption is Y varying over w.  Both are verified by the tests. *)
let branch_admittance (b : branch) ~omega : Complex.t =
  let open Complex in
  let bi_r, _, f_r, di_r = branch_coeffs b in
  let z = exp { re = 0.; im = omega } in
  let zi = inv z in
  let one = { re = 1.; im = 0. } in
  let c r = { re = r; im = 0. } in
  let num = mul (c bi_r) (sub z zi) in
  let den =
    add
      (sub one (mul (c (bi_r *. di_r)) zi))
      (div (mul (c (f_r *. bi_r)) (add one zi)) (sub z one))
  in
  let v = div num den in
  div (mul v (add one zi)) (mul (c 2.) (sub z zi))

(* Total effective admittance of a material at [omega]: the flat beta
   path plus every branch. *)
let admittance (m : t) ~omega : Complex.t =
  List.fold_left
    (fun acc b -> Complex.add acc (branch_admittance b ~omega))
    { Complex.re = m.beta /. 2.; im = 0. }
    m.branches

(* A few plausible materials.  [beta] values follow published absorption
   data orders of magnitude (concrete nearly rigid, curtains absorptive);
   branch parameters place resonances in the low audio band with
   moderate damping. *)

let concrete =
  create ~name:"concrete" ~beta:0.02
    [ branch ~mass:8.0 ~resistance:0.5 ~stiffness:0.4 ]

let painted_brick =
  create ~name:"painted-brick" ~beta:0.05
    [ branch ~mass:6.0 ~resistance:0.8 ~stiffness:0.6 ]

let wood_panel =
  create ~name:"wood-panel" ~beta:0.15
    [
      branch ~mass:2.0 ~resistance:1.2 ~stiffness:0.8;
      branch ~mass:4.0 ~resistance:0.6 ~stiffness:0.2;
    ]

let carpet =
  create ~name:"carpet" ~beta:0.35
    [
      branch ~mass:0.8 ~resistance:1.6 ~stiffness:0.5;
      branch ~mass:1.5 ~resistance:1.0 ~stiffness:1.0;
      branch ~mass:3.0 ~resistance:0.7 ~stiffness:0.3;
    ]

let curtain =
  create ~name:"curtain" ~beta:0.55
    [
      branch ~mass:0.4 ~resistance:2.0 ~stiffness:0.6;
      branch ~mass:1.0 ~resistance:1.4 ~stiffness:1.2;
      branch ~mass:2.2 ~resistance:0.9 ~stiffness:0.4;
    ]

(* A perfectly rigid wall: no absorption at all. *)
let rigid = create ~name:"rigid" ~beta:0. []

let defaults = [| concrete; painted_brick; wood_panel; carpet |]

type tables = {
  t_beta : float array;     (* static admittance, used by the FI kernels *)
  t_beta_fd : float array;  (* effective admittance for the FD kernel *)
  t_bi : float array;
  t_d : float array;
  t_f : float array;
  t_di : float array;
}

(* Flatten a material set into the flat coefficient arrays the kernels
   consume: beta[mi] and row-major [mi][b] tables of width [n_branches].

   Energy balance of the FD boundary update (paper Listing 4): the
   update divides by (1 + cf) with cf = 0.5*l*(6-nbr)*beta[mi], and the
   new branch velocity v1 depends on the new pressure through
   v1 = BI*(u1 - u0) + ...; for the scheme to dissipate, the denominator
   must contain that implicit contribution.  This happens exactly when
   the beta table handed to the FD kernel is the *effective* admittance

       beta_fd = beta + sum_b BI_b

   so the kernel code stays precisely the paper's while passivity is a
   property of coefficient preparation.  The test suite verifies decay
   over hundreds of steps. *)
let tables ~n_branches (materials : t array) : tables =
  let nm = Array.length materials in
  let t_beta = Array.make nm 0. in
  let t_beta_fd = Array.make nm 0. in
  let t_bi = Array.make (max 1 (nm * n_branches)) 0. in
  let t_d = Array.make (max 1 (nm * n_branches)) 0. in
  let t_f = Array.make (max 1 (nm * n_branches)) 0. in
  let t_di = Array.make (max 1 (nm * n_branches)) 0. in
  Array.iteri
    (fun mi m ->
      let c = coeffs ~n_branches m in
      t_beta.(mi) <- c.c_beta;
      let sum_bi = ref 0. in
      for b = 0 to n_branches - 1 do
        t_bi.((mi * n_branches) + b) <- c.c_bi.(b);
        t_d.((mi * n_branches) + b) <- c.c_d.(b);
        t_f.((mi * n_branches) + b) <- c.c_f.(b);
        t_di.((mi * n_branches) + b) <- c.c_di.(b);
        sum_bi := !sum_bi +. c.c_bi.(b)
      done;
      t_beta_fd.(mi) <- c.c_beta +. !sum_bi)
    materials;
  { t_beta; t_beta_fd; t_bi; t_d; t_f; t_di }
