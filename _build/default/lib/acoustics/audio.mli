(** Audio utilities: impulse responses as WAV files and simple spectral
    analysis (auralization is the paper's motivating application). *)

val normalise : ?level:float -> float array -> float array
(** Scale to the given peak level (default 0.89). *)

val wav_bytes : sample_rate:int -> float array -> string
(** Mono 16-bit PCM WAV serialisation (samples clamped to [-1, 1]). *)

val write_wav : string -> sample_rate:int -> float array -> unit

val dft_magnitudes : ?bins:int -> float array -> float array
(** DFT magnitude at [bins] frequencies up to Nyquist. *)

val octave_bands : float list
(** Band centres: 125 .. 8000 Hz. *)

val octave_band_energies : sample_rate:float -> float array -> (float * float) list
(** (band centre, energy) via Goertzel, bands below Nyquist only. *)

val db : float -> float
(** 10*log10 with a -120 dB floor. *)
