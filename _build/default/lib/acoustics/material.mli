(** Boundary materials.

    Frequency-independent (FI) absorption is a single specific-admittance
    coefficient [beta] per material (paper §II-D).  Frequency-dependent
    (FD) absorption adds a bank of second-order ODE branches modelling
    internal resonances (paper §II-E; Bilbao et al. 2016); each branch is
    a passive mass-resistance-stiffness impedance with per-boundary-point
    state (a velocity and a displacement).

    The kernels consume derived coefficient tables BI, D, F, DI (plus
    beta), reconstructed here from a trapezoidal discretisation of the
    branch ODE [m v' + r v + k g = u', g' = v]; see the implementation
    for the derivation.  Non-negative m, r, k make every branch passive,
    so the discrete scheme dissipates energy (verified by the tests). *)

type branch = {
  mass : float;        (** dimensionless inertance (>= 0) *)
  resistance : float;  (** dimensionless resistance (>= 0) *)
  stiffness : float;   (** dimensionless stiffness (>= 0) *)
}

type t = {
  name : string;
  beta : float;  (** specific admittance of the resistive FI path *)
  branches : branch list;
}

val branch : mass:float -> resistance:float -> stiffness:float -> branch
(** @raise Invalid_argument on negative parameters. *)

val create : name:string -> beta:float -> branch list -> t
(** @raise Invalid_argument on negative [beta]. *)

type coeffs = {
  c_beta : float;
  c_bi : float array;
  c_d : float array;
  c_f : float array;
  c_di : float array;
}

val branch_coeffs : branch -> float * float * float * float
(** [(BI, D, F, DI)] of one branch. *)

val coeffs : n_branches:int -> t -> coeffs
(** Coefficient tables padded/truncated to [n_branches] (missing
    branches are inert). *)

val branch_admittance : branch -> omega:float -> Complex.t
(** Closed-form frequency response of the discrete branch recurrence at
    [omega] radians/sample: the transfer from the pressure difference
    du to the midpoint branch velocity.  Discrete passivity is
    [Re >= 0] for all frequencies (verified by the tests). *)

val admittance : t -> omega:float -> Complex.t
(** Flat beta path plus all branches; frequency-dependent materials have
    a non-constant real part — the property FD-MM exists to model. *)

(** {1 Presets} *)

val concrete : t
val painted_brick : t
val wood_panel : t
val carpet : t
val curtain : t
val rigid : t
val defaults : t array
(** concrete, painted brick, wood panel, carpet — ordered by
    increasing absorption. *)

(** {1 Kernel tables} *)

type tables = {
  t_beta : float array;     (** static admittance, for the FI kernels *)
  t_beta_fd : float array;
      (** effective admittance [beta + sum_b BI_b] for the FD kernel:
          folding the implicit branch contribution into the kernel's
          [(1 + cf)] denominator is what makes the paper's Listing 4
          scheme dissipative *)
  t_bi : float array;
  t_d : float array;
  t_f : float array;
  t_di : float array;
}

val tables : n_branches:int -> t array -> tables
(** Flat row-major [mi * n_branches + b] tables for a material set. *)
