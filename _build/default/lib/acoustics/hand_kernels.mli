(** Hand-written GPU kernels, as kernel ASTs.

    These mirror the paper's tuned OpenCL baselines (ports of Webb's and
    Hamilton et al.'s CUDA kernels, paper §VI) and are the "OpenCL" side
    of every benchmark comparison, executed and timed exactly like the
    Lift-generated kernels.

    One deliberate difference, reported by the paper in §VII-B1: the
    hand-written FI-MM kernel keeps the per-material [beta] table in
    private memory, where the Lift version receives it as a global
    buffer. *)

val fused_fi : precision:Kernel_ast.Cast.precision -> Kernel_ast.Cast.kernel
(** Listing 1: fused volume + boundary, implicit box, 3D NDRange. *)

val volume : precision:Kernel_ast.Cast.precision -> Kernel_ast.Cast.kernel
(** Listing 2, kernel 1: the volume kernel, 1D NDRange over the grid. *)

val boundary_fi : precision:Kernel_ast.Cast.precision -> Kernel_ast.Cast.kernel
(** Listing 2, kernel 2. *)

val boundary_fi_mm :
  precision:Kernel_ast.Cast.precision -> betas:float array -> Kernel_ast.Cast.kernel
(** Listing 3, with [betas] baked into private memory. *)

val boundary_fd_mm :
  precision:Kernel_ast.Cast.precision -> mb:int -> Kernel_ast.Cast.kernel
(** Listing 4, with [mb] ODE branches and private staging of the branch
    state. *)
