(* Simulation parameters for the 3D FDTD wave equation on a rectilinear
   grid (the SLF — standard leapfrog — scheme used by the paper's
   kernels).

   The scheme updates
     next = (2 - l2*nbr)*curr + l2*sum_of_neighbours - prev
   with [l] the Courant number c*dt/h.  Stability of the 7-point SLF
   scheme requires l <= 1/sqrt(3); the customary choice, used by Webb and
   Hamilton's codes and taken as the default here, is equality, which
   maximises the usable bandwidth per sample rate. *)

type t = {
  lambda : float;  (* Courant number l = c * dt / h *)
  c : float;       (* speed of sound, m/s *)
  sample_rate : float;  (* temporal sample rate 1/dt, Hz *)
}

let courant_limit = 1. /. sqrt 3.

let default = { lambda = courant_limit; c = 344.; sample_rate = 44100. }

let create ?(lambda = courant_limit) ?(c = 344.) ?(sample_rate = 44100.) () =
  if lambda <= 0. || lambda > courant_limit +. 1e-12 then
    invalid_arg "Params.create: Courant number must be in (0, 1/sqrt 3]";
  { lambda; c; sample_rate }

let l t = t.lambda
let l2 t = t.lambda *. t.lambda

(* Grid spacing implied by the stability condition and sample rate. *)
let grid_spacing t = t.c /. (t.sample_rate *. t.lambda)

(* Time step. *)
let dt t = 1. /. t.sample_rate
