(** Room geometries and their boundary data structures.

    A room is an Nx*Ny*Nz voxel grid (dimensions include the zero halo,
    as in the paper's Table II).  [nbrs] stores the inside-neighbour
    count of every voxel — 6 strictly inside, 1..5 at the boundary, 0
    outside; complex shapes additionally need the explicit
    [boundary_indices] and per-boundary-point [material] arrays (paper
    §II-B..II-D).

    Shapes: the paper's box and dome (the upper half of an ellipsoid
    filling the grid, standing on the floor), plus an L-shaped room with
    a re-entrant corner. *)

type shape =
  | Box
  | Dome
  | L_shape  (** a box with one quadrant removed: a re-entrant corner *)

type dims = { nx : int; ny : int; nz : int }

val dims : nx:int -> ny:int -> nz:int -> dims
(** @raise Invalid_argument below 3 voxels per dimension. *)

val n_points : dims -> int

val paper_sizes : dims list
(** The paper's three room sizes (Table II), largest first. *)

val size_label : dims -> string

val inside : shape -> dims -> int -> int -> int -> bool
(** Is voxel (x, y, z) inside the room? *)

val iter_voxels :
  shape -> dims -> f:(x:int -> y:int -> z:int -> idx:int -> nbr:int -> unit) -> unit
(** Stream every voxel in linear-index order with its inside-neighbour
    count, using rolling bit-planes (no O(N) allocation). *)

(** Aggregate geometry statistics, computable at the paper's full sizes
    (up to 73M voxels) without materialising arrays. *)
type stats = {
  s_points : int;       (** total voxels including the halo *)
  s_inside : int;       (** voxels with nbr > 0 *)
  s_boundary : int;     (** voxels with 0 < nbr < 6 *)
  s_contiguity : float;
      (** fraction of consecutive boundary indices that are adjacent;
          drives the performance model's coalescing estimate *)
}

val stats : shape -> dims -> stats

type room = {
  shape : shape;
  dims : dims;
  nbrs : int array;
  boundary_indices : int array;  (** ascending *)
  material : int array;          (** per boundary point *)
  n_inside : int;
}

val material_of_voxel : n_materials:int -> nz:int -> int -> int
(** Deterministic material assignment: horizontal bands, floor first. *)

val build : ?n_materials:int -> shape -> dims -> room
(** Materialise the geometry arrays (for simulation-sized rooms). *)

val n_boundary : room -> int
val shape_label : shape -> string
