(* Energy accounting used by stability and passivity tests.

   The SLF scheme at the Courant limit with rigid walls is marginally
   stable: the field stays bounded forever.  Any boundary loss (beta > 0
   or dissipative ODE branches) must make the field energy decay.  These
   are the invariants the test suite checks; they hold for the continuous
   physics and for any faithful discretisation, so they also catch
   miscompiled kernels that remain numerically plausible. *)

let sum_squares (a : float array) =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. a.(i))
  done;
  !acc

let max_abs (a : float array) =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let v = Float.abs a.(i) in
    if v > !acc then acc := v
  done;
  !acc

(* Leapfrog field energy proxy at the current step: mean of the squared
   field over the two live time levels.

   Caveat: this counts the DC (spatially constant) component of the
   field, which every boundary loss term is blind to — the losses act on
   du/dt and on spatial differences, both zero for a constant field.  An
   impulse has nonzero mean, so part of it settles into a persistent DC
   offset; use [kinetic_energy] (DC-free) to observe dissipation. *)
let field_energy (st : State.t) = 0.5 *. (sum_squares st.curr +. sum_squares st.prev)

(* DC-free energy proxy: squared discrete time derivative of the field.
   Decays to zero for any dissipative configuration and stays bounded for
   rigid walls. *)
let kinetic_energy (st : State.t) =
  let acc = ref 0. in
  let curr = st.curr and prev = st.prev in
  for i = 0 to Array.length curr - 1 do
    let d = curr.(i) -. prev.(i) in
    acc := !acc +. (d *. d)
  done;
  0.5 *. !acc

(* Mean field value over inside points: the DC component. *)
let dc_offset (st : State.t) =
  let nbrs = st.room.Geometry.nbrs in
  let acc = ref 0. and n = ref 0 in
  Array.iteri
    (fun i v ->
      if nbrs.(i) > 0 then begin
        acc := !acc +. v;
        incr n
      end)
    st.curr;
  if !n = 0 then 0. else !acc /. float_of_int !n

(* Energy stored in the boundary branch state (FD-MM only). *)
let branch_energy (st : State.t) =
  0.5 *. (sum_squares st.g1 +. sum_squares st.vel_prev)
