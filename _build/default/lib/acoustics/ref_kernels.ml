(* Pure-OCaml reference implementations of the paper's kernels.

   These are direct ports of the paper's C listings and serve as the
   numerical ground truth against which both the hand-written kernel ASTs
   and the Lift-generated kernels are validated:

   - [fused_fi_box]     — Listing 1: fused stencil + boundary, implicit
                          box shape, neighbour count computed inline;
   - [volume_step]      — Listing 2 kernel 1: stencil over inside/boundary
                          points identified by the nbrs array;
   - [boundary_fi]      — Listing 2 kernel 2: simple in-place boundary
                          absorption, single material;
   - [boundary_fi_mm]   — Listing 3: frequency-independent multi-material;
   - [boundary_fd_mm]   — Listing 4: frequency-dependent multi-material
                          with per-point ODE-branch state. *)

let lambda_coeffs (p : Params.t) =
  let l = Params.l p in
  (l, l *. l)

(* Listing 1.  Updates [next] from [curr]/[prev] over the whole grid of a
   box room; [beta] is the single wall admittance. *)
let fused_fi_box (p : Params.t) ~(dims : Geometry.dims) ~beta ~prev ~curr ~next =
  let { Geometry.nx; ny; nz } = dims in
  let l, l2 = lambda_coeffs p in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let idx = (z * nx * ny) + (y * nx) + x in
        let nbr =
          (if x = 1 then 0 else 1)
          + (if y = 1 then 0 else 1)
          + (if z = 1 then 0 else 1)
          + (if x = nx - 2 then 0 else 1)
          + (if y = ny - 2 then 0 else 1)
          + if z = nz - 2 then 0 else 1
        in
        let nbr =
          if x = 0 || y = 0 || z = 0 || x = nx - 1 || y = ny - 1 || z = nz - 1 then 0
          else nbr
        in
        if nbr > 0 then begin
          let s =
            curr.(idx - 1) +. curr.(idx + 1) +. curr.(idx - nx) +. curr.(idx + nx)
            +. curr.(idx - (nx * ny))
            +. curr.(idx + (nx * ny))
          in
          let fnbr = float_of_int nbr in
          if nbr < 6 then begin
            let cf = 0.5 *. l *. float_of_int (6 - nbr) *. beta in
            next.(idx) <-
              (((2.0 -. (l2 *. fnbr)) *. curr.(idx)) +. (l2 *. s) +. ((cf -. 1.0) *. prev.(idx)))
              /. (1.0 +. cf)
          end
          else next.(idx) <- ((2.0 -. (l2 *. fnbr)) *. curr.(idx)) +. (l2 *. s) -. prev.(idx)
        end
      done
    done
  done

(* Listing 2, kernel 1.  Stencil over points with nbr > 0; the boundary
   absorption is deferred to a separate boundary kernel. *)
let volume_step (p : Params.t) ~(dims : Geometry.dims) ~nbrs ~prev ~curr ~next =
  let { Geometry.nx; ny; nz } = dims in
  let _, l2 = lambda_coeffs p in
  let plane = nx * ny in
  let n = plane * nz in
  for idx = 0 to n - 1 do
    let nbr = nbrs.(idx) in
    if nbr > 0 then begin
      let s =
        curr.(idx - 1) +. curr.(idx + 1) +. curr.(idx - nx) +. curr.(idx + nx)
        +. curr.(idx - plane) +. curr.(idx + plane)
      in
      next.(idx) <-
        ((2.0 -. (l2 *. float_of_int nbr)) *. curr.(idx)) +. (l2 *. s) -. prev.(idx)
    end
  done

(* Listing 2, kernel 2.  Simple single-material boundary handling,
   updating [next] in place at the boundary indices. *)
let boundary_fi (p : Params.t) ~boundary_indices ~nbrs ~beta ~prev ~next =
  let l, _ = lambda_coeffs p in
  Array.iter
    (fun idx ->
      let nbr = nbrs.(idx) in
      let cf = 0.5 *. l *. float_of_int (6 - nbr) *. beta in
      next.(idx) <- (next.(idx) +. (cf *. prev.(idx))) /. (1.0 +. cf))
    boundary_indices

(* Listing 3.  Frequency-independent, multi-material boundary handling. *)
let boundary_fi_mm (p : Params.t) ~boundary_indices ~nbrs ~material ~beta ~prev ~next =
  let l, _ = lambda_coeffs p in
  Array.iteri
    (fun i idx ->
      let nbr = nbrs.(idx) in
      let mi = material.(i) in
      let cf = 0.5 *. l *. float_of_int (6 - nbr) *. beta.(mi) in
      next.(idx) <- (next.(idx) +. (cf *. prev.(idx))) /. (1.0 +. cf))
    boundary_indices

(* Listing 4.  Frequency-dependent, multi-material boundary handling with
   [mb] ODE branches.  Coefficient tables are flat [mi * mb + b] arrays;
   branch state arrays are branch-major (ci = b * numBoundaryPoints + i).
   Reads [g1]/[v2 = vel_prev]; writes [next], [g1] and [v1 = vel_next]. *)
let boundary_fd_mm (p : Params.t) ~mb ~boundary_indices ~nbrs ~material ~beta ~bi ~d ~f ~di
    ~prev ~next ~g1 ~vel_prev ~vel_next =
  let l, _ = lambda_coeffs p in
  let nb = Array.length boundary_indices in
  let tg1 = Array.make (max 1 mb) 0. in
  let tv2 = Array.make (max 1 mb) 0. in
  for i = 0 to nb - 1 do
    let idx = boundary_indices.(i) in
    let nbr = nbrs.(idx) in
    let mi = material.(i) in
    let cf1 = l *. float_of_int (6 - nbr) in
    let cf = 0.5 *. cf1 *. beta.(mi) in
    let nv = ref next.(idx) in
    let pv = prev.(idx) in
    for b = 0 to mb - 1 do
      let ci = (b * nb) + i in
      tg1.(b) <- g1.(ci);
      tv2.(b) <- vel_prev.(ci);
      let mb_i = (mi * mb) + b in
      nv := !nv -. (cf1 *. bi.(mb_i) *. ((2.0 *. d.(mb_i) *. tv2.(b)) -. (f.(mb_i) *. tg1.(b))))
    done;
    let nv = (!nv +. (cf *. pv)) /. (1.0 +. cf) in
    next.(idx) <- nv;
    for b = 0 to mb - 1 do
      let ci = (b * nb) + i in
      let mb_i = (mi * mb) + b in
      let v1 =
        bi.(mb_i) *. (nv -. pv +. (di.(mb_i) *. tv2.(b)) -. (2.0 *. f.(mb_i) *. tg1.(b)))
      in
      g1.(ci) <- tg1.(b) +. (0.5 *. (v1 +. tv2.(b)));
      vel_next.(ci) <- v1
    done
  done

(* Convenience drivers: run one full time step (volume + boundary) on a
   [State.t] and rotate. *)

let step_fi p (st : State.t) ~beta =
  volume_step p ~dims:st.room.Geometry.dims ~nbrs:st.room.Geometry.nbrs ~prev:st.prev
    ~curr:st.curr ~next:st.next;
  boundary_fi p ~boundary_indices:st.room.Geometry.boundary_indices
    ~nbrs:st.room.Geometry.nbrs ~beta ~prev:st.prev ~next:st.next;
  State.rotate st

let step_fi_mm p (st : State.t) ~beta =
  volume_step p ~dims:st.room.Geometry.dims ~nbrs:st.room.Geometry.nbrs ~prev:st.prev
    ~curr:st.curr ~next:st.next;
  boundary_fi_mm p ~boundary_indices:st.room.Geometry.boundary_indices
    ~nbrs:st.room.Geometry.nbrs ~material:st.room.Geometry.material ~beta ~prev:st.prev
    ~next:st.next;
  State.rotate st

let step_fd_mm p (st : State.t) ~beta ~bi ~d ~f ~di =
  let mb = st.n_branches in
  volume_step p ~dims:st.room.Geometry.dims ~nbrs:st.room.Geometry.nbrs ~prev:st.prev
    ~curr:st.curr ~next:st.next;
  boundary_fd_mm p ~mb ~boundary_indices:st.room.Geometry.boundary_indices
    ~nbrs:st.room.Geometry.nbrs ~material:st.room.Geometry.material ~beta ~bi ~d ~f ~di
    ~prev:st.prev ~next:st.next ~g1:st.g1 ~vel_prev:st.vel_prev ~vel_next:st.vel_next;
  State.rotate st
