lib/acoustics/material.ml: Array Complex List
