lib/acoustics/hand_kernels.ml: Array Kernel_ast List
