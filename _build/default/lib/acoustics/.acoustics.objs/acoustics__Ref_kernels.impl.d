lib/acoustics/ref_kernels.ml: Array Geometry Params State
