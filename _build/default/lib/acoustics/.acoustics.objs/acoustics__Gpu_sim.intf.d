lib/acoustics/gpu_sim.mli: Geometry Hashtbl Kernel_ast Material Params State Vgpu
