lib/acoustics/ref_kernels.mli: Geometry Params State
