lib/acoustics/gpu_sim.ml: Array Geometry Hashtbl Kernel_ast List Material Params Printf State Vgpu
