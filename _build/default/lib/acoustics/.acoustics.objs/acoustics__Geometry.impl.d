lib/acoustics/geometry.ml: Array Bytes Char List
