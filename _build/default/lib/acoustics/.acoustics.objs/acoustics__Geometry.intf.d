lib/acoustics/geometry.mli:
