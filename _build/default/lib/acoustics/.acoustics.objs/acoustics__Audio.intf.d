lib/acoustics/audio.mli:
