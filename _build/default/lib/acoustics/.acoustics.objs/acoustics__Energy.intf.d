lib/acoustics/energy.mli: State
