lib/acoustics/audio.ml: Array Buffer Char Float List
