lib/acoustics/hand_kernels.mli: Kernel_ast
