lib/acoustics/state.mli: Geometry
