lib/acoustics/params.ml:
