lib/acoustics/energy.ml: Array Float Geometry State
