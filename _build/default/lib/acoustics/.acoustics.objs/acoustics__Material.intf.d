lib/acoustics/material.mli: Complex
