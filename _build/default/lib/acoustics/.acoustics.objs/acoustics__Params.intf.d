lib/acoustics/params.mli:
