lib/acoustics/state.ml: Array Geometry
