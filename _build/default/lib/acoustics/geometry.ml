(* Room geometries and their boundary data structures.

   A room is discretised into an Nx*Ny*Nz voxel grid (dimensions include
   the zero halo, as in the paper's Table II).  For every voxel the
   [nbrs] array stores how many of its six face neighbours lie inside the
   room — 6 strictly inside, 1..5 at the boundary, 0 outside (never
   updated).  Complex shapes additionally need the explicit
   [boundary_indices] array listing the linear indices of boundary voxels
   and a per-boundary-point [material] index (paper §II-B..II-D).

   Three shapes are provided:
   - [Box]: the full cuboid interior (the paper's box);
   - [Dome]: the upper half of an ellipsoid whose semi-axes fill the
     grid ((Nx-2)/2, (Ny-2)/2, Nz-2) standing on the floor plane — the
     paper's non-cuboid room, with boundary-point counts in the same
     regime as Table II;
   - [L_shape]: a box with one quadrant removed — a re-entrant corner,
     the canonical case where the implicit Boolean boundary formulas of
     Listing 1 break down.

   Geometry at the paper's full sizes (up to 73M voxels) is needed only
   in aggregate by the performance model, so [stats] streams over the
   grid with three rolling bit-planes instead of materialising arrays;
   [build] materialises everything for simulation-sized rooms. *)

type shape =
  | Box
  | Dome
  | L_shape

type dims = { nx : int; ny : int; nz : int }

let dims ~nx ~ny ~nz =
  if nx < 3 || ny < 3 || nz < 3 then invalid_arg "Geometry.dims: need at least 3^3";
  { nx; ny; nz }

let n_points { nx; ny; nz } = nx * ny * nz

(* The paper's three room sizes (Table II), largest first. *)
let paper_sizes =
  [ dims ~nx:602 ~ny:402 ~nz:302; dims ~nx:336 ~ny:336 ~nz:336; dims ~nx:302 ~ny:202 ~nz:152 ]

let size_label d = string_of_int d.nx

let inside shape { nx; ny; nz } x y z =
  match shape with
  | Box -> x >= 1 && x <= nx - 2 && y >= 1 && y <= ny - 2 && z >= 1 && z <= nz - 2
  | L_shape ->
      (* a box with the far x/y quadrant removed at every height: the
         simplest room with a re-entrant corner, where the implicit
         Boolean-formula boundary of Listing 1 breaks down and the
         explicit nbrs/boundaryIndices data structures are required *)
      x >= 1 && x <= nx - 2 && y >= 1 && y <= ny - 2 && z >= 1 && z <= nz - 2
      && not (x > nx / 2 && y > ny / 2)
  | Dome ->
      if z < 1 || z > nz - 2 || x < 1 || x > nx - 2 || y < 1 || y > ny - 2 then false
      else begin
        let ax = float_of_int (nx - 2) /. 2. in
        let ay = float_of_int (ny - 2) /. 2. in
        let az = float_of_int (nz - 2) in
        let cx = float_of_int (nx - 1) /. 2. in
        let cy = float_of_int (ny - 1) /. 2. in
        let dx = (float_of_int x -. cx) /. ax in
        let dy = (float_of_int y -. cy) /. ay in
        let dz = float_of_int (z - 1) /. az in
        (dx *. dx) +. (dy *. dy) +. (dz *. dz) <= 1.
      end

(* Iterate over every voxel in linear-index order calling
   [f ~x ~y ~z ~idx ~nbr], with [nbr] the inside-neighbour count (0 for
   outside voxels).  Uses three rolling planes of insideness so the cost
   is one [inside] evaluation per voxel. *)
let iter_voxels shape d ~f =
  let { nx; ny; nz } = d in
  let plane_sz = nx * ny in
  let fill_plane p z =
    if z < 0 || z >= nz then Bytes.fill p 0 plane_sz '\000'
    else
      for y = 0 to ny - 1 do
        for x = 0 to nx - 1 do
          Bytes.unsafe_set p ((y * nx) + x) (if inside shape d x y z then '\001' else '\000')
        done
      done
  in
  let below = ref (Bytes.create plane_sz) in
  let cur = ref (Bytes.create plane_sz) in
  let above = ref (Bytes.create plane_sz) in
  fill_plane !below (-1);
  fill_plane !cur 0;
  fill_plane !above 1;
  for z = 0 to nz - 1 do
    let b = !below and c = !cur and a = !above in
    let at p x y = if x < 0 || x >= nx || y < 0 || y >= ny then 0 else Char.code (Bytes.unsafe_get p ((y * nx) + x)) in
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let idx = (z * plane_sz) + (y * nx) + x in
        let nbr =
          if at c x y = 0 then 0
          else at c (x - 1) y + at c (x + 1) y + at c x (y - 1) + at c x (y + 1) + at b x y + at a x y
        in
        f ~x ~y ~z ~idx ~nbr
      done
    done;
    (* rotate planes: below <- cur, cur <- above, above <- fresh(z+2) *)
    let tmp = !below in
    below := !cur;
    cur := !above;
    above := tmp;
    fill_plane !above (z + 2)
  done

type stats = {
  s_points : int;       (* total voxels incl. halo *)
  s_inside : int;       (* voxels with nbr > 0 (updated by the volume kernel) *)
  s_boundary : int;     (* voxels with 0 < nbr < 6 *)
  s_contiguity : float; (* fraction of consecutive boundary indices that are adjacent *)
}

let stats shape d =
  let inside_n = ref 0 and boundary = ref 0 and contiguous = ref 0 in
  let last_b = ref min_int in
  iter_voxels shape d ~f:(fun ~x:_ ~y:_ ~z:_ ~idx ~nbr ->
      if nbr > 0 then begin
        incr inside_n;
        if nbr < 6 then begin
          incr boundary;
          if idx = !last_b + 1 then incr contiguous;
          last_b := idx
        end
      end);
  let s_contiguity =
    if !boundary <= 1 then 1.
    else float_of_int !contiguous /. float_of_int (!boundary - 1)
  in
  { s_points = n_points d; s_inside = !inside_n; s_boundary = !boundary; s_contiguity }

type room = {
  shape : shape;
  dims : dims;
  nbrs : int array;              (* per voxel, length nx*ny*nz *)
  boundary_indices : int array;  (* linear indices of boundary voxels, ascending *)
  material : int array;          (* per boundary point, same length *)
  n_inside : int;
}

(* Deterministic material assignment: horizontal bands, floor first.
   With [n_materials = 1] every boundary point uses material 0. *)
let material_of_voxel ~n_materials ~nz z =
  if n_materials <= 1 then 0
  else begin
    let band = z * n_materials / nz in
    if band < 0 then 0 else if band >= n_materials then n_materials - 1 else band
  end

let build ?(n_materials = 1) shape d =
  let n = n_points d in
  let nbrs = Array.make n 0 in
  let boundary_rev = ref [] in
  let n_boundary = ref 0 in
  let n_inside = ref 0 in
  iter_voxels shape d ~f:(fun ~x:_ ~y:_ ~z ~idx ~nbr ->
      nbrs.(idx) <- nbr;
      if nbr > 0 then begin
        incr n_inside;
        if nbr < 6 then begin
          incr n_boundary;
          boundary_rev := (idx, z) :: !boundary_rev
        end
      end);
  let pairs = Array.of_list (List.rev !boundary_rev) in
  let boundary_indices = Array.map fst pairs in
  let material =
    Array.map (fun (_, z) -> material_of_voxel ~n_materials ~nz:d.nz z) pairs
  in
  { shape; dims = d; nbrs; boundary_indices; material; n_inside = !n_inside }

let n_boundary room = Array.length room.boundary_indices

let shape_label = function Box -> "box" | Dome -> "dome" | L_shape -> "l-shape"
