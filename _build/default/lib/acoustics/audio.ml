(* Audio utilities: impulse responses as WAV files and simple spectral
   analysis.

   Room impulse responses are the product a room-acoustics simulation
   exists to produce (auralization, paper §I); this module writes
   mono 16-bit PCM WAV files and provides a small DFT for inspecting how
   frequency-dependent boundaries shape the spectrum. *)

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

(* Normalise to peak [level] (default -1 dBFS-ish). *)
let normalise ?(level = 0.89) samples =
  let peak = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0. samples in
  if peak = 0. then Array.copy samples
  else Array.map (fun v -> v /. peak *. level) samples

let write_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let write_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

(* Serialise to a mono 16-bit PCM WAV byte string. *)
let wav_bytes ~sample_rate (samples : float array) : string =
  let n = Array.length samples in
  let data_bytes = n * 2 in
  let b = Buffer.create (44 + data_bytes) in
  Buffer.add_string b "RIFF";
  write_u32 b (36 + data_bytes);
  Buffer.add_string b "WAVE";
  Buffer.add_string b "fmt ";
  write_u32 b 16;
  write_u16 b 1 (* PCM *);
  write_u16 b 1 (* mono *);
  write_u32 b sample_rate;
  write_u32 b (sample_rate * 2) (* byte rate *);
  write_u16 b 2 (* block align *);
  write_u16 b 16 (* bits *);
  Buffer.add_string b "data";
  write_u32 b data_bytes;
  Array.iter
    (fun v ->
      let s = int_of_float (Float.round (clamp v (-1.) 1. *. 32767.)) in
      let s = if s < 0 then s + 65536 else s in
      write_u16 b s)
    samples;
  Buffer.contents b

let write_wav path ~sample_rate samples =
  let oc = open_out_bin path in
  output_string oc (wav_bytes ~sample_rate samples);
  close_out oc

(* Magnitude of the DFT at [bins] equally spaced frequencies up to
   Nyquist (naive O(n*bins); impulse responses are short). *)
let dft_magnitudes ?(bins = 64) (samples : float array) : float array =
  let n = Array.length samples in
  Array.init bins (fun k ->
      (* bin k covers normalised frequency (k+1)/(2*bins) *)
      let w = Float.pi *. float_of_int (k + 1) /. float_of_int bins /. 2. *. 2. in
      let re = ref 0. and im = ref 0. in
      for t = 0 to n - 1 do
        let ph = w *. float_of_int t in
        re := !re +. (samples.(t) *. cos ph);
        im := !im -. (samples.(t) *. sin ph)
      done;
      sqrt ((!re *. !re) +. (!im *. !im)) /. float_of_int n)

(* Energy in octave bands centred at 125..8000 Hz. *)
let octave_bands = [ 125.; 250.; 500.; 1000.; 2000.; 4000.; 8000. ]

let octave_band_energies ~sample_rate (samples : float array) : (float * float) list =
  let n = Array.length samples in
  let goertzel f =
    (* power at one frequency via the Goertzel recurrence *)
    let w = 2. *. Float.pi *. f /. sample_rate in
    let coeff = 2. *. cos w in
    let s0 = ref 0. and s1 = ref 0. and s2 = ref 0. in
    for t = 0 to n - 1 do
      s0 := samples.(t) +. (coeff *. !s1) -. !s2;
      s2 := !s1;
      s1 := !s0
    done;
    (!s1 *. !s1) +. (!s2 *. !s2) -. (coeff *. !s1 *. !s2)
  in
  List.filter_map
    (fun fc ->
      if fc *. sqrt 2. >= sample_rate /. 2. then None
      else begin
        (* sample 5 frequencies across the band and average *)
        let lo = fc /. sqrt 2. and hi = fc *. sqrt 2. in
        let acc = ref 0. in
        for i = 0 to 4 do
          let f = lo *. ((hi /. lo) ** (float_of_int i /. 4.)) in
          acc := !acc +. goertzel f
        done;
        Some (fc, !acc /. 5.)
      end)
    octave_bands

let db x = if x <= 0. then -120. else Float.max (-120.) (10. *. log10 x)
