(* Drive a room-acoustics simulation through the virtual GPU.

   Kernel arguments are resolved *by parameter name* against the live
   simulation state, so the same driver runs the hand-written kernels and
   the Lift-generated kernels (both follow the paper's naming convention:
   prev/curr/next grids, bidx/nbrs/material boundary data, beta/bi/d/f/di
   coefficient tables, g1/v1/v2 branch state).

   The per-step kernel sequence is the paper's two-kernel structure:
   volume handling first, boundary handling second, then buffer rotation
   on the host. *)

open Kernel_ast.Cast

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (* single-material admittance for the FI kernels *)
  engine : [ `Interp | `Jit ];
  jit_cache : (string, Vgpu.Jit.compiled) Hashtbl.t;
  mutable launches : int;
}

let create ?(engine = `Jit) ?(fi_beta = 0.1) ?(materials = Material.defaults)
    ?(n_branches = 3) params room =
  {
    params;
    state = State.create ~n_branches room;
    tables = Material.tables ~n_branches materials;
    fi_beta;
    engine;
    jit_cache = Hashtbl.create 8;
    launches = 0;
  }

let scalar_int t name : Vgpu.Args.t =
  let { Geometry.nx; ny; nz } = t.state.room.Geometry.dims in
  match name with
  | "Nx" -> Int_arg nx
  | "Ny" -> Int_arg ny
  | "Nz" -> Int_arg nz
  | "NxNy" -> Int_arg (nx * ny)
  | "N" -> Int_arg (nx * ny * nz)
  | "nB" -> Int_arg (Geometry.n_boundary t.state.room)
  | "MB" -> Int_arg t.state.n_branches
  | "NM" -> Int_arg (Array.length t.tables.Material.t_beta)
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown int scalar %s" name)

let scalar_real t name : Vgpu.Args.t =
  match name with
  | "l" -> Real_arg (Params.l t.params)
  | "l2" -> Real_arg (Params.l2 t.params)
  | "beta" -> Real_arg t.fi_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown real scalar %s" name)

let buffer t name : Vgpu.Args.t =
  let st = t.state in
  let room = st.room in
  match name with
  | "prev" -> Buf (Vgpu.Buffer.F st.prev)
  | "curr" -> Buf (Vgpu.Buffer.F st.curr)
  | "next" -> Buf (Vgpu.Buffer.F st.next)
  | "nbrs" -> Buf (Vgpu.Buffer.I room.Geometry.nbrs)
  | "bidx" -> Buf (Vgpu.Buffer.I room.Geometry.boundary_indices)
  | "material" -> Buf (Vgpu.Buffer.I room.Geometry.material)
  | "beta" -> Buf (Vgpu.Buffer.F t.tables.Material.t_beta)
  | "beta_fd" -> Buf (Vgpu.Buffer.F t.tables.Material.t_beta_fd)
  | "bi" -> Buf (Vgpu.Buffer.F t.tables.Material.t_bi)
  | "d" -> Buf (Vgpu.Buffer.F t.tables.Material.t_d)
  | "f" -> Buf (Vgpu.Buffer.F t.tables.Material.t_f)
  | "di" -> Buf (Vgpu.Buffer.F t.tables.Material.t_di)
  | "g1" -> Buf (Vgpu.Buffer.F st.g1)
  | "v2" -> Buf (Vgpu.Buffer.F st.vel_prev)
  | "v1" -> Buf (Vgpu.Buffer.F st.vel_next)
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown buffer %s" name)

let args_for t (k : kernel) =
  List.map
    (fun p ->
      match (p.p_kind, p.p_ty) with
      | Global_buf, _ -> buffer t p.p_name
      | Scalar_param, Int -> scalar_int t p.p_name
      | Scalar_param, Real -> scalar_real t p.p_name)
    k.params

(* Resolve the kernel's symbolic global size against the scalar
   environment. *)
let global_size t (k : kernel) =
  List.map
    (fun e ->
      match e with
      | Int_lit n -> n
      | Var name -> (
          match scalar_int t name with
          | Int_arg n -> n
          | _ -> failwith "gpu_sim: non-int global size")
      | _ -> failwith "gpu_sim: unsupported global size expression")
    k.global_size

let launch t (k : kernel) =
  let args = args_for t k in
  let global = global_size t k in
  t.launches <- t.launches + 1;
  match t.engine with
  | `Interp -> Vgpu.Exec.launch k ~args ~global
  | `Jit ->
      let compiled =
        match Hashtbl.find_opt t.jit_cache k.name with
        | Some c when c.Vgpu.Jit.kernel == k -> c
        | _ ->
            let c = Vgpu.Jit.compile k in
            Hashtbl.replace t.jit_cache k.name c;
            c
      in
      Vgpu.Jit.launch compiled ~args ~global

(* One time step: run each kernel in order, then rotate the buffers. *)
let step t (kernels : kernel list) =
  List.iter (launch t) kernels;
  State.rotate t.state

(* Run [steps] steps recording the field at the receiver after each. *)
let run t (kernels : kernel list) ~steps ~receiver:(rx, ry, rz) =
  let out = Array.make steps 0. in
  for n = 0 to steps - 1 do
    step t kernels;
    out.(n) <- State.read t.state ~x:rx ~y:ry ~z:rz
  done;
  out
