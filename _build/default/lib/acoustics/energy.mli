(** Energy accounting for stability and passivity tests.

    The SLF scheme at the Courant limit with rigid walls is marginally
    stable (bounded field); any boundary loss must make the energy
    decay.  Note that every loss term acts on du/dt and spatial
    differences, so the DC (spatially constant) component of the field
    is invisible to them: use {!kinetic_energy} (DC-free) to observe
    dissipation. *)

val sum_squares : float array -> float
val max_abs : float array -> float

val field_energy : State.t -> float
(** Squared-field proxy over the two live time levels; includes the DC
    component. *)

val kinetic_energy : State.t -> float
(** DC-free proxy: squared discrete time derivative.  Decays to zero for
    any dissipative configuration, stays bounded for rigid walls. *)

val dc_offset : State.t -> float
(** Mean field value over inside points. *)

val branch_energy : State.t -> float
(** Energy stored in the FD boundary branch state. *)
