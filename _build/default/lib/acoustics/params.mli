(** Simulation parameters for the 3D FDTD wave equation (the SLF —
    standard leapfrog — scheme of the paper's kernels).

    Stability of the 7-point SLF scheme requires a Courant number
    [l = c*dt/h <= 1/sqrt 3]; the customary choice, used by the paper's
    source codes and taken as the default, is equality. *)

type t = {
  lambda : float;       (** Courant number l = c*dt/h *)
  c : float;            (** speed of sound, m/s *)
  sample_rate : float;  (** temporal sample rate 1/dt, Hz *)
}

val courant_limit : float
(** 1/sqrt 3. *)

val default : t
(** Courant limit, c = 344 m/s, 44.1 kHz. *)

val create : ?lambda:float -> ?c:float -> ?sample_rate:float -> unit -> t
(** @raise Invalid_argument if [lambda] is outside (0, 1/sqrt 3]. *)

val l : t -> float
val l2 : t -> float

val grid_spacing : t -> float
(** Spacing implied by the stability condition and sample rate, m. *)

val dt : t -> float
