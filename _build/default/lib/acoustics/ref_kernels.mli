(** Pure-OCaml reference implementations of the paper's kernels —
    direct ports of Listings 1-4, the numerical ground truth for both
    the hand-written kernel ASTs and the Lift-generated kernels. *)

val fused_fi_box :
  Params.t ->
  dims:Geometry.dims ->
  beta:float ->
  prev:float array ->
  curr:float array ->
  next:float array ->
  unit
(** Listing 1: fused stencil + boundary, implicit box shape. *)

val volume_step :
  Params.t ->
  dims:Geometry.dims ->
  nbrs:int array ->
  prev:float array ->
  curr:float array ->
  next:float array ->
  unit
(** Listing 2, kernel 1: stencil over points with nbr > 0. *)

val boundary_fi :
  Params.t ->
  boundary_indices:int array ->
  nbrs:int array ->
  beta:float ->
  prev:float array ->
  next:float array ->
  unit
(** Listing 2, kernel 2: single-material in-place boundary update. *)

val boundary_fi_mm :
  Params.t ->
  boundary_indices:int array ->
  nbrs:int array ->
  material:int array ->
  beta:float array ->
  prev:float array ->
  next:float array ->
  unit
(** Listing 3: frequency-independent multi-material. *)

val boundary_fd_mm :
  Params.t ->
  mb:int ->
  boundary_indices:int array ->
  nbrs:int array ->
  material:int array ->
  beta:float array ->
  bi:float array ->
  d:float array ->
  f:float array ->
  di:float array ->
  prev:float array ->
  next:float array ->
  g1:float array ->
  vel_prev:float array ->
  vel_next:float array ->
  unit
(** Listing 4: frequency-dependent with [mb] ODE branches.  Coefficient
    tables are flat [mi*mb + b]; state arrays branch-major
    [b*nB + i].  [beta] must be the effective FD admittance
    ({!Material.tables}). *)

(** {1 Full-step drivers (volume + boundary + rotate)} *)

val step_fi : Params.t -> State.t -> beta:float -> unit
val step_fi_mm : Params.t -> State.t -> beta:float array -> unit

val step_fd_mm :
  Params.t ->
  State.t ->
  beta:float array ->
  bi:float array ->
  d:float array ->
  f:float array ->
  di:float array ->
  unit
