(* Geometry: property tests against brute-force recomputation, plus
   material-band assignment and the paper-size statistics regime. *)

open Acoustics

(* Brute-force nbr computation straight from the inside predicate. *)
let brute_nbrs shape (dims : Geometry.dims) =
  let { Geometry.nx; ny; nz } = dims in
  let inside x y z = Geometry.inside shape dims x y z in
  let nbrs = Array.make (nx * ny * nz) 0 in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        let idx = (z * nx * ny) + (y * nx) + x in
        if inside x y z then
          nbrs.(idx) <-
            (if inside (x - 1) y z then 1 else 0)
            + (if inside (x + 1) y z then 1 else 0)
            + (if inside x (y - 1) z then 1 else 0)
            + (if inside x (y + 1) z then 1 else 0)
            + (if inside x y (z - 1) then 1 else 0)
            + if inside x y (z + 1) then 1 else 0
      done
    done
  done;
  nbrs

let qcheck_build_matches_bruteforce =
  let open QCheck in
  let gen =
    Gen.(
      triple (int_range 3 14) (int_range 3 14) (int_range 3 14) >>= fun (nx, ny, nz) ->
      oneofl [ Geometry.Box; Geometry.Dome; Geometry.L_shape ] >|= fun shape -> (shape, nx, ny, nz))
  in
  let arb =
    make
      ~print:(fun (s, x, y, z) -> Printf.sprintf "%s %dx%dx%d" (Geometry.shape_label s) x y z)
      gen
  in
  Test.make ~name:"build matches brute force" ~count:60 arb (fun (shape, nx, ny, nz) ->
      let dims = Geometry.dims ~nx ~ny ~nz in
      let room = Geometry.build shape dims in
      let brute = brute_nbrs shape dims in
      room.Geometry.nbrs = brute)

let qcheck_stats_match_build =
  let open QCheck in
  let gen =
    Gen.(
      triple (int_range 3 16) (int_range 3 16) (int_range 3 16) >>= fun (nx, ny, nz) ->
      oneofl [ Geometry.Box; Geometry.Dome; Geometry.L_shape ] >|= fun shape -> (shape, nx, ny, nz))
  in
  let arb =
    make
      ~print:(fun (s, x, y, z) -> Printf.sprintf "%s %dx%dx%d" (Geometry.shape_label s) x y z)
      gen
  in
  Test.make ~name:"streaming stats match materialisation" ~count:60 arb
    (fun (shape, nx, ny, nz) ->
      let dims = Geometry.dims ~nx ~ny ~nz in
      let room = Geometry.build shape dims in
      let s = Geometry.stats shape dims in
      let inside_count = Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 room.Geometry.nbrs in
      s.Geometry.s_inside = inside_count
      && s.Geometry.s_boundary = Geometry.n_boundary room
      && s.Geometry.s_contiguity >= 0.
      && s.Geometry.s_contiguity <= 1.)

let test_boundary_properties () =
  let dims = Geometry.dims ~nx:15 ~ny:13 ~nz:11 in
  List.iter
    (fun shape ->
      let room = Geometry.build shape dims in
      let b = room.Geometry.boundary_indices in
      Array.iteri
        (fun i idx ->
          (* strictly ascending, all boundary points have 1..5 neighbours *)
          if i > 0 then assert (idx > b.(i - 1));
          let nbr = room.Geometry.nbrs.(idx) in
          assert (nbr >= 1 && nbr <= 5))
        b;
      (* every interior point not listed has 0 or 6 neighbours *)
      let in_boundary = Hashtbl.create 64 in
      Array.iter (fun idx -> Hashtbl.replace in_boundary idx ()) b;
      Array.iteri
        (fun idx nbr ->
          if not (Hashtbl.mem in_boundary idx) then assert (nbr = 0 || nbr = 6))
        room.Geometry.nbrs)
    [ Geometry.Box; Geometry.Dome ]

let test_l_shape () =
  let dims = Geometry.dims ~nx:17 ~ny:15 ~nz:9 in
  let l = Geometry.build Geometry.L_shape dims in
  let box = Geometry.build Geometry.Box dims in
  Alcotest.(check bool) "smaller than the box" true
    (l.Geometry.n_inside < box.Geometry.n_inside);
  (* the re-entrant corner creates boundary points strictly inside the
     bounding box: some boundary voxel is interior in the plain box *)
  let has_reentrant =
    Array.exists (fun idx -> box.Geometry.nbrs.(idx) = 6) l.Geometry.boundary_indices
  in
  Alcotest.(check bool) "re-entrant boundary exists" true has_reentrant

let test_dome_inside_box () =
  let dims = Geometry.dims ~nx:21 ~ny:17 ~nz:11 in
  let box = Geometry.build Geometry.Box dims in
  let dome = Geometry.build Geometry.Dome dims in
  Alcotest.(check bool) "dome smaller than box" true
    (dome.Geometry.n_inside < box.Geometry.n_inside);
  Array.iteri
    (fun idx nbr -> if nbr > 0 then assert (box.Geometry.nbrs.(idx) > 0))
    dome.Geometry.nbrs

let test_material_bands () =
  let dims = Geometry.dims ~nx:12 ~ny:12 ~nz:20 in
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let mats = room.Geometry.material in
  Array.iter (fun m -> assert (m >= 0 && m < 4)) mats;
  (* all four bands are used on a tall room *)
  let used = Array.make 4 false in
  Array.iter (fun m -> used.(m) <- true) mats;
  Alcotest.(check bool) "all bands used" true (Array.for_all (fun b -> b) used);
  (* single-material rooms assign 0 *)
  let room1 = Geometry.build ~n_materials:1 Geometry.Box dims in
  Array.iter (fun m -> assert (m = 0)) room1.Geometry.material

let test_paper_sizes_regime () =
  (* only the smallest paper size is materialised here (fast); the
     box formula is exact *)
  let dims = Geometry.dims ~nx:302 ~ny:202 ~nz:152 in
  let s = Geometry.stats Geometry.Box dims in
  Alcotest.(check int) "box inside" (300 * 200 * 150) s.Geometry.s_inside;
  Alcotest.(check int) "box boundary" ((300 * 200 * 150) - (298 * 198 * 148)) s.Geometry.s_boundary;
  (* paper Table II reports 272,608 boundary points for this box *)
  let paper = 272_608 in
  let ratio = float_of_int s.Geometry.s_boundary /. float_of_int paper in
  Alcotest.(check bool) "within 5% of Table II" true (ratio > 0.95 && ratio < 1.05);
  let sd = Geometry.stats Geometry.Dome dims in
  let paper_dome = 172_256 in
  let ratio_d = float_of_int sd.Geometry.s_boundary /. float_of_int paper_dome in
  Alcotest.(check bool)
    (Printf.sprintf "dome within 25%% of Table II (%d vs %d)" sd.Geometry.s_boundary paper_dome)
    true
    (ratio_d > 0.75 && ratio_d < 1.25)

let test_degenerate_dims () =
  match Geometry.dims ~nx:2 ~ny:5 ~nz:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted degenerate dims"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_build_matches_bruteforce;
    QCheck_alcotest.to_alcotest qcheck_stats_match_build;
    Alcotest.test_case "boundary properties" `Quick test_boundary_properties;
    Alcotest.test_case "dome inside box" `Quick test_dome_inside_box;
    Alcotest.test_case "l-shaped room" `Quick test_l_shape;
    Alcotest.test_case "material bands" `Quick test_material_bands;
    Alcotest.test_case "paper sizes regime" `Quick test_paper_sizes_regime;
    Alcotest.test_case "degenerate dims rejected" `Quick test_degenerate_dims;
  ]
