(* Type checking: positive cases for every pattern, negative cases for
   the errors users actually hit, and the paper-specific rules (Concat
   length arithmetic, the WriteTo scatter idiom). *)

open Lift

let n = Size.var "N"
let nb = Size.var "nB"
let vec = Ty.array Ty.real n
let ivec = Ty.array Ty.int n

let infer e = Typecheck.infer [] e

let check_ty msg expected e = Alcotest.(check bool) msg true (Ty.equal expected (infer e))

let expect_error msg e =
  match infer e with
  | exception Typecheck.Type_error _ -> ()
  | t -> Alcotest.failf "%s: expected type error, got %s" msg (Ty.to_string t)

let p name ty = Ast.Param (Ast.named_param name ty)

let test_scalars () =
  check_ty "int lit" Ty.int (Ast.int 3);
  check_ty "real lit" Ty.real (Ast.real 3.5);
  check_ty "int+int" Ty.int Ast.(int 1 +! int 2);
  check_ty "int+real promotes" Ty.real Ast.(int 1 +! real 2.0);
  check_ty "comparison is int" Ty.int Ast.(real 1.0 <! real 2.0);
  check_ty "to_real" Ty.real (Ast.to_real (Ast.int 3));
  check_ty "call" Ty.real (Ast.Call (Kernel_ast.Cast.Sqrt, [ Ast.real 2.0 ]));
  expect_error "binop on array" Ast.(p "a" vec +! int 1)

let test_tuples () =
  check_ty "tuple" (Ty.tuple [ Ty.int; Ty.real ]) (Ast.Tuple [ Ast.int 1; Ast.real 2. ]);
  check_ty "get" Ty.real (Ast.Get (Ast.Tuple [ Ast.int 1; Ast.real 2. ], 1));
  expect_error "get out of range" (Ast.Get (Ast.Tuple [ Ast.int 1 ], 3));
  expect_error "get from scalar" (Ast.Get (Ast.int 1, 0))

let test_map_reduce () =
  check_ty "map real->real" vec
    (Ast.map (Ast.lam1 Ty.real (fun x -> Ast.(x *! real 2.))) (p "a" vec));
  check_ty "map changes element type" ivec
    (Ast.map (Ast.lam1 Ty.real (fun x -> Ast.(x >! real 0.))) (p "a" vec));
  check_ty "reduce" Ty.real
    (Ast.Reduce (Ast.lam2 Ty.real Ty.real (fun a x -> Ast.(a +! x)), Ast.real 0., p "a" vec));
  expect_error "map over scalar" (Ast.map (Ast.lam1 Ty.real (fun x -> x)) (Ast.real 1.));
  expect_error "reduce type mismatch"
    (Ast.Reduce (Ast.lam2 Ty.real Ty.real (fun _ x -> Ast.(x >! real 0.)), Ast.real 0., p "a" vec))

let test_zip () =
  check_ty "zip"
    (Ty.array (Ty.tuple [ Ty.real; Ty.int ]) n)
    (Ast.Zip [ p "a" vec; p "b" ivec ]);
  expect_error "zip length mismatch" (Ast.Zip [ p "a" vec; p "b" (Ty.array Ty.int nb) ]);
  expect_error "zip of scalar" (Ast.Zip [ Ast.int 1 ])

let test_shape_patterns () =
  check_ty "slide windows"
    (Ty.array (Ty.array_n Ty.real 3) (Size.add (Size.sub n (Size.const 3)) (Size.const 1)))
    (Ast.Slide (3, 1, p "a" vec));
  check_ty "pad grows" (Ty.array Ty.real (Size.add n (Size.const 3)))
    (Ast.Pad (1, 2, Ast.real 0., p "a" vec));
  expect_error "pad constant mismatch" (Ast.Pad (1, 1, Ast.int 0, p "a" vec));
  check_ty "split" (Ty.array (Ty.array Ty.real (Size.const 4)) (Size.div n (Size.const 4)))
    (Ast.Split (Size.const 4, p "a" vec));
  (* symbolically, (N/4)*4 is not provably N; with concrete lengths the
     round trip types exactly *)
  let vec8 = Ty.array_n Ty.real 8 in
  check_ty "join inverts split (concrete)" vec8
    (Ast.Join (Ast.Split (Size.const 4, p "a8" vec8)));
  check_ty "iota" (Ty.array Ty.int n) (Ast.Iota n)

let test_concat_skip () =
  (* concat of skip + cons + skip types as the full array *)
  let idx = Ast.named_param "idx" Ty.int in
  let row =
    Ast.scatter_row ~elt_ty:Ty.real ~n ~sym:"_s" ~index:(Ast.Param idx) (Ast.real 1.0)
  in
  let t = Typecheck.infer [ (idx.Ast.p_id, Ty.int) ] row in
  Alcotest.(check bool) "scatter row has length N" true (Ty.equal t vec);
  check_ty "concat adds lengths"
    (Ty.array Ty.real (Size.add n n))
    (Ast.Concat [ p "a" vec; p "b" vec ]);
  expect_error "concat element mismatch" (Ast.Concat [ p "a" vec; p "b" ivec ])

let test_write_to () =
  check_ty "write_to same type" vec
    (Ast.Write_to (p "a" vec, Ast.map (Ast.lam1 Ty.real (fun x -> x)) (p "a" vec)));
  (* scatter idiom: rows typed like the target *)
  let rows =
    Ast.map
      (Ast.lam1 ~name:"i" Ty.int (fun i ->
           Ast.scatter_row ~elt_ty:Ty.real ~n ~sym:"_t" ~index:i (Ast.real 0.)))
      (p "idx" (Ty.array Ty.int nb))
  in
  check_ty "write_to scatter idiom" vec (Ast.Write_to (p "a" vec, rows));
  expect_error "write_to wrong type" (Ast.Write_to (p "a" vec, p "b" ivec));
  check_ty "write_to scalar location" Ty.real
    (Ast.Write_to (Ast.Array_access (p "a" vec, Ast.int 0), Ast.real 1.))

let test_let_to_private () =
  check_ty "let binds type" Ty.real
    (Ast.let_ Ty.real (Ast.real 1.) (fun x -> Ast.(x +! real 1.)));
  check_ty "to_private keeps type" (Ty.array_n Ty.real 3)
    (Ast.To_private (Ast.map (Ast.lam1 Ty.int Ast.to_real) (Ast.Iota (Size.const 3))));
  expect_error "to_private needs static size" (Ast.To_private (p "a" vec))

let test_programs_check () =
  (* every shipped acoustics program type-checks *)
  List.iter
    (fun (name, prog) ->
      match Typecheck.infer_program prog with
      | _ -> ()
      | exception Typecheck.Type_error m -> Alcotest.failf "%s: %s" name m)
    [
      ("volume", Lift_acoustics.Programs.volume ());
      ("boundary_fi", Lift_acoustics.Programs.boundary_fi ());
      ("boundary_fi_mm", Lift_acoustics.Programs.boundary_fi_mm ());
      ("boundary_fd_mm", Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ());
      ("fused_fi", Lift_acoustics.Programs.fused_fi ());
    ]

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "tuples" `Quick test_tuples;
    Alcotest.test_case "map and reduce" `Quick test_map_reduce;
    Alcotest.test_case "zip" `Quick test_zip;
    Alcotest.test_case "slide/pad/split/join/iota" `Quick test_shape_patterns;
    Alcotest.test_case "concat and skip" `Quick test_concat_skip;
    Alcotest.test_case "writeTo" `Quick test_write_to;
    Alcotest.test_case "let and toPrivate" `Quick test_let_to_private;
    Alcotest.test_case "acoustics programs type-check" `Quick test_programs_check;
  ]
