(* Cross-validation of the three kernel implementations on small rooms:

   1. pure-OCaml references (ports of paper Listings 1-4) against each
      other (fused == two-kernel on a box);
   2. hand-written kernel ASTs (interpreter and JIT) against references;
   3. Lift-generated kernels against references;
   plus geometry invariants and physical energy behaviour. *)

open Acoustics

let params = Params.default
let box_dims = Geometry.dims ~nx:14 ~ny:12 ~nz:10
let dome_dims = Geometry.dims ~nx:17 ~ny:15 ~nz:9

let approx_arrays ?(eps = 1e-9) msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Float.abs (x -. b.(i)) > eps *. (1. +. Float.abs x) then
        Alcotest.failf "%s: index %d differs: %.17g vs %.17g" msg i x b.(i))
    a

(* Run [steps] reference steps of the given scheme and return the curr
   grid (and optionally branch state). *)
let run_ref_fi ~steps ~beta room =
  let st = State.create room in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Ref_kernels.step_fi params st ~beta
  done;
  st

let run_gpu ~engine ~steps ~kernels ~fi_beta ?(n_branches = 3) room =
  let sim = Gpu_sim.create ~engine ~fi_beta ~n_branches params room in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Gpu_sim.step sim kernels
  done;
  sim.Gpu_sim.state

let test_fused_equals_two_kernel () =
  let room = Geometry.build Geometry.Box box_dims in
  let beta = 0.3 in
  (* fused *)
  let st1 = State.create room in
  let cx, cy, cz = State.centre st1 in
  State.add_impulse st1 ~x:cx ~y:cy ~z:cz;
  for _ = 1 to 25 do
    Ref_kernels.fused_fi_box params ~dims:box_dims ~beta ~prev:st1.prev ~curr:st1.curr
      ~next:st1.next;
    State.rotate st1
  done;
  (* two-kernel *)
  let st2 = run_ref_fi ~steps:25 ~beta room in
  approx_arrays "fused vs two-kernel" st1.curr st2.curr

let test_hand_kernels_match_reference () =
  List.iter
    (fun (shape, dims) ->
      let room = Geometry.build ~n_materials:4 shape dims in
      let beta = 0.25 in
      let st_ref = run_ref_fi ~steps:20 ~beta room in
      let kernels =
        [ Hand_kernels.volume ~precision:Kernel_ast.Cast.Double;
          Hand_kernels.boundary_fi ~precision:Kernel_ast.Cast.Double ]
      in
      List.iter
        (fun engine ->
          let st = run_gpu ~engine ~steps:20 ~kernels ~fi_beta:beta room in
          approx_arrays
            (Printf.sprintf "hand FI %s" (Geometry.shape_label shape))
            st_ref.curr st.curr)
        [ `Jit; `Interp ])
    [ (Geometry.Box, box_dims); (Geometry.Dome, dome_dims) ]

let test_hand_fused_matches_reference () =
  let room = Geometry.build Geometry.Box box_dims in
  let beta = 0.4 in
  (* reference fused *)
  let st1 = State.create room in
  let cx, cy, cz = State.centre st1 in
  State.add_impulse st1 ~x:cx ~y:cy ~z:cz;
  for _ = 1 to 15 do
    Ref_kernels.fused_fi_box params ~dims:box_dims ~beta ~prev:st1.prev ~curr:st1.curr
      ~next:st1.next;
    State.rotate st1
  done;
  let kernels = [ Hand_kernels.fused_fi ~precision:Kernel_ast.Cast.Double ] in
  let st = run_gpu ~engine:`Jit ~steps:15 ~kernels ~fi_beta:beta room in
  approx_arrays "hand fused FI" st1.curr st.curr

let materials4 = Material.defaults

let run_ref_fi_mm ~steps room =
  let beta = (Material.tables ~n_branches:3 materials4).Material.t_beta in
  let st = State.create room in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Ref_kernels.step_fi_mm params st ~beta
  done;
  st

let test_fi_mm_hand_and_lift () =
  List.iter
    (fun (shape, dims) ->
      let room = Geometry.build ~n_materials:4 shape dims in
      let st_ref = run_ref_fi_mm ~steps:20 room in
      let betas = (Material.tables ~n_branches:3 materials4).Material.t_beta in
      (* hand-written *)
      let hand =
        [ Hand_kernels.volume ~precision:Kernel_ast.Cast.Double;
          Hand_kernels.boundary_fi_mm ~precision:Kernel_ast.Cast.Double ~betas ]
      in
      let st_h = run_gpu ~engine:`Jit ~steps:20 ~kernels:hand ~fi_beta:0.0 room in
      approx_arrays
        (Printf.sprintf "hand FI-MM %s" (Geometry.shape_label shape))
        st_ref.curr st_h.curr;
      (* lift-generated *)
      let lift_kernels =
        [ (Lift_acoustics.Programs.compile ~name:"volume" ~precision:Kernel_ast.Cast.Double
             (Lift_acoustics.Programs.volume ()))
            .Lift.Codegen.kernel;
          (Lift_acoustics.Programs.compile ~name:"boundary_fi_mm"
             ~precision:Kernel_ast.Cast.Double
             (Lift_acoustics.Programs.boundary_fi_mm ()))
            .Lift.Codegen.kernel;
        ]
      in
      List.iter
        (fun engine ->
          let st_l = run_gpu ~engine ~steps:20 ~kernels:lift_kernels ~fi_beta:0.0 room in
          approx_arrays
            (Printf.sprintf "lift FI-MM %s" (Geometry.shape_label shape))
            st_ref.curr st_l.curr)
        [ `Jit; `Interp ])
    [ (Geometry.Box, box_dims); (Geometry.Dome, dome_dims); (Geometry.L_shape, box_dims) ]

let run_ref_fd_mm ~steps ~mb room =
  let t = Material.tables ~n_branches:mb materials4 in
  let beta = t.Material.t_beta_fd
  and bi = t.Material.t_bi
  and d = t.Material.t_d
  and f = t.Material.t_f
  and di = t.Material.t_di in
  let st = State.create ~n_branches:mb room in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Ref_kernels.step_fd_mm params st ~beta ~bi ~d ~f ~di
  done;
  st

let test_fd_mm_hand_and_lift () =
  let mb = 3 in
  List.iter
    (fun (shape, dims) ->
      let room = Geometry.build ~n_materials:4 shape dims in
      let st_ref = run_ref_fd_mm ~steps:20 ~mb room in
      let hand =
        [ Hand_kernels.volume ~precision:Kernel_ast.Cast.Double;
          Hand_kernels.boundary_fd_mm ~precision:Kernel_ast.Cast.Double ~mb ]
      in
      let st_h = run_gpu ~engine:`Jit ~steps:20 ~kernels:hand ~fi_beta:0.0 ~n_branches:mb room in
      approx_arrays
        (Printf.sprintf "hand FD-MM %s grid" (Geometry.shape_label shape))
        st_ref.curr st_h.curr;
      approx_arrays "hand FD-MM g1" st_ref.g1 st_h.g1;
      approx_arrays "hand FD-MM vel" st_ref.vel_prev st_h.vel_prev;
      let lift_kernels =
        [ (Lift_acoustics.Programs.compile ~name:"volume" ~precision:Kernel_ast.Cast.Double
             (Lift_acoustics.Programs.volume ()))
            .Lift.Codegen.kernel;
          (Lift_acoustics.Programs.compile ~name:"boundary_fd_mm"
             ~precision:Kernel_ast.Cast.Double
             (Lift_acoustics.Programs.boundary_fd_mm ~mb ()))
            .Lift.Codegen.kernel;
        ]
      in
      let st_l = run_gpu ~engine:`Jit ~steps:20 ~kernels:lift_kernels ~fi_beta:0.0 ~n_branches:mb room in
      approx_arrays
        (Printf.sprintf "lift FD-MM %s grid" (Geometry.shape_label shape))
        st_ref.curr st_l.curr;
      approx_arrays "lift FD-MM g1" st_ref.g1 st_l.g1;
      approx_arrays "lift FD-MM vel" st_ref.vel_prev st_l.vel_prev)
    [ (Geometry.Box, box_dims); (Geometry.Dome, dome_dims); (Geometry.L_shape, box_dims) ]

(* The FD-MM ablation variants (global staging, point-major layout) must
   compute the same field; only their memory behaviour differs.  The
   point-major variant lays branch state out differently, so only the
   grid is compared. *)
let test_fd_mm_ablation_variants () =
  let mb = 3 in
  let room = Geometry.build ~n_materials:4 Geometry.Box box_dims in
  let st_ref = run_ref_fd_mm ~steps:20 ~mb room in
  let volume_k =
    (Lift_acoustics.Programs.compile ~name:"volume" ~precision:Kernel_ast.Cast.Double
       (Lift_acoustics.Programs.volume ()))
      .Lift.Codegen.kernel
  in
  List.iter
    (fun (label, staging, layout) ->
      let k =
        (Lift_acoustics.Programs.compile ~name:"fd_variant" ~precision:Kernel_ast.Cast.Double
           (Lift_acoustics.Programs.boundary_fd_mm ~staging ~layout ~mb ()))
          .Lift.Codegen.kernel
      in
      let st =
        run_gpu ~engine:`Jit ~steps:20 ~kernels:[ volume_k; k ] ~fi_beta:0.0 ~n_branches:mb room
      in
      approx_arrays (Printf.sprintf "fd-mm variant %s grid" label) st_ref.curr st.curr)
    [
      ("global staging", `Global, `Branch_major);
      ("point-major", `Private, `Point_major);
      ("global+point-major", `Global, `Point_major);
    ];
  (* global staging re-reads branch state: strictly more global loads *)
  let loads staging =
    let k =
      (Lift_acoustics.Programs.compile ~name:"fd" ~precision:Kernel_ast.Cast.Double
         (Lift_acoustics.Programs.boundary_fd_mm ~staging ~mb ()))
        .Lift.Codegen.kernel
    in
    Kernel_ast.Analysis.total_loads (Kernel_ast.Analysis.kernel_counts k)
  in
  Alcotest.(check bool) "global staging loads more" true (loads `Global > loads `Private)

let test_lift_fused_fi () =
  let room = Geometry.build Geometry.Box box_dims in
  let beta = 0.2 in
  let st_ref = run_ref_fi ~steps:15 ~beta room in
  let k =
    (Lift_acoustics.Programs.compile ~name:"fused_fi" ~precision:Kernel_ast.Cast.Double
       (Lift_acoustics.Programs.fused_fi ()))
      .Lift.Codegen.kernel
  in
  let st = run_gpu ~engine:`Jit ~steps:15 ~kernels:[ k ] ~fi_beta:beta room in
  approx_arrays "lift fused FI" st_ref.curr st.curr

(* Geometry invariants *)
let test_geometry () =
  let room = Geometry.build Geometry.Box box_dims in
  let { Geometry.nx; ny; nz } = box_dims in
  let inner a = a - 2 in
  let expected_inside = inner nx * inner ny * inner nz in
  Alcotest.(check int) "box inside count" expected_inside room.Geometry.n_inside;
  let expected_boundary =
    expected_inside - ((inner nx - 2) * (inner ny - 2) * (inner nz - 2))
  in
  Alcotest.(check int) "box boundary count" expected_boundary (Geometry.n_boundary room);
  (* boundary indices strictly ascending *)
  let b = room.Geometry.boundary_indices in
  Array.iteri (fun i idx -> if i > 0 then assert (idx > b.(i - 1))) b;
  (* streaming stats agree with materialisation *)
  let s = Geometry.stats Geometry.Box box_dims in
  Alcotest.(check int) "stats inside" room.Geometry.n_inside s.Geometry.s_inside;
  Alcotest.(check int) "stats boundary" (Geometry.n_boundary room) s.Geometry.s_boundary;
  assert (s.Geometry.s_contiguity >= 0. && s.Geometry.s_contiguity <= 1.);
  (* dome fits in the box and has fewer boundary points than volume *)
  let d = Geometry.build Geometry.Dome dome_dims in
  assert (d.Geometry.n_inside > 0);
  assert (Geometry.n_boundary d > 0);
  assert (d.Geometry.n_inside < Geometry.n_points dome_dims);
  let sd = Geometry.stats Geometry.Dome dome_dims in
  Alcotest.(check int) "dome stats boundary" (Geometry.n_boundary d) sd.Geometry.s_boundary

(* Physics: rigid box conserves (bounded), lossy boundaries dissipate. *)
let test_energy_behaviour () =
  let room = Geometry.build Geometry.Box box_dims in
  (* rigid: beta = 0 *)
  let st = run_ref_fi ~steps:300 ~beta:0.0 room in
  let e_rigid = Energy.kinetic_energy st in
  assert (e_rigid > 1e-4);
  assert (Energy.max_abs st.curr < 10.);
  (* lossy: energy decays monotonically-ish over long windows *)
  let st = State.create room in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  (* The pointwise field-energy proxy oscillates as energy moves between
     kinetic and potential form; average over a window to see the decay. *)
  let window_energy () =
    let acc = ref 0. in
    for _ = 1 to 20 do
      Ref_kernels.step_fi params st ~beta:0.5;
      acc := !acc +. Energy.kinetic_energy st
    done;
    !acc /. 20.
  in
  let e1 = window_energy () in
  for _ = 1 to 100 do
    Ref_kernels.step_fi params st ~beta:0.5
  done;
  let e2 = window_energy () in
  for _ = 1 to 100 do
    Ref_kernels.step_fi params st ~beta:0.5
  done;
  let e3 = window_energy () in
  if not (e2 < e1 && e3 < e2) then Alcotest.failf "energy not decaying: %g %g %g" e1 e2 e3;
  (* FD-MM with passive branches dissipates too *)
  let mb = 3 in
  let t = Material.tables ~n_branches:mb materials4 in
  let beta = t.Material.t_beta_fd
  and bi = t.Material.t_bi
  and d = t.Material.t_d
  and f = t.Material.t_f
  and di = t.Material.t_di in
  let st = State.create ~n_branches:mb room in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  let window_fd () =
    let acc = ref 0. in
    for _ = 1 to 20 do
      Ref_kernels.step_fd_mm params st ~beta ~bi ~d ~f ~di;
      acc := !acc +. Energy.kinetic_energy st
    done;
    !acc /. 20.
  in
  for _ = 1 to 100 do
    Ref_kernels.step_fd_mm params st ~beta ~bi ~d ~f ~di
  done;
  let e_start = ref (window_fd ()) in
  for _ = 1 to 300 do
    Ref_kernels.step_fd_mm params st ~beta ~bi ~d ~f ~di
  done;
  let e_end = window_fd () in
  if not (e_end < !e_start) then
    Alcotest.failf "FD-MM energy not decaying: %g -> %g" !e_start e_end;
  assert (Energy.max_abs st.curr < 10.)

(* Single precision rounds on store: results differ from double but only
   slightly after a few steps. *)
let test_single_precision () =
  let room = Geometry.build Geometry.Box box_dims in
  let kd =
    [ Hand_kernels.volume ~precision:Kernel_ast.Cast.Double;
      Hand_kernels.boundary_fi ~precision:Kernel_ast.Cast.Double ]
  in
  let ks =
    [ Hand_kernels.volume ~precision:Kernel_ast.Cast.Single;
      Hand_kernels.boundary_fi ~precision:Kernel_ast.Cast.Single ]
  in
  let std = run_gpu ~engine:`Jit ~steps:10 ~kernels:kd ~fi_beta:0.3 room in
  let sts = run_gpu ~engine:`Jit ~steps:10 ~kernels:ks ~fi_beta:0.3 room in
  let diff = ref 0. in
  let same = ref true in
  Array.iteri
    (fun i x ->
      let d = Float.abs (x -. sts.curr.(i)) in
      if d > !diff then diff := d;
      if x <> sts.curr.(i) then same := false)
    std.curr;
  if !same then Alcotest.fail "single precision identical to double (rounding not applied)";
  if !diff > 1e-3 then Alcotest.failf "single precision diverged: max diff %g" !diff

let suite =
  [
    Alcotest.test_case "fused == two-kernel (reference)" `Quick test_fused_equals_two_kernel;
    Alcotest.test_case "hand FI kernels == reference" `Quick test_hand_kernels_match_reference;
    Alcotest.test_case "hand fused FI == reference" `Quick test_hand_fused_matches_reference;
    Alcotest.test_case "FI-MM: hand & lift == reference" `Quick test_fi_mm_hand_and_lift;
    Alcotest.test_case "FD-MM: hand & lift == reference" `Quick test_fd_mm_hand_and_lift;
    Alcotest.test_case "FD-MM ablation variants == reference" `Quick test_fd_mm_ablation_variants;
    Alcotest.test_case "lift fused FI == reference" `Quick test_lift_fused_fi;
    Alcotest.test_case "geometry invariants" `Quick test_geometry;
    Alcotest.test_case "energy behaviour" `Quick test_energy_behaviour;
    Alcotest.test_case "single precision rounding" `Quick test_single_precision;
  ]
