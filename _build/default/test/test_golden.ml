(* Golden tests: the generated OpenCL for the paper's kernels, compared
   against committed snapshots with uniquifying digits stripped (fresh
   name counters depend on construction order).  These pin down the
   code generator's output shape: any structural regression — a lost
   guard, a duplicated load, a changed index expression — fails here
   with a readable diff. *)

let strip s =
  let b = Buffer.create (String.length s) in
  String.iter (fun c -> if not ('0' <= c && c <= '9') then Buffer.add_char b c) s;
  Buffer.contents b

let check_golden name expected actual =
  let e = strip expected and a = strip actual in
  if e <> a then
    Alcotest.failf "%s: generated kernel changed.\n--- expected (digits stripped)\n%s\n--- got\n%s"
      name e a

let test_boundary_fi_mm_golden () =
  let c =
    Lift_acoustics.Programs.compile ~name:"boundary_fi_mm" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.boundary_fi_mm ())
  in
  check_golden "boundary_fi_mm"
    {|__kernel void boundary_fi_mm(__global int* restrict bidx, __global int* restrict nbrs, __global int* restrict material, __global double* restrict beta, __global double* restrict prev, __global double* restrict next, const double l, const int N, const int NM, const int nB) {
  int gid0_1 = get_global_id(0);
  if (gid0_1 < nB) {
    int idx_9_2 = bidx[gid0_1];
    int mi_10_3 = material[gid0_1];
    int nbr_11_4 = nbrs[idx_9_2];
    double betaVal_12_5 = beta[mi_10_3];
    double cf_13_6 = 0.5 * l * (double)(6 - nbr_11_4) * betaVal_12_5;
    next[idx_9_2] = (next[idx_9_2] + cf_13_6 * prev[idx_9_2]) / (1.0 + cf_13_6);
  }
}
|}
    (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)

let test_volume_golden () =
  let c =
    Lift_acoustics.Programs.compile ~name:"volume" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.volume ())
  in
  check_golden "volume"
    {|__kernel void volume(__global int* restrict nbrs, __global double* restrict prev, __global double* restrict curr, __global double* restrict next, const int Nx, const int NxNy, const double l2, const int N) {
  int gid0_1 = get_global_id(0);
  if (gid0_1 < N) {
    int nbr_32_2 = nbrs[gid0_1];
    double sel_4;
    if (nbr_32_2 > 0) {
      double s_33_3 = curr[gid0_1 - 1] + curr[gid0_1 + 1] + curr[gid0_1 - Nx] + curr[gid0_1 + Nx] + curr[gid0_1 - NxNy] + curr[gid0_1 + NxNy];
      sel_4 = (2.0 - l2 * (double)(nbr_32_2)) * curr[gid0_1] + l2 * s_33_3 - prev[gid0_1];
    } else {
      sel_4 = 0.0;
    }
    next[gid0_1] = sel_4;
  }
}
|}
    (Kernel_ast.Print.kernel_to_string c.Lift.Codegen.kernel)

(* Structural invariants that must hold for every generated acoustics
   kernel, whatever the names: a single NDRange guard, no unguarded
   global store, every loop bound a constant or scalar parameter. *)
let test_structural_invariants () =
  let kernels =
    [
      Lift_acoustics.Programs.compile ~name:"k1" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.volume ());
      Lift_acoustics.Programs.compile ~name:"k2" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.boundary_fi_mm ());
      Lift_acoustics.Programs.compile ~name:"k3" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.boundary_fd_mm ~mb:3 ());
      Lift_acoustics.Programs.compile ~name:"k4" ~precision:Kernel_ast.Cast.Double
        (Lift_acoustics.Programs.fused_fi ());
    ]
  in
  List.iter
    (fun (c : Lift.Codegen.compiled) ->
      let k = c.Lift.Codegen.kernel in
      (* top level: declarations followed by a single guarded If *)
      let rec top = function
        | [] -> Alcotest.failf "%s: no NDRange guard" k.Kernel_ast.Cast.name
        | Kernel_ast.Cast.If (_, _, []) :: rest when rest = [] -> ()
        | (Kernel_ast.Cast.Decl _ | Kernel_ast.Cast.Decl_arr _ | Kernel_ast.Cast.Comment _) :: rest ->
            top rest
        | s :: _ ->
            Alcotest.failf "%s: unguarded top-level statement %s" k.Kernel_ast.Cast.name
              (match s with
              | Kernel_ast.Cast.Store _ -> "store"
              | Kernel_ast.Cast.For _ -> "for"
              | _ -> "other")
      in
      top k.Kernel_ast.Cast.body;
      (* in-place kernels take no out parameter *)
      if c.Lift.Codegen.out_param <> None && k.Kernel_ast.Cast.name <> "k_none" then
        Alcotest.failf "%s: unexpected out buffer" k.Kernel_ast.Cast.name)
    kernels

let suite =
  [
    Alcotest.test_case "golden: boundary_fi_mm" `Quick test_boundary_fi_mm_golden;
    Alcotest.test_case "golden: volume" `Quick test_volume_golden;
    Alcotest.test_case "structural invariants" `Quick test_structural_invariants;
  ]
