(* Multi-dimensional pattern macros (transpose, slide2/slide3, pad3) and
   the Listing-6-style 3D fused FI kernel built from them. *)

open Lift

let sizes tbl name = List.assoc_opt name tbl

(* 3D helpers on interpreter values *)
let arr3_of f ~nz ~ny ~nx =
  Eval.VArr
    (Array.init nz (fun z ->
         Eval.VArr
           (Array.init ny (fun y ->
                Eval.VArr (Array.init nx (fun x -> Eval.VReal (f x y z)))))))

let get3 v z y x =
  Eval.as_real (Eval.as_arr (Eval.as_arr (Eval.as_arr v).(z)).(y)).(x)

let test_transpose () =
  let ty = Ty.array_n (Ty.array_n Ty.real 3) 2 in
  let a = Ast.named_param "a" ty in
  let prog = { Ast.l_params = [ a ]; l_body = Ast.Transpose (Ast.Param a) } in
  let input =
    Eval.VArr
      [|
        Eval.VArr [| Eval.VReal 1.; Eval.VReal 2.; Eval.VReal 3. |];
        Eval.VArr [| Eval.VReal 4.; Eval.VReal 5.; Eval.VReal 6. |];
      |]
  in
  let v = Eval.run prog [ input ] in
  Alcotest.(check (float 0.)) "t[0][1]" 4. (Eval.as_real (Eval.as_arr (Eval.as_arr v).(0)).(1));
  Alcotest.(check (float 0.)) "t[2][0]" 3. (Eval.as_real (Eval.as_arr (Eval.as_arr v).(2)).(0));
  (* typecheck *)
  let t = Typecheck.infer_program prog in
  Alcotest.(check bool) "transposed type" true
    (Ty.equal t (Ty.array_n (Ty.array_n Ty.real 2) 3))

let test_slide3_semantics () =
  (* W[pz][ny][mx][dz][dy][dx] = a[pz+dz][ny+dy][mx+dx] *)
  let nz, ny, nx = (5, 4, 6) in
  let ty =
    Ty.array
      (Ty.array (Ty.array Ty.real (Size.var "NX")) (Size.var "NY"))
      (Size.var "NZ")
  in
  let a = Ast.named_param "a" ty in
  let prog = { Ast.l_params = [ a ]; l_body = Macros.slide3 3 1 ~ty (Ast.Param a) } in
  let f x y z = float_of_int ((z * 100) + (y * 10) + x) in
  let input = arr3_of f ~nz ~ny ~nx in
  let v =
    Eval.run
      ~sizes:(sizes [ ("NZ", nz); ("NY", ny); ("NX", nx) ])
      prog [ input ]
  in
  let outer = Eval.as_arr v in
  Alcotest.(check int) "z windows" (nz - 2) (Array.length outer);
  let w = Eval.as_arr (Eval.as_arr (Eval.as_arr v).(1)).(0) in
  (* window at (pz=1, ny=0, mx=2) *)
  let win = w.(2) in
  for dz = 0 to 2 do
    for dy = 0 to 2 do
      for dx = 0 to 2 do
        Alcotest.(check (float 0.))
          (Printf.sprintf "w[%d][%d][%d]" dz dy dx)
          (f (2 + dx) (0 + dy) (1 + dz))
          (get3 win dz dy dx)
      done
    done
  done

let test_pad3_semantics () =
  let nz, ny, nx = (2, 2, 3) in
  let ty =
    Ty.array (Ty.array (Ty.array Ty.real (Size.var "NX")) (Size.var "NY")) (Size.var "NZ")
  in
  let a = Ast.named_param "a" ty in
  let prog =
    { Ast.l_params = [ a ]; l_body = Macros.pad3 1 1 (Ast.real 7.) ~ty (Ast.Param a) }
  in
  let input = arr3_of (fun x y z -> float_of_int (x + y + z)) ~nz ~ny ~nx in
  let v =
    Eval.run ~sizes:(sizes [ ("NZ", nz); ("NY", ny); ("NX", nx) ]) prog [ input ]
  in
  Alcotest.(check (float 0.)) "corner is fill" 7. (get3 v 0 0 0);
  Alcotest.(check (float 0.)) "interior preserved" 0. (get3 v 1 1 1);
  Alcotest.(check (float 0.)) "interior (1,2,1)->(0,1,0)" 1. (get3 v 1 2 1);
  Alcotest.(check (float 0.)) "far corner is fill" 7. (get3 v (nz + 1) (ny + 1) (nx + 1))

(* slide2 compiled: a 2D blur through views only (no temp buffers). *)
let test_slide2_compiled () =
  let n = 6 and m = 5 in
  let ty = Ty.array (Ty.array Ty.real (Size.var "M")) (Size.var "N") in
  let a = Ast.named_param "a" ty in
  let win2 = Ty.array_n (Ty.array_n Ty.real 3) 3 in
  let sum_win w =
    let at dy dx = Ast.Array_access (Ast.Array_access (w, Ast.int dy), Ast.int dx) in
    let open Ast in
    at 0 0 +! at 0 1 +! at 0 2 +! at 1 0 +! at 1 1 +! at 1 2 +! at 2 0 +! at 2 1 +! at 2 2
  in
  let row_win_ty = Ty.array win2 (Size.sub (Size.var "M") (Size.const 2)) in
  let prog =
    {
      Ast.l_params = [ a ];
      l_body =
        Ast.map_glb ~dim:1
          (Ast.lam1 row_win_ty (fun row ->
               Ast.map_glb ~dim:0 (Ast.lam1 win2 sum_win) row))
          (Macros.slide2 3 1 ~ty (Ast.Param a));
    }
  in
  let c = Codegen.compile_kernel ~name:"blur2d" ~precision:Kernel_ast.Cast.Double prog in
  Alcotest.(check int) "no temp buffers (views only)" 0 (List.length c.Codegen.temp_params);
  (* run and compare against a straightforward OCaml blur *)
  let input = Array.init (n * m) (fun i -> float_of_int (i * i mod 17)) in
  let out = Array.make ((n - 2) * (m - 2)) 0. in
  let args =
    List.map
      (fun (p : Kernel_ast.Cast.param) ->
        match (p.p_kind, p.p_name) with
        | Kernel_ast.Cast.Global_buf, "a" -> Vgpu.Args.Buf (Vgpu.Buffer.F input)
        | Kernel_ast.Cast.Global_buf, "out" -> Vgpu.Args.Buf (Vgpu.Buffer.F out)
        | Kernel_ast.Cast.Scalar_param, "N" -> Vgpu.Args.Int_arg n
        | Kernel_ast.Cast.Scalar_param, "M" -> Vgpu.Args.Int_arg m
        | _ -> Alcotest.failf "unexpected param %s" p.p_name)
      c.Codegen.kernel.Kernel_ast.Cast.params
  in
  Vgpu.Jit.launch (Vgpu.Jit.compile c.Codegen.kernel) ~args ~global:[ m - 2; n - 2 ];
  for y = 0 to n - 3 do
    for x = 0 to m - 3 do
      let expected = ref 0. in
      for dy = 0 to 2 do
        for dx = 0 to 2 do
          expected := !expected +. input.(((y + dy) * m) + x + dx)
        done
      done;
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "blur(%d,%d)" y x)
        !expected
        out.((y * (m - 2)) + x)
    done
  done

(* The Listing-6-style 3D kernel against the reference fused step. *)
let test_fused_fi_3d () =
  let open Acoustics in
  let params = Params.default in
  let dims = Geometry.dims ~nx:12 ~ny:10 ~nz:8 in
  let { Geometry.nx; ny; nz } = dims in
  let nx2 = nx - 2 and ny2 = ny - 2 and nz2 = nz - 2 in
  let beta = 0.3 in
  (* reference: full grid with halo *)
  let st = State.create (Geometry.build Geometry.Box dims) in
  let cx, cy, cz = State.centre st in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  (* lift: interior-only grids *)
  let ni = nx2 * ny2 * nz2 in
  let li_prev = Array.make ni 0. and li_curr = Array.make ni 0. and li_next = Array.make ni 0. in
  let li_idx x y z = ((z - 1) * ny2 * nx2) + ((y - 1) * nx2) + (x - 1) in
  li_curr.(li_idx cx cy cz) <- 1.0;
  let c =
    Lift_acoustics.Programs.compile ~name:"fused_fi_3d" ~precision:Kernel_ast.Cast.Double
      (Lift_acoustics.Programs.fused_fi_3d ())
  in
  let compiled = Vgpu.Jit.compile c.Lift.Codegen.kernel in
  let launch prev curr next =
    let args =
      List.map
        (fun (p : Kernel_ast.Cast.param) ->
          match (p.p_kind, p.p_name) with
          | Kernel_ast.Cast.Global_buf, "prev" -> Vgpu.Args.Buf (Vgpu.Buffer.F prev)
          | Kernel_ast.Cast.Global_buf, "curr" -> Vgpu.Args.Buf (Vgpu.Buffer.F curr)
          | Kernel_ast.Cast.Global_buf, "next" -> Vgpu.Args.Buf (Vgpu.Buffer.F next)
          | Kernel_ast.Cast.Scalar_param, "Nx2" -> Vgpu.Args.Int_arg nx2
          | Kernel_ast.Cast.Scalar_param, "Ny2" -> Vgpu.Args.Int_arg ny2
          | Kernel_ast.Cast.Scalar_param, "Nz2" -> Vgpu.Args.Int_arg nz2
          | Kernel_ast.Cast.Scalar_param, "l" -> Vgpu.Args.Real_arg (Params.l params)
          | Kernel_ast.Cast.Scalar_param, "l2" -> Vgpu.Args.Real_arg (Params.l2 params)
          | Kernel_ast.Cast.Scalar_param, "beta" -> Vgpu.Args.Real_arg beta
          | _ -> Alcotest.failf "unexpected param %s" p.Kernel_ast.Cast.p_name)
        c.Lift.Codegen.kernel.Kernel_ast.Cast.params
    in
    Vgpu.Jit.launch compiled ~args ~global:[ nx2; ny2; nz2 ]
  in
  let prev = ref li_prev and curr = ref li_curr and next = ref li_next in
  for _ = 1 to 12 do
    (* reference step on the full grid *)
    Ref_kernels.fused_fi_box params ~dims ~beta ~prev:st.State.prev ~curr:st.State.curr
      ~next:st.State.next;
    State.rotate st;
    (* lift step on the interior grid *)
    launch !prev !curr !next;
    let t = !prev in
    prev := !curr;
    curr := !next;
    next := t
  done;
  for z = 1 to nz - 2 do
    for y = 1 to ny - 2 do
      for x = 1 to nx - 2 do
        let r = State.read st ~x ~y ~z in
        let l = !curr.(li_idx x y z) in
        if Float.abs (r -. l) > 1e-11 *. (1. +. Float.abs r) then
          Alcotest.failf "fused_fi_3d differs at (%d,%d,%d): %.17g vs %.17g" x y z r l
      done
    done
  done

let suite =
  [
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "slide3 semantics" `Quick test_slide3_semantics;
    Alcotest.test_case "pad3 semantics" `Quick test_pad3_semantics;
    Alcotest.test_case "slide2 compiled (view-only)" `Quick test_slide2_compiled;
    Alcotest.test_case "fused FI 3D (Listing 6 style)" `Quick test_fused_fi_3d;
  ]
