(* Core Lift pipeline tests: typecheck → codegen → execute, validated
   against the IR interpreter on simple programs. *)

open Lift

let n_var = Size.var "N"

let check_floats msg expected actual =
  Alcotest.(check (list (float 1e-9))) msg (Array.to_list expected) (Array.to_list actual)

(* Compile a program and run it on the virtual GPU (both engines),
   returning the contents of the named buffer afterwards. *)
let run_kernel ?(engine = `Jit) (c : Codegen.compiled) ~(buffers : (string * Vgpu.Buffer.t) list)
    ~(ints : (string * int) list) =
  let k = c.Codegen.kernel in
  let lookup_int name =
    match List.assoc_opt name ints with
    | Some v -> v
    | None -> Alcotest.failf "missing int scalar %s" name
  in
  let args =
    List.map
      (fun (p : Kernel_ast.Cast.param) ->
        match (p.p_kind, p.p_ty) with
        | Global_buf, _ -> (
            match List.assoc_opt p.p_name buffers with
            | Some b -> Vgpu.Args.Buf b
            | None -> Alcotest.failf "missing buffer %s" p.p_name)
        | Scalar_param, Int -> Vgpu.Args.Int_arg (lookup_int p.p_name)
        | Scalar_param, Real -> Alcotest.failf "unexpected real scalar %s" p.p_name)
      k.params
  in
  let global =
    List.map
      (fun e ->
        match Kernel_ast.Cast.simplify e with
        | Kernel_ast.Cast.Int_lit n -> n
        | Kernel_ast.Cast.Var v -> lookup_int v
        | e -> Alcotest.failf "non-constant global size %s" (Kernel_ast.Print.expr_to_string e))
      k.global_size
  in
  match engine with
  | `Jit -> Vgpu.Jit.launch (Vgpu.Jit.compile k) ~args ~global
  | `Interp -> Vgpu.Exec.launch k ~args ~global

let vec_ty = Ty.array Ty.real n_var

(* map (+1) over a vector, all three execution routes *)
let test_map_add1 () =
  let prog =
    let a = Ast.named_param "a" vec_ty in
    {
      Ast.l_params = [ a ];
      l_body = Ast.map_glb (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 1.0))) (Ast.Param a);
    }
  in
  (* interpreter route *)
  let input = [| 1.0; 2.5; -3.0; 0.0; 10.0 |] in
  let v = Eval.run ~sizes:(function "N" -> Some 5 | _ -> None) prog [ Eval.of_float_array input ] in
  let expected = Array.map (fun x -> x +. 1.0) input in
  check_floats "eval" expected (Eval.to_float_array v);
  (* compiled routes *)
  let c = Codegen.compile_kernel ~name:"add1" ~precision:Kernel_ast.Cast.Double prog in
  Alcotest.(check (option string)) "has out param" (Some "out") c.out_param;
  List.iter
    (fun engine ->
      let out = Array.make 5 0. in
      run_kernel ~engine c
        ~buffers:[ ("a", Vgpu.Buffer.F (Array.copy input)); ("out", Vgpu.Buffer.F out) ]
        ~ints:[ ("N", 5) ];
      check_floats "compiled" expected out)
    [ `Jit; `Interp ]

(* zip + map: c[i] = a[i] + b[i] (the paper's §III-A example) *)
let test_zip_add () =
  let prog =
    let a = Ast.named_param "a" vec_ty in
    let b = Ast.named_param "b" vec_ty in
    let elt = Ty.tuple [ Ty.real; Ty.real ] in
    {
      Ast.l_params = [ a; b ];
      l_body =
        Ast.map_glb
          (Ast.lam1 elt (fun p -> Ast.(Get (p, 0) +! Get (p, 1))))
          (Ast.Zip [ Ast.Param a; Ast.Param b ]);
    }
  in
  let xa = [| 1.; 2.; 3.; 4. |] and xb = [| 10.; 20.; 30.; 40. |] in
  let expected = [| 11.; 22.; 33.; 44. |] in
  let v =
    Eval.run ~sizes:(function "N" -> Some 4 | _ -> None) prog
      [ Eval.of_float_array xa; Eval.of_float_array xb ]
  in
  check_floats "eval" expected (Eval.to_float_array v);
  let c = Codegen.compile_kernel ~name:"vecadd" ~precision:Kernel_ast.Cast.Double prog in
  let out = Array.make 4 0. in
  run_kernel c
    ~buffers:
      [ ("a", Vgpu.Buffer.F xa); ("b", Vgpu.Buffer.F xb); ("out", Vgpu.Buffer.F out) ]
    ~ints:[ ("N", 4) ];
  check_floats "compiled" expected out

(* 1D 3-point stencil via pad + slide + reduce (paper §III-B) *)
let test_stencil_1d () =
  let prog =
    let a = Ast.named_param "a" vec_ty in
    let win = Ty.array_n Ty.real 3 in
    {
      Ast.l_params = [ a ];
      l_body =
        Ast.map_glb
          (Ast.lam1 win (fun w ->
               Ast.Reduce
                 ( Ast.lam2 Ty.real Ty.real (fun acc x -> Ast.(acc +! x)),
                   Ast.real 0.0,
                   w )))
          (Ast.Slide (3, 1, Ast.Pad (1, 1, Ast.real 0.0, Ast.Param a)));
    }
  in
  let input = [| 1.; 2.; 3.; 4.; 5. |] in
  let expected = [| 3.; 6.; 9.; 12.; 9. |] in
  let v = Eval.run ~sizes:(function "N" -> Some 5 | _ -> None) prog [ Eval.of_float_array input ] in
  check_floats "eval" expected (Eval.to_float_array v);
  let c = Codegen.compile_kernel ~name:"stencil3" ~precision:Kernel_ast.Cast.Double prog in
  List.iter
    (fun engine ->
      let out = Array.make 5 0. in
      run_kernel ~engine c
        ~buffers:[ ("a", Vgpu.Buffer.F input); ("out", Vgpu.Buffer.F out) ]
        ~ints:[ ("N", 5) ];
      check_floats "compiled" expected out)
    [ `Jit; `Interp ]

(* In-place static write through Concat/Skip (paper §IV, Table I). *)
let test_inplace_static () =
  let n = Size.var "N" in
  let input_ty = Ty.array Ty.real n in
  let prog =
    let input = Ast.named_param "input" input_ty in
    let body =
      Ast.Write_to
        ( Ast.Param input,
          Ast.Concat
            [
              Ast.skip Ty.real (Size.const 2);
              Ast.Array_cons (Ast.real 99.0, 1);
              Ast.skip Ty.real (Size.sub n (Size.const 3));
            ] )
    in
    { Ast.l_params = [ input ]; l_body = body }
  in
  let input = [| 0.; 1.; 2.; 3.; 4. |] in
  let v =
    Eval.run ~sizes:(function "N" -> Some 5 | _ -> None) prog [ Eval.of_float_array input ]
  in
  check_floats "eval result" [| 0.; 1.; 99.; 3.; 4. |] (Eval.to_float_array v);
  let c = Codegen.compile_kernel ~name:"scatter" ~precision:Kernel_ast.Cast.Double prog in
  Alcotest.(check (option string)) "in-place: no out param" None c.out_param;
  let buf = [| 0.; 1.; 2.; 3.; 4. |] in
  run_kernel c ~buffers:[ ("input", Vgpu.Buffer.F buf) ] ~ints:[ ("N", 5) ];
  check_floats "compiled in-place" [| 0.; 1.; 99.; 3.; 4. |] buf

(* The full paper §IV-B2 idiom: Map(idx => WriteTo(input,
   Concat(Skip(idx), f(ArrayCons(input[idx],1)), Skip(N-1-idx)))) over a
   dynamic index array. *)
let test_inplace_scatter_dynamic () =
  let n = Size.var "N" and nb = Size.var "nB" in
  let input_ty = Ty.array Ty.real n in
  let idx_ty = Ty.array Ty.int nb in
  let prog =
    let input = Ast.named_param "input" input_ty in
    let indices = Ast.named_param "indices" idx_ty in
    let body =
      Ast.Write_to
        ( Ast.Param input,
          Ast.map_glb
            (Ast.lam1 ~name:"idx" Ty.int (fun i ->
                 Ast.scatter_row ~elt_ty:Ty.real ~n ~sym:"_skip" ~index:i
                   Ast.(Array_access (Param input, i) *! real 2.0)))
            (Ast.Param indices) )
    in
    { Ast.l_params = [ input; indices ]; l_body = body }
  in
  let sizes = function "N" -> Some 6 | "nB" -> Some 3 | _ -> None in
  let expected = [| 0.; 2.; 2.; 6.; 4.; 10. |] in
  let input = [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  let indices = [| 1; 3; 5 |] in
  let vin = Eval.of_float_array input in
  let _ = Eval.run ~sizes prog [ vin; Eval.of_int_array indices ] in
  check_floats "eval in-place" expected (Eval.to_float_array vin);
  let c = Codegen.compile_kernel ~name:"scatter_dyn" ~precision:Kernel_ast.Cast.Double prog in
  Alcotest.(check (option string)) "in-place: no out param" None c.out_param;
  List.iter
    (fun engine ->
      let buf = [| 0.; 1.; 2.; 3.; 4.; 5. |] in
      run_kernel ~engine c
        ~buffers:[ ("input", Vgpu.Buffer.F buf); ("indices", Vgpu.Buffer.I indices) ]
        ~ints:[ ("N", 6); ("nB", 3) ];
      check_floats "compiled in-place scatter" expected buf)
    [ `Jit; `Interp ]

let suite =
  [
    Alcotest.test_case "map add1" `Quick test_map_add1;
    Alcotest.test_case "zip add" `Quick test_zip_add;
    Alcotest.test_case "1d stencil" `Quick test_stencil_1d;
    Alcotest.test_case "in-place concat/skip (static)" `Quick test_inplace_static;
    Alcotest.test_case "in-place concat/skip (dynamic)" `Quick test_inplace_scatter_dynamic;
  ]
