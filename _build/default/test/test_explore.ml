(* Rewrite-space exploration: variant enumeration, deduplication, and
   model-guided selection. *)

open Lift

let n = Size.var "N"
let vec = Ty.array Ty.real n

(* A deliberately unfused pipeline with removable plumbing. *)
let pipeline () =
  let a = Ast.named_param "a" vec in
  let body =
    Ast.map
      (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 1.)))
      (Ast.map
         (Ast.lam1 Ty.real (fun x -> Ast.(x *! real 2.)))
         (Ast.Join (Ast.Split (Size.const 4, Ast.Param a))))
  in
  { Ast.l_params = [ a ]; l_body = body }

let test_variants () =
  let vs = Explore.variants ~depth:4 (pipeline ()) in
  (* at least: original, fused, split/join removed, both *)
  Alcotest.(check bool)
    (Printf.sprintf "several variants (%d)" (List.length vs))
    true
    (List.length vs >= 3);
  (* the original is included with an empty trace *)
  (match vs with
  | v0 :: _ -> Alcotest.(check (list string)) "root trace" [] v0.Explore.v_trace
  | [] -> Alcotest.fail "no variants");
  (* some variant reaches the fully simplified single map *)
  let fully =
    List.exists
      (fun v ->
        match v.Explore.v_program.Ast.l_body with
        | Ast.Map (_, _, Ast.Param _) -> true
        | _ -> false)
      vs
  in
  Alcotest.(check bool) "fully fused variant found" true fully;
  (* all variants have distinct keys *)
  let keys = List.map (fun v -> Explore.key v.Explore.v_program) vs in
  Alcotest.(check int) "keys distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_variants_semantics () =
  (* every variant computes the same function *)
  let input () = Eval.of_float_array [| 1.; -2.; 3.; 0.5; -0.25; 10.; 7.; -7. |] in
  let sizes = function "N" -> Some 8 | _ -> None in
  let reference = Eval.to_float_array (Eval.run ~sizes (pipeline ()) [ input () ]) in
  List.iter
    (fun v ->
      let got = Eval.to_float_array (Eval.run ~sizes v.Explore.v_program [ input () ]) in
      Array.iteri
        (fun i x ->
          if Float.abs (x -. reference.(i)) > 1e-12 then
            Alcotest.failf "variant [%s] differs at %d"
              (String.concat ";" v.Explore.v_trace)
              i)
        got)
    (Explore.variants ~depth:4 (pipeline ()))

let test_best_picks_fused () =
  let workload =
    Vgpu.Perf_model.workload ~active_points:1e6 ~buffer_elems:[ ("a", 1_000_000); ("out", 1_000_000) ] ()
  in
  match
    Explore.best ~depth:4 ~device:Vgpu.Device.gtx780 ~workload (pipeline ())
  with
  | None -> Alcotest.fail "no variant compiled"
  | Some best ->
      (* the winning kernel must be fully fused: one load, one store per
         point.  (Because view-pure maps in input position compile
         lazily, the code generator already fuses this pipeline, so the
         explicit fuse-map-map variants tie with the root — the search's
         job here is to confirm nothing beats fusion.) *)
      let c = Kernel_ast.Analysis.kernel_counts best.Explore.r_kernel in
      Alcotest.(check (float 0.)) "one load per point" 1.
        (Kernel_ast.Analysis.total_loads c);
      Alcotest.(check (float 0.)) "one store per point" 1.
        (Kernel_ast.Analysis.total_stores c)

let suite =
  [
    Alcotest.test_case "variant enumeration" `Quick test_variants;
    Alcotest.test_case "variants preserve semantics" `Quick test_variants_semantics;
    Alcotest.test_case "model-guided selection" `Quick test_best_picks_fused;
  ]
