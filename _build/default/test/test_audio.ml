(* WAV serialisation and spectral analysis. *)

open Acoustics

let test_wav_structure () =
  let samples = [| 0.0; 0.5; -0.5; 1.0; -1.0; 2.0 (* clamped *) |] in
  let bytes = Audio.wav_bytes ~sample_rate:44100 samples in
  Alcotest.(check int) "length = 44 header + 2n" (44 + (2 * 6)) (String.length bytes);
  Alcotest.(check string) "RIFF" "RIFF" (String.sub bytes 0 4);
  Alcotest.(check string) "WAVE" "WAVE" (String.sub bytes 8 4);
  Alcotest.(check string) "fmt " "fmt " (String.sub bytes 12 4);
  Alcotest.(check string) "data" "data" (String.sub bytes 36 4);
  let u16 off = Char.code bytes.[off] lor (Char.code bytes.[off + 1] lsl 8) in
  let u32 off = u16 off lor (u16 (off + 2) lsl 16) in
  Alcotest.(check int) "PCM" 1 (u16 20);
  Alcotest.(check int) "mono" 1 (u16 22);
  Alcotest.(check int) "rate" 44100 (u32 24);
  Alcotest.(check int) "16 bit" 16 (u16 34);
  Alcotest.(check int) "data bytes" 12 (u32 40);
  (* sample encoding: 0.5 -> 16384-ish; -1 -> 0x8001; clamp at 32767 *)
  Alcotest.(check int) "zero" 0 (u16 44);
  Alcotest.(check int) "half" 16384 (u16 46);
  Alcotest.(check int) "minus half" (65536 - 16384) (u16 48);
  Alcotest.(check int) "full" 32767 (u16 50);
  Alcotest.(check int) "clamped" 32767 (u16 54)

let test_normalise () =
  let n = Audio.normalise ~level:0.5 [| 0.1; -0.2; 0.05 |] in
  Alcotest.(check (float 1e-12)) "peak scaled" 0.5
    (Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0. n);
  let z = Audio.normalise [| 0.; 0. |] in
  Alcotest.(check (float 0.)) "silence unchanged" 0. z.(0)

let test_dft_peak () =
  (* a pure sinusoid's DFT peaks at its own frequency *)
  let n = 256 and bins = 32 in
  let k_true = 8 in
  let f_norm = float_of_int k_true /. float_of_int bins /. 2. in
  let samples =
    Array.init n (fun t -> sin (2. *. Float.pi *. f_norm *. float_of_int t))
  in
  let mags = Audio.dft_magnitudes ~bins samples in
  let peak = ref 0 in
  Array.iteri (fun i m -> if m > mags.(!peak) then peak := i) mags;
  (* bin k covers frequency (k+1)/(2 bins) *)
  Alcotest.(check int) "peak bin" (k_true - 1) !peak

let test_octave_bands () =
  let sr = 44100. in
  (* a 1 kHz tone concentrates energy in the 1 kHz band *)
  let samples = Array.init 2048 (fun t -> sin (2. *. Float.pi *. 1000. *. float_of_int t /. sr)) in
  let bands = Audio.octave_band_energies ~sample_rate:sr samples in
  let best = List.fold_left (fun (bf, be) (f, e) -> if e > be then (f, e) else (bf, be)) (0., 0.) bands in
  Alcotest.(check (float 0.)) "strongest band" 1000. (fst best);
  (* all bands below Nyquist are present *)
  Alcotest.(check int) "band count" 7 (List.length bands)

let suite =
  [
    Alcotest.test_case "wav structure" `Quick test_wav_structure;
    Alcotest.test_case "normalise" `Quick test_normalise;
    Alcotest.test_case "dft peak" `Quick test_dft_peak;
    Alcotest.test_case "octave bands" `Quick test_octave_bands;
  ]
