(* Host-side Lift: compile and execute the paper's Listing 5 —
   two kernels per time step (volume handling then in-place boundary
   handling) orchestrated by host primitives — and check it against the
   reference step.  Also checks the emitted host pseudo-C and the
   transfer bookkeeping. *)

open Acoustics

let params = Params.default
let dims = Geometry.dims ~nx:12 ~ny:10 ~nz:9

let build_host_program () =
  let p name ty = Lift.Ast.named_param name ty in
  let open Lift.Host in
  let open Lift_acoustics.Programs in
  let volume = Lift_acoustics.Programs.volume () in
  let boundary = Lift_acoustics.Programs.boundary_fi_mm () in
  let nbrs_h = p "nbrs" nbrs_ty in
  let prev_h = p "prev" grid_ty in
  let curr_h = p "curr" grid_ty in
  let next_h = p "next" grid_ty in
  let bidx_h = p "bidx" bidx_ty in
  let material_h = p "material" material_ty in
  let beta_h = p "beta" beta_ty in
  let l = Params.l params and l2 = Params.l2 params in
  (* val next_g = OclKernel(volume, ...) then
     ToHost(WriteTo(next_g, OclKernel(boundary, ...))) *)
  (* val next_g = OclKernel(volume, ...): H_let shares the kernel result
     so the volume kernel is launched exactly once. *)
  let next_g_p = p "next_g" grid_ty in
  H_let
    ( next_g_p,
      ocl_kernel ~name:"volume" volume
        [
          to_gpu (input nbrs_h);
          to_gpu (input prev_h);
          to_gpu (input curr_h);
          to_gpu (input next_h);
          H_int dims.Geometry.nx;
          H_int (dims.Geometry.nx * dims.Geometry.ny);
          H_real l2;
        ],
      to_host
        (write_to (input next_g_p)
           (ocl_kernel ~name:"boundary_fi_mm" boundary
              [
                to_gpu (input bidx_h);
                input nbrs_h;
                to_gpu (input material_h);
                to_gpu (input beta_h);
                input prev_h;
                input next_g_p;
                H_real l;
              ])) )

let test_listing5 () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let n = Geometry.n_points dims in
  let nb = Geometry.n_boundary room in
  let sizes = function
    | "N" -> Some n
    | "nB" -> Some nb
    | "NM" -> Some (Array.length tables.Material.t_beta)
    | _ -> None
  in
  let compiled = Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes (build_host_program ()) in
  (* the emitted host source mentions the OpenCL API calls of Table I *)
  List.iter
    (fun needle ->
      if not (Astring_contains.contains compiled.Lift.Host.source needle) then
        Alcotest.failf "host source missing %s:\n%s" needle compiled.Lift.Host.source)
    [ "enqueueWriteBuffer"; "enqueueReadBuffer"; "enqueueNDRangeKernel"; "clSetKernelArg" ];
  (* reference step *)
  let st_ref = State.create room in
  let cx, cy, cz = State.centre st_ref in
  State.add_impulse st_ref ~x:cx ~y:cy ~z:cz;
  Ref_kernels.volume_step params ~dims ~nbrs:room.Geometry.nbrs ~prev:st_ref.prev
    ~curr:st_ref.curr ~next:st_ref.next;
  Ref_kernels.boundary_fi_mm params ~boundary_indices:room.Geometry.boundary_indices
    ~nbrs:room.Geometry.nbrs ~material:room.Geometry.material
    ~beta:tables.Material.t_beta ~prev:st_ref.prev ~next:st_ref.next;
  (* host-program execution *)
  let st = State.create room in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  let rt = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Jit () in
  Vgpu.Runtime.bind rt "nbrs" (Vgpu.Buffer.I room.Geometry.nbrs);
  Vgpu.Runtime.bind rt "prev" (Vgpu.Buffer.F st.prev);
  Vgpu.Runtime.bind rt "curr" (Vgpu.Buffer.F st.curr);
  Vgpu.Runtime.bind rt "next" (Vgpu.Buffer.F st.next);
  Vgpu.Runtime.bind rt "bidx" (Vgpu.Buffer.I room.Geometry.boundary_indices);
  Vgpu.Runtime.bind rt "material" (Vgpu.Buffer.I room.Geometry.material);
  Vgpu.Runtime.bind rt "beta" (Vgpu.Buffer.F tables.Material.t_beta);
  Lift.Host.run compiled rt;
  Alcotest.(check int) "two kernel launches" 2 rt.Vgpu.Runtime.launches;
  if rt.Vgpu.Runtime.h2d_bytes = 0 then Alcotest.fail "no host->device transfers recorded";
  if rt.Vgpu.Runtime.d2h_bytes = 0 then Alcotest.fail "no device->host transfers recorded";
  Array.iteri
    (fun i x ->
      if Float.abs (x -. st.next.(i)) > 1e-12 then
        Alcotest.failf "host pipeline differs at %d: %.17g vs %.17g" i x st.next.(i))
    st_ref.next

(* Iterated host execution with buffer rotation (paper §V-A): the plan
   repeated N times with prev/curr/next rotation must match the
   simulation driver stepping N times. *)
let test_iterate () =
  let room = Geometry.build ~n_materials:4 Geometry.Box dims in
  let tables = Material.tables ~n_branches:3 Material.defaults in
  let n = Geometry.n_points dims in
  let nb = Geometry.n_boundary room in
  let sizes = function
    | "N" -> Some n
    | "nB" -> Some nb
    | "NM" -> Some (Array.length tables.Material.t_beta)
    | _ -> None
  in
  let compiled = Lift.Host.compile ~precision:Kernel_ast.Cast.Double ~sizes (build_host_program ()) in
  let steps = 10 in
  let plan = Lift.Host.iterate ~times:steps ~rotate:[ [ "prev"; "curr"; "next" ] ] compiled in
  (* reference: the simulation driver *)
  let st_ref = State.create room in
  let cx, cy, cz = State.centre st_ref in
  State.add_impulse st_ref ~x:cx ~y:cy ~z:cz;
  for _ = 1 to steps do
    Ref_kernels.step_fi_mm params st_ref ~beta:tables.Material.t_beta
  done;
  (* host plan execution *)
  let st = State.create room in
  State.add_impulse st ~x:cx ~y:cy ~z:cz;
  let rt = Vgpu.Runtime.create ~engine:Vgpu.Runtime.Jit () in
  Vgpu.Runtime.bind rt "nbrs" (Vgpu.Buffer.I room.Geometry.nbrs);
  Vgpu.Runtime.bind rt "prev" (Vgpu.Buffer.F st.prev);
  Vgpu.Runtime.bind rt "curr" (Vgpu.Buffer.F st.curr);
  Vgpu.Runtime.bind rt "next" (Vgpu.Buffer.F st.next);
  Vgpu.Runtime.bind rt "bidx" (Vgpu.Buffer.I room.Geometry.boundary_indices);
  Vgpu.Runtime.bind rt "material" (Vgpu.Buffer.I room.Geometry.material);
  Vgpu.Runtime.bind rt "beta" (Vgpu.Buffer.F tables.Material.t_beta);
  Vgpu.Runtime.run rt plan;
  Alcotest.(check int) "2 launches per step" (2 * steps) rt.Vgpu.Runtime.launches;
  (* after rotation, the binding named "curr" holds the latest field *)
  let final = Vgpu.Buffer.to_float_array (Vgpu.Runtime.buffer rt "curr") in
  Array.iteri
    (fun i x ->
      if Float.abs (x -. st_ref.curr.(i)) > 1e-11 *. (1. +. Float.abs x) then
        Alcotest.failf "iterated host differs at %d: %.17g vs %.17g" i x st_ref.curr.(i))
    final

let suite =
  [
    Alcotest.test_case "listing 5 host pipeline" `Quick test_listing5;
    Alcotest.test_case "iterated stepping with rotation" `Quick test_iterate;
  ]
