(* Materials: coefficient derivation identities and discrete passivity of
   randomly generated (passive) branch banks. *)

open Acoustics

let test_coefficient_identities () =
  let b = Material.branch ~mass:2.0 ~resistance:0.8 ~stiffness:0.6 in
  let bi, d, f, di = Material.branch_coeffs b in
  (* F = k/2 *)
  Alcotest.(check (float 1e-12)) "F = k/2" 0.3 f;
  (* D = m/2 *)
  Alcotest.(check (float 1e-12)) "D = m/2" 1.0 d;
  (* BI = 1/(m + r/2 + F/2) *)
  Alcotest.(check (float 1e-12)) "BI" (1. /. (2.0 +. 0.4 +. 0.15)) bi;
  (* DI = m - r/2 - F/2 and the identity DI + 1/BI = 2m *)
  Alcotest.(check (float 1e-12)) "DI" (2.0 -. 0.4 -. 0.15) di;
  Alcotest.(check (float 1e-12)) "DI + den = 2m" 4.0 (di +. (1. /. bi))

let test_invalid_branch () =
  match Material.branch ~mass:(-1.) ~resistance:0. ~stiffness:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative mass accepted"

let test_tables_layout () =
  let mats = [| Material.concrete; Material.carpet |] in
  let t = Material.tables ~n_branches:3 mats in
  Alcotest.(check int) "beta length" 2 (Array.length t.Material.t_beta);
  Alcotest.(check int) "bi length" 6 (Array.length t.Material.t_bi);
  (* concrete has one branch: entries 1 and 2 are inert *)
  Alcotest.(check (float 0.)) "padding branch is inert" 0. t.Material.t_bi.(1);
  Alcotest.(check bool) "carpet branch 2 live" true (t.Material.t_bi.(3 + 2) > 0.);
  (* beta_fd = beta + sum BI *)
  let sum_bi = t.Material.t_bi.(0) +. t.Material.t_bi.(1) +. t.Material.t_bi.(2) in
  Alcotest.(check (float 1e-12)) "beta_fd identity"
    (t.Material.t_beta.(0) +. sum_bi)
    t.Material.t_beta_fd.(0)

(* Any bank of passive branches (non-negative m, r, k; positive
   denominator) must yield a stable, dissipative simulation. *)
let qcheck_random_materials_stable =
  let open QCheck in
  let branch_gen =
    Gen.(
      map3
        (fun m r k -> Material.branch ~mass:m ~resistance:r ~stiffness:k)
        (Gen.float_range 0.05 8.) (Gen.float_range 0.0 3.) (Gen.float_range 0.0 2.))
  in
  let mat_gen =
    Gen.(
      pair (Gen.float_range 0.0 1.5) (list_size (int_range 1 3) branch_gen)
      >|= fun (beta, branches) -> Material.create ~name:"rand" ~beta branches)
  in
  let arb =
    make
      ~print:(fun m ->
        Printf.sprintf "%s beta=%g (%d branches)" m.Material.name m.Material.beta
          (List.length m.Material.branches))
      mat_gen
  in
  Test.make ~name:"random passive materials are stable" ~count:25 arb (fun m ->
      let params = Params.default in
      let dims = Geometry.dims ~nx:10 ~ny:9 ~nz:8 in
      let room = Geometry.build ~n_materials:1 Geometry.Box dims in
      let t = Material.tables ~n_branches:3 [| m |] in
      let st = State.create ~n_branches:3 room in
      let cx, cy, cz = State.centre st in
      State.add_impulse st ~x:cx ~y:cy ~z:cz;
      for _ = 1 to 500 do
        Ref_kernels.step_fd_mm params st ~beta:t.Material.t_beta_fd ~bi:t.Material.t_bi
          ~d:t.Material.t_d ~f:t.Material.t_f ~di:t.Material.t_di
      done;
      (* bounded field, and some energy dissipated if anything is lossy *)
      Energy.max_abs st.State.curr < 10.)

let test_defaults_ordering () =
  (* the default materials are ordered from reflective to absorptive *)
  let betas = Array.map (fun m -> m.Material.beta) Material.defaults in
  Array.iteri (fun i b -> if i > 0 then Alcotest.(check bool) "increasing beta" true (b > betas.(i - 1))) betas

let suite =
  [
    Alcotest.test_case "coefficient identities" `Quick test_coefficient_identities;
    Alcotest.test_case "invalid branch rejected" `Quick test_invalid_branch;
    Alcotest.test_case "table layout" `Quick test_tables_layout;
    QCheck_alcotest.to_alcotest qcheck_random_materials_stable;
    Alcotest.test_case "defaults ordering" `Quick test_defaults_ordering;
  ]

(* Frequency response of the discrete branches (closed form).  The
   paper's FD-MM exists to model frequency-dependent absorption:
   Re Y(w) must be non-negative at every frequency (discrete passivity)
   and genuinely vary over frequency for resonant materials. *)
let omegas = [ 0.05; 0.2; 0.5; 1.0; 1.8; 2.6; 3.0 ]

let test_frequency_passivity () =
  List.iter
    (fun m ->
      List.iter
        (fun omega ->
          let y = Material.admittance m ~omega in
          if y.Complex.re < -1e-9 then
            Alcotest.failf "%s: active at w=%.2f (Re Y = %g)" m.Material.name omega
              y.Complex.re)
        omegas)
    [ Material.concrete; Material.painted_brick; Material.wood_panel;
      Material.carpet; Material.curtain; Material.rigid ]

let test_frequency_dependence () =
  let spread m =
    let res = List.map (fun omega -> (Material.admittance m ~omega).Complex.re) omegas in
    let mx = List.fold_left Float.max neg_infinity res in
    let mn = List.fold_left Float.min infinity res in
    mx -. mn
  in
  (* a pure-beta material is flat by construction *)
  Alcotest.(check (float 1e-12)) "rigid is flat" 0. (spread Material.rigid);
  let flat = Material.create ~name:"flat" ~beta:0.4 [] in
  Alcotest.(check (float 1e-12)) "beta-only is flat" 0. (spread flat);
  (* resonant materials vary substantially across the band *)
  Alcotest.(check bool) "curtain varies" true (spread Material.curtain > 0.05);
  Alcotest.(check bool) "carpet varies" true (spread Material.carpet > 0.05)

let test_admittance_matches_time_domain () =
  (* drive the kernel's branch recurrence with a sinusoid and compare the
     steady-state midpoint velocity against the closed form *)
  let b = Material.branch ~mass:1.2 ~resistance:0.8 ~stiffness:0.6 in
  let bi, _, f, di = Material.branch_coeffs b in
  let omega = 0.7 in
  let steps = 4000 in
  let v2 = ref 0. and g = ref 0. in
  let acc_re = ref 0. and acc_im = ref 0. and norm = ref 0. in
  for n = 0 to steps - 1 do
    let t = float_of_int n in
    let du = cos (omega *. (t +. 1.)) -. cos (omega *. (t -. 1.)) in
    let v1 = bi *. (du +. (di *. !v2) -. (2. *. f *. !g)) in
    let vmid = 0.5 *. (v1 +. !v2) in
    g := !g +. vmid;
    v2 := v1;
    (* correlate against the drive after the transient *)
    if n > steps / 2 then begin
      acc_re := !acc_re +. (vmid *. du);
      acc_im := !acc_im +. (vmid *. (sin (omega *. (t +. 1.)) -. sin (omega *. (t -. 1.))));
      norm := !norm +. (du *. du)
    end
  done;
  let y = Material.branch_admittance b ~omega in
  Alcotest.(check bool)
    (Printf.sprintf "time-domain Re Y ~ closed form (%.4f vs %.4f)" (!acc_re /. !norm)
       y.Complex.re)
    true
    (Float.abs ((!acc_re /. !norm) -. y.Complex.re) < 0.02)

let suite =
  suite
  @ [
      Alcotest.test_case "frequency-domain passivity" `Quick test_frequency_passivity;
      Alcotest.test_case "frequency dependence (FD vs flat)" `Quick test_frequency_dependence;
      Alcotest.test_case "admittance matches time domain" `Quick test_admittance_matches_time_domain;
    ]
