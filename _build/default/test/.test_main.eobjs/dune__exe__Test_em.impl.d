test/test_em.ml: Alcotest Array Astring_contains Em Float Kernel_ast Lift Printf
