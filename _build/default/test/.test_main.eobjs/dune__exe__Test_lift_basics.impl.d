test/test_lift_basics.ml: Alcotest Array Ast Codegen Eval Kernel_ast Lift List Size Ty Vgpu
