test/test_runtime_print.ml: Acoustics Alcotest Array Astring_contains Cast Harness Kernel_ast Lift Lift_acoustics List Print String Vgpu
