test/test_acoustics.ml: Acoustics Alcotest Array Energy Float Geometry Gpu_sim Hand_kernels Kernel_ast Lift Lift_acoustics List Material Params Printf Ref_kernels State
