test/test_analysis.ml: Acoustics Alcotest Analysis Cast Hashtbl Kernel_ast Lift Lift_acoustics Printf
