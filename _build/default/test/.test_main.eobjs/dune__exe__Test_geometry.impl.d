test/test_geometry.ml: Acoustics Alcotest Array Gen Geometry Hashtbl List Printf QCheck QCheck_alcotest Test
