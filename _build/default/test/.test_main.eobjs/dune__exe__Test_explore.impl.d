test/test_explore.ml: Alcotest Array Ast Eval Explore Float Kernel_ast Lift List Printf Size String Ty Vgpu
