test/test_host.ml: Acoustics Alcotest Array Astring_contains Float Geometry Kernel_ast Lift Lift_acoustics List Material Params Ref_kernels State Vgpu
