test/test_size.ml: Alcotest Astring_contains Kernel_ast Lift QCheck QCheck_alcotest Size
