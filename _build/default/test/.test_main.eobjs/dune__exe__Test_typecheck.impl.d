test/test_typecheck.ml: Alcotest Ast Kernel_ast Lift Lift_acoustics List Size Ty Typecheck
