test/test_edges.ml: Acoustics Alcotest Array Ast Codegen Kernel_ast Lift List Option Size Ty Typecheck Vgpu
