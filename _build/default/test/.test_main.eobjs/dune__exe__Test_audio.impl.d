test/test_audio.ml: Acoustics Alcotest Array Audio Char Float List String
