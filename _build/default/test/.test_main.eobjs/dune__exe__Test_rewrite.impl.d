test/test_rewrite.ml: Alcotest Array Ast Astring_contains Codegen Eval Float Gen Kernel_ast Lift List QCheck QCheck_alcotest Rewrite Size Test Ty Vgpu
