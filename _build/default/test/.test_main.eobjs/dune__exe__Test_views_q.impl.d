test/test_views_q.ml: Array Ast Codegen Eval Float Kernel_ast Lift List Printf QCheck QCheck_alcotest Size Ty Vgpu
