test/test_perf_model.ml: Acoustics Alcotest Float Hand_kernels Harness Kernel_ast Lift Lift_acoustics List Material Vgpu
