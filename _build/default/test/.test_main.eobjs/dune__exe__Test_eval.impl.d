test/test_eval.ml: Alcotest Array Ast Eval Fmt Lift Size Ty
