test/test_macros.ml: Acoustics Alcotest Array Ast Codegen Eval Float Geometry Kernel_ast Lift Lift_acoustics List Macros Params Printf Ref_kernels Size State Ty Typecheck Vgpu
