test/test_golden.ml: Alcotest Buffer Kernel_ast Lift Lift_acoustics List String
