test/test_jit.ml: Alcotest Array Float Kernel_ast List Printf QCheck QCheck_alcotest Vgpu
