test/test_material.ml: Acoustics Alcotest Array Complex Energy Float Gen Geometry List Material Params Printf QCheck QCheck_alcotest Ref_kernels State Test
