(* Edge cases and error paths across the stack. *)

open Lift

let n = Size.var "N"
let vec = Ty.array Ty.real n

let compile prog = Codegen.compile_kernel ~name:"e" ~precision:Kernel_ast.Cast.Double prog

let test_codegen_errors () =
  (* ill-typed program: type error surfaces, not a crash *)
  let a = Ast.named_param "a" vec in
  let bad = { Ast.l_params = [ a ]; l_body = Ast.(Param a +! real 1.) } in
  (match compile bad with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "ill-typed program compiled");
  (* tuple-typed parameter is not storable *)
  let t = Ast.named_param "t" (Ty.tuple [ Ty.real; Ty.real ]) in
  let bad2 = { Ast.l_params = [ t ]; l_body = Ast.Get (Ast.Param t, 0) } in
  match compile bad2 with
  | exception Codegen.Codegen_error _ -> ()
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "tuple parameter accepted"

let test_device_table () =
  (* Table III values, verbatim *)
  let check name bw sp =
    match Vgpu.Device.find name with
    | None -> Alcotest.failf "missing device %s" name
    | Some d ->
        Alcotest.(check (float 0.)) (name ^ " bw") bw d.Vgpu.Device.mem_bw_gb_s;
        Alcotest.(check (float 0.)) (name ^ " sp") sp d.Vgpu.Device.sp_gflops
  in
  check "GTX780" 288. 3977.;
  check "AMD7970" 288. 4096.;
  check "Titan Black" 337. 5120.;
  check "RadeonR9" 320. 5733.;
  Alcotest.(check int) "four platforms" 4 (List.length Vgpu.Device.all);
  Alcotest.(check (option Alcotest.reject)) "unknown device" None
    (Option.map (fun _ -> assert false) (Vgpu.Device.find "RTX4090"));
  (* double peak below single peak everywhere *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "dp < sp" true
        (Vgpu.Device.peak_flops d Kernel_ast.Cast.Double
         < Vgpu.Device.peak_flops d Kernel_ast.Cast.Single))
    Vgpu.Device.all

let test_empty_and_tiny_rooms () =
  (* a 3^3 room has a single in-room voxel whose neighbours are all
     halo: nbr = 0, so it is never updated — neither interior nor
     boundary.  The scheme treats it as outside, which is the safe
     behaviour for degenerate rooms. *)
  let dims = Acoustics.Geometry.dims ~nx:3 ~ny:3 ~nz:3 in
  let room = Acoustics.Geometry.build Acoustics.Geometry.Box dims in
  Alcotest.(check int) "no active voxels" 0 room.Acoustics.Geometry.n_inside;
  Alcotest.(check int) "no boundary points" 0 (Acoustics.Geometry.n_boundary room);
  (* a 4^3 room has 8 active voxels, all boundary *)
  let dims4 = Acoustics.Geometry.dims ~nx:4 ~ny:4 ~nz:4 in
  let room4 = Acoustics.Geometry.build Acoustics.Geometry.Box dims4 in
  Alcotest.(check int) "2x2x2 active" 8 room4.Acoustics.Geometry.n_inside;
  Alcotest.(check int) "all boundary" 8 (Acoustics.Geometry.n_boundary room4)

let test_buffer_roundtrip () =
  let f = Vgpu.Buffer.of_float_array [| 1.5; -2.5 |] in
  Alcotest.(check int) "len" 2 (Vgpu.Buffer.length f);
  Alcotest.(check (float 0.)) "get" (-2.5) (Vgpu.Buffer.get_real f 1);
  Vgpu.Buffer.set_real f 0 9.;
  Alcotest.(check (float 0.)) "set" 9. (Vgpu.Buffer.get_real f 0);
  let c = Vgpu.Buffer.copy f in
  Vgpu.Buffer.set_real f 0 0.;
  Alcotest.(check (float 0.)) "copy is deep" 9. (Vgpu.Buffer.get_real c 0);
  let i = Vgpu.Buffer.of_int_array [| 3; 4 |] in
  Alcotest.(check (list int)) "int roundtrip" [ 3; 4 ] (Array.to_list (Vgpu.Buffer.to_int_array i));
  (* float32 rounding is idempotent *)
  let x = 1.0 /. 3.0 in
  let r = Vgpu.Buffer.round32 x in
  Alcotest.(check (float 0.)) "round32 idempotent" r (Vgpu.Buffer.round32 r);
  Alcotest.(check bool) "round32 moves the double" true (r <> x)

let test_params_validation () =
  (match Acoustics.Params.create ~lambda:0.9 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unstable Courant number accepted");
  let p = Acoustics.Params.create ~sample_rate:48000. () in
  Alcotest.(check bool) "grid spacing positive" true (Acoustics.Params.grid_spacing p > 0.);
  Alcotest.(check (float 1e-12)) "dt" (1. /. 48000.) (Acoustics.Params.dt p)

(* A zero-step and one-voxel-room simulation run without incident. *)
let test_degenerate_simulation () =
  let dims = Acoustics.Geometry.dims ~nx:4 ~ny:4 ~nz:4 in
  let room = Acoustics.Geometry.build ~n_materials:1 Acoustics.Geometry.Box dims in
  let sim = Acoustics.Gpu_sim.create Acoustics.Params.default room in
  let out =
    Acoustics.Gpu_sim.run sim
      [ Acoustics.Hand_kernels.volume ~precision:Kernel_ast.Cast.Double ]
      ~steps:0 ~receiver:(1, 1, 1)
  in
  Alcotest.(check int) "zero steps" 0 (Array.length out)

let suite =
  [
    Alcotest.test_case "codegen error paths" `Quick test_codegen_errors;
    Alcotest.test_case "device table (Table III)" `Quick test_device_table;
    Alcotest.test_case "tiny rooms" `Quick test_empty_and_tiny_rooms;
    Alcotest.test_case "buffer roundtrips" `Quick test_buffer_roundtrip;
    Alcotest.test_case "parameter validation" `Quick test_params_validation;
    Alcotest.test_case "degenerate simulation" `Quick test_degenerate_simulation;
  ]
