(* Deep property test of the view system: random chains of pattern
   compositions (pad, slide+reduce, split+reduce, map) are compiled and
   executed, and must agree with the IR interpreter elementwise.  This
   exercises exactly the machinery of paper §III-A: every pattern only
   wraps views, and indices are materialised at the final read. *)

open Lift

type chain_state = {
  expr : Ast.expr;
  len : int; (* concrete length; sizes are Const so kernels are closed *)
}

let scalar_funs =
  [|
    (fun x -> Ast.(x +! real 1.));
    (fun x -> Ast.(x *! real 0.5));
    (fun x -> Ast.(x *! x));
    (fun x -> Ast.((x +! real 2.) *! real 0.25));
  |]

let gen_chain : (Ast.param * Ast.expr * int) QCheck.Gen.t =
  let open QCheck.Gen in
  let start_len = 12 in
  let a = Ast.named_param "a" (Ty.array_n Ty.real start_len) in
  let rec go st k =
    if k = 0 then return st
    else
      let ops =
        List.concat
          [
            [
              ( 2,
                int_range 0 (Array.length scalar_funs - 1) >|= fun i ->
                {
                  st with
                  expr = Ast.map (Ast.lam1 Ty.real scalar_funs.(i)) st.expr;
                } );
            ];
            [
              ( 2,
                pair (int_range 0 2) (int_range 0 2) >|= fun (l, r) ->
                {
                  expr = Ast.Pad (l, r, Ast.real 0., st.expr);
                  len = st.len + l + r;
                } );
            ];
            (if st.len >= 3 then
               [
                 ( 2,
                   return
                     {
                       expr =
                         Ast.map
                           (Ast.lam1 (Ty.array_n Ty.real 3) (fun w ->
                                Ast.Reduce
                                  ( Ast.lam2 Ty.real Ty.real (fun acc x -> Ast.(acc +! x)),
                                    Ast.real 0.,
                                    w )))
                           (Ast.Slide (3, 1, st.expr));
                       len = st.len - 2;
                     } );
               ]
             else []);
            (if st.len mod 2 = 0 && st.len >= 2 then
               [
                 ( 1,
                   return
                     {
                       expr =
                         Ast.map
                           (Ast.lam1 (Ty.array_n Ty.real 2) (fun w ->
                                Ast.Reduce
                                  ( Ast.lam2 Ty.real Ty.real (fun acc x -> Ast.(acc +! x)),
                                    Ast.real 0.,
                                    w )))
                           (Ast.Split (Size.const 2, st.expr));
                       len = st.len / 2;
                     } );
               ]
             else []);
            (if st.len mod 3 = 0 && st.len >= 3 then
               [ (1, return { st with expr = Ast.Join (Ast.Split (Size.const 3, st.expr)) }) ]
             else []);
          ]
      in
      frequency ops >>= fun st' -> go st' (k - 1)
  in
  int_range 1 6 >>= fun depth ->
  go { expr = Ast.Param a; len = start_len } depth >|= fun st -> (a, st.expr, st.len)

let arb_chain =
  QCheck.make
    ~print:(fun (_, e, len) -> Printf.sprintf "len=%d %s" len (Ast.to_string e))
    gen_chain

let qcheck_chain_compile_matches_eval =
  QCheck.Test.make ~name:"random pattern chains: compiled == eval" ~count:250 arb_chain
    (fun (a, body, len) ->
      (* keep chains that end in arrays; wrap in a final glb map *)
      let prog =
        {
          Ast.l_params = [ a ];
          l_body = Ast.map_glb (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 0.))) body;
        }
      in
      let input = Array.init 12 (fun i -> float_of_int (((i * 7) mod 13) - 6) /. 3.) in
      let expected =
        Eval.to_float_array (Eval.run prog [ Eval.of_float_array input ])
      in
      assert (Array.length expected = len);
      let c = Codegen.compile_kernel ~name:"chain" ~precision:Kernel_ast.Cast.Double prog in
      let out = Array.make len 0. in
      let args =
        List.map
          (fun (p : Kernel_ast.Cast.param) ->
            match p.p_name with
            | "a" -> Vgpu.Args.Buf (Vgpu.Buffer.F input)
            | "out" -> Vgpu.Args.Buf (Vgpu.Buffer.F out)
            | other -> (
                (* temporary buffers materialised by the memory
                   allocator (reduce results feeding later patterns) *)
                match List.assoc_opt other c.Codegen.temp_params with
                | Some ty -> (
                    match Size.to_int_opt (Ty.flat_length ty) with
                    | Some n -> Vgpu.Args.Buf (Vgpu.Buffer.F (Array.make n 0.))
                    | None -> failwith ("temp with symbolic size " ^ other))
                | None -> failwith ("unexpected param " ^ other)))
          c.Codegen.kernel.Kernel_ast.Cast.params
      in
      Vgpu.Jit.launch (Vgpu.Jit.compile c.Codegen.kernel) ~args ~global:[ len ];
      Array.for_all2 (fun x y -> Float.abs (x -. y) <= 1e-10 *. (1. +. Float.abs x)) expected out)

let suite = [ QCheck_alcotest.to_alcotest qcheck_chain_compile_matches_eval ]
