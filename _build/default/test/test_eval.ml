(* The IR interpreter: semantics of every pattern on concrete data. *)

open Lift

let n = Size.var "N"
let sizes k = function "N" -> Some k | _ -> None

let farr = Eval.of_float_array
let iarr = Eval.of_int_array

let run1 ?(k = 0) prog arg = Eval.run ~sizes:(sizes k) prog [ arg ]

let check msg expected v =
  Alcotest.(check (list (float 1e-12))) msg (Array.to_list expected)
    (Array.to_list (Eval.to_float_array v))

let vec = Ty.array Ty.real n

let prog1 ty f =
  let p = Ast.named_param "a" ty in
  { Ast.l_params = [ p ]; l_body = f (Ast.Param p) }

let test_map () =
  let p = prog1 vec (fun a -> Ast.map (Ast.lam1 Ty.real (fun x -> Ast.(x *! x))) a) in
  check "map square" [| 1.; 4.; 9. |] (run1 ~k:3 p (farr [| 1.; 2.; 3. |]))

let test_reduce () =
  let p =
    prog1 vec (fun a ->
        Ast.Reduce (Ast.lam2 Ty.real Ty.real (fun acc x -> Ast.(acc +! x)), Ast.real 0., a))
  in
  match run1 ~k:4 p (farr [| 1.; 2.; 3.; 4. |]) with
  | Eval.VReal r -> Alcotest.(check (float 1e-12)) "sum" 10. r
  | v -> Alcotest.failf "expected scalar, got %s" (Fmt.to_to_string Eval.pp_value v)

let test_zip_get () =
  let tup = Ty.tuple [ Ty.real; Ty.real ] in
  let p =
    let a = Ast.named_param "a" vec and b = Ast.named_param "b" vec in
    {
      Ast.l_params = [ a; b ];
      l_body =
        Ast.map
          (Ast.lam1 tup (fun t -> Ast.(Get (t, 0) -! Get (t, 1))))
          (Ast.Zip [ Ast.Param a; Ast.Param b ]);
    }
  in
  let v = Eval.run ~sizes:(sizes 3) p [ farr [| 5.; 6.; 7. |]; farr [| 1.; 2.; 3. |] ] in
  check "zip sub" [| 4.; 4.; 4. |] v

let test_slide_pad () =
  let p = prog1 vec (fun a -> Ast.Slide (2, 1, a)) in
  (match run1 ~k:3 p (farr [| 1.; 2.; 3. |]) with
  | Eval.VArr [| Eval.VArr w0; Eval.VArr w1 |] ->
      Alcotest.(check int) "window size" 2 (Array.length w0);
      Alcotest.(check (float 0.)) "w0[0]" 1. (Eval.as_real w0.(0));
      Alcotest.(check (float 0.)) "w1[1]" 3. (Eval.as_real w1.(1))
  | v -> Alcotest.failf "unexpected %s" (Fmt.to_to_string Eval.pp_value v));
  let p = prog1 vec (fun a -> Ast.Pad (2, 1, Ast.real 9., a)) in
  check "pad" [| 9.; 9.; 1.; 2.; 9. |] (run1 ~k:2 p (farr [| 1.; 2. |]))

let test_split_join () =
  let p = prog1 vec (fun a -> Ast.Join (Ast.Split (Size.const 2, a))) in
  check "join o split = id" [| 1.; 2.; 3.; 4. |] (run1 ~k:4 p (farr [| 1.; 2.; 3.; 4. |]))

let test_slide_step () =
  let p = prog1 vec (fun a -> Ast.map (Ast.lam1 (Ty.array_n Ty.real 2)
    (fun w -> Ast.Array_access (w, Ast.int 0))) (Ast.Slide (2, 2, a))) in
  check "slide step 2 heads" [| 1.; 3. |] (run1 ~k:4 p (farr [| 1.; 2.; 3.; 4. |]))

let test_iota_size_val () =
  let p = { Ast.l_params = []; l_body = Ast.map (Ast.lam1 Ty.int (fun i -> Ast.(i *! Size_val n))) (Ast.Iota n) } in
  let v = Eval.run ~sizes:(sizes 3) p [] in
  Alcotest.(check (list int)) "iota * N" [ 0; 3; 6 ] (Array.to_list (Eval.to_int_array v))

let test_select_laziness () =
  (* the guarded branch must not be evaluated: out-of-bounds access *)
  let p =
    prog1 vec (fun a ->
        Ast.map
          (Ast.lam1 Ty.int (fun i ->
               Ast.Select
                 ( Ast.(i <! int 2),
                   Ast.Array_access (a, i),
                   Ast.real 0.0 )))
          (Ast.Iota (Size.var "M")))
  in
  let v =
    Eval.run
      ~sizes:(function "N" -> Some 2 | "M" -> Some 4 | _ -> None)
      p
      [ farr [| 5.; 6. |] ]
  in
  check "guard prevents OOB" [| 5.; 6.; 0.; 0. |] v

let test_concat_skip_semantics () =
  let p =
    prog1 vec (fun a ->
        Ast.Write_to
          ( a,
            Ast.Concat
              [
                Ast.skip Ty.real (Size.const 1);
                Ast.Array_cons (Ast.real 42., 2);
                Ast.skip Ty.real (Size.sub n (Size.const 3));
              ] ))
  in
  let vin = farr [| 0.; 1.; 2.; 3.; 4. |] in
  let _ = Eval.run ~sizes:(sizes 5) p [ vin ] in
  check "skip leaves, cons writes" [| 0.; 42.; 42.; 3.; 4. |] vin

let test_write_to_aliasing () =
  (* writeTo(a, map f a) updates a in place *)
  let p =
    prog1 vec (fun a ->
        Ast.Write_to (a, Ast.map (Ast.lam1 Ty.real (fun x -> Ast.(x +! real 1.))) a))
  in
  let vin = farr [| 1.; 2. |] in
  let _ = Eval.run ~sizes:(sizes 2) p [ vin ] in
  check "in-place increment" [| 2.; 3. |] vin

let test_errors () =
  let p = prog1 vec (fun a -> Ast.Array_access (a, Ast.int 99)) in
  (match run1 ~k:2 p (farr [| 1.; 2. |]) with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds error");
  let q = { Ast.l_params = []; l_body = Ast.Param (Ast.named_param "ghost" Ty.real) } in
  match Eval.run q [] with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "expected unbound parameter error"

(* substitution / beta reduction used by the rewriter *)
let test_subst () =
  let f = Ast.lam1 Ty.real (fun x -> Ast.(x +! x)) in
  let e = Ast.apply1 f (Ast.real 3.) in
  (match Eval.run { Ast.l_params = []; l_body = e } [] with
  | Eval.VReal r -> Alcotest.(check (float 0.)) "beta" 6. r
  | _ -> Alcotest.fail "not a scalar");
  let g = Ast.compose f (Ast.lam1 Ty.real (fun x -> Ast.(x *! real 10.))) in
  match Eval.run { Ast.l_params = []; l_body = Ast.apply1 g (Ast.real 2.) } [] with
  | Eval.VReal r -> Alcotest.(check (float 0.)) "compose" 40. r
  | _ -> Alcotest.fail "not a scalar"

let test_int_arrays () =
  let p = prog1 (Ty.array Ty.int n) (fun a -> Ast.map (Ast.lam1 Ty.int (fun x -> Ast.(x +! int 1))) a) in
  let v = run1 ~k:3 p (iarr [| 1; 2; 3 |]) in
  Alcotest.(check (list int)) "int map" [ 2; 3; 4 ] (Array.to_list (Eval.to_int_array v))

let suite =
  [
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "reduce" `Quick test_reduce;
    Alcotest.test_case "zip/get" `Quick test_zip_get;
    Alcotest.test_case "slide/pad" `Quick test_slide_pad;
    Alcotest.test_case "split/join" `Quick test_split_join;
    Alcotest.test_case "slide with step" `Quick test_slide_step;
    Alcotest.test_case "iota and size values" `Quick test_iota_size_val;
    Alcotest.test_case "select is lazy" `Quick test_select_laziness;
    Alcotest.test_case "concat/skip semantics" `Quick test_concat_skip_semantics;
    Alcotest.test_case "writeTo aliasing" `Quick test_write_to_aliasing;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "int arrays" `Quick test_int_arrays;
  ]
