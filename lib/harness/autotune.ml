(* Measured rewrite-space autotuner.

   [Tuner] sweeps one knob through the performance model; this module
   searches the full configuration space the runtime actually exposes —

     volume-kernel form (flat | 2.5D tile | Explore rewrite variant)
     x Opt unroll budget x work-group size x shard count x schedule

   — and decides by *measurement*, because BENCH_PR7 showed the model
   picking the wrong side of a 1.6-2x measured regression (the tiled
   kernel on the native engine).  The pipeline:

     1. enumerate plans from [Lift.Explore] variants + runtime knobs;
     2. prune to a top-k frontier with [Perf_model] predictions,
        corrected by any persisted calibration factors;
     3. measure the survivors on the requested engine with
        warmup/repeat/median timing (in parallel across OCaml domains on
        request — each candidate owns its virtual devices, so
        measurements only contend for host cores);
     4. persist the measured-best plan in [Plan_cache] so a warm rerun
        (or [racs simulate --tuned]) needs zero measurements;
     5. feed measured-vs-predicted ratios back into the calibration
        table, sharpening later pruning.

   Every measured candidate runs the same step count from the same
   impulse, and its final field must be bit-identical to the default
   plan's — a candidate that diverges is reported but can never win, so
   a cached plan never changes simulation results. *)

open Acoustics

type engine = [ `Interp | `Jit | `Jit_parallel of int | `Native ]

type measured = {
  m_plan : Plan_cache.plan;
  m_predicted_s : float;  (* calibrated model time per step *)
  m_measured_s : float;  (* median measured time per step *)
  m_identical : bool;  (* output bit-identical to the default plan *)
}

type result = {
  r_key : Plan_cache.key;
  r_entry : Plan_cache.entry;  (* the winning plan and its numbers *)
  r_evaluated : measured list;  (* every candidate measured, eval order *)
  r_candidates : int;  (* plans enumerated before model pruning *)
  r_measurements : int;  (* candidates actually measured (0 = warm cache) *)
  r_from_cache : bool;
}

(* -- Labels ----------------------------------------------------------- *)

let engine_label : engine -> string = function
  | `Interp -> "interp"
  | `Jit -> "jit"
  | `Jit_parallel n -> Printf.sprintf "jit-parallel-%d" n
  | `Native -> "native"

let precision_label = function
  | Kernel_ast.Cast.Single -> "single"
  | Kernel_ast.Cast.Double -> "double"

let plan_label (p : Plan_cache.plan) =
  let vol =
    match (p.pl_tile, p.pl_variant) with
    | Some (w, h), _ -> Printf.sprintf "tile%dx%d" w h
    | None, [] -> "flat"
    | None, trace -> "rw:" ^ String.concat "," trace
  in
  Printf.sprintf "%s ls=%d unroll=%s shards=%d/%s%s" vol p.pl_local
    (match p.pl_unroll with None -> "default" | Some n -> string_of_int n)
    p.pl_shards
    (match p.pl_schedule with
    | `Seq -> "seq"
    | `Concurrent -> "concurrent"
    | `Overlap -> "overlap")
    (if p.pl_tblock > 1 then Printf.sprintf " T=%d" p.pl_tblock else "")

(* -- Kernel construction ---------------------------------------------- *)

let betas n_branches =
  (Material.tables ~n_branches Material.defaults).Material.t_beta

(* The volume kernel a plan runs.  A rewrite-variant plan replays its
   rule trace over the Lift volume program ([Explore.replay] is exact),
   lowers and compiles it — named distinctly so calibration and stats
   never conflate it with the hand-written kernel. *)
let volume_kernel ~precision (p : Plan_cache.plan) =
  match (p.pl_tile, p.pl_variant) with
  | Some tile, _ -> Lift_acoustics.Programs.tiled_volume ~precision ~tile ()
  | None, [] -> Hand_kernels.volume ~precision
  | None, trace ->
      let prog = Lift.Explore.replay ~trace (Lift_acoustics.Programs.volume ()) in
      let lowered = Lift.Rewrite.lower_outer_map_to_glb prog in
      (Lift.Codegen.compile_kernel ~name:"volume_rw" ~precision lowered)
        .Lift.Codegen.kernel

let boundary_kernel ~precision ~n_branches scheme =
  match scheme with
  | "fi" -> (Hand_kernels.boundary_fi ~precision, Workloads.Boundary 0)
  | "fi-mm" ->
      ( Hand_kernels.boundary_fi_mm ~precision ~betas:(betas n_branches),
        Workloads.Boundary 0 )
  | "fd-mm" ->
      (Hand_kernels.boundary_fd_mm ~precision ~mb:n_branches, Workloads.Boundary n_branches)
  | s -> invalid_arg (Printf.sprintf "Autotune: unknown scheme %S (fi | fi-mm | fd-mm)" s)

let plan_kernels ~precision ~n_branches ~scheme (p : Plan_cache.plan) =
  [ volume_kernel ~precision p; fst (boundary_kernel ~precision ~n_branches scheme) ]

(* -- Cache key --------------------------------------------------------- *)

(* The digest covers the code of every kernel form the search can pick,
   so any codegen change invalidates persisted plans. *)
let code_digest ~precision ~n_branches ~scheme =
  let prints =
    List.map Kernel_ast.Print.kernel_to_string
      [
        Hand_kernels.volume ~precision;
        fst (boundary_kernel ~precision ~n_branches scheme);
        Lift_acoustics.Programs.tiled_volume ~precision ~tile:(8, 8) ();
      ]
  in
  (* alpha-insensitive: [Programs.volume]'s parameter names come from a
     process-global gensym, so a printed AST would hash differently
     depending on what compiled earlier in the process *)
  let lift_src = Lift.Explore.key (Lift_acoustics.Programs.volume ()) in
  Digest.to_hex (Digest.string (String.concat "\x00" ("racs-autotune-v1" :: lift_src :: prints)))

let key ~(engine : engine) ~precision ~n_branches ~scheme ~shape
    ~(dims : Geometry.dims) : Plan_cache.key =
  {
    Plan_cache.k_scheme = scheme;
    k_shape = Geometry.shape_label shape;
    k_dims = (dims.Geometry.nx, dims.Geometry.ny, dims.Geometry.nz);
    k_precision = precision_label precision;
    k_device = Vgpu.Device.host.Vgpu.Device.name;
    k_engine = engine_label engine;
    k_digest = code_digest ~precision ~n_branches ~scheme;
  }

(* -- Enumeration ------------------------------------------------------- *)

(* Budgets bracketing Opt's default (512): 0 disables unrolling, 16384
   unrolls everything in these kernels.  Both change the generated code,
   which is what a measured win on a CPU host comes from. *)
let default_unrolls = [ None; Some 0; Some 16384 ]
let default_tiles = [ (4, 4); (8, 8); (16, 8) ]

(* Temporal block depths searched on sharded plans (a single device has
   no halo traffic to amortise); [Gpu_sim] clamps a depth the thinnest
   slab cannot carry. *)
let default_tblocks = [ 1; 2; 4 ]

(* Every plan in the search space.  Work-group size is not a separate
   axis: the virtual engines' wall clock is insensitive to it for
   ungrouped kernels (and a tile fixes it), so each volume form gets the
   model-best size from [Tuner]'s sweep — the work-group dimension is
   searched, just inside the model. *)
let enumerate ~device ~precision ~shape ~(dims : Geometry.dims) ~max_shards
    ~explore_depth ~tiles ?(tblocks = default_tblocks) () =
  let wv = Workloads.workload Workloads.Volume shape dims in
  let tiles =
    List.filter
      (fun (w, h) -> w * h <= 256 && w <= dims.Geometry.nx && h <= dims.Geometry.ny)
      tiles
  in
  let variants =
    if explore_depth <= 0 then []
    else
      Lift.Explore.frontier ~depth:explore_depth ~k:3 ~precision ~device
        ~workload:wv
        (Lift_acoustics.Programs.volume ())
      |> List.filter_map (fun (r : Lift.Explore.ranked) ->
             match r.Lift.Explore.r_variant.Lift.Explore.v_trace with
             | [] -> None  (* the unrewritten program is the baseline *)
             | trace -> Some trace)
  in
  let volume_forms =
    ((None : (int * int) option), ([] : string list))
    :: List.map (fun t -> (Some t, [])) tiles
    @ List.map (fun tr -> (None, tr)) variants
  in
  let local_of tile variant =
    match tile with
    | Some (w, h) -> w * h
    | None ->
        let k =
          volume_kernel ~precision
            { Plan_cache.default_plan with pl_tile = tile; pl_variant = variant }
        in
        (Tuner.tune ~device k wv).Tuner.best_size
  in
  let tblocks = List.sort_uniq compare (List.filter (fun t -> t >= 1) tblocks) in
  let tblocks = if tblocks = [] then [ 1 ] else tblocks in
  (* the time-block axis applies to sharded plans only: a single device
     has no halo exchanges to amortise *)
  let schedules =
    (1, `Seq, 1)
    :: (if max_shards >= 2 then
          List.concat_map
            (fun tb ->
              List.init (max_shards - 1) (fun i -> (i + 2, `Concurrent, tb))
              @ [ (2, `Overlap, tb) ])
            tblocks
        else [])
  in
  List.concat_map
    (fun (tile, variant) ->
      let local = local_of tile variant in
      List.concat_map
        (fun unroll ->
          List.filter_map
            (fun (shards, schedule, tblock) ->
              (* the overlapped schedule range-splits the volume kernel
                 into interior/frontier launches — a transformation of
                 the flat 1D NDRange; a 2D tiled kernel under it is not
                 bit-identical (the identity guard would reject it
                 anyway, so don't spend measurements on it) *)
              if tile <> None && schedule = `Overlap then None
              else
                Some
                  {
                    Plan_cache.pl_tile = tile;
                    pl_variant = variant;
                    pl_local = local;
                    pl_unroll = unroll;
                    pl_shards = shards;
                    pl_schedule = schedule;
                    pl_tblock = tblock;
                  })
            schedules)
        default_unrolls)
    volume_forms

(* -- Prediction -------------------------------------------------------- *)

(* Calibrated per-step prediction of a plan: volume + boundary kernel,
   each scaled by its (device, kernel) correction factor.  Sharded plans
   price through [predict_sharded]/[predict_overlapped] (whole-plan
   shapes the model already knows); the boundary kernel shards without a
   halo of its own. *)
let predict_plan ~device ~calibration ~precision ~n_branches ~scheme ~shape
    ~(dims : Geometry.dims) (p : Plan_cache.plan) =
  let vol = volume_kernel ~precision p in
  let bnd, bkind = boundary_kernel ~precision ~n_branches scheme in
  let wv =
    { (Workloads.workload Workloads.Volume shape dims) with
      Vgpu.Perf_model.local_size = p.pl_local }
  in
  let wb =
    { (Workloads.workload bkind shape dims) with Vgpu.Perf_model.local_size = p.pl_local }
  in
  let factor (k : Kernel_ast.Cast.kernel) =
    Vgpu.Perf_model.Calibration.factor calibration
      ~device:device.Vgpu.Device.name ~kernel_name:k.Kernel_ast.Cast.name
  in
  let plane_elems = dims.Geometry.nx * dims.Geometry.ny in
  let base k w ~plane_elems =
    if p.pl_shards = 1 then
      Vgpu.Perf_model.predict ?unroll_budget:p.pl_unroll device k w
    else
      (* halo width from the kernel's inferred stencil footprint, not the
         protocol constant — the workload omits the grid dims (they would
         skew the per-point loop counts), so supply them here *)
      let radius =
        Vgpu.Perf_model.stencil_radius k
          { w with
            Vgpu.Perf_model.param_values =
              ("Nx", dims.Geometry.nx) :: ("Ny", dims.Geometry.ny)
              :: w.Vgpu.Perf_model.param_values }
      in
      if p.pl_tblock > 1 then
        (* blocked cadence: exchange rounds amortise over T against the
           redundant ghost recompute, whatever the schedule *)
        Vgpu.Perf_model.predict_blocked device k w ~radius ~plane_elems
          ~shards:p.pl_shards ~tblock:p.pl_tblock
      else
        match p.pl_schedule with
        | `Overlap ->
            Vgpu.Perf_model.predict_overlapped device k w ~radius ~plane_elems
              ~shards:p.pl_shards
        | `Seq | `Concurrent ->
            Vgpu.Perf_model.predict_sharded device k w ~radius ~plane_elems
              ~shards:p.pl_shards
  in
  (base vol wv ~plane_elems *. factor vol) +. (base bnd wb ~plane_elems:0 *. factor bnd)

(* -- Measurement ------------------------------------------------------- *)

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Autotune.median: empty"
  | sorted -> List.nth sorted (List.length sorted / 2)

let sim_of_plan ~engine ~precision ~n_branches ~params ~room (p : Plan_cache.plan) =
  let shards = if p.pl_shards > 1 then Some p.pl_shards else None in
  let schedule = if p.pl_shards > 1 then Some (p.pl_schedule :> Gpu_sim.schedule) else None in
  let tblock = if p.pl_shards > 1 && p.pl_tblock > 1 then Some p.pl_tblock else None in
  Gpu_sim.create ~engine ?unroll_budget:p.pl_unroll ?shards ?schedule ?tblock
    ~fi_beta:0.1 ~n_branches ~precision params room

(* Measure one plan: same impulse, [warmup] untimed steps (compiles and
   caches), then [repeats] timed intervals of [steps] steps each —
   median per-step time.  Returns the final field's bit pattern (every
   candidate runs the same total step count, so bit-identical plans end
   bit-identical) and each kernel's measured mean launch time for
   calibration. *)
let measure_plan ~clock ~engine ~precision ~n_branches ~scheme ~params ~room
    ~warmup ~repeats ~steps (p : Plan_cache.plan) =
  let kernels = plan_kernels ~precision ~n_branches ~scheme p in
  let sim = sim_of_plan ~engine ~precision ~n_branches ~params ~room p in
  let cx, cy, cz = State.centre sim.Gpu_sim.state in
  State.add_impulse sim.Gpu_sim.state ~x:cx ~y:cy ~z:cz;
  for _ = 1 to warmup do
    Gpu_sim.step sim kernels
  done;
  Gpu_sim.reset_stats sim (* drains queued work; the interval starts clean *);
  let times =
    List.init repeats (fun _ ->
        let t0 = clock () in
        for _ = 1 to steps do
          Gpu_sim.step sim kernels
        done;
        (* [step] only submits under the overlapped schedule — drain
           inside the interval, or async plans get credited submission
           cost while their compute lands outside the timer *)
        Gpu_sim.drain sim;
        (clock () -. t0) /. float_of_int steps)
  in
  Gpu_sim.sync sim;
  let bits = Array.map Int64.bits_of_float sim.Gpu_sim.state.State.curr in
  let per_kernel =
    List.filter_map
      (fun (name, (ks : Vgpu.Runtime.kernel_stats)) ->
        if ks.Vgpu.Runtime.k_launches > 0 then
          Some (name, ks.Vgpu.Runtime.total_s /. float_of_int ks.Vgpu.Runtime.k_launches)
        else None)
      (Gpu_sim.stats sim).Vgpu.Runtime.per_kernel
  in
  (median times, bits, per_kernel)

(* Run measurements, optionally fanned out over extra domains.  Each
   candidate simulation owns its virtual devices; shared process state
   (the JIT pool, the native binary memo) is lock-protected, so domains
   only contend for host cores.  Results keep candidate order; a
   candidate whose measurement raises is dropped ([None]). *)
let measure_all ~domains measure (candidates : 'a list) =
  let arr = Array.of_list candidates in
  let out = Array.make (Array.length arr) None in
  let safely c = match measure c with r -> Some r | exception _ -> None in
  if domains <= 1 then Array.iteri (fun i c -> out.(i) <- safely c) arr
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length arr then begin
          out.(i) <- safely arr.(i);
          go ()
        end
      in
      go ()
    in
    let spawned =
      List.init (min (domains - 1) (max 0 (Array.length arr - 1))) (fun _ ->
          Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.to_list out

(* -- The tuner --------------------------------------------------------- *)

let tune ?(engine : engine = `Native) ?(precision = Kernel_ast.Cast.Double)
    ?(device = Vgpu.Device.host) ?(n_branches = 3) ?(topk = 8) ?(warmup = 2)
    ?(repeats = 5) ?(steps = 20) ?(max_shards = 2) ?(domains = 1) ?clock
    ?(use_cache = true) ?(explore_depth = 2) ?tiles ?tblocks ~scheme ~shape ~dims () :
    result =
  let key = key ~engine ~precision ~n_branches ~scheme ~shape ~dims in
  let cached = if use_cache then Plan_cache.find key else None in
  match cached with
  | Some entry ->
      {
        r_key = key;
        r_entry = entry;
        r_evaluated = [];
        r_candidates = 0;
        r_measurements = 0;
        r_from_cache = true;
      }
  | None ->
      let clk = Option.value clock ~default:Unix.gettimeofday in
      (* inject the clock into the runtimes' launch timing too, so the
         per-kernel calibration observations share the timer *)
      (match clock with Some c -> Vgpu.Runtime.set_clock c | None -> ());
      Fun.protect
        ~finally:(fun () ->
          match clock with Some _ -> Vgpu.Runtime.reset_clock () | None -> ())
        (fun () ->
          let calibration =
            if use_cache then Plan_cache.load_calibration ()
            else Vgpu.Perf_model.Calibration.create ()
          in
          let tiles = Option.value tiles ~default:default_tiles in
          let plans =
            enumerate ~device ~precision ~shape ~dims ~max_shards ~explore_depth
              ~tiles ?tblocks ()
          in
          let predicted =
            List.map
              (fun p ->
                ( p,
                  predict_plan ~device ~calibration ~precision ~n_branches ~scheme
                    ~shape ~dims p ))
              plans
          in
          (* model pruning: keep the k most promising plans, plus the
             whole flat unsharded unroll axis — that axis changes the
             generated code while the model cannot rank budgets under
             sharding, and it contains the default plan, the baseline
             every winner must beat *)
          let is_axis (p : Plan_cache.plan) =
            p.pl_tile = None && p.pl_variant = [] && p.pl_shards = 1
          in
          let is_default (p : Plan_cache.plan) = is_axis p && p.pl_unroll = None in
          let frontier =
            List.filteri
              (fun i _ -> i < topk)
              (List.stable_sort (fun (_, a) (_, b) -> compare a b) predicted)
          in
          let frontier =
            frontier
            @ List.filter
                (fun (p, _) ->
                  is_axis p && not (List.exists (fun (q, _) -> q = p) frontier))
                predicted
          in
          let params = Params.default in
          let n_materials = Array.length Material.defaults in
          let room = Geometry.build ~n_materials shape dims in
          let measure (p, pred) =
            let m, bits, per_kernel =
              measure_plan ~clock:clk ~engine ~precision ~n_branches ~scheme
                ~params ~room ~warmup ~repeats ~steps p
            in
            (p, pred, m, bits, per_kernel)
          in
          let measured_raw =
            List.filter_map Fun.id (measure_all ~domains measure frontier)
          in
          let default_row =
            match List.find_opt (fun (p, _, _, _, _) -> is_default p) measured_raw with
            | Some r -> r
            | None -> failwith "Autotune: default plan failed to measure"
          in
          let _, _, default_s, default_bits, _ = default_row in
          let evaluated =
            List.map
              (fun (p, pred, m, bits, _) ->
                {
                  m_plan = p;
                  m_predicted_s = pred;
                  m_measured_s = m;
                  m_identical = bits = default_bits;
                })
              measured_raw
          in
          (* measured re-ranking: fastest bit-identical candidate wins;
             ties break on predicted time, then evaluation order *)
          let winner =
            List.fold_left
              (fun acc m ->
                if not m.m_identical then acc
                else
                  match acc with
                  | None -> Some m
                  | Some b ->
                      if
                        m.m_measured_s < b.m_measured_s
                        || (m.m_measured_s = b.m_measured_s
                           && m.m_predicted_s < b.m_predicted_s)
                      then Some m
                      else acc)
              None evaluated
          in
          let winner = Option.get winner (* the default row is identical *) in
          let entry =
            {
              Plan_cache.e_plan = winner.m_plan;
              e_predicted_s = winner.m_predicted_s;
              e_measured_s = winner.m_measured_s;
              e_default_s = default_s;
              e_samples = repeats;
            }
          in
          (* feed measured kernel times back into the correction table *)
          List.iter
            (fun (p, _, _, _, per_kernel) ->
              let wv =
                { (Workloads.workload Workloads.Volume shape dims) with
                  Vgpu.Perf_model.local_size = p.Plan_cache.pl_local }
              in
              let _, bkind = boundary_kernel ~precision ~n_branches scheme in
              let wb =
                { (Workloads.workload bkind shape dims) with
                  Vgpu.Perf_model.local_size = p.Plan_cache.pl_local }
              in
              List.iter
                (fun (name, mean_s) ->
                  let k = volume_kernel ~precision p in
                  let predicted_s =
                    if k.Kernel_ast.Cast.name = name then
                      Vgpu.Perf_model.predict ?unroll_budget:p.Plan_cache.pl_unroll
                        device k
                        { wv with
                          Vgpu.Perf_model.active_points =
                            wv.Vgpu.Perf_model.active_points
                            /. float_of_int p.Plan_cache.pl_shards }
                    else
                      let b, _ = boundary_kernel ~precision ~n_branches scheme in
                      if b.Kernel_ast.Cast.name = name then
                        Vgpu.Perf_model.predict
                          ?unroll_budget:p.Plan_cache.pl_unroll device b
                          { wb with
                            Vgpu.Perf_model.active_points =
                              wb.Vgpu.Perf_model.active_points
                              /. float_of_int p.Plan_cache.pl_shards }
                      else 0.
                  in
                  Vgpu.Perf_model.Calibration.observe calibration
                    ~device:device.Vgpu.Device.name ~kernel_name:name
                    ~predicted_s ~measured_s:mean_s)
                per_kernel)
            measured_raw;
          if use_cache then begin
            Plan_cache.store key entry;
            Plan_cache.save_calibration calibration
          end;
          {
            r_key = key;
            r_entry = entry;
            r_evaluated = evaluated;
            r_candidates = List.length plans;
            r_measurements = List.length measured_raw;
            r_from_cache = false;
          })
