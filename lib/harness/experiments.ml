(* One generator per table/figure of the paper's evaluation (§VI-VII).

   Every experiment compares the Lift-generated kernel against the
   hand-written kernel on the four GPUs of Table III, across the three
   room sizes of Table II, in single and double precision, through the
   analytic performance model fed by static analysis of the actual
   kernel ASTs.  Where the paper reports numbers (appendix tables) they
   are printed side by side and a shape-agreement summary is computed. *)

open Acoustics

type version =
  | Hand
  | Lift_gen

let version_label = function Hand -> "OpenCL" | Lift_gen -> "LIFT"

type result_row = {
  platform : string;
  version : version;
  size : int;
  shape : Geometry.shape;
  precision : Kernel_ast.Cast.precision;
  model_s : float;       (* predicted kernel time, seconds *)
  paper_ms : float option;
  throughput : float;    (* updates per second *)
}

let precision_label : Kernel_ast.Cast.precision -> string = function
  | Single -> "single"
  | Double -> "double"

let devices = Vgpu.Device.all
let sizes = Geometry.paper_sizes
let precisions = [ Kernel_ast.Cast.Single; Kernel_ast.Cast.Double ]

let betas_default = (Material.tables ~n_branches:3 Material.defaults).Material.t_beta

(* Kernel selection per experiment and version. *)
let fused_kernel version precision =
  match version with
  | Hand -> Hand_kernels.fused_fi ~precision
  | Lift_gen ->
      (Lift_acoustics.Programs.compile ~name:"fused_fi" ~precision
         (Lift_acoustics.Programs.fused_fi ()))
        .Lift.Codegen.kernel

let fi_mm_kernel version precision =
  match version with
  | Hand -> Hand_kernels.boundary_fi_mm ~precision ~betas:betas_default
  | Lift_gen ->
      (Lift_acoustics.Programs.compile ~name:"boundary_fi_mm" ~precision
         (Lift_acoustics.Programs.boundary_fi_mm ()))
        .Lift.Codegen.kernel

let fd_mm_kernel ~mb version precision =
  match version with
  | Hand -> Hand_kernels.boundary_fd_mm ~precision ~mb
  | Lift_gen ->
      (Lift_acoustics.Programs.compile ~name:"boundary_fd_mm" ~precision
         (Lift_acoustics.Programs.boundary_fd_mm ~mb ()))
        .Lift.Codegen.kernel


let paper_version = function Hand -> Paper_data.OpenCL | Lift_gen -> Paper_data.Lift

let lookup_paper table ~platform ~version ~size ~shape ~precision =
  match Paper_data.find table ~platform ~version:(paper_version version) ~size
          ~shape:(Geometry.shape_label shape)
  with
  | Some r -> Some (match precision with Kernel_ast.Cast.Single -> r.Paper_data.single_ms | Double -> r.double_ms)
  | None -> None

(* Evaluate one (kernel-kind, kernel-builder) over the full matrix. *)
let matrix ?(shapes = [ Geometry.Box; Geometry.Dome ]) ~kind ~kernel_of ~paper_table () :
    result_row list =
  List.concat_map
    (fun (device : Vgpu.Device.t) ->
      List.concat_map
        (fun shape ->
          List.concat_map
            (fun dims ->
              List.concat_map
                (fun precision ->
                  List.map
                    (fun version ->
                      let kernel = kernel_of version precision in
                      let w = Workloads.workload kind shape dims in
                      (* the paper hand-tunes each cell by workgroup size *)
                      let model_s = Tuner.tuned_time ~device kernel w in
                      let updates = Workloads.updates kind shape dims in
                      {
                        platform = device.Vgpu.Device.name;
                        version;
                        size = dims.Geometry.nx;
                        shape;
                        precision;
                        model_s;
                        paper_ms =
                          Option.bind paper_table (fun t ->
                              lookup_paper t ~platform:device.Vgpu.Device.name ~version
                                ~size:dims.Geometry.nx ~shape ~precision);
                        throughput = updates /. model_s;
                      })
                    [ Hand; Lift_gen ])
                precisions)
            sizes)
        shapes)
    devices

let print_rows ~title rows =
  let headers =
    [ "platform"; "version"; "size"; "shape"; "prec"; "model ms"; "paper ms"; "Gupd/s" ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.platform;
          version_label r.version;
          string_of_int r.size;
          Geometry.shape_label r.shape;
          precision_label r.precision;
          Report.ms r.model_s;
          Report.opt_ms r.paper_ms;
          Report.gups r.throughput;
        ])
      rows
  in
  Report.print_table ~title ~headers body

(* Shape agreement: over (platform, size, shape, precision) cells where
   the paper reports both versions, does the model agree on who wins
   (within a 3% tie band)?  Also reports the median |log-ratio| between
   model and paper times. *)
let agreement rows =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let key = (r.platform, r.size, r.shape, r.precision) in
      let prev = try Hashtbl.find cells key with Not_found -> [] in
      Hashtbl.replace cells key (r :: prev))
    rows;
  let wins_agree = ref 0 and wins_total = ref 0 in
  let log_ratios = ref [] in
  Hashtbl.iter
    (fun _ rs ->
      match rs with
      | [ a; b ] -> (
          let hand, lift = if a.version = Hand then (a, b) else (b, a) in
          (match (hand.paper_ms, lift.paper_ms) with
          | Some ph, Some pl ->
              let tie_band = 0.03 in
              let paper_ratio = pl /. ph and model_ratio = lift.model_s /. hand.model_s in
              let sign r = if r > 1. +. tie_band then 1 else if r < 1. -. tie_band then -1 else 0 in
              incr wins_total;
              if sign paper_ratio = sign model_ratio || sign paper_ratio = 0 || sign model_ratio = 0
              then incr wins_agree
          | _ -> ());
          List.iter
            (fun r ->
              match r.paper_ms with
              | Some p when p > 0. ->
                  log_ratios := Float.abs (log (r.model_s *. 1e3 /. p)) :: !log_ratios
              | _ -> ())
            [ hand; lift ])
      | _ -> ())
    cells;
  let median l =
    match List.sort compare l with
    | [] -> nan
    | l -> List.nth l (List.length l / 2)
  in
  (!wins_agree, !wins_total, median !log_ratios)

let print_agreement ~label rows =
  let agree, total, med = agreement rows in
  if total > 0 then
    Printf.printf
      "%s: who-wins agreement (|tie|<=3%%) %d/%d cells; median |log(model/paper)| = %.2f (x%.2f)\n"
      label agree total med (exp med)

(* ------------------------------------------------------------------ *)
(* The experiments *)

(* Table II: room sizes and boundary points. *)
let table2 () =
  let rows =
    List.concat_map
      (fun (dims : Geometry.dims) ->
        let paper =
          List.find_opt
            (fun (r : Paper_data.room_row) ->
              let x, y, z = r.Paper_data.dims in
              x = dims.Geometry.nx && y = dims.ny && z = dims.nz)
            Paper_data.table2
        in
        List.map
          (fun shape ->
            let s = Workloads.stats shape dims in
            let paper_pts =
              match (paper, shape) with
              | Some p, Geometry.Dome -> string_of_int p.Paper_data.dome_pts
              | Some p, Geometry.Box -> string_of_int p.Paper_data.box_pts
              | Some _, Geometry.L_shape | None, _ -> "-"
            in
            [
              Printf.sprintf "%dx%dx%d" dims.Geometry.nx dims.ny dims.nz;
              Geometry.shape_label shape;
              string_of_int s.Geometry.s_inside;
              string_of_int s.Geometry.s_boundary;
              paper_pts;
              Printf.sprintf "%.3f" s.Geometry.s_contiguity;
            ])
          [ Geometry.Dome; Geometry.Box ])
      sizes
  in
  Report.print_table ~title:"Table II: rooms (ours vs paper boundary points)"
    ~headers:[ "dims"; "shape"; "inside"; "boundary"; "paper b.pts"; "contiguity" ]
    rows

(* Table III: platforms. *)
let table3 () =
  let rows =
    List.map
      (fun (d : Vgpu.Device.t) ->
        [
          d.name;
          (match d.vendor with
          | Vgpu.Device.Nvidia -> "NVIDIA"
          | Amd -> "AMD"
          | Host -> "CPU");
          Printf.sprintf "%.0f" d.mem_bw_gb_s;
          Printf.sprintf "%.0f" d.sp_gflops;
          Printf.sprintf "%.0f" (d.sp_gflops *. d.dp_ratio);
        ])
      devices
  in
  Report.print_table ~title:"Table III: platforms"
    ~headers:[ "platform"; "vendor"; "GB/s"; "SP GFLOPS"; "DP GFLOPS" ]
    rows

(* Figure 4 / Table IV: naive FI, box rooms only, full stencil kernel. *)
let fig4 () =
  let rows =
    matrix ~shapes:[ Geometry.Box ] ~kind:Workloads.Fused ~kernel_of:fused_kernel
      ~paper_table:(Some Paper_data.table4) ()
  in
  print_rows ~title:"Figure 4 / Table IV: FI (fused stencil+boundary), box" rows;
  print_agreement ~label:"fig4" rows;
  rows

(* Figure 5 / Table V: FI-MM boundary handling kernel. *)
let fig5 () =
  let rows =
    matrix ~kind:(Workloads.Boundary 0) ~kernel_of:fi_mm_kernel
      ~paper_table:(Some Paper_data.table5) ()
  in
  print_rows ~title:"Figure 5 / Table V: FI-MM boundary handling" rows;
  print_agreement ~label:"fig5" rows;
  rows

(* Figure 6 / Table VI: FD-MM boundary handling kernel, 3 branches. *)
let fig6 () =
  let rows =
    matrix ~kind:(Workloads.Boundary 3) ~kernel_of:(fd_mm_kernel ~mb:3)
      ~paper_table:(Some Paper_data.table6) ()
  in
  print_rows ~title:"Figure 6 / Table VI: FD-MM boundary handling (MB=3)" rows;
  print_agreement ~label:"fig6" rows;
  rows

(* Figure 2: fraction of a full simulation step spent in the boundary
   kernel, hand-written kernels on the GTX 780. *)
let fig2 () =
  let device = Vgpu.Device.gtx780 in
  let precision = Kernel_ast.Cast.Double in
  let volume_k = Hand_kernels.volume ~precision in
  let rows =
    List.concat_map
      (fun shape ->
        List.concat_map
          (fun (algo, mb, kernel) ->
            List.map
              (fun dims ->
                let wv = Workloads.workload Workloads.Volume shape dims in
                let wb = Workloads.workload (Workloads.Boundary mb) shape dims in
                let tv = Tuner.tuned_time ~device volume_k wv in
                let tb = Tuner.tuned_time ~device kernel wb in
                [
                  Geometry.shape_label shape;
                  algo;
                  Geometry.size_label dims;
                  Report.ms tv;
                  Report.ms tb;
                  Report.pct (tb /. (tv +. tb));
                ])
              sizes)
          [
            ("FI-MM", 0, Hand_kernels.boundary_fi_mm ~precision ~betas:betas_default);
            ("FD-MM", 3, Hand_kernels.boundary_fd_mm ~precision ~mb:3);
          ])
      [ Geometry.Box; Geometry.Dome ]
  in
  Report.print_table
    ~title:"Figure 2: boundary handling share of step time (GTX780, hand-written)"
    ~headers:[ "shape"; "algo"; "size"; "volume ms"; "boundary ms"; "% boundary" ]
    rows;
  rows

let all () =
  table2 ();
  table3 ();
  let r4 = fig4 () in
  let r5 = fig5 () in
  let r6 = fig6 () in
  let _ = fig2 () in
  (r4, r5, r6)
