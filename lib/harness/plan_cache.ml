(* On-disk best-plan cache for the autotuner.

   One file per tuning key, holding the winning execution plan plus the
   numbers behind the choice, in a line-oriented text format (robust
   across compiler versions, unlike Marshal, and greppable).  The
   install discipline mirrors the native backend's binary cache: write
   to a process-unique temp file in the same directory, then rename —
   atomic on POSIX — so concurrent tuners can never expose a torn entry.
   A corrupt or truncated entry is treated as a miss and overwritten by
   the next store, never trusted.

   The same directory also holds the perf-model calibration table
   (measured/predicted correction factors per device x kernel), persisted
   with the same atomic rename. *)

let magic = "racs-plan-v2"
let calibration_magic = "racs-calibration-v1"

type schedule = [ `Seq | `Concurrent | `Overlap ]

type plan = {
  pl_tile : (int * int) option;  (* 2.5D tile, None = flat volume kernel *)
  pl_variant : string list;  (* Explore rewrite trace, [] = baseline program *)
  pl_local : int;  (* work-group size (model-level for ungrouped kernels) *)
  pl_unroll : int option;  (* Opt unroll-budget override *)
  pl_shards : int;
  pl_schedule : schedule;
  pl_tblock : int;  (* temporal block depth T, 1 = per-step exchanges *)
}

let default_plan =
  {
    pl_tile = None;
    pl_variant = [];
    pl_local = 128;
    pl_unroll = None;
    pl_shards = 1;
    pl_schedule = `Seq;
    pl_tblock = 1;
  }

type key = {
  k_scheme : string;
  k_shape : string;
  k_dims : int * int * int;
  k_precision : string;
  k_device : string;
  k_engine : string;
  k_digest : string;  (* digest of the candidate kernel code, see Autotune *)
}

type entry = {
  e_plan : plan;
  e_predicted_s : float;  (* model time of the winning plan, per step *)
  e_measured_s : float;  (* measured median time of the winner, per step *)
  e_default_s : float;  (* measured median of the default plan, per step *)
  e_samples : int;  (* measurement repeats behind the medians *)
}

(* -- Counters -------------------------------------------------------- *)

let c_hits = Atomic.make 0
let c_misses = Atomic.make 0
let c_stores = Atomic.make 0

let counters () =
  (Atomic.get c_hits, Atomic.get c_misses, Atomic.get c_stores)

let reset_counters () =
  Atomic.set c_hits 0;
  Atomic.set c_misses 0;
  Atomic.set c_stores 0

(* -- Cache directory -------------------------------------------------- *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let override_dir : string option ref = ref None

let cache_dir () =
  match !override_dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "RACS_PLAN_DIR" with
      | Some d when d <> "" -> d
      | _ -> (
          match Sys.getenv_opt "XDG_CACHE_HOME" with
          | Some d when d <> "" -> Filename.concat d "racs/plans"
          | _ -> (
              match Sys.getenv_opt "HOME" with
              | Some h when h <> "" -> Filename.concat h ".cache/racs/plans"
              | _ -> Filename.concat (Filename.get_temp_dir_name ()) "racs-plans")))

let set_cache_dir d = override_dir := Some d

(* -- Serialisation ---------------------------------------------------- *)

let string_of_schedule = function
  | `Seq -> "seq"
  | `Concurrent -> "concurrent"
  | `Overlap -> "overlap"

let schedule_of_string = function
  | "seq" -> Some `Seq
  | "concurrent" -> Some `Concurrent
  | "overlap" -> Some `Overlap
  | _ -> None

let key_digest (k : key) =
  let x, y, z = k.k_dims in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            magic; k.k_scheme; k.k_shape; string_of_int x; string_of_int y;
            string_of_int z; k.k_precision; k.k_device; k.k_engine; k.k_digest;
          ]))

let entry_path k = Filename.concat (cache_dir ()) (key_digest k ^ ".plan")

(* Rule names may not contain the separator; [variants]' rule names are
   identifiers, enforce it on write so a load can split reliably. *)
let check_trace trace =
  List.iter
    (fun r ->
      if String.contains r ',' || String.contains r '\n' then
        invalid_arg "Plan_cache: rule name contains a separator")
    trace

let render_entry (k : key) (e : entry) =
  check_trace e.e_plan.pl_variant;
  let x, y, z = k.k_dims in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "scheme %s" k.k_scheme;
  line "shape %s" k.k_shape;
  line "dims %d %d %d" x y z;
  line "precision %s" k.k_precision;
  line "device %s" k.k_device;
  line "engine %s" k.k_engine;
  line "digest %s" k.k_digest;
  (match e.e_plan.pl_tile with
  | None -> line "tile none"
  | Some (w, h) -> line "tile %d %d" w h);
  line "variant %s"
    (match e.e_plan.pl_variant with [] -> "-" | t -> String.concat "," t);
  line "local %d" e.e_plan.pl_local;
  line "unroll %s"
    (match e.e_plan.pl_unroll with None -> "default" | Some n -> string_of_int n);
  line "shards %d" e.e_plan.pl_shards;
  line "schedule %s" (string_of_schedule e.e_plan.pl_schedule);
  line "tblock %d" e.e_plan.pl_tblock;
  line "predicted_ns %.0f" (e.e_predicted_s *. 1e9);
  line "measured_ns %.0f" (e.e_measured_s *. 1e9);
  line "default_ns %.0f" (e.e_default_s *. 1e9);
  line "samples %d" e.e_samples;
  Buffer.contents b

(* Parse an entry file.  Any deviation — wrong magic, missing field,
   malformed value, key fields that do not match the requested key —
   yields [None]: a corrupt entry is a miss, not an error. *)
let parse_entry (k : key) (contents : string) : entry option =
  match String.split_on_char '\n' contents with
  | m :: rest when m = magic -> (
      let fields = Hashtbl.create 16 in
      List.iter
        (fun l ->
          match String.index_opt l ' ' with
          | Some i ->
              Hashtbl.replace fields (String.sub l 0 i)
                (String.sub l (i + 1) (String.length l - i - 1))
          | None -> ())
        rest;
      let f name = Hashtbl.find_opt fields name in
      let int_f name = Option.bind (f name) int_of_string_opt in
      let float_f name = Option.bind (f name) float_of_string_opt in
      let x, y, z = k.k_dims in
      let key_matches =
        f "scheme" = Some k.k_scheme
        && f "shape" = Some k.k_shape
        && f "dims" = Some (Printf.sprintf "%d %d %d" x y z)
        && f "precision" = Some k.k_precision
        && f "device" = Some k.k_device
        && f "engine" = Some k.k_engine
        && f "digest" = Some k.k_digest
      in
      if not key_matches then None
      else
        let tile =
          match f "tile" with
          | Some "none" -> Some None
          | Some s -> (
              match String.split_on_char ' ' s with
              | [ w; h ] -> (
                  match (int_of_string_opt w, int_of_string_opt h) with
                  | Some w, Some h when w > 0 && h > 0 -> Some (Some (w, h))
                  | _ -> None)
              | _ -> None)
          | None -> None
        in
        let variant =
          match f "variant" with
          | Some "-" -> Some []
          | Some s -> Some (String.split_on_char ',' s)
          | None -> None
        in
        let unroll =
          match f "unroll" with
          | Some "default" -> Some None
          | Some s -> (
              match int_of_string_opt s with Some n -> Some (Some n) | None -> None)
          | None -> None
        in
        let schedule = Option.bind (f "schedule") schedule_of_string in
        (match
           ( tile, variant, int_f "local", unroll, int_f "shards", schedule,
             int_f "tblock",
             ( float_f "predicted_ns", float_f "measured_ns", float_f "default_ns",
               int_f "samples" ) )
         with
        | ( Some pl_tile, Some pl_variant, Some pl_local, Some pl_unroll,
            Some pl_shards, Some pl_schedule, Some pl_tblock,
            (Some pred, Some meas, Some dflt, Some e_samples) )
          when pl_shards >= 1 && pl_local >= 1 && pl_tblock >= 1 ->
            Some
              {
                e_plan =
                  {
                    pl_tile; pl_variant; pl_local; pl_unroll; pl_shards;
                    pl_schedule; pl_tblock;
                  };
                e_predicted_s = pred *. 1e-9;
                e_measured_s = meas *. 1e-9;
                e_default_s = dflt *. 1e-9;
                e_samples;
              }
        | _ -> None))
  | _ -> None

(* -- Disk operations -------------------------------------------------- *)

(* Atomic install: write a process-unique sibling, rename over. *)
let write_file path contents =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find (k : key) : entry option =
  let path = entry_path k in
  let r =
    if Sys.file_exists path then
      match read_file path with
      | contents -> parse_entry k contents
      | exception _ -> None
    else None
  in
  (match r with
  | Some _ -> Atomic.incr c_hits
  | None -> Atomic.incr c_misses);
  r

let store (k : key) (e : entry) : unit =
  let dir = cache_dir () in
  mkdirs dir;
  write_file (entry_path k) (render_entry k e);
  Atomic.incr c_stores

(* -- Calibration persistence ------------------------------------------ *)

let calibration_path () = Filename.concat (cache_dir ()) "calibration"

(* Lines: "<log_sum> <samples> <device/kernel>" — the key last because it
   may contain spaces (device names do). *)
let save_calibration (c : Vgpu.Perf_model.Calibration.t) : unit =
  let dir = cache_dir () in
  mkdirs dir;
  let b = Buffer.create 256 in
  Buffer.add_string b (calibration_magic ^ "\n");
  List.iter
    (fun (key, log_sum, samples) ->
      Buffer.add_string b (Printf.sprintf "%.17g %d %s\n" log_sum samples key))
    (Vgpu.Perf_model.Calibration.entries c);
  write_file (calibration_path ()) (Buffer.contents b)

let load_calibration () : Vgpu.Perf_model.Calibration.t =
  let c = Vgpu.Perf_model.Calibration.create () in
  let path = calibration_path () in
  (if Sys.file_exists path then
     match String.split_on_char '\n' (read_file path) with
     | m :: rest when m = calibration_magic ->
         List.iter
           (fun l ->
             match String.split_on_char ' ' l with
             | log_sum :: samples :: key_parts when key_parts <> [] -> (
                 let key = String.concat " " key_parts in
                 match
                   ( float_of_string_opt log_sum, int_of_string_opt samples,
                     String.index_opt key '/' )
                 with
                 | Some log_sum, Some samples, Some i when samples > 0 ->
                     Vgpu.Perf_model.Calibration.set c
                       ~device:(String.sub key 0 i)
                       ~kernel_name:
                         (String.sub key (i + 1) (String.length key - i - 1))
                       ~log_sum ~samples
                 | _ -> ())
             | _ -> ())
           rest
     | _ | (exception _) -> ());
  c
