(** Work-group size tuning, emulating the paper's protocol (§VI: "All
    benchmarks have been hand-tuned by workgroup size and the best
    result is reported").

    This is the model-only sweep over one knob; the measured search over
    the full configuration space lives in {!Autotune}. *)

val candidate_sizes : points:float -> int list
(** Admissible work-group sizes for a launch of [points] work-items: the
    power-of-two ladder (8..256) clipped to sizes the launch can fill at
    least once.  Never empty — the smallest rung survives for degenerate
    launches. *)

type result = {
  best_size : int;
  best_time_s : float;
  sweep : (int * float) list;
}

val tune :
  device:Vgpu.Device.t -> Kernel_ast.Cast.kernel -> Vgpu.Perf_model.workload -> result
(** Sweep [candidate_sizes ~points:w.active_points] through the
    performance model and report the fastest. *)

val tuned_time :
  device:Vgpu.Device.t -> Kernel_ast.Cast.kernel -> Vgpu.Perf_model.workload -> float
