(* Work-group size tuning.

   Paper §VI: "All benchmarks have been hand-tuned by workgroup size and
   the best result is reported."  The tuner emulates that protocol: each
   (kernel, workload, device) cell is evaluated at every candidate
   work-group size and the fastest configuration is reported. *)

(* The power-of-two ladder the paper sweeps, extended downwards so small
   launches still have admissible candidates. *)
let ladder = [ 8; 16; 32; 64; 128; 256 ]

(* Candidate work-group sizes for a launch of [points] work-items: the
   ladder clipped to sizes no larger than the launch itself, so a
   degenerate room does not sweep groups that could never fill — a
   256-wide group over a 60-point boundary is all tail.  Never empty:
   the smallest rung survives even when the launch is smaller still. *)
let candidate_sizes ~points =
  let p = int_of_float (Float.max 1. (Float.ceil points)) in
  match List.filter (fun ls -> ls <= p) ladder with
  | [] -> [ List.hd ladder ]
  | sizes -> sizes

type result = {
  best_size : int;
  best_time_s : float;
  sweep : (int * float) list;  (* all candidates, in candidate order *)
}

let tune ~(device : Vgpu.Device.t) (kernel : Kernel_ast.Cast.kernel)
    (w : Vgpu.Perf_model.workload) : result =
  let sweep =
    List.map
      (fun ls ->
        (ls, Vgpu.Perf_model.predict device kernel { w with Vgpu.Perf_model.local_size = ls }))
      (candidate_sizes ~points:w.Vgpu.Perf_model.active_points)
  in
  let best_size, best_time_s =
    List.fold_left
      (fun (bs, bt) (ls, t) -> if t < bt then (ls, t) else (bs, bt))
      (List.hd sweep) (List.tl sweep)
  in
  { best_size; best_time_s; sweep }

(* The tuned time: what the paper reports per cell. *)
let tuned_time ~device kernel w = (tune ~device kernel w).best_time_s
