(** Measured rewrite-space autotuner.

    Searches the full configuration space the runtime exposes — volume
    kernel form (flat, 2.5D tile, {!Lift.Explore} rewrite variant) x
    optimizer unroll budget x work-group size x shard count x overlap
    schedule x temporal block depth — by {e measurement}, with the performance model (corrected
    by persisted calibration factors) pruning the space first.  The
    winning plan is persisted in {!Plan_cache}, so a warm rerun — or
    [racs simulate --tuned] — selects it with zero measurements.

    The paper hand-tunes each benchmark (§VI); this automates the
    protocol, and the measured re-ranking is what catches the model's
    mispredictions (BENCH_PR7: predicted 0.97x for the tiled kernel,
    measured 1.6-2x). *)

type engine = [ `Interp | `Jit | `Jit_parallel of int | `Native ]

(** One measured candidate. *)
type measured = {
  m_plan : Plan_cache.plan;
  m_predicted_s : float;  (** calibrated model time per step *)
  m_measured_s : float;  (** measured median time per step *)
  m_identical : bool;
      (** final field bit-identical to the default plan's — a diverging
          candidate is reported but can never win *)
}

type result = {
  r_key : Plan_cache.key;
  r_entry : Plan_cache.entry;  (** the winning plan and its numbers *)
  r_evaluated : measured list;
      (** every measured candidate, in evaluation order; empty on a
          cache hit *)
  r_candidates : int;  (** plans enumerated before model pruning *)
  r_measurements : int;  (** candidates measured — [0] means warm cache *)
  r_from_cache : bool;
}

val tune :
  ?engine:engine ->
  ?precision:Kernel_ast.Cast.precision ->
  ?device:Vgpu.Device.t ->
  ?n_branches:int ->
  ?topk:int ->
  ?warmup:int ->
  ?repeats:int ->
  ?steps:int ->
  ?max_shards:int ->
  ?domains:int ->
  ?clock:(unit -> float) ->
  ?use_cache:bool ->
  ?explore_depth:int ->
  ?tiles:(int * int) list ->
  ?tblocks:int list ->
  scheme:string ->
  shape:Acoustics.Geometry.shape ->
  dims:Acoustics.Geometry.dims ->
  unit ->
  result
(** Tune one workload.  [scheme] is [fi | fi-mm | fd-mm].  Defaults:
    [`Native] engine on {!Vgpu.Device.host}, [topk = 8] survivors of the
    model pruning, [warmup = 2] untimed steps, the median of [repeats =
    5] intervals of [steps = 20] steps each, shard counts up to
    [max_shards = 2], sequential measurement ([domains = 1] — pass more
    to fan candidates out over OCaml domains), plan cache and
    calibration persistence on ([use_cache]), rewrite exploration depth
    [2] ([0] disables variant candidates), temporal block depths
    [tblocks] (default {!default_tblocks}) searched on sharded plans.

    [clock] injects a timer (tests use a fake one — the search is then
    fully deterministic, including tie-breaks: {!List.stable_sort} and
    first-wins measured ranking).  The injected clock also drives the
    runtimes' per-launch timing via {!Vgpu.Runtime.set_clock}, restored
    on exit.

    @raise Invalid_argument on an unknown scheme. *)

val key :
  engine:engine ->
  precision:Kernel_ast.Cast.precision ->
  n_branches:int ->
  scheme:string ->
  shape:Acoustics.Geometry.shape ->
  dims:Acoustics.Geometry.dims ->
  Plan_cache.key
(** The cache key [tune] uses: workload coordinates plus a digest of
    every candidate kernel's code, so a codegen change invalidates
    persisted plans. *)

val plan_kernels :
  precision:Kernel_ast.Cast.precision ->
  n_branches:int ->
  scheme:string ->
  Plan_cache.plan ->
  Kernel_ast.Cast.kernel list
(** The kernel sequence a plan executes per step (volume form according
    to the plan, then the scheme's boundary kernel) — what
    [racs simulate --tuned] feeds to {!Acoustics.Gpu_sim.step}. *)

val plan_label : Plan_cache.plan -> string
(** Human-readable one-liner, e.g.
    ["tile8x8 ls=64 unroll=default shards=2/overlap"]. *)

val engine_label : engine -> string
val precision_label : Kernel_ast.Cast.precision -> string

val default_unrolls : int option list
val default_tiles : (int * int) list

val default_tblocks : int list
(** Temporal block depths searched on sharded plans: [[1; 2; 4]]. *)

val enumerate :
  device:Vgpu.Device.t ->
  precision:Kernel_ast.Cast.precision ->
  shape:Acoustics.Geometry.shape ->
  dims:Acoustics.Geometry.dims ->
  max_shards:int ->
  explore_depth:int ->
  tiles:(int * int) list ->
  ?tblocks:int list ->
  unit ->
  Plan_cache.plan list
(** The full candidate space before model pruning (exposed for tests and
    the bench report).  Tiles are clipped to the room's XY extent and a
    256-lane group bound; each volume form's work-group size comes from
    {!Tuner}'s model sweep over NDRange-admissible sizes. *)
