(** On-disk best-plan cache for the autotuner.

    One line-oriented text file per tuning key under {!cache_dir},
    installed atomically (process-unique temp file + rename, the same
    discipline as the native backend's binary cache), so concurrent
    tuners never expose a torn entry.  Corrupt or truncated entries
    parse to a miss and are overwritten by the next {!store} — never
    trusted, never fatal.

    The directory also persists the {!Vgpu.Perf_model.Calibration}
    correction table. *)

type schedule = [ `Seq | `Concurrent | `Overlap ]

(** An execution plan: every knob the autotuner searches. *)
type plan = {
  pl_tile : (int * int) option;
      (** 2.5D work-group tile of the volume kernel; [None] = flat *)
  pl_variant : string list;
      (** {!Lift.Explore} rewrite trace of the volume program; [[]] =
          baseline.  Replayable by name via {!Lift.Explore.replay}. *)
  pl_local : int;  (** work-group size (model-level for flat kernels) *)
  pl_unroll : int option;  (** optimizer unroll-budget override *)
  pl_shards : int;  (** Z-slab shard count (1 = single device) *)
  pl_schedule : schedule;
  pl_tblock : int;
      (** temporal block depth T: depth-T ghost zones, one halo-exchange
          round per T steps; 1 = the per-step cadence *)
}

val default_plan : plan
(** Flat volume kernel, baseline program, one device, sequential
    schedule, default optimizer budget — the plan [racs simulate] runs
    with no flags. *)

type key = {
  k_scheme : string;  (** fi | fi-mm | fd-mm *)
  k_shape : string;
  k_dims : int * int * int;
  k_precision : string;
  k_device : string;
  k_engine : string;
  k_digest : string;
      (** digest of the candidate kernel code — a kernel change
          invalidates cached plans *)
}

type entry = {
  e_plan : plan;
  e_predicted_s : float;  (** model per-step time of the winning plan *)
  e_measured_s : float;  (** measured median per-step time of the winner *)
  e_default_s : float;  (** measured median per-step time of the default *)
  e_samples : int;  (** measurement repeats behind the medians *)
}

val find : key -> entry option
(** Look the key up on disk.  Corrupt, torn, missing or key-mismatched
    entries all return [None] (counted as a miss). *)

val store : key -> entry -> unit
(** Atomically install the entry (temp file + rename), creating the
    cache directory as needed. *)

val cache_dir : unit -> string
(** Resolution order: {!set_cache_dir} override, [RACS_PLAN_DIR],
    [$XDG_CACHE_HOME/racs/plans], [$HOME/.cache/racs/plans], then the
    system temp directory. *)

val set_cache_dir : string -> unit
(** Process-wide override, for tests and hermetic runs. *)

val counters : unit -> int * int * int
(** [(hits, misses, stores)] since start or {!reset_counters} — the
    warm-cache CI assertion reads these. *)

val reset_counters : unit -> unit

val save_calibration : Vgpu.Perf_model.Calibration.t -> unit
(** Atomically persist the correction table into {!cache_dir}. *)

val load_calibration : unit -> Vgpu.Perf_model.Calibration.t
(** Load the persisted correction table; an absent or corrupt file
    yields an empty table. *)

val key_digest : key -> string
(** The hex digest naming the entry file — stable across runs. *)
