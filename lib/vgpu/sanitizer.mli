(** Shadow-memory sanitizer: checked execution mode for the reference
    interpreter.

    Dynamically verifies the properties {!module:Kernel_ast.Check}
    cannot prove statically — chiefly the indirect [next\[bidx\[i\]\]]
    boundary scatters.  Per buffer cell it shadows the launch epoch and
    work-item of the last store, and reports:

    - {b write-write races}: two distinct work-items storing the same
      cell within one launch;
    - {b out-of-bounds} loads and stores (the access is suppressed so
      the run survives to collect the full picture);
    - {b reads of never-written cells}: neither host-initialised, copied
      into, nor stored by a kernel.

    One sanitizer instance follows one device's buffers; shadows are
    keyed on the physical identity of the underlying arrays, so the
    runtime's re-wrapping of arrays into fresh [Buffer.t] values is
    invisible to it. *)

type t

type kind =
  | Write_race of (int * int * int)  (** the earlier writer *)
  | Oob_store
  | Oob_load
  | Read_uninit
  | Local_race of (int * int * int)
      (** two work-items of one group stored the same [__local] slot in
          the same barrier phase (the earlier writer is carried) *)
  | Local_read_hazard of (int * int * int)
      (** a work-item read a [__local] slot another work-item stored in
          the current phase — no barrier orders the store before the
          read (the writer is carried) *)
  | Local_uninit
      (** read of a [__local] slot no work-item of the group has stored *)
  | Barrier_divergence
      (** work-items of one group disagreed on reaching a barrier *)

type violation = {
  v_kernel : string;
  v_buf : string;
  v_idx : int;
  v_gid : int * int * int;
  v_kind : kind;
}

type counts = {
  n_races : int;
  n_oob : int;
  n_uninit : int;
  n_local : int;  (** local-memory hazards (races, missing barriers, unwritten reads) *)
  n_barrier : int;  (** barrier-divergence events *)
}

val no_violations : counts
val add_counts : counts -> counts -> counts
val total : counts -> int

val create : ?max_kept:int -> unit -> t
(** [max_kept] caps the retained {!violations} list (default 64);
    {!counts} always reflects every violation. *)

(** {2 Lifecycle notifications (called by the runtime)} *)

val note_host_write : t -> Buffer.t -> unit
(** The host initialised (or re-initialised) the whole buffer. *)

val note_alloc : t -> Buffer.t -> unit
(** A fresh device allocation: contents are undefined until written. *)

val note_blit : t -> Buffer.t -> off:int -> len:int -> unit
(** [len] cells starting at [off] of the destination buffer received
    defined data (device-to-device copy / halo exchange). *)

val begin_launch : t -> kernel:string -> unit
(** Start a new launch epoch: stores from different work-items of {e
    this} launch to one cell are races; overwrites across launches are
    not. *)

val set_gid : t -> int * int * int -> unit
(** Attribute subsequent accesses to this work-item (wired to
    [Exec.launch ~on_workitem]). *)

val hook : t -> Exec.access_hook
(** The access hook to pass to [Exec.launch ~hook]. *)

val launch :
  t -> Kernel_ast.Cast.kernel -> args:Args.t list -> global:int list -> unit
(** Convenience: [begin_launch] + [Exec.launch] with this sanitizer's
    hook and work-item attribution installed.  For grouped kernels the
    group/barrier notifications are wired too: [__local] arrays are
    shadowed per group with barrier-phase tracking, and a barrier
    divergence is recorded as a violation instead of aborting the
    caller. *)

(** {2 Results} *)

val counts : t -> counts
val violations : t -> violation list
(** In detection order, capped at [max_kept]. *)

val access_extents : t -> (string * (int * int) option * (int * int) option) list
(** Per global-buffer argument name (sorted), the inclusive [(min, max)]
    linear-index interval of observed loads and of observed stores,
    accumulated across every launch this sanitizer has followed; [None]
    when no access of that direction occurred.  Out-of-bounds attempts
    are included — a sound static footprint ({!Kernel_ast.Footprint})
    must cover them too — which makes this the dynamic ground truth the
    footprint property tests compare against. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_counts : Format.formatter -> counts -> unit

val pp : Format.formatter -> t -> unit
(** Full report: summary line plus each retained violation. *)
