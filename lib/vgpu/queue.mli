(** Asynchronous per-device command queues with explicit events.

    A {!t} is an in-order command queue draining on its own OCaml
    domain — the shape of an OpenCL per-device command queue.  Commands
    carry explicit {!event} dependencies, so cross-queue ordering is
    exactly the signal→wait edges plus per-queue FIFO order.

    Timing is virtual: each queue advances a nanosecond clock by every
    command's duration (measured wall time, or a modeled [c_vcost] for
    priced commands such as halo exchanges), and a command starts no
    earlier than the [ready_at] stamps of its waits.  A process-wide
    execution lock serialises command bodies so measured durations are
    clean; results depend only on the event order, which is unchanged.
    The overlapped cost of a schedule is the critical path —
    [max over queues of vclock] — versus the sequential sum. *)

type event = {
  ev_id : int;
  mutable fired : bool;
  mutable ready_at : float;  (** virtual ns when the signaling command retired *)
  em : Mutex.t;
  ecv : Condition.t;
}

type cmd = {
  c_label : string;
  c_waits : event list;  (** must all have fired before the command starts *)
  c_signal : event option;  (** fired when the command retires, error or not *)
  c_vcost : float option;  (** virtual ns; [None] = measured wall time *)
  c_run : unit -> unit;
}

type stats = {
  q_vclock : float;  (** virtual ns at which the queue's last command retired *)
  q_vspan_ns : float;  (** vclock advance since the last {!reset_stats} *)
  q_busy_ns : float;  (** sum of command durations since reset *)
  q_enqueued : int;  (** commands accepted since reset *)
  q_depth_hw : int;  (** high-water mark of simultaneously pending commands *)
}

type t

val fresh_event : unit -> event
(** A new unfired event with a process-unique [ev_id]. *)

val create : unit -> t
(** Spawn a queue with its own worker domain. *)

val enqueue : t -> cmd -> unit
(** Append a command; returns immediately.  Waits must reference only
    events created by earlier submissions (the dependence graph is then
    acyclic by construction).  After a command fails, later commands on
    the same queue are skipped but still advance the clock and fire
    their events, so no cross-queue waiter deadlocks; the first failure
    is re-raised by {!finish}.
    @raise Invalid_argument on a queue that was shut down. *)

val finish : t -> unit
(** Block until the queue is empty; re-raise the first command failure
    recorded since the previous [finish], if any. *)

val vclock : t -> float
(** Current virtual clock (ns).  Monotonic; measure intervals as deltas. *)

val align : t -> at:float -> unit
(** Advance the virtual clock to [at] (never backwards).  Lets a caller
    owning several queues re-align their timelines before a measurement
    interval, so cross-queue skew left by earlier work doesn't distort
    the critical path.  Only meaningful on a drained queue. *)

val stats : t -> stats
val reset_stats : t -> unit
(** Reset counters; the virtual clock keeps running. *)

val shutdown : t -> unit
(** Stop the worker after the queued commands drain and join its domain. *)

(** {2 Process-wide registry}

    Queues are shared by device index across every {!Multi} instance in
    the process — domains are heavyweight and capped — grown on demand
    and shut down from [at_exit]. *)

val global : int -> t
(** The shared queue for device index [i], spawning up to [i+1] queues. *)

val global_opt : int -> t option
(** The shared queue for device [i] if one was ever spawned; never
    spawns (safe for stats queries). *)

val shutdown_all : unit -> unit
