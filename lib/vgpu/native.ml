(* Native compiled backend: the third engine next to [Exec] and [Jit].

   A kernel is rendered to portable C ([Kernel_ast.Native_c]), compiled
   by the system C compiler into a shared object, dlopened, and
   launched through a C trampoline (native_stubs.c) that passes OCaml
   buffers to the compiled entry.  The compiler flags pin IEEE
   semantics ([-fno-fast-math -ffp-contract=off]) so results are
   bit-identical to the interpreter and the JIT.

   Shared objects are kept in a content-addressed on-disk cache keyed
   by a digest of the generated C source plus the compiler command
   line: the source string is a faithful function of (kernel AST x
   precision), and optimization changes the AST hence the source, so
   the digest covers everything the binary depends on.  Installs are
   atomic (compile to a temp name, rename into place) so concurrent
   processes never observe a half-written object; a cache entry that
   fails to dlopen is treated as corrupt and recompiled over.

   Within a process, compilations are memoized by the same digest
   under a mutex — a multi-device runtime compiles each distinct
   kernel once, every other device reuses the loaded handle. *)

open Kernel_ast

external dl_open : string -> nativeint = "racs_native_dlopen"
external dl_sym : nativeint -> string -> nativeint = "racs_native_dlsym"
external dl_close : nativeint -> unit = "racs_native_dlclose"

let _ = dl_close (* handles live for the process; kept for completeness *)

(* Layout must match racs_native_launch in native_stubs.c. *)
type packet = {
  pk_fn : nativeint;
  pk_fb : float array array;
  pk_ib : int array array;
  pk_isc : int array;
  pk_fsc : float array;
  pk_gsz : int array;
}

external launch_packet : packet -> unit = "racs_native_launch"

(* {2 Toolchain configuration} *)

let cc () = match Sys.getenv_opt "RACS_CC" with Some c when c <> "" -> c | _ -> "cc"

(* -fno-fast-math -ffp-contract=off: no FMA contraction or reassociation,
   keeping every double operation individually rounded like the OCaml
   engines; -fwrapv: OCaml-style wraparound on the (unreachable in
   generated kernels) signed-overflow paths. *)
let default_flags = "-O2 -fPIC -shared -fno-fast-math -ffp-contract=off -fwrapv"

let flags () =
  match Sys.getenv_opt "RACS_CFLAGS" with Some f when f <> "" -> f | _ -> default_flags

(* {2 Cache directory} *)

let mkdirs dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let cache_dir_ref = ref None

let cache_dir () =
  match !cache_dir_ref with
  | Some d -> d
  | None ->
      let d =
        match Sys.getenv_opt "RACS_CACHE_DIR" with
        | Some d when d <> "" -> d
        | _ -> (
            match Sys.getenv_opt "XDG_CACHE_HOME" with
            | Some x when x <> "" -> Filename.concat x "racs/native"
            | _ -> (
                match Sys.getenv_opt "HOME" with
                | Some h when h <> "" -> Filename.concat h ".cache/racs/native"
                | _ -> Filename.concat (Filename.get_temp_dir_name ()) "racs-native"))
      in
      mkdirs d;
      cache_dir_ref := Some d;
      d

let set_cache_dir d =
  mkdirs d;
  cache_dir_ref := Some d

(* {2 Counters}

   Atomics: compilations can happen on async-queue worker domains. *)

type counters = {
  c_compiles : int;  (** cc actually ran *)
  c_disk_hits : int;  (** shared object found on disk and loaded *)
  c_memo_hits : int;  (** in-process memo hit, no disk access *)
}

let n_compiles = Atomic.make 0
let n_disk_hits = Atomic.make 0
let n_memo_hits = Atomic.make 0

let counters () =
  {
    c_compiles = Atomic.get n_compiles;
    c_disk_hits = Atomic.get n_disk_hits;
    c_memo_hits = Atomic.get n_memo_hits;
  }

let reset_counters () =
  Atomic.set n_compiles 0;
  Atomic.set n_disk_hits 0;
  Atomic.set n_memo_hits 0

(* {2 Compilation} *)

type compiled = {
  kernel : Cast.kernel;
  bindings : Native_c.binding list;
  written : bool list;  (** per param: is it in [Native_c.written_params]? *)
  noalias : bool;  (** source rendered with [restrict] qualifiers *)
  n_fb : int;
  n_ib : int;
  n_isc : int;
  n_fsc : int;
  fn : nativeint;
  key : string;
  so_path : string;
}

let source ?noalias k = Native_c.kernel_source ?noalias k

let key_of_source src = Digest.to_hex (Digest.string (String.concat "\x00" [ "racs-native-v1"; cc (); flags (); src ]))

(* Key of the binary a kernel would compile to under the current
   toolchain configuration (exposed so tests can check that different
   optimization outcomes produce different cache entries). *)
let cache_key (k : Cast.kernel) = key_of_source (source k)

let run_cc ~src_path ~out_path =
  let err_path = out_path ^ ".err" in
  let cmd =
    Printf.sprintf "%s %s %s -o %s -lm 2> %s" (cc ()) (flags ()) (Filename.quote src_path)
      (Filename.quote out_path) (Filename.quote err_path)
  in
  let rc = Sys.command cmd in
  let err =
    if Sys.file_exists err_path then (
      let ic = open_in_bin err_path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      (try Sys.remove err_path with Sys_error _ -> ());
      s)
    else ""
  in
  if rc <> 0 then
    failwith (Printf.sprintf "native: C compilation failed (%s, exit %d)\n%s" (cc ()) rc err)

let write_file path contents =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Unix.rename tmp path

(* A cached object is trusted only if it starts with a shared-object
   magic number (ELF, or Mach-O on macOS).  This matters beyond being a
   cheap sanity check: dlopen dedupes already-loaded libraries by
   device/inode, so handing it a clobbered-in-place entry whose inode is
   still mapped would *succeed* with a stale handle instead of failing —
   the magic check catches corruption before dlopen ever sees it. *)
let looks_like_shared_object path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      let magic = really_input_string ic (min 4 (in_channel_length ic)) in
      close_in ic;
      String.length magic = 4
      && (String.equal magic "\x7fELF"
         || String.equal magic "\xcf\xfa\xed\xfe"
         || String.equal magic "\xfe\xed\xfa\xcf")

(* Compile [src] (or reuse the cached object) and return the loaded
   shared object's path and handle. *)
let compile_source ~key src =
  let dir = cache_dir () in
  let so_path = Filename.concat dir (key ^ ".so") in
  let c_path = Filename.concat dir (key ^ ".c") in
  let build () =
    write_file c_path src;
    let tmp_so = Printf.sprintf "%s.%d.tmp" so_path (Unix.getpid ()) in
    run_cc ~src_path:c_path ~out_path:tmp_so;
    Unix.rename tmp_so so_path;
    Atomic.incr n_compiles;
    dl_open so_path
  in
  if Sys.file_exists so_path && looks_like_shared_object so_path then (
    match dl_open so_path with
    | h ->
        Atomic.incr n_disk_hits;
        (so_path, h)
    | exception Failure _ ->
        (* corrupt or truncated entry: rebuild over it *)
        (so_path, build ()))
  else (so_path, build ())

(* In-process memo: digest -> compiled, shared across runtimes and
   domains. *)
let memo : (string, compiled) Hashtbl.t = Hashtbl.create 16
let memo_mutex = Mutex.create ()

let reset_memo () =
  Mutex.lock memo_mutex;
  Hashtbl.reset memo;
  Mutex.unlock memo_mutex

let count_bindings bs =
  List.fold_left
    (fun (f, i, is, rs) b ->
      match (b : Native_c.binding) with
      | Arg_fbuf _ -> (f + 1, i, is, rs)
      | Arg_ibuf _ -> (f, i + 1, is, rs)
      | Arg_iscalar _ -> (f, i, is + 1, rs)
      | Arg_rscalar _ -> (f, i, is, rs + 1))
    (0, 0, 0, 0) bs

let compile ?(noalias = true) (k : Cast.kernel) : compiled =
  let src = source ~noalias k in
  let key = key_of_source src in
  Mutex.lock memo_mutex;
  match Hashtbl.find_opt memo key with
  | Some c ->
      Atomic.incr n_memo_hits;
      Mutex.unlock memo_mutex;
      c
  | None ->
      (* hold the lock through the compile: concurrent domains asking
         for the same kernel must not race cc on the same cache entry *)
      let result =
        try
          let so_path, handle = compile_source ~key src in
          let fn = dl_sym handle Native_c.entry_symbol in
          let bindings = Native_c.bindings k in
          let written_names = Native_c.written_params k in
          let written = List.map (fun p -> List.mem p.Cast.p_name written_names) k.params in
          let n_fb, n_ib, n_isc, n_fsc = count_bindings bindings in
          let c =
            { kernel = k; bindings; written; noalias; n_fb; n_ib; n_isc; n_fsc; fn; key; so_path }
          in
          Hashtbl.replace memo key c;
          Ok c
        with e -> Error e
      in
      Mutex.unlock memo_mutex;
      (match result with Ok c -> c | Error e -> raise e)

(* {2 Launch} *)

(* The generated C marks buffer parameters [restrict], which is licensed
   only when no written buffer (per [Native_c.written_params]) is bound
   to the same array as any other buffer parameter.  Read-only buffers
   may alias each other freely — C99 restrict only constrains objects
   that are modified. *)
let alias_hazard (c : compiled) (args : Args.t list) =
  let bufs =
    List.fold_left2
      (fun acc w (a : Args.t) ->
        match a with
        | Buf (Buffer.F arr) -> (`F arr, w) :: acc
        | Buf (Buffer.I arr) -> (`I arr, w) :: acc
        | _ -> acc)
      [] c.written args
  in
  let same a b =
    match (a, b) with `F x, `F y -> x == y | `I x, `I y -> x == y | _ -> false
  in
  let rec go = function
    | [] -> false
    | (a, w) :: rest -> List.exists (fun (b, w') -> same a b && (w || w')) rest || go rest
  in
  go bufs

let launch (c : compiled) ~(args : Args.t list) ~(global : int list) =
  if List.length args <> List.length c.kernel.params then
    invalid_arg
      (Printf.sprintf "vgpu native: kernel %s expects %d args, got %d" c.kernel.name
         (List.length c.kernel.params) (List.length args));
  (* an aliased launch would break the restrict promise: dispatch the
     no-restrict rendering of the same kernel instead (its own
     content-addressed cache entry, compiled at most once) *)
  let c = if c.noalias && alias_hazard c args then compile ~noalias:false c.kernel else c in
  let fb = Array.make (max 1 c.n_fb) [||] in
  let ib = Array.make (max 1 c.n_ib) [||] in
  let isc = Array.make (max 1 c.n_isc) 0 in
  let fsc = Array.make (max 1 c.n_fsc) 0. in
  (* same scalar coercions as [Jit.bind] *)
  List.iter2
    (fun (b : Native_c.binding) (a : Args.t) ->
      match (b, a) with
      | Arg_fbuf s, Buf (Buffer.F arr) -> fb.(s) <- arr
      | Arg_ibuf s, Buf (Buffer.I arr) -> ib.(s) <- arr
      | Arg_iscalar s, Int_arg v -> isc.(s) <- v
      | Arg_rscalar s, Real_arg v -> fsc.(s) <- v
      | Arg_iscalar s, Real_arg v -> isc.(s) <- int_of_float v
      | Arg_rscalar s, Int_arg v -> fsc.(s) <- float_of_int v
      | _ ->
          invalid_arg
            (Printf.sprintf "vgpu native: kernel %s: argument kind mismatch" c.kernel.name))
    c.bindings args;
  let gsz = [| 1; 1; 1 |] in
  List.iteri (fun d n -> gsz.(d) <- n) global;
  (* the compiled group loops truncate-divide the NDRange, so reject a
     non-dividing launch here like the other engines *)
  if Cast.grouped c.kernel then ignore (Cast.group_counts c.kernel ~global:gsz);
  launch_packet { pk_fn = c.fn; pk_fb = fb; pk_ib = ib; pk_isc = isc; pk_fsc = fsc; pk_gsz = gsz }
