(* Bounded LRU cache keyed by content digest.

   The runtime's per-kernel caches (JIT code, optimizer output, clean
   verification verdicts, native binaries) were previously name-keyed
   unbounded lists scanned by structural equality: colliding names
   degraded every lookup to O(n * |AST|) and entries were never
   evicted.  Here the key is a structural hash computed once per
   kernel value, lookups are O(1), and the cache holds at most
   [capacity] entries with least-recently-used eviction (an O(n) scan
   at eviction time — capacities are small and evictions rare).

   Hit/miss/eviction counters surface in [Runtime.stats]. *)

type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  label : string;
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type counters = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_entries : int;
}

let default_capacity = 128

let create ?(capacity = default_capacity) label =
  if capacity < 1 then invalid_arg "Kcache.create: capacity must be positive";
  {
    label;
    capacity;
    table = Hashtbl.create 16;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let label t = t.label

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1
  | None -> ()

(* [find_or_add t key make]: cached value for [key], calling [make]
   once on a miss.  If [make] raises, nothing is cached and the next
   lookup retries. *)
let find_or_add t key make =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      t.hits <- t.hits + 1;
      touch t e;
      e.value
  | None ->
      t.misses <- t.misses + 1;
      let v = make () in
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let e = { value = v; last_use = 0 } in
      touch t e;
      Hashtbl.replace t.table key e;
      v

let mem t key = Hashtbl.mem t.table key
let length t = Hashtbl.length t.table

let counters t =
  {
    c_hits = t.hits;
    c_misses = t.misses;
    c_evictions = t.evictions;
    c_entries = Hashtbl.length t.table;
  }

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let add_counters a b =
  {
    c_hits = a.c_hits + b.c_hits;
    c_misses = a.c_misses + b.c_misses;
    c_evictions = a.c_evictions + b.c_evictions;
    c_entries = a.c_entries + b.c_entries;
  }

let pp_counters ppf c =
  Fmt.pf ppf "%d hit(s), %d miss(es), %d eviction(s), %d entrie(s)" c.c_hits c.c_misses
    c.c_evictions c.c_entries
