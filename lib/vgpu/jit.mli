(** Closure-compiling JIT for kernel ASTs.

    Plays the role of the OpenCL driver compiler in this reproduction: a
    kernel AST is compiled once into OCaml closures with all name
    resolution done at compile time, then launched many times.
    Cross-validated against {!module:Exec} by the test suite.

    Compilation is type-directed: every expression is classified as int
    or real (C promotion rules) and compiled to an unboxed closure, so
    the hot loop performs no tagging or dispatch.  Single-precision
    kernels round real stores to float32. *)

type compiled = private {
  kernel : Kernel_ast.Cast.kernel;
  bindings : param_binding list;
  n_ibuf : int;
  n_fbuf : int;
  make_rt : unit -> rt;
  body : rt -> unit;
}

and param_binding

and rt
(** Per-launch runtime state (registers, buffer tables, work-item ids). *)

val compile : Kernel_ast.Cast.kernel -> compiled
(** Compile once; launch many times. *)

val launch : compiled -> args:Args.t list -> global:int list -> unit
(** Launch a compiled kernel.  Buffers are shared with the caller
    (stores are visible after the launch); scalars are copied into
    registers.

    @raise Invalid_argument on arity or argument-kind mismatch. *)

(** {2 Partitioned execution}

    Building blocks for parallel NDRange execution (see {!module:Pool}):
    bind the launch arguments once, clone the bound state per domain,
    then run disjoint chunks of one dimension from each clone. *)

val bind : compiled -> args:Args.t list -> global:int list -> rt
(** Resolve launch arguments into a fresh runtime state without
    executing anything.

    @raise Invalid_argument on arity or argument-kind mismatch. *)

val clone_rt : compiled -> rt -> rt
(** A private copy of a bound rt for another domain: scalar registers
    are copied, global buffers stay shared (generated kernels write
    disjoint locations), private arrays are fresh. *)

val run_range : compiled -> rt -> dim:int -> lo:int -> hi:int -> unit
(** Run the kernel body with NDRange dimension [dim] restricted to
    [lo, hi) (half-open); other dimensions run in full. *)
