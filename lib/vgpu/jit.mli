(** Closure-compiling JIT for kernel ASTs.

    Plays the role of the OpenCL driver compiler in this reproduction: a
    kernel AST is compiled once into OCaml closures with all name
    resolution done at compile time, then launched many times.
    Cross-validated against {!module:Exec} by the test suite.

    Compilation is type-directed: every expression is classified as int
    or real (C promotion rules) and compiled to an unboxed closure, so
    the hot loop performs no tagging or dispatch.  Single-precision
    kernels round real stores to float32. *)

type compiled = private {
  kernel : Kernel_ast.Cast.kernel;
  bindings : param_binding list;
  n_ibuf : int;
  n_fbuf : int;
  make_rt : unit -> rt;
  body : rt -> unit;
}

and param_binding

and rt
(** Per-launch runtime state (registers, buffer tables, work-item ids). *)

val compile : Kernel_ast.Cast.kernel -> compiled
(** Compile once; launch many times. *)

val launch : compiled -> args:Args.t list -> global:int list -> unit
(** Launch a compiled kernel.  Buffers are shared with the caller
    (stores are visible after the launch); scalars are copied into
    registers.

    @raise Invalid_argument on arity or argument-kind mismatch. *)

(** {2 Partitioned execution}

    Building blocks for parallel NDRange execution (see {!module:Pool}):
    bind the launch arguments once, clone the bound state per domain,
    then run disjoint chunks of one dimension from each clone. *)

val bind : compiled -> args:Args.t list -> global:int list -> rt
(** Resolve launch arguments into a fresh runtime state without
    executing anything.

    @raise Invalid_argument on arity or argument-kind mismatch. *)

val clone_rt : compiled -> rt -> rt
(** A private copy of a bound rt for another domain: scalar registers
    are copied, global buffers stay shared (generated kernels write
    disjoint locations), private arrays are fresh. *)

val run_range : compiled -> rt -> dim:int -> lo:int -> hi:int -> unit
(** Run the kernel body with NDRange dimension [dim] restricted to
    [lo, hi) (half-open); other dimensions run in full.  Flat kernels
    only — grouped kernels partition over {!run_group_range}. *)

(** {2 Work-group execution}

    Grouped kernels (non-empty [local_size]) run one work-group at a
    time: every work-item is a fiber, barriers suspend it until the
    whole group arrives, and the group resumes in local-id order — the
    same schedule as [Exec].  Work-groups are independent, so parallel
    engines partition the linear group range. *)

val group_count : compiled -> global:int list -> int
(** Number of work-groups in a launch over [global].
    @raise Invalid_argument when the NDRange does not divide by the
    kernel's work-group size. *)

val group_rts : compiled -> rt -> rt array
(** One rt per work-item of a group (lane 0 is the argument), sharing
    global buffers and one set of group-local arrays. *)

val run_group_range : compiled -> rt array -> lo:int -> hi:int -> unit
(** Run work-groups with linear indices [lo, hi) (row-major z/y/x group
    order).  Group-local arrays are re-zeroed per group.
    @raise Failure on barrier divergence within a work-group. *)
