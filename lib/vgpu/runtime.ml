(* Host-side runtime: executes the operation plans produced by the Lift
   host code generator (kernel launches, host<->device transfers).

   Device memory is simulated as unified memory, so a transfer is a
   bookkeeping event (bytes counted for the transfer statistics) rather
   than a copy; kernel launches dispatch to the reference interpreter,
   the JIT, or the domain-parallel JIT, and are timed per kernel for the
   stats report. *)

open Kernel_ast

type arg =
  | A_buf of string
  | A_int of int
  | A_real of float

type op =
  | Alloc of { name : string; ty : Cast.ty; elems : int }
  | Copy_to_gpu of string
  | Copy_to_host of string
  | Launch of { kernel : Cast.kernel; args : arg list; global : int list }
  | Swap of string * string
      (* exchange two buffer bindings: the host-side pointer rotation
         between time steps *)
  | Copy_buffer of { src : string; src_off : int; dst : string; dst_off : int; elems : int }
      (* device-to-device sub-buffer copy (clEnqueueCopyBuffer): the
         halo-exchange primitive of the sharded backend *)

type plan = op list

type engine =
  | Interp
  | Jit
  | Jit_parallel of { domains : int }
  | Native

type kernel_stats = {
  mutable k_launches : int;
  mutable total_s : float;
  mutable min_s : float;
  mutable max_s : float;
  mutable arg_bytes : int;  (* buffer bytes bound across launches *)
  mutable k_opt : Opt.report option;  (* optimizer report, when it ran *)
}

(* Signature of a launch for the verification cache: the static verdict
   depends only on the kernel, the NDRange and the resolved arguments
   through their values (scalars) and extents (buffers). *)
type launch_sig = {
  sig_global : int list;
  sig_args : [ `B of int | `I of int | `R ] list;
}

exception Unsafe_kernel of Check.report

let () =
  Printexc.register_printer (function
    | Unsafe_kernel r -> Some (Fmt.str "Unsafe_kernel:@.%a" Check.pp_report r)
    | _ -> None)

type t = {
  buffers : (string, Buffer.t) Hashtbl.t;
  jit_cache : Jit.compiled Kcache.t;  (* structural digest -> JIT code *)
  opt_cache : (Cast.kernel * Opt.report) Kcache.t;
      (* raw-kernel digest -> optimized kernel + report *)
  check_cache : unit Kcache.t;
      (* (kernel, launch signature) digests already proven race/bounds-clean *)
  native_cache : Native.compiled Kcache.t;
      (* structural digest -> loaded native binary (backed by the
         process-wide memo and the on-disk binary cache in [Native]) *)
  mutable digest_memo : (Cast.kernel * string) list;
      (* physical-equality memo of structural digests: launches reuse
         the same kernel value every step, so the Marshal+MD5 runs once
         per distinct value, not once per launch *)
  kstats : (string, kernel_stats) Hashtbl.t;
  engine : engine;
  optimize : bool;  (* run the Opt pipeline on kernels before dispatch *)
  unroll_budget : int option;  (* Opt unroll gate override (autotuner knob) *)
  precision : Cast.precision;  (* element width of real transfers *)
  verify : bool;  (* fail-fast static check of every dispatched kernel *)
  sanitizer : Sanitizer.t option;  (* shadow-memory checked execution *)
  mutable launches : int;
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable d2d_bytes : int;  (* device-to-device copies: halo exchanges *)
}

(* Wall-clock source for per-launch timing.  Swappable so the autotuner
   tests can inject a deterministic fake timer; everything that reads
   launch durations (kernel stats, measured tuning) sees the same
   clock. *)
let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f
let reset_clock () = clock := Unix.gettimeofday
let now () = !clock ()

let verify_from_env () =
  match Sys.getenv_opt "RACS_VERIFY" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let create ?(engine = Jit) ?(optimize = true) ?unroll_budget
    ?(precision = Cast.Double) ?verify ?(sanitize = false) ?cache_capacity () =
  {
    buffers = Hashtbl.create 16;
    jit_cache = Kcache.create ?capacity:cache_capacity "jit";
    opt_cache = Kcache.create ?capacity:cache_capacity "opt";
    check_cache = Kcache.create ?capacity:cache_capacity "check";
    native_cache = Kcache.create ?capacity:cache_capacity "native";
    digest_memo = [];
    kstats = Hashtbl.create 8;
    engine;
    optimize;
    unroll_budget;
    precision;
    verify = (match verify with Some v -> v | None -> verify_from_env ());
    sanitizer = (if sanitize then Some (Sanitizer.create ()) else None);
    launches = 0;
    h2d_bytes = 0;
    d2h_bytes = 0;
    d2d_bytes = 0;
  }

let sanitizer t = t.sanitizer

let bind t name buf =
  Hashtbl.replace t.buffers name buf;
  match t.sanitizer with Some s -> Sanitizer.note_host_write s buf | None -> ()

let buffer t name =
  match Hashtbl.find_opt t.buffers name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "vgpu runtime: unknown buffer %s" name)

let buffer_opt t name = Hashtbl.find_opt t.buffers name

let resolve_arg t = function
  | A_buf name -> Args.Buf (buffer t name)
  | A_int i -> Args.Int_arg i
  | A_real r -> Args.Real_arg r

let real_bytes = function Cast.Single -> 4 | Cast.Double -> 8

let transfer_bytes ~precision buf =
  match buf with
  | Buffer.F a -> real_bytes precision * Array.length a
  | Buffer.I a -> 4 * Array.length a

(* Bytes moved by a sub-buffer copy of [elems] elements, at the runtime's
   transfer precision. *)
let slice_bytes ~precision buf elems =
  match buf with
  | Buffer.F _ -> real_bytes precision * elems
  | Buffer.I _ -> 4 * elems

(* Raw sub-buffer copy between two device buffers; the element types must
   agree, as they would for clEnqueueCopyBuffer. *)
let blit_buffers ~(src : Buffer.t) ~src_off ~(dst : Buffer.t) ~dst_off ~elems =
  match (src, dst) with
  | Buffer.F a, Buffer.F b -> Array.blit a src_off b dst_off elems
  | Buffer.I a, Buffer.I b -> Array.blit a src_off b dst_off elems
  | _ -> failwith "vgpu runtime: buffer copy between int and real buffers"

let account_d2d t bytes = t.d2d_bytes <- t.d2d_bytes + bytes

let ty_label = function Cast.Int -> "int" | Cast.Real -> "real"

(* Structural digest of a kernel, memoized by physical equality: the
   simulation relaunches the same kernel values step after step, so the
   Marshal+MD5 runs once per distinct value.  The memo is a short
   assq list, truncated so adversarial kernel streams cannot grow it. *)
let max_digest_memo = 32

let kernel_digest t (kernel : Cast.kernel) =
  match List.assq_opt kernel t.digest_memo with
  | Some d -> d
  | None ->
      let d = Digest.to_hex (Digest.string (Marshal.to_string kernel [])) in
      let memo = t.digest_memo in
      let memo =
        if List.length memo >= max_digest_memo then List.filteri (fun i _ -> i < max_digest_memo - 1) memo
        else memo
      in
      t.digest_memo <- (kernel, d) :: memo;
      d

(* Find (or compile and cache) the JIT code for [kernel], keyed by
   structural digest: kernels sharing a name never collide, lookups
   stay O(1), and the LRU bound caps memory under unbounded kernel
   streams. *)
let jit_compiled t (kernel : Cast.kernel) =
  Kcache.find_or_add t.jit_cache (kernel_digest t kernel) (fun () -> Jit.compile kernel)

(* Find (or load/compile and cache) the native binary for [kernel]. *)
let native_compiled t (kernel : Cast.kernel) =
  Kcache.find_or_add t.native_cache (kernel_digest t kernel) (fun () ->
      Native.compile kernel)

(* Find (or run and cache) the optimizer output for [kernel], keyed like
   the JIT cache so each distinct raw kernel is optimized exactly once. *)
let optimized t (kernel : Cast.kernel) =
  Kcache.find_or_add t.opt_cache (kernel_digest t kernel) (fun () ->
      Opt.optimize ?unroll_budget:t.unroll_budget kernel)

(* Fail-fast static verification of a launch: race/bounds-check the
   kernel exactly as dispatched (post-optimizer, resolved arguments).
   Clean verdicts are cached by (kernel, NDRange, argument signature);
   an [Unsafe] verdict aborts the launch. *)
let verify_launch t (kernel : Cast.kernel) ~(args : Args.t list) ~global =
  let lsig =
    {
      sig_global = global;
      sig_args =
        List.map
          (function
            | Args.Buf b -> `B (Buffer.length b)
            | Args.Int_arg i -> `I i
            | Args.Real_arg _ -> `R)
          args;
    }
  in
  let key = kernel_digest t kernel ^ Digest.to_hex (Digest.string (Marshal.to_string lsig [])) in
  Kcache.find_or_add t.check_cache key (fun () ->
      let assoc =
        try List.combine kernel.params args with Invalid_argument _ -> []
      in
      let param_value name =
        List.find_map
          (fun ((p : Cast.param), a) ->
            match a with
            | Args.Int_arg i when p.p_name = name -> Some i
            | _ -> None)
          assoc
      in
      let buffer_elems name =
        List.find_map
          (fun ((p : Cast.param), a) ->
            match a with
            | Args.Buf b when p.p_name = name -> Some (Buffer.length b)
            | _ -> None)
          assoc
      in
      let env = Check.env ~param_value ~buffer_elems ~global () in
      let report = Check.check env kernel in
      if not (Check.ok report) then raise (Unsafe_kernel report))

let kstat t name =
  match Hashtbl.find_opt t.kstats name with
  | Some s -> s
  | None ->
      let s =
        {
          k_launches = 0;
          total_s = 0.;
          min_s = infinity;
          max_s = 0.;
          arg_bytes = 0;
          k_opt = None;
        }
      in
      Hashtbl.replace t.kstats name s;
      s

(* Dispatch a launch whose arguments are already resolved to buffers and
   scalars.  This is the whole Launch arm of [run_op] minus the name
   lookup: the async queue layer ([Multi.submit_async]) resolves names
   at submission time — the clSetKernelArg moment — so worker domains
   never touch the buffer table and host-side rebinding between steps
   cannot race a queued launch. *)
let launch_resolved t kernel ~(args : Args.t list) ~global =
  t.launches <- t.launches + 1;
  let kernel, report =
    if t.optimize then
      let opt, report = optimized t kernel in
      (opt, Some report)
    else (kernel, None)
  in
  let bytes =
    List.fold_left
      (fun acc -> function
        | Args.Buf b -> acc + transfer_bytes ~precision:kernel.Cast.precision b
        | Args.Int_arg _ | Args.Real_arg _ -> acc)
      0 args
  in
  if t.verify then verify_launch t kernel ~args ~global;
  let t0 = now () in
  (match t.sanitizer with
  | Some s ->
      (* checked execution needs the interpreter's access hooks, so the
         sanitizer overrides the configured engine *)
      Sanitizer.launch s kernel ~args ~global
  | None -> (
      match t.engine with
      | Interp -> Exec.launch kernel ~args ~global
      | Jit -> Jit.launch (jit_compiled t kernel) ~args ~global
      | Jit_parallel { domains } ->
          Pool.launch ~domains (jit_compiled t kernel) ~args ~global
      | Native -> Native.launch (native_compiled t kernel) ~args ~global));
  let dt = now () -. t0 in
  let s = kstat t kernel.Cast.name in
  (match report with Some _ -> s.k_opt <- report | None -> ());
  s.k_launches <- s.k_launches + 1;
  s.total_s <- s.total_s +. dt;
  s.min_s <- Float.min s.min_s dt;
  s.max_s <- Float.max s.max_s dt;
  s.arg_bytes <- s.arg_bytes + bytes

let run_op t = function
  | Swap (a, b) ->
      let ba = buffer t a and bb = buffer t b in
      bind t a bb;
      bind t b ba
  | Alloc { name; ty; elems } -> (
      match Hashtbl.find_opt t.buffers name with
      | None ->
          let b = Buffer.create ty elems in
          Hashtbl.replace t.buffers name b;
          (* fresh device memory: contents undefined until written *)
          (match t.sanitizer with Some s -> Sanitizer.note_alloc s b | None -> ())
      | Some b ->
          (* Reusing a binding is the normal pattern across time steps,
             but only if it matches the plan's allocation exactly —
             anything else masks a plan bug. *)
          if Buffer.ty b <> ty || Buffer.length b <> elems then
            failwith
              (Printf.sprintf
                 "vgpu runtime: alloc %s: bound buffer is %d %s elements, plan wants %d %s"
                 name (Buffer.length b)
                 (ty_label (Buffer.ty b))
                 elems (ty_label ty)))
  | Copy_buffer { src; src_off; dst; dst_off; elems } ->
      let sb = buffer t src and db = buffer t dst in
      blit_buffers ~src:sb ~src_off ~dst:db ~dst_off ~elems;
      (match t.sanitizer with
      | Some s -> Sanitizer.note_blit s db ~off:dst_off ~len:elems
      | None -> ());
      account_d2d t (slice_bytes ~precision:t.precision sb elems)
  | Copy_to_gpu name ->
      t.h2d_bytes <- t.h2d_bytes + transfer_bytes ~precision:t.precision (buffer t name)
  | Copy_to_host name ->
      t.d2h_bytes <- t.d2h_bytes + transfer_bytes ~precision:t.precision (buffer t name)
  | Launch { kernel; args; global } ->
      launch_resolved t kernel ~args:(List.map (resolve_arg t) args) ~global

let run t (plan : plan) = List.iter (run_op t) plan

(* -- Launch-level observability ------------------------------------- *)

type stats = {
  s_launches : int;
  s_h2d_bytes : int;
  s_d2h_bytes : int;
  s_d2d_bytes : int;  (* halo-exchange / device-copy bytes *)
  s_violations : Sanitizer.counts option;  (* Some iff sanitizing *)
  s_caches : (string * Kcache.counters) list;
      (* per-cache hit/miss/eviction counters: jit, opt, check, native *)
  per_kernel : (string * kernel_stats) list;  (* sorted by kernel name *)
}

let cache_counters t =
  [
    ("jit", Kcache.counters t.jit_cache);
    ("opt", Kcache.counters t.opt_cache);
    ("check", Kcache.counters t.check_cache);
    ("native", Kcache.counters t.native_cache);
  ]

let stats t =
  let per_kernel =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.kstats []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    s_launches = t.launches;
    s_h2d_bytes = t.h2d_bytes;
    s_d2h_bytes = t.d2h_bytes;
    s_d2d_bytes = t.d2d_bytes;
    s_violations = Option.map Sanitizer.counts t.sanitizer;
    s_caches = cache_counters t;
    per_kernel;
  }

let reset_stats t =
  Hashtbl.reset t.kstats;
  Kcache.reset_counters t.jit_cache;
  Kcache.reset_counters t.opt_cache;
  Kcache.reset_counters t.check_cache;
  Kcache.reset_counters t.native_cache;
  t.launches <- 0;
  t.h2d_bytes <- 0;
  t.d2h_bytes <- 0;
  t.d2d_bytes <- 0

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "launches %d, h2d %d B, d2h %d B, d2d %d B@." s.s_launches s.s_h2d_bytes
    s.s_d2h_bytes s.s_d2d_bytes;
  (match s.s_violations with
  | Some c -> Fmt.pf ppf "sanitizer: %d violation(s) (%a)@." (Sanitizer.total c) Sanitizer.pp_counts c
  | None -> ());
  List.iter
    (fun (label, c) ->
      if c.Kcache.c_hits + c.Kcache.c_misses + c.Kcache.c_evictions + c.Kcache.c_entries > 0
      then Fmt.pf ppf "cache %-6s %a@." label Kcache.pp_counters c)
    s.s_caches;
  Fmt.pf ppf "%-28s %8s %10s %10s %10s %10s %12s@." "kernel" "launches" "total ms"
    "min ms" "mean ms" "max ms" "MB bound";
  List.iter
    (fun (name, k) ->
      let mean = if k.k_launches = 0 then 0. else k.total_s /. float_of_int k.k_launches in
      Fmt.pf ppf "%-28s %8d %10.3f %10.3f %10.3f %10.3f %12.2f@." name k.k_launches
        (k.total_s *. 1e3)
        ((if k.min_s = infinity then 0. else k.min_s) *. 1e3)
        (mean *. 1e3) (k.max_s *. 1e3)
        (float_of_int k.arg_bytes /. 1e6))
    s.per_kernel;
  List.iter
    (fun (name, k) ->
      match k.k_opt with
      | None -> ()
      | Some r -> Fmt.pf ppf "%-28s opt: %a@." name Opt.pp_report r)
    s.per_kernel
