(* Multi-device virtual GPU.

   A [Multi.t] is an array of independent [Runtime.t] devices — each with
   its own buffer table, JIT cache and launch statistics — plus one extra
   plan primitive, [Exchange], that moves a sub-buffer slice from one
   device's buffer to another's.  That is the halo-exchange step of the
   Z-sharded acoustics backend: every other op addresses exactly one
   device, so a multi-device plan is a single-device plan tagged with
   device indices, interleaved with exchanges.

   Exchange bytes are accounted once, on the *source* device, at its
   transfer precision — the same convention a real driver would use for
   a peer-to-peer copy — and surface as [Runtime.stats.s_d2d_bytes] both
   per device and in the aggregate view. *)

type t = { devices : Runtime.t array }

let create ?(engine = Runtime.Jit) ?(optimize = true) ?(precision = Kernel_ast.Cast.Double)
    ?verify ?(sanitize = false) ~devices () =
  if devices < 1 then invalid_arg "Vgpu.Multi.create: need at least one device";
  {
    devices =
      Array.init devices (fun _ ->
          Runtime.create ~engine ~optimize ~precision ?verify ~sanitize ());
  }

let n_devices t = Array.length t.devices

let device t i =
  if i < 0 || i >= Array.length t.devices then
    invalid_arg (Printf.sprintf "Vgpu.Multi.device: no device %d" i);
  t.devices.(i)

let bind t i name buf = Runtime.bind (device t i) name buf

type op =
  | Dev of int * Runtime.op
  | Exchange of {
      src_dev : int;
      src : string;
      src_off : int;
      dst_dev : int;
      dst : string;
      dst_off : int;
      elems : int;
    }

type plan = op list

let run_op t = function
  | Dev (i, op) -> Runtime.run_op (device t i) op
  | Exchange { src_dev; src; src_off; dst_dev; dst; dst_off; elems } ->
      let sdev = device t src_dev and ddev = device t dst_dev in
      let sb = Runtime.buffer sdev src and db = Runtime.buffer ddev dst in
      Runtime.blit_buffers ~src:sb ~src_off ~dst:db ~dst_off ~elems;
      (* the destination device's sanitizer sees the halo cells as
         defined once the exchange lands *)
      (match Runtime.sanitizer ddev with
      | Some s -> Sanitizer.note_blit s db ~off:dst_off ~len:elems
      | None -> ());
      Runtime.account_d2d sdev (Runtime.slice_bytes ~precision:sdev.Runtime.precision sb elems)

let run t (plan : plan) = List.iter (run_op t) plan

(* -- Aggregated observability --------------------------------------- *)

let per_device_stats t =
  Array.to_list (Array.mapi (fun i d -> (i, Runtime.stats d)) t.devices)

(* Merge the per-device stats into one [Runtime.stats]: counters and
   bytes sum; per-kernel entries sharing a name merge (min of mins, max
   of maxes). *)
let stats t : Runtime.stats =
  let merged : (string, Runtime.kernel_stats) Hashtbl.t = Hashtbl.create 8 in
  let launches = ref 0 and h2d = ref 0 and d2h = ref 0 and d2d = ref 0 in
  let violations = ref None in
  Array.iter
    (fun d ->
      let s = Runtime.stats d in
      launches := !launches + s.Runtime.s_launches;
      h2d := !h2d + s.Runtime.s_h2d_bytes;
      d2h := !d2h + s.Runtime.s_d2h_bytes;
      d2d := !d2d + s.Runtime.s_d2d_bytes;
      (match (s.Runtime.s_violations, !violations) with
      | Some c, Some acc -> violations := Some (Sanitizer.add_counts acc c)
      | Some c, None -> violations := Some c
      | None, _ -> ());
      List.iter
        (fun (name, (k : Runtime.kernel_stats)) ->
          match Hashtbl.find_opt merged name with
          | None ->
              Hashtbl.replace merged name
                {
                  Runtime.k_launches = k.Runtime.k_launches;
                  total_s = k.Runtime.total_s;
                  min_s = k.Runtime.min_s;
                  max_s = k.Runtime.max_s;
                  arg_bytes = k.Runtime.arg_bytes;
                  k_opt = k.Runtime.k_opt;
                }
          | Some m ->
              m.Runtime.k_launches <- m.Runtime.k_launches + k.Runtime.k_launches;
              m.Runtime.total_s <- m.Runtime.total_s +. k.Runtime.total_s;
              m.Runtime.min_s <- Float.min m.Runtime.min_s k.Runtime.min_s;
              m.Runtime.max_s <- Float.max m.Runtime.max_s k.Runtime.max_s;
              m.Runtime.arg_bytes <- m.Runtime.arg_bytes + k.Runtime.arg_bytes;
              (* every device optimizes the same kernel: keep the first *)
              if m.Runtime.k_opt = None then m.Runtime.k_opt <- k.Runtime.k_opt)
        s.Runtime.per_kernel)
    t.devices;
  let per_kernel =
    Hashtbl.fold (fun name k acc -> (name, k) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    Runtime.s_launches = !launches;
    s_h2d_bytes = !h2d;
    s_d2h_bytes = !d2h;
    s_d2d_bytes = !d2d;
    s_violations = !violations;
    per_kernel;
  }

let reset_stats t = Array.iter Runtime.reset_stats t.devices

let pp_stats ppf t =
  let n = n_devices t in
  Fmt.pf ppf "aggregate over %d device(s): %a" n Runtime.pp_stats (stats t);
  if n > 1 then
    Array.iteri
      (fun i d -> Fmt.pf ppf "@.device %d: %a" i Runtime.pp_stats (Runtime.stats d))
      t.devices
