(* Multi-device virtual GPU.

   A [Multi.t] is an array of independent [Runtime.t] devices — each with
   its own buffer table, JIT cache and launch statistics — plus one extra
   plan primitive, [Exchange], that moves a sub-buffer slice from one
   device's buffer to another's.  That is the halo-exchange step of the
   Z-sharded acoustics backend: every other op addresses exactly one
   device, so a multi-device plan is a single-device plan tagged with
   device indices, interleaved with exchanges.

   Exchange bytes are accounted once, on the *source* device, at its
   transfer precision — the same convention a real driver would use for
   a peer-to-peer copy — and surface as [Runtime.stats.s_d2d_bytes] both
   per device and in the aggregate view. *)

type t = { devices : Runtime.t array }

let create ?(engine = Runtime.Jit) ?(optimize = true) ?unroll_budget
    ?(precision = Kernel_ast.Cast.Double) ?verify ?(sanitize = false) ~devices () =
  if devices < 1 then invalid_arg "Vgpu.Multi.create: need at least one device";
  {
    devices =
      Array.init devices (fun _ ->
          Runtime.create ~engine ~optimize ?unroll_budget ~precision ?verify
            ~sanitize ());
  }

let n_devices t = Array.length t.devices

let device t i =
  if i < 0 || i >= Array.length t.devices then
    invalid_arg (Printf.sprintf "Vgpu.Multi.device: no device %d" i);
  t.devices.(i)

let bind t i name buf = Runtime.bind (device t i) name buf

type op =
  | Dev of int * Runtime.op
  | Exchange of {
      src_dev : int;
      src : string;
      src_off : int;
      dst_dev : int;
      dst : string;
      dst_off : int;
      elems : int;
    }

type plan = op list

let run_op t = function
  | Dev (i, op) -> Runtime.run_op (device t i) op
  | Exchange { src_dev; src; src_off; dst_dev; dst; dst_off; elems } ->
      let sdev = device t src_dev and ddev = device t dst_dev in
      let sb = Runtime.buffer sdev src and db = Runtime.buffer ddev dst in
      Runtime.blit_buffers ~src:sb ~src_off ~dst:db ~dst_off ~elems;
      (* the destination device's sanitizer sees the halo cells as
         defined once the exchange lands *)
      (match Runtime.sanitizer ddev with
      | Some s -> Sanitizer.note_blit s db ~off:dst_off ~len:elems
      | None -> ());
      Runtime.account_d2d sdev (Runtime.slice_bytes ~precision:sdev.Runtime.precision sb elems)

let run t (plan : plan) = List.iter (run_op t) plan

(* -- Asynchronous execution ------------------------------------------ *)

(* An async plan is a plan whose ops carry explicit event dependencies:
   integer event ids chosen by the builder, turned into [Queue.event]
   objects at submission.  An op runs on its device's queue ([Exchange]
   on the *source* device's queue, where a driver would enqueue the
   peer-to-peer copy), so per-queue FIFO order plus the signal→wait
   edges is the complete happens-before relation. *)

type async_op = {
  a_op : op;
  a_waits : int list;  (* event ids that must fire before the op runs *)
  a_signal : int option;  (* event id fired when the op retires *)
}

type async_plan = async_op list

let default_link_gb_s = 12.

(* A plan op compiled for deferred execution: device names resolved to
   buffers *now* (the clSetKernelArg moment), so worker domains never
   read a buffer table and host-side rebinding between steps cannot
   race a queued op.  Host-only ops — [Alloc], [Swap] — execute during
   compilation, in submission order, and produce no command. *)
type ccmd = {
  cc_queue : int;
  cc_label : string;
  cc_waits : int list;
  cc_signal : int option;
  cc_vcost : float option;  (* virtual ns; None = measured wall time *)
  cc_run : unit -> unit;
}

let compile_async t ~link_gb_s (plan : async_plan) : ccmd list =
  List.filter_map
    (fun { a_op; a_waits; a_signal } ->
      let cmd cc_queue cc_label cc_vcost cc_run =
        Some { cc_queue; cc_label; cc_waits = a_waits; cc_signal = a_signal; cc_vcost; cc_run }
      in
      match a_op with
      | Dev (i, ((Runtime.Alloc _ | Runtime.Swap _) as op)) ->
          (* host-side bookkeeping: runs at submission *)
          Runtime.run_op (device t i) op;
          None
      | Dev (i, Runtime.Launch { kernel; args; global }) ->
          let d = device t i in
          let rargs = List.map (Runtime.resolve_arg d) args in
          cmd i kernel.Kernel_ast.Cast.name None (fun () ->
              Runtime.launch_resolved d kernel ~args:rargs ~global)
      | Dev (i, Runtime.Copy_to_gpu name) ->
          let d = device t i in
          let b = Runtime.buffer d name in
          let bytes = Runtime.slice_bytes ~precision:d.Runtime.precision b (Buffer.length b) in
          cmd i ("h2d " ^ name) None (fun () ->
              d.Runtime.h2d_bytes <- d.Runtime.h2d_bytes + bytes)
      | Dev (i, Runtime.Copy_to_host name) ->
          let d = device t i in
          let b = Runtime.buffer d name in
          let bytes = Runtime.slice_bytes ~precision:d.Runtime.precision b (Buffer.length b) in
          cmd i ("d2h " ^ name) None (fun () ->
              d.Runtime.d2h_bytes <- d.Runtime.d2h_bytes + bytes)
      | Dev (i, Runtime.Copy_buffer { src; src_off; dst; dst_off; elems }) ->
          let d = device t i in
          let sb = Runtime.buffer d src and db = Runtime.buffer d dst in
          cmd i ("copy " ^ src ^ "->" ^ dst) None (fun () ->
              Runtime.blit_buffers ~src:sb ~src_off ~dst:db ~dst_off ~elems;
              (match Runtime.sanitizer d with
              | Some s -> Sanitizer.note_blit s db ~off:dst_off ~len:elems
              | None -> ());
              Runtime.account_d2d d
                (Runtime.slice_bytes ~precision:d.Runtime.precision sb elems))
      | Exchange { src_dev; src; src_off; dst_dev; dst; dst_off; elems } ->
          let sdev = device t src_dev and ddev = device t dst_dev in
          let sb = Runtime.buffer sdev src and db = Runtime.buffer ddev dst in
          let bytes = Runtime.slice_bytes ~precision:sdev.Runtime.precision sb elems in
          (* priced, not measured: a memcpy's wall time on the host says
             nothing about a PCIe/NVLink transfer, so the queue advances
             its virtual clock by bytes / link bandwidth instead *)
          let vcost = float_of_int bytes /. link_gb_s in
          cmd src_dev
            (Printf.sprintf "exchange d%d->d%d" src_dev dst_dev)
            (Some vcost)
            (fun () ->
              Runtime.blit_buffers ~src:sb ~src_off ~dst:db ~dst_off ~elems;
              (match Runtime.sanitizer ddev with
              | Some s -> Sanitizer.note_blit s db ~off:dst_off ~len:elems
              | None -> ());
              Runtime.account_d2d sdev bytes))
    plan

let sanitizing t = Array.exists (fun d -> Runtime.sanitizer d <> None) t.devices

(* Submit an async plan to the per-device queues and return the events
   it signals, keyed by plan event id, for import into a later
   submission (cross-step dependencies under pipelining). *)
let submit_async ?(imports : (int * Queue.event) list = []) ?(link_gb_s = default_link_gb_s) t
    (plan : async_plan) : (int * Queue.event) list =
  if sanitizing t then
    invalid_arg
      "Vgpu.Multi.submit_async: sanitizers need deterministic scheduling — use run_async_with";
  let events : (int, Queue.event) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (id, ev) -> Hashtbl.replace events id ev) imports;
  let exports = ref [] in
  List.iter
    (fun (c : ccmd) ->
      let waits =
        List.map
          (fun id ->
            match Hashtbl.find_opt events id with
            | Some ev -> ev
            | None ->
                failwith
                  (Printf.sprintf
                     "Vgpu.Multi.submit_async: wait on event %d that is neither imported nor \
                      signaled earlier in the plan"
                     id))
          c.cc_waits
      in
      let signal =
        Option.map
          (fun id ->
            if Hashtbl.mem events id then
              failwith (Printf.sprintf "Vgpu.Multi.submit_async: event %d signaled twice" id);
            let ev = Queue.fresh_event () in
            Hashtbl.replace events id ev;
            exports := (id, ev) :: !exports;
            ev)
          c.cc_signal
      in
      Queue.enqueue (Queue.global c.cc_queue)
        {
          Queue.c_label = c.cc_label;
          c_waits = waits;
          c_signal = signal;
          c_vcost = c.cc_vcost;
          c_run = c.cc_run;
        })
    (compile_async t ~link_gb_s plan);
  List.rev !exports

(* Drain every device queue; re-raise the first failure after all have
   drained (buffers are never left mid-plan by an early exit). *)
let finish_async t =
  let errs =
    List.filter_map
      (fun i ->
        match Queue.global_opt i with
        | None -> None
        | Some q -> ( try Queue.finish q; None with e -> Some e))
      (List.init (n_devices t) Fun.id)
  in
  match errs with [] -> () | e :: _ -> raise e

let run_async ?imports ?link_gb_s t plan =
  let exports = submit_async ?imports ?link_gb_s t plan in
  finish_async t;
  exports

(* Critical path of everything retired so far: the maximum virtual
   clock across this instance's device queues (ns, monotonic — measure
   intervals as deltas). *)
let async_vclock t =
  List.fold_left
    (fun acc i ->
      match Queue.global_opt i with Some q -> Float.max acc (Queue.vclock q) | None -> acc)
    0.
    (List.init (n_devices t) Fun.id)

(* Deterministic single-threaded replay of an async plan: the same
   compile step as [submit_async] (so buffer resolution is identical),
   but commands run on the calling domain in an order chosen by [pick]
   among the ready queue heads.  Any [pick] yields a legal queue
   interleaving — the qcheck harness for the bit-identity invariant —
   and sanitizers are allowed because nothing runs concurrently.
   [imports] lists event ids assumed already fired. *)
let run_async_with ?(imports : int list = []) ?(pick = fun _ -> 0) t (plan : async_plan) =
  let cmds = compile_async t ~link_gb_s:default_link_gb_s plan in
  let queue_ids =
    List.fold_left (fun acc c -> if List.mem c.cc_queue acc then acc else c.cc_queue :: acc) [] cmds
    |> List.rev
  in
  let fifos =
    List.map (fun q -> (q, ref (List.filter (fun c -> c.cc_queue = q) cmds))) queue_ids
  in
  let fired : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace fired id ()) imports;
  let step = ref 0 in
  let rec loop () =
    let live = List.filter (fun (_, r) -> !r <> []) fifos in
    if live <> [] then begin
      let ready =
        List.filter
          (fun (_, r) ->
            match !r with
            | c :: _ -> List.for_all (Hashtbl.mem fired) c.cc_waits
            | [] -> false)
          live
      in
      (match ready with
      | [] ->
          failwith
            (Printf.sprintf
               "Vgpu.Multi.run_async_with: deadlock — %d queue(s) blocked on events that never \
                fire (first blocked op: %s)"
               (List.length live)
               (match !(snd (List.hd live)) with c :: _ -> c.cc_label | [] -> "?"))
      | _ ->
          let n = List.length ready in
          let k = (((pick !step) mod n) + n) mod n in
          incr step;
          let _, r = List.nth ready k in
          let c = List.hd !r in
          r := List.tl !r;
          c.cc_run ();
          Option.iter (fun id -> Hashtbl.replace fired id ()) c.cc_signal);
      loop ()
    end
  in
  loop ()

(* -- Aggregated observability --------------------------------------- *)

let per_device_stats t =
  Array.to_list (Array.mapi (fun i d -> (i, Runtime.stats d)) t.devices)

(* Merge the per-device stats into one [Runtime.stats]: counters and
   bytes sum; per-kernel entries sharing a name merge (min of mins, max
   of maxes). *)
let stats t : Runtime.stats =
  let merged : (string, Runtime.kernel_stats) Hashtbl.t = Hashtbl.create 8 in
  let launches = ref 0 and h2d = ref 0 and d2h = ref 0 and d2d = ref 0 in
  let violations = ref None in
  let caches = ref [] in
  (* sum per-cache counters across devices, label by label; every device
     reports the same labels in the same order, so the first device's
     list is the template *)
  let merge_caches per_device =
    if !caches = [] then caches := per_device
    else
      caches :=
        List.map
          (fun (label, acc) ->
            match List.assoc_opt label per_device with
            | Some c -> (label, Kcache.add_counters acc c)
            | None -> (label, acc))
          !caches
  in
  Array.iter
    (fun d ->
      let s = Runtime.stats d in
      launches := !launches + s.Runtime.s_launches;
      h2d := !h2d + s.Runtime.s_h2d_bytes;
      d2h := !d2h + s.Runtime.s_d2h_bytes;
      d2d := !d2d + s.Runtime.s_d2d_bytes;
      (match (s.Runtime.s_violations, !violations) with
      | Some c, Some acc -> violations := Some (Sanitizer.add_counts acc c)
      | Some c, None -> violations := Some c
      | None, _ -> ());
      merge_caches s.Runtime.s_caches;
      List.iter
        (fun (name, (k : Runtime.kernel_stats)) ->
          match Hashtbl.find_opt merged name with
          | None ->
              Hashtbl.replace merged name
                {
                  Runtime.k_launches = k.Runtime.k_launches;
                  total_s = k.Runtime.total_s;
                  min_s = k.Runtime.min_s;
                  max_s = k.Runtime.max_s;
                  arg_bytes = k.Runtime.arg_bytes;
                  k_opt = k.Runtime.k_opt;
                }
          | Some m ->
              m.Runtime.k_launches <- m.Runtime.k_launches + k.Runtime.k_launches;
              m.Runtime.total_s <- m.Runtime.total_s +. k.Runtime.total_s;
              m.Runtime.min_s <- Float.min m.Runtime.min_s k.Runtime.min_s;
              m.Runtime.max_s <- Float.max m.Runtime.max_s k.Runtime.max_s;
              m.Runtime.arg_bytes <- m.Runtime.arg_bytes + k.Runtime.arg_bytes;
              (* every device optimizes the same kernel: keep the first *)
              if m.Runtime.k_opt = None then m.Runtime.k_opt <- k.Runtime.k_opt)
        s.Runtime.per_kernel)
    t.devices;
  let per_kernel =
    Hashtbl.fold (fun name k acc -> (name, k) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    Runtime.s_launches = !launches;
    s_h2d_bytes = !h2d;
    s_d2h_bytes = !d2h;
    s_d2d_bytes = !d2d;
    s_violations = !violations;
    s_caches = !caches;
    per_kernel;
  }

(* Per-queue counters for this instance's device indices — only queues
   that were actually spawned (an all-sequential run reports none). *)
let queue_stats t =
  List.filter_map
    (fun i -> Option.map (fun q -> (i, Queue.stats q)) (Queue.global_opt i))
    (List.init (n_devices t) Fun.id)

type overlap_stats = {
  o_busy_ns : float;  (* sum of command durations across queues *)
  o_span_ns : float;  (* critical path: max per-queue vclock span *)
  o_saved_ns : float;  (* busy - span: time hidden by overlap *)
  o_queues : (int * Queue.stats) list;
}

let overlap_stats t =
  let qs = queue_stats t in
  let busy = List.fold_left (fun a (_, s) -> a +. s.Queue.q_busy_ns) 0. qs in
  let span = List.fold_left (fun a (_, s) -> Float.max a s.Queue.q_vspan_ns) 0. qs in
  { o_busy_ns = busy; o_span_ns = span; o_saved_ns = Float.max 0. (busy -. span); o_queues = qs }

let reset_stats t =
  Array.iter Runtime.reset_stats t.devices;
  (* re-align the queues' virtual clocks before resetting, so the next
     measurement interval starts with a level timeline — cross-queue skew
     left by earlier work would otherwise hide or inflate the critical
     path (caller is expected to have drained: see [finish_async]) *)
  let qs =
    List.filter_map (fun i -> Queue.global_opt i) (List.init (n_devices t) Fun.id)
  in
  let horizon = List.fold_left (fun a q -> Float.max a (Queue.vclock q)) 0. qs in
  List.iter
    (fun q ->
      Queue.align q ~at:horizon;
      Queue.reset_stats q)
    qs

let pp_stats ppf t =
  let n = n_devices t in
  Fmt.pf ppf "aggregate over %d device(s): %a" n Runtime.pp_stats (stats t);
  if n > 1 then
    Array.iteri
      (fun i d -> Fmt.pf ppf "@.device %d: %a" i Runtime.pp_stats (Runtime.stats d))
      t.devices;
  let o = overlap_stats t in
  if List.exists (fun (_, s) -> s.Queue.q_enqueued > 0) o.o_queues then begin
    Fmt.pf ppf "@.async queues: busy %.3f ms, critical path %.3f ms, overlap saved %.3f ms@."
      (o.o_busy_ns /. 1e6) (o.o_span_ns /. 1e6) (o.o_saved_ns /. 1e6);
    List.iter
      (fun (i, s) ->
        Fmt.pf ppf "queue %d: %d cmd(s), depth high-water %d, busy %.3f ms@." i
          s.Queue.q_enqueued s.Queue.q_depth_hw (s.Queue.q_busy_ns /. 1e6))
      o.o_queues
  end
