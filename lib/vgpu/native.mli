(** Native compiled backend: kernels rendered to C
    ({!Kernel_ast.Native_c}), compiled by the system C compiler into
    shared objects, dlopened and launched in-process.  Compiler flags
    pin IEEE double semantics, so launches are bit-identical to the
    reference interpreter and the JIT.

    Binaries live in a content-addressed on-disk cache (digest of the
    generated C source + compiler command line), installed atomically;
    corrupt entries are recompiled over.  In-process, compilations are
    memoized by the same digest across runtimes and domains. *)

type compiled

val compile : ?noalias:bool -> Kernel_ast.Cast.kernel -> compiled
(** Render, then load from the memo, the disk cache, or a fresh [cc]
    run, in that order.  [noalias] (default true) renders buffer
    parameters [restrict], proven per launch — see {!launch}.
    @raise Failure if the C compiler is unavailable or rejects the
    generated source (the compiler's stderr is included). *)

val launch : compiled -> args:Args.t list -> global:int list -> unit
(** Run the full NDRange ([global] padded to 3 dimensions with 1s).
    Scalar arguments coerce like [Jit.bind]: a real argument to an int
    parameter truncates, an int argument to a real parameter widens.

    When the compiled object carries [restrict] qualifiers, the launch
    first checks the binding for aliasing hazards: a buffer in
    {!Kernel_ast.Native_c.written_params} bound to the same array as any
    other buffer parameter.  A hazardous launch transparently dispatches
    a [~noalias:false] compilation of the same kernel (its own cache
    entry) so the restrict promise is never broken; alias-free launches
    — every launch the simulation runtimes issue — keep the qualified
    fast path.
    @raise Invalid_argument on an argument count or kind mismatch. *)

val source : ?noalias:bool -> Kernel_ast.Cast.kernel -> string
(** The C translation unit [compile] builds (for inspection/tests). *)

val cache_key : Kernel_ast.Cast.kernel -> string
(** Content digest keying the on-disk entry for this kernel under the
    current toolchain configuration. *)

val cache_dir : unit -> string
(** Resolve (and create) the binary cache directory: [RACS_CACHE_DIR],
    else [$XDG_CACHE_HOME/racs/native], else [$HOME/.cache/racs/native],
    else a temp-dir fallback. *)

val set_cache_dir : string -> unit
(** Override the cache directory (tests point this at a scratch dir). *)

val cc : unit -> string
(** C compiler command ([RACS_CC], default [cc]). *)

val flags : unit -> string
(** Compiler flags ([RACS_CFLAGS], default pins IEEE semantics:
    [-O2 -fPIC -shared -fno-fast-math -ffp-contract=off -fwrapv]). *)

type counters = {
  c_compiles : int;  (** cc actually ran *)
  c_disk_hits : int;  (** shared object found on disk and loaded *)
  c_memo_hits : int;  (** in-process memo hit, no disk access *)
}

val counters : unit -> counters
(** Process-wide counters (atomic: compilations may happen on async
    worker domains). *)

val reset_counters : unit -> unit

val reset_memo : unit -> unit
(** Drop the in-process memo so the next {!compile} exercises the disk
    cache (tests use this to observe cold/warm behaviour). *)
