(** Persistent OCaml 5 domain pool for parallel NDRange execution.

    The iteration space of a compiled kernel is partitioned along its
    outermost used dimension into one contiguous chunk per domain; each
    domain runs the kernel body with its own {!Jit.rt} (private
    registers and scratch arrays), sharing only the global buffers.
    This is bit-for-bit equivalent to sequential execution because the
    generated kernels write disjoint locations (the invariant documented
    in {!module:Exec}).

    Workers are spawned once, parked between launches, grown on demand
    and joined from [at_exit]. *)

type t

val create : unit -> t
(** An empty pool; workers are spawned on first use. *)

val global : t
(** The shared process-wide pool used by {!Runtime}'s [Jit_parallel]
    engine. *)

val size : t -> int
(** Domains currently available, counting the calling domain. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] executes [f 0 .. f (n-1)] in parallel ([f 0] on the
    calling domain), growing the pool as needed, and waits for all of
    them.  The first exception is re-raised after every task finished. *)

val shutdown : t -> unit
(** Stop and join every worker.  The pool can be reused; workers are
    respawned on demand.  Called on {!global} automatically at exit. *)

val launch :
  ?pool:t -> domains:int -> Jit.compiled -> args:Args.t list -> global:int list -> unit
(** Launch a compiled kernel over [global] work-items on up to [domains]
    domains ([domains <= 1] falls back to {!Jit.launch}).  Buffer
    arguments are mutated in place, exactly as {!Jit.launch}. *)
