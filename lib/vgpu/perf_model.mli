(** Roofline-style analytic timing model for kernels on the paper's
    GPUs.

    Predicted kernel time =
    launch overhead + max(effective traffic / bandwidth, flops / peak).

    Effective traffic is computed per buffer from the static analysis of
    the actual kernel AST:
    - small coefficient tables are cache-resident (free on GCN, an
      L2-bandwidth cost on Kepler — the mechanism behind the paper's
      §VII-B1 beta-in-global-memory observation);
    - indirect (gathered/scattered) accesses are derated by a coalescing
      efficiency computed from the measured contiguity of the boundary
      index array (runs of consecutive boundary voxels);
    - repeated affine loads of the same buffer (stencil neighbourhoods)
      mostly hit cache. *)

type workload = {
  active_points : float;
      (** work-items that execute the guarded fast path *)
  buffer_elems : (string * int) list;
      (** element count per buffer argument (for cache residency) *)
  contiguity : float;
      (** fraction of consecutive work-items hitting consecutive
          addresses, for indirect accesses *)
  param_values : (string * int) list;
      (** scalar parameters that bound loops *)
  local_size : int;
      (** work-group size (the paper hand-tunes this per kernel);
          affects lane utilisation, launch tails and occupancy *)
}

val workload :
  ?buffer_elems:(string * int) list ->
  ?contiguity:float ->
  ?param_values:(string * int) list ->
  ?local_size:int ->
  active_points:float ->
  unit ->
  workload

val group_efficiency : workload -> flops:float -> float
(** Utilisation factor in (0, 1] from the work-group size. *)

type breakdown = {
  bytes_per_point : float;
      (** effective traffic of the optimized AST, which is what the
          runtime dispatches *)
  flops_per_point : float;  (** flops of the optimized AST *)
  local_bytes_per_point : float;
      (** traffic in the on-chip [__local] tier (LDS / shared memory);
          priced at [Device.local_bw_ratio] times DRAM bandwidth, so a
          tiled kernel that stages planes locally prices differently
          from the flat kernel it replaces *)
  raw_bytes_per_point : float;
      (** same traffic measure on the unoptimized AST, for comparison *)
  raw_flops_per_point : float;  (** flops of the unoptimized AST *)
  mem_time_s : float;
  flop_time_s : float;
  local_time_s : float;  (** time under the local-memory roofline arm *)
  launch_s : float;
  total_s : float;
}

val predict_breakdown :
  ?unroll_budget:int -> Device.t -> Kernel_ast.Cast.kernel -> workload -> breakdown
(** Predictions are computed from the kernel as the runtime executes it —
    after the {!module:Kernel_ast.Opt} pipeline — with the raw AST's
    counts exposed alongside in [raw_bytes_per_point] /
    [raw_flops_per_point].  [unroll_budget] mirrors the runtime's
    optimizer knob so a prediction prices the same code the configured
    runtime would dispatch.

    On {!Device.host} (vendor [Host]) the [__local] term is added to the
    memory term instead of forming an independent roofline arm: a CPU
    has no on-chip local tier, so staging traffic contends with the
    stream. *)

val predict : ?unroll_budget:int -> Device.t -> Kernel_ast.Cast.kernel -> workload -> float
(** Predicted runtime of one launch, in seconds. *)

(** Per-(device, kernel) multiplicative corrections learned from
    measurements: the autotuner feeds measured/predicted ratios in via
    {!Calibration.observe} and later predictions are scaled by the
    geometric mean of the observed ratios.  Persisted across runs by
    {!Harness.Plan_cache}. *)
module Calibration : sig
  type t

  val create : unit -> t

  val observe :
    t -> device:string -> kernel_name:string -> predicted_s:float -> measured_s:float -> unit
  (** Record one measurement against its prediction.  Non-positive times
      are ignored. *)

  val factor : t -> device:string -> kernel_name:string -> float
  (** Geometric-mean [measured/predicted] ratio for the pair, [1.0] when
      nothing has been observed. *)

  val set : t -> device:string -> kernel_name:string -> log_sum:float -> samples:int -> unit
  (** Restore a persisted entry verbatim. *)

  val entries : t -> (string * float * int) list
  (** All entries as [("device/kernel", log_sum, samples)], sorted — the
      persistence format's source of truth. *)
end

val predict_calibrated :
  ?unroll_budget:int ->
  ?calibration:Calibration.t ->
  Device.t ->
  Kernel_ast.Cast.kernel ->
  workload ->
  float
(** {!predict} scaled by the calibration factor for
    [(device.name, kernel.name)]; identical to {!predict} when no
    calibration is supplied or the pair has no observations. *)

val updates_per_second : points:float -> time_s:float -> float
(** The paper's throughput metric (§VI). *)

(** {2 Z-sharded execution} *)

val stencil_radius : Kernel_ast.Cast.kernel -> workload -> int
(** Halo radius in planes, inferred from the kernel's static stencil
    footprint ({!Kernel_ast.Footprint}) under the workload's parameter
    environment (needs ["Nx"] and ["Ny"] in [param_values] to form the
    axis strides): the widest inferable per-buffer read radius along the
    highest-stride axis.  A pointwise kernel gets 0; kernels whose reads
    are all data-dependent fall back to the protocol's one plane. *)

val halo_bytes_per_step :
  radius:int ->
  precision:Kernel_ast.Cast.precision ->
  plane_elems:int ->
  shards:int ->
  int
(** Bytes crossing device boundaries per time step when the grid is cut
    into [shards] slabs along Z: each interior cut swaps [radius]
    XY planes of [plane_elems] elements in each direction. *)

val predict_sharded :
  ?link_gb_s:float ->
  ?radius:int ->
  Device.t ->
  Kernel_ast.Cast.kernel ->
  workload ->
  plane_elems:int ->
  shards:int ->
  float
(** Predicted per-step time under Z-sharding: slabs run concurrently
    (each [1/shards] of the points, full launch overhead) plus the halo
    planes crossing the inter-device link ([link_gb_s], default a
    PCIe-3-class 12 GB/s).  [radius] defaults to {!stencil_radius} — the
    halo-byte term comes from the inferred footprint, not a constant. *)

val predict_overlapped :
  ?link_gb_s:float ->
  ?radius:int ->
  Device.t ->
  Kernel_ast.Cast.kernel ->
  workload ->
  plane_elems:int ->
  shards:int ->
  float
(** Predicted per-step time under the overlapped (split
    interior/frontier) schedule: the frontier work — which must wait on
    the previous step's halo exchange — plus the longer of interior
    compute and halo transfer, the critical path of the per-device
    command queues.  Coincides with {!predict} at [shards = 1]; never
    exceeds {!predict_sharded} by more than the second launch
    overhead. *)

val predict_blocked :
  ?link_gb_s:float ->
  ?link_latency_s:float ->
  ?radius:int ->
  ?fused:bool ->
  Device.t ->
  Kernel_ast.Cast.kernel ->
  workload ->
  plane_elems:int ->
  shards:int ->
  tblock:int ->
  float
(** Predicted per-step time under temporal blocking at depth [tblock]:
    one exchange round per block — the per-round latency
    ([link_latency_s], default 10 us per d2d op) amortises to 1/T — of
    depth [T*radius] (plus [T-1]*radius for the previous generation when
    the cadence exchanges it: per-step for T > 2, fused for T > 1),
    against 2*(shards-1)*(T*radius - 1) redundantly recomputed ghost
    planes added to every launch.  [kernel] is the {e per-step} kernel
    in both cases; [fused] only selects the exchange cadence.  At
    [tblock = 1] this coincides with {!predict_sharded} plus the
    round-latency term. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
