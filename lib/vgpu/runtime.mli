(** Host-side runtime: executes the operation plans produced by the Lift
    host code generator (kernel launches, host<->device transfers).

    Device memory is simulated as unified memory, so a transfer is a
    bookkeeping event (bytes counted) rather than a copy; launches
    dispatch to the interpreter, the JIT, or the domain-parallel JIT
    ({!module:Pool}), and are timed per kernel ({!stats}). *)

type arg =
  | A_buf of string  (** resolved against the runtime's buffer table *)
  | A_int of int
  | A_real of float

type op =
  | Alloc of { name : string; ty : Kernel_ast.Cast.ty; elems : int }
  | Copy_to_gpu of string
  | Copy_to_host of string
  | Launch of { kernel : Kernel_ast.Cast.kernel; args : arg list; global : int list }
  | Swap of string * string
      (** exchange two buffer bindings (host pointer rotation between
          time steps) *)
  | Copy_buffer of { src : string; src_off : int; dst : string; dst_off : int; elems : int }
      (** device-to-device sub-buffer copy ([clEnqueueCopyBuffer]): the
          halo-exchange primitive of the sharded backend *)

type plan = op list

type engine =
  | Interp  (** reference interpreter *)
  | Jit  (** closure-compiling JIT, sequential *)
  | Jit_parallel of { domains : int }
      (** JIT with the NDRange partitioned over [domains] OCaml domains
          from {!Pool.global} *)
  | Native
      (** kernels rendered to C ({!module:Kernel_ast.Native_c}),
          compiled with the system C compiler and loaded via [dlopen]
          ({!module:Native}); binaries come from a content-addressed
          on-disk cache *)

type launch_sig = {
  sig_global : int list;
  sig_args : [ `B of int | `I of int | `R ] list;
}
(** Verification-cache key: the static verdict of a launch depends only
    on the kernel, the NDRange, and the arguments through scalar values
    and buffer extents. *)

exception Unsafe_kernel of Kernel_ast.Check.report
(** Raised at dispatch (when verification is on) if
    {!module:Kernel_ast.Check} refutes race-freedom or bounds-safety of
    the kernel as launched; the report carries the concrete witness. *)

type kernel_stats = {
  mutable k_launches : int;
  mutable total_s : float;
  mutable min_s : float;
  mutable max_s : float;
  mutable arg_bytes : int;
      (** bytes of buffer arguments bound across launches, at the
          kernel's precision *)
  mutable k_opt : Kernel_ast.Opt.report option;
      (** report from the {!module:Kernel_ast.Opt} pipeline, when the
          runtime optimized this kernel before dispatch *)
}

type t = {
  buffers : (string, Buffer.t) Hashtbl.t;
  jit_cache : Jit.compiled Kcache.t;
      (** structural digest -> JIT code; bounded, LRU-evicted *)
  opt_cache : (Kernel_ast.Cast.kernel * Kernel_ast.Opt.report) Kcache.t;
      (** raw-kernel digest -> (optimized kernel, report), so each
          distinct raw kernel is optimized once *)
  check_cache : unit Kcache.t;
      (** (kernel, launch signature) digests already statically verified
          clean (no [Unsafe]) *)
  native_cache : Native.compiled Kcache.t;
      (** structural digest -> loaded native binary (backed by the
          process-wide memo and on-disk binary cache in {!module:Native}) *)
  mutable digest_memo : (Kernel_ast.Cast.kernel * string) list;
      (** physical-equality memo of structural kernel digests *)
  kstats : (string, kernel_stats) Hashtbl.t;
  engine : engine;
  optimize : bool;
      (** when set (the default), launched kernels pass through the
          {!module:Kernel_ast.Opt} pipeline before JIT compilation or
          interpretation *)
  unroll_budget : int option;
      (** optimizer unroll-gate override; [None] keeps the default *)
  precision : Kernel_ast.Cast.precision;
      (** element width used for real-buffer transfer accounting *)
  verify : bool;
      (** statically race/bounds-check every dispatched kernel
          ({!module:Kernel_ast.Check}) and raise {!Unsafe_kernel} on a
          refuted one *)
  sanitizer : Sanitizer.t option;
      (** when present, launches run under the shadow-memory sanitizer
          (forcing the reference interpreter regardless of [engine]) *)
  mutable launches : int;
  mutable h2d_bytes : int;
  mutable d2h_bytes : int;
  mutable d2d_bytes : int;  (** device-to-device copies: halo exchanges *)
}

val create :
  ?engine:engine ->
  ?optimize:bool ->
  ?unroll_budget:int ->
  ?precision:Kernel_ast.Cast.precision ->
  ?verify:bool ->
  ?sanitize:bool ->
  ?cache_capacity:int ->
  unit ->
  t
(** [precision] (default [Double]) sets how many bytes a real element
    counts for in the transfer statistics: 4 in single precision, 8 in
    double, matching the paper's traffic model.  [optimize] (default
    [true]) runs the {!module:Kernel_ast.Opt} pass pipeline on each
    distinct kernel before dispatch; the per-kernel report appears in
    {!stats}.  [unroll_budget] overrides the optimizer's unroll gate for
    every kernel this runtime optimizes (the autotuner's knob); the
    default keeps {!Kernel_ast.Opt}'s built-in budget.

    [verify] gates fail-fast static verification of every launch
    (default: on iff the [RACS_VERIFY] environment variable is set to
    [1]/[true]/[yes]/[on]).  [sanitize] (default [false]) runs every
    launch under {!module:Sanitizer} via the reference interpreter,
    overriding [engine]; violation counts appear in {!stats}.
    [cache_capacity] bounds each of the runtime's kernel caches
    (default {!Kcache.default_capacity}). *)

val sanitizer : t -> Sanitizer.t option
(** The runtime's sanitizer, when created with [~sanitize:true]. *)

val bind : t -> string -> Buffer.t -> unit
(** Bind an input buffer by name before running a plan. *)

val buffer : t -> string -> Buffer.t
(** @raise Failure if the name is unbound. *)

val buffer_opt : t -> string -> Buffer.t option

val slice_bytes : precision:Kernel_ast.Cast.precision -> Buffer.t -> int -> int
(** Bytes moved by a sub-buffer copy of [elems] elements of the given
    buffer, at the runtime's transfer precision. *)

val blit_buffers :
  src:Buffer.t -> src_off:int -> dst:Buffer.t -> dst_off:int -> elems:int -> unit
(** Raw sub-buffer copy between two device buffers.
    @raise Failure if the element types disagree. *)

val account_d2d : t -> int -> unit
(** Charge [bytes] to the device-to-device transfer counter (used by
    {!module:Multi} for cross-device exchanges). *)

val resolve_arg : t -> arg -> Args.t
(** Resolve one launch argument against the buffer table now — the
    clSetKernelArg moment.  @raise Failure on an unbound buffer name. *)

val launch_resolved : t -> Kernel_ast.Cast.kernel -> args:Args.t list -> global:int list -> unit
(** Dispatch a launch whose arguments were already resolved with
    {!resolve_arg}.  Used by the async queue layer so worker domains
    never read the buffer table (host-side rebinding between steps can
    then proceed while launches are still queued). *)

val run_op : t -> op -> unit
(** @raise Failure if an [Alloc] reuses a binding whose element count or
    type differs from the plan's allocation. *)

val run : t -> plan -> unit

(** {2 Launch-level observability} *)

type stats = {
  s_launches : int;
  s_h2d_bytes : int;
  s_d2h_bytes : int;
  s_d2d_bytes : int;  (** halo-exchange / device-copy bytes *)
  s_violations : Sanitizer.counts option;
      (** dynamic violation counts; [Some] iff the runtime sanitizes *)
  s_caches : (string * Kcache.counters) list;
      (** per-cache hit/miss/eviction counters, labelled [jit], [opt],
          [check], [native] *)
  per_kernel : (string * kernel_stats) list;  (** sorted by kernel name *)
}

val stats : t -> stats
(** Snapshot of the counters: total launches, transfer bytes, and
    per-kernel launch count / wall time (total, min, mean via total,
    max) / buffer bytes bound. *)

val reset_stats : t -> unit
(** Zero all counters, including the per-cache hit/miss/eviction
    counters; cached entries themselves are kept. *)

val pp_stats : Format.formatter -> stats -> unit

val set_clock : (unit -> float) -> unit
(** Replace the wall-clock source used to time kernel launches
    (process-wide).  The autotuner's determinism tests inject a fake
    timer here; production code never needs it. *)

val reset_clock : unit -> unit
(** Restore {!set_clock} to [Unix.gettimeofday]. *)
