/* C stubs for the native compiled backend.
 *
 * Two concerns live here: a thin dlopen/dlsym/dlclose wrapper (handles
 * travel as nativeint), and the launch trampoline that hands OCaml
 * buffers to a compiled kernel entry.
 *
 * The trampoline performs no OCaml allocation between reading the
 * packet and returning, so the GC cannot run on this domain and no
 * block can move while the kernel holds raw pointers into the heap:
 * float arrays are passed in place (an OCaml float array is a flat
 * double vector), int arrays are untagged into malloc'd int64 scratch
 * and retagged afterwards.  The domain keeps the runtime lock for the
 * whole launch; a concurrent domain requesting a stop-the-world
 * collection simply waits until the kernel returns (launches are the
 * unit of work of the whole simulator, same granularity as a JIT
 * launch).
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>

#include <dlfcn.h>
#include <stdint.h>
#include <stdlib.h>

CAMLprim value racs_native_dlopen(value vpath)
{
  CAMLparam1(vpath);
  void *h;
  (void)dlerror();
  h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *err = dlerror();
    caml_failwith(err != NULL ? err : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

CAMLprim value racs_native_dlsym(value vh, value vname)
{
  CAMLparam2(vh, vname);
  void *fn;
  (void)dlerror();
  fn = dlsym((void *)Nativeint_val(vh), String_val(vname));
  if (fn == NULL) {
    const char *err = dlerror();
    caml_failwith(err != NULL ? err : "dlsym failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)fn));
}

CAMLprim value racs_native_dlclose(value vh)
{
  (void)dlclose((void *)Nativeint_val(vh));
  return Val_unit;
}

/* Must match Native_c.entry_symbol's signature. */
typedef void (*racs_kernel_fn)(double **fb, int64_t **ib,
                               const int64_t *isc, const double *fsc,
                               const int64_t *gsz);

#define RACS_MAX_SLOTS 64

/* value layout of Native.packet — field order is the record's
 * declaration order: fn, fb, ib, isc, fsc, gsz. */
CAMLprim value racs_native_launch(value vpk)
{
  value vfn = Field(vpk, 0);
  value vfb = Field(vpk, 1);
  value vib = Field(vpk, 2);
  value visc = Field(vpk, 3);
  value vfsc = Field(vpk, 4);
  value vgsz = Field(vpk, 5);

  racs_kernel_fn fn = (racs_kernel_fn)Nativeint_val(vfn);

  mlsize_t nfb = Wosize_val(vfb);
  mlsize_t nib = Wosize_val(vib);
  mlsize_t nisc = Wosize_val(visc);
  mlsize_t i, k;

  double *fb[RACS_MAX_SLOTS];
  int64_t *ib[RACS_MAX_SLOTS];
  int64_t isc[RACS_MAX_SLOTS];
  int64_t gsz[3];

  if (nfb > RACS_MAX_SLOTS || nib > RACS_MAX_SLOTS || nisc > RACS_MAX_SLOTS)
    caml_invalid_argument("racs_native_launch: too many kernel parameters");
  if (Wosize_val(vgsz) != 3)
    caml_invalid_argument("racs_native_launch: gsz must have 3 entries");

  for (i = 0; i < nfb; i++)
    fb[i] = (double *)Field(vfb, i); /* float array: flat double vector */

  /* int arrays are tagged; untag into 64-bit scratch */
  int64_t *iscratch[RACS_MAX_SLOTS];
  for (i = 0; i < nib; i++) {
    value arr = Field(vib, i);
    mlsize_t len = Wosize_val(arr);
    int64_t *s = (int64_t *)malloc((len == 0 ? 1 : len) * sizeof(int64_t));
    if (s == NULL) {
      for (k = 0; k < i; k++) free(iscratch[k]);
      caml_failwith("racs_native_launch: out of memory");
    }
    for (k = 0; k < len; k++) s[k] = (int64_t)Long_val(Field(arr, k));
    iscratch[i] = s;
    ib[i] = s;
  }

  for (i = 0; i < nisc; i++) isc[i] = (int64_t)Long_val(Field(visc, i));
  for (i = 0; i < 3; i++) gsz[i] = (int64_t)Long_val(Field(vgsz, i));

  fn(fb, ib, isc, (const double *)vfsc, gsz);

  /* write back int buffers (immediates: no write barrier needed) */
  for (i = 0; i < nib; i++) {
    value arr = Field(vib, i);
    mlsize_t len = Wosize_val(arr);
    for (k = 0; k < len; k++) Field(arr, k) = Val_long((intnat)iscratch[i][k]);
    free(iscratch[i]);
  }

  return Val_unit;
}
