(* Persistent OCaml 5 domain pool for the virtual GPU.

   Parallel NDRange execution in the KernelAbstractions shape: the
   iteration space is partitioned along its outermost dimension into one
   contiguous chunk per domain, and each domain runs the compiled kernel
   body with its own [Jit.rt] instance (private registers and scratch
   arrays), sharing only the global buffers.  That is safe because the
   generated kernels write disjoint locations — the invariant documented
   in [Exec] — so any schedule is observationally equivalent to the
   sequential one, bit for bit.

   Workers are spawned once and parked on a condition variable between
   launches; kernel launches are millisecond-scale, so spawning a domain
   per launch would dominate the runtime.  The pool grows on demand and
   is shut down from at_exit so test binaries terminate cleanly. *)

type worker = {
  mutable dom : unit Domain.t option;
  m : Mutex.t;
  arrive : Condition.t; (* signals a job (or stop) to the worker *)
  finish : Condition.t; (* signals completion to the submitter *)
  mutable job : (unit -> unit) option;
  mutable busy : bool;
  mutable err : exn option;
  mutable stop : bool;
}

type t = {
  mutable workers : worker array;
  grow : Mutex.t; (* guards pool growth and shutdown *)
  use : Mutex.t;  (* serialises scatter/gather launch cycles *)
}

let worker_loop (w : worker) =
  let rec loop () =
    Mutex.lock w.m;
    while w.job = None && not w.stop do
      Condition.wait w.arrive w.m
    done;
    match w.job with
    | None -> Mutex.unlock w.m (* stop requested *)
    | Some f ->
        Mutex.unlock w.m;
        let err = try f (); None with e -> Some e in
        Mutex.lock w.m;
        w.job <- None;
        w.err <- err;
        w.busy <- false;
        Condition.signal w.finish;
        Mutex.unlock w.m;
        loop ()
  in
  loop ()

let spawn_worker () =
  let w =
    {
      dom = None;
      m = Mutex.create ();
      arrive = Condition.create ();
      finish = Condition.create ();
      job = None;
      busy = false;
      err = None;
      stop = false;
    }
  in
  w.dom <- Some (Domain.spawn (fun () -> worker_loop w));
  w

let submit (w : worker) f =
  Mutex.lock w.m;
  w.busy <- true;
  w.err <- None;
  w.job <- Some f;
  Condition.signal w.arrive;
  Mutex.unlock w.m

(* Wait for the worker's current job; return the exception it raised,
   if any. *)
let await (w : worker) =
  Mutex.lock w.m;
  while w.busy do
    Condition.wait w.finish w.m
  done;
  let e = w.err in
  w.err <- None;
  Mutex.unlock w.m;
  e

let create () = { workers = [||]; grow = Mutex.create (); use = Mutex.create () }

let size t = Array.length t.workers + 1 (* the caller is a worker too *)

(* Grow the pool to at least [n] spawned workers. *)
let ensure t n =
  Mutex.lock t.grow;
  let have = Array.length t.workers in
  if have < n then
    t.workers <- Array.append t.workers (Array.init (n - have) (fun _ -> spawn_worker ()));
  Mutex.unlock t.grow

let shutdown t =
  Mutex.lock t.grow;
  let ws = t.workers in
  t.workers <- [||];
  Mutex.unlock t.grow;
  Array.iter
    (fun w ->
      Mutex.lock w.m;
      w.stop <- true;
      Condition.signal w.arrive;
      Mutex.unlock w.m)
    ws;
  Array.iter (fun w -> Option.iter Domain.join w.dom) ws

(* Run [f 0 .. f (n-1)] in parallel, [f 0] on the calling domain, and
   wait for all of them.  Re-raises the first failure after every task
   has completed, so buffers are never left mid-write by an early exit. *)
let run t ~n f =
  if n <= 1 then f 0
  else begin
    ensure t (n - 1);
    Mutex.lock t.use;
    let finally () = Mutex.unlock t.use in
    (try
       for i = 1 to n - 1 do
         submit t.workers.(i - 1) (fun () -> f i)
       done
     with e -> finally (); raise e);
    let err0 = try f 0; None with e -> Some e in
    let errs = List.init (n - 1) (fun i -> await t.workers.(i)) in
    finally ();
    match List.filter_map Fun.id (err0 :: errs) with
    | [] -> ()
    | e :: _ -> raise e
  end

(* The shared pool used by [Runtime]'s [Jit_parallel] engine.  One pool
   per process: domains are heavyweight, runtimes are not. *)
let global = create ()

let () = at_exit (fun () -> shutdown global)

(* Partition dimension: the outermost NDRange dimension actually used —
   the highest dimension with more than one work-item (the z loop runs
   outermost in [Jit.run_range]); 1-D launches split dimension 0. *)
let outer_dim (global_size : int list) =
  let dims = Array.of_list global_size in
  let d = ref 0 in
  Array.iteri (fun i n -> if n > 1 then d := i) dims;
  !d

(* Launch a compiled kernel over [global] work-items using up to
   [domains] domains from [pool] (default: the process-wide pool). *)
(* Grouped kernels partition over the linear work-group range instead
   of an NDRange dimension: a work-group synchronises internally at
   barriers, so it must never be split across domains.  Chunks are
   whole groups; groups are independent, so any claim order is
   bit-identical to the sequential schedule. *)
let launch_grouped ~pool ~workers (c : Jit.compiled) rt0 ~total =
  let chunks = min total (workers * 4) in
  let next = Atomic.make 0 in
  run pool ~n:workers (fun i ->
      let rt = if i = 0 then rt0 else Jit.clone_rt c rt0 in
      let rts = Jit.group_rts c rt in
      let rec drain () =
        let k = Atomic.fetch_and_add next 1 in
        if k < chunks then begin
          Jit.run_group_range c rts ~lo:(k * total / chunks) ~hi:((k + 1) * total / chunks);
          drain ()
        end
      in
      drain ())

let launch ?(pool = global) ~domains (c : Jit.compiled) ~(args : Args.t list)
    ~(global : int list) =
  let domains = max 1 domains in
  if domains = 1 then Jit.launch c ~args ~global
  else if Kernel_ast.Cast.grouped c.kernel then begin
    let total = Jit.group_count c ~global in
    let workers = min domains total in
    let rt0 = Jit.bind c ~args ~global in
    if workers <= 1 then Jit.run_group_range c (Jit.group_rts c rt0) ~lo:0 ~hi:total
    else launch_grouped ~pool ~workers c rt0 ~total
  end
  else begin
    let rt0 = Jit.bind c ~args ~global in
    let dim = outer_dim global in
    let extent = List.nth global dim in
    let workers = min domains extent in
    if workers <= 1 then Jit.run_range c rt0 ~dim ~lo:0 ~hi:extent
    else begin
      (* Chunked self-scheduling: more chunks than workers and an
         atomic claim counter, so skewed work — boundary kernels with
         few points, uneven plane splits — load-balances instead of
         waiting on the slowest even share.  Chunks are contiguous
         ranges over disjointly-written work-items, so every claim
         order is bit-identical to the sequential schedule. *)
      let chunks = min extent (workers * 4) in
      let next = Atomic.make 0 in
      run pool ~n:workers (fun i ->
          let rt = if i = 0 then rt0 else Jit.clone_rt c rt0 in
          let rec drain () =
            let k = Atomic.fetch_and_add next 1 in
            if k < chunks then begin
              Jit.run_range c rt ~dim ~lo:(k * extent / chunks) ~hi:((k + 1) * extent / chunks);
              drain ()
            end
          in
          drain ())
    end
  end
