(** Multi-device virtual GPU: an array of independent {!Runtime.t}
    devices plus an [Exchange] plan primitive that moves a sub-buffer
    slice between two devices' buffers — the halo-exchange step of the
    Z-sharded acoustics backend.

    Exchange bytes are accounted once, on the source device, at its
    transfer precision, and surface as {!Runtime.stats.s_d2d_bytes} both
    per device and in the aggregate view. *)

type t = { devices : Runtime.t array }

val create :
  ?engine:Runtime.engine ->
  ?optimize:bool ->
  ?precision:Kernel_ast.Cast.precision ->
  ?verify:bool ->
  ?sanitize:bool ->
  devices:int ->
  unit ->
  t
(** [optimize] (default [true]), [verify] and [sanitize] are forwarded
    to every device's {!Runtime.create}; each device gets its own
    sanitizer (its shadow state follows its own buffers, with halo
    exchanges marking destination cells defined).
    @raise Invalid_argument if [devices < 1]. *)

val n_devices : t -> int

val device : t -> int -> Runtime.t
(** @raise Invalid_argument on an out-of-range device index. *)

val bind : t -> int -> string -> Buffer.t -> unit
(** [bind t i name buf] binds [buf] in device [i]'s buffer table. *)

type op =
  | Dev of int * Runtime.op  (** a single-device op on the given device *)
  | Exchange of {
      src_dev : int;
      src : string;
      src_off : int;
      dst_dev : int;
      dst : string;
      dst_off : int;
      elems : int;
    }  (** cross-device sub-buffer copy (peer-to-peer halo transfer) *)

type plan = op list

val run_op : t -> op -> unit
val run : t -> plan -> unit

(** {2 Aggregated observability} *)

val per_device_stats : t -> (int * Runtime.stats) list

val stats : t -> Runtime.stats
(** Merge of the per-device stats: counters and bytes sum; per-kernel
    entries sharing a name merge (launches/time/bytes sum, min of mins,
    max of maxes). *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> t -> unit
(** Aggregate block, then one block per device when there are several. *)
