(** Multi-device virtual GPU: an array of independent {!Runtime.t}
    devices plus an [Exchange] plan primitive that moves a sub-buffer
    slice between two devices' buffers — the halo-exchange step of the
    Z-sharded acoustics backend.

    Exchange bytes are accounted once, on the source device, at its
    transfer precision, and surface as {!Runtime.stats.s_d2d_bytes} both
    per device and in the aggregate view. *)

type t = { devices : Runtime.t array }

val create :
  ?engine:Runtime.engine ->
  ?optimize:bool ->
  ?unroll_budget:int ->
  ?precision:Kernel_ast.Cast.precision ->
  ?verify:bool ->
  ?sanitize:bool ->
  devices:int ->
  unit ->
  t
(** [optimize] (default [true]), [verify] and [sanitize] are forwarded
    to every device's {!Runtime.create}; each device gets its own
    sanitizer (its shadow state follows its own buffers, with halo
    exchanges marking destination cells defined).
    @raise Invalid_argument if [devices < 1]. *)

val n_devices : t -> int

val device : t -> int -> Runtime.t
(** @raise Invalid_argument on an out-of-range device index. *)

val bind : t -> int -> string -> Buffer.t -> unit
(** [bind t i name buf] binds [buf] in device [i]'s buffer table. *)

type op =
  | Dev of int * Runtime.op  (** a single-device op on the given device *)
  | Exchange of {
      src_dev : int;
      src : string;
      src_off : int;
      dst_dev : int;
      dst : string;
      dst_off : int;
      elems : int;
    }  (** cross-device sub-buffer copy (peer-to-peer halo transfer) *)

type plan = op list

val run_op : t -> op -> unit
val run : t -> plan -> unit

(** {2 Asynchronous execution}

    An async plan tags each op with explicit event dependencies: ops run
    on their device's {!Queue} ([Exchange] on the {e source} device's
    queue), so per-queue FIFO order plus the signal→wait edges is the
    complete happens-before relation.  Buffer names are resolved at
    submission (the clSetKernelArg moment), so host-side rebinding
    between time steps never races a queued op.  Host-only ops
    ([Alloc], [Swap]) execute during submission itself. *)

type async_op = {
  a_op : op;
  a_waits : int list;  (** event ids that must fire before the op runs *)
  a_signal : int option;  (** event id fired when the op retires *)
}

type async_plan = async_op list

val default_link_gb_s : float
(** Modeled cross-device link bandwidth used to price [Exchange]
    commands on the virtual timeline (matches
    {!Acoustics.Perf_model.predict_sharded}'s default). *)

val submit_async :
  ?imports:(int * Queue.event) list ->
  ?link_gb_s:float ->
  t ->
  async_plan ->
  (int * Queue.event) list
(** Enqueue the plan on the per-device queues and return immediately.
    The result maps each event id the plan signals to its
    {!Queue.event}, for [imports] of a later submission (cross-step
    dependencies under pipelining).  Waits must reference imported or
    earlier-signaled ids.
    @raise Invalid_argument if any device sanitizes — checked execution
    needs deterministic scheduling; use {!run_async_with}.
    @raise Failure on a wait on an unknown event or a duplicate signal. *)

val finish_async : t -> unit
(** Drain every device queue; re-raise the first command failure after
    all queues have drained. *)

val run_async :
  ?imports:(int * Queue.event) list ->
  ?link_gb_s:float ->
  t ->
  async_plan ->
  (int * Queue.event) list
(** [submit_async] then [finish_async]. *)

val async_vclock : t -> float
(** Critical path of everything retired so far: the maximum virtual
    clock (ns) across this instance's device queues.  Monotonic —
    measure an interval as a delta. *)

val run_async_with : ?imports:int list -> ?pick:(int -> int) -> t -> async_plan -> unit
(** Deterministic single-threaded replay: same buffer resolution as
    {!submit_async}, but commands run on the calling domain in an order
    chosen by [pick] (index into the ready queue heads, taken modulo
    their count) — every [pick] is a legal queue interleaving, which is
    the qcheck handle on the bit-identity invariant.  Sanitizers are
    allowed.  [imports] lists event ids assumed already fired.
    @raise Failure on deadlock (a wait that can never fire). *)

(** {2 Aggregated observability} *)

val queue_stats : t -> (int * Queue.stats) list
(** Stats of the spawned queues among this instance's device indices. *)

type overlap_stats = {
  o_busy_ns : float;  (** sum of command durations across queues *)
  o_span_ns : float;  (** critical path: max per-queue vclock span since reset *)
  o_saved_ns : float;  (** [busy - span]: time hidden by overlap *)
  o_queues : (int * Queue.stats) list;
}

val overlap_stats : t -> overlap_stats

val per_device_stats : t -> (int * Runtime.stats) list

val stats : t -> Runtime.stats
(** Merge of the per-device stats: counters and bytes sum; per-kernel
    entries sharing a name merge (launches/time/bytes sum, min of mins,
    max of maxes). *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> t -> unit
(** Aggregate block, then one block per device when there are several. *)
