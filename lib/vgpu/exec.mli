(** Reference interpreter for kernel ASTs.

    Executes a kernel over an NDRange exactly as an OpenCL device would,
    one work-item at a time (row-major order).  The kernels in this
    project never communicate through local memory, so sequential
    execution is observationally equivalent to any parallel schedule as
    long as distinct work-items write distinct locations.  That claim is
    machine-checked rather than assumed: {!module:Kernel_ast.Check}
    proves it statically per kernel, and {!module:Sanitizer} verifies it
    dynamically through the access hook below.

    This is the slow, obviously-correct engine used to cross-validate
    the JIT and the Lift code generator; benchmarks use {!module:Jit}. *)

exception
  Exec_error of {
    e_kernel : string;  (** kernel being executed *)
    e_gid : int * int * int;  (** work-item that faulted *)
    e_context : string;  (** what went wrong *)
  }
(** Structured interpreter fault: unbound names, scalar/array kind
    confusion, out-of-range accesses.  Carries enough context to report
    "kernel K, work-item (x,y,z): ..." without re-deriving it. *)

type access_hook = {
  on_load : name:string -> buf:Buffer.t option -> len:int -> idx:int -> bool;
  on_store : name:string -> buf:Buffer.t option -> len:int -> idx:int -> bool;
}
(** Observer for every memory access the interpreter performs.  [buf] is
    the global buffer ([None] for work-item-private arrays), [len] its
    extent.  Returning [false] suppresses the access — the store is
    skipped and the load yields zero — which lets the sanitizer survive
    out-of-bounds accesses long enough to report them all. *)

val builtin_eval : Kernel_ast.Cast.builtin -> float list -> float
(** Evaluate a math builtin (shared with the Lift IR interpreter). *)

val launch :
  ?hook:access_hook ->
  ?on_workitem:(int * int * int -> unit) ->
  ?on_group:(int * int * int -> unit) ->
  ?on_barrier:(unit -> unit) ->
  Kernel_ast.Cast.kernel ->
  args:Args.t list ->
  global:int list ->
  unit
(** Run the kernel over [global] work-items per dimension.  [args] are
    matched positionally against the kernel's parameters; buffer
    arguments are mutated in place.  [on_workitem] fires before each
    work-item starts — and, for grouped kernels, before each resume
    after a barrier (the sanitizer uses it to attribute accesses).

    Grouped kernels (non-empty [local_size]) execute one work-group at
    a time, work-items as fibers synchronised at barriers and resumed
    in local-id order; [on_group] fires when a group starts (its local
    arrays are fresh and zeroed), [on_barrier] when a whole group
    releases a barrier.

    @raise Invalid_argument on arity, argument-kind, or NDRange /
    work-group-size divisibility mismatch.
    @raise Exec_error on faults inside a work-item (unbound names, kind
    confusion, out-of-range accesses when no hook intercepts, barrier
    divergence within a work-group). *)
