(* Closure-compiling JIT for kernel ASTs.

   Plays the role of the OpenCL driver compiler in this reproduction:
   a kernel AST is compiled once into OCaml closures with all name
   resolution done at compile time (variables become slots in flat
   register arrays, buffers become positions in per-kind buffer tables),
   then launched many times.  Cross-validated against the reference
   interpreter [Exec] by the test suite.

   Compilation is type-directed: every expression is classified as [Int]
   or [Real] (C promotion rules) and compiled to an [rt -> int] or
   [rt -> float] closure, so the hot loop performs no tagging or
   dispatch. *)

open Kernel_ast.Cast

type rt = {
  gid : int array;
  gsize : int array;
  lid : int array;             (* local id within the work-group *)
  wg : int array;              (* work-group id *)
  ir : int array;              (* int registers *)
  fr : float array;            (* real registers *)
  iarr : int array array;      (* private int arrays *)
  farr : float array array;    (* private real arrays *)
  mutable ilarr : int array array;   (* group-shared local int arrays *)
  mutable flarr : float array array; (* group-shared local real arrays *)
  mutable ibuf : int array array;   (* global int buffers, by slot *)
  mutable fbuf : float array array; (* global real buffers, by slot *)
}

(* Work-group synchronisation: [Barrier] in a grouped kernel performs
   this effect; the group scheduler in [run_group_range] suspends the
   work-item fiber until the whole group has arrived. *)
type _ Effect.t += Barrier_hit : unit Effect.t

type slot =
  | Int_reg of int
  | Real_reg of int
  | Int_parr of int * int   (* slot, length *)
  | Real_parr of int * int
  | Int_larr of int * int   (* group-shared local array: slot, length *)
  | Real_larr of int * int
  | Int_gbuf of int
  | Real_gbuf of int

type cenv = {
  slots : (string, slot) Hashtbl.t;
  cgrouped : bool;
  cl3 : int array;
  mutable n_ir : int;
  mutable n_fr : int;
  mutable n_iarr : int;
  mutable n_farr : int;
  mutable parr_lens_i : int list; (* reversed *)
  mutable parr_lens_f : int list;
  mutable n_ilarr : int;
  mutable n_flarr : int;
  mutable larr_lens_i : int list; (* reversed *)
  mutable larr_lens_f : int list;
}

let fresh_cenv (k : kernel) =
  {
    slots = Hashtbl.create 32;
    cgrouped = grouped k;
    cl3 = local3 k;
    n_ir = 0;
    n_fr = 0;
    n_iarr = 0;
    n_farr = 0;
    parr_lens_i = [];
    parr_lens_f = [];
    n_ilarr = 0;
    n_flarr = 0;
    larr_lens_i = [];
    larr_lens_f = [];
  }

let scalar_slot cenv name (ty : ty) =
  match Hashtbl.find_opt cenv.slots name with
  | Some (Int_reg _ as s) when ty = Int -> s
  | Some (Real_reg _ as s) when ty = Real -> s
  | Some _ -> failwith (Printf.sprintf "jit: %s redeclared with a different type" name)
  | None ->
      let s =
        match ty with
        | Int ->
            let s = Int_reg cenv.n_ir in
            cenv.n_ir <- cenv.n_ir + 1;
            s
        | Real ->
            let s = Real_reg cenv.n_fr in
            cenv.n_fr <- cenv.n_fr + 1;
            s
      in
      Hashtbl.replace cenv.slots name s;
      s

let parr_slot cenv name (ty : ty) len =
  match Hashtbl.find_opt cenv.slots name with
  | Some ((Int_parr _ | Real_parr _) as s) -> s
  | Some _ -> failwith (Printf.sprintf "jit: %s redeclared as private array" name)
  | None ->
      let s =
        match ty with
        | Int ->
            let s = Int_parr (cenv.n_iarr, len) in
            cenv.n_iarr <- cenv.n_iarr + 1;
            cenv.parr_lens_i <- len :: cenv.parr_lens_i;
            s
        | Real ->
            let s = Real_parr (cenv.n_farr, len) in
            cenv.n_farr <- cenv.n_farr + 1;
            cenv.parr_lens_f <- len :: cenv.parr_lens_f;
            s
      in
      Hashtbl.replace cenv.slots name s;
      s

let larr_slot cenv name (ty : ty) len =
  match Hashtbl.find_opt cenv.slots name with
  | Some ((Int_larr _ | Real_larr _) as s) -> s
  | Some _ -> failwith (Printf.sprintf "jit: %s redeclared as local array" name)
  | None ->
      let s =
        match ty with
        | Int ->
            let s = Int_larr (cenv.n_ilarr, len) in
            cenv.n_ilarr <- cenv.n_ilarr + 1;
            cenv.larr_lens_i <- len :: cenv.larr_lens_i;
            s
        | Real ->
            let s = Real_larr (cenv.n_flarr, len) in
            cenv.n_flarr <- cenv.n_flarr + 1;
            cenv.larr_lens_f <- len :: cenv.larr_lens_f;
            s
      in
      Hashtbl.replace cenv.slots name s;
      s

(* Pre-scan: declare every local so that type queries during expression
   compilation always succeed (C requires declaration before use, and the
   code generator respects that, but the pre-scan keeps the compiler
   single-pass per expression). *)
let rec scan_stmt cenv = function
  | Comment _ | Assign _ | Store _ | Barrier -> ()
  | Decl (ty, v, _) -> ignore (scalar_slot cenv v ty)
  | Decl_arr (ty, v, n) -> ignore (parr_slot cenv v ty n)
  | Decl_local (ty, v, n) ->
      (* flat model: a local array of a singleton group is private *)
      if cenv.cgrouped then ignore (larr_slot cenv v ty n)
      else ignore (parr_slot cenv v ty n)
  | If (_, t, f) ->
      List.iter (scan_stmt cenv) t;
      List.iter (scan_stmt cenv) f
  | For l ->
      ignore (scalar_slot cenv l.var Int);
      List.iter (scan_stmt cenv) l.body

let type_of cenv (e : expr) : ty =
  let rec go = function
    | Int_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _ | Local_size _ ->
        Int
    | Real_lit _ -> Real
    | Var v -> (
        match Hashtbl.find_opt cenv.slots v with
        | Some (Int_reg _) -> Int
        | Some (Real_reg _) -> Real
        | Some _ -> failwith (Printf.sprintf "jit: %s is not a scalar" v)
        | None -> failwith (Printf.sprintf "jit: unbound variable %s" v))
    | Load (b, _) -> (
        match Hashtbl.find_opt cenv.slots b with
        | Some (Int_gbuf _ | Int_parr _ | Int_larr _) -> Int
        | Some (Real_gbuf _ | Real_parr _ | Real_larr _) -> Real
        | Some _ -> failwith (Printf.sprintf "jit: %s is not an array" b)
        | None -> failwith (Printf.sprintf "jit: unbound buffer %s" b))
    | Unop ((To_real | Round), _) -> Real
    | Unop (To_int, _) -> Int
    | Unop (Not, _) -> Int
    | Unop (Neg, a) -> go a
    | Ternary (_, a, b) -> ( match (go a, go b) with Int, Int -> Int | _ -> Real)
    | Call (_, _) -> Real
    | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> (
        match (go a, go b) with Int, Int -> Int | _ -> Real)
    | Binop (_, _, _) -> Int
  in
  go e

type compiled_expr =
  | CI of (rt -> int)
  | CR of (rt -> float)

let rec compile_expr cenv (e : expr) : compiled_expr =
  match type_of cenv e with
  | Int -> CI (compile_int cenv e)
  | Real -> CR (compile_real cenv e)

and as_int cenv e : rt -> int =
  match compile_expr cenv e with
  | CI f -> f
  | CR f -> fun rt -> int_of_float (f rt)

and as_real cenv e : rt -> float =
  match compile_expr cenv e with
  | CR f -> f
  | CI f -> fun rt -> float_of_int (f rt)

and compile_int cenv (e : expr) : rt -> int =
  match e with
  | Int_lit n -> fun _ -> n
  | Real_lit _ -> failwith "jit: real literal in int context"
  | Global_id d -> fun rt -> rt.gid.(d)
  | Global_size d -> fun rt -> rt.gsize.(d)
  | Group_id d ->
      (* flat model: every work-item is its own singleton group *)
      if cenv.cgrouped then fun rt -> rt.wg.(d) else fun rt -> rt.gid.(d)
  | Local_id d -> if cenv.cgrouped then fun rt -> rt.lid.(d) else fun _ -> 0
  | Local_size d ->
      let n = if cenv.cgrouped && d < 3 then cenv.cl3.(d) else 1 in
      fun _ -> n
  | Var v -> (
      match Hashtbl.find cenv.slots v with
      | Int_reg s -> fun rt -> rt.ir.(s)
      | _ -> failwith (Printf.sprintf "jit: %s not an int scalar" v))
  | Load (b, i) -> (
      let fi = as_int cenv i in
      match Hashtbl.find cenv.slots b with
      | Int_gbuf s -> fun rt -> rt.ibuf.(s).(fi rt)
      | Int_parr (s, _) -> fun rt -> rt.iarr.(s).(fi rt)
      | Int_larr (s, _) -> fun rt -> rt.ilarr.(s).(fi rt)
      | _ -> failwith (Printf.sprintf "jit: %s not an int array" b))
  | Unop (Neg, a) ->
      let fa = compile_int cenv a in
      fun rt -> -fa rt
  | Unop (Not, a) ->
      let fa = as_int cenv a in
      fun rt -> if fa rt = 0 then 1 else 0
  | Unop (To_int, a) ->
      let fa = as_real cenv a in
      fun rt -> int_of_float (fa rt)
  | Unop ((To_real | Round), _) -> failwith "jit: to_real in int context"
  | Ternary (c, a, b) ->
      let fc = as_int cenv c and fa = compile_int cenv a and fb = compile_int cenv b in
      fun rt -> if fc rt <> 0 then fa rt else fb rt
  | Call _ -> failwith "jit: builtin call in int context"
  | Binop (op, a, b) -> (
      match op with
      | Add | Sub | Mul | Div | Mod ->
          let fa = compile_int cenv a and fb = compile_int cenv b in
          let g =
            match op with
            | Add -> ( + )
            | Sub -> ( - )
            | Mul -> ( * )
            | Div -> ( / )
            | _ -> fun x y -> x mod y
          in
          fun rt -> g (fa rt) (fb rt)
      | And ->
          let fa = as_int cenv a and fb = as_int cenv b in
          fun rt -> if fa rt <> 0 && fb rt <> 0 then 1 else 0
      | Or ->
          let fa = as_int cenv a and fb = as_int cenv b in
          fun rt -> if fa rt <> 0 || fb rt <> 0 then 1 else 0
      | Shr ->
          let fa = as_int cenv a and fb = as_int cenv b in
          fun rt -> fa rt asr fb rt
      | BAnd ->
          let fa = as_int cenv a and fb = as_int cenv b in
          fun rt -> fa rt land fb rt
      | Eq | Ne | Lt | Le | Gt | Ge -> (
          let cmp_int g =
            let fa = as_int cenv a and fb = as_int cenv b in
            fun rt -> if g (fa rt) (fb rt) then 1 else 0
          and cmp_real g =
            let fa = as_real cenv a and fb = as_real cenv b in
            fun rt -> if g (fa rt) (fb rt) then 1 else 0
          in
          let both_int = type_of cenv a = Int && type_of cenv b = Int in
          match (op, both_int) with
          | Eq, true -> cmp_int ( = )
          | Ne, true -> cmp_int ( <> )
          | Lt, true -> cmp_int ( < )
          | Le, true -> cmp_int ( <= )
          | Gt, true -> cmp_int ( > )
          | Ge, true -> cmp_int ( >= )
          | Eq, false -> cmp_real ( = )
          | Ne, false -> cmp_real ( <> )
          | Lt, false -> cmp_real ( < )
          | Le, false -> cmp_real ( <= )
          | Gt, false -> cmp_real ( > )
          | Ge, false -> cmp_real ( >= )
          | _ -> assert false))

and compile_real cenv (e : expr) : rt -> float =
  match e with
  | Real_lit r -> fun _ -> r
  | Var v -> (
      match Hashtbl.find cenv.slots v with
      | Real_reg s -> fun rt -> rt.fr.(s)
      | _ -> failwith (Printf.sprintf "jit: %s not a real scalar" v))
  | Load (b, i) -> (
      let fi = as_int cenv i in
      match Hashtbl.find cenv.slots b with
      | Real_gbuf s -> fun rt -> rt.fbuf.(s).(fi rt)
      | Real_parr (s, _) -> fun rt -> rt.farr.(s).(fi rt)
      | Real_larr (s, _) -> fun rt -> rt.flarr.(s).(fi rt)
      | _ -> failwith (Printf.sprintf "jit: %s not a real array" b))
  | Unop (Neg, a) ->
      let fa = compile_real cenv a in
      fun rt -> -.(fa rt)
  | Unop (To_real, a) ->
      let fa = as_real cenv a in
      fa
  | Unop (Round, a) ->
      let fa = as_real cenv a in
      fun rt -> Buffer.round32 (fa rt)
  | Ternary (c, a, b) ->
      let fc = as_int cenv c and fa = as_real cenv a and fb = as_real cenv b in
      fun rt -> if fc rt <> 0 then fa rt else fb rt
  | Call (f, args) -> (
      let fargs = List.map (as_real cenv) args in
      match (f, fargs) with
      | Sqrt, [ a ] -> fun rt -> sqrt (a rt)
      | Fabs, [ a ] -> fun rt -> Float.abs (a rt)
      | Exp, [ a ] -> fun rt -> exp (a rt)
      | Log, [ a ] -> fun rt -> log (a rt)
      | Sin, [ a ] -> fun rt -> sin (a rt)
      | Cos, [ a ] -> fun rt -> cos (a rt)
      | Floor, [ a ] -> fun rt -> Float.floor (a rt)
      | Fmin, [ a; b ] -> fun rt -> Float.min (a rt) (b rt)
      | Fmax, [ a; b ] -> fun rt -> Float.max (a rt) (b rt)
      | _ -> failwith "jit: bad builtin arity")
  | Binop (op, a, b) -> (
      let fa = as_real cenv a and fb = as_real cenv b in
      match op with
      | Add -> fun rt -> fa rt +. fb rt
      | Sub -> fun rt -> fa rt -. fb rt
      | Mul -> fun rt -> fa rt *. fb rt
      | Div -> fun rt -> fa rt /. fb rt
      | Mod -> fun rt -> Float.rem (fa rt) (fb rt) (* C fmod *)
      | _ -> failwith "jit: non-arithmetic real binop")
  | Int_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _ | Local_size _
  | Unop ((Not | To_int), _) ->
      failwith "jit: int expression in real context"

let rec compile_stmt cenv ~round_store (s : stmt) : rt -> unit =
  match s with
  | Comment _ -> fun _ -> ()
  | Decl (ty, v, init) -> (
      let slot = scalar_slot cenv v ty in
      match (slot, init) with
      (* an uninitialised declaration zeroes its register, like the
         reference interpreter's fresh cell — a register reused across
         work-items must not leak the previous work-item's value *)
      | Int_reg s, None -> fun rt -> rt.ir.(s) <- 0
      | Real_reg s, None -> fun rt -> rt.fr.(s) <- 0.
      | Int_reg s, Some e ->
          let f = as_int cenv e in
          fun rt -> rt.ir.(s) <- f rt
      | Real_reg s, Some e ->
          let f = as_real cenv e in
          fun rt -> rt.fr.(s) <- f rt
      | _ -> assert false)
  | Decl_arr (ty, v, n) -> (
      (* fresh zeroed array per evaluation in the interpreter; the JIT
         reuses one allocation per rt, so re-zero it here *)
      match parr_slot cenv v ty n with
      | Int_parr (s, len) -> fun rt -> Array.fill rt.iarr.(s) 0 len 0
      | Real_parr (s, len) -> fun rt -> Array.fill rt.farr.(s) 0 len 0.
      | _ -> assert false)
  | Decl_local (ty, v, n) -> (
      if cenv.cgrouped then
        (* allocated and zeroed once per group by the group scheduler *)
        fun _ -> ()
      else
        match parr_slot cenv v ty n with
        | Int_parr (s, len) -> fun rt -> Array.fill rt.iarr.(s) 0 len 0
        | Real_parr (s, len) -> fun rt -> Array.fill rt.farr.(s) 0 len 0.
        | _ -> assert false)
  | Barrier ->
      if cenv.cgrouped then fun _ -> Effect.perform Barrier_hit
      else fun _ -> () (* flat model: singleton groups need no sync *)
  | Assign (v, e) -> (
      match Hashtbl.find_opt cenv.slots v with
      | Some (Int_reg s) ->
          let f = as_int cenv e in
          fun rt -> rt.ir.(s) <- f rt
      | Some (Real_reg s) ->
          let f = as_real cenv e in
          fun rt -> rt.fr.(s) <- f rt
      | _ -> failwith (Printf.sprintf "jit: assign to unbound %s" v))
  | Store (b, i, e) -> (
      let fi = as_int cenv i in
      match Hashtbl.find_opt cenv.slots b with
      | Some (Int_gbuf s) ->
          let f = as_int cenv e in
          fun rt -> rt.ibuf.(s).(fi rt) <- f rt
      | Some (Int_parr (s, _)) ->
          let f = as_int cenv e in
          fun rt -> rt.iarr.(s).(fi rt) <- f rt
      | Some (Real_gbuf s) ->
          let f = as_real cenv e in
          if round_store then fun rt -> rt.fbuf.(s).(fi rt) <- Buffer.round32 (f rt)
          else fun rt -> rt.fbuf.(s).(fi rt) <- f rt
      | Some (Real_parr (s, _)) ->
          let f = as_real cenv e in
          fun rt -> rt.farr.(s).(fi rt) <- f rt
      | Some (Int_larr (s, _)) ->
          let f = as_int cenv e in
          fun rt -> rt.ilarr.(s).(fi rt) <- f rt
      | Some (Real_larr (s, _)) ->
          (* local arrays hold full doubles at either precision *)
          let f = as_real cenv e in
          fun rt -> rt.flarr.(s).(fi rt) <- f rt
      | _ -> failwith (Printf.sprintf "jit: store to unbound %s" b))
  | If (c, t, f) ->
      let fc = as_int cenv c in
      let ft = compile_body cenv ~round_store t in
      let ff = compile_body cenv ~round_store f in
      fun rt -> if fc rt <> 0 then ft rt else ff rt
  | For l ->
      let slot =
        match scalar_slot cenv l.var Int with
        | Int_reg s -> s
        | _ -> assert false
      in
      let finit = as_int cenv l.init in
      let fbound = as_int cenv l.bound in
      let fstep = as_int cenv l.step in
      let fbody = compile_body cenv ~round_store l.body in
      fun rt ->
        let i = ref (finit rt) in
        while !i < fbound rt do
          rt.ir.(slot) <- !i;
          fbody rt;
          i := !i + fstep rt
        done

and compile_body cenv ~round_store body =
  match List.map (compile_stmt cenv ~round_store) body with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | fs -> fun rt -> List.iter (fun f -> f rt) fs

type param_binding =
  | Bind_ibuf of int
  | Bind_fbuf of int
  | Bind_ireg of int
  | Bind_freg of int

type compiled = {
  kernel : kernel;
  bindings : param_binding list;
  n_ibuf : int;
  n_fbuf : int;
  make_rt : unit -> rt;
  body : rt -> unit;
}

(* Compile a kernel once; the result can be launched many times. *)
let compile (k : kernel) : compiled =
  let cenv = fresh_cenv k in
  let n_ibuf = ref 0 and n_fbuf = ref 0 in
  let bindings =
    List.map
      (fun p ->
        match (p.p_kind, p.p_ty) with
        | Global_buf, Int ->
            let s = !n_ibuf in
            incr n_ibuf;
            Hashtbl.replace cenv.slots p.p_name (Int_gbuf s);
            Bind_ibuf s
        | Global_buf, Real ->
            let s = !n_fbuf in
            incr n_fbuf;
            Hashtbl.replace cenv.slots p.p_name (Real_gbuf s);
            Bind_fbuf s
        | Scalar_param, Int -> (
            match scalar_slot cenv p.p_name Int with
            | Int_reg s -> Bind_ireg s
            | _ -> assert false)
        | Scalar_param, Real -> (
            match scalar_slot cenv p.p_name Real with
            | Real_reg s -> Bind_freg s
            | _ -> assert false))
      k.params
  in
  List.iter (scan_stmt cenv) k.body;
  let round_store = k.precision = Single in
  let body = compile_body cenv ~round_store k.body in
  let parr_i = Array.of_list (List.rev cenv.parr_lens_i) in
  let parr_f = Array.of_list (List.rev cenv.parr_lens_f) in
  let larr_i = Array.of_list (List.rev cenv.larr_lens_i) in
  let larr_f = Array.of_list (List.rev cenv.larr_lens_f) in
  let make_rt () =
    {
      gid = Array.make 3 0;
      gsize = Array.make 3 1;
      lid = Array.make 3 0;
      wg = Array.make 3 0;
      ir = Array.make (max 1 cenv.n_ir) 0;
      fr = Array.make (max 1 cenv.n_fr) 0.;
      iarr = Array.map (fun n -> Array.make n 0) parr_i;
      farr = Array.map (fun n -> Array.make n 0.) parr_f;
      ilarr = Array.map (fun n -> Array.make n 0) larr_i;
      flarr = Array.map (fun n -> Array.make n 0.) larr_f;
      ibuf = [||];
      fbuf = [||];
    }
  in
  { kernel = k; bindings; n_ibuf = !n_ibuf; n_fbuf = !n_fbuf; make_rt; body }

(* Bind launch arguments into a fresh rt.  Buffers are shared with the
   caller (stores are visible after the launch); scalars are copied into
   registers. *)
let bind (c : compiled) ~(args : Args.t list) ~(global : int list) : rt =
  if List.length args <> List.length c.kernel.params then
    invalid_arg
      (Printf.sprintf "vgpu jit: kernel %s expects %d args, got %d" c.kernel.name
         (List.length c.kernel.params) (List.length args));
  let rt = c.make_rt () in
  rt.ibuf <- Array.make (max 1 c.n_ibuf) [||];
  rt.fbuf <- Array.make (max 1 c.n_fbuf) [||];
  List.iteri (fun d n -> rt.gsize.(d) <- n) global;
  List.iter2
    (fun binding (a : Args.t) ->
      match (binding, a) with
      | Bind_ibuf s, Buf (Buffer.I arr) -> rt.ibuf.(s) <- arr
      | Bind_fbuf s, Buf (Buffer.F arr) -> rt.fbuf.(s) <- arr
      | Bind_ireg s, Int_arg v -> rt.ir.(s) <- v
      | Bind_freg s, Real_arg v -> rt.fr.(s) <- v
      | Bind_ireg s, Real_arg v -> rt.ir.(s) <- int_of_float v
      | Bind_freg s, Int_arg v -> rt.fr.(s) <- float_of_int v
      | _ ->
          invalid_arg
            (Printf.sprintf "vgpu jit: kernel %s: argument kind mismatch" c.kernel.name))
    c.bindings args;
  rt

(* A private copy of a bound rt for another domain: registers (scalar
   arguments) are copied, global buffers are shared (safe because
   generated kernels write disjoint locations — see [Exec]), private
   arrays are fresh per domain as they are per work-item scratch. *)
let clone_rt (c : compiled) (src : rt) : rt =
  let rt = c.make_rt () in
  Array.blit src.ir 0 rt.ir 0 (Array.length src.ir);
  Array.blit src.fr 0 rt.fr 0 (Array.length src.fr);
  Array.blit src.gsize 0 rt.gsize 0 3;
  rt.ibuf <- Array.copy src.ibuf;
  rt.fbuf <- Array.copy src.fbuf;
  rt

(* Run the kernel body over the NDRange with dimension [dim] restricted
   to the half-open range [lo, hi); the other dimensions run in full.
   The full global size stays visible through get_global_size. *)
let run_range (c : compiled) (rt : rt) ~dim ~lo ~hi =
  let gx = rt.gsize.(0) and gy = rt.gsize.(1) and gz = rt.gsize.(2) in
  let x0, x1 = if dim = 0 then (lo, hi) else (0, gx) in
  let y0, y1 = if dim = 1 then (lo, hi) else (0, gy) in
  let z0, z1 = if dim = 2 then (lo, hi) else (0, gz) in
  for z = z0 to z1 - 1 do
    for y = y0 to y1 - 1 do
      for x = x0 to x1 - 1 do
        rt.gid.(0) <- x;
        rt.gid.(1) <- y;
        rt.gid.(2) <- z;
        c.body rt
      done
    done
  done

(* {2 Work-group execution}

   Grouped kernels run one work-group at a time.  Each work-item of the
   group gets its own rt (private registers and scratch), all sharing
   the global buffers and one set of group-local arrays; barriers
   suspend work-item fibers until the whole group arrives, then resume
   them in local-id order — the same schedule as [Exec]. *)

type wi_state =
  | Wi_done
  | Wi_barrier of (unit, wi_state) Effect.Deep.continuation

let step_fiber (f : unit -> unit) : wi_state =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> Wi_done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Barrier_hit ->
              Some (fun (kont : (a, wi_state) Effect.Deep.continuation) -> Wi_barrier kont)
          | _ -> None);
    }

(* Number of work-groups of a grouped kernel's launch; validates that
   the NDRange divides by the work-group size. *)
let group_count (c : compiled) ~(global : int list) =
  let gsize = Array.make 3 1 in
  List.iteri (fun d n -> gsize.(d) <- n) global;
  let g = group_counts c.kernel ~global:gsize in
  g.(0) * g.(1) * g.(2)

(* One rt per work-item of a group (lane 0 is [rt0]), group-local
   arrays shared across the group. *)
let group_rts (c : compiled) (rt0 : rt) : rt array =
  let l = local3 c.kernel in
  let nwi = l.(0) * l.(1) * l.(2) in
  Array.init nwi (fun lid ->
      if lid = 0 then rt0
      else begin
        let rt = clone_rt c rt0 in
        rt.ilarr <- rt0.ilarr;
        rt.flarr <- rt0.flarr;
        rt
      end)

(* Run work-groups with linear indices [lo, hi) (row-major z/y/x group
   order) on one set of per-work-item rts. *)
let run_group_range (c : compiled) (rts : rt array) ~lo ~hi =
  let l = local3 c.kernel in
  let groups = group_counts c.kernel ~global:rts.(0).gsize in
  let l0 = l.(0) and l1 = l.(1) in
  let shared_i = rts.(0).ilarr and shared_f = rts.(0).flarr in
  for g = lo to hi - 1 do
    let wx = g mod groups.(0) in
    let wy = g / groups.(0) mod groups.(1) in
    let wz = g / (groups.(0) * groups.(1)) in
    Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) shared_i;
    Array.iter (fun a -> Array.fill a 0 (Array.length a) 0.) shared_f;
    Array.iteri
      (fun lid rt ->
        let lx = lid mod l0 and ly = lid / l0 mod l1 and lz = lid / (l0 * l1) in
        rt.lid.(0) <- lx;
        rt.lid.(1) <- ly;
        rt.lid.(2) <- lz;
        rt.wg.(0) <- wx;
        rt.wg.(1) <- wy;
        rt.wg.(2) <- wz;
        rt.gid.(0) <- (wx * l0) + lx;
        rt.gid.(1) <- (wy * l1) + ly;
        rt.gid.(2) <- (wz * l.(2)) + lz)
      rts;
    let states = Array.map (fun rt -> step_fiber (fun () -> c.body rt)) rts in
    let all p = Array.for_all p states in
    let finished = ref (all (fun s -> s = Wi_done)) in
    while not !finished do
      if not (all (fun s -> s <> Wi_done)) then
        failwith
          (Printf.sprintf
             "jit: kernel %s: barrier divergence in work-group (%d,%d,%d)" c.kernel.name
             wx wy wz);
      Array.iteri
        (fun i s ->
          match s with
          | Wi_barrier kont -> states.(i) <- Effect.Deep.continue kont ()
          | Wi_done -> assert false)
        states;
      finished := all (fun s -> s = Wi_done)
    done
  done

(* Launch a compiled kernel over the full NDRange, sequentially. *)
let launch (c : compiled) ~(args : Args.t list) ~(global : int list) =
  let rt = bind c ~args ~global in
  if grouped c.kernel then
    run_group_range c (group_rts c rt) ~lo:0 ~hi:(group_count c ~global)
  else run_range c rt ~dim:2 ~lo:0 ~hi:rt.gsize.(2)
