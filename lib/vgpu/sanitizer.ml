(* Shadow-memory sanitizer for the reference interpreter.

   Covers the cases the static verifier ([Kernel_ast.Check]) reports as
   Unproven — above all the indirect [next[bidx[i]]] boundary scatters —
   by observing every access through [Exec.access_hook]:

   - write-write races: per cell, the launch epoch and packed gid of the
     last writer; a second store in the same epoch from a different
     work-item is a race (sequential interpretation order would silently
     pick a winner that a real device does not guarantee);
   - out-of-bounds loads/stores, which are additionally suppressed
     (store skipped, load yields 0) so one bad index does not abort the
     run before the full violation picture is collected;
   - reads of never-written cells (neither host-initialised, copied
     into, nor stored by a kernel).

   Shadows are keyed on the physical identity of the underlying arrays,
   not on [Buffer.t] values: the runtime re-wraps arrays in fresh
   [Buffer.F]/[Buffer.I] constructors per resolution, but the storage —
   and therefore the write history — is the array itself. *)

type key =
  | KF of float array
  | KI of int array

let key_of_buffer : Buffer.t -> key = function
  | Buffer.F a -> KF a
  | Buffer.I a -> KI a

let same_key a b =
  match (a, b) with KF x, KF y -> x == y | KI x, KI y -> x == y | _ -> false

type shadow = {
  last_epoch : int array;  (* launch epoch of the last store, 0 = never *)
  last_writer : int array;  (* packed gid of the last store *)
  written : Bytes.t;  (* has the cell ever held a defined value? *)
}

(* Shadow of one [__local] array for the currently-executing work-group:
   local memory has no history across groups (fresh and zeroed per
   group), but within a group every slot remembers the barrier phase and
   work-item of its last store. *)
type lshadow = {
  lw_phase : int array;  (* barrier phase of the last store, -1 = never *)
  lw_writer : int array;  (* packed gid of the last store *)
  lw_written : Bytes.t;  (* stored by some work-item of this group? *)
}

type kind =
  | Write_race of (int * int * int)  (* the earlier writer *)
  | Oob_store
  | Oob_load
  | Read_uninit
  | Local_race of (int * int * int)  (* same-phase local store by the earlier writer *)
  | Local_read_hazard of (int * int * int)  (* read of another work-item's same-phase store *)
  | Local_uninit  (* read of a local slot no work-item has stored *)
  | Barrier_divergence

type violation = {
  v_kernel : string;
  v_buf : string;
  v_idx : int;
  v_gid : int * int * int;
  v_kind : kind;
}

type counts = {
  n_races : int;
  n_oob : int;
  n_uninit : int;
  n_local : int;  (* local-memory hazards: races, missing barriers, uninit reads *)
  n_barrier : int;  (* barrier divergence *)
}

let no_violations = { n_races = 0; n_oob = 0; n_uninit = 0; n_local = 0; n_barrier = 0 }

let add_counts a b =
  {
    n_races = a.n_races + b.n_races;
    n_oob = a.n_oob + b.n_oob;
    n_uninit = a.n_uninit + b.n_uninit;
    n_local = a.n_local + b.n_local;
    n_barrier = a.n_barrier + b.n_barrier;
  }

let total c = c.n_races + c.n_oob + c.n_uninit + c.n_local + c.n_barrier

type t = {
  mutable shadows : (key * shadow) list;
  mutable epoch : int;
  mutable kernel : string;
  mutable gid : int * int * int;
  mutable counts : counts;
  mutable kept : violation list;  (* newest first, capped *)
  mutable n_kept : int;
  max_kept : int;
  mutable local_lens : (string * int) list;  (* __local arrays of the running kernel *)
  locals : (string, lshadow) Hashtbl.t;  (* shadows for the current group *)
  mutable phase : int;  (* barrier phase within the current group *)
  extents : (string, extent) Hashtbl.t;
      (* per global-buffer argument name, observed linear index ranges *)
}

and extent = {
  mutable e_load : (int * int) option;  (* inclusive [min,max] of loads *)
  mutable e_store : (int * int) option;  (* inclusive [min,max] of stores *)
}

let create ?(max_kept = 64) () =
  {
    shadows = [];
    epoch = 0;
    kernel = "<none>";
    gid = (0, 0, 0);
    counts = no_violations;
    kept = [];
    n_kept = 0;
    max_kept;
    local_lens = [];
    locals = Hashtbl.create 4;
    phase = 0;
    extents = Hashtbl.create 8;
  }

(* Observed-extent recording happens before the bounds check: a sound
   static footprint must cover every *attempted* access, including the
   out-of-bounds ones the sanitizer suppresses. *)
let record_extent t name idx ~store =
  let e =
    match Hashtbl.find_opt t.extents name with
    | Some e -> e
    | None ->
        let e = { e_load = None; e_store = None } in
        Hashtbl.replace t.extents name e;
        e
  in
  let widen = function
    | None -> Some (idx, idx)
    | Some (lo, hi) -> Some (min lo idx, max hi idx)
  in
  if store then e.e_store <- widen e.e_store else e.e_load <- widen e.e_load

let fresh_shadow ~len ~host_init =
  {
    last_epoch = Array.make len 0;
    last_writer = Array.make len 0;
    written = Bytes.make len (if host_init then '\001' else '\000');
  }

let find t key len ~host_init =
  match List.find_opt (fun (k, _) -> same_key k key) t.shadows with
  | Some (_, s) -> s
  | None ->
      let s = fresh_shadow ~len ~host_init in
      t.shadows <- (key, s) :: t.shadows;
      s

(* A buffer first seen mid-run is assumed host-initialised (no false
   uninit-read reports); [note_alloc] below opts fresh device
   allocations out of that assumption. *)
let shadow_of t buf =
  find t (key_of_buffer buf) (Buffer.length buf) ~host_init:true

let note_host_write t buf =
  let s = find t (key_of_buffer buf) (Buffer.length buf) ~host_init:true in
  Bytes.fill s.written 0 (Bytes.length s.written) '\001'

let note_alloc t buf =
  let key = key_of_buffer buf in
  t.shadows <- List.filter (fun (k, _) -> not (same_key k key)) t.shadows;
  ignore (find t key (Buffer.length buf) ~host_init:false)

let note_blit t buf ~off ~len =
  let s = shadow_of t buf in
  let n = Bytes.length s.written in
  let off = max 0 off in
  let len = min len (n - off) in
  if len > 0 then Bytes.fill s.written off len '\001'

let begin_launch t ~kernel =
  t.epoch <- t.epoch + 1;
  t.kernel <- kernel;
  t.gid <- (0, 0, 0)

let set_gid t gid = t.gid <- gid

let pack (x, y, z) = x lor (y lsl 20) lor (z lsl 40)
let unpack p = (p land 0xfffff, (p lsr 20) land 0xfffff, (p lsr 40) land 0xfffff)

let report t ~buf ~idx kind =
  t.counts <-
    add_counts t.counts
      (match kind with
      | Write_race _ -> { no_violations with n_races = 1 }
      | Oob_store | Oob_load -> { no_violations with n_oob = 1 }
      | Read_uninit -> { no_violations with n_uninit = 1 }
      | Local_race _ | Local_read_hazard _ | Local_uninit ->
          { no_violations with n_local = 1 }
      | Barrier_divergence -> { no_violations with n_barrier = 1 });
  if t.n_kept < t.max_kept then begin
    t.kept <-
      { v_kernel = t.kernel; v_buf = buf; v_idx = idx; v_gid = t.gid; v_kind = kind }
      :: t.kept;
    t.n_kept <- t.n_kept + 1
  end

let on_store t ~name ~buf ~len ~idx =
  if buf <> None then record_extent t name idx ~store:true;
  if idx < 0 || idx >= len then begin
    report t ~buf:name ~idx Oob_store;
    false
  end
  else begin
    (match buf with
    | None -> (
        (* private arrays are per-work-item: no race/uninit state.
           [__local] arrays (registered by [on_group]) are shared
           within the group: a same-phase store by another work-item
           is a race no barrier ordered. *)
        match Hashtbl.find_opt t.locals name with
        | None -> ()
        | Some s ->
            let me = pack t.gid in
            if s.lw_phase.(idx) = t.phase && s.lw_writer.(idx) <> me then
              report t ~buf:name ~idx (Local_race (unpack s.lw_writer.(idx)));
            s.lw_phase.(idx) <- t.phase;
            s.lw_writer.(idx) <- me;
            Bytes.set s.lw_written idx '\001')
    | Some b ->
        let s = shadow_of t b in
        let me = pack t.gid in
        if s.last_epoch.(idx) = t.epoch && s.last_writer.(idx) <> me then
          report t ~buf:name ~idx (Write_race (unpack s.last_writer.(idx)));
        s.last_epoch.(idx) <- t.epoch;
        s.last_writer.(idx) <- me;
        Bytes.set s.written idx '\001');
    true
  end

let on_load t ~name ~buf ~len ~idx =
  if buf <> None then record_extent t name idx ~store:false;
  if idx < 0 || idx >= len then begin
    report t ~buf:name ~idx Oob_load;
    false
  end
  else begin
    (match buf with
    | None -> (
        match Hashtbl.find_opt t.locals name with
        | None -> ()
        | Some s ->
            if Bytes.get s.lw_written idx = '\000' then begin
              report t ~buf:name ~idx Local_uninit;
              (* report each unwritten slot at most once *)
              Bytes.set s.lw_written idx '\001'
            end
            else if s.lw_phase.(idx) = t.phase && s.lw_writer.(idx) <> pack t.gid then
              (* another work-item stored this slot in the current
                 phase: no barrier orders that store before this read *)
              report t ~buf:name ~idx (Local_read_hazard (unpack s.lw_writer.(idx))))
    | Some b ->
        let s = shadow_of t b in
        if Bytes.get s.written idx = '\000' then begin
          report t ~buf:name ~idx Read_uninit;
          (* report each uninitialised cell at most once *)
          Bytes.set s.written idx '\001'
        end);
    true
  end

let hook t : Exec.access_hook =
  {
    on_load = (fun ~name ~buf ~len ~idx -> on_load t ~name ~buf ~len ~idx);
    on_store = (fun ~name ~buf ~len ~idx -> on_store t ~name ~buf ~len ~idx);
  }

let counts t = t.counts
let violations t = List.rev t.kept

let access_extents t =
  Hashtbl.fold (fun name e acc -> (name, e.e_load, e.e_store) :: acc) t.extents []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* [__local] declarations of a kernel body (recursively). *)
let local_lens_of (k : Kernel_ast.Cast.kernel) =
  let open Kernel_ast.Cast in
  let rec go acc = function
    | [] -> acc
    | Decl_local (_, v, n) :: rest -> go ((v, n) :: acc) rest
    | If (_, a, b) :: rest -> go (go (go acc a) b) rest
    | For l :: rest -> go (go acc l.body) rest
    | _ :: rest -> go acc rest
  in
  go [] k.body

(* A work-group starts: fresh local shadows (local memory carries no
   history across groups), barrier phase 0. *)
let on_group t _wg =
  t.phase <- 0;
  Hashtbl.reset t.locals;
  List.iter
    (fun (name, n) ->
      Hashtbl.replace t.locals name
        {
          lw_phase = Array.make n (-1);
          lw_writer = Array.make n 0;
          lw_written = Bytes.make n '\000';
        })
    t.local_lens

let on_barrier t () = t.phase <- t.phase + 1

let string_starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let launch t (k : Kernel_ast.Cast.kernel) ~args ~global =
  begin_launch t ~kernel:k.name;
  t.local_lens <- local_lens_of k;
  t.phase <- 0;
  Hashtbl.reset t.locals;
  try
    Exec.launch ~hook:(hook t) ~on_workitem:(set_gid t) ~on_group:(on_group t)
      ~on_barrier:(on_barrier t) k ~args ~global
  with
  | Exec.Exec_error { e_context; _ }
    when string_starts_with ~prefix:"barrier divergence" e_context ->
    (* record it like any other violation so callers get the full
       picture from [counts]/[violations] instead of an abort *)
    report t ~buf:"(barrier)" ~idx:0 Barrier_divergence

(* -- Printing --------------------------------------------------------- *)

let pp_gid ppf (x, y, z) = Fmt.pf ppf "(%d,%d,%d)" x y z

let pp_violation ppf v =
  match v.v_kind with
  | Write_race other ->
      Fmt.pf ppf "write-write race: kernel %s, %s[%d] stored by work-items %a and %a"
        v.v_kernel v.v_buf v.v_idx pp_gid other pp_gid v.v_gid
  | Oob_store ->
      Fmt.pf ppf "out-of-bounds store: kernel %s, work-item %a, %s[%d]" v.v_kernel pp_gid
        v.v_gid v.v_buf v.v_idx
  | Oob_load ->
      Fmt.pf ppf "out-of-bounds load: kernel %s, work-item %a, %s[%d]" v.v_kernel pp_gid
        v.v_gid v.v_buf v.v_idx
  | Read_uninit ->
      Fmt.pf ppf "read of uninitialised cell: kernel %s, work-item %a, %s[%d]" v.v_kernel
        pp_gid v.v_gid v.v_buf v.v_idx
  | Local_race other ->
      Fmt.pf ppf
        "local race: kernel %s, __local %s[%d] stored by work-items %a and %a in the \
         same barrier phase"
        v.v_kernel v.v_buf v.v_idx pp_gid other pp_gid v.v_gid
  | Local_read_hazard writer ->
      Fmt.pf ppf
        "missing barrier: kernel %s, work-item %a reads __local %s[%d] stored by %a in \
         the same phase"
        v.v_kernel pp_gid v.v_gid v.v_buf v.v_idx pp_gid writer
  | Local_uninit ->
      Fmt.pf ppf "read of unwritten __local slot: kernel %s, work-item %a, %s[%d]"
        v.v_kernel pp_gid v.v_gid v.v_buf v.v_idx
  | Barrier_divergence ->
      Fmt.pf ppf "barrier divergence: kernel %s, work-item %a reached a barrier other \
                  work-items skipped" v.v_kernel pp_gid v.v_gid

let pp_counts ppf c =
  Fmt.pf ppf "races: %d, out-of-bounds: %d, uninitialised reads: %d" c.n_races c.n_oob
    c.n_uninit;
  if c.n_local > 0 || c.n_barrier > 0 then
    Fmt.pf ppf ", local hazards: %d, barrier divergence: %d" c.n_local c.n_barrier

let pp ppf t =
  if total t.counts = 0 then Fmt.pf ppf "sanitizer: no violations@."
  else begin
    Fmt.pf ppf "sanitizer: %d violation(s) (%a)@." (total t.counts) pp_counts t.counts;
    List.iter (fun v -> Fmt.pf ppf "  %a@." pp_violation v) (violations t);
    if total t.counts > t.n_kept then
      Fmt.pf ppf "  ... %d more not shown@." (total t.counts - t.n_kept)
  end
