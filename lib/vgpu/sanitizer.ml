(* Shadow-memory sanitizer for the reference interpreter.

   Covers the cases the static verifier ([Kernel_ast.Check]) reports as
   Unproven — above all the indirect [next[bidx[i]]] boundary scatters —
   by observing every access through [Exec.access_hook]:

   - write-write races: per cell, the launch epoch and packed gid of the
     last writer; a second store in the same epoch from a different
     work-item is a race (sequential interpretation order would silently
     pick a winner that a real device does not guarantee);
   - out-of-bounds loads/stores, which are additionally suppressed
     (store skipped, load yields 0) so one bad index does not abort the
     run before the full violation picture is collected;
   - reads of never-written cells (neither host-initialised, copied
     into, nor stored by a kernel).

   Shadows are keyed on the physical identity of the underlying arrays,
   not on [Buffer.t] values: the runtime re-wraps arrays in fresh
   [Buffer.F]/[Buffer.I] constructors per resolution, but the storage —
   and therefore the write history — is the array itself. *)

type key =
  | KF of float array
  | KI of int array

let key_of_buffer : Buffer.t -> key = function
  | Buffer.F a -> KF a
  | Buffer.I a -> KI a

let same_key a b =
  match (a, b) with KF x, KF y -> x == y | KI x, KI y -> x == y | _ -> false

type shadow = {
  last_epoch : int array;  (* launch epoch of the last store, 0 = never *)
  last_writer : int array;  (* packed gid of the last store *)
  written : Bytes.t;  (* has the cell ever held a defined value? *)
}

type kind =
  | Write_race of (int * int * int)  (* the earlier writer *)
  | Oob_store
  | Oob_load
  | Read_uninit

type violation = {
  v_kernel : string;
  v_buf : string;
  v_idx : int;
  v_gid : int * int * int;
  v_kind : kind;
}

type counts = { n_races : int; n_oob : int; n_uninit : int }

let no_violations = { n_races = 0; n_oob = 0; n_uninit = 0 }

let add_counts a b =
  {
    n_races = a.n_races + b.n_races;
    n_oob = a.n_oob + b.n_oob;
    n_uninit = a.n_uninit + b.n_uninit;
  }

let total c = c.n_races + c.n_oob + c.n_uninit

type t = {
  mutable shadows : (key * shadow) list;
  mutable epoch : int;
  mutable kernel : string;
  mutable gid : int * int * int;
  mutable counts : counts;
  mutable kept : violation list;  (* newest first, capped *)
  mutable n_kept : int;
  max_kept : int;
}

let create ?(max_kept = 64) () =
  {
    shadows = [];
    epoch = 0;
    kernel = "<none>";
    gid = (0, 0, 0);
    counts = no_violations;
    kept = [];
    n_kept = 0;
    max_kept;
  }

let fresh_shadow ~len ~host_init =
  {
    last_epoch = Array.make len 0;
    last_writer = Array.make len 0;
    written = Bytes.make len (if host_init then '\001' else '\000');
  }

let find t key len ~host_init =
  match List.find_opt (fun (k, _) -> same_key k key) t.shadows with
  | Some (_, s) -> s
  | None ->
      let s = fresh_shadow ~len ~host_init in
      t.shadows <- (key, s) :: t.shadows;
      s

(* A buffer first seen mid-run is assumed host-initialised (no false
   uninit-read reports); [note_alloc] below opts fresh device
   allocations out of that assumption. *)
let shadow_of t buf =
  find t (key_of_buffer buf) (Buffer.length buf) ~host_init:true

let note_host_write t buf =
  let s = find t (key_of_buffer buf) (Buffer.length buf) ~host_init:true in
  Bytes.fill s.written 0 (Bytes.length s.written) '\001'

let note_alloc t buf =
  let key = key_of_buffer buf in
  t.shadows <- List.filter (fun (k, _) -> not (same_key k key)) t.shadows;
  ignore (find t key (Buffer.length buf) ~host_init:false)

let note_blit t buf ~off ~len =
  let s = shadow_of t buf in
  let n = Bytes.length s.written in
  let off = max 0 off in
  let len = min len (n - off) in
  if len > 0 then Bytes.fill s.written off len '\001'

let begin_launch t ~kernel =
  t.epoch <- t.epoch + 1;
  t.kernel <- kernel;
  t.gid <- (0, 0, 0)

let set_gid t gid = t.gid <- gid

let pack (x, y, z) = x lor (y lsl 20) lor (z lsl 40)
let unpack p = (p land 0xfffff, (p lsr 20) land 0xfffff, (p lsr 40) land 0xfffff)

let report t ~buf ~idx kind =
  t.counts <-
    add_counts t.counts
      (match kind with
      | Write_race _ -> { no_violations with n_races = 1 }
      | Oob_store | Oob_load -> { no_violations with n_oob = 1 }
      | Read_uninit -> { no_violations with n_uninit = 1 });
  if t.n_kept < t.max_kept then begin
    t.kept <-
      { v_kernel = t.kernel; v_buf = buf; v_idx = idx; v_gid = t.gid; v_kind = kind }
      :: t.kept;
    t.n_kept <- t.n_kept + 1
  end

let on_store t ~name ~buf ~len ~idx =
  if idx < 0 || idx >= len then begin
    report t ~buf:name ~idx Oob_store;
    false
  end
  else begin
    (match buf with
    | None -> ()  (* private arrays are per-work-item: no race/uninit state *)
    | Some b ->
        let s = shadow_of t b in
        let me = pack t.gid in
        if s.last_epoch.(idx) = t.epoch && s.last_writer.(idx) <> me then
          report t ~buf:name ~idx (Write_race (unpack s.last_writer.(idx)));
        s.last_epoch.(idx) <- t.epoch;
        s.last_writer.(idx) <- me;
        Bytes.set s.written idx '\001');
    true
  end

let on_load t ~name ~buf ~len ~idx =
  if idx < 0 || idx >= len then begin
    report t ~buf:name ~idx Oob_load;
    false
  end
  else begin
    (match buf with
    | None -> ()
    | Some b ->
        let s = shadow_of t b in
        if Bytes.get s.written idx = '\000' then begin
          report t ~buf:name ~idx Read_uninit;
          (* report each uninitialised cell at most once *)
          Bytes.set s.written idx '\001'
        end);
    true
  end

let hook t : Exec.access_hook =
  {
    on_load = (fun ~name ~buf ~len ~idx -> on_load t ~name ~buf ~len ~idx);
    on_store = (fun ~name ~buf ~len ~idx -> on_store t ~name ~buf ~len ~idx);
  }

let counts t = t.counts
let violations t = List.rev t.kept

let launch t (k : Kernel_ast.Cast.kernel) ~args ~global =
  begin_launch t ~kernel:k.name;
  Exec.launch ~hook:(hook t) ~on_workitem:(set_gid t) k ~args ~global

(* -- Printing --------------------------------------------------------- *)

let pp_gid ppf (x, y, z) = Fmt.pf ppf "(%d,%d,%d)" x y z

let pp_violation ppf v =
  match v.v_kind with
  | Write_race other ->
      Fmt.pf ppf "write-write race: kernel %s, %s[%d] stored by work-items %a and %a"
        v.v_kernel v.v_buf v.v_idx pp_gid other pp_gid v.v_gid
  | Oob_store ->
      Fmt.pf ppf "out-of-bounds store: kernel %s, work-item %a, %s[%d]" v.v_kernel pp_gid
        v.v_gid v.v_buf v.v_idx
  | Oob_load ->
      Fmt.pf ppf "out-of-bounds load: kernel %s, work-item %a, %s[%d]" v.v_kernel pp_gid
        v.v_gid v.v_buf v.v_idx
  | Read_uninit ->
      Fmt.pf ppf "read of uninitialised cell: kernel %s, work-item %a, %s[%d]" v.v_kernel
        pp_gid v.v_gid v.v_buf v.v_idx

let pp_counts ppf c =
  Fmt.pf ppf "races: %d, out-of-bounds: %d, uninitialised reads: %d" c.n_races c.n_oob
    c.n_uninit

let pp ppf t =
  if total t.counts = 0 then Fmt.pf ppf "sanitizer: no violations@."
  else begin
    Fmt.pf ppf "sanitizer: %d violation(s) (%a)@." (total t.counts) pp_counts t.counts;
    List.iter (fun v -> Fmt.pf ppf "  %a@." pp_violation v) (violations t);
    if total t.counts > t.n_kept then
      Fmt.pf ppf "  ... %d more not shown@." (total t.counts - t.n_kept)
  end
