(** Bounded LRU cache keyed by content digest.

    Backs the runtime's per-kernel caches (JIT code, optimizer output,
    clean verification verdicts, native binaries): O(1) digest-keyed
    lookup, bounded size with least-recently-used eviction, and
    hit/miss/eviction counters surfaced through [Runtime.stats]. *)

type 'a t

type counters = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_entries : int;  (** current size (at snapshot time) *)
}

val default_capacity : int
(** 128 — far above the distinct-kernel count of any simulation, so
    eviction only triggers under genuinely unbounded kernel streams. *)

val create : ?capacity:int -> string -> 'a t
(** [create label] makes an empty cache; [label] names it in stats.
    @raise Invalid_argument if [capacity < 1]. *)

val label : 'a t -> string

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** Cached value under a digest key, computing (and caching) it on a
    miss; eviction removes the least-recently-used entry when the
    cache is full.  If the computation raises, nothing is cached. *)

val mem : 'a t -> string -> bool
val length : 'a t -> int
val counters : 'a t -> counters

val reset_counters : 'a t -> unit
(** Zero the counters; cached entries are kept. *)

val add_counters : counters -> counters -> counters
val pp_counters : Format.formatter -> counters -> unit
