(* Roofline-style analytic timing model for kernels on the paper's GPUs.

   Predicted kernel time =
     launch overhead
     + max(effective global traffic / effective bandwidth,
           flops / peak flops at the kernel's precision)

   Effective traffic is computed per buffer from the static analysis
   ([Kernel_ast.Analysis]) of the *actual* kernel AST:

   - Small buffers (coefficient tables such as [beta], [BI], [D], [F],
     [DI]) stay cache-resident.  On GCN they are effectively free (scalar
     K$); on Kepler, global loads bypass L1, so repeated loads still pay
     an L2-bandwidth cost.  This asymmetry reproduces the paper's
     observation (§VII-B1) that the LIFT FI-MM kernel — which passes
     [beta] as a buffer where the hand-written kernel holds it in private
     memory — trails the hand-written version on the NVIDIA parts.

   - Indirect (gathered/scattered) accesses, recognised by tainted index
     expressions, are derated by a coalescing efficiency derived from the
     measured contiguity of the boundary-index array:
       eff = elem_bytes/transaction + (1 - elem_bytes/transaction) * contiguity
     Fully contiguous boundaries approach unit efficiency; fully scattered
     ones pay a whole 32-byte transaction per element.  Because the
     [elem_bytes/transaction] floor is lower in single precision, scatter
     hurts single precision relatively more — visible in the paper's
     FI-MM tables, where the single/double runtime gap is smaller than the
     4-vs-8-byte traffic ratio suggests.

   - Affine repeated loads of the same buffer (the 7-point stencil reads
     of [curr]) mostly hit cache; only the leading load plus a small
     per-extra-load miss fraction is charged. *)

open Kernel_ast

type workload = {
  active_points : float;  (* work-items that execute the guarded fast path *)
  buffer_elems : (string * int) list;  (* element count per buffer argument *)
  contiguity : float;  (* fraction of consecutive work-items hitting consecutive addresses *)
  param_values : (string * int) list;  (* scalar params that bound loops *)
  local_size : int;  (* work-group size; the paper hand-tunes this per kernel *)
}

let workload ?(buffer_elems = []) ?(contiguity = 1.0) ?(param_values = []) ?(local_size = 128)
    ~active_points () =
  { active_points; buffer_elems; contiguity; param_values; local_size }

(* Work-group size effects.  Three mechanisms, per the usual GPU folklore
   the paper's hand-tuning exploits:
   - groups below the wavefront width (64 on GCN, 32 on Kepler; we use
     the worst case 64) leave SIMT lanes idle;
   - the last, partially filled group of the launch wastes lanes (the
     "tail", significant only for small launches);
   - very large groups on register-heavy kernels (many flops per point)
     reduce occupancy. *)
let group_efficiency (w : workload) ~flops =
  let ls = float_of_int (max 1 w.local_size) in
  let wave = 64. in
  let lane_eff = if ls >= wave then 1.0 else ls /. wave in
  let groups = Float.max 1. (Float.ceil (w.active_points /. ls)) in
  let tail_eff = w.active_points /. (groups *. ls) in
  let pressure_eff =
    if ls > 128. && flops > 50. then 1. -. (0.1 *. (ls /. 256.)) else 1.0
  in
  Float.min 1. (lane_eff *. tail_eff *. pressure_eff)

type breakdown = {
  bytes_per_point : float;
  flops_per_point : float;
  local_bytes_per_point : float;  (* traffic in the on-chip __local tier *)
  raw_bytes_per_point : float;  (* same measures on the unoptimized AST *)
  raw_flops_per_point : float;
  mem_time_s : float;
  flop_time_s : float;
  local_time_s : float;
  launch_s : float;
  total_s : float;
}

let cache_resident_elems = 16384
let transaction_bytes = 32.
let stencil_extra_load_miss = 0.15

let buffer_bytes (device : Device.t) ~(precision : Cast.precision) ~(w : workload)
    name (a : Analysis.access) =
  let elem_bytes = Analysis.elem_bytes ~precision a.buf_ty in
  let elems =
    match List.assoc_opt name w.buffer_elems with Some n -> n | None -> max_int
  in
  if elems <= cache_resident_elems then
    (* Cache-resident coefficient table: free in GCN's scalar K$ and in
       a CPU's L1; an L2-bandwidth cost on Kepler. *)
    match device.vendor with
    | Amd | Host -> 0.
    | Nvidia -> (a.loads +. a.stores) *. elem_bytes /. device.l2_speedup
  else if a.indirect then
    (* Gather/scatter through boundary indices: consecutive work-items
       hit runs of consecutive addresses (rows of boundary voxels along
       x).  With average run length r = 1/(1-contiguity), each run of
       r*elem_bytes useful data costs roughly one extra transaction of
       overhead, so efficiency = run_bytes / (run_bytes + transaction). *)
    let run =
      if w.contiguity >= 1. then 64. else Float.min 64. (1. /. (1. -. w.contiguity))
    in
    let run_bytes = run *. elem_bytes in
    let eff = run_bytes /. (run_bytes +. transaction_bytes) in
    (a.loads +. a.stores) *. elem_bytes /. eff
  else
    (* Coalesced streaming access; repeated affine loads mostly hit cache. *)
    let eff_loads =
      if a.loads <= 1. then a.loads
      else 1. +. ((a.loads -. 1.) *. stencil_extra_load_miss)
    in
    (eff_loads +. a.stores) *. elem_bytes

(* Static per-point work of [kernel] under [w]:
   (effective global bytes, flops, local-tier bytes).

   Local-memory accesses never touch DRAM — they land in the on-chip
   tier ([Device.local_bw_ratio] times DRAM bandwidth) and are priced as
   a separate roofline term.  A 2.5D-tiled stencil thus shows up as
   fewer global bytes (halo reuse) plus a cheap local component, which
   is exactly why tiling pays on bandwidth-bound kernels. *)
let point_costs (device : Device.t) (kernel : Cast.kernel) (w : workload) =
  let param_value name = List.assoc_opt name w.param_values in
  let counts = Analysis.kernel_counts ~param_value kernel in
  let bytes =
    Analysis.fold_buffers counts
      (fun acc name a -> acc +. buffer_bytes device ~precision:kernel.precision ~w name a)
      0.
  in
  (* __local arrays hold full doubles at either global precision (the
     engines only round on stores to global real buffers). *)
  let local_bytes = Analysis.local_accesses counts *. 8. in
  (bytes, counts.Analysis.flops, local_bytes)

(* Predict the runtime of one launch of [kernel] under [w] on [device].
   The prediction analyses the *optimized* AST — the runtime optimizes
   kernels before dispatch, so that is the code whose operations actually
   execute — while the raw counts are kept alongside so the model's view
   of what optimization saved is inspectable. *)
let predict_breakdown ?unroll_budget (device : Device.t) (kernel : Cast.kernel)
    (w : workload) : breakdown =
  let raw_bytes_per_point, raw_flops_per_point, _ = point_costs device kernel w in
  let opt_kernel, _ = Opt.optimize ?unroll_budget kernel in
  let bytes_per_point, flops_per_point, local_bytes_per_point =
    point_costs device opt_kernel w
  in
  (* an empty launch costs just its overhead — [group_efficiency] is 0
     at 0 points and the time terms would otherwise divide 0 by 0 *)
  let geff =
    if w.active_points <= 0. then 1. else group_efficiency w ~flops:flops_per_point
  in
  let bw = device.mem_bw_gb_s *. 1e9 *. device.mem_efficiency *. geff in
  let mem_time_s = bytes_per_point *. w.active_points /. bw in
  let flop_time_s =
    flops_per_point *. w.active_points
    /. (Device.peak_flops device kernel.precision *. geff)
  in
  (* On a GPU the local tier does not contend with DRAM, so it is a
     third roofline arm rather than an addition to the memory term.  No
     [mem_efficiency] derate: bank conflicts aside, on-chip SRAM runs
     at its rated width.  On the [Host] CPU there is no such tier:
     [__local] staging is ordinary cached traffic through the same
     memory pipeline, so the local term *adds* to the memory term — the
     pricing that gives "tiled slower than flat" its correct sign on
     the native engine (BENCH_PR7). *)
  let local_time_s =
    local_bytes_per_point *. w.active_points
    /. (device.mem_bw_gb_s *. 1e9 *. device.local_bw_ratio *. geff)
  in
  let launch_s = device.launch_overhead_s in
  let total_s =
    match device.vendor with
    | Device.Host -> launch_s +. Float.max (mem_time_s +. local_time_s) flop_time_s
    | Device.Nvidia | Device.Amd ->
        launch_s +. Float.max (Float.max mem_time_s flop_time_s) local_time_s
  in
  {
    bytes_per_point;
    flops_per_point;
    local_bytes_per_point;
    raw_bytes_per_point;
    raw_flops_per_point;
    mem_time_s;
    flop_time_s;
    local_time_s;
    launch_s;
    total_s;
  }

let predict ?unroll_budget device kernel w =
  (predict_breakdown ?unroll_budget device kernel w).total_s

(* -- Measured-time calibration -------------------------------------- *)

(* Per-(device, kernel) multiplicative correction factors learned from
   measurements: the autotuner records measured/predicted ratios and the
   model applies their geometric mean to later predictions, so pruning
   sharpens as measurements accumulate.  The geometric mean is the right
   average for a multiplicative error and is insensitive to the order
   observations arrive in. *)
module Calibration = struct
  type entry = { mutable log_sum : float; mutable samples : int }
  type t = (string, entry) Hashtbl.t

  let create () : t = Hashtbl.create 16
  let key ~device ~kernel_name = device ^ "/" ^ kernel_name

  let observe (t : t) ~device ~kernel_name ~predicted_s ~measured_s =
    if predicted_s > 0. && measured_s > 0. then begin
      let k = key ~device ~kernel_name in
      let e =
        match Hashtbl.find_opt t k with
        | Some e -> e
        | None ->
            let e = { log_sum = 0.; samples = 0 } in
            Hashtbl.replace t k e;
            e
      in
      e.log_sum <- e.log_sum +. Float.log (measured_s /. predicted_s);
      e.samples <- e.samples + 1
    end

  let factor (t : t) ~device ~kernel_name =
    match Hashtbl.find_opt t (key ~device ~kernel_name) with
    | Some e when e.samples > 0 -> Float.exp (e.log_sum /. float_of_int e.samples)
    | _ -> 1.0

  (* Direct entry load, for restoring a persisted correction table. *)
  let set (t : t) ~device ~kernel_name ~log_sum ~samples =
    Hashtbl.replace t (key ~device ~kernel_name) { log_sum; samples }

  let entries (t : t) =
    Hashtbl.fold (fun k e acc -> (k, e.log_sum, e.samples) :: acc) t []
    |> List.sort compare
end

let predict_calibrated ?unroll_budget ?calibration (device : Device.t)
    (kernel : Cast.kernel) (w : workload) =
  let t = predict ?unroll_budget device kernel w in
  match calibration with
  | None -> t
  | Some c ->
      t
      *. Calibration.factor c ~device:device.Device.name
           ~kernel_name:kernel.Cast.name

(* Throughput in the paper's metric: millions of grid-point updates per
   second (shown as gigaelements/s in the figures when divided by 1000). *)
let updates_per_second ~points ~time_s = points /. time_s

(* -- Z-sharded execution -------------------------------------------- *)

(* Halo radius in planes, inferred from the kernel's static stencil
   footprint under the workload's parameter environment: the widest
   per-buffer read radius along the highest-stride axis.  A pointwise
   kernel (radius 0) predicts zero halo traffic; kernels whose reads are
   data-dependent (no inferable radius on any buffer) fall back to the
   one-plane protocol radius. *)
let stencil_radius (kernel : Cast.kernel) (w : workload) =
  let param_value n = List.assoc_opt n w.param_values in
  let buffer_elems n = List.assoc_opt n w.buffer_elems in
  match (param_value "Nx", param_value "Ny") with
  | Some nx, Some ny when nx > 0 && ny > 0 -> (
      let env = Kernel_ast.Check.env ~param_value ~buffer_elems () in
      match Kernel_ast.Footprint.infer ~strides:[| 1; nx; nx * ny |] env kernel with
      | fp ->
          let radius = ref None in
          List.iter
            (fun (fb : Kernel_ast.Footprint.buf) ->
              match Kernel_ast.Footprint.read_radius fp fb.Kernel_ast.Footprint.fb_name with
              | Some r -> radius := Some (max r (Option.value ~default:0 !radius))
              | None -> ())
            fp.Kernel_ast.Footprint.fp_bufs;
          Option.value ~default:1 !radius
      | exception _ -> 1)
  | _ -> 1

(* Bytes crossing device boundaries per time step when the grid is cut
   into [shards] slabs along Z: each of the shards-1 interior cuts swaps
   [radius] XY planes in each direction. *)
let halo_bytes_per_step ~radius ~(precision : Cast.precision) ~plane_elems ~shards =
  let elem = match precision with Cast.Single -> 4 | Cast.Double -> 8 in
  2 * (max 0 (shards - 1)) * radius * plane_elems * elem

(* Predicted per-step kernel time under Z-sharding: the slabs run
   concurrently (each ~1/shards of the points, but still paying the full
   launch overhead), then the halo planes cross the inter-device link.
   [link_gb_s] defaults to a PCIe-3-class 12 GB/s. *)
let predict_sharded ?(link_gb_s = 12.) ?radius (device : Device.t) (kernel : Cast.kernel)
    (w : workload) ~plane_elems ~shards =
  let shards = max 1 shards in
  let radius = match radius with Some r -> r | None -> stencil_radius kernel w in
  let per_shard =
    { w with active_points = w.active_points /. float_of_int shards }
  in
  let compute_s = predict device kernel per_shard in
  let halo_bytes =
    halo_bytes_per_step ~radius ~precision:kernel.Cast.precision ~plane_elems ~shards
  in
  let halo_s = float_of_int halo_bytes /. (link_gb_s *. 1e9) in
  compute_s +. halo_s

(* Predicted per-step time under the overlapped schedule: the volume
   kernel splits into an interior launch plus thin frontier launches, so
   the halo transfer runs concurrently with the interior compute.  The
   per-step critical path is the frontier work (which must wait for the
   previous halo) plus the longer of interior compute and halo
   transfer.  At shards = 1 there is no halo and no split, so the
   prediction coincides with [predict]. *)
let predict_overlapped ?(link_gb_s = 12.) ?radius (device : Device.t) (kernel : Cast.kernel)
    (w : workload) ~plane_elems ~shards =
  let shards = max 1 shards in
  let radius = match radius with Some r -> r | None -> stencil_radius kernel w in
  if shards = 1 then predict device kernel w
  else begin
    let per_shard =
      { w with active_points = w.active_points /. float_of_int shards }
    in
    (* [radius] frontier planes per ghost-adjacent face (two faces per
       interior shard) *)
    let frontier_points =
      Float.min per_shard.active_points (2. *. float_of_int (radius * plane_elems))
    in
    let interior_s =
      predict device kernel
        {
          per_shard with
          active_points = Float.max 0. (per_shard.active_points -. frontier_points);
        }
    in
    let frontier_s =
      predict device kernel { per_shard with active_points = frontier_points }
    in
    let halo_bytes =
      halo_bytes_per_step ~radius ~precision:kernel.Cast.precision ~plane_elems ~shards
    in
    let halo_s = float_of_int halo_bytes /. (link_gb_s *. 1e9) in
    frontier_s +. Float.max interior_s halo_s
  end

(* Predicted per-step time under temporal blocking at depth [tblock]:
   the tradeoff the autotuner's time-block axis searches.  Per block of
   T steps the cut exchanges once — so the per-round transfer latency
   amortises to 1/T — at depth T*r for the new generation plus depth
   (T-1)*r for the previous one (per-step cadence skips the latter up to
   T = 2, where the in-block recompute leaves it valid; fused kernels
   exchange it from T = 2 up), while every in-block launch redundantly
   recomputes the decaying ghost planes: 2*(shards-1)*(T*r - 1) planes
   of extra active points per step.  [kernel] is the per-step kernel
   either way — the model prices work and traffic, which the fused form
   reorganises but does not change.  At T = 1 this is [predict_sharded]
   plus the round-latency term. *)
let predict_blocked ?(link_gb_s = 12.) ?(link_latency_s = 10e-6) ?radius ?(fused = false)
    (device : Device.t) (kernel : Cast.kernel) (w : workload) ~plane_elems ~shards
    ~tblock =
  let shards = max 1 shards and tblock = max 1 tblock in
  let r = match radius with Some r -> r | None -> stencil_radius kernel w in
  let h = tblock * r in
  let cuts = max 0 (shards - 1) in
  let redundant = 2 * cuts * max 0 (h - 1) * plane_elems in
  let per_shard =
    {
      w with
      active_points = (w.active_points /. float_of_int shards) +. float_of_int redundant;
    }
  in
  let compute_s = predict device kernel per_shard in
  let elem = match kernel.Cast.precision with Cast.Single -> 4 | Cast.Double -> 8 in
  let prev_depth = if (if fused then tblock > 1 else tblock > 2) then h - r else 0 in
  let planes_per_block = h + prev_depth in
  let bytes_per_step =
    2. *. float_of_int (cuts * planes_per_block * plane_elems * elem)
    /. float_of_int tblock
  in
  let ops_per_round =
    2. *. float_of_int cuts *. if prev_depth > 0 then 2. else 1.
  in
  let halo_s = bytes_per_step /. (link_gb_s *. 1e9) in
  let latency_s = ops_per_round *. link_latency_s /. float_of_int tblock in
  compute_s +. halo_s +. latency_s

let pp_breakdown ppf b =
  Fmt.pf ppf "bytes/pt=%.1f flops/pt=%.0f mem=%.3fms flop=%.3fms total=%.3fms"
    b.bytes_per_point b.flops_per_point (b.mem_time_s *. 1e3) (b.flop_time_s *. 1e3)
    (b.total_s *. 1e3);
  if b.local_bytes_per_point > 0. then
    Fmt.pf ppf " local(bytes/pt=%.1f %.3fms)" b.local_bytes_per_point
      (b.local_time_s *. 1e3);
  if b.raw_flops_per_point <> b.flops_per_point || b.raw_bytes_per_point <> b.bytes_per_point
  then
    Fmt.pf ppf " (raw: bytes/pt=%.1f flops/pt=%.0f)" b.raw_bytes_per_point
      b.raw_flops_per_point
