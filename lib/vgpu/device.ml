(* GPU device descriptions.

   The four devices are the evaluation platforms of the paper (Table III).
   Bandwidth and single-precision peak come straight from that table;
   the remaining fields are microarchitectural constants used by the
   performance model:

   - [dp_ratio]: double- to single-precision throughput ratio of the chip
     (1/24 for consumer Kepler, 1/3 for TITAN Black in DP mode, 1/4 for
     Tahiti, 1/8 for Hawaii);
   - [mem_efficiency]: achievable fraction of peak bandwidth for streaming
     kernels (STREAM-like efficiency);
   - [small_buf_reload]: cost model for repeated loads from small
     coefficient tables.  GCN parts keep them in the scalar K$ (free);
     Kepler sends global loads through L2, so they retain a bandwidth cost
     at [l2_speedup] times the DRAM bandwidth.  This is what makes the
     hand-written kernel (coefficients in private memory) faster than the
     LIFT kernel (coefficients passed as a buffer) on the NVIDIA parts in
     double precision, as reported in §VII-B1;
   - [local_bw_ratio]: on-chip local-memory (LDS / shared memory)
     bandwidth as a multiple of DRAM bandwidth.  GCN's LDS is banked
     per-CU and roughly an order of magnitude above DRAM; Kepler's
     shared memory is closer to 4-5x.  Tiled kernels that stage a plane
     in [__local] trade DRAM traffic for traffic in this faster tier;
   - [launch_overhead_s]: fixed per-kernel cost as seen by the OpenCL
     profiling API (the paper's timing method), i.e. scheduling and
     drain, not host-side queueing. *)

type vendor =
  | Nvidia
  | Amd
  | Host

type t = {
  name : string;
  vendor : vendor;
  mem_bw_gb_s : float;
  sp_gflops : float;
  dp_ratio : float;
  mem_efficiency : float;
  l2_speedup : float;
  local_bw_ratio : float;
  launch_overhead_s : float;
}

let gtx780 =
  {
    name = "GTX780";
    vendor = Nvidia;
    mem_bw_gb_s = 288.;
    sp_gflops = 3977.;
    dp_ratio = 1. /. 24.;
    mem_efficiency = 0.75;
    l2_speedup = 3.0;
    local_bw_ratio = 4.5;
    launch_overhead_s = 1.5e-6;
  }

let amd7970 =
  {
    name = "AMD7970";
    vendor = Amd;
    mem_bw_gb_s = 288.;
    sp_gflops = 4096.;
    dp_ratio = 1. /. 4.;
    mem_efficiency = 0.72;
    l2_speedup = 3.0;
    local_bw_ratio = 12.0;
    launch_overhead_s = 2e-6;
  }

let titan_black =
  {
    name = "Titan Black";
    vendor = Nvidia;
    mem_bw_gb_s = 337.;
    sp_gflops = 5120.;
    dp_ratio = 1. /. 3.;
    mem_efficiency = 0.75;
    l2_speedup = 3.0;
    local_bw_ratio = 5.0;
    launch_overhead_s = 1.5e-6;
  }

let radeon_r9 =
  {
    name = "RadeonR9";
    vendor = Amd;
    mem_bw_gb_s = 320.;
    sp_gflops = 5733.;
    dp_ratio = 1. /. 8.;
    mem_efficiency = 0.72;
    l2_speedup = 3.0;
    local_bw_ratio = 12.0;
    launch_overhead_s = 2e-6;
  }

(* The machine the native (compiled-C) engine actually runs on: a CPU.
   Not one of the paper's platforms — it exists so measured native times
   are compared against a prediction with CPU cost structure.  The
   decisive difference from the GPUs is the local tier: a CPU has no
   dedicated on-chip local memory, so [__local] staging is ordinary
   cached traffic through the same memory pipeline: the model *adds* the
   local term to the memory term for [Host] instead of treating it as an
   independent roofline arm, and [local_bw_ratio] is a modest
   L2-resident-tile multiplier rather than a GPU LDS one.  This is what
   BENCH_PR7 exposed: pricing the tiled kernel's staging at GTX780's
   4.5x-DRAM shared-memory tier predicted tiling as a ~3% win, while the
   fissioned native loop nest measures 1.6-2x *slower* than flat; with
   this device the predicted tiled/flat ratio is ~1.8, inside the
   measured band. *)
let host =
  {
    name = "Host";
    vendor = Host;
    mem_bw_gb_s = 20.;
    sp_gflops = 50.;
    dp_ratio = 0.5;
    mem_efficiency = 0.6;
    l2_speedup = 3.0;
    local_bw_ratio = 1.8;
    launch_overhead_s = 5e-7;
  }

(* In the order used throughout the paper's evaluation section.  [host]
   is deliberately not in this list: experiments sweeping the paper's
   platforms should not pick up the CPU. *)
let all = [ amd7970; gtx780; radeon_r9; titan_black ]

let peak_flops t (precision : Kernel_ast.Cast.precision) =
  match precision with
  | Single -> t.sp_gflops *. 1e9
  | Double -> t.sp_gflops *. t.dp_ratio *. 1e9

let find name = List.find_opt (fun d -> d.name = name) (all @ [ host ])
