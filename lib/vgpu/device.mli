(** GPU device descriptions.

    The four devices are the paper's evaluation platforms (Table III):
    bandwidth and single-precision peak come from that table; the other
    fields are microarchitectural constants used by the performance
    model. *)

type vendor =
  | Nvidia
  | Amd
  | Host  (** the CPU the native engine compiles for *)

type t = {
  name : string;
  vendor : vendor;
  mem_bw_gb_s : float;     (** peak memory bandwidth, GB/s (Table III) *)
  sp_gflops : float;       (** single-precision peak, GFLOPS (Table III) *)
  dp_ratio : float;        (** double- to single-precision throughput ratio *)
  mem_efficiency : float;  (** achievable fraction of peak bandwidth *)
  l2_speedup : float;
      (** bandwidth multiplier for cache-resident buffers on parts whose
          global loads bypass L1 (Kepler); on GCN such reloads are free *)
  local_bw_ratio : float;
      (** on-chip local-memory (LDS / shared) bandwidth as a multiple of
          DRAM bandwidth; the tier tiled kernels trade DRAM traffic into *)
  launch_overhead_s : float;
      (** fixed per-kernel cost as seen by the OpenCL profiling API *)
}

val gtx780 : t
val amd7970 : t
val titan_black : t
val radeon_r9 : t

val host : t
(** The CPU the native (compiled-C) engine runs on.  Its [__local] tier
    is ordinary cached memory (L2-class [local_bw_ratio]): the model
    adds local-staging traffic to the memory term instead of pricing it
    as a faster independent tier, which is why tiled kernels correctly
    predict {e slower} than flat on the native engine (the BENCH_PR7
    sign error).  Not included in {!all}. *)

val all : t list
(** The four platforms, in the paper's order ([host] excluded). *)

val peak_flops : t -> Kernel_ast.Cast.precision -> float
(** Peak arithmetic throughput in flop/s at a precision. *)

val find : string -> t option
