(* Reference interpreter for kernel ASTs.

   Executes a kernel over an NDRange exactly as an OpenCL device would,
   one work-item at a time.  This is the slow, obviously-correct
   implementation used to cross-validate the JIT ([Jit]) and the Lift
   code generator; benchmarks use the JIT.

   Work-items run sequentially in row-major NDRange order.  The kernels in
   this project never communicate through local memory, so sequential
   execution is observationally equivalent to any parallel schedule as
   long as distinct work-items write distinct locations.  That claim is
   checked rather than assumed: [Kernel_ast.Check] proves it statically
   where it can, and the [hook] below lets [Sanitizer] observe every
   memory access to verify the rest at runtime. *)

open Kernel_ast.Cast

exception
  Exec_error of {
    e_kernel : string;
    e_gid : int * int * int;
    e_context : string;
  }

let () =
  Printexc.register_printer (function
    | Exec_error { e_kernel; e_gid = x, y, z; e_context } ->
        Some
          (Printf.sprintf "Exec_error(kernel %s, work-item (%d,%d,%d): %s)" e_kernel x y z
             e_context)
    | _ -> None)

type access_hook = {
  on_load : name:string -> buf:Buffer.t option -> len:int -> idx:int -> bool;
  on_store : name:string -> buf:Buffer.t option -> len:int -> idx:int -> bool;
}
(* [buf] is the global buffer being accessed ([None] for private
   arrays); [len] its extent.  Returning [false] suppresses the access:
   the store is skipped, the load yields zero.  The current work-item is
   whatever the hook installer last observed via [set_gid]. *)

type value =
  | Vi of int
  | Vr of float

let as_int = function Vi i -> i | Vr r -> int_of_float r
let as_real = function Vr r -> r | Vi i -> float_of_int i

type cell =
  | Scalar of value ref
  | Arr_int of int array
  | Arr_real of float array
  | Global of Buffer.t

type env = {
  cells : (string, cell) Hashtbl.t;
  gid : int array;
  gsize : int array;
  lsize : int array;  (* work-group size; [|1;1;1|] when flat *)
  is_grouped : bool;
  precision : precision;
  kernel : string;
  hook : access_hook option;
}

(* Work-group execution: each work-item of a group runs as a fiber;
   [Barrier] performs this effect, suspending the fiber until every
   sibling has reached the same barrier (all-or-nothing: a group whose
   members disagree on hitting a barrier is divergent and faults). *)
type _ Effect.t += Barrier_hit : unit Effect.t

let error env fmt =
  Printf.ksprintf
    (fun e_context ->
      raise
        (Exec_error
           { e_kernel = env.kernel; e_gid = (env.gid.(0), env.gid.(1), env.gid.(2)); e_context }))
    fmt

let lookup env name =
  match Hashtbl.find_opt env.cells name with
  | Some c -> c
  | None -> error env "unbound name %s" name

let store_round env v = match env.precision with Single -> Buffer.round32 v | Double -> v

let builtin_eval (f : builtin) (args : float list) =
  match (f, args) with
  | Sqrt, [ x ] -> sqrt x
  | Fabs, [ x ] -> Float.abs x
  | Exp, [ x ] -> exp x
  | Log, [ x ] -> log x
  | Sin, [ x ] -> sin x
  | Cos, [ x ] -> cos x
  | Floor, [ x ] -> Float.floor x
  | Fmin, [ x; y ] -> Float.min x y
  | Fmax, [ x; y ] -> Float.max x y
  | _ -> failwith "vgpu interpreter: bad builtin arity"

let allow_load env ~name ~buf ~len ~idx =
  match env.hook with None -> true | Some h -> h.on_load ~name ~buf ~len ~idx

let allow_store env ~name ~buf ~len ~idx =
  match env.hook with None -> true | Some h -> h.on_store ~name ~buf ~len ~idx

let rec eval env (e : expr) : value =
  match e with
  | Int_lit n -> Vi n
  | Real_lit r -> Vr r
  | Global_id d -> Vi env.gid.(d)
  | Global_size d -> Vi env.gsize.(d)
  (* flat model: every work-item is its own singleton group *)
  | Group_id d -> Vi (env.gid.(d) / env.lsize.(d))
  | Local_id d -> Vi (env.gid.(d) mod env.lsize.(d))
  | Local_size d -> Vi env.lsize.(d)
  | Var v -> (
      match lookup env v with
      | Scalar r -> !r
      | Arr_int _ | Arr_real _ | Global _ -> error env "%s used as scalar" v)
  | Load (b, i) -> (
      let idx = as_int (eval env i) in
      match lookup env b with
      | Global buf ->
          if allow_load env ~name:b ~buf:(Some buf) ~len:(Buffer.length buf) ~idx then
            match Buffer.ty buf with
            | Real -> Vr (Buffer.get_real buf idx)
            | Int -> Vi (Buffer.get_int buf idx)
          else Vi 0
      | Arr_int a ->
          if allow_load env ~name:b ~buf:None ~len:(Array.length a) ~idx then Vi a.(idx)
          else Vi 0
      | Arr_real a ->
          if allow_load env ~name:b ~buf:None ~len:(Array.length a) ~idx then Vr a.(idx)
          else Vr 0.
      | Scalar _ -> error env "%s used as array" b)
  | Unop (op, a) -> (
      let v = eval env a in
      match op with
      | Neg -> ( match v with Vi i -> Vi (-i) | Vr r -> Vr (-.r))
      | Not -> Vi (if as_int v = 0 then 1 else 0)
      | To_real -> Vr (as_real v)
      | To_int -> Vi (as_int v)
      | Round -> Vr (Buffer.round32 (as_real v)))
  | Ternary (c, a, b) -> if as_int (eval env c) <> 0 then eval env a else eval env b
  | Call (f, args) -> Vr (builtin_eval f (List.map (fun a -> as_real (eval env a)) args))
  | Binop (op, a, b) -> binop op (eval env a) (eval env b)

and binop op va vb =
  let arith fi fr =
    match (va, vb) with
    | Vi x, Vi y -> Vi (fi x y)
    | _ -> Vr (fr (as_real va) (as_real vb))
  in
  let compare cmp = Vi (if cmp (Stdlib.compare (as_real va) (as_real vb)) 0 then 1 else 0) in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> arith ( / ) ( /. )
  | Mod -> arith (fun x y -> x mod y) Float.rem (* C %, fmod on reals *)
  | Eq -> compare ( = )
  | Ne -> compare ( <> )
  | Lt -> compare ( < )
  | Le -> compare ( <= )
  | Gt -> compare ( > )
  | Ge -> compare ( >= )
  | And -> Vi (if as_int va <> 0 && as_int vb <> 0 then 1 else 0)
  | Or -> Vi (if as_int va <> 0 || as_int vb <> 0 then 1 else 0)
  | Shr -> Vi (as_int va asr as_int vb)
  | BAnd -> Vi (as_int va land as_int vb)

let rec exec_stmt env (s : stmt) =
  match s with
  | Comment _ -> ()
  | Decl (ty, v, init) ->
      let value =
        match init with
        | Some e -> eval env e
        | None -> ( match ty with Int -> Vi 0 | Real -> Vr 0.)
      in
      Hashtbl.replace env.cells v (Scalar (ref value))
  | Decl_arr (ty, v, n) ->
      let cell =
        match ty with Int -> Arr_int (Array.make n 0) | Real -> Arr_real (Array.make n 0.)
      in
      Hashtbl.replace env.cells v cell
  | Decl_local (ty, v, n) ->
      (* grouped: the shared array was allocated (zeroed) at group
         start; the declaration itself is a no-op.  Flat: each
         work-item is its own group, so a fresh array is exactly a
         private one. *)
      if not env.is_grouped then
        Hashtbl.replace env.cells v
          (match ty with
          | Int -> Arr_int (Array.make n 0)
          | Real -> Arr_real (Array.make n 0.))
  | Barrier -> if env.is_grouped then Effect.perform Barrier_hit
  | Assign (v, e) -> (
      match lookup env v with
      | Scalar r -> r := eval env e
      | _ -> error env "assign to non-scalar %s" v)
  | Store (b, i, e) -> (
      let idx = as_int (eval env i) in
      let v = eval env e in
      match lookup env b with
      | Global buf ->
          if allow_store env ~name:b ~buf:(Some buf) ~len:(Buffer.length buf) ~idx then (
            match Buffer.ty buf with
            | Real -> Buffer.set_real buf idx (store_round env (as_real v))
            | Int -> Buffer.set_int buf idx (as_int v))
      | Arr_int a ->
          if allow_store env ~name:b ~buf:None ~len:(Array.length a) ~idx then a.(idx) <- as_int v
      | Arr_real a ->
          if allow_store env ~name:b ~buf:None ~len:(Array.length a) ~idx then
            a.(idx) <- as_real v
      | Scalar _ -> error env "store to scalar %s" b)
  | If (c, t, f) ->
      if as_int (eval env c) <> 0 then List.iter (exec_stmt env) t
      else List.iter (exec_stmt env) f
  | For l ->
      let i = ref (as_int (eval env l.init)) in
      let cell = Scalar (ref (Vi !i)) in
      Hashtbl.replace env.cells l.var cell;
      let bound () = as_int (eval env l.bound) in
      let step () = as_int (eval env l.step) in
      while !i < bound () do
        (match cell with Scalar r -> r := Vi !i | _ -> ());
        List.iter (exec_stmt env) l.body;
        i := !i + step ()
      done

(* Local arrays of a grouped kernel, allocated fresh (zeroed) per group
   and shared by all its work-items. *)
let rec local_decls acc = function
  | [] -> acc
  | Decl_local (ty, v, n) :: rest -> local_decls ((ty, v, n) :: acc) rest
  | If (_, t, f) :: rest -> local_decls (local_decls (local_decls acc t) f) rest
  | For l :: rest -> local_decls (local_decls acc l.body) rest
  | _ :: rest -> local_decls acc rest

(* One scheduling step of a work-item fiber: run until it completes,
   hits a barrier, or raises. *)
type wi_state =
  | Wi_done
  | Wi_barrier of (unit, wi_state) Effect.Deep.continuation

let step_fiber (f : unit -> unit) : wi_state =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> Wi_done);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Barrier_hit ->
              Some (fun (kont : (a, wi_state) Effect.Deep.continuation) -> Wi_barrier kont)
          | _ -> None);
    }

(* Launch [k] over [global] work items (per dimension, row-major).
   [args] are matched positionally against [k.params].

   Grouped kernels run one work-group at a time (groups in row-major
   order, like the flat NDRange loop).  Within a group each work-item is
   a fiber; a [Barrier] suspends it, and when every member of the group
   has suspended they are resumed together in local-id order.  A group
   where some members finish while others wait on a barrier is
   divergent and faults. *)
let launch ?hook ?on_workitem ?on_group ?on_barrier (k : kernel) ~(args : Args.t list)
    ~(global : int list) =
  if List.length args <> List.length k.params then
    invalid_arg
      (Printf.sprintf "vgpu: kernel %s expects %d args, got %d" k.name
         (List.length k.params) (List.length args));
  let gsize = Array.make 3 1 in
  List.iteri (fun d n -> gsize.(d) <- n) global;
  let cells = Hashtbl.create 32 in
  List.iter2
    (fun p (a : Args.t) ->
      match (p.p_kind, a) with
      | Global_buf, Buf b -> Hashtbl.replace cells p.p_name (Global b)
      | Scalar_param, Int_arg i -> Hashtbl.replace cells p.p_name (Scalar (ref (Vi i)))
      | Scalar_param, Real_arg r -> Hashtbl.replace cells p.p_name (Scalar (ref (Vr r)))
      | Scalar_param, Buf _ ->
          invalid_arg (Printf.sprintf "vgpu: %s: buffer passed for scalar %s" k.name p.p_name)
      | Global_buf, (Int_arg _ | Real_arg _) ->
          invalid_arg (Printf.sprintf "vgpu: %s: scalar passed for buffer %s" k.name p.p_name))
    k.params args;
  if not (grouped k) then begin
    let gid = Array.make 3 0 in
    let env =
      {
        cells;
        gid;
        gsize;
        lsize = [| 1; 1; 1 |];
        is_grouped = false;
        precision = k.precision;
        kernel = k.name;
        hook;
      }
    in
    for z = 0 to gsize.(2) - 1 do
      for y = 0 to gsize.(1) - 1 do
        for x = 0 to gsize.(0) - 1 do
          gid.(0) <- x;
          gid.(1) <- y;
          gid.(2) <- z;
          (match on_workitem with Some f -> f (x, y, z) | None -> ());
          try List.iter (exec_stmt env) k.body with
          | Failure msg ->
              raise (Exec_error { e_kernel = k.name; e_gid = (x, y, z); e_context = msg })
          | Invalid_argument msg ->
              raise
                (Exec_error
                   { e_kernel = k.name; e_gid = (x, y, z); e_context = "invalid access: " ^ msg })
        done
      done
    done
  end
  else begin
    let lsize = local3 k in
    let groups = group_counts k ~global:gsize in
    let l0 = lsize.(0) and l1 = lsize.(1) and l2 = lsize.(2) in
    let nwi = l0 * l1 * l2 in
    let locals = local_decls [] k.body in
    let cur_gid = ref (0, 0, 0) in
    let wrap f =
      try f () with
      | Failure msg ->
          raise (Exec_error { e_kernel = k.name; e_gid = !cur_gid; e_context = msg })
      | Invalid_argument msg ->
          raise
            (Exec_error
               { e_kernel = k.name; e_gid = !cur_gid; e_context = "invalid access: " ^ msg })
    in
    for wz = 0 to groups.(2) - 1 do
      for wy = 0 to groups.(1) - 1 do
        for wx = 0 to groups.(0) - 1 do
          (match on_group with Some f -> f (wx, wy, wz) | None -> ());
          (* shared local arrays, fresh (zeroed) per group *)
          let local_cells =
            List.map
              (fun (ty, v, n) ->
                ( v,
                  match (ty : ty) with
                  | Int -> Arr_int (Array.make n 0)
                  | Real -> Arr_real (Array.make n 0.) ))
              locals
          in
          (* one env (private cells) per work-item, sharing buffers,
             scalar-parameter snapshots and the group's local arrays *)
          let envs =
            Array.init nwi (fun lid ->
                let lx = lid mod l0 and ly = lid / l0 mod l1 and lz = lid / (l0 * l1) in
                let wi_cells = Hashtbl.create 32 in
                Hashtbl.iter
                  (fun name cell ->
                    Hashtbl.replace wi_cells name
                      (match cell with Scalar r -> Scalar (ref !r) | c -> c))
                  cells;
                List.iter (fun (v, c) -> Hashtbl.replace wi_cells v c) local_cells;
                {
                  cells = wi_cells;
                  gid = [| (wx * l0) + lx; (wy * l1) + ly; (wz * l2) + lz |];
                  gsize;
                  lsize;
                  is_grouped = true;
                  precision = k.precision;
                  kernel = k.name;
                  hook;
                })
          in
          let notify env =
            let g = (env.gid.(0), env.gid.(1), env.gid.(2)) in
            cur_gid := g;
            match on_workitem with Some f -> f g | None -> ()
          in
          let states =
            Array.map
              (fun env ->
                wrap (fun () ->
                    notify env;
                    step_fiber (fun () -> List.iter (exec_stmt env) k.body)))
              envs
          in
          let divergence () =
            raise
              (Exec_error
                 {
                   e_kernel = k.name;
                   e_gid = !cur_gid;
                   e_context =
                     Printf.sprintf
                       "barrier divergence in work-group (%d,%d,%d): some work-items \
                        finished while others wait at a barrier"
                       wx wy wz;
                 })
          in
          let all p = Array.for_all p states in
          let finished = ref (all (fun s -> s = Wi_done)) in
          while not !finished do
            if not (all (fun s -> s <> Wi_done)) then divergence ();
            (match on_barrier with Some f -> f () | None -> ());
            Array.iteri
              (fun i s ->
                match s with
                | Wi_barrier kont ->
                    states.(i) <-
                      wrap (fun () ->
                          notify envs.(i);
                          Effect.Deep.continue kont ())
                | Wi_done -> assert false)
              states;
            finished := all (fun s -> s = Wi_done)
          done
        done
      done
    done
  end
