(* Reference interpreter for kernel ASTs.

   Executes a kernel over an NDRange exactly as an OpenCL device would,
   one work-item at a time.  This is the slow, obviously-correct
   implementation used to cross-validate the JIT ([Jit]) and the Lift
   code generator; benchmarks use the JIT.

   Work-items run sequentially in row-major NDRange order.  The kernels in
   this project never communicate through local memory, so sequential
   execution is observationally equivalent to any parallel schedule as
   long as distinct work-items write distinct locations.  That claim is
   checked rather than assumed: [Kernel_ast.Check] proves it statically
   where it can, and the [hook] below lets [Sanitizer] observe every
   memory access to verify the rest at runtime. *)

open Kernel_ast.Cast

exception
  Exec_error of {
    e_kernel : string;
    e_gid : int * int * int;
    e_context : string;
  }

let () =
  Printexc.register_printer (function
    | Exec_error { e_kernel; e_gid = x, y, z; e_context } ->
        Some
          (Printf.sprintf "Exec_error(kernel %s, work-item (%d,%d,%d): %s)" e_kernel x y z
             e_context)
    | _ -> None)

type access_hook = {
  on_load : name:string -> buf:Buffer.t option -> len:int -> idx:int -> bool;
  on_store : name:string -> buf:Buffer.t option -> len:int -> idx:int -> bool;
}
(* [buf] is the global buffer being accessed ([None] for private
   arrays); [len] its extent.  Returning [false] suppresses the access:
   the store is skipped, the load yields zero.  The current work-item is
   whatever the hook installer last observed via [set_gid]. *)

type value =
  | Vi of int
  | Vr of float

let as_int = function Vi i -> i | Vr r -> int_of_float r
let as_real = function Vr r -> r | Vi i -> float_of_int i

type cell =
  | Scalar of value ref
  | Arr_int of int array
  | Arr_real of float array
  | Global of Buffer.t

type env = {
  cells : (string, cell) Hashtbl.t;
  gid : int array;
  gsize : int array;
  precision : precision;
  kernel : string;
  hook : access_hook option;
}

let error env fmt =
  Printf.ksprintf
    (fun e_context ->
      raise
        (Exec_error
           { e_kernel = env.kernel; e_gid = (env.gid.(0), env.gid.(1), env.gid.(2)); e_context }))
    fmt

let lookup env name =
  match Hashtbl.find_opt env.cells name with
  | Some c -> c
  | None -> error env "unbound name %s" name

let store_round env v = match env.precision with Single -> Buffer.round32 v | Double -> v

let builtin_eval (f : builtin) (args : float list) =
  match (f, args) with
  | Sqrt, [ x ] -> sqrt x
  | Fabs, [ x ] -> Float.abs x
  | Exp, [ x ] -> exp x
  | Log, [ x ] -> log x
  | Sin, [ x ] -> sin x
  | Cos, [ x ] -> cos x
  | Floor, [ x ] -> Float.floor x
  | Fmin, [ x; y ] -> Float.min x y
  | Fmax, [ x; y ] -> Float.max x y
  | _ -> failwith "vgpu interpreter: bad builtin arity"

let allow_load env ~name ~buf ~len ~idx =
  match env.hook with None -> true | Some h -> h.on_load ~name ~buf ~len ~idx

let allow_store env ~name ~buf ~len ~idx =
  match env.hook with None -> true | Some h -> h.on_store ~name ~buf ~len ~idx

let rec eval env (e : expr) : value =
  match e with
  | Int_lit n -> Vi n
  | Real_lit r -> Vr r
  | Global_id d -> Vi env.gid.(d)
  | Global_size d -> Vi env.gsize.(d)
  | Var v -> (
      match lookup env v with
      | Scalar r -> !r
      | Arr_int _ | Arr_real _ | Global _ -> error env "%s used as scalar" v)
  | Load (b, i) -> (
      let idx = as_int (eval env i) in
      match lookup env b with
      | Global buf ->
          if allow_load env ~name:b ~buf:(Some buf) ~len:(Buffer.length buf) ~idx then
            match Buffer.ty buf with
            | Real -> Vr (Buffer.get_real buf idx)
            | Int -> Vi (Buffer.get_int buf idx)
          else Vi 0
      | Arr_int a ->
          if allow_load env ~name:b ~buf:None ~len:(Array.length a) ~idx then Vi a.(idx)
          else Vi 0
      | Arr_real a ->
          if allow_load env ~name:b ~buf:None ~len:(Array.length a) ~idx then Vr a.(idx)
          else Vr 0.
      | Scalar _ -> error env "%s used as array" b)
  | Unop (op, a) -> (
      let v = eval env a in
      match op with
      | Neg -> ( match v with Vi i -> Vi (-i) | Vr r -> Vr (-.r))
      | Not -> Vi (if as_int v = 0 then 1 else 0)
      | To_real -> Vr (as_real v)
      | To_int -> Vi (as_int v))
  | Ternary (c, a, b) -> if as_int (eval env c) <> 0 then eval env a else eval env b
  | Call (f, args) -> Vr (builtin_eval f (List.map (fun a -> as_real (eval env a)) args))
  | Binop (op, a, b) -> binop op (eval env a) (eval env b)

and binop op va vb =
  let arith fi fr =
    match (va, vb) with
    | Vi x, Vi y -> Vi (fi x y)
    | _ -> Vr (fr (as_real va) (as_real vb))
  in
  let compare cmp = Vi (if cmp (Stdlib.compare (as_real va) (as_real vb)) 0 then 1 else 0) in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> arith ( / ) ( /. )
  | Mod -> arith (fun x y -> x mod y) Float.rem (* C %, fmod on reals *)
  | Eq -> compare ( = )
  | Ne -> compare ( <> )
  | Lt -> compare ( < )
  | Le -> compare ( <= )
  | Gt -> compare ( > )
  | Ge -> compare ( >= )
  | And -> Vi (if as_int va <> 0 && as_int vb <> 0 then 1 else 0)
  | Or -> Vi (if as_int va <> 0 || as_int vb <> 0 then 1 else 0)
  | Shr -> Vi (as_int va asr as_int vb)
  | BAnd -> Vi (as_int va land as_int vb)

let rec exec_stmt env (s : stmt) =
  match s with
  | Comment _ -> ()
  | Decl (ty, v, init) ->
      let value =
        match init with
        | Some e -> eval env e
        | None -> ( match ty with Int -> Vi 0 | Real -> Vr 0.)
      in
      Hashtbl.replace env.cells v (Scalar (ref value))
  | Decl_arr (ty, v, n) ->
      let cell =
        match ty with Int -> Arr_int (Array.make n 0) | Real -> Arr_real (Array.make n 0.)
      in
      Hashtbl.replace env.cells v cell
  | Assign (v, e) -> (
      match lookup env v with
      | Scalar r -> r := eval env e
      | _ -> error env "assign to non-scalar %s" v)
  | Store (b, i, e) -> (
      let idx = as_int (eval env i) in
      let v = eval env e in
      match lookup env b with
      | Global buf ->
          if allow_store env ~name:b ~buf:(Some buf) ~len:(Buffer.length buf) ~idx then (
            match Buffer.ty buf with
            | Real -> Buffer.set_real buf idx (store_round env (as_real v))
            | Int -> Buffer.set_int buf idx (as_int v))
      | Arr_int a ->
          if allow_store env ~name:b ~buf:None ~len:(Array.length a) ~idx then a.(idx) <- as_int v
      | Arr_real a ->
          if allow_store env ~name:b ~buf:None ~len:(Array.length a) ~idx then
            a.(idx) <- as_real v
      | Scalar _ -> error env "store to scalar %s" b)
  | If (c, t, f) ->
      if as_int (eval env c) <> 0 then List.iter (exec_stmt env) t
      else List.iter (exec_stmt env) f
  | For l ->
      let i = ref (as_int (eval env l.init)) in
      let cell = Scalar (ref (Vi !i)) in
      Hashtbl.replace env.cells l.var cell;
      let bound () = as_int (eval env l.bound) in
      let step () = as_int (eval env l.step) in
      while !i < bound () do
        (match cell with Scalar r -> r := Vi !i | _ -> ());
        List.iter (exec_stmt env) l.body;
        i := !i + step ()
      done

(* Launch [k] over [global] work items (per dimension, row-major).
   [args] are matched positionally against [k.params]. *)
let launch ?hook ?on_workitem (k : kernel) ~(args : Args.t list) ~(global : int list) =
  if List.length args <> List.length k.params then
    invalid_arg
      (Printf.sprintf "vgpu: kernel %s expects %d args, got %d" k.name
         (List.length k.params) (List.length args));
  let gsize = Array.make 3 1 in
  List.iteri (fun d n -> gsize.(d) <- n) global;
  let gid = Array.make 3 0 in
  let cells = Hashtbl.create 32 in
  List.iter2
    (fun p (a : Args.t) ->
      match (p.p_kind, a) with
      | Global_buf, Buf b -> Hashtbl.replace cells p.p_name (Global b)
      | Scalar_param, Int_arg i -> Hashtbl.replace cells p.p_name (Scalar (ref (Vi i)))
      | Scalar_param, Real_arg r -> Hashtbl.replace cells p.p_name (Scalar (ref (Vr r)))
      | Scalar_param, Buf _ ->
          invalid_arg (Printf.sprintf "vgpu: %s: buffer passed for scalar %s" k.name p.p_name)
      | Global_buf, (Int_arg _ | Real_arg _) ->
          invalid_arg (Printf.sprintf "vgpu: %s: scalar passed for buffer %s" k.name p.p_name))
    k.params args;
  let env = { cells; gid; gsize; precision = k.precision; kernel = k.name; hook } in
  for z = 0 to gsize.(2) - 1 do
    for y = 0 to gsize.(1) - 1 do
      for x = 0 to gsize.(0) - 1 do
        gid.(0) <- x;
        gid.(1) <- y;
        gid.(2) <- z;
        (match on_workitem with Some f -> f (x, y, z) | None -> ());
        try List.iter (exec_stmt env) k.body with
        | Failure msg ->
            raise (Exec_error { e_kernel = k.name; e_gid = (x, y, z); e_context = msg })
        | Invalid_argument msg ->
            raise
              (Exec_error
                 { e_kernel = k.name; e_gid = (x, y, z); e_context = "invalid access: " ^ msg })
      done
    done
  done
