(* Asynchronous per-device command queues for the virtual GPU.

   Each queue owns one OCaml domain that drains a FIFO of commands, the
   shape of an in-order OpenCL command queue.  Cross-queue ordering is
   expressed with explicit event objects: a command lists the events it
   waits on and may signal one when it retires, so an exchange waits
   only on the producing launches (same-queue FIFO order) and its
   consumer waits only on the exchange — never on unrelated devices.

   Timing is *virtual*.  The host this repo targets may expose a single
   core, so wall-clock overlap is not observable; instead every queue
   advances a virtual clock (nanoseconds) by each command's duration —
   measured wall time for launches, a modeled cost for exchanges — and a
   waiting command starts no earlier than the [ready_at] stamp of the
   events it waits on.  A process-wide execution lock runs one command
   body at a time, so the measured durations are clean single-command
   times (this is how a performance-model simulator must measure; it
   does not change results, which depend only on the event order).  The
   overlapped time of a schedule is then the critical path:
   [max over queues of vclock], versus the sequential sum. *)

type event = {
  ev_id : int;
  mutable fired : bool;
  mutable ready_at : float;  (* virtual ns when the signaling cmd retired *)
  em : Mutex.t;
  ecv : Condition.t;
}

type cmd = {
  c_label : string;
  c_waits : event list;
  c_signal : event option;
  c_vcost : float option;  (* virtual ns; [None] = use measured wall time *)
  c_run : unit -> unit;
}

type stats = {
  q_vclock : float;  (* virtual ns at which the queue's last cmd retired *)
  q_vspan_ns : float;  (* vclock advance since the last reset *)
  q_busy_ns : float;  (* sum of command durations since reset *)
  q_enqueued : int;  (* commands accepted since reset *)
  q_depth_hw : int;  (* high-water mark of pending commands *)
}

type t = {
  q : cmd Stdlib.Queue.t;
  m : Mutex.t;
  arrive : Condition.t;  (* signals a command (or stop) to the worker *)
  drained : Condition.t;  (* signals pending = 0 to [finish] *)
  mutable pending : int;
  mutable vclock : float;
  mutable vbase : float;  (* vclock at the last stats reset *)
  mutable busy_ns : float;
  mutable enqueued : int;
  mutable depth_hw : int;
  mutable err : exn option;  (* first command failure, kept for [finish] *)
  mutable stop : bool;
  mutable dom : unit Domain.t option;
}

let next_event_id = Atomic.make 0

let fresh_event () =
  {
    ev_id = Atomic.fetch_and_add next_event_id 1;
    fired = false;
    ready_at = 0.;
    em = Mutex.create ();
    ecv = Condition.create ();
  }

let signal_event ev ~at =
  Mutex.lock ev.em;
  ev.ready_at <- at;
  ev.fired <- true;
  Condition.broadcast ev.ecv;
  Mutex.unlock ev.em

(* Block until [ev] fires; return its retirement stamp.  Safe from any
   queue's worker: waits reference only events created by earlier
   submissions, so the dependence graph is acyclic, and a signaling
   command always fires its event — even when skipped after an error —
   so no waiter is stranded. *)
let await_event ev =
  Mutex.lock ev.em;
  while not ev.fired do
    Condition.wait ev.ecv ev.em
  done;
  let at = ev.ready_at in
  Mutex.unlock ev.em;
  at

(* One command body at a time, process-wide, so measured durations are
   not inflated by preemption between queues. *)
let exec_lock = Mutex.create ()

let worker_loop (t : t) =
  let rec loop () =
    Mutex.lock t.m;
    while Stdlib.Queue.is_empty t.q && not t.stop do
      Condition.wait t.arrive t.m
    done;
    if Stdlib.Queue.is_empty t.q then Mutex.unlock t.m (* stop requested *)
    else begin
      let c = Stdlib.Queue.pop t.q in
      let poisoned = t.err <> None in
      Mutex.unlock t.m;
      (* Wait dependencies first, outside the execution lock. *)
      let deps_ready = List.fold_left (fun acc ev -> Float.max acc (await_event ev)) 0. c.c_waits in
      let dur_ns =
        if poisoned then Option.value c.c_vcost ~default:0.
        else begin
          Mutex.lock exec_lock;
          let t0 = Unix.gettimeofday () in
          let err = try c.c_run (); None with e -> Some e in
          let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
          Mutex.unlock exec_lock;
          (match err with
          | Some e ->
              Mutex.lock t.m;
              if t.err = None then t.err <- Some e;
              Mutex.unlock t.m
          | None -> ());
          Option.value c.c_vcost ~default:wall_ns
        end
      in
      Mutex.lock t.m;
      let start_v = Float.max t.vclock deps_ready in
      t.vclock <- start_v +. dur_ns;
      t.busy_ns <- t.busy_ns +. dur_ns;
      let at = t.vclock in
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.drained;
      Mutex.unlock t.m;
      (* Fire after the clock update so waiters see the retirement
         stamp; fire even on the error path so no consumer deadlocks. *)
      Option.iter (fun ev -> signal_event ev ~at) c.c_signal;
      loop ()
    end
  in
  loop ()

let create () =
  let t =
    {
      q = Stdlib.Queue.create ();
      m = Mutex.create ();
      arrive = Condition.create ();
      drained = Condition.create ();
      pending = 0;
      vclock = 0.;
      vbase = 0.;
      busy_ns = 0.;
      enqueued = 0;
      depth_hw = 0;
      err = None;
      stop = false;
      dom = None;
    }
  in
  t.dom <- Some (Domain.spawn (fun () -> worker_loop t));
  t

let enqueue t c =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Vgpu.Queue.enqueue: queue is shut down"
  end;
  Stdlib.Queue.push c t.q;
  t.pending <- t.pending + 1;
  t.enqueued <- t.enqueued + 1;
  if t.pending > t.depth_hw then t.depth_hw <- t.pending;
  Condition.signal t.arrive;
  Mutex.unlock t.m

(* Drain the queue; re-raise the first command failure, once. *)
let finish t =
  Mutex.lock t.m;
  while t.pending > 0 do
    Condition.wait t.drained t.m
  done;
  let e = t.err in
  t.err <- None;
  Mutex.unlock t.m;
  match e with Some e -> raise e | None -> ()

let vclock t =
  Mutex.lock t.m;
  let v = t.vclock in
  Mutex.unlock t.m;
  v

let stats t =
  Mutex.lock t.m;
  let s =
    {
      q_vclock = t.vclock;
      q_vspan_ns = t.vclock -. t.vbase;
      q_busy_ns = t.busy_ns;
      q_enqueued = t.enqueued;
      q_depth_hw = t.depth_hw;
    }
  in
  Mutex.unlock t.m;
  s

(* Advance the virtual clock to [at] (never backwards): lets a caller
   owning several queues re-align their timelines before a measurement
   interval, so cross-queue skew left by earlier work doesn't distort
   the critical path.  Only meaningful on a drained queue. *)
let align t ~at =
  Mutex.lock t.m;
  if at > t.vclock then t.vclock <- at;
  Mutex.unlock t.m

(* Counters reset; the virtual clock keeps running (callers measure
   intervals as vclock deltas, like a device timestamp counter). *)
let reset_stats t =
  Mutex.lock t.m;
  t.vbase <- t.vclock;
  t.busy_ns <- 0.;
  t.enqueued <- 0;
  t.depth_hw <- 0;
  Mutex.unlock t.m

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.arrive;
  Mutex.unlock t.m;
  (match t.dom with Some d -> Domain.join d | None -> ());
  t.dom <- None

(* -- Process-wide registry ------------------------------------------- *)

(* Domains are heavyweight and capped, so queues are shared by device
   index across every [Multi] instance in the process (one simulation
   drives them at a time; [finish] fully drains between users), grown on
   demand and shut down from at_exit. *)

let registry : t list ref = ref []
let reg_m = Mutex.create ()

let global i =
  if i < 0 then invalid_arg "Vgpu.Queue.global: negative index";
  Mutex.lock reg_m;
  while List.length !registry <= i do
    registry := !registry @ [ create () ]
  done;
  let q = List.nth !registry i in
  Mutex.unlock reg_m;
  q

(* The queue for device [i] if one was ever spawned — stats queries must
   not spawn domains as a side effect. *)
let global_opt i =
  Mutex.lock reg_m;
  let q = List.nth_opt !registry i in
  Mutex.unlock reg_m;
  q

let shutdown_all () =
  Mutex.lock reg_m;
  let qs = !registry in
  registry := [];
  Mutex.unlock reg_m;
  List.iter shutdown qs

let () = at_exit shutdown_all
