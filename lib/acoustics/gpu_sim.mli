(** Drive a room-acoustics simulation through the virtual GPU.

    Kernel arguments are resolved by parameter name against the live
    simulation state, so the same driver runs the hand-written kernels
    and the Lift-generated kernels (both follow the paper's naming
    convention: prev/curr/next grids, bidx/nbrs/material boundary data,
    beta/beta_fd/bi/d/f/di coefficient tables, g1/v1/v2 branch state,
    and the scalars Nx/Ny/Nz/NxNy/N/nB/NM/MB/l/l2/beta).

    Launches go through a {!Vgpu.Runtime}, which provides the engine
    choice, the JIT cache and per-kernel launch statistics.

    With [create ~shards:n] the driver runs Z-sharded instead: the grid
    is cut into slabs ({!Shard.plan}), one {!Vgpu.Multi} device per
    slab, with a ghost-plane halo exchange on [next] between the kernel
    launches and the buffer rotation of every step.  Results are
    bit-for-bit identical to the single-device engines; the global
    [state] is re-assembled on {!sync}.  The sharded path applies to the
    nbrs-driven kernels (volume + boundary_fi / boundary_fi_mm /
    boundary_fd_mm); the fused Listing-1 kernel derives its boundary
    mask from global coordinates and only runs unsharded. *)

type engine =
  [ `Interp  (** reference interpreter *)
  | `Jit  (** sequential JIT *)
  | `Jit_parallel of int  (** JIT over this many OCaml domains *)
  | `Native  (** compiled-C backend, loaded via [dlopen] *) ]

(** How a sharded step is scheduled:

    - [`Seq]: devices run strictly one after another on the host thread;
    - [`Concurrent]: devices step through {!Vgpu.Pool.global}
      (wall-clock parallel) with a per-step barrier at the halo
      exchange;
    - [`Overlap]: per-device {!Vgpu.Queue} command queues with event
      dependencies — each volume kernel splits into an interior launch
      plus thin frontier launches ({!Shard.split_ranges}) so the halo
      exchanges overlap interior compute, and steps pipeline with no
      per-step barrier (queues drain on {!sync}/{!read}/stats access).

    All three schedules are bit-for-bit identical. *)
type schedule = [ `Seq | `Concurrent | `Overlap ]

type backend =
  | Single of Vgpu.Runtime.t  (** one device holding the global arrays *)
  | Sharded of {
      multi : Vgpu.Multi.t;
      plan : Shard.plan;
      sstates : Shard.shard_state array;
      schedule : schedule;
      tblock : int;  (** temporal block depth T = the shards' halo *)
      mutable bpos : int;  (** position within the current block, 0..T-1 *)
      mutable scattered : bool;
          (** the global state has been distributed to the shards *)
      mutable ov_eid : int;  (** next fresh overlap event id *)
      mutable ov_inc : (int list * int list) array;
          (** per device: the previous block's exchange events into its
              (bottom, top) ghost zone *)
      mutable ov_imports : (int * Vgpu.Queue.event) list;
          (** events exported by the last async submit *)
      mutable ov_fired : int list;
          (** fired event ids for deterministic replay *)
      mutable ranged : (Kernel_ast.Cast.kernel * Kernel_ast.Cast.kernel) list;
          (** cache: volume kernel -> its ranged-launch variant *)
    }

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (** single-material admittance for the FI kernels *)
  engine : engine;
  precision : Kernel_ast.Cast.precision;
  req_tblock : int;  (** requested temporal block depth *)
  backend : backend;
  mutable launches : int;
}

val create :
  ?engine:engine ->
  ?optimize:bool ->
  ?unroll_budget:int ->
  ?fi_beta:float ->
  ?materials:Material.t array ->
  ?n_branches:int ->
  ?shards:int ->
  ?schedule:schedule ->
  ?precision:Kernel_ast.Cast.precision ->
  ?tblock:int ->
  ?verify:bool ->
  ?sanitize:bool ->
  Params.t ->
  Geometry.room ->
  t
(** [shards] selects the sharded backend ([~shards:1] exercises the
    sharded machinery on a single slab; omitting it keeps the original
    single-device path).  [schedule] picks the sharded step schedule;
    the default is [`Concurrent], except under [`Jit_parallel] (whose
    launches already occupy the pool) where it is [`Seq].  [`Overlap]
    with [~sanitize:true] falls back to [`Seq] — checked execution needs
    deterministic scheduling (use {!step_overlap_with} to sanitize an
    overlapped interleaving).  [optimize] (default [true]) is forwarded to the
    underlying runtimes: launched kernels pass through the
    {!module:Kernel_ast.Opt} pipeline before dispatch.  [precision]
    (default [Double]) sets the transfer-accounting element width of the
    underlying runtimes.  [tblock] (default 1) is the temporal block
    depth T: sharded runs allocate depth-T ghost zones, recompute the
    inner T-1 ghost planes redundantly each step, and exchange halos
    once per block of T steps instead of every step — bit-identical to
    T = 1 (clamped to the thinnest slab; see {!tblock} for the effective
    value).  [verify] and [sanitize] are forwarded to every runtime:
    fail-fast static verification of each launch, and shadow-memory
    checked execution (see {!Vgpu.Runtime.create}). *)

val tblock : t -> int
(** The effective temporal block depth: the requested [tblock] clamped
    by the thinnest slab when sharded. *)

val check_env : t -> Kernel_ast.Check.env
(** Static-verification environment mirroring this simulation's argument
    resolution (scalars as {!launch} would pass them, buffer extents
    from the live arrays). *)

val sanitizers : t -> Vgpu.Sanitizer.t list
(** One sanitizer per device when created with [~sanitize:true]. *)

val violations : t -> Vgpu.Sanitizer.counts option
(** Aggregate dynamic-violation counts ([Some] iff sanitizing). *)

val n_shards : t -> int
(** 1 on a single device, the (clamped) slab count when sharded. *)

val launch : t -> Kernel_ast.Cast.kernel -> unit
(** Launch one kernel against the current state (JIT-cached per kernel);
    on every shard, sequentially, when sharded.
    @raise Failure on unknown parameter names. *)

val stats : t -> Vgpu.Runtime.stats
(** Per-kernel launch statistics accumulated so far (see
    {!Vgpu.Runtime.pp_stats}); the cross-device aggregate when sharded,
    including halo bytes in [s_d2d_bytes]. *)

val per_shard_stats : t -> (int * Vgpu.Runtime.stats) list
(** One entry per device; a single [(0, stats)] on a single device. *)

val pp_stats : Format.formatter -> t -> unit
(** The stats report: aggregate plus per-device blocks when sharded. *)

val step : t -> Kernel_ast.Cast.kernel list -> unit
(** One time step: run the kernels in order, then rotate the buffers.
    Sharded: kernels per shard (per the configured {!type:schedule});
    at a block boundary — every step when [tblock] is 1 — the deep halo
    exchange of the freshly written ghost zones ([next] at depth T,
    [curr] at depth T-1 when T > 2, plus the ghost branch-state slices
    for FD-MM);
    local rotations every step.  A kernel list containing a fused
    T-step kernel ({!Programs.blocked_volume} naming convention)
    advances T generations per call: every call is a whole block and
    the rotation is the four-buffer fused one.  Under [`Overlap] the
    step is submitted asynchronously and may still be in flight when
    [step] returns; any host-side observation ({!sync}, {!read},
    {!stats}, ...) drains the queues first.
    @raise Invalid_argument if a fused kernel's depth differs from the
    shards' halo depth. *)

val fused_depth : Kernel_ast.Cast.kernel list -> int option
(** The fused depth of a kernel sequence (from the [blocked…_t<T>] name
    convention); [None] for per-step kernel sequences. *)

val drain : t -> unit
(** Wait for all queued async work (no-op on a single device or when the
    overlapped schedule was never used).
    @raise e the first queued command's exception, if any failed. *)

val step_overlap_with :
  ?pick:(int -> int) -> t -> Kernel_ast.Cast.kernel list -> unit
(** One overlapped time step replayed deterministically on the calling
    domain: the same event graph as [`Overlap], executed in the legal
    queue interleaving chosen by [pick] (see
    {!Vgpu.Multi.run_async_with}); works under [~sanitize:true].  Do not
    mix with [`Overlap] steps on the same simulation. *)

val overlap_plan :
  t -> Kernel_ast.Cast.kernel list -> steps:int -> Vgpu.Multi.async_plan
(** The async plan of [steps] overlapped time steps, for static analysis
    ({!Lift.Lint.check_async} via [racs check]).  Buffer rotation
    appears as explicit per-device [Swap] pairs so the linter can track
    buffer identities across steps.  Event ids start at 0: build on a
    dedicated simulation, not mid-run.
    @raise Invalid_argument on a single-device backend. *)

val step_plan :
  t -> Kernel_ast.Cast.kernel list -> steps:int -> Vgpu.Multi.plan
(** The synchronous plan of [steps] sequential sharded time steps,
    mirroring what {!step} executes under [`Seq]/[`Concurrent]:
    per-device launches with resolved arguments, the halo exchange of
    [next], and the buffer rotation as explicit per-device [Swap] pairs.
    For static analysis ({!Lift.Lint.verify_plan} via [racs check]).
    @raise Invalid_argument on a single-device backend. *)

val slab_geometry : t -> int * int * int array
(** [(nx, ny, planes)] of the sharded backend: the XY plane dimensions
    and each device's slab depth in planes, ghost planes included — the
    geometry {!Lift.Lint.verify_plan} interprets plans against.
    @raise Invalid_argument on a single-device backend. *)

val reset_stats : t -> unit
(** Drain, then zero the launch/transfer counters and re-align the
    device queues' virtual clocks, so a measurement interval starts
    clean. *)

val schedule : t -> schedule option
(** The sharded schedule in effect ([None] on a single device). *)

val overlap_vclock_ns : t -> float
(** Drains, then returns the virtual critical path in ns across this
    simulation's device queues — the longest per-queue virtual clock
    (see {!Vgpu.Queue}).  [0.] on a single device or when the overlapped
    schedule was never used. *)

val overlap_stats : t -> Vgpu.Multi.overlap_stats option
(** Drains, then returns aggregate queue statistics (total busy time vs
    critical path and the overlap saving); [None] on a single device. *)

(** Static per-step cost profile of the temporal-blocking tradeoff. *)
type blocked_stats = {
  bs_tblock : int;  (** effective block depth T *)
  bs_exchanges_per_step : float;  (** d2d copy ops per time step *)
  bs_halo_bytes_per_step : float;  (** d2d bytes per time step *)
  bs_redundant_points : int;
      (** ghost points with real geometry, recomputed redundantly on
          every in-block step, summed across shards *)
}

val blocked_stats : t -> Kernel_ast.Cast.kernel list -> blocked_stats option
(** The temporal-blocking cost profile of this simulation's block
    exchange plan for the given kernel sequence; [None] on a single
    device. *)

val sync : t -> unit
(** Gather the sharded slabs back into [state] (no-op on a single
    device, where [state] is live). *)

val read : t -> x:int -> y:int -> z:int -> float
(** The current field at a grid point, wherever it lives — the sharded
    equivalent of {!State.read}. *)

val run :
  t -> Kernel_ast.Cast.kernel list -> steps:int -> receiver:int * int * int -> float array
(** Run [steps] steps recording the field at the receiver after each. *)
