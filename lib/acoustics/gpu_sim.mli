(** Drive a room-acoustics simulation through the virtual GPU.

    Kernel arguments are resolved by parameter name against the live
    simulation state, so the same driver runs the hand-written kernels
    and the Lift-generated kernels (both follow the paper's naming
    convention: prev/curr/next grids, bidx/nbrs/material boundary data,
    beta/beta_fd/bi/d/f/di coefficient tables, g1/v1/v2 branch state,
    and the scalars Nx/Ny/Nz/NxNy/N/nB/NM/MB/l/l2/beta).

    Launches go through a {!Vgpu.Runtime}, which provides the engine
    choice, the JIT cache and per-kernel launch statistics. *)

type engine =
  [ `Interp  (** reference interpreter *)
  | `Jit  (** sequential JIT *)
  | `Jit_parallel of int  (** JIT over this many OCaml domains *) ]

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (** single-material admittance for the FI kernels *)
  engine : engine;
  rt : Vgpu.Runtime.t;
  mutable launches : int;
}

val create :
  ?engine:engine ->
  ?fi_beta:float ->
  ?materials:Material.t array ->
  ?n_branches:int ->
  Params.t ->
  Geometry.room ->
  t

val launch : t -> Kernel_ast.Cast.kernel -> unit
(** Launch one kernel against the current state (JIT-cached per kernel).
    @raise Failure on unknown parameter names. *)

val stats : t -> Vgpu.Runtime.stats
(** Per-kernel launch statistics accumulated so far (see
    {!Vgpu.Runtime.pp_stats}). *)

val step : t -> Kernel_ast.Cast.kernel list -> unit
(** One time step: run the kernels in order, then rotate the buffers. *)

val run :
  t -> Kernel_ast.Cast.kernel list -> steps:int -> receiver:int * int * int -> float array
(** Run [steps] steps recording the field at the receiver after each. *)
