(** Drive a room-acoustics simulation through the virtual GPU.

    Kernel arguments are resolved by parameter name against the live
    simulation state, so the same driver runs the hand-written kernels
    and the Lift-generated kernels (both follow the paper's naming
    convention: prev/curr/next grids, bidx/nbrs/material boundary data,
    beta/beta_fd/bi/d/f/di coefficient tables, g1/v1/v2 branch state,
    and the scalars Nx/Ny/Nz/NxNy/N/nB/NM/MB/l/l2/beta).

    Launches go through a {!Vgpu.Runtime}, which provides the engine
    choice, the JIT cache and per-kernel launch statistics.

    With [create ~shards:n] the driver runs Z-sharded instead: the grid
    is cut into slabs ({!Shard.plan}), one {!Vgpu.Multi} device per
    slab, with a ghost-plane halo exchange on [next] between the kernel
    launches and the buffer rotation of every step.  Results are
    bit-for-bit identical to the single-device engines; the global
    [state] is re-assembled on {!sync}.  The sharded path applies to the
    nbrs-driven kernels (volume + boundary_fi / boundary_fi_mm /
    boundary_fd_mm); the fused Listing-1 kernel derives its boundary
    mask from global coordinates and only runs unsharded. *)

type engine =
  [ `Interp  (** reference interpreter *)
  | `Jit  (** sequential JIT *)
  | `Jit_parallel of int  (** JIT over this many OCaml domains *) ]

type backend =
  | Single of Vgpu.Runtime.t  (** one device holding the global arrays *)
  | Sharded of {
      multi : Vgpu.Multi.t;
      plan : Shard.plan;
      sstates : Shard.shard_state array;
      concurrent : bool;
          (** step the shards through {!Vgpu.Pool.global}; disabled under
              [`Jit_parallel], whose launches already occupy the pool *)
      mutable scattered : bool;
          (** the global state has been distributed to the shards *)
    }

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (** single-material admittance for the FI kernels *)
  engine : engine;
  backend : backend;
  mutable launches : int;
}

val create :
  ?engine:engine ->
  ?optimize:bool ->
  ?fi_beta:float ->
  ?materials:Material.t array ->
  ?n_branches:int ->
  ?shards:int ->
  ?precision:Kernel_ast.Cast.precision ->
  ?verify:bool ->
  ?sanitize:bool ->
  Params.t ->
  Geometry.room ->
  t
(** [shards] selects the sharded backend ([~shards:1] exercises the
    sharded machinery on a single slab; omitting it keeps the original
    single-device path).  [optimize] (default [true]) is forwarded to the
    underlying runtimes: launched kernels pass through the
    {!module:Kernel_ast.Opt} pipeline before dispatch.  [precision]
    (default [Double]) sets the transfer-accounting element width of the
    underlying runtimes.  [verify] and [sanitize] are forwarded to every
    runtime: fail-fast static verification of each launch, and
    shadow-memory checked execution (see {!Vgpu.Runtime.create}). *)

val check_env : t -> Kernel_ast.Check.env
(** Static-verification environment mirroring this simulation's argument
    resolution (scalars as {!launch} would pass them, buffer extents
    from the live arrays). *)

val sanitizers : t -> Vgpu.Sanitizer.t list
(** One sanitizer per device when created with [~sanitize:true]. *)

val violations : t -> Vgpu.Sanitizer.counts option
(** Aggregate dynamic-violation counts ([Some] iff sanitizing). *)

val n_shards : t -> int
(** 1 on a single device, the (clamped) slab count when sharded. *)

val launch : t -> Kernel_ast.Cast.kernel -> unit
(** Launch one kernel against the current state (JIT-cached per kernel);
    on every shard, sequentially, when sharded.
    @raise Failure on unknown parameter names. *)

val stats : t -> Vgpu.Runtime.stats
(** Per-kernel launch statistics accumulated so far (see
    {!Vgpu.Runtime.pp_stats}); the cross-device aggregate when sharded,
    including halo bytes in [s_d2d_bytes]. *)

val per_shard_stats : t -> (int * Vgpu.Runtime.stats) list
(** One entry per device; a single [(0, stats)] on a single device. *)

val pp_stats : Format.formatter -> t -> unit
(** The stats report: aggregate plus per-device blocks when sharded. *)

val step : t -> Kernel_ast.Cast.kernel list -> unit
(** One time step: run the kernels in order, then rotate the buffers.
    Sharded: kernels per shard (concurrent when the engine allows), halo
    exchange of the freshly written [next] ghost planes, local
    rotations. *)

val sync : t -> unit
(** Gather the sharded slabs back into [state] (no-op on a single
    device, where [state] is live). *)

val read : t -> x:int -> y:int -> z:int -> float
(** The current field at a grid point, wherever it lives — the sharded
    equivalent of {!State.read}. *)

val run :
  t -> Kernel_ast.Cast.kernel list -> steps:int -> receiver:int * int * int -> float array
(** Run [steps] steps recording the field at the receiver after each. *)
