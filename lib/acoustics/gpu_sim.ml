(* Drive a room-acoustics simulation through the virtual GPU.

   Kernel arguments are resolved *by parameter name* against the live
   simulation state, so the same driver runs the hand-written kernels and
   the Lift-generated kernels (both follow the paper's naming convention:
   prev/curr/next grids, bidx/nbrs/material boundary data, beta/bi/d/f/di
   coefficient tables, g1/v1/v2 branch state).

   Launches go through a [Vgpu.Runtime] so the engine choice (reference
   interpreter, sequential JIT, domain-parallel JIT), the JIT cache and
   the per-kernel launch statistics are shared with host-program plans.

   The per-step kernel sequence is the paper's two-kernel structure:
   volume handling first, boundary handling second, then buffer rotation
   on the host.

   Two backends:

   - [Single]: one virtual device holding the global arrays — the
     original driver.
   - [Sharded] ([create ~shards:n]): the grid is cut into Z slabs
     ({!Shard.plan}), each slab running on its own device of a
     {!Vgpu.Multi}.  Scalars re-resolve per shard (N, Nz, nB become the
     local extents) and the grid/boundary buffers come from the
     shard-local state; after the kernels of a step, adjacent shards
     exchange the freshly written ghost planes of [next], then each
     shard rotates locally.  Shards step concurrently through
     {!Vgpu.Pool} — except under the [`Jit_parallel] engine, which
     already occupies the pool inside each launch (its launch cycle is
     exclusive, so nesting would deadlock).  The results are bit-for-bit
     identical to the single-device run; [sync] gathers the slabs back
     into [state].

   The schemes that shard are the nbrs-driven ones (volume +
   boundary_fi / boundary_fi_mm / boundary_fd_mm).  The fused Listing-1
   kernel derives its boundary mask from global coordinates and is only
   correct on the full grid. *)

open Kernel_ast.Cast

type engine =
  [ `Interp  (** reference interpreter *)
  | `Jit  (** sequential JIT *)
  | `Jit_parallel of int  (** JIT over this many OCaml domains *)
  | `Native  (** compiled-C backend, loaded via [dlopen] *) ]

(* How a sharded step is scheduled:
   - [`Seq]: devices run strictly one after another on the host thread;
   - [`Concurrent]: devices step through the domain pool (wall-clock
     parallel), still with a per-step barrier at the halo exchange;
   - [`Overlap]: per-device {!Vgpu.Queue} command queues with event
     dependencies — the volume kernel splits into interior + frontier
     launches so halo exchanges overlap interior compute, and steps
     pipeline (no per-step barrier; draining happens on [sync]/[read]/
     stats access).  All three are bit-for-bit identical. *)
type schedule = [ `Seq | `Concurrent | `Overlap ]

type backend =
  | Single of Vgpu.Runtime.t
  | Sharded of {
      multi : Vgpu.Multi.t;
      plan : Shard.plan;
      sstates : Shard.shard_state array;
      schedule : schedule;
      tblock : int;  (* temporal block depth T = the shards' halo *)
      mutable bpos : int;  (* position within the current block, 0..T-1 *)
      mutable scattered : bool;  (* state has been distributed to the shards *)
      mutable ov_eid : int;  (* next fresh overlap event id *)
      mutable ov_inc : (int list * int list) array;
          (* per device: events of the previous block's exchanges into its
             (bottom, top) ghost zone — the block-start launches' waits *)
      mutable ov_imports : (int * Vgpu.Queue.event) list;
          (* events exported by the last submit, imported by the next *)
      mutable ov_fired : int list;  (* fired ids for deterministic replay *)
      mutable ranged :
        (Kernel_ast.Cast.kernel * Kernel_ast.Cast.kernel) list;
          (* cache: volume kernel -> its goff ranged-launch variant *)
    }

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (* single-material admittance for the FI kernels *)
  engine : engine;
  precision : Kernel_ast.Cast.precision;
  req_tblock : int;  (* requested temporal block depth *)
  backend : backend;
  mutable launches : int;
}

let runtime_engine : engine -> Vgpu.Runtime.engine = function
  | `Interp -> Vgpu.Runtime.Interp
  | `Jit -> Vgpu.Runtime.Jit
  | `Jit_parallel domains -> Vgpu.Runtime.Jit_parallel { domains }
  | `Native -> Vgpu.Runtime.Native

let create ?(engine = `Jit) ?(optimize = true) ?unroll_budget ?(fi_beta = 0.1)
    ?(materials = Material.defaults) ?(n_branches = 3) ?shards ?schedule ?(precision = Double)
    ?(tblock = 1) ?verify ?(sanitize = false) params room =
  let re = runtime_engine engine in
  let backend =
    match shards with
    | None ->
        Single
          (Vgpu.Runtime.create ~engine:re ~optimize ?unroll_budget ~precision
             ?verify ~sanitize ())
    | Some n ->
        let plan = Shard.plan ~n_branches ~halo:tblock ~shards:n room in
        let devices = Shard.n_shards plan in
        let schedule =
          match schedule with
          | Some `Overlap when sanitize ->
              (* checked execution needs deterministic scheduling
                 (Multi.submit_async refuses sanitizers); fall back to
                 the sequential schedule, which sanitizes fine *)
              `Seq
          | Some s -> s
          | None -> (
              (* legacy default: concurrent, except under [`Jit_parallel]
                 whose launches already occupy the pool exclusively *)
              match engine with `Jit_parallel _ -> `Seq | _ -> `Concurrent)
        in
        Sharded
          {
            multi =
              Vgpu.Multi.create ~engine:re ~optimize ?unroll_budget ~precision
                ?verify ~sanitize ~devices ();
            plan;
            sstates = Shard.create_states plan;
            schedule;
            (* effective block depth: Shard.plan clamps the halo to the
               thinnest slab, so re-read it from the shards *)
            tblock = plan.Shard.shards.(0).Shard.halo;
            bpos = 0;
            scattered = false;
            ov_eid = 0;
            ov_inc = Array.make devices ([], []);
            ov_imports = [];
            ov_fired = [];
            ranged = [];
          }
  in
  {
    params;
    state = State.create ~n_branches room;
    tables = Material.tables ~n_branches materials;
    fi_beta;
    engine;
    precision;
    req_tblock = max 1 tblock;
    backend;
    launches = 0;
  }

(* Effective temporal block depth: the requested [tblock] clamped by the
   thinnest slab when sharded (the requested value on a single device,
   where no halo constrains it). *)
let tblock t =
  match t.backend with Single _ -> t.req_tblock | Sharded s -> s.tblock

let n_shards t =
  match t.backend with Single _ -> 1 | Sharded s -> Shard.n_shards s.plan

let scalar_int t name =
  let { Geometry.nx; ny; nz } = t.state.room.Geometry.dims in
  match name with
  | "Nx" -> nx
  | "Ny" -> ny
  | "Nz" -> nz
  | "NxNy" -> nx * ny
  | "N" -> nx * ny * nz
  | "nB" -> Geometry.n_boundary t.state.room
  | "MB" -> t.state.n_branches
  | "NM" -> Array.length t.tables.Material.t_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown int scalar %s" name)

(* Per-shard scalars: the grid extents become the local slab's (owned
   planes + 2 ghosts), the boundary count becomes the shard's range. *)
let scalar_int_shard t (sh : Shard.shard) name =
  match name with
  | "Nz" -> sh.Shard.planes
  | "NxNy" -> sh.Shard.plane
  | "N" -> sh.Shard.local_n
  | "nB" -> sh.Shard.n_b
  | _ -> scalar_int t name

let scalar_real t name =
  match name with
  | "l" -> Params.l t.params
  | "l2" -> Params.l2 t.params
  | "beta" -> t.fi_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown real scalar %s" name)

let table_buffer t name : Vgpu.Buffer.t option =
  match name with
  | "beta" -> Some (Vgpu.Buffer.F t.tables.Material.t_beta)
  | "beta_fd" -> Some (Vgpu.Buffer.F t.tables.Material.t_beta_fd)
  | "bi" -> Some (Vgpu.Buffer.F t.tables.Material.t_bi)
  | "d" -> Some (Vgpu.Buffer.F t.tables.Material.t_d)
  | "f" -> Some (Vgpu.Buffer.F t.tables.Material.t_f)
  | "di" -> Some (Vgpu.Buffer.F t.tables.Material.t_di)
  | _ -> None

let buffer t name : Vgpu.Buffer.t =
  let st = t.state in
  let room = st.room in
  match table_buffer t name with
  | Some b -> b
  | None -> (
      match name with
      | "prev" -> Vgpu.Buffer.F st.prev
      | "curr" -> Vgpu.Buffer.F st.curr
      | "next" -> Vgpu.Buffer.F st.next
      | "next2" -> Vgpu.Buffer.F st.next2
      | "nbrs" -> Vgpu.Buffer.I room.Geometry.nbrs
      | "bidx" -> Vgpu.Buffer.I room.Geometry.boundary_indices
      | "material" -> Vgpu.Buffer.I room.Geometry.material
      | "g1" -> Vgpu.Buffer.F st.g1
      | "v2" -> Vgpu.Buffer.F st.vel_prev
      | "v1" -> Vgpu.Buffer.F st.vel_next
      | _ -> failwith (Printf.sprintf "gpu_sim: unknown buffer %s" name))

(* Shard-local buffer resolution: grids and branch state come from the
   shard's state, boundary data from the shard plan; the coefficient
   tables are read-only and shared across devices. *)
let buffer_shard t (sh : Shard.shard) (ss : Shard.shard_state) name : Vgpu.Buffer.t =
  match table_buffer t name with
  | Some b -> b
  | None -> (
      match name with
      | "prev" -> Vgpu.Buffer.F ss.Shard.prev
      | "curr" -> Vgpu.Buffer.F ss.Shard.curr
      | "next" -> Vgpu.Buffer.F ss.Shard.next
      | "next2" -> Vgpu.Buffer.F ss.Shard.next2
      | "nbrs" -> Vgpu.Buffer.I sh.Shard.nbrs
      | "bidx" -> Vgpu.Buffer.I sh.Shard.bidx
      | "material" -> Vgpu.Buffer.I sh.Shard.material
      | "g1" -> Vgpu.Buffer.F ss.Shard.g1
      | "v2" -> Vgpu.Buffer.F ss.Shard.vel_prev
      | "v1" -> Vgpu.Buffer.F ss.Shard.vel_next
      | _ -> failwith (Printf.sprintf "gpu_sim: unknown buffer %s" name))

(* Bind buffer params into a runtime (the state arrays rotate between
   steps, so bindings refresh on every launch) and resolve scalars. *)
let args_into rt ~int_scalar ~real_scalar ~buf (k : kernel) =
  List.map
    (fun p ->
      match (p.p_kind, p.p_ty) with
      | Global_buf, _ ->
          Vgpu.Runtime.bind rt p.p_name (buf p.p_name);
          Vgpu.Runtime.A_buf p.p_name
      | Scalar_param, Int -> Vgpu.Runtime.A_int (int_scalar p.p_name)
      | Scalar_param, Real -> Vgpu.Runtime.A_real (real_scalar p.p_name))
    k.params

(* Resolve the kernel's symbolic global size against a scalar
   environment.  Tiled kernels round their NDRange up to the work-group
   size with [((Nx + tw - 1) / tw) * tw]-shaped expressions, so the
   evaluator handles constant integer arithmetic, not just bare names. *)
let global_size ~int_scalar (k : kernel) =
  let rec ev e =
    match e with
    | Int_lit n -> n
    | Var name -> int_scalar name
    | Binop (op, a, b) -> (
        let a = ev a and b = ev b in
        match op with
        | Add -> a + b
        | Sub -> a - b
        | Mul -> a * b
        | Div -> a / b
        | Mod -> a mod b
        | _ -> failwith "gpu_sim: unsupported global size expression")
    | _ -> failwith "gpu_sim: unsupported global size expression"
  in
  List.map ev k.global_size

let launch_on rt ~int_scalar ~real_scalar ~buf (k : kernel) =
  let args = args_into rt ~int_scalar ~real_scalar ~buf k in
  let global = global_size ~int_scalar k in
  Vgpu.Runtime.run_op rt (Vgpu.Runtime.Launch { kernel = k; args; global })

let launch_shard t s i (k : kernel) =
  match s with
  | Single _ -> invalid_arg "gpu_sim: launch_shard on a single-device backend"
  | Sharded { multi; plan; sstates; _ } ->
      let sh = plan.Shard.shards.(i) and ss = sstates.(i) in
      launch_on
        (Vgpu.Multi.device multi i)
        ~int_scalar:(scalar_int_shard t sh) ~real_scalar:(scalar_real t)
        ~buf:(buffer_shard t sh ss) k

(* -- Overlapped scheduling ------------------------------------------ *)

(* A kernel is splittable into interior/frontier ranges when it sweeps
   the full local grid: the volume kernels launch over [Var "N"].  The
   boundary kernels ([Var "nB"]) touch owned points only, so plain FIFO
   order behind the volume launches already orders them correctly. *)
let splittable (k : kernel) =
  match k.global_size with [ Var "N" ] -> true | _ -> false

(* A fused T-step kernel advances the leapfrog [depth] generations in
   one launch (writing u(t+T) to [next] and u(t+T-1) to [next2]); the
   depth is encoded in the name by {!Programs.blocked_volume}'s
   [blocked…_t<T>] convention. *)
let fused_kernel_depth (k : kernel) =
  let n = k.name in
  if String.length n >= 7 && String.sub n 0 7 = "blocked" then
    match String.rindex_opt n '_' with
    | Some i when i + 1 < String.length n && n.[i + 1] = 't' -> (
        match int_of_string_opt (String.sub n (i + 2) (String.length n - i - 2)) with
        | Some d when d >= 1 -> Some d
        | _ -> None)
    | _ -> None
  else None

(* The fused depth of a kernel sequence: the depth of its fused volume
   kernel, if any.  [None] for the per-step kernel sequences. *)
let fused_depth (kernels : kernel list) =
  List.fold_left
    (fun acc k -> match fused_kernel_depth k with Some d -> Some d | None -> acc)
    None kernels

(* Does the kernel sequence carry persistent per-boundary-point branch
   state (the FD-MM scheme)?  If so, a block boundary must also refresh
   the ghost slices of [g1]/[v1]: a ghost boundary point at depth d only
   maintains its state to generation T-d locally. *)
let uses_branch_state (kernels : kernel list) =
  List.exists
    (fun (k : kernel) -> List.exists (fun p -> p.p_name = "g1") k.params)
    kernels

(* The exchanges of one block boundary: the freshly written [next] at
   full depth T (it becomes [curr], whose ghosts the next block reads to
   depth T); the previous generation ([curr], or [next2] for fused
   kernels) at depth T-1 (it becomes [prev], read at radius 0 by writes
   of validity up to T-1) — skipped for T ≤ 2 on the per-step cadence,
   where the redundant in-block recompute already left it valid to depth
   1 locally (fused kernels exchange [next2] from T = 2 up: their single
   launch confers no recomputed ghost validity the flow verifier could
   credit); and the ghost branch-state slices for schemes that carry
   them.  At T = 1 this reduces to exactly the original per-step [next]
   exchange. *)
let block_exchange_plan (p : Shard.plan) ~tblock ~fused ~has_state : Vgpu.Multi.plan =
  Shard.exchange_ops ~depth:tblock p ~buffer:"next"
  @ (if (if fused then tblock > 1 else tblock > 2) then
       Shard.exchange_ops ~depth:(tblock - 1) p
         ~buffer:(if fused then "next2" else "curr")
     else [])
  @ (if has_state && tblock > 1 then
       Shard.state_exchange_ops p ~buffer:"g1" @ Shard.state_exchange_ops p ~buffer:"v1"
     else [])

(* Drain this simulation's device queues (no-op when none were used);
   every host-side observation of sharded state goes through here. *)
let drain t =
  match t.backend with
  | Single _ -> ()
  | Sharded s -> Vgpu.Multi.finish_async s.multi

(* Build the async ops of one overlapped time step at block position
   [bpos] (0..T-1).

   Block start (bpos = 0) — per device, in queue order: the interior
   range of each splittable kernel first (no waits — it starts
   immediately), then the halo-deep frontier ranges, each waiting on the
   events of the previous block's exchanges into the ghost zone its
   stencil reads, then the unsplit boundary kernels (FIFO order after
   the volume parts is exactly the sequential kernel order; at T ≥ 2
   they carry both sides' waits themselves, since they read exchanged
   ghost branch state).  Mid-block steps (0 < bpos < T-1) launch
   full-range with no waits: per-queue FIFO already orders them after
   the same device's previous step, and they touch no freshly exchanged
   data.  At a block end (bpos = T-1, or every step for fused kernels)
   the block's halo exchanges run on their source device's queue — FIFO
   puts them after the source's writes — each waiting on the
   *destination* device's last in-block launch when T ≥ 2 (those
   launches redundantly write the very ghost planes the exchange
   overwrites), and each signalling a fresh event that becomes a
   block-start wait of the next block.  [eid] supplies fresh event ids;
   [incs] carries each device's (bottom, top) incoming-exchange events
   across steps and is updated in place.  Buffer params are (re)bound as
   a side effect, as in the sequential path. *)
let overlap_step_ops t ~(eid : int ref) ~(incs : (int list * int list) array)
    ~(bpos : int) kernels : Vgpu.Multi.async_plan =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: overlap_step_ops on a single-device backend"
  | Sharded s ->
      let fresh () =
        let e = !eid in
        incr eid;
        e
      in
      let ranged k =
        match List.find_opt (fun (src, _) -> src == k) s.ranged with
        | Some (_, r) -> r
        | None ->
            let r = Kernel_ast.Cast.offset_global_id k in
            s.ranged <- (k, r) :: s.ranged;
            r
      in
      let n = Shard.n_shards s.plan in
      let tb = s.tblock in
      let fused = fused_depth kernels <> None in
      let block_start = bpos = 0 in
      let block_end = fused || bpos = tb - 1 in
      let ops = ref [] in
      let push op = ops := op :: !ops in
      (* at a deep block end, the last launch of each device signals so
         the incoming exchanges can anti-depend on its ghost writes *)
      let last_sig = Array.make n None in
      for i = 0 to n - 1 do
        let sh = s.plan.Shard.shards.(i) and ss = s.sstates.(i) in
        let rt = Vgpu.Multi.device s.multi i in
        let dev_ops = ref [] in
        let pushd op = dev_ops := op :: !dev_ops in
        List.iter
          (fun k ->
            if block_start && splittable k then begin
              let rk = ranged k in
              List.iter
                (fun (kind, off, count) ->
                  let int_scalar name =
                    if name = "goff" then off else scalar_int_shard t sh name
                  in
                  let args =
                    args_into rt ~int_scalar ~real_scalar:(scalar_real t)
                      ~buf:(buffer_shard t sh ss) rk
                  in
                  let waits =
                    match kind with
                    | Shard.Interior -> []
                    | Shard.Frontier_lo -> fst incs.(i)
                    | Shard.Frontier_hi -> snd incs.(i)
                    | Shard.Frontier_both -> fst incs.(i) @ snd incs.(i)
                  in
                  pushd
                    {
                      Vgpu.Multi.a_op =
                        Vgpu.Multi.Dev
                          (i, Vgpu.Runtime.Launch { kernel = rk; args; global = [ count ] });
                      a_waits = waits;
                      a_signal = None;
                    })
                (Shard.split_ranges sh)
            end
            else begin
              let int_scalar = scalar_int_shard t sh in
              let args =
                args_into rt ~int_scalar ~real_scalar:(scalar_real t)
                  ~buf:(buffer_shard t sh ss) k
              in
              let global = global_size ~int_scalar k in
              (* At a block start, a non-splittable volume kernel (the
                 2.5D-tiled stencil, or a fused T-step kernel) reads the
                 [curr] ghost planes without a frontier launch before it
                 on this queue, so it carries the incoming-exchange waits
                 itself; at T ≥ 2 the boundary kernels read exchanged
                 ghost branch state and carry them too.  Mid-block
                 launches wait on nothing — FIFO order suffices. *)
              let waits =
                if
                  block_start
                  && (tb > 1 || fused
                     || List.exists (fun p -> p.p_name = "curr") k.params)
                then fst incs.(i) @ snd incs.(i)
                else []
              in
              pushd
                {
                  Vgpu.Multi.a_op =
                    Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch { kernel = k; args; global });
                  a_waits = waits;
                  a_signal = None;
                }
            end)
          kernels;
        let dl =
          if block_end && tb > 1 && n > 1 then
            match !dev_ops with
            | last :: rest_rev ->
                let e = fresh () in
                last_sig.(i) <- Some e;
                List.rev ({ last with Vgpu.Multi.a_signal = Some e } :: rest_rev)
            | [] -> []
          else List.rev !dev_ops
        in
        List.iter push dl
      done;
      let next_incs = Array.make n ([], []) in
      if block_end then
        List.iter
          (fun op ->
            match op with
            | Vgpu.Multi.Exchange { dst_dev = j; dst; dst_off; _ } ->
                let ev = fresh () in
                push
                  {
                    Vgpu.Multi.a_op = op;
                    a_waits = Option.to_list last_sig.(j);
                    a_signal = Some ev;
                  };
                let dsh = s.plan.Shard.shards.(j) in
                let lo, hi = next_incs.(j) in
                (* grid-buffer exchanges land on one side of the slab;
                   branch-state slices order both sides conservatively *)
                let side =
                  match dst with
                  | "next" | "next2" | "curr" | "prev" ->
                      if dst_off < dsh.Shard.halo * dsh.Shard.plane then `Lo else `Hi
                  | _ -> `Both
                in
                next_incs.(j) <-
                  (match side with
                  | `Lo -> (lo @ [ ev ], hi)
                  | `Hi -> (lo, hi @ [ ev ])
                  | `Both -> (lo @ [ ev ], hi @ [ ev ]))
            | _ -> ())
          (block_exchange_plan s.plan ~tblock:tb ~fused
             ~has_state:(uses_branch_state kernels));
      Array.blit next_incs 0 incs 0 n;
      List.rev !ops

let count_launches (ops : Vgpu.Multi.async_plan) =
  List.length
    (List.filter
       (fun (o : Vgpu.Multi.async_op) ->
         match o.Vgpu.Multi.a_op with
         | Vgpu.Multi.Dev (_, Vgpu.Runtime.Launch _) -> true
         | _ -> false)
       ops)

(* Distribute the global state to the shards on first use, so impulses
   added through [State.add_impulse] before the first step are seen. *)
let ensure_scattered t =
  match t.backend with
  | Single _ -> ()
  | Sharded s ->
      if not s.scattered then begin
        Shard.scatter s.plan t.state s.sstates;
        s.scattered <- true
      end

(* Launch one kernel (on every shard, when sharded) without stepping. *)
let launch t (k : kernel) =
  match t.backend with
  | Single rt ->
      t.launches <- t.launches + 1;
      launch_on rt ~int_scalar:(scalar_int t) ~real_scalar:(scalar_real t)
        ~buf:(buffer t) k
  | Sharded _ ->
      drain t;
      ensure_scattered t;
      let n = n_shards t in
      for i = 0 to n - 1 do
        launch_shard t t.backend i k
      done;
      t.launches <- t.launches + n

(* A fused kernel's depth must match the shards' halo depth: the block
   exchange sources [depth] owned planes and fills [depth] ghosts. *)
let check_fused_depth s kernels =
  match (s, fused_depth kernels) with
  | Sharded sh, Some d when d <> sh.tblock ->
      invalid_arg
        (Printf.sprintf
           "gpu_sim: fused kernel depth %d needs ~tblock:%d (shards have halo %d)" d d
           sh.tblock)
  | _ -> ()

(* One time step: run each kernel in order, then rotate the buffers.
   Sharded: kernels per shard ([`Concurrent]: through the domain pool;
   [`Overlap]: submitted to the per-device command queues without a
   per-step barrier, steps pipelining through the event graph); at a
   block boundary (every step at T = 1), halo-exchange the deep ghost
   zones; rotate each shard every step.  A fused T-step kernel advances
   T generations per call: every call is a whole block, and the rotation
   is the four-buffer fused rotation. *)
let step t (kernels : kernel list) =
  match t.backend with
  | Single _ ->
      List.iter (launch t) kernels;
      if fused_depth kernels <> None then State.rotate_fused t.state
      else State.rotate t.state
  | Sharded s ->
      check_fused_depth t.backend kernels;
      ensure_scattered t;
      let n = Shard.n_shards s.plan in
      let fused = fused_depth kernels <> None in
      let block_end = fused || s.bpos = s.tblock - 1 in
      (match s.schedule with
      | `Overlap ->
          let eid = ref s.ov_eid in
          let ops = overlap_step_ops t ~eid ~incs:s.ov_inc ~bpos:s.bpos kernels in
          s.ov_eid <- !eid;
          (* only the latest exchange events are ever waited on, so the
             fresh exports replace the previous step's imports *)
          s.ov_imports <- Vgpu.Multi.submit_async ~imports:s.ov_imports s.multi ops;
          t.launches <- t.launches + count_launches ops
      | (`Seq | `Concurrent) as sched ->
          let run_shard i = List.iter (launch_shard t t.backend i) kernels in
          if sched = `Concurrent && n > 1 then Vgpu.Pool.run Vgpu.Pool.global ~n run_shard
          else
            for i = 0 to n - 1 do
              run_shard i
            done;
          t.launches <- t.launches + (n * List.length kernels);
          if block_end then begin
            Array.iteri
              (fun i (ss : Shard.shard_state) ->
                Vgpu.Multi.bind s.multi i "next" (Vgpu.Buffer.F ss.Shard.next);
                Vgpu.Multi.bind s.multi i "next2" (Vgpu.Buffer.F ss.Shard.next2);
                Vgpu.Multi.bind s.multi i "curr" (Vgpu.Buffer.F ss.Shard.curr);
                Vgpu.Multi.bind s.multi i "g1" (Vgpu.Buffer.F ss.Shard.g1);
                Vgpu.Multi.bind s.multi i "v1" (Vgpu.Buffer.F ss.Shard.vel_next))
              s.sstates;
            Vgpu.Multi.run s.multi
              (block_exchange_plan s.plan ~tblock:s.tblock ~fused
                 ~has_state:(uses_branch_state kernels))
          end);
      (* host-side rotation is safe while commands are still queued:
         every queued op resolved its buffers at submission *)
      if fused then Array.iter Shard.rotate_state_fused s.sstates
      else Array.iter Shard.rotate_state s.sstates;
      s.bpos <- (if fused then 0 else (s.bpos + 1) mod s.tblock)

(* One overlapped time step replayed deterministically on the calling
   domain: the same event graph as [`Overlap], executed in the legal
   queue interleaving chosen by [pick] (see
   {!Vgpu.Multi.run_async_with}).  Works with sanitizers; independent of
   the simulation's configured schedule (do not mix with [`Overlap]
   steps on the same simulation). *)
let step_overlap_with ?pick t (kernels : kernel list) =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: step_overlap_with needs a sharded backend"
  | Sharded s ->
      check_fused_depth t.backend kernels;
      ensure_scattered t;
      let fused = fused_depth kernels <> None in
      let eid = ref s.ov_eid in
      let ops = overlap_step_ops t ~eid ~incs:s.ov_inc ~bpos:s.bpos kernels in
      s.ov_eid <- !eid;
      Vgpu.Multi.run_async_with ~imports:s.ov_fired ?pick s.multi ops;
      s.ov_fired <-
        List.filter_map (fun (o : Vgpu.Multi.async_op) -> o.Vgpu.Multi.a_signal) ops
        @ s.ov_fired;
      t.launches <- t.launches + count_launches ops;
      if fused then Array.iter Shard.rotate_state_fused s.sstates
      else Array.iter Shard.rotate_state s.sstates;
      s.bpos <- (if fused then 0 else (s.bpos + 1) mod s.tblock)

(* The async plan of [steps] overlapped time steps, for static analysis
   ({!Lift.Lint.check_async} via [racs check]).  Buffer rotation appears
   as explicit per-device [Swap] pairs so a linter can track buffer
   identities across steps; the runtime path instead rotates host-side.
   Does not consume the simulation's event-id state (ids start at 0), so
   build it on a dedicated simulation rather than mid-run. *)
let overlap_plan t (kernels : kernel list) ~steps : Vgpu.Multi.async_plan =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: overlap_plan needs a sharded backend"
  | Sharded s ->
      check_fused_depth t.backend kernels;
      let n = Shard.n_shards s.plan in
      let fused = fused_depth kernels <> None in
      let eid = ref 0 and incs = Array.make n ([], []) in
      let acc = ref [] in
      let aswap i (a, b) =
        {
          Vgpu.Multi.a_op = Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap (a, b));
          a_waits = [];
          a_signal = None;
        }
      in
      for st = 0 to steps - 1 do
        let bpos = if fused then 0 else st mod s.tblock in
        let ops = overlap_step_ops t ~eid ~incs ~bpos kernels in
        let rot =
          List.concat_map
            (fun i ->
              if fused then
                (* prev <- next2, curr <- next, recycling the two stale
                   grids as the new write targets *)
                [
                  aswap i ("prev", "next2");
                  aswap i ("curr", "next");
                  aswap i ("next", "next2");
                ]
              else [ aswap i ("prev", "curr"); aswap i ("curr", "next") ])
            (List.init n Fun.id)
        in
        acc := !acc @ ops @ rot
      done;
      !acc

(* The synchronous Multi.plan of [steps] sequential sharded time steps,
   mirroring what [step] executes under [`Seq]/[`Concurrent]: per-device
   launches with resolved args, the halo exchange of [next], and the
   buffer rotation as explicit per-device [Swap] pairs (the runtime path
   rotates host-side).  For static analysis ([Lift.Lint.verify_plan] via
   [racs check]). *)
let step_plan t (kernels : kernel list) ~steps : Vgpu.Multi.plan =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: step_plan needs a sharded backend"
  | Sharded s ->
      check_fused_depth t.backend kernels;
      let n = Shard.n_shards s.plan in
      let fused = fused_depth kernels <> None in
      let acc = ref [] in
      let push op = acc := op :: !acc in
      for st = 0 to steps - 1 do
        for i = 0 to n - 1 do
          let sh = s.plan.Shard.shards.(i) and ss = s.sstates.(i) in
          let rt = Vgpu.Multi.device s.multi i in
          let int_scalar = scalar_int_shard t sh in
          List.iter
            (fun k ->
              let args =
                args_into rt ~int_scalar ~real_scalar:(scalar_real t)
                  ~buf:(buffer_shard t sh ss) k
              in
              let global = global_size ~int_scalar k in
              push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch { kernel = k; args; global })))
            kernels
        done;
        if fused || st mod s.tblock = s.tblock - 1 then
          List.iter push
            (block_exchange_plan s.plan ~tblock:s.tblock ~fused
               ~has_state:(uses_branch_state kernels));
        for i = 0 to n - 1 do
          if fused then begin
            push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("prev", "next2")));
            push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("curr", "next")));
            push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("next", "next2")))
          end
          else begin
            push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("prev", "curr")));
            push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("curr", "next")))
          end
        done
      done;
      List.rev !acc

(* Slab geometry of the sharded backend, for the flow verifier. *)
let slab_geometry t =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: slab_geometry needs a sharded backend"
  | Sharded s ->
      let d = t.state.room.Geometry.dims in
      ( d.Geometry.nx,
        d.Geometry.ny,
        Array.map (fun (sh : Shard.shard) -> sh.Shard.planes) s.plan.Shard.shards )

(* Copy the sharded slabs back into the global [state] arrays (no-op on
   a single device, where [state] is live). *)
let sync t =
  drain t;
  match t.backend with
  | Single _ -> ()
  | Sharded s -> if s.scattered then Shard.gather s.plan s.sstates t.state

(* Read the current field at a grid point, wherever it lives. *)
let read t ~x ~y ~z =
  drain t;
  match t.backend with
  | Sharded s when s.scattered ->
      let sh = Shard.owner s.plan ~z in
      let ss = s.sstates.(sh.Shard.index) in
      ss.Shard.curr.(((z - sh.Shard.z0 + sh.Shard.halo) * sh.Shard.plane)
                     + (y * t.state.room.Geometry.dims.Geometry.nx) + x)
  | Single _ | Sharded _ -> State.read t.state ~x ~y ~z

let stats t =
  drain t;
  match t.backend with
  | Single rt -> Vgpu.Runtime.stats rt
  | Sharded s -> Vgpu.Multi.stats s.multi

(* The live sanitizers, one per device (empty unless ~sanitize:true). *)
let sanitizers t =
  match t.backend with
  | Single rt -> Option.to_list (Vgpu.Runtime.sanitizer rt)
  | Sharded s ->
      Array.to_list s.multi.Vgpu.Multi.devices
      |> List.filter_map Vgpu.Runtime.sanitizer

let violations t = (stats t).Vgpu.Runtime.s_violations

(* Static-verification environment mirroring this simulation's argument
   resolution: scalars resolve like [scalar_int], buffer extents are the
   live arrays' lengths.  Lets [racs check] and tests run
   [Kernel_ast.Check] against exactly the values a launch would see. *)
let check_env t =
  let param_value name =
    match scalar_int t name with n -> Some n | exception Failure _ -> None
  in
  let buffer_elems name =
    match buffer t name with
    | b -> Some (Vgpu.Buffer.length b)
    | exception Failure _ -> None
  in
  Kernel_ast.Check.env ~param_value ~buffer_elems ()

let per_shard_stats t =
  drain t;
  match t.backend with
  | Single rt -> [ (0, Vgpu.Runtime.stats rt) ]
  | Sharded s -> Vgpu.Multi.per_device_stats s.multi

let pp_stats ppf t =
  drain t;
  match t.backend with
  | Single rt -> Vgpu.Runtime.pp_stats ppf (Vgpu.Runtime.stats rt)
  | Sharded s -> Vgpu.Multi.pp_stats ppf s.multi

(* Drain, then zero the launch/transfer counters and re-align the queue
   clocks, so a measurement interval starts clean. *)
let reset_stats t =
  drain t;
  match t.backend with
  | Single rt -> Vgpu.Runtime.reset_stats rt
  | Sharded s -> Vgpu.Multi.reset_stats s.multi

(* Sharded schedule of this simulation, if sharded. *)
let schedule t =
  match t.backend with Single _ -> None | Sharded s -> Some s.schedule

(* Virtual critical path (ns) across this simulation's device queues:
   the longest per-queue virtual clock after draining.  0 on a single
   device or when the overlapped schedule was never used. *)
let overlap_vclock_ns t =
  drain t;
  match t.backend with
  | Single _ -> 0.
  | Sharded s -> Vgpu.Multi.async_vclock s.multi

(* Aggregate queue statistics (busy vs critical path vs overlap saved);
   [None] on a single device. *)
let overlap_stats t =
  drain t;
  match t.backend with
  | Single _ -> None
  | Sharded s -> Some (Vgpu.Multi.overlap_stats s.multi)

(* Static per-step cost profile of the temporal-blocking tradeoff. *)
type blocked_stats = {
  bs_tblock : int;  (* effective block depth T *)
  bs_exchanges_per_step : float;  (* d2d copy ops per time step *)
  bs_halo_bytes_per_step : float;  (* d2d bytes per time step *)
  bs_redundant_points : int;
      (* ghost points with real geometry, recomputed redundantly on
         every in-block step across all shards *)
}

let blocked_stats t (kernels : kernel list) =
  match t.backend with
  | Single _ -> None
  | Sharded s ->
      let fused = fused_depth kernels <> None in
      let exs =
        block_exchange_plan s.plan ~tblock:s.tblock ~fused
          ~has_state:(uses_branch_state kernels)
      in
      let elem = match t.precision with Double -> 8 | Single -> 4 in
      let bytes =
        List.fold_left
          (fun acc op ->
            match op with
            | Vgpu.Multi.Exchange { elems; _ } -> acc + (elems * elem)
            | _ -> acc)
          0 exs
      in
      let redundant = ref 0 in
      Array.iter
        (fun (sh : Shard.shard) ->
          let h = sh.Shard.halo in
          let count_plane p =
            for q = p * sh.Shard.plane to ((p + 1) * sh.Shard.plane) - 1 do
              if sh.Shard.nbrs.(q) > 0 then incr redundant
            done
          in
          for p = 1 to h - 1 do
            count_plane p
          done;
          for p = sh.Shard.planes - h to sh.Shard.planes - 2 do
            if p > h - 1 then count_plane p
          done)
        s.plan.Shard.shards;
      let tb = float_of_int s.tblock in
      Some
        {
          bs_tblock = s.tblock;
          bs_exchanges_per_step = float_of_int (List.length exs) /. tb;
          bs_halo_bytes_per_step = float_of_int bytes /. tb;
          bs_redundant_points = !redundant;
        }

(* Run [steps] steps recording the field at the receiver after each. *)
let run t (kernels : kernel list) ~steps ~receiver:(rx, ry, rz) =
  let out = Array.make steps 0. in
  for n = 0 to steps - 1 do
    step t kernels;
    out.(n) <- read t ~x:rx ~y:ry ~z:rz
  done;
  out
