(* Drive a room-acoustics simulation through the virtual GPU.

   Kernel arguments are resolved *by parameter name* against the live
   simulation state, so the same driver runs the hand-written kernels and
   the Lift-generated kernels (both follow the paper's naming convention:
   prev/curr/next grids, bidx/nbrs/material boundary data, beta/bi/d/f/di
   coefficient tables, g1/v1/v2 branch state).

   Launches go through a [Vgpu.Runtime] so the engine choice (reference
   interpreter, sequential JIT, domain-parallel JIT), the JIT cache and
   the per-kernel launch statistics are shared with host-program plans.

   The per-step kernel sequence is the paper's two-kernel structure:
   volume handling first, boundary handling second, then buffer rotation
   on the host.

   Two backends:

   - [Single]: one virtual device holding the global arrays — the
     original driver.
   - [Sharded] ([create ~shards:n]): the grid is cut into Z slabs
     ({!Shard.plan}), each slab running on its own device of a
     {!Vgpu.Multi}.  Scalars re-resolve per shard (N, Nz, nB become the
     local extents) and the grid/boundary buffers come from the
     shard-local state; after the kernels of a step, adjacent shards
     exchange the freshly written ghost planes of [next], then each
     shard rotates locally.  Shards step concurrently through
     {!Vgpu.Pool} — except under the [`Jit_parallel] engine, which
     already occupies the pool inside each launch (its launch cycle is
     exclusive, so nesting would deadlock).  The results are bit-for-bit
     identical to the single-device run; [sync] gathers the slabs back
     into [state].

   The schemes that shard are the nbrs-driven ones (volume +
   boundary_fi / boundary_fi_mm / boundary_fd_mm).  The fused Listing-1
   kernel derives its boundary mask from global coordinates and is only
   correct on the full grid. *)

open Kernel_ast.Cast

type engine =
  [ `Interp  (** reference interpreter *)
  | `Jit  (** sequential JIT *)
  | `Jit_parallel of int  (** JIT over this many OCaml domains *)
  | `Native  (** compiled-C backend, loaded via [dlopen] *) ]

(* How a sharded step is scheduled:
   - [`Seq]: devices run strictly one after another on the host thread;
   - [`Concurrent]: devices step through the domain pool (wall-clock
     parallel), still with a per-step barrier at the halo exchange;
   - [`Overlap]: per-device {!Vgpu.Queue} command queues with event
     dependencies — the volume kernel splits into interior + frontier
     launches so halo exchanges overlap interior compute, and steps
     pipeline (no per-step barrier; draining happens on [sync]/[read]/
     stats access).  All three are bit-for-bit identical. *)
type schedule = [ `Seq | `Concurrent | `Overlap ]

type backend =
  | Single of Vgpu.Runtime.t
  | Sharded of {
      multi : Vgpu.Multi.t;
      plan : Shard.plan;
      sstates : Shard.shard_state array;
      schedule : schedule;
      mutable scattered : bool;  (* state has been distributed to the shards *)
      mutable ov_eid : int;  (* next fresh overlap event id *)
      mutable ov_inc : (int option * int option) array;
          (* per device: events of the previous step's exchanges into its
             (bottom, top) ghost plane — the frontier launches' waits *)
      mutable ov_imports : (int * Vgpu.Queue.event) list;
          (* events exported by the last submit, imported by the next *)
      mutable ov_fired : int list;  (* fired ids for deterministic replay *)
      mutable ranged :
        (Kernel_ast.Cast.kernel * Kernel_ast.Cast.kernel) list;
          (* cache: volume kernel -> its goff ranged-launch variant *)
    }

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (* single-material admittance for the FI kernels *)
  engine : engine;
  backend : backend;
  mutable launches : int;
}

let runtime_engine : engine -> Vgpu.Runtime.engine = function
  | `Interp -> Vgpu.Runtime.Interp
  | `Jit -> Vgpu.Runtime.Jit
  | `Jit_parallel domains -> Vgpu.Runtime.Jit_parallel { domains }
  | `Native -> Vgpu.Runtime.Native

let create ?(engine = `Jit) ?(optimize = true) ?unroll_budget ?(fi_beta = 0.1)
    ?(materials = Material.defaults) ?(n_branches = 3) ?shards ?schedule ?(precision = Double)
    ?verify ?(sanitize = false) params room =
  let re = runtime_engine engine in
  let backend =
    match shards with
    | None ->
        Single
          (Vgpu.Runtime.create ~engine:re ~optimize ?unroll_budget ~precision
             ?verify ~sanitize ())
    | Some n ->
        let plan = Shard.plan ~n_branches ~shards:n room in
        let devices = Shard.n_shards plan in
        let schedule =
          match schedule with
          | Some `Overlap when sanitize ->
              (* checked execution needs deterministic scheduling
                 (Multi.submit_async refuses sanitizers); fall back to
                 the sequential schedule, which sanitizes fine *)
              `Seq
          | Some s -> s
          | None -> (
              (* legacy default: concurrent, except under [`Jit_parallel]
                 whose launches already occupy the pool exclusively *)
              match engine with `Jit_parallel _ -> `Seq | _ -> `Concurrent)
        in
        Sharded
          {
            multi =
              Vgpu.Multi.create ~engine:re ~optimize ?unroll_budget ~precision
                ?verify ~sanitize ~devices ();
            plan;
            sstates = Shard.create_states plan;
            schedule;
            scattered = false;
            ov_eid = 0;
            ov_inc = Array.make devices (None, None);
            ov_imports = [];
            ov_fired = [];
            ranged = [];
          }
  in
  {
    params;
    state = State.create ~n_branches room;
    tables = Material.tables ~n_branches materials;
    fi_beta;
    engine;
    backend;
    launches = 0;
  }

let n_shards t =
  match t.backend with Single _ -> 1 | Sharded s -> Shard.n_shards s.plan

let scalar_int t name =
  let { Geometry.nx; ny; nz } = t.state.room.Geometry.dims in
  match name with
  | "Nx" -> nx
  | "Ny" -> ny
  | "Nz" -> nz
  | "NxNy" -> nx * ny
  | "N" -> nx * ny * nz
  | "nB" -> Geometry.n_boundary t.state.room
  | "MB" -> t.state.n_branches
  | "NM" -> Array.length t.tables.Material.t_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown int scalar %s" name)

(* Per-shard scalars: the grid extents become the local slab's (owned
   planes + 2 ghosts), the boundary count becomes the shard's range. *)
let scalar_int_shard t (sh : Shard.shard) name =
  match name with
  | "Nz" -> sh.Shard.planes
  | "NxNy" -> sh.Shard.plane
  | "N" -> sh.Shard.local_n
  | "nB" -> sh.Shard.n_b
  | _ -> scalar_int t name

let scalar_real t name =
  match name with
  | "l" -> Params.l t.params
  | "l2" -> Params.l2 t.params
  | "beta" -> t.fi_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown real scalar %s" name)

let table_buffer t name : Vgpu.Buffer.t option =
  match name with
  | "beta" -> Some (Vgpu.Buffer.F t.tables.Material.t_beta)
  | "beta_fd" -> Some (Vgpu.Buffer.F t.tables.Material.t_beta_fd)
  | "bi" -> Some (Vgpu.Buffer.F t.tables.Material.t_bi)
  | "d" -> Some (Vgpu.Buffer.F t.tables.Material.t_d)
  | "f" -> Some (Vgpu.Buffer.F t.tables.Material.t_f)
  | "di" -> Some (Vgpu.Buffer.F t.tables.Material.t_di)
  | _ -> None

let buffer t name : Vgpu.Buffer.t =
  let st = t.state in
  let room = st.room in
  match table_buffer t name with
  | Some b -> b
  | None -> (
      match name with
      | "prev" -> Vgpu.Buffer.F st.prev
      | "curr" -> Vgpu.Buffer.F st.curr
      | "next" -> Vgpu.Buffer.F st.next
      | "nbrs" -> Vgpu.Buffer.I room.Geometry.nbrs
      | "bidx" -> Vgpu.Buffer.I room.Geometry.boundary_indices
      | "material" -> Vgpu.Buffer.I room.Geometry.material
      | "g1" -> Vgpu.Buffer.F st.g1
      | "v2" -> Vgpu.Buffer.F st.vel_prev
      | "v1" -> Vgpu.Buffer.F st.vel_next
      | _ -> failwith (Printf.sprintf "gpu_sim: unknown buffer %s" name))

(* Shard-local buffer resolution: grids and branch state come from the
   shard's state, boundary data from the shard plan; the coefficient
   tables are read-only and shared across devices. *)
let buffer_shard t (sh : Shard.shard) (ss : Shard.shard_state) name : Vgpu.Buffer.t =
  match table_buffer t name with
  | Some b -> b
  | None -> (
      match name with
      | "prev" -> Vgpu.Buffer.F ss.Shard.prev
      | "curr" -> Vgpu.Buffer.F ss.Shard.curr
      | "next" -> Vgpu.Buffer.F ss.Shard.next
      | "nbrs" -> Vgpu.Buffer.I sh.Shard.nbrs
      | "bidx" -> Vgpu.Buffer.I sh.Shard.bidx
      | "material" -> Vgpu.Buffer.I sh.Shard.material
      | "g1" -> Vgpu.Buffer.F ss.Shard.g1
      | "v2" -> Vgpu.Buffer.F ss.Shard.vel_prev
      | "v1" -> Vgpu.Buffer.F ss.Shard.vel_next
      | _ -> failwith (Printf.sprintf "gpu_sim: unknown buffer %s" name))

(* Bind buffer params into a runtime (the state arrays rotate between
   steps, so bindings refresh on every launch) and resolve scalars. *)
let args_into rt ~int_scalar ~real_scalar ~buf (k : kernel) =
  List.map
    (fun p ->
      match (p.p_kind, p.p_ty) with
      | Global_buf, _ ->
          Vgpu.Runtime.bind rt p.p_name (buf p.p_name);
          Vgpu.Runtime.A_buf p.p_name
      | Scalar_param, Int -> Vgpu.Runtime.A_int (int_scalar p.p_name)
      | Scalar_param, Real -> Vgpu.Runtime.A_real (real_scalar p.p_name))
    k.params

(* Resolve the kernel's symbolic global size against a scalar
   environment.  Tiled kernels round their NDRange up to the work-group
   size with [((Nx + tw - 1) / tw) * tw]-shaped expressions, so the
   evaluator handles constant integer arithmetic, not just bare names. *)
let global_size ~int_scalar (k : kernel) =
  let rec ev e =
    match e with
    | Int_lit n -> n
    | Var name -> int_scalar name
    | Binop (op, a, b) -> (
        let a = ev a and b = ev b in
        match op with
        | Add -> a + b
        | Sub -> a - b
        | Mul -> a * b
        | Div -> a / b
        | Mod -> a mod b
        | _ -> failwith "gpu_sim: unsupported global size expression")
    | _ -> failwith "gpu_sim: unsupported global size expression"
  in
  List.map ev k.global_size

let launch_on rt ~int_scalar ~real_scalar ~buf (k : kernel) =
  let args = args_into rt ~int_scalar ~real_scalar ~buf k in
  let global = global_size ~int_scalar k in
  Vgpu.Runtime.run_op rt (Vgpu.Runtime.Launch { kernel = k; args; global })

let launch_shard t s i (k : kernel) =
  match s with
  | Single _ -> invalid_arg "gpu_sim: launch_shard on a single-device backend"
  | Sharded { multi; plan; sstates; _ } ->
      let sh = plan.Shard.shards.(i) and ss = sstates.(i) in
      launch_on
        (Vgpu.Multi.device multi i)
        ~int_scalar:(scalar_int_shard t sh) ~real_scalar:(scalar_real t)
        ~buf:(buffer_shard t sh ss) k

(* -- Overlapped scheduling ------------------------------------------ *)

(* A kernel is splittable into interior/frontier ranges when it sweeps
   the full local grid: the volume kernels launch over [Var "N"].  The
   boundary kernels ([Var "nB"]) touch owned points only, so plain FIFO
   order behind the volume launches already orders them correctly. *)
let splittable (k : kernel) =
  match k.global_size with [ Var "N" ] -> true | _ -> false

(* Drain this simulation's device queues (no-op when none were used);
   every host-side observation of sharded state goes through here. *)
let drain t =
  match t.backend with
  | Single _ -> ()
  | Sharded s -> Vgpu.Multi.finish_async s.multi

(* Build the async ops of one overlapped time step.

   Per device, in queue order: the interior range of each splittable
   kernel first (no waits — it starts immediately), then the thin
   frontier ranges, each waiting on the event of the previous step's
   exchange into the ghost plane its stencil reads, then the unsplit
   boundary kernels (FIFO order after the volume parts is exactly the
   sequential kernel order).  After all launches, the halo exchanges of
   this step run on their source device's queue — FIFO puts them after
   the frontier (and boundary) writes they copy — and each signals a
   fresh event that becomes the matching frontier wait of the next
   step.  [eid] supplies fresh event ids; [incs] carries each device's
   (bottom, top) incoming-exchange events across steps and is updated in
   place.  Buffer params are (re)bound as a side effect, as in the
   sequential path. *)
let overlap_step_ops t ~(eid : int ref) ~(incs : (int option * int option) array) kernels :
    Vgpu.Multi.async_plan =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: overlap_step_ops on a single-device backend"
  | Sharded s ->
      let fresh () =
        let e = !eid in
        incr eid;
        e
      in
      let ranged k =
        match List.find_opt (fun (src, _) -> src == k) s.ranged with
        | Some (_, r) -> r
        | None ->
            let r = Kernel_ast.Cast.offset_global_id k in
            s.ranged <- (k, r) :: s.ranged;
            r
      in
      let n = Shard.n_shards s.plan in
      let ops = ref [] in
      let push op = ops := op :: !ops in
      for i = 0 to n - 1 do
        let sh = s.plan.Shard.shards.(i) and ss = s.sstates.(i) in
        let rt = Vgpu.Multi.device s.multi i in
        List.iter
          (fun k ->
            if splittable k then begin
              let rk = ranged k in
              List.iter
                (fun (kind, off, count) ->
                  let int_scalar name =
                    if name = "goff" then off else scalar_int_shard t sh name
                  in
                  let args =
                    args_into rt ~int_scalar ~real_scalar:(scalar_real t)
                      ~buf:(buffer_shard t sh ss) rk
                  in
                  let waits =
                    match kind with
                    | Shard.Interior -> []
                    | Shard.Frontier_lo -> Option.to_list (fst incs.(i))
                    | Shard.Frontier_hi -> Option.to_list (snd incs.(i))
                    | Shard.Frontier_both ->
                        Option.to_list (fst incs.(i)) @ Option.to_list (snd incs.(i))
                  in
                  push
                    {
                      Vgpu.Multi.a_op =
                        Vgpu.Multi.Dev
                          (i, Vgpu.Runtime.Launch { kernel = rk; args; global = [ count ] });
                      a_waits = waits;
                      a_signal = None;
                    })
                (Shard.split_ranges sh)
            end
            else begin
              let int_scalar = scalar_int_shard t sh in
              let args =
                args_into rt ~int_scalar ~real_scalar:(scalar_real t)
                  ~buf:(buffer_shard t sh ss) k
              in
              let global = global_size ~int_scalar k in
              (* A non-splittable volume kernel (e.g. the 2.5D-tiled
                 stencil, whose NDRange is a padded 2D launch) reads the
                 [curr] ghost planes without a frontier launch before it
                 on this queue, so it must carry the previous step's
                 incoming-exchange waits itself.  Boundary kernels have
                 no [curr] parameter and keep FIFO ordering. *)
              let waits =
                if List.exists (fun p -> p.p_name = "curr") k.params then
                  Option.to_list (fst incs.(i)) @ Option.to_list (snd incs.(i))
                else []
              in
              push
                {
                  Vgpu.Multi.a_op =
                    Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch { kernel = k; args; global });
                  a_waits = waits;
                  a_signal = None;
                }
            end)
          kernels
      done;
      let next_incs = Array.make n (None, None) in
      for c = 0 to n - 2 do
        let lo = s.plan.Shard.shards.(c) and hi = s.plan.Shard.shards.(c + 1) in
        let e_up = fresh () and e_dn = fresh () in
        push
          {
            Vgpu.Multi.a_op =
              Vgpu.Multi.Exchange
                {
                  src_dev = lo.Shard.index;
                  src = "next";
                  src_off = (lo.Shard.planes - 2) * lo.Shard.plane;
                  dst_dev = hi.Shard.index;
                  dst = "next";
                  dst_off = 0;
                  elems = lo.Shard.plane;
                };
            a_waits = [];
            a_signal = Some e_up;
          };
        push
          {
            Vgpu.Multi.a_op =
              Vgpu.Multi.Exchange
                {
                  src_dev = hi.Shard.index;
                  src = "next";
                  src_off = hi.Shard.plane;
                  dst_dev = lo.Shard.index;
                  dst = "next";
                  dst_off = (lo.Shard.planes - 1) * lo.Shard.plane;
                  elems = lo.Shard.plane;
                };
            a_waits = [];
            a_signal = Some e_dn;
          };
        next_incs.(c + 1) <- (Some e_up, snd next_incs.(c + 1));
        next_incs.(c) <- (fst next_incs.(c), Some e_dn)
      done;
      Array.blit next_incs 0 incs 0 n;
      List.rev !ops

let count_launches (ops : Vgpu.Multi.async_plan) =
  List.length
    (List.filter
       (fun (o : Vgpu.Multi.async_op) ->
         match o.Vgpu.Multi.a_op with
         | Vgpu.Multi.Dev (_, Vgpu.Runtime.Launch _) -> true
         | _ -> false)
       ops)

(* Distribute the global state to the shards on first use, so impulses
   added through [State.add_impulse] before the first step are seen. *)
let ensure_scattered t =
  match t.backend with
  | Single _ -> ()
  | Sharded s ->
      if not s.scattered then begin
        Shard.scatter s.plan t.state s.sstates;
        s.scattered <- true
      end

(* Launch one kernel (on every shard, when sharded) without stepping. *)
let launch t (k : kernel) =
  match t.backend with
  | Single rt ->
      t.launches <- t.launches + 1;
      launch_on rt ~int_scalar:(scalar_int t) ~real_scalar:(scalar_real t)
        ~buf:(buffer t) k
  | Sharded _ ->
      drain t;
      ensure_scattered t;
      let n = n_shards t in
      for i = 0 to n - 1 do
        launch_shard t t.backend i k
      done;
      t.launches <- t.launches + n

(* One time step: run each kernel in order, then rotate the buffers.
   Sharded: kernels per shard ([`Concurrent]: through the domain pool;
   [`Overlap]: submitted to the per-device command queues without a
   per-step barrier, steps pipelining through the event graph),
   halo-exchange the freshly written [next] planes, rotate each shard. *)
let step t (kernels : kernel list) =
  match t.backend with
  | Single _ ->
      List.iter (launch t) kernels;
      State.rotate t.state
  | Sharded s ->
      ensure_scattered t;
      let n = Shard.n_shards s.plan in
      (match s.schedule with
      | `Overlap ->
          let eid = ref s.ov_eid in
          let ops = overlap_step_ops t ~eid ~incs:s.ov_inc kernels in
          s.ov_eid <- !eid;
          (* only the latest exchange events are ever waited on, so the
             fresh exports replace the previous step's imports *)
          s.ov_imports <- Vgpu.Multi.submit_async ~imports:s.ov_imports s.multi ops;
          t.launches <- t.launches + count_launches ops
      | (`Seq | `Concurrent) as sched ->
          let run_shard i = List.iter (launch_shard t t.backend i) kernels in
          if sched = `Concurrent && n > 1 then Vgpu.Pool.run Vgpu.Pool.global ~n run_shard
          else
            for i = 0 to n - 1 do
              run_shard i
            done;
          t.launches <- t.launches + (n * List.length kernels);
          Array.iteri
            (fun i (ss : Shard.shard_state) ->
              Vgpu.Multi.bind s.multi i "next" (Vgpu.Buffer.F ss.Shard.next))
            s.sstates;
          Vgpu.Multi.run s.multi (Shard.exchange_ops s.plan ~buffer:"next"));
      (* host-side rotation is safe while commands are still queued:
         every queued op resolved its buffers at submission *)
      Array.iter Shard.rotate_state s.sstates

(* One overlapped time step replayed deterministically on the calling
   domain: the same event graph as [`Overlap], executed in the legal
   queue interleaving chosen by [pick] (see
   {!Vgpu.Multi.run_async_with}).  Works with sanitizers; independent of
   the simulation's configured schedule (do not mix with [`Overlap]
   steps on the same simulation). *)
let step_overlap_with ?pick t (kernels : kernel list) =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: step_overlap_with needs a sharded backend"
  | Sharded s ->
      ensure_scattered t;
      let eid = ref s.ov_eid in
      let ops = overlap_step_ops t ~eid ~incs:s.ov_inc kernels in
      s.ov_eid <- !eid;
      Vgpu.Multi.run_async_with ~imports:s.ov_fired ?pick s.multi ops;
      s.ov_fired <-
        List.filter_map (fun (o : Vgpu.Multi.async_op) -> o.Vgpu.Multi.a_signal) ops
        @ s.ov_fired;
      t.launches <- t.launches + count_launches ops;
      Array.iter Shard.rotate_state s.sstates

(* The async plan of [steps] overlapped time steps, for static analysis
   ({!Lift.Lint.check_async} via [racs check]).  Buffer rotation appears
   as explicit per-device [Swap] pairs so a linter can track buffer
   identities across steps; the runtime path instead rotates host-side.
   Does not consume the simulation's event-id state (ids start at 0), so
   build it on a dedicated simulation rather than mid-run. *)
let overlap_plan t (kernels : kernel list) ~steps : Vgpu.Multi.async_plan =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: overlap_plan needs a sharded backend"
  | Sharded s ->
      let n = Shard.n_shards s.plan in
      let eid = ref 0 and incs = Array.make n (None, None) in
      let acc = ref [] in
      for _ = 1 to steps do
        let ops = overlap_step_ops t ~eid ~incs kernels in
        let rot =
          List.concat_map
            (fun i ->
              [
                {
                  Vgpu.Multi.a_op = Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("prev", "curr"));
                  a_waits = [];
                  a_signal = None;
                };
                {
                  Vgpu.Multi.a_op = Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("curr", "next"));
                  a_waits = [];
                  a_signal = None;
                };
              ])
            (List.init n Fun.id)
        in
        acc := !acc @ ops @ rot
      done;
      !acc

(* The synchronous Multi.plan of [steps] sequential sharded time steps,
   mirroring what [step] executes under [`Seq]/[`Concurrent]: per-device
   launches with resolved args, the halo exchange of [next], and the
   buffer rotation as explicit per-device [Swap] pairs (the runtime path
   rotates host-side).  For static analysis ([Lift.Lint.verify_plan] via
   [racs check]). *)
let step_plan t (kernels : kernel list) ~steps : Vgpu.Multi.plan =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: step_plan needs a sharded backend"
  | Sharded s ->
      let n = Shard.n_shards s.plan in
      let acc = ref [] in
      let push op = acc := op :: !acc in
      for _ = 1 to steps do
        for i = 0 to n - 1 do
          let sh = s.plan.Shard.shards.(i) and ss = s.sstates.(i) in
          let rt = Vgpu.Multi.device s.multi i in
          let int_scalar = scalar_int_shard t sh in
          List.iter
            (fun k ->
              let args =
                args_into rt ~int_scalar ~real_scalar:(scalar_real t)
                  ~buf:(buffer_shard t sh ss) k
              in
              let global = global_size ~int_scalar k in
              push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Launch { kernel = k; args; global })))
            kernels
        done;
        List.iter push (Shard.exchange_ops s.plan ~buffer:"next");
        for i = 0 to n - 1 do
          push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("prev", "curr")));
          push (Vgpu.Multi.Dev (i, Vgpu.Runtime.Swap ("curr", "next")))
        done
      done;
      List.rev !acc

(* Slab geometry of the sharded backend, for the flow verifier. *)
let slab_geometry t =
  match t.backend with
  | Single _ -> invalid_arg "gpu_sim: slab_geometry needs a sharded backend"
  | Sharded s ->
      let d = t.state.room.Geometry.dims in
      ( d.Geometry.nx,
        d.Geometry.ny,
        Array.map (fun (sh : Shard.shard) -> sh.Shard.planes) s.plan.Shard.shards )

(* Copy the sharded slabs back into the global [state] arrays (no-op on
   a single device, where [state] is live). *)
let sync t =
  drain t;
  match t.backend with
  | Single _ -> ()
  | Sharded s -> if s.scattered then Shard.gather s.plan s.sstates t.state

(* Read the current field at a grid point, wherever it lives. *)
let read t ~x ~y ~z =
  drain t;
  match t.backend with
  | Sharded s when s.scattered ->
      let sh = Shard.owner s.plan ~z in
      let ss = s.sstates.(sh.Shard.index) in
      ss.Shard.curr.(((z - sh.Shard.z0 + 1) * sh.Shard.plane)
                     + (y * t.state.room.Geometry.dims.Geometry.nx) + x)
  | Single _ | Sharded _ -> State.read t.state ~x ~y ~z

let stats t =
  drain t;
  match t.backend with
  | Single rt -> Vgpu.Runtime.stats rt
  | Sharded s -> Vgpu.Multi.stats s.multi

(* The live sanitizers, one per device (empty unless ~sanitize:true). *)
let sanitizers t =
  match t.backend with
  | Single rt -> Option.to_list (Vgpu.Runtime.sanitizer rt)
  | Sharded s ->
      Array.to_list s.multi.Vgpu.Multi.devices
      |> List.filter_map Vgpu.Runtime.sanitizer

let violations t = (stats t).Vgpu.Runtime.s_violations

(* Static-verification environment mirroring this simulation's argument
   resolution: scalars resolve like [scalar_int], buffer extents are the
   live arrays' lengths.  Lets [racs check] and tests run
   [Kernel_ast.Check] against exactly the values a launch would see. *)
let check_env t =
  let param_value name =
    match scalar_int t name with n -> Some n | exception Failure _ -> None
  in
  let buffer_elems name =
    match buffer t name with
    | b -> Some (Vgpu.Buffer.length b)
    | exception Failure _ -> None
  in
  Kernel_ast.Check.env ~param_value ~buffer_elems ()

let per_shard_stats t =
  drain t;
  match t.backend with
  | Single rt -> [ (0, Vgpu.Runtime.stats rt) ]
  | Sharded s -> Vgpu.Multi.per_device_stats s.multi

let pp_stats ppf t =
  drain t;
  match t.backend with
  | Single rt -> Vgpu.Runtime.pp_stats ppf (Vgpu.Runtime.stats rt)
  | Sharded s -> Vgpu.Multi.pp_stats ppf s.multi

(* Drain, then zero the launch/transfer counters and re-align the queue
   clocks, so a measurement interval starts clean. *)
let reset_stats t =
  drain t;
  match t.backend with
  | Single rt -> Vgpu.Runtime.reset_stats rt
  | Sharded s -> Vgpu.Multi.reset_stats s.multi

(* Sharded schedule of this simulation, if sharded. *)
let schedule t =
  match t.backend with Single _ -> None | Sharded s -> Some s.schedule

(* Virtual critical path (ns) across this simulation's device queues:
   the longest per-queue virtual clock after draining.  0 on a single
   device or when the overlapped schedule was never used. *)
let overlap_vclock_ns t =
  drain t;
  match t.backend with
  | Single _ -> 0.
  | Sharded s -> Vgpu.Multi.async_vclock s.multi

(* Aggregate queue statistics (busy vs critical path vs overlap saved);
   [None] on a single device. *)
let overlap_stats t =
  drain t;
  match t.backend with
  | Single _ -> None
  | Sharded s -> Some (Vgpu.Multi.overlap_stats s.multi)

(* Run [steps] steps recording the field at the receiver after each. *)
let run t (kernels : kernel list) ~steps ~receiver:(rx, ry, rz) =
  let out = Array.make steps 0. in
  for n = 0 to steps - 1 do
    step t kernels;
    out.(n) <- read t ~x:rx ~y:ry ~z:rz
  done;
  out
