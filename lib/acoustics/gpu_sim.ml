(* Drive a room-acoustics simulation through the virtual GPU.

   Kernel arguments are resolved *by parameter name* against the live
   simulation state, so the same driver runs the hand-written kernels and
   the Lift-generated kernels (both follow the paper's naming convention:
   prev/curr/next grids, bidx/nbrs/material boundary data, beta/bi/d/f/di
   coefficient tables, g1/v1/v2 branch state).

   Launches go through a [Vgpu.Runtime] so the engine choice (reference
   interpreter, sequential JIT, domain-parallel JIT), the JIT cache and
   the per-kernel launch statistics are shared with host-program plans.

   The per-step kernel sequence is the paper's two-kernel structure:
   volume handling first, boundary handling second, then buffer rotation
   on the host. *)

open Kernel_ast.Cast

type engine =
  [ `Interp  (** reference interpreter *)
  | `Jit  (** sequential JIT *)
  | `Jit_parallel of int  (** JIT over this many OCaml domains *) ]

type t = {
  params : Params.t;
  state : State.t;
  tables : Material.tables;
  fi_beta : float;  (* single-material admittance for the FI kernels *)
  engine : engine;
  rt : Vgpu.Runtime.t;
  mutable launches : int;
}

let runtime_engine : engine -> Vgpu.Runtime.engine = function
  | `Interp -> Vgpu.Runtime.Interp
  | `Jit -> Vgpu.Runtime.Jit
  | `Jit_parallel domains -> Vgpu.Runtime.Jit_parallel { domains }

let create ?(engine = `Jit) ?(fi_beta = 0.1) ?(materials = Material.defaults)
    ?(n_branches = 3) params room =
  {
    params;
    state = State.create ~n_branches room;
    tables = Material.tables ~n_branches materials;
    fi_beta;
    engine;
    rt = Vgpu.Runtime.create ~engine:(runtime_engine engine) ();
    launches = 0;
  }

let scalar_int t name =
  let { Geometry.nx; ny; nz } = t.state.room.Geometry.dims in
  match name with
  | "Nx" -> nx
  | "Ny" -> ny
  | "Nz" -> nz
  | "NxNy" -> nx * ny
  | "N" -> nx * ny * nz
  | "nB" -> Geometry.n_boundary t.state.room
  | "MB" -> t.state.n_branches
  | "NM" -> Array.length t.tables.Material.t_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown int scalar %s" name)

let scalar_real t name =
  match name with
  | "l" -> Params.l t.params
  | "l2" -> Params.l2 t.params
  | "beta" -> t.fi_beta
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown real scalar %s" name)

let buffer t name : Vgpu.Buffer.t =
  let st = t.state in
  let room = st.room in
  match name with
  | "prev" -> Vgpu.Buffer.F st.prev
  | "curr" -> Vgpu.Buffer.F st.curr
  | "next" -> Vgpu.Buffer.F st.next
  | "nbrs" -> Vgpu.Buffer.I room.Geometry.nbrs
  | "bidx" -> Vgpu.Buffer.I room.Geometry.boundary_indices
  | "material" -> Vgpu.Buffer.I room.Geometry.material
  | "beta" -> Vgpu.Buffer.F t.tables.Material.t_beta
  | "beta_fd" -> Vgpu.Buffer.F t.tables.Material.t_beta_fd
  | "bi" -> Vgpu.Buffer.F t.tables.Material.t_bi
  | "d" -> Vgpu.Buffer.F t.tables.Material.t_d
  | "f" -> Vgpu.Buffer.F t.tables.Material.t_f
  | "di" -> Vgpu.Buffer.F t.tables.Material.t_di
  | "g1" -> Vgpu.Buffer.F st.g1
  | "v2" -> Vgpu.Buffer.F st.vel_prev
  | "v1" -> Vgpu.Buffer.F st.vel_next
  | _ -> failwith (Printf.sprintf "gpu_sim: unknown buffer %s" name)

(* Bind buffer params into the runtime (the state arrays rotate between
   steps, so bindings refresh on every launch) and resolve scalars. *)
let args_for t (k : kernel) =
  List.map
    (fun p ->
      match (p.p_kind, p.p_ty) with
      | Global_buf, _ ->
          Vgpu.Runtime.bind t.rt p.p_name (buffer t p.p_name);
          Vgpu.Runtime.A_buf p.p_name
      | Scalar_param, Int -> Vgpu.Runtime.A_int (scalar_int t p.p_name)
      | Scalar_param, Real -> Vgpu.Runtime.A_real (scalar_real t p.p_name))
    k.params

(* Resolve the kernel's symbolic global size against the scalar
   environment. *)
let global_size t (k : kernel) =
  List.map
    (fun e ->
      match e with
      | Int_lit n -> n
      | Var name -> scalar_int t name
      | _ -> failwith "gpu_sim: unsupported global size expression")
    k.global_size

let launch t (k : kernel) =
  let args = args_for t k in
  let global = global_size t k in
  t.launches <- t.launches + 1;
  Vgpu.Runtime.run_op t.rt (Vgpu.Runtime.Launch { kernel = k; args; global })

let stats t = Vgpu.Runtime.stats t.rt

(* One time step: run each kernel in order, then rotate the buffers. *)
let step t (kernels : kernel list) =
  List.iter (launch t) kernels;
  State.rotate t.state

(* Run [steps] steps recording the field at the receiver after each. *)
let run t (kernels : kernel list) ~steps ~receiver:(rx, ry, rz) =
  let out = Array.make steps 0. in
  for n = 0 to steps - 1 do
    step t kernels;
    out.(n) <- State.read t.state ~x:rx ~y:ry ~z:rz
  done;
  out
