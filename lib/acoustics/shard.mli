(** Z-axis domain decomposition of the acoustics grid across virtual
    devices.

    The grid is cut into contiguous slabs of whole XY planes; a shard
    owns global planes [z0, z1) and holds (z1-z0)+2*halo local planes —
    the owned planes plus [halo] ghost planes each side, where [halo] is
    the temporal block depth T.  Out-of-grid ghosts stay zero (the
    grid-edge halo); interior ghosts are refreshed from the neighbouring
    shard by a depth-[halo] exchange once per block of T steps, and the
    halo-1 ghost planes nearest the owned region carry real geometry so
    the in-block launches recompute them redundantly.  Boundary data
    re-bases to shard-local coordinates at plan time: the ascending
    global boundary-index array makes each shard's (halo-extended)
    boundary range contiguous, so the branch-major FD state
    (ci = b*nB + i) re-bases per branch as contiguous slices.

    Every owned point is computed by exactly one shard from inputs
    identical to the unsharded arrays, so sharded runs are bit-for-bit
    equal to single-device runs. *)

type slab = { z0 : int; z1 : int }  (** owns global planes [z0, z1) *)

val partition : nz:int -> shards:int -> slab array
(** Cut [nz] planes into at most [shards] non-empty contiguous slabs
    (clamped to [nz]; sizes differ by at most one plane). *)

type shard = {
  index : int;
  z0 : int;  (** first owned global plane *)
  z1 : int;  (** one past the last owned global plane *)
  plane : int;  (** nx * ny *)
  halo : int;  (** ghost planes per side (the temporal block depth T) *)
  planes : int;  (** z1 - z0 + 2*halo: owned planes plus the ghosts *)
  base : int;  (** global linear index of local index 0: (z0-halo)*plane *)
  local_n : int;  (** planes * plane *)
  nbrs : int array;
      (** local neighbour counts: real on local planes [1, planes-2],
          zero on the two extreme planes and outside the grid *)
  bidx : int array;  (** boundary indices re-based to local coordinates *)
  material : int array;  (** material ids of this shard's boundary points *)
  b_off : int;  (** offset of this shard's range in the global boundary array *)
  n_b : int;  (** boundary points in the extended (owned + ghost) range *)
  b_own0 : int;  (** offset of the first owned boundary point within [bidx] *)
  b_ownn : int;  (** boundary points actually owned by this shard *)
}

type plan = {
  room : Geometry.room;
  n_branches : int;
  shards : shard array;
}

val plan : ?n_branches:int -> ?halo:int -> shards:int -> Geometry.room -> plan
(** [halo] (default 1) is the ghost depth per side — the temporal block
    depth T — clamped to the thinnest slab's owned plane count. *)

val n_shards : plan -> int

val owner : plan -> z:int -> shard
(** The shard owning global plane [z].
    @raise Invalid_argument outside the grid. *)

(** {2 Shard-local simulation state} *)

type shard_state = {
  mutable prev : float array;
  mutable curr : float array;
  mutable next : float array;
  mutable next2 : float array;
      (** u at t+T-1, written by fused T-step kernels *)
  mutable g1 : float array;
  mutable vel_prev : float array;  (** v2 *)
  mutable vel_next : float array;  (** v1 *)
}

val create_states : plan -> shard_state array

val rotate_state : shard_state -> unit
(** Mirror of {!State.rotate} on a shard's local arrays. *)

val rotate_state_fused : shard_state -> unit
(** Mirror of {!State.rotate_fused}: next becomes curr, next2 becomes
    prev, the two stale grids recycle as write targets. *)

val scatter : plan -> State.t -> shard_state array -> unit
(** Distribute the global state to the shards (owned + ghost planes;
    branch state by contiguous per-branch slices). *)

val gather : plan -> shard_state array -> State.t -> unit
(** Re-assemble the global state from the shards' owned planes and owned
    boundary-state slices. *)

val scatter_slab : shard -> src:float array -> dst:float array -> unit
val gather_slab : shard -> src:float array -> dst:float array -> unit

(** {2 Interior/frontier decomposition} *)

type range_kind =
  | Interior  (** owned planes whose stencils touch no exchanged ghost *)
  | Frontier_lo  (** planes whose stencils read the bottom ghost zone *)
  | Frontier_hi  (** planes whose stencils read the top ghost zone *)
  | Frontier_both  (** planes reading both ghost zones (thin shard) *)

val split_ranges : shard -> (range_kind * int * int) list
(** Cut the shard's flat local index range into the launches of the
    overlapped schedule: [(kind, offset, count)] in elements, interior
    range (when the shard owns ≥ 3 planes) first.  Frontier ranges are
    [halo] planes deep — exactly the writes whose stencils read data the
    previous block's exchange delivered.  The two extreme ghost planes
    are in no range — their [nbrs] are zero, the kernels only write
    zeros there, and the exchange or the scattered zeros supply those
    cells, so the split is bit-identical to the full-range launch. *)

val exchange_ops : ?depth:int -> plan -> buffer:string -> Vgpu.Multi.plan
(** The halo exchange over [buffer]: across each interior cut, the lower
    shard's top [depth] owned planes refresh the upper shard's ghost
    planes nearest the cut and vice versa.  [depth] defaults to the full
    halo; a shallower depth leaves the farther ghost planes stale (used
    for the [curr] buffer at a block boundary, which only needs depth
    T-1 validity). *)

val state_exchange_ops : plan -> buffer:string -> Vgpu.Multi.plan
(** Refresh the ghost (non-owned) slices of a branch-major
    boundary-state buffer from their owning neighbour across each
    interior cut — per branch, contiguous prefix/suffix copies.  Empty
    at halo = 1. *)
