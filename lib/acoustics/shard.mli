(** Z-axis domain decomposition of the acoustics grid across virtual
    devices.

    The grid is cut into contiguous slabs of whole XY planes; a shard
    owns global planes [z0, z1) and holds (z1-z0)+2 local planes — the
    owned planes plus one ghost plane each side.  Out-of-grid ghosts
    stay zero (the grid-edge halo); interior ghosts are refreshed from
    the neighbouring shard by a halo exchange after the kernels of each
    time step.  Boundary data re-bases to shard-local coordinates at
    plan time: the ascending global boundary-index array makes each
    shard's boundary points one contiguous range, so the branch-major
    FD state (ci = b*nB + i) re-bases per branch as contiguous slices.

    Every owned point is computed by exactly one shard from inputs
    identical to the unsharded arrays, so sharded runs are bit-for-bit
    equal to single-device runs. *)

type slab = { z0 : int; z1 : int }  (** owns global planes [z0, z1) *)

val partition : nz:int -> shards:int -> slab array
(** Cut [nz] planes into at most [shards] non-empty contiguous slabs
    (clamped to [nz]; sizes differ by at most one plane). *)

type shard = {
  index : int;
  z0 : int;  (** first owned global plane *)
  z1 : int;  (** one past the last owned global plane *)
  plane : int;  (** nx * ny *)
  planes : int;  (** z1 - z0 + 2: owned planes plus two ghosts *)
  base : int;  (** global linear index of local index 0: (z0-1)*plane *)
  local_n : int;  (** planes * plane *)
  nbrs : int array;  (** local neighbour counts, ghost planes zeroed *)
  bidx : int array;  (** boundary indices re-based to local coordinates *)
  material : int array;  (** material ids of this shard's boundary points *)
  b_off : int;  (** offset of this shard's range in the global boundary array *)
  n_b : int;  (** boundary points owned by this shard *)
}

type plan = {
  room : Geometry.room;
  n_branches : int;
  shards : shard array;
}

val plan : ?n_branches:int -> shards:int -> Geometry.room -> plan

val n_shards : plan -> int

val owner : plan -> z:int -> shard
(** The shard owning global plane [z].
    @raise Invalid_argument outside the grid. *)

(** {2 Shard-local simulation state} *)

type shard_state = {
  mutable prev : float array;
  mutable curr : float array;
  mutable next : float array;
  mutable g1 : float array;
  mutable vel_prev : float array;  (** v2 *)
  mutable vel_next : float array;  (** v1 *)
}

val create_states : plan -> shard_state array

val rotate_state : shard_state -> unit
(** Mirror of {!State.rotate} on a shard's local arrays. *)

val scatter : plan -> State.t -> shard_state array -> unit
(** Distribute the global state to the shards (owned + ghost planes;
    branch state by contiguous per-branch slices). *)

val gather : plan -> shard_state array -> State.t -> unit
(** Re-assemble the global state from the shards' owned planes. *)

val scatter_slab : shard -> src:float array -> dst:float array -> unit
val gather_slab : shard -> src:float array -> dst:float array -> unit

(** {2 Interior/frontier decomposition} *)

type range_kind =
  | Interior  (** owned planes not adjacent to a ghost plane *)
  | Frontier_lo  (** first owned plane: stencil reads the bottom ghost *)
  | Frontier_hi  (** last owned plane: stencil reads the top ghost *)
  | Frontier_both  (** single owned plane adjacent to both ghosts *)

val split_ranges : shard -> (range_kind * int * int) list
(** Cut the shard's flat local index range into the launches of the
    overlapped schedule: [(kind, offset, count)] in elements, interior
    range (when the shard owns ≥ 3 planes) first.  Ghost planes are in
    no range — the sequential volume kernel only writes zeros there
    (ghost [nbrs] are zero) and the halo exchange or the scattered zeros
    supply those cells, so the split is bit-identical to the full-range
    launch. *)

val exchange_ops : plan -> buffer:string -> Vgpu.Multi.plan
(** The halo exchange over [buffer]: across each interior cut, the lower
    shard's top owned plane refreshes the upper shard's bottom ghost and
    vice versa. *)
