(* Hand-written GPU kernels, as kernel ASTs.

   These mirror the paper's tuned OpenCL baselines (ports of Webb's and
   Hamilton et al.'s CUDA kernels, paper §VI): the same code the paper's
   Listings 1–4 show, expressed in [Kernel_ast.Cast].  They are the
   "OpenCL" side of every benchmark comparison, executed by the virtual
   GPU and timed by the performance model exactly like the Lift-generated
   kernels.

   One deliberate difference from the Lift-generated kernels, reported by
   the paper in §VII-B1: the hand-written FI-MM kernel keeps the
   per-material [beta] table hard-coded in private memory, whereas the
   Lift version receives it as a kernel argument in global memory. *)

open Kernel_ast.Cast

let r_half = Real_lit 0.5
let r_one = Real_lit 1.0
let r_two = Real_lit 2.0

(* 0.5 * l * (6 - nbr) * beta *)
let loss_coeff ~l ~nbr ~beta =
  r_half *: l *: Unop (To_real, Int_lit 6 -: nbr) *: beta

(* Listing 1: fused volume + boundary kernel for an implicit box room.
   3D NDRange over the full (halo-included) grid. *)
let fused_fi ~precision =
  let x = var "x" and y = var "y" and z = var "z" in
  let idx = var "idx" and nbr = var "nbr" in
  let nx = var "Nx" and ny = var "Ny" and nz = var "Nz" in
  let l = var "l" and l2 = var "l2" and beta = var "beta" in
  let plane = nx *: ny in
  let edge c lim = Ternary (c =: lim, Int_lit 0, Int_lit 1) in
  let s =
    load "curr" (idx -: Int_lit 1)
    +: load "curr" (idx +: Int_lit 1)
    +: load "curr" (idx -: nx)
    +: load "curr" (idx +: nx)
    +: load "curr" (idx -: plane)
    +: load "curr" (idx +: plane)
  in
  let fnbr = Unop (To_real, nbr) in
  let interior_update = ((r_two -: (l2 *: fnbr)) *: load "curr" idx) +: (l2 *: var "s") -: load "prev" idx in
  let boundary_update =
    (((r_two -: (l2 *: fnbr)) *: load "curr" idx)
    +: (l2 *: var "s")
    +: ((var "cf" -: r_one) *: load "prev" idx))
    /: (r_one +: var "cf")
  in
  {
    name = "fused_fi";
    precision;
    params =
      [
        param "prev" Real;
        param "curr" Real;
        param "next" Real;
        param ~kind:Scalar_param "Nx" Int;
        param ~kind:Scalar_param "Ny" Int;
        param ~kind:Scalar_param "Nz" Int;
        param ~kind:Scalar_param "l" Real;
        param ~kind:Scalar_param "l2" Real;
        param ~kind:Scalar_param "beta" Real;
      ];
    global_size = [ Var "Nx"; Var "Ny"; Var "Nz" ];
    local_size = [];
    body =
      [
        Decl (Int, "x", Some (Global_id 0));
        Decl (Int, "y", Some (Global_id 1));
        Decl (Int, "z", Some (Global_id 2));
        Decl (Int, "idx", Some ((z *: plane) +: (y *: nx) +: x));
        Decl
          ( Int,
            "nbr",
            Some
              (edge x (Int_lit 1) +: edge y (Int_lit 1) +: edge z (Int_lit 1)
              +: edge x (nx -: Int_lit 2)
              +: edge y (ny -: Int_lit 2)
              +: edge z (nz -: Int_lit 2)) );
        If
          ( x =: Int_lit 0
            ||: (y =: Int_lit 0)
            ||: (z =: Int_lit 0)
            ||: (x =: nx -: Int_lit 1)
            ||: (y =: ny -: Int_lit 1)
            ||: (z =: nz -: Int_lit 1),
            [ Assign ("nbr", Int_lit 0) ],
            [] );
        If
          ( nbr >: Int_lit 0,
            [
              Decl (Real, "s", Some s);
              If
                ( nbr <: Int_lit 6,
                  [
                    Decl (Real, "cf", Some (loss_coeff ~l ~nbr ~beta));
                    Store ("next", idx, boundary_update);
                  ],
                  [ Store ("next", idx, interior_update) ] );
            ],
            [] );
      ];
  }

(* Listing 2, kernel 1: the volume (air) kernel driven by the
   precomputed nbrs array.  1D NDRange over the linearised grid. *)
let volume ~precision =
  let idx = var "idx" and nbr = var "nbr" in
  let nx = var "Nx" and plane = var "NxNy" in
  let l2 = var "l2" in
  let s =
    load "curr" (idx -: Int_lit 1)
    +: load "curr" (idx +: Int_lit 1)
    +: load "curr" (idx -: nx)
    +: load "curr" (idx +: nx)
    +: load "curr" (idx -: plane)
    +: load "curr" (idx +: plane)
  in
  let fnbr = Unop (To_real, nbr) in
  {
    name = "volume";
    precision;
    params =
      [
        param "nbrs" Int;
        param "prev" Real;
        param "curr" Real;
        param "next" Real;
        param ~kind:Scalar_param "Nx" Int;
        param ~kind:Scalar_param "NxNy" Int;
        param ~kind:Scalar_param "N" Int;
        param ~kind:Scalar_param "l2" Real;
      ];
    global_size = [ Var "N" ];
    local_size = [];
    body =
      [
        Decl (Int, "idx", Some (Global_id 0));
        If
          ( idx <: var "N",
            [
              Decl (Int, "nbr", Some (load "nbrs" idx));
              If
                ( nbr >: Int_lit 0,
                  [
                    Decl (Real, "s", Some s);
                    Store
                      ( "next",
                        idx,
                        ((r_two -: (l2 *: fnbr)) *: load "curr" idx)
                        +: (l2 *: var "s")
                        -: load "prev" idx );
                  ],
                  [] );
            ],
            [] );
      ];
  }

(* Listing 2, kernel 2: single-material boundary handling. *)
let boundary_fi ~precision =
  let i = var "i" and idx = var "idx" and nbr = var "nbr" in
  let l = var "l" and beta = var "beta" in
  {
    name = "boundary_fi";
    precision;
    params =
      [
        param "bidx" Int;
        param "nbrs" Int;
        param "prev" Real;
        param "next" Real;
        param ~kind:Scalar_param "nB" Int;
        param ~kind:Scalar_param "l" Real;
        param ~kind:Scalar_param "beta" Real;
      ];
    global_size = [ Var "nB" ];
    local_size = [];
    body =
      [
        Decl (Int, "i", Some (Global_id 0));
        If
          ( i <: var "nB",
            [
              Decl (Int, "idx", Some (load "bidx" i));
              Decl (Int, "nbr", Some (load "nbrs" idx));
              Decl (Real, "cf", Some (loss_coeff ~l ~nbr ~beta));
              Store
                ( "next",
                  idx,
                  (load "next" idx +: (var "cf" *: load "prev" idx)) /: (r_one +: var "cf") );
            ],
            [] );
      ];
  }

(* Listing 3: frequency-independent multi-material boundary handling.
   The hand-written version holds the per-material beta table in private
   memory, initialised from compile-time constants ([betas]); this is the
   difference the paper calls out against the Lift version on NVIDIA in
   double precision. *)
let boundary_fi_mm ~precision ~(betas : float array) =
  let i = var "i" and idx = var "idx" and nbr = var "nbr" and mi = var "mi" in
  let l = var "l" in
  let n_mat = Array.length betas in
  let init_beta =
    List.init n_mat (fun m -> Store ("beta_p", Int_lit m, Real_lit betas.(m)))
  in
  {
    name = "boundary_fi_mm";
    precision;
    params =
      [
        param "bidx" Int;
        param "nbrs" Int;
        param "material" Int;
        param "prev" Real;
        param "next" Real;
        param ~kind:Scalar_param "nB" Int;
        param ~kind:Scalar_param "l" Real;
      ];
    global_size = [ Var "nB" ];
    local_size = [];
    body =
      [ Decl_arr (Real, "beta_p", n_mat) ]
      @ init_beta
      @ [
          Decl (Int, "i", Some (Global_id 0));
          If
            ( i <: var "nB",
              [
                Decl (Int, "idx", Some (load "bidx" i));
                Decl (Int, "nbr", Some (load "nbrs" idx));
                Decl (Int, "mi", Some (load "material" i));
                Decl (Real, "cf", Some (loss_coeff ~l ~nbr ~beta:(load "beta_p" mi)));
                Store
                  ( "next",
                    idx,
                    (load "next" idx +: (var "cf" *: load "prev" idx))
                    /: (r_one +: var "cf") );
              ],
              [] );
        ];
  }

(* Listing 4: frequency-dependent multi-material boundary handling with
   [mb] ODE branches.  Branch state is branch-major:
   ci = b * nB + i.  Coefficient tables are flat [mi * mb + b]. *)
let boundary_fd_mm ~precision ~mb =
  let i = var "i" and idx = var "idx" and nbr = var "nbr" and mi = var "mi" in
  let b = var "b" in
  let l = var "l" in
  let nb = var "nB" in
  let ci = (b *: nb) +: i in
  let tbl name = load name ((mi *: Int_lit mb) +: b) in
  let gather_loop =
    for_ "b" ~from:(Int_lit 0) ~below:(Int_lit mb)
      [
        Store ("tg1", b, load "g1" ci);
        Store ("tv2", b, load "v2" ci);
        Assign
          ( "nv",
            var "nv"
            -: (var "cf1" *: tbl "bi"
               *: ((r_two *: tbl "d" *: load "tv2" b) -: (tbl "f" *: load "tg1" b))) );
      ]
  in
  let scatter_loop =
    for_ "b" ~from:(Int_lit 0) ~below:(Int_lit mb)
      [
        Decl
          ( Real,
            "v1n",
            Some
              (tbl "bi"
              *: (var "nv" -: var "pv"
                 +: (tbl "di" *: load "tv2" b)
                 -: (r_two *: tbl "f" *: load "tg1" b))) );
        Store ("g1", ci, load "tg1" b +: (r_half *: (var "v1n" +: load "tv2" b)));
        Store ("v1", ci, var "v1n");
      ]
  in
  {
    name = "boundary_fd_mm";
    precision;
    params =
      [
        param "bidx" Int;
        param "nbrs" Int;
        param "material" Int;
        param "beta_fd" Real;
        param "bi" Real;
        param "d" Real;
        param "f" Real;
        param "di" Real;
        param "prev" Real;
        param "next" Real;
        param "g1" Real;
        param "v2" Real;
        param "v1" Real;
        param ~kind:Scalar_param "nB" Int;
        param ~kind:Scalar_param "l" Real;
      ];
    global_size = [ Var "nB" ];
    local_size = [];
    body =
      [
        Decl_arr (Real, "tg1", mb);
        Decl_arr (Real, "tv2", mb);
        Decl (Int, "i", Some (Global_id 0));
        If
          ( i <: nb,
            [
              Decl (Int, "idx", Some (load "bidx" i));
              Decl (Int, "nbr", Some (load "nbrs" idx));
              Decl (Int, "mi", Some (load "material" i));
              Decl (Real, "cf1", Some (l *: Unop (To_real, Int_lit 6 -: nbr)));
              Decl (Real, "cf", Some (r_half *: var "cf1" *: load "beta_fd" mi));
              Decl (Real, "nv", Some (load "next" idx));
              Decl (Real, "pv", Some (load "prev" idx));
              gather_loop;
              Assign ("nv", (var "nv" +: (var "cf" *: var "pv")) /: (r_one +: var "cf"));
              Store ("next", idx, var "nv");
              scatter_loop;
            ],
            [] );
      ];
  }
