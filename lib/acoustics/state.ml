(* Mutable simulation state: the three grid time levels plus, for
   frequency-dependent boundaries, the per-boundary-point branch state.

   Grids rotate each step (prev <- curr <- next) without copying, exactly
   as the paper's host code reuses buffers across kernel launches. *)

type t = {
  room : Geometry.room;
  n_branches : int;
  mutable prev : float array;  (* u at t-1 *)
  mutable curr : float array;  (* u at t   *)
  mutable next : float array;  (* u at t+1, written by the kernels *)
  mutable next2 : float array;
  (* u at t+T-1 when a fused T-step kernel writes its last two
     generations; unused (all zero) by the per-step kernels *)
  (* FD-MM branch state, length n_branches * n_boundary, branch-major
     (ci = b * numBoundaryPoints + i) as in the paper's Listing 4. *)
  mutable g1 : float array;
  mutable vel_prev : float array;  (* v2: branch velocity at the previous step *)
  mutable vel_next : float array;  (* v1: branch velocity at the new step *)
}

let create ?(n_branches = 0) room =
  let n = Geometry.n_points room.Geometry.dims in
  let nb = Geometry.n_boundary room in
  let bstate () = Array.make (max 1 (n_branches * nb)) 0. in
  {
    room;
    n_branches;
    prev = Array.make n 0.;
    curr = Array.make n 0.;
    next = Array.make n 0.;
    next2 = Array.make n 0.;
    g1 = bstate ();
    vel_prev = bstate ();
    vel_next = bstate ();
  }

(* Rotate after a completed time step: the freshly written [next] becomes
   [curr]; the old [prev] array is recycled as the new [next]. *)
let rotate t =
  let old_prev = t.prev in
  t.prev <- t.curr;
  t.curr <- t.next;
  t.next <- old_prev;
  let old_vel = t.vel_prev in
  t.vel_prev <- t.vel_next;
  t.vel_next <- old_vel

(* Rotate after a fused T-step launch that wrote u(t+T) into [next] and
   u(t+T-1) into [next2]: those become the new curr/prev pair and the two
   stale arrays are recycled as the new write targets. *)
let rotate_fused t =
  let old_prev = t.prev and old_curr = t.curr in
  t.prev <- t.next2;
  t.curr <- t.next;
  t.next <- old_prev;
  t.next2 <- old_curr

let idx_of t ~x ~y ~z =
  let { Geometry.nx; ny; _ } = t.room.Geometry.dims in
  (z * nx * ny) + (y * nx) + x

(* Inject a Kronecker impulse into the current time level. *)
let add_impulse ?(amplitude = 1.0) t ~x ~y ~z =
  let idx = idx_of t ~x ~y ~z in
  if t.room.Geometry.nbrs.(idx) = 0 then invalid_arg "State.add_impulse: point outside room";
  t.curr.(idx) <- t.curr.(idx) +. amplitude

let read t ~x ~y ~z = t.curr.(idx_of t ~x ~y ~z)

(* Centre of the room: a convenient default source/receiver position. *)
let centre t =
  let { Geometry.nx; ny; nz } = t.room.Geometry.dims in
  (nx / 2, ny / 2, nz / 2)
