(* Z-axis domain decomposition of the acoustics grid across virtual
   devices.

   The Nx*Ny*Nz grid is cut into contiguous slabs of whole XY planes;
   shard [i] owns global planes [z0, z1) and holds a local grid of
   (z1-z0)+2 planes — its owned planes plus one ghost plane on each
   side.  Ghost planes that fall outside the global grid stay zero (the
   same zero halo the stencil relies on at the grid edge); interior
   ghost planes are refreshed from the neighbouring shard's freshly
   written plane by a halo exchange after the kernels of each time step.

   Everything a kernel launch needs becomes shard-local at plan time:

   - [nbrs] is the global array restricted to the owned planes, with the
     ghost planes zeroed — so the volume kernel, which guards on
     [nbr > 0], never updates a ghost point;
   - the global [boundary_indices] array is ascending (built in linear
     index order), so a shard's boundary points are one contiguous range
     [b_off, b_off + n_b) of it; the indices re-base by subtracting the
     local base offset, and the branch-major FD state (ci = b*nB + i)
     re-bases per branch as contiguous slices;
   - the per-boundary-point [material] ids are the matching sub-array.

   Bit-for-bit equality with the single-device run follows: every owned
   point is computed by exactly one shard, from inputs (owned planes
   scattered from the global grid, ghost planes exact copies of the
   neighbour's owned planes) identical to the unsharded arrays. *)

type slab = { z0 : int; z1 : int }

(* Cut [nz] planes into at most [shards] non-empty contiguous slabs. *)
let partition ~nz ~shards =
  let shards = max 1 (min shards nz) in
  Array.init shards (fun i -> { z0 = i * nz / shards; z1 = (i + 1) * nz / shards })

type shard = {
  index : int;
  z0 : int;  (* first owned global plane *)
  z1 : int;  (* one past the last owned global plane *)
  plane : int;  (* nx * ny *)
  planes : int;  (* z1 - z0 + 2: owned planes plus two ghosts *)
  base : int;  (* global linear index of local index 0, i.e. (z0-1)*plane *)
  local_n : int;  (* planes * plane *)
  nbrs : int array;  (* local neighbour counts, ghost planes zeroed *)
  bidx : int array;  (* boundary indices re-based to local coordinates *)
  material : int array;  (* material ids of this shard's boundary points *)
  b_off : int;  (* offset of this shard's range in the global boundary array *)
  n_b : int;  (* boundary points owned by this shard *)
}

type plan = {
  room : Geometry.room;
  n_branches : int;
  shards : shard array;
}

(* First index in ascending [a] whose value is >= [v]. *)
let lower_bound (a : int array) v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let make_shard (room : Geometry.room) index (sl : slab) =
  let z0 = sl.z0 and z1 = sl.z1 in
  let { Geometry.nx; ny; _ } = room.Geometry.dims in
  let plane = nx * ny in
  let planes = z1 - z0 + 2 in
  let base = (z0 - 1) * plane in
  let local_n = planes * plane in
  let nbrs = Array.make local_n 0 in
  Array.blit room.Geometry.nbrs (z0 * plane) nbrs plane ((z1 - z0) * plane);
  let gb = room.Geometry.boundary_indices in
  let b_off = lower_bound gb (z0 * plane) in
  let b_end = lower_bound gb (z1 * plane) in
  let n_b = b_end - b_off in
  let bidx = Array.init n_b (fun i -> gb.(b_off + i) - base) in
  let material = Array.sub room.Geometry.material b_off n_b in
  { index; z0; z1; plane; planes; base; local_n; nbrs; bidx; material; b_off; n_b }

let plan ?(n_branches = 0) ~shards room =
  let slabs = partition ~nz:room.Geometry.dims.Geometry.nz ~shards in
  { room; n_branches; shards = Array.mapi (make_shard room) slabs }

let n_shards p = Array.length p.shards

(* The shard owning global plane [z]. *)
let owner p ~z =
  match Array.find_opt (fun s -> s.z0 <= z && z < s.z1) p.shards with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Shard.owner: plane %d outside the grid" z)

(* -- Shard-local simulation state ----------------------------------- *)

type shard_state = {
  mutable prev : float array;
  mutable curr : float array;
  mutable next : float array;
  mutable g1 : float array;
  mutable vel_prev : float array;  (* v2 *)
  mutable vel_next : float array;  (* v1 *)
}

let create_state p (s : shard) =
  let grid () = Array.make s.local_n 0. in
  let bstate () = Array.make (max 1 (p.n_branches * s.n_b)) 0. in
  {
    prev = grid ();
    curr = grid ();
    next = grid ();
    g1 = bstate ();
    vel_prev = bstate ();
    vel_next = bstate ();
  }

let create_states p = Array.map (create_state p) p.shards

(* Mirror of [State.rotate] on a shard's local arrays. *)
let rotate_state ss =
  let old_prev = ss.prev in
  ss.prev <- ss.curr;
  ss.curr <- ss.next;
  ss.next <- old_prev;
  let old_vel = ss.vel_prev in
  ss.vel_prev <- ss.vel_next;
  ss.vel_next <- old_vel

(* Global grid -> shard-local slab, plane by plane: owned and interior
   ghost planes copy from the global array, out-of-grid ghosts zero. *)
let scatter_slab (s : shard) ~(src : float array) ~(dst : float array) =
  let nz = Array.length src / s.plane in
  for p = 0 to s.planes - 1 do
    let z = s.z0 - 1 + p in
    if z < 0 || z >= nz then Array.fill dst (p * s.plane) s.plane 0.
    else Array.blit src (z * s.plane) dst (p * s.plane) s.plane
  done

(* Shard-local slab -> global grid: owned planes only. *)
let gather_slab (s : shard) ~(src : float array) ~(dst : float array) =
  Array.blit src s.plane dst (s.z0 * s.plane) ((s.z1 - s.z0) * s.plane)

(* Branch-major boundary state: global ci = b*nB_global + (b_off + i)
   maps to local ci = b*n_b + i, one contiguous slice per branch. *)
let scatter_bstate p (s : shard) ~(src : float array) ~(dst : float array) =
  let nb_global = Geometry.n_boundary p.room in
  for b = 0 to p.n_branches - 1 do
    Array.blit src ((b * nb_global) + s.b_off) dst (b * s.n_b) s.n_b
  done

let gather_bstate p (s : shard) ~(src : float array) ~(dst : float array) =
  let nb_global = Geometry.n_boundary p.room in
  for b = 0 to p.n_branches - 1 do
    Array.blit src (b * s.n_b) dst ((b * nb_global) + s.b_off) s.n_b
  done

let scatter p (st : State.t) (sstates : shard_state array) =
  Array.iteri
    (fun i (s : shard) ->
      let ss = sstates.(i) in
      scatter_slab s ~src:st.State.prev ~dst:ss.prev;
      scatter_slab s ~src:st.State.curr ~dst:ss.curr;
      scatter_slab s ~src:st.State.next ~dst:ss.next;
      scatter_bstate p s ~src:st.State.g1 ~dst:ss.g1;
      scatter_bstate p s ~src:st.State.vel_prev ~dst:ss.vel_prev;
      scatter_bstate p s ~src:st.State.vel_next ~dst:ss.vel_next)
    p.shards

let gather p (sstates : shard_state array) (st : State.t) =
  Array.iteri
    (fun i (s : shard) ->
      let ss = sstates.(i) in
      gather_slab s ~src:ss.prev ~dst:st.State.prev;
      gather_slab s ~src:ss.curr ~dst:st.State.curr;
      gather_slab s ~src:ss.next ~dst:st.State.next;
      gather_bstate p s ~src:ss.g1 ~dst:st.State.g1;
      gather_bstate p s ~src:ss.vel_prev ~dst:st.State.vel_prev;
      gather_bstate p s ~src:ss.vel_next ~dst:st.State.vel_next)
    p.shards

(* -- Interior/frontier decomposition -------------------------------- *)

type range_kind =
  | Interior  (* owned planes not adjacent to a ghost plane *)
  | Frontier_lo  (* first owned plane: stencil reads the bottom ghost *)
  | Frontier_hi  (* last owned plane: stencil reads the top ghost *)
  | Frontier_both  (* single owned plane adjacent to both ghosts *)

(* Cut a shard's flat local index range into the launches of the
   overlapped schedule: one (possibly empty) interior range covering
   owned planes whose stencils touch no ghost data, plus thin frontier
   ranges (one plane each) whose stencils read a ghost plane and must
   therefore wait on the previous step's halo exchange.  Offsets and
   counts are in elements of the local slab; the ghost planes themselves
   (local planes 0 and planes-1) are in no range — their [nbrs] entries
   are zero, so the sequential volume kernel only ever writes zeros
   there, and those cells are either rewritten by the exchange (interior
   cuts) or scattered as zero and never touched again (grid edges),
   which keeps the split bit-identical to the full-range launch. *)
let split_ranges (s : shard) : (range_kind * int * int) list =
  let owned = s.z1 - s.z0 in
  if owned <= 1 then [ (Frontier_both, s.plane, s.plane) ]
  else if owned = 2 then
    [ (Frontier_lo, s.plane, s.plane); (Frontier_hi, 2 * s.plane, s.plane) ]
  else
    (* interior first: it carries no event wait, so an in-order queue
       starts it immediately while the frontiers wait on the halo *)
    [
      (Interior, 2 * s.plane, (owned - 2) * s.plane);
      (Frontier_lo, s.plane, s.plane);
      (Frontier_hi, (s.planes - 2) * s.plane, s.plane);
    ]

(* Halo exchange over buffer [name]: across each interior cut, the lower
   shard's top owned plane refreshes the upper shard's bottom ghost, and
   the upper shard's bottom owned plane refreshes the lower shard's top
   ghost. *)
let exchange_ops p ~buffer : Vgpu.Multi.plan =
  let ops = ref [] in
  for i = Array.length p.shards - 2 downto 0 do
    let lo = p.shards.(i) and hi = p.shards.(i + 1) in
    ops :=
      Vgpu.Multi.Exchange
        {
          src_dev = lo.index;
          src = buffer;
          src_off = (lo.planes - 2) * lo.plane;
          dst_dev = hi.index;
          dst = buffer;
          dst_off = 0;
          elems = lo.plane;
        }
      :: Vgpu.Multi.Exchange
           {
             src_dev = hi.index;
             src = buffer;
             src_off = hi.plane;
             dst_dev = lo.index;
             dst = buffer;
             dst_off = (lo.planes - 1) * lo.plane;
             elems = lo.plane;
           }
      :: !ops
  done;
  !ops
