(* Z-axis domain decomposition of the acoustics grid across virtual
   devices.

   The Nx*Ny*Nz grid is cut into contiguous slabs of whole XY planes;
   shard [i] owns global planes [z0, z1) and holds a local grid of
   (z1-z0)+2 planes — its owned planes plus one ghost plane on each
   side.  Ghost planes that fall outside the global grid stay zero (the
   same zero halo the stencil relies on at the grid edge); interior
   ghost planes are refreshed from the neighbouring shard's freshly
   written plane by a halo exchange after the kernels of each time step.

   Everything a kernel launch needs becomes shard-local at plan time:

   - [nbrs] is the global array restricted to the owned planes, with the
     ghost planes zeroed — so the volume kernel, which guards on
     [nbr > 0], never updates a ghost point;
   - the global [boundary_indices] array is ascending (built in linear
     index order), so a shard's boundary points are one contiguous range
     [b_off, b_off + n_b) of it; the indices re-base by subtracting the
     local base offset, and the branch-major FD state (ci = b*nB + i)
     re-bases per branch as contiguous slices;
   - the per-boundary-point [material] ids are the matching sub-array.

   Bit-for-bit equality with the single-device run follows: every owned
   point is computed by exactly one shard, from inputs (owned planes
   scattered from the global grid, ghost planes exact copies of the
   neighbour's owned planes) identical to the unsharded arrays. *)

type slab = { z0 : int; z1 : int }

(* Cut [nz] planes into at most [shards] non-empty contiguous slabs. *)
let partition ~nz ~shards =
  let shards = max 1 (min shards nz) in
  Array.init shards (fun i -> { z0 = i * nz / shards; z1 = (i + 1) * nz / shards })

type shard = {
  index : int;
  z0 : int;  (* first owned global plane *)
  z1 : int;  (* one past the last owned global plane *)
  plane : int;  (* nx * ny *)
  halo : int;  (* ghost planes per side (the temporal block depth T) *)
  planes : int;  (* z1 - z0 + 2*halo: owned planes plus the ghosts *)
  base : int;  (* global linear index of local index 0, i.e. (z0-halo)*plane *)
  local_n : int;  (* planes * plane *)
  nbrs : int array;
  (* local neighbour counts: real values on local planes [1, planes-2]
     (owned planes plus the halo-1 ghost planes the blocked schedule
     recomputes redundantly), zero on the two extreme planes and
     outside the grid — the [nbr > 0] guard then keeps every stencil
     read in bounds *)
  bidx : int array;  (* boundary indices re-based to local coordinates *)
  material : int array;  (* material ids of this shard's boundary points *)
  b_off : int;  (* offset of this shard's range in the global boundary array *)
  n_b : int;  (* boundary points in this shard's extended (owned + ghost) range *)
  b_own0 : int;  (* offset of the first owned boundary point within [bidx] *)
  b_ownn : int;  (* boundary points actually owned by this shard *)
}

type plan = {
  room : Geometry.room;
  n_branches : int;
  shards : shard array;
}

(* First index in ascending [a] whose value is >= [v]. *)
let lower_bound (a : int array) v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let make_shard ?(halo = 1) (room : Geometry.room) index (sl : slab) =
  let z0 = sl.z0 and z1 = sl.z1 in
  let { Geometry.nx; ny; nz } = room.Geometry.dims in
  let plane = nx * ny in
  let planes = z1 - z0 + (2 * halo) in
  let base = (z0 - halo) * plane in
  let local_n = planes * plane in
  let nbrs = Array.make local_n 0 in
  (* real neighbour counts on every local plane except the two extreme
     ones, clamped to the grid: the halo-1 inner ghost planes carry real
     geometry so the blocked schedule can recompute them redundantly *)
  for p = 1 to planes - 2 do
    let z = z0 - halo + p in
    if z >= 0 && z < nz then
      Array.blit room.Geometry.nbrs (z * plane) nbrs (p * plane) plane
  done;
  let gb = room.Geometry.boundary_indices in
  (* boundary range extended by the halo-1 redundantly recomputed ghost
     planes on each side (empty extension at halo = 1) *)
  let ze_lo = max 0 (z0 - (halo - 1)) and ze_hi = min nz (z1 + (halo - 1)) in
  let b_off = lower_bound gb (ze_lo * plane) in
  let b_end = lower_bound gb (ze_hi * plane) in
  let n_b = b_end - b_off in
  let b_own0 = lower_bound gb (z0 * plane) - b_off in
  let b_ownn = lower_bound gb (z1 * plane) - lower_bound gb (z0 * plane) in
  let bidx = Array.init n_b (fun i -> gb.(b_off + i) - base) in
  let material = Array.sub room.Geometry.material b_off n_b in
  {
    index;
    z0;
    z1;
    plane;
    halo;
    planes;
    base;
    local_n;
    nbrs;
    bidx;
    material;
    b_off;
    n_b;
    b_own0;
    b_ownn;
  }

let plan ?(n_branches = 0) ?(halo = 1) ~shards room =
  let slabs = partition ~nz:room.Geometry.dims.Geometry.nz ~shards in
  (* the halo exchange sources [halo] owned planes and the redundant
     recompute reaches halo-1 planes past the cut, so the depth is
     capped by the thinnest slab *)
  let min_owned =
    Array.fold_left (fun acc (sl : slab) -> min acc (sl.z1 - sl.z0)) max_int slabs
  in
  let halo = max 1 (min halo min_owned) in
  { room; n_branches; shards = Array.mapi (make_shard ~halo room) slabs }

let n_shards p = Array.length p.shards

(* The shard owning global plane [z]. *)
let owner p ~z =
  match Array.find_opt (fun s -> s.z0 <= z && z < s.z1) p.shards with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Shard.owner: plane %d outside the grid" z)

(* -- Shard-local simulation state ----------------------------------- *)

type shard_state = {
  mutable prev : float array;
  mutable curr : float array;
  mutable next : float array;
  mutable next2 : float array;  (* u at t+T-1, written by fused kernels *)
  mutable g1 : float array;
  mutable vel_prev : float array;  (* v2 *)
  mutable vel_next : float array;  (* v1 *)
}

let create_state p (s : shard) =
  let grid () = Array.make s.local_n 0. in
  let bstate () = Array.make (max 1 (p.n_branches * s.n_b)) 0. in
  {
    prev = grid ();
    curr = grid ();
    next = grid ();
    next2 = grid ();
    g1 = bstate ();
    vel_prev = bstate ();
    vel_next = bstate ();
  }

let create_states p = Array.map (create_state p) p.shards

(* Mirror of [State.rotate] on a shard's local arrays. *)
let rotate_state ss =
  let old_prev = ss.prev in
  ss.prev <- ss.curr;
  ss.curr <- ss.next;
  ss.next <- old_prev;
  let old_vel = ss.vel_prev in
  ss.vel_prev <- ss.vel_next;
  ss.vel_next <- old_vel

(* Mirror of [State.rotate_fused]: a fused T-step launch wrote u(t+T)
   into [next] and u(t+T-1) into [next2]. *)
let rotate_state_fused ss =
  let old_prev = ss.prev and old_curr = ss.curr in
  ss.prev <- ss.next2;
  ss.curr <- ss.next;
  ss.next <- old_prev;
  ss.next2 <- old_curr

(* Global grid -> shard-local slab, plane by plane: owned and interior
   ghost planes copy from the global array, out-of-grid ghosts zero. *)
let scatter_slab (s : shard) ~(src : float array) ~(dst : float array) =
  let nz = Array.length src / s.plane in
  for p = 0 to s.planes - 1 do
    let z = s.z0 - s.halo + p in
    if z < 0 || z >= nz then Array.fill dst (p * s.plane) s.plane 0.
    else Array.blit src (z * s.plane) dst (p * s.plane) s.plane
  done

(* Shard-local slab -> global grid: owned planes only. *)
let gather_slab (s : shard) ~(src : float array) ~(dst : float array) =
  Array.blit src (s.halo * s.plane) dst (s.z0 * s.plane) ((s.z1 - s.z0) * s.plane)

(* Branch-major boundary state: global ci = b*nB_global + (b_off + i)
   maps to local ci = b*n_b + i, one contiguous slice per branch. *)
let scatter_bstate p (s : shard) ~(src : float array) ~(dst : float array) =
  let nb_global = Geometry.n_boundary p.room in
  for b = 0 to p.n_branches - 1 do
    Array.blit src ((b * nb_global) + s.b_off) dst (b * s.n_b) s.n_b
  done

(* Gather only the owned slice of each branch: the extended-range ghost
   boundary points belong to (and are gathered from) the neighbour. *)
let gather_bstate p (s : shard) ~(src : float array) ~(dst : float array) =
  let nb_global = Geometry.n_boundary p.room in
  for b = 0 to p.n_branches - 1 do
    Array.blit src
      ((b * s.n_b) + s.b_own0)
      dst
      ((b * nb_global) + s.b_off + s.b_own0)
      s.b_ownn
  done

let scatter p (st : State.t) (sstates : shard_state array) =
  Array.iteri
    (fun i (s : shard) ->
      let ss = sstates.(i) in
      scatter_slab s ~src:st.State.prev ~dst:ss.prev;
      scatter_slab s ~src:st.State.curr ~dst:ss.curr;
      scatter_slab s ~src:st.State.next ~dst:ss.next;
      scatter_slab s ~src:st.State.next2 ~dst:ss.next2;
      scatter_bstate p s ~src:st.State.g1 ~dst:ss.g1;
      scatter_bstate p s ~src:st.State.vel_prev ~dst:ss.vel_prev;
      scatter_bstate p s ~src:st.State.vel_next ~dst:ss.vel_next)
    p.shards

let gather p (sstates : shard_state array) (st : State.t) =
  Array.iteri
    (fun i (s : shard) ->
      let ss = sstates.(i) in
      gather_slab s ~src:ss.prev ~dst:st.State.prev;
      gather_slab s ~src:ss.curr ~dst:st.State.curr;
      gather_slab s ~src:ss.next ~dst:st.State.next;
      gather_slab s ~src:ss.next2 ~dst:st.State.next2;
      gather_bstate p s ~src:ss.g1 ~dst:st.State.g1;
      gather_bstate p s ~src:ss.vel_prev ~dst:st.State.vel_prev;
      gather_bstate p s ~src:ss.vel_next ~dst:st.State.vel_next)
    p.shards

(* -- Interior/frontier decomposition -------------------------------- *)

type range_kind =
  | Interior  (* owned planes not adjacent to a ghost plane *)
  | Frontier_lo  (* first owned plane: stencil reads the bottom ghost *)
  | Frontier_hi  (* last owned plane: stencil reads the top ghost *)
  | Frontier_both  (* single owned plane adjacent to both ghosts *)

(* Cut a shard's flat local index range into the launches of the
   overlapped schedule: one (possibly empty) interior range covering
   owned planes whose stencils touch no ghost data, plus thin frontier
   ranges (one plane each) whose stencils read a ghost plane and must
   therefore wait on the previous step's halo exchange.  Offsets and
   counts are in elements of the local slab; the ghost planes themselves
   (local planes 0 and planes-1) are in no range — their [nbrs] entries
   are zero, so the sequential volume kernel only ever writes zeros
   there, and those cells are either rewritten by the exchange (interior
   cuts) or scattered as zero and never touched again (grid edges),
   which keeps the split bit-identical to the full-range launch. *)
let split_ranges (s : shard) : (range_kind * int * int) list =
  let owned = s.z1 - s.z0 and h = s.halo in
  if owned <= 1 then [ (Frontier_both, s.plane, (s.planes - 2) * s.plane) ]
  else if owned = 2 then
    [
      (Frontier_lo, s.plane, h * s.plane);
      (Frontier_hi, (h + 1) * s.plane, h * s.plane);
    ]
  else
    (* interior first: it carries no event wait, so an in-order queue
       starts it immediately while the frontiers wait on the halo *)
    [
      (Interior, (h + 1) * s.plane, (owned - 2) * s.plane);
      (Frontier_lo, s.plane, h * s.plane);
      (Frontier_hi, (s.planes - 1 - h) * s.plane, h * s.plane);
    ]

(* Halo exchange over buffer [name]: across each interior cut, the lower
   shard's top [depth] owned planes refresh the upper shard's bottom
   ghost planes nearest the cut, and vice versa.  [depth] defaults to the
   full halo; a shallower depth (e.g. halo-1 for the [curr] buffer at a
   block boundary) fills only the [depth] ghost planes nearest the owned
   region and leaves the farther ones stale on purpose. *)
let exchange_ops ?depth p ~buffer : Vgpu.Multi.plan =
  let ops = ref [] in
  for i = Array.length p.shards - 2 downto 0 do
    let lo = p.shards.(i) and hi = p.shards.(i + 1) in
    let h = lo.halo in
    let d = match depth with None -> h | Some d -> max 0 (min d h) in
    if d > 0 then
      ops :=
        Vgpu.Multi.Exchange
          {
            src_dev = lo.index;
            src = buffer;
            src_off = (lo.planes - h - d) * lo.plane;
            dst_dev = hi.index;
            dst = buffer;
            dst_off = (h - d) * hi.plane;
            elems = d * lo.plane;
          }
        :: Vgpu.Multi.Exchange
             {
               src_dev = hi.index;
               src = buffer;
               src_off = h * hi.plane;
               dst_dev = lo.index;
               dst = buffer;
               dst_off = (lo.planes - h) * lo.plane;
               elems = d * lo.plane;
             }
        :: !ops
  done;
  !ops

(* Refresh the ghost (redundantly recomputed, non-owned) slices of the
   branch-major boundary-state buffers across each interior cut.  A
   shard's extended boundary range is [owned-prefix ghosts][owned]
   [owned-suffix ghosts]; the prefix is owned by the lower neighbour and
   the suffix by the upper one, so at a block boundary each ghost slice
   is overwritten from its owner's (correct) copy.  Empty at halo = 1,
   where the extended range equals the owned range. *)
let state_exchange_ops p ~buffer : Vgpu.Multi.plan =
  let ops = ref [] in
  for i = Array.length p.shards - 2 downto 0 do
    let lo = p.shards.(i) and hi = p.shards.(i + 1) in
    for b = p.n_branches - 1 downto 0 do
      (* hi's ghost prefix, sourced from lo's owned points *)
      if hi.b_own0 > 0 then
        ops :=
          Vgpu.Multi.Exchange
            {
              src_dev = lo.index;
              src = buffer;
              src_off = (b * lo.n_b) + (hi.b_off - lo.b_off);
              dst_dev = hi.index;
              dst = buffer;
              dst_off = b * hi.n_b;
              elems = hi.b_own0;
            }
          :: !ops;
      (* lo's ghost suffix, sourced from hi's owned points *)
      let suffix = lo.n_b - lo.b_own0 - lo.b_ownn in
      if suffix > 0 then
        ops :=
          Vgpu.Multi.Exchange
            {
              src_dev = hi.index;
              src = buffer;
              src_off = (b * hi.n_b) + hi.b_own0;
              dst_dev = lo.index;
              dst = buffer;
              dst_off = (b * lo.n_b) + lo.b_own0 + lo.b_ownn;
              elems = suffix;
            }
          :: !ops
    done
  done;
  !ops
