(** Mutable simulation state: the three grid time levels plus, for
    frequency-dependent boundaries, the per-boundary-point branch state.
    Grids rotate each step without copying, as the paper's host code
    reuses buffers across kernel launches. *)

type t = {
  room : Geometry.room;
  n_branches : int;
  mutable prev : float array;  (** u at t-1 *)
  mutable curr : float array;  (** u at t *)
  mutable next : float array;  (** u at t+1, written by the kernels *)
  mutable next2 : float array;
      (** u at t+T-1, written by fused T-step kernels; zero otherwise *)
  mutable g1 : float array;
      (** FD branch displacement, branch-major: ci = b*nB + i *)
  mutable vel_prev : float array;  (** v2: branch velocity, previous step *)
  mutable vel_next : float array;  (** v1: branch velocity, new step *)
}

val create : ?n_branches:int -> Geometry.room -> t

val rotate : t -> unit
(** After a completed step: next becomes curr, curr becomes prev, and
    the branch velocities advance. *)

val rotate_fused : t -> unit
(** After a fused T-step launch: next becomes curr, next2 (u at t+T-1)
    becomes prev, and the two stale grids are recycled as the new
    next/next2 write targets. *)

val idx_of : t -> x:int -> y:int -> z:int -> int

val add_impulse : ?amplitude:float -> t -> x:int -> y:int -> z:int -> unit
(** @raise Invalid_argument outside the room. *)

val read : t -> x:int -> y:int -> z:int -> float
val centre : t -> int * int * int
