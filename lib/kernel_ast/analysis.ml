(* Static per-work-item resource analysis of a kernel AST.

   The virtual-GPU performance model is a roofline: it needs, per update,
   the global-memory traffic and the floating-point work.  Both are
   extracted from the AST itself (never hard-coded): loops multiply their
   body by the trip count; conditionals count the then-branch, i.e. the
   guarded fast path that active work-items execute (the model scales by
   the number of *active* points separately).

   Accesses are recorded per buffer, with an [indirect] flag set when the
   index expression depends on a value loaded from memory (the
   [idx = boundaryIndices[i]] gather/scatter idiom of boundary kernels).
   The performance model derates indirect traffic by a coalescing factor
   computed from the actual boundary layout, and treats small coefficient
   tables as cache-resident.

   The paper reports 45 memory accesses and 98 flops per FD-MM update and
   6 accesses / 7 flops for FI-MM (§VII-B2); the counts here are recomputed
   from the actual kernels so the model stays mechanistic. *)

open Cast

type access = {
  mutable loads : float;
  mutable stores : float;
  mutable indirect : bool;
  buf_ty : ty;
}

type t = {
  per_buffer : (string, access) Hashtbl.t;
  mutable flops : float;
  mutable iops : float;
  mutable local_loads : float;
  mutable local_stores : float;
}

type local_info = { l_ty : ty; l_tainted : bool }

type env = {
  buffer_ty : string -> ty option;
  param_value : string -> int option;
  locals : (string, local_info) Hashtbl.t;
  local_arrs : (string, unit) Hashtbl.t;
  acc : t;
}

let create () =
  { per_buffer = Hashtbl.create 16; flops = 0.; iops = 0.; local_loads = 0.; local_stores = 0. }

let access_of env buf =
  match Hashtbl.find_opt env.acc.per_buffer buf with
  | Some a -> Some a
  | None -> (
      match env.buffer_ty buf with
      | None -> None (* private array: register traffic, not global memory *)
      | Some buf_ty ->
          let a = { loads = 0.; stores = 0.; indirect = false; buf_ty } in
          Hashtbl.replace env.acc.per_buffer buf a;
          Some a)

let env_of_kernel ?(param_value = fun _ -> None) (k : kernel) =
  let buffers =
    List.filter_map
      (fun p -> if p.p_kind = Global_buf then Some (p.p_name, p.p_ty) else None)
      k.params
  in
  let locals = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if p.p_kind = Scalar_param then
        Hashtbl.replace locals p.p_name { l_ty = p.p_ty; l_tainted = false })
    k.params;
  {
    buffer_ty = (fun n -> List.assoc_opt n buffers);
    param_value;
    locals;
    local_arrs = Hashtbl.create 4;
    acc = create ();
  }

let rec eval_const env e =
  match Cast.simplify e with
  | Int_lit n -> Some n
  | Var v -> env.param_value v
  | Binop (op, a, b) -> (
      match (eval_const env a, eval_const env b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div when y <> 0 -> Some (x / y)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* An expression is tainted when its value depends on data loaded from
   global memory; a tainted index means a gather/scatter access. *)
let rec tainted env = function
  | Int_lit _ | Real_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _
  | Local_size _ -> false
  | Var v -> (
      match Hashtbl.find_opt env.locals v with Some l -> l.l_tainted | None -> false)
  | Load (_, _) -> true
  | Unop (_, a) -> tainted env a
  | Ternary (c, a, b) -> tainted env c || tainted env a || tainted env b
  | Call (_, args) -> List.exists (tainted env) args
  | Binop (_, a, b) -> tainted env a || tainted env b

let rec expr_is_real env = function
  | Real_lit _ -> true
  | Int_lit _ | Global_id _ | Global_size _ | Group_id _ | Local_id _ | Local_size _ ->
      false
  | Var v -> (
      match Hashtbl.find_opt env.locals v with Some l -> l.l_ty = Real | None -> false)
  | Load (b, _) -> (
      match env.buffer_ty b with
      | Some t -> t = Real
      | None -> (
          match Hashtbl.find_opt env.locals b with
          | Some l -> l.l_ty = Real
          | None -> true))
  | Unop ((To_real | Round), _) -> true
  | Unop (To_int, _) -> false
  | Unop (_, a) -> expr_is_real env a
  | Ternary (_, a, b) -> expr_is_real env a || expr_is_real env b
  | Call (_, _) -> true
  | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> expr_is_real env a || expr_is_real env b
  | Binop (_, _, _) -> false

(* [mult] is the product of the trip counts of enclosing loops. *)
let rec count_expr env ~mult e =
  match e with
  | Int_lit _ | Real_lit _ | Var _ | Global_id _ | Global_size _ | Group_id _
  | Local_id _ | Local_size _ -> ()
  | Load (b, i) ->
      count_expr env ~mult i;
      if Hashtbl.mem env.local_arrs b then
        env.acc.local_loads <- env.acc.local_loads +. mult
      else (
        match access_of env b with
        | None -> ()
        | Some a ->
            a.loads <- a.loads +. mult;
            if tainted env i then a.indirect <- true)
  | Unop (_, a) -> count_expr env ~mult a
  | Ternary (c, a, b) ->
      (* A select executes both sides on a GPU; count both. *)
      count_expr env ~mult c;
      count_expr env ~mult a;
      count_expr env ~mult b
  | Call (_, args) ->
      env.acc.flops <- env.acc.flops +. mult;
      List.iter (count_expr env ~mult) args
  | Binop (op, a, b) ->
      count_expr env ~mult a;
      count_expr env ~mult b;
      let is_real =
        match op with
        | Add | Sub | Mul | Div -> expr_is_real env a || expr_is_real env b
        | _ -> false
      in
      if is_real then env.acc.flops <- env.acc.flops +. mult
      else env.acc.iops <- env.acc.iops +. mult

let rec count_stmt env ~mult s =
  match s with
  | Comment _ | Barrier -> ()
  | Decl_arr (t, v, _) -> Hashtbl.replace env.locals v { l_ty = t; l_tainted = false }
  | Decl_local (t, v, _) ->
      Hashtbl.replace env.locals v { l_ty = t; l_tainted = false };
      Hashtbl.replace env.local_arrs v ()
  | Decl (t, v, body) ->
      let l_tainted = match body with None -> false | Some e -> tainted env e in
      Hashtbl.replace env.locals v { l_ty = t; l_tainted };
      (match body with None -> () | Some e -> count_expr env ~mult e)
  | Assign (v, e) ->
      (match Hashtbl.find_opt env.locals v with
      | Some l when not l.l_tainted ->
          if tainted env e then Hashtbl.replace env.locals v { l with l_tainted = true }
      | _ -> ());
      count_expr env ~mult e
  | Store (b, i, e) ->
      count_expr env ~mult i;
      count_expr env ~mult e;
      if Hashtbl.mem env.local_arrs b then
        env.acc.local_stores <- env.acc.local_stores +. mult
      else (
        match access_of env b with
        | None -> ()
        | Some a ->
            a.stores <- a.stores +. mult;
            if tainted env i then a.indirect <- true)
  | If (c, t, _f) ->
      count_expr env ~mult c;
      List.iter (count_stmt env ~mult) t
  | For l -> (
      count_expr env ~mult l.init;
      count_expr env ~mult l.bound;
      let trip =
        match (eval_const env l.init, eval_const env l.bound, eval_const env l.step) with
        | Some i, Some b, Some s when s > 0 -> max 0 ((b - i + s - 1) / s)
        | _ -> 1 (* unknown bound: assume one iteration *)
      in
      (* The loop variable itself is never tainted. *)
      Hashtbl.replace env.locals l.var { l_ty = Int; l_tainted = false };
      List.iter (count_stmt env ~mult:(mult *. float_of_int trip)) l.body)

(* Per-work-item resource usage of [k].  [param_value] resolves scalar
   parameters that appear as loop bounds (e.g. the number of ODE branches
   when it is not baked in as a literal). *)
let kernel_counts ?param_value (k : kernel) =
  let env = env_of_kernel ?param_value k in
  List.iter (count_stmt env ~mult:1.) k.body;
  env.acc

(* Aggregate helpers over a per-buffer analysis. *)

let fold_buffers t f init =
  Hashtbl.fold (fun name a acc -> f acc name a) t.per_buffer init

let total_loads t = fold_buffers t (fun acc _ a -> acc +. a.loads) 0.
let total_stores t = fold_buffers t (fun acc _ a -> acc +. a.stores) 0.
let global_accesses t = total_loads t +. total_stores t

let elem_bytes ~precision = function
  | Real -> ( match precision with Single -> 4. | Double -> 8.)
  | Int -> 4.

(* Total bytes of global traffic per work-item, ignoring caching effects
   (the performance model refines this per buffer). *)
let bytes ~precision t =
  fold_buffers t
    (fun acc _ a -> acc +. ((a.loads +. a.stores) *. elem_bytes ~precision a.buf_ty))
    0.

let local_accesses t = t.local_loads +. t.local_stores

let pp ppf t =
  Fmt.pf ppf "flops=%.0f iops=%.0f accesses=%.0f" t.flops t.iops (global_accesses t);
  if local_accesses t > 0. then
    Fmt.pf ppf " local=%.0f" (local_accesses t);
  fold_buffers t
    (fun () name a ->
      Fmt.pf ppf "@ %s: loads=%.1f stores=%.1f%s" name a.loads a.stores
        (if a.indirect then " (indirect)" else ""))
    ()
