(** Static stencil-footprint inference over kernel ASTs.

    For every global buffer a kernel touches, infer the {e footprint} of
    its accesses: per grid axis, how far reads and writes reach relative
    to the cell the work-item owns — the quantity a halo exchange must
    cover (Devito's MPI-X derives communication schedules from exactly
    this; arXiv:2312.13094).

    The analysis reuses the interval/affine domain of {!module:Check}
    ({!module:Domain}) and adds {b value provenance}: every abstract
    value carries the set of global-buffer cells it was loaded from, and
    provenance flows through scalar registers, private arrays and
    [__local] staging buffers.  Loop-carried registers age by one
    iteration per trip (the [z]-march idiom of 2.5D-tiled stencils), so
    the tiled volume kernel's register-held below-plane reads surface as
    a [z-1] arm even though no load instruction mentions [z-1]:

    - a {b flat} 7-point stencil infers reads of [curr] at
      [x±1, y±1, z±1] from the six neighbour loads directly;
    - the {b tiled} variant stages a plane in local memory and marches
      [z] in a register; provenance through the tile and the aged
      register recovers the same [±1] extents;
    - {b interior/frontier} range launches ({!Cast.offset_global_id})
      keep their extents because the unknown [goff] parameter is
      launch-uniform ({!Domain.Tparam}) and cancels in offset
      differences.

    Offsets are relative to the {e anchor}: the buffer whose stores
    define the work-item's cell (the [next] grid by convention).
    Kernels whose stores are indirect scatters (the boundary kernels'
    [next\[bidx\[i\]\]]) get [None] relative extents and an
    [s_indirect] flag — the sanitizer's territory, as for
    {!module:Check}. *)

type axis = { ax_lo : int; ax_hi : int }
(** Inclusive relative offset range along one axis, [ax_lo <= 0 <= ax_hi]
    for any footprint that includes the cell itself. *)

(** One direction (reads or writes) of a buffer's footprint. *)
type side = {
  s_rel : axis array option;
      (** per-axis offset extents relative to the anchor cell (axis 0 is
          the unit-stride axis); [None] when some access could not be
          reduced to a constant offset (indirect index, or no anchor) *)
  s_abs : Domain.itv array;
      (** per-axis absolute index interval over the whole launch box *)
  s_lin : Domain.itv;  (** absolute linear index interval *)
  s_indirect : bool;
      (** some access index was data-dependent or non-affine *)
  s_sites : int;  (** distinct static access sites (0 = no accesses) *)
}

type buf = {
  fb_name : string;
  fb_read : side;
  fb_write : side;
  fb_exact : bool;
      (** relative extents are backed by exact dataflow: no approximate
          register aging, no dropped provenance *)
}

type t = {
  fp_kernel : string;
  fp_anchor : string option;  (** buffer anchoring relative offsets *)
  fp_strides : int array;  (** axis strides used for decomposition *)
  fp_bufs : buf list;  (** global buffers with accesses, sorted by name *)
  fp_notes : string list;  (** reasons parts of the inference gave up *)
}

val infer : ?anchor:string -> ?strides:int array -> Check.env -> Cast.kernel -> t
(** [infer ~strides env k] runs the provenance-carrying abstract
    interpretation of [k] under [env] (same parameter resolution as
    {!Check.check}).  [strides] are the linear strides of the grid axes
    in ascending order, e.g. [\[|1; nx; nx*ny|\]] for an
    [x + nx*y + nx*ny*z] layout; constant offsets decompose onto the
    axes by balanced (nearest-multiple) rounding.  Defaults to the
    one-axis layout [\[|1|\]], under which relative extents are linear
    offsets.  [anchor] overrides anchor-buffer selection (default:
    [next] when it has affine stores, else the unique buffer with affine
    stores).
    @raise Invalid_argument if [strides] is empty, not strictly
    increasing, or does not start at 1. *)

val find : t -> string -> buf option

val read_rel : t -> string -> axis array option
(** Relative read extents of a buffer; [None] when the buffer has no
    inferable relative read footprint.  A buffer with {e no} reads gets
    all-zero extents. *)

val write_rel : t -> string -> axis array option

val read_radius : t -> string -> int option
(** [max (-ax_lo) ax_hi] over the {e last} (highest-stride) axis of
    {!read_rel} — the slab-halo width in planes the buffer's reads
    require.  [None] when not inferable. *)

val pp : Format.formatter -> t -> unit
val pp_axis : Format.formatter -> axis -> unit
